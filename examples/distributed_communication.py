"""Distributed-memory communication costs (paper Section 6 extension).

Run:  python examples/distributed_communication.py

The paper's closing argument for distributed memory: fast algorithms
reduce communication as well as flops, and aggregate bandwidth scales with
nodes (unlike the shared-memory case).  This example simulates it in the
alpha-beta-gamma model: SUMMA vs the CAPS-style BFS/DFS parallelization of
Strassen, the schedule chooser under a memory cap, and the per-processor
word counts across machine sizes.
"""

from repro.algorithms import get_algorithm, strassen
from repro.distributed import (
    Machine,
    best_schedule,
    caps_cost,
    enumerate_schedules,
    summa_cost,
)
from repro.distributed.fast import bandwidth_exponent


def main() -> None:
    n = 16384
    P = 7 ** 4  # 2401 processors; sqrt(P) = 49 for the SUMMA grid
    mach = Machine(P)

    print(f"N = {n}, P = {P} (alpha-beta-gamma model)\n")
    summa = summa_cost(n, mach)
    caps = caps_cost(strassen(), n, mach, "BBBB")
    print(f"{'algorithm':<28} {'words/proc':>14} {'flops/proc':>14} "
          f"{'est. time':>10}")
    for c in (summa, caps):
        print(f"{c.label:<28.28} {c.words:>14.3e} {c.flops:>14.3e} "
              f"{c.time(mach):>10.4f}")
    print(f"\nStrassen moves {summa.words / caps.words:.2f}x fewer words "
          f"per processor than SUMMA at this scale.")

    print("\nBandwidth scaling exponents (words ~ n^2 / P^e):")
    print(f"  classical 2D: e = 0.5,  classical 3D: e = {2 / 3:.3f}")
    for name in ("strassen", "s244", "s333"):
        alg = get_algorithm(name)
        print(f"  {name:<10} e = {bandwidth_exponent(alg):.3f} "
              f"(omega = {alg.exponent:.3f})")

    print("\nSchedule chooser under a memory cap (P = 49, N = 4096):")
    small = Machine(49)
    for cap_factor, label in [(float("inf"), "unlimited"), (1.5, "tight")]:
        data = 3 * 4096 ** 2 / 49
        m = Machine(49, memory_words=data * cap_factor)
        try:
            sched, cost = best_schedule(strassen(), 4096, m, max_steps=2)
            print(f"  memory {label:<10}: best schedule {sched or '(classical)':<6} "
                  f"words/proc {cost.words:.3e} peak mem {cost.peak_memory:.3e}")
        except ValueError as e:
            print(f"  memory {label:<10}: {e}")

    print("\nAll feasible schedules at P = 49, N = 4096:")
    for sched, cost in enumerate_schedules(strassen(), 4096, small, 2):
        print(f"  {sched or '--':<4} words {cost.words:>12.3e} "
              f"peak {cost.peak_memory:>12.3e}")
    print("\nBFS steps cut words at the price of memory; DFS steps save "
          "memory at the price of serialization -- the CAPS trade-off the "
          "paper's Section 6 points to.")


if __name__ == "__main__":
    main()
