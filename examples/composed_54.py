"""The composed <54,54,54> algorithm (paper Section 5.2).

Run:  python examples/composed_54.py

Composes <3,3,6> o <3,6,3> o <6,3,3> -- one level of each per recursion
step.  At the paper's rank 40 per level this is the asymptotically fastest
matrix multiplication ever *implemented* (omega ~= 2.775); with our
composed fallback rank the exponent is recorded honestly.  Either way the
paper's practical conclusion reproduces: it does not pay at modest sizes.
"""

import numpy as np

from repro.algorithms import get_algorithm
from repro.bench.metrics import effective_gflops, median_time
from repro.codegen import compile_algorithm
from repro.core.cost import composed_exponent
from repro.core.recursion import multiply_schedule
from repro.parallel import blas


def main() -> None:
    s336 = get_algorithm("s336")
    s363 = get_algorithm("s363")
    s633 = get_algorithm("s633")
    schedule = [s336, s363, s633]

    r = s336.rank
    omega = composed_exponent([(3, 3, 6), (3, 6, 3), (6, 3, 3)], [r, r, r])
    print(f"<3,3,6>-family rank in this build: {r} "
          f"(paper uses Smirnov's 40)")
    print(f"composed <54,54,54> exponent: omega = {omega:.4f} "
          f"(paper: 2.775, Strassen: {np.log2(7):.4f})")
    print(f"multiplications per full step: {r ** 3} on a 54x54 block grid\n")

    n = 1080  # 20 * 54
    rng = np.random.default_rng(4)
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))

    strassen = compile_algorithm(get_algorithm("strassen"))
    with blas.blas_threads(1):
        t_gemm = median_time(lambda: A @ B, trials=3)
        t_str = median_time(lambda: strassen(A, B, steps=2), trials=3)
        t_cmp = median_time(lambda: multiply_schedule(A, B, schedule), trials=3)

    C = multiply_schedule(A, B, schedule)
    err = np.linalg.norm(C - A @ B) / np.linalg.norm(A @ B)
    print(f"correctness: relative error {err:.2e}\n")
    print(f"{'variant':<24} {'seconds':>9} {'eff. GFLOPS':>12}")
    for name, t in [("dgemm", t_gemm), ("strassen 2 steps", t_str),
                    ("composed <54,54,54>", t_cmp)]:
        print(f"{name:<24} {t:>9.3f} {effective_gflops(n, n, n, t):>12.1f}")
    print("\nPaper's conclusion reproduced: the best asymptotic exponent "
          "loses at practical sizes -- the additions of a 54x54 block grid "
          "overwhelm the multiplication savings.")


if __name__ == "__main__":
    main()
