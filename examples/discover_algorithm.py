"""Discovering a fast algorithm from scratch (paper Section 2.3).

Run:  python examples/discover_algorithm.py

End-to-end run of the search pipeline on the <2,2,2> tensor at rank 7:
multi-start regularized ALS finds a numerical decomposition, the Prop.-2.3
normalization + rounding step turns it into a discrete exact algorithm,
and the code generator turns *that* into a runnable multiply -- i.e. the
full journey from "tensor" to "working Strassen-class algorithm" in one
script.
"""

import numpy as np

from repro.codegen import compile_algorithm, generate_source
from repro.core.algorithm import FastAlgorithm
from repro.search import AlsOptions, search


def main() -> None:
    print("Searching for a rank-7 decomposition of the <2,2,2> tensor")
    print("(Strassen proved rank <= 7; Winograd proved no rank-6 exists)\n")

    outcome = search(
        2, 2, 2, rank=7, starts=40, seed=42,
        options=AlsOptions(max_sweeps=1500),
        verbose=False,
    )
    assert outcome is not None, "search returned nothing"
    print(f"found: rel. residual {outcome.rel_residual:.2e} after "
          f"{outcome.starts_used} start(s); discrete={outcome.discrete}")

    alg = FastAlgorithm(2, 2, 2, outcome.U, outcome.V, outcome.W,
                        name="discovered222", apa=not outcome.exact)
    print(f"exact: {alg.check_exact()}  rank: {alg.rank}  nnz: {alg.nnz()}")

    if outcome.discrete:
        print("\nDiscovered U (discrete entries, a Strassen-equivalent "
              "algorithm up to Prop. 2.3 transforms):")
        print(np.array2string(alg.U, precision=2, suppress_small=True))

    # hand the discovery to the code generator and multiply with it
    f = compile_algorithm(alg)
    rng = np.random.default_rng(3)
    A = rng.standard_normal((200, 200))
    B = rng.standard_normal((200, 200))
    err = np.linalg.norm(f(A, B, steps=2) - A @ B) / np.linalg.norm(A @ B)
    print(f"\ncompiled and ran the discovered algorithm: rel. error {err:.2e}")

    print("\nGenerated source (first 20 lines):")
    print("\n".join(generate_source(alg).splitlines()[:20]))

    # rank 6 is impossible (Winograd 1971): show the search plateauing
    print("\nFor contrast, rank 6 (impossible) plateaus far from zero:")
    hopeless = search(2, 2, 2, rank=6, starts=3, seed=0,
                      options=AlsOptions(max_sweeps=400))
    print(f"best rel. residual at rank 6: {hopeless.rel_residual:.3f}")


if __name__ == "__main__":
    main()
