"""Shape matching: the right fast algorithm depends on the problem shape.

Run:  python examples/shape_matching.py

Reproduces the headline finding of the paper's Section 5 (Figure 5): on
square problems Strassen is hard to beat, but on rectangular problems the
algorithms whose base case "matches the shape" win -- e.g. <4,2,4> on an
outer-product-shaped N x K x N multiplication, and <4,3,3> on a
tall-skinny N x K x K one.
"""

from repro.algorithms import get_algorithm
from repro.bench.runner import run_sequential, winners_by_workload
from repro.bench.workloads import outer, square, ts_square


def main() -> None:
    algorithms = {
        "dgemm": None,
        "strassen": get_algorithm("strassen"),
        "s424": get_algorithm("s424"),   # outer-product-shaped base case
        "s433": get_algorithm("s433"),   # tall-skinny-shaped base case
        "s323": get_algorithm("s323"),
    }

    print("Square problems: Strassen's territory")
    rows_sq = run_sequential(
        algorithms, [square(1024), square(1536)], step_options=(1, 2),
        trials=3, title="N x N x N",
    )

    print("\nOuter-product shape N x K x N: <4,2,4>-family territory")
    rows_outer = run_sequential(
        algorithms, [outer(1280, 416), outer(1792, 416)], step_options=(1, 2),
        trials=3, title="N x 416 x N",
    )

    print("\nTall-skinny shape N x K x K: <4,3,3>-family territory")
    rows_ts = run_sequential(
        algorithms, [ts_square(2560, 624)], step_options=(1, 2),
        trials=3, title="N x 624 x 624",
    )

    print("\nWinners by workload:")
    for rows, label in [(rows_sq, "square"), (rows_outer, "outer"),
                        (rows_ts, "tall-skinny")]:
        for wl, winner in winners_by_workload(rows).items():
            print(f"  {label:<12} {wl:<18} -> {winner}")
    print("\nPaper's conclusion: pick the algorithm whose base case matches "
          "the shape of your problem.")


if __name__ == "__main__":
    main()
