"""Quickstart: multiply two matrices with a fast algorithm.

Run:  python examples/quickstart.py

Covers the one-call API, accuracy checking, the effective-GFLOPS metric
(paper Eq. 3), and a peek at the generated code.
"""

import numpy as np

import repro
from repro.bench.metrics import median_time

def main() -> None:
    rng = np.random.default_rng(0)
    n = 1024
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))

    # --- one call: Strassen with two recursive steps --------------------
    C = repro.multiply(A, B, algorithm="strassen", steps=2)
    ref = A @ B
    err = np.linalg.norm(C - ref) / np.linalg.norm(ref)
    print(f"Strassen (2 steps) relative error vs numpy: {err:.2e}")

    # --- compare wall time against the vendor gemm ----------------------
    from repro.parallel import blas

    f = repro.compile_algorithm(repro.get_algorithm("strassen"))
    with blas.blas_threads(1):
        t_fast = median_time(lambda: f(A, B, steps=2), trials=3)
        t_gemm = median_time(lambda: A @ B, trials=3)
    print(f"strassen: {t_fast:.3f}s = "
          f"{repro.effective_gflops(n, n, n, t_fast):.1f} effective GFLOPS")
    print(f"dgemm:    {t_gemm:.3f}s = "
          f"{repro.effective_gflops(n, n, n, t_gemm):.1f} GFLOPS")

    # --- any shape works (dynamic peeling handles odd sizes) ------------
    A2 = rng.standard_normal((1001, 773))
    B2 = rng.standard_normal((773, 1237))
    C2 = repro.multiply(A2, B2, algorithm="s424", steps=2)
    err2 = np.linalg.norm(C2 - A2 @ B2) / np.linalg.norm(A2 @ B2)
    print(f"<4,2,4> on 1001x773x1237: relative error {err2:.2e}")

    # --- or let the autotuner decide (repro.tuner) -----------------------
    # `repro tune` (CLI) or tuner.tune() measures candidate plans -- the
    # algorithm x recursion-depth x schedule space of the paper -- and
    # persists winners in a plan cache (default: $REPRO_PLAN_CACHE or
    # ~/.cache/repro/plan_cache.json).  repro.matmul() then dispatches:
    # cache hit -> tuned plan, miss -> nearest tuned shape or cost model.
    from repro import tuner

    # demo: in-memory only (persist=False), so nothing lands in ~/.cache
    cache = tuner.PlanCache("quickstart-demo-plan-cache.json")
    n_t = 384
    tuner.tune([(n_t, n_t, n_t)], threads=1, budget_s=5.0, trials=1,
               cache=cache, persist=False)
    plan, source = tuner.get_plan(n_t, n_t, n_t, threads=1, cache=cache)
    At = rng.standard_normal((n_t, n_t))
    Bt = rng.standard_normal((n_t, n_t))
    Ct = repro.matmul(At, Bt, threads=1, cache=cache)
    err_t = np.linalg.norm(Ct - At @ Bt) / np.linalg.norm(At @ Bt)
    print(f"\nauto-tuned N={n_t}: plan '{plan.describe()}' [{source}], "
          f"relative error {err_t:.2e}")

    # --- the catalog -----------------------------------------------------
    print("\nAlgorithm catalog (Table 2):")
    for e in repro.table2():
        m, k, n_ = e.base_case
        print(f"  {e.name:<14} <{m},{k},{n_}>  rank {e.rank:>3}  "
              f"speedup/step {e.speedup_per_step:>4.0%}  [{e.provenance}]")

    # --- inspect the generated code --------------------------------------
    src = repro.generate_source(repro.get_algorithm("strassen"),
                                strategy="write_once")
    head = "\n".join(src.splitlines()[:12])
    print(f"\nFirst lines of the generated Strassen module:\n{head}\n...")


if __name__ == "__main__":
    main()
