"""Numerical stability of fast algorithms (paper Section 6).

Run:  python examples/numerical_stability.py

The paper flags stability as the open empirical question its framework
enables ("our framework will allow for rapid empirical testing").  This
example does that testing: theoretical growth factors straight from
[[U,V,W]], measured error growth with recursion depth, the APA cliff, the
float32 comparison, and the Prop.-2.3 rescaling that improves skewed
searched factors.
"""

import numpy as np

from repro.algorithms import classical, get_algorithm
from repro.core.stability import (
    diagonal_rescale_for_stability,
    measure_error_growth,
    rank_by_stability,
    stability_factors,
)


def main() -> None:
    names = ["strassen", "winograd", "hk223", "s233", "s333", "s244",
             "bini322", "schonhage333"]
    algs = {n: get_algorithm(n) for n in names}
    algs["classical"] = classical(2, 2, 2)

    print("Theoretical one-level growth factors (from [[U,V,W]] norms):")
    print(f"{'algorithm':<14} {'alpha':>8} {'beta':>8} {'gamma':>8} {'emax':>10}")
    for name, alg in algs.items():
        f = stability_factors(alg)
        print(f"{name:<14} {f.alpha:>8.1f} {f.beta:>8.1f} {f.gamma:>8.1f} "
              f"{f.emax:>10.1f}")

    print("\nRanking by theoretical growth (best first):")
    for name, score in rank_by_stability(algs):
        print(f"  {name:<14} {score:10.1f}")

    print("\nMeasured relative error vs recursion depth (N = 216):")
    print(f"{'algorithm':<14} {'steps=0':>10} {'steps=1':>10} {'steps=2':>10}")
    for name in ["strassen", "s333", "s244", "bini322"]:
        m = measure_error_growth(algs[name], n=216, steps=(0, 1, 2))
        print(f"{name:<14} " + " ".join(f"{e:>10.2e}" for e in m.rel_errors))
    print("(exact algorithms sit at ~1e-15; the APA entry pays the "
          "promised half-the-digits price)")

    print("\nfloat32 classical-precision vs APA (the paper's remark that "
          "single precision dominates APA):")
    m32 = measure_error_growth(algs["strassen"], n=216, steps=(1,),
                               dtype=np.float32)
    mapa = measure_error_growth(algs["bini322"], n=216, steps=(1,))
    print(f"  strassen in float32: {m32.rel_errors[0]:.2e}")
    print(f"  bini322  in float64: {mapa.rel_errors[0]:.2e}")

    print("\nProp.-2.3 equilibration of a searched algorithm (s244):")
    raw = measure_error_growth(algs["s244"], n=216, steps=(2,))
    eq = measure_error_growth(diagonal_rescale_for_stability(algs["s244"]),
                              n=216, steps=(2,))
    print(f"  raw factors:          {raw.rel_errors[0]:.2e}")
    print(f"  equilibrated factors: {eq.rel_errors[0]:.2e}")


if __name__ == "__main__":
    main()
