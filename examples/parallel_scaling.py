"""Parallel schemes and the bandwidth wall.

Run:  python examples/parallel_scaling.py

Demonstrates the paper's Section 4: the three shared-memory schedules
(DFS / BFS / HYBRID), why BFS load-imbalances when the task count is not a
multiple of the worker count (Strassen has 7 leaf tasks!), and the
Section 4.5 bandwidth argument -- matrix additions scale worse than
multiplications, eroding fast algorithms' parallel advantage.
"""

import numpy as np

from repro.algorithms import get_algorithm
from repro.bench.metrics import effective_gflops, median_time
from repro.parallel import WorkerPool, available_cores, blas, multiply_parallel
from repro.parallel.add import measure_stream


def main() -> None:
    cores = available_cores()
    n = 1280
    rng = np.random.default_rng(1)
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    strassen = get_algorithm("strassen")

    with WorkerPool(cores) as pool:
        print(f"{cores} cores, N = {n}\n")
        print(f"{'variant':<22} {'seconds':>9} {'eff. GFLOPS':>12}")
        with blas.blas_threads(1):
            t = median_time(lambda: A @ B, trials=3)
        print(f"{'dgemm 1 thread':<22} {t:>9.3f} {effective_gflops(n, n, n, t):>12.1f}")
        with blas.blas_threads(cores):
            t = median_time(lambda: A @ B, trials=3)
        print(f"{'dgemm all threads':<22} {t:>9.3f} {effective_gflops(n, n, n, t):>12.1f}")

        for scheme in ("dfs", "bfs", "hybrid"):
            t = median_time(
                lambda: multiply_parallel(A, B, strassen, steps=2,
                                          scheme=scheme, pool=pool),
                trials=3,
            )
            print(f"{'strassen ' + scheme:<22} {t:>9.3f} "
                  f"{effective_gflops(n, n, n, t):>12.1f}")

        print("\nWhy HYBRID: one Strassen step spawns 7 leaf multiplies; "
              f"with P={cores} workers BFS wastes {7 % cores} of them in a "
              "ragged final wave, HYBRID runs that remainder with all "
              "threads instead.")

        # ---- the bandwidth wall (Section 4.5) --------------------------
        stream = measure_stream(pool, sorted({1, cores}), size_mb=48)
        print("\nSTREAM-like triad bandwidth:")
        for t_, bw in zip(stream.threads, stream.bandwidth_gib_s):
            print(f"  {t_} thread(s): {bw:6.2f} GiB/s")
        eff = stream.parallel_efficiency()[-1]
        print(f"bandwidth parallel efficiency at {cores} cores: {eff:.0%} "
              "(gemm is near 100% -- additions become relatively more "
              "expensive in parallel, the paper's scaling impediment)")


if __name__ == "__main__":
    main()
