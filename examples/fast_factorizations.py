#!/usr/bin/env python
"""Fast matrix multiplication inside LU / Cholesky / TRSM (paper §6).

The paper's discussion section proposes incorporating fast algorithms
into broader dense linear algebra.  ``repro.linalg`` does exactly that:
every blocked driver takes a :class:`repro.linalg.MatmulKernel`, and the
kernel decides whether the O(n³) trailing updates run through the vendor
BLAS or through any fast algorithm from the catalog (with any recursion
depth / parallel scheme).

This example factors the same matrices three ways — vendor BLAS kernel,
Strassen kernel, and a shape-matched ⟨4,2,4⟩ kernel — and reports time,
backward error, and where the flops actually went.  It ends with the
Newton–Schulz iteration, whose repeated products make accumulated
fast-multiply rounding visible (and show it converging to the same
inverse regardless).

Run:  python examples/fast_factorizations.py [n]
"""

import sys
import time

import numpy as np

from repro.linalg import (
    MatmulKernel,
    cholesky,
    invert_triangular,
    lu_factor,
    newton_schulz,
)
from repro.linalg.cholesky import cholesky_error
from repro.linalg.lu import lu_error
from repro.parallel import blas


def timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def main(n: int = 1200) -> None:
    rng = np.random.default_rng(0)
    A = rng.standard_normal((n, n)) + n * np.eye(n)
    SPD = A @ A.T / n
    block = 128

    kernels = {
        "vendor BLAS": MatmulKernel(),
        "strassen (2 steps)": MatmulKernel(algorithm="strassen", steps=2,
                                           min_dim=block, counting=True),
        "<4,2,4> (1 step)": MatmulKernel(algorithm="s424", steps=1,
                                         min_dim=block, counting=True),
    }

    print(f"blocked LU and Cholesky, n={n}, panel width {block}")
    print(f"{'kernel':>20} {'lu time':>9} {'lu err':>9} "
          f"{'chol time':>10} {'chol err':>9} {'fast flops':>11}")
    with blas.blas_threads(1):
        for name, k in kernels.items():
            fac, t_lu = timed(lambda: lu_factor(A, kernel=k, block=block))
            L, t_ch = timed(lambda: cholesky(SPD, kernel=k, block=block))
            frac = k.fast_fraction() if k.is_fast else 0.0
            print(f"{name:>20} {t_lu:>9.3f} {lu_error(A, fac):>9.1e} "
                  f"{t_ch:>10.3f} {cholesky_error(SPD, L):>9.1e} "
                  f"{frac:>10.0%}")

        # triangular inversion is ~100% kernel products: the best case
        T = np.tril(rng.standard_normal((n, n))) + n * np.eye(n)
        print("\ntriangular inverse (all flops are kernel products)")
        for name, k in kernels.items():
            Tinv, t = timed(lambda: invert_triangular(T, kernel=k,
                                                      base_size=block))
            resid = np.linalg.norm(T @ Tinv - np.eye(n)) / n
            print(f"{name:>20} {t:>9.3f}s  residual {resid:.1e}")

        # Newton-Schulz: error accumulation across repeated fast products
        print("\nNewton-Schulz inverse iteration (two products per sweep)")
        for name, k in kernels.items():
            X, hist = newton_schulz(A, kernel=k)
            err = np.linalg.norm(X - np.linalg.inv(A)) / np.linalg.norm(X)
            print(f"{name:>20} sweeps={len(hist):>2} "
                  f"final residual {hist[-1]:.1e}  vs-inv err {err:.1e}")

    print("\nTakeaway: the further a driver's flops concentrate in big "
          "gemm-shaped updates, the more of the fast algorithm's speedup "
          "it inherits (trinv > lu > panel-bound small problems), at "
          "rounding-level cost in backward error.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1200)
