"""``repro.guard``: fault tolerance threaded through the dispatch stack.

Two halves: :mod:`repro.guard.faults` (deterministic fault injection --
the named points chaos tests and ``REPRO_FAULTS=`` arm) and
:mod:`repro.guard.chain` (the guarded execution ladder behind
``repro.matmul(guard=)``: tuned plan -> cost-model plan -> classical
``np.matmul``, with plan quarantine, pool rebuild, and sampled numeric
guardrails).  See each module's docstring for the contract.

``faults`` imports eagerly (injection sites in pool/workspace/cache read
``faults.active`` at call time and depend only on telemetry + stdlib);
the chain's names load lazily so ``pool -> guard.faults`` never recurses
into ``chain -> pool``.
"""

from repro.guard import faults
from repro.guard.faults import InjectedFault, inject

_CHAIN_EXPORTS = (
    "GuardConfig",
    "GUARD_DEFAULT",
    "INFRASTRUCTURE_FAILURES",
    "NumericViolation",
    "WatchdogTimeout",
    "check_product",
    "default_guard",
    "reset_default_guard",
    "resolve_guard",
    "run_guarded",
    "run_batch_guarded",
    "shutdown_watchdog",
)

__all__ = ["faults", "InjectedFault", "inject", *_CHAIN_EXPORTS]


def __getattr__(name):
    if name in _CHAIN_EXPORTS or name == "chain":
        # importlib, not `from repro.guard import chain`: the from-import
        # form probes this very __getattr__ via hasattr and would recurse
        import importlib

        chain = importlib.import_module("repro.guard.chain")
        if name == "chain":
            return chain
        return getattr(chain, name)
    raise AttributeError(f"module 'repro.guard' has no attribute {name!r}")
