"""The guarded execution fallback chain behind ``repro.matmul(guard=)``.

A serving layer may never surface a tuner, codegen, arena, or worker-pool
bug as a failed matmul, and an APA plan (Bini / Schonhage entries, whose
error growth Section 6 of the paper characterizes) may never silently
return garbage.  This module wraps plan execution in a three-stage
degradation ladder that always lands on a correct product:

1. **tuned plan** -- whatever the policy resolved (cache / nearest /
   transfer / model / online), executed normally, optionally under a
   watchdog deadline (``GuardConfig.timeout_s``);
2. **cost-model plan** -- on a *plan-implicating* failure, the best
   not-quarantined candidate from :func:`repro.tuner.space.enumerate_plans`
   that differs from the failed plan, in a throwaway arena;
3. **classical** -- a direct ``np.matmul`` with no plan, no pool, no
   arena, and no injection points: the stage that cannot fail.

Failures that implicate the *infrastructure* rather than the plan (a
watchdog timeout, a broken pool, a task deadline, ``MemoryError``) skip
stage 2 -- retrying a different fast plan on a broken substrate wastes
the deadline budget -- and drop straight to classical, after optionally
tearing down and rebuilding the shared worker pool.

Every product that leaves a guarded attempt passes the **numerical
guardrail** (:func:`check_product`): a sampled NaN/Inf scan for all
plans, plus a sampled residual check against
:func:`repro.core.stability.error_bound` for APA plans; a violation is
treated exactly like a raised exception.  Each plan failure is recorded
in the cache's quarantine ledger (:meth:`PlanCache.record_failure`) so
repeat offenders stop being resolved at all, and every fallback /
violation / rebuild is counted through :mod:`repro.obs.telemetry`
(``guard.*`` counters) for ``repro stats`` / ``repro multiply --explain``.

The guard is opt-in and free when off: ``guard=None`` (the default)
defers to the ``REPRO_GUARD`` environment variable, and with no guard
resolved dispatch runs its usual unguarded path untouched.  With the
default ``timeout_s=None`` the guarded warm path adds only the
try/except bracket and the sampled check -- the ``bench_guard.py`` CI
gate holds it within 3% of unguarded dispatch.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout

import numpy as np

from repro.algorithms.catalog import get_algorithm
from repro.core.stability import error_bound
from repro.guard import faults
from repro.obs import telemetry
from repro.parallel.pool import PoolBrokenError, TaskTimeoutError
from repro.tuner.space import Plan, enumerate_plans

_log = logging.getLogger("repro.guard")


class WatchdogTimeout(TimeoutError):
    """A guarded execution attempt overran ``GuardConfig.timeout_s``."""


class NumericViolation(ArithmeticError):
    """A guarded product failed the post-execution numerical check."""


#: failures that implicate the execution substrate, not the plan: the
#: chain skips the cost-model stage (same substrate, same outcome) and
#: degrades straight to classical
INFRASTRUCTURE_FAILURES = (
    WatchdogTimeout,
    PoolBrokenError,
    TaskTimeoutError,
    MemoryError,
)


@dataclasses.dataclass(frozen=True)
class GuardConfig:
    """How much protection a guarded call buys.

    ``timeout_s``
        watchdog deadline per execution attempt.  ``None`` (default)
        disables the watchdog -- attempts run inline on the calling
        thread with no thread hop, which is what keeps guarded warm-path
        overhead inside the bench gate.  Hung-worker recovery needs a
        finite deadline.
    ``numeric_check``
        run :func:`check_product` after every attempt (NaN/Inf always,
        APA residual bound when the plan's algorithm is APA).
    ``sample_rows``
        rows sampled by the numeric check (cost is ``sample_rows`` dot
        rows, not a second multiplication).
    ``rebuild_pools``
        tear down and rebuild the shared worker pool after an
        infrastructure failure of a parallel plan.
    """

    timeout_s: float | None = None
    numeric_check: bool = True
    sample_rows: int = 4
    rebuild_pools: bool = True


GUARD_DEFAULT = GuardConfig()

_default_guard: GuardConfig | None | str = "unset"
_default_guard_lock = threading.Lock()


def default_guard() -> GuardConfig | None:
    """The process-wide default from ``REPRO_GUARD`` (cached).

    ``REPRO_GUARD=1/on/true`` enables :data:`GUARD_DEFAULT`, a float
    enables a watchdog with that deadline, unset/``0/off/false`` leaves
    dispatch unguarded.
    """
    global _default_guard
    cfg = _default_guard
    if isinstance(cfg, str):  # "unset" sentinel: parse once, then the
        with _default_guard_lock:  # warm path is a plain attribute read
            if isinstance(_default_guard, str):
                raw = os.environ.get("REPRO_GUARD", "").strip()
                _default_guard = _parse_guard(raw) if raw else None
            cfg = _default_guard
    return cfg


def reset_default_guard() -> None:
    """Forget the cached ``REPRO_GUARD`` parse (tests)."""
    global _default_guard
    with _default_guard_lock:
        _default_guard = "unset"


def _parse_guard(raw: str) -> GuardConfig | None:
    low = raw.lower()
    if low in ("0", "off", "false", "no", "none", ""):
        return None
    if low in ("1", "on", "true", "yes"):
        return GUARD_DEFAULT
    try:
        return GuardConfig(timeout_s=float(raw))
    except ValueError:
        raise ValueError(
            f"REPRO_GUARD/guard= must be on/off, a boolean, a timeout in "
            f"seconds, or a GuardConfig; got {raw!r}"
        ) from None


def resolve_guard(guard) -> GuardConfig | None:
    """Normalize every accepted ``guard=`` spelling to a config (or None).

    ``None`` defers to :func:`default_guard` (the ``REPRO_GUARD`` env);
    ``True``/``"on"`` means :data:`GUARD_DEFAULT`; ``False``/``"off"``
    forces unguarded even when the env enables it; a number is a
    watchdog deadline; a :class:`GuardConfig` passes through.
    """
    if guard is None:
        return default_guard()
    if isinstance(guard, GuardConfig):
        return guard
    if isinstance(guard, bool):
        return GUARD_DEFAULT if guard else None
    if isinstance(guard, (int, float)):
        return GuardConfig(timeout_s=float(guard))
    if isinstance(guard, str):
        return _parse_guard(guard)
    raise ValueError(f"unsupported guard= value: {guard!r}")


# ---------------------------------------------------------------------------
# watchdog: a deadline around one execution attempt
# ---------------------------------------------------------------------------
_watchdog_lock = threading.Lock()
_watchdog: ThreadPoolExecutor | None = None


def _watchdog_pool() -> ThreadPoolExecutor:
    global _watchdog
    with _watchdog_lock:
        if _watchdog is None:
            _watchdog = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-watchdog")
        return _watchdog


def _watchdog_run(fn, timeout_s: float):
    """Run ``fn()`` on the watchdog thread with a deadline.

    On timeout the executor is discarded (its thread may be wedged inside
    the overrunning attempt; the next guarded call gets a fresh one) and
    :class:`WatchdogTimeout` is raised.  The zombie attempt may still
    finish later -- callers must give it a private destination buffer so
    a late write can never corrupt a result already returned.
    """
    global _watchdog
    pool = _watchdog_pool()
    future = pool.submit(fn)
    try:
        return future.result(timeout=timeout_s)
    except FuturesTimeout:
        future.cancel()
        with _watchdog_lock:
            if _watchdog is pool:
                _watchdog = None
        pool.shutdown(wait=False, cancel_futures=True)
        telemetry.incr("guard.watchdog_timeouts")
        raise WatchdogTimeout(
            f"guarded execution overran its {timeout_s:g}s deadline"
        ) from None


def shutdown_watchdog() -> None:
    """Tear down the watchdog executor (tests / interpreter shutdown)."""
    global _watchdog
    with _watchdog_lock:
        pool, _watchdog = _watchdog, None
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


# ---------------------------------------------------------------------------
# numerical guardrail
# ---------------------------------------------------------------------------
def check_product(plan: Plan, A: np.ndarray, B: np.ndarray,
                  C: np.ndarray, cfg: GuardConfig) -> str | None:
    """Sampled post-execution validation; a reason string or ``None``.

    Every plan gets a finite-ness scan over ``sample_rows`` rows of the
    product (row 0 always included).  APA plans additionally get those
    rows recomputed classically and compared against a tolerance derived
    from :func:`repro.core.stability.error_bound` -- loose enough (1e3 x
    the bound, floored at 0.1 relative) that a healthy APA product always
    passes, tight enough that a blown-up or poisoned one cannot.
    """
    if C.size == 0:
        return None
    p = C.shape[0]
    rows = np.unique(np.linspace(0, p - 1, min(cfg.sample_rows, p))
                     .astype(int))
    sample = C[rows]
    if np.issubdtype(C.dtype, np.inexact) and not np.all(np.isfinite(sample)):
        return "non-finite values in product sample"
    if plan.is_dgemm or plan.algorithm is None:
        return None
    alg = get_algorithm(plan.algorithm)
    if not alg.apa:
        return None
    ref = A[rows] @ B
    scale = float(np.linalg.norm(ref))
    err = float(np.linalg.norm(sample.astype(ref.dtype) - ref))
    rel = err / scale if scale > 0 else err
    q = A.shape[1]
    tol = max(1e3 * error_bound(alg, plan.steps, q, str(C.dtype)), 0.1)
    if not rel <= tol:  # NaN-safe: NaN comparisons are False
        return (f"APA residual {rel:.3g} exceeds stability bound "
                f"{tol:.3g} for {plan.describe()}")
    return None


# ---------------------------------------------------------------------------
# one guarded attempt
# ---------------------------------------------------------------------------
def _poison(C: np.ndarray) -> None:
    """The ``apa.nan`` injection point: corrupt a finished product the
    way a silently-degraded APA combine would."""
    if np.issubdtype(C.dtype, np.inexact) and C.size:
        C.reshape(-1)[0] = np.nan
    else:
        raise faults.InjectedFault("injected: apa.nan on non-float product")


def _attempt(cfg: GuardConfig, plan: Plan, A: np.ndarray, B: np.ndarray,
             pool, out, workspace) -> np.ndarray:
    """Execute ``plan`` once under the config's watchdog (if any).

    With a deadline, execution targets a private buffer and the result is
    copied to ``out`` only on in-time success, so a timed-out zombie
    attempt can never scribble on the caller's array.
    """
    from repro.tuner import dispatch

    if cfg.timeout_s is None:
        C = dispatch.execute_plan(plan, A, B, pool=pool, out=out,
                                  workspace=workspace)
    else:
        p, r = A.shape[0], B.shape[1]
        dest = np.empty((p, r), dtype=np.result_type(A, B))
        _watchdog_run(
            lambda: dispatch.execute_plan(plan, A, B, pool=pool, out=dest,
                                          workspace=workspace),
            cfg.timeout_s,
        )
        if out is not None:
            np.copyto(out, dest, casting="same_kind")
            C = out
        else:
            C = dest
    if faults.active and faults.should_fire("apa.nan"):
        _poison(C)
    return C


def _classical(A: np.ndarray, B: np.ndarray, out) -> np.ndarray:
    """Stage 3: plain ``np.matmul`` -- no plan, no pool, no arena, no
    injection points.  The floor the chain always reaches."""
    if out is None:
        return np.matmul(A, B)
    np.matmul(A, B, out=out)
    return out


def _note_failure(stage: str, plan: Plan, exc: BaseException) -> None:
    telemetry.incr("guard.failures", stage=stage,
                   reason=type(exc).__name__)
    _log.warning("guarded %s-stage execution of [%s] failed: %s",
                 stage, plan.describe(), exc)


def _recover_infrastructure(cfg: GuardConfig, plan: Plan,
                            exc: BaseException) -> None:
    """Post-failure substrate repair: rebuild the shared pool a parallel
    plan was using when the failure implicates it."""
    from repro.tuner import dispatch

    if not cfg.rebuild_pools:
        return
    if plan.is_dgemm or plan.scheme == "sequential":
        return
    if isinstance(exc, (PoolBrokenError, TaskTimeoutError, WatchdogTimeout)):
        dispatch.rebuild_shared_pool(plan.threads)


def _fallback_plan(failed: Plan, p: int, q: int, r: int, dtype: str,
                   threads: int, cache) -> Plan | None:
    """The cost-model stage's candidate: best-ranked plan that is neither
    the plan that just failed nor quarantined for this shape."""
    for cand in enumerate_plans(p, q, r, threads=threads, dtype=dtype):
        if cand == failed:
            continue
        if cache is not None and cache.plan_quarantined(
                p, q, r, dtype, threads, cand):
            continue
        return cand
    return None


# ---------------------------------------------------------------------------
# the chain
# ---------------------------------------------------------------------------
def run_guarded(cfg: GuardConfig, policy, A: np.ndarray, B: np.ndarray,
                p: int, q: int, r: int, dtype: str, threads: int,
                cache, pool, out) -> np.ndarray:
    """Guarded dispatch: tuned plan -> cost-model plan -> classical.

    The resolved-plan stage mirrors unguarded dispatch exactly (policy
    selection, timed-vs-warm workspaces, observation, telemetry) so a
    healthy call behaves identically; the ladder only engages on failure.
    """
    from repro.tuner import dispatch

    plan, source = policy.select(p, q, r, dtype, threads, cache)
    timed = policy.wants_timing(source)
    dtype_a, dtype_b = A.dtype, B.dtype
    if timed:
        workspace = dispatch.build_workspace(plan, p, q, r, dtype_a, dtype_b)
    else:
        workspace = dispatch.workspace_for(plan, p, q, r, dtype_a, dtype_b)
    try:
        start = policy.clock()
        C = _attempt(cfg, plan, A, B, pool, out, workspace)
        seconds = policy.clock() - start
        if cfg.numeric_check:
            reason = check_product(plan, A, B, C, cfg)
            if reason is not None:
                telemetry.incr("guard.numeric_violations")
                raise NumericViolation(reason)
    except Exception as exc:
        _note_failure("plan", plan, exc)
        if cache is not None:
            cache.record_failure(p, q, r, dtype, threads, plan, exc)
        _recover_infrastructure(cfg, plan, exc)
        if not timed:
            dispatch.evict_workspace(plan, p, q, r, dtype_a, dtype_b)
        infra = isinstance(exc, INFRASTRUCTURE_FAILURES)
    else:
        if timed:
            policy.observe(p, q, r, dtype, threads, cache, plan, seconds)
        if cache is not None:
            cache.record_success(p, q, r, dtype, threads, plan)
        if telemetry.enabled():
            dispatch._record_call(plan, source, p, q, r, dtype, threads,
                                  seconds, timed, workspace)
        return C

    # stage 2: cost-model fallback (skipped for infrastructure failures)
    if not infra:
        fallback = _fallback_plan(plan, p, q, r, dtype, threads, cache)
        if fallback is not None:
            telemetry.incr("guard.fallbacks", stage="model")
            ws = dispatch.build_workspace(fallback, p, q, r,
                                          dtype_a, dtype_b)
            try:
                C = _attempt(cfg, fallback, A, B, pool, out, ws)
                if cfg.numeric_check:
                    reason = check_product(fallback, A, B, C, cfg)
                    if reason is not None:
                        telemetry.incr("guard.numeric_violations")
                        raise NumericViolation(reason)
            except Exception as exc:
                _note_failure("model", fallback, exc)
                if cache is not None:
                    cache.record_failure(p, q, r, dtype, threads,
                                         fallback, exc)
                _recover_infrastructure(cfg, fallback, exc)
            else:
                if telemetry.enabled():
                    dispatch._record_call(fallback, "guard", p, q, r,
                                          dtype, threads, 0.0, False, ws)
                return C

    # stage 3: classical -- cannot fail
    telemetry.incr("guard.fallbacks", stage="classical")
    C = _classical(A, B, out)
    if telemetry.enabled():
        dispatch._record_call(Plan(threads=threads), "guard", p, q, r,
                              dtype, threads, 0.0, False, None)
    return C


def run_batch_guarded(cfg: GuardConfig, bplan, A, B, out, pool, cache,
                      p: int, q: int, r: int, dtype: str, threads: int,
                      batch: int):
    """Guarded batched execution: batch plan -> classical per-element.

    The batch analogue collapses the ladder to two stages -- a failing
    batch plan degrades straight to classical ``np.matmul`` per element
    (re-resolving a second fast batch plan is not worth the latency on a
    serving batch).  The numeric guardrail samples the first and last
    elements of the batch.
    """
    from repro.tuner import batched

    def execute():
        if cfg.timeout_s is None:
            return batched.execute_batch_plan(bplan, A, B, out=out,
                                              pool=pool)
        result = _watchdog_run(
            lambda: batched.execute_batch_plan(bplan, A, B, pool=pool),
            cfg.timeout_s,
        )
        return _copy_batch_result(result, A, B, out)

    try:
        result = execute()
        elements = _batch_elements(result)
        if faults.active and elements and faults.should_fire("apa.nan"):
            _poison(elements[0])
        if cfg.numeric_check and elements:
            a_list, b_list, _, _, _, _ = batched._normalize_operands(A, B)
            for idx in {0, len(elements) - 1}:
                reason = check_product(bplan.plan, a_list[idx], b_list[idx],
                                       elements[idx], cfg)
                if reason is not None:
                    telemetry.incr("guard.numeric_violations")
                    raise NumericViolation(reason)
    except Exception as exc:
        _note_failure("batch", bplan.plan, exc)
        if cache is not None:
            cache.record_failure(p, q, r, dtype, threads, bplan.plan, exc,
                                 batch=batch)
        _recover_infrastructure(cfg, bplan.plan, exc)
    else:
        if cache is not None:
            cache.record_success(p, q, r, dtype, threads, bplan.plan,
                                 batch=batch)
        return result

    telemetry.incr("guard.fallbacks", stage="classical")
    return _classical_batch(A, B, out)


def _batch_elements(result) -> list:
    if isinstance(result, np.ndarray):
        return list(result)
    return list(result)


def _copy_batch_result(result, A, B, out):
    """Copy a watchdog-private batch result into the caller's ``out``."""
    from repro.tuner import batched

    if out is None:
        return result
    a_list, b_list, p, q, r, stacked = batched._normalize_operands(A, B)
    c_list = batched._check_batch_out(out, a_list, b_list, p, r, stacked)
    for c, src in zip(c_list, _batch_elements(result)):
        np.copyto(c, src, casting="same_kind")
    return out


def _classical_batch(A, B, out):
    """Per-element ``np.matmul`` honoring the batched operand forms."""
    from repro.tuner import batched

    a_list, b_list, p, q, r, stacked = batched._normalize_operands(A, B)
    batch = len(a_list)
    dtype = np.result_type(a_list[0], b_list[0]) if batch else np.dtype("f8")
    if out is not None:
        c_list = batched._check_batch_out(out, a_list, b_list, p, r, stacked)
        result = out
    elif stacked:
        result = np.empty((batch, p, r), dtype=dtype)
        c_list = list(result)
    else:
        c_list = [np.empty((p, r), dtype=dtype) for _ in range(batch)]
        result = c_list
    for a, b, c in zip(a_list, b_list, c_list):
        np.matmul(a, b, out=c)
    return result
