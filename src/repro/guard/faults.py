"""Deterministic fault injection: the chaos half of ``repro.guard``.

A resilience layer is only as trustworthy as the failures it has been
*proven* against, so every degradation path in the guard chain is
exercised through named injection points compiled into the production
code itself -- one ``faults.active`` branch when disarmed, the same
one-branch contract :mod:`repro.obs.telemetry` holds for observability.

Injection points (the names the chaos suite and CI use):

``plan.raise``
    :func:`repro.tuner.dispatch.execute_plan` raises :class:`InjectedFault`
    before doing any work -- a tuner/codegen/executor bug surfacing as an
    exception on the serving path.
``apa.nan``
    the product of a guarded execution attempt is poisoned with NaN after
    it completes -- what a mis-truncated APA combine produces silently.
``worker.hang``
    the next task submitted to a :class:`repro.parallel.pool.WorkerPool`
    blocks in the worker (bounded by ``hang_seconds``) before running --
    a stuck thread the watchdog must detect.
``worker.die``
    the pool marks itself broken; ``submit`` raises
    :class:`repro.parallel.pool.PoolBrokenError` -- a dead executor.
``workspace.overflow``
    a :meth:`repro.core.workspace.Workspace.take` is forced off the arena
    *and* its heap fallback fails with ``MemoryError`` -- arena overflow
    under real memory pressure, not the graceful everyday kind.
``cache.corrupt``
    :meth:`repro.tuner.cache.PlanCache.load` treats the cache file as
    unparsable -- a crash mid-write / bit-rot scenario, exercising the
    warn-once + ``.corrupt``-sidecar recovery path.
``cbackend.compilefail``
    :func:`repro.codegen.cbackend._compile_source` raises
    :class:`InjectedFault` instead of invoking the compiler -- a broken
    toolchain discovered at serving time; dispatch must degrade a
    ``backend="compiled"`` plan to the NumPy-source module, never fail
    the multiply.  (The ``available()`` probe is exempt so a transient
    injected fault cannot poison its process-lifetime cache.)

Activation is explicit: the :func:`inject` context manager (tests), or
the ``REPRO_FAULTS`` environment variable (CI chaos jobs), e.g.
``REPRO_FAULTS="plan.raise,worker.hang:2"`` -- ``point`` alone fires on
every pass through the site, ``point:N`` fires exactly N times.  Each
firing is counted in the ``faults.fired`` telemetry counter, so a chaos
run's injected-vs-recovered ledger is readable from ``repro stats``.

Determinism: firings are consumed in program order under one lock, there
is no randomness anywhere, and a disarmed process (no env var, no active
``inject``) never evaluates anything beyond the module-level ``active``
flag.
"""

from __future__ import annotations

import contextlib
import os
import threading

from repro.obs import telemetry

#: every named injection point (specs naming anything else are rejected)
POINTS = (
    "plan.raise",
    "apa.nan",
    "worker.hang",
    "worker.die",
    "workspace.overflow",
    "cache.corrupt",
    "cbackend.compilefail",
)

#: default upper bound on an injected hang -- a chaos run whose watchdog
#: is broken must still terminate
DEFAULT_HANG_SECONDS = 30.0


class InjectedFault(RuntimeError):
    """The exception raised by raising injection points."""


_lock = threading.Lock()
_specs: dict[str, int | None] = {}  # point -> remaining firings (None = inf)
_fired: dict[str, int] = {}
_hang_event = threading.Event()
_hang_seconds = DEFAULT_HANG_SECONDS

#: the one-branch disarmed check: production sites read this module
#: attribute and go no further when it is False
active = False


def _parse_spec(spec: str) -> tuple[str, int | None]:
    point, _, count = spec.partition(":")
    point = point.strip()
    if point not in POINTS:
        raise ValueError(
            f"unknown fault point {point!r}; valid points: {', '.join(POINTS)}"
        )
    if not count:
        return point, None
    n = int(count)
    if n < 1:
        raise ValueError(f"fault count must be >= 1 in {spec!r}")
    return point, n


def arm(*specs: str, hang_seconds: float = DEFAULT_HANG_SECONDS) -> None:
    """Arm fault points (``"point"`` or ``"point:count"`` strings).

    Arming merges into whatever is already armed; unknown points raise
    before anything is armed.  ``hang_seconds`` bounds ``worker.hang``.
    """
    global active, _hang_seconds
    parsed = [_parse_spec(s) for s in specs]
    with _lock:
        for point, count in parsed:
            _specs[point] = count
        _hang_seconds = float(hang_seconds)
        _hang_event.clear()
        active = bool(_specs)


def clear() -> None:
    """Disarm every point and release any injected hang."""
    global active
    with _lock:
        _specs.clear()
        active = False
    _hang_event.set()


@contextlib.contextmanager
def inject(*specs: str, hang_seconds: float = DEFAULT_HANG_SECONDS):
    """Context manager arming faults for its body, disarming on exit.

    Exit also releases workers parked in an injected hang, so a test
    never leaks a blocked pool thread past its own scope.
    """
    arm(*specs, hang_seconds=hang_seconds)
    try:
        yield
    finally:
        clear()


def install_from_env(env: str | None = None) -> bool:
    """Arm from ``REPRO_FAULTS`` (or an explicit spec string); ``True``
    when anything was armed.  Malformed specs raise -- a chaos CI job
    with a typo must fail loudly, not run faultless and pass."""
    raw = os.environ.get("REPRO_FAULTS", "") if env is None else env
    specs = [s for s in (part.strip() for part in raw.split(",")) if s]
    if not specs:
        return False
    arm(*specs)
    return True


def should_fire(point: str) -> bool:
    """Consume one firing of ``point``; ``False`` when disarmed/spent.

    The injection-site idiom is ``if faults.active and
    faults.should_fire("..."):`` so a disarmed process pays one attribute
    read and one branch.
    """
    if not active:
        return False
    with _lock:
        if point not in _specs:
            return False
        remaining = _specs[point]
        if remaining is not None:
            if remaining <= 0:
                return False
            _specs[point] = remaining - 1
        _fired[point] = _fired.get(point, 0) + 1
    telemetry.incr("faults.fired", point=point)
    return True


def hang() -> None:
    """Park the calling (worker) thread until :func:`clear` or the armed
    ``hang_seconds`` bound elapses -- the body of ``worker.hang``."""
    _hang_event.wait(_hang_seconds)


def fired(point: str | None = None) -> int | dict[str, int]:
    """Total firings of one point (or a copy of the whole ledger)."""
    with _lock:
        if point is not None:
            return _fired.get(point, 0)
        return dict(_fired)


def reset_fired() -> None:
    """Zero the firing ledger (tests)."""
    with _lock:
        _fired.clear()


# arm from the environment at import, mirroring REPRO_OBS: a chaos CI job
# exports REPRO_FAULTS and every process in it is born armed
install_from_env()
