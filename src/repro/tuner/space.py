"""The tuning space: execution plans and their enumeration.

A :class:`Plan` pins down everything the paper leaves to the practitioner:
which algorithm (by catalog name, including shape-matched permutations),
how many recursive steps, which parallel schedule (including the
sub-group hybrid's P', swept over the divisors of the thread count),
which matrix-addition strategy, the leaf cutoff and the thread count.
``enumerate_plans`` generates the candidates for one problem shape and
ranks them with the ``core.cost`` analytical model -- arithmetic plus the
Section 4.2 / Ballard-style communication terms -- so measurement
(``repro.tuner.measure``) only has to time a short, promising shortlist.
"""

from __future__ import annotations

import dataclasses
import functools

from repro.algorithms import get_algorithm, list_algorithms
from repro.core.cost import batch_cost, parallel_traffic, plan_cost
from repro.core.stability import max_stable_steps
from repro.core.transforms import permutation_family
from repro.parallel.schedules import SCHEMES

#: schedule names a plan may reference: the paper's three parallel schemes
#: (plus the sub-group hybrid) and the sequential compiled path.
PLAN_SCHEMES = ("sequential",) + SCHEMES

#: leaf subproblems below this dimension have left the flat part of the
#: dgemm ramp-up curve (Section 3.4); recursion stops there.
DEFAULT_MIN_LEAF = 64

#: the float32 space recurses deeper: sgemm's ramp-up knee sits lower
#: (half the bytes per entry, double the FMA width), so smaller leaves
#: still run at full rate -- Huang et al. (FLAME WN #82) observe the
#: crossover points shift accordingly.  Depth stays bounded by
#: ``core.stability.max_stable_steps``: lower precision buys depth only
#: while the compounded growth factor keeps half the mantissa.
FLOAT32_MIN_LEAF = 32

#: recursion-depth caps per space (float32 may go one deeper, stability
#: permitting)
MAX_STEPS = {"float32": 4, "float64": 3}

#: plain-BLAS pseudo-algorithm name usable in plans
DGEMM = "dgemm"

#: serving backends a plan may name: the NumPy-source generated modules
#: (every host) or the compiled C chain kernels (hosts where
#: ``repro.codegen.cbackend.available()`` -- enumerated only there)
PLAN_BACKENDS = ("numpy", "compiled")


def default_min_leaf(dtype: str = "float64") -> int:
    """Leaf cutoff for a dtype's candidate space."""
    return FLOAT32_MIN_LEAF if str(dtype) == "float32" else DEFAULT_MIN_LEAF


def trivial_dim(dtype: str = "float64") -> int:
    """Problems with any dimension below this go straight to plain BLAS.

    Twice the dtype's leaf cutoff: one recursive step would already
    produce sub-cutoff leaves, so no fast plan can exist (Section 3.4).
    Dtype-aware for the same reason the leaf cutoff is -- float32's knee
    sits lower, so its fast-path region starts earlier.
    """
    return 2 * default_min_leaf(dtype)


@dataclasses.dataclass(frozen=True)
class Plan:
    """One fully specified way to execute a multiplication.

    ``algorithm`` is a catalog registry name (``strassen``, ``s424``, ...)
    or ``"dgemm"`` for the vendor BLAS; ``steps == 0`` also means plain
    BLAS.  ``scheme`` is ``"sequential"`` or one of the parallel schemes;
    ``threads`` is the BLAS thread count (sequential/dgemm) or worker
    count (parallel schemes).  ``subgroup`` is the sub-group hybrid's P'
    (Section 4.3): the remainder leaves run on disjoint groups of
    ``subgroup`` threads, so it must divide ``threads``; ``None`` defers
    to :func:`repro.parallel.schedules.default_subgroup` at execution
    time and is the only legal value for every other scheme.

    ``backend`` picks the serving kernels for a sequential fast plan:
    ``"numpy"`` (the generated NumPy-source modules) or ``"compiled"``
    (the fused single-pass C chain kernels of
    :mod:`repro.codegen.cbackend`).  Compiled plans are sequential-only
    -- the parallel schemes schedule the NumPy executors -- and
    meaningless for dgemm, which has no chains to fuse.
    """

    algorithm: str = DGEMM
    steps: int = 0
    scheme: str = "sequential"
    strategy: str = "write_once"
    threads: int = 1
    min_leaf: int = DEFAULT_MIN_LEAF
    subgroup: int | None = None
    backend: str = "numpy"

    def __post_init__(self):
        if self.scheme not in PLAN_SCHEMES:
            raise ValueError(
                f"scheme must be one of {PLAN_SCHEMES}, got {self.scheme!r}"
            )
        if self.steps < 0:
            raise ValueError("steps must be >= 0")
        if self.threads < 1:
            raise ValueError("threads must be >= 1")
        if self.backend not in PLAN_BACKENDS:
            raise ValueError(
                f"backend must be one of {PLAN_BACKENDS}, got {self.backend!r}"
            )
        if self.backend == "compiled":
            if self.algorithm == DGEMM or self.steps == 0:
                raise ValueError(
                    "backend='compiled' needs a fast algorithm with "
                    "steps >= 1; dgemm has no chains to compile"
                )
            if self.scheme != "sequential":
                raise ValueError(
                    f"backend='compiled' serves the sequential path only, "
                    f"not scheme {self.scheme!r}"
                )
        if self.subgroup is not None:
            if self.scheme != "hybrid-subgroup":
                raise ValueError(
                    f"subgroup (P') only applies to the hybrid-subgroup "
                    f"scheme, not {self.scheme!r}"
                )
            if self.subgroup < 1 or self.threads % self.subgroup:
                raise ValueError(
                    f"subgroup must be a divisor of threads={self.threads}, "
                    f"got {self.subgroup}"
                )

    @property
    def is_dgemm(self) -> bool:
        return self.algorithm == DGEMM or self.steps == 0

    def describe(self) -> str:
        if self.is_dgemm:
            return f"dgemm({self.threads}t)"
        scheme = self.scheme
        if self.subgroup is not None:
            scheme = f"{scheme}[P'={self.subgroup}]"
        # the backend is part of a plan's identity (quarantine ledger keys
        # and cache displays go through describe), so surface it
        suffix = " [cc]" if self.backend == "compiled" else ""
        return (
            f"{self.algorithm} steps={self.steps} {scheme}"
            f"({self.threads}t){suffix}"
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "Plan":
        if not isinstance(d, dict):
            raise TypeError(f"plan payload must be a dict, got "
                            f"{type(d).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in known})


def retarget_backend(plan: Plan, backend: str) -> Plan:
    """The same plan pinned to ``backend``, validating compatibility.

    ``backend="compiled"`` requires a sequential fast plan (dgemm and the
    parallel schemes have nothing for the C chain kernels to serve) --
    incompatible retargets raise ``ValueError`` rather than silently
    returning a plan that would degrade on every call.
    """
    if backend not in PLAN_BACKENDS:
        raise ValueError(
            f"backend must be one of {PLAN_BACKENDS}, got {backend!r}"
        )
    if plan.backend == backend:
        return plan
    if backend == "compiled" and (plan.is_dgemm
                                  or plan.scheme != "sequential"):
        raise ValueError(
            f"plan {plan.describe()} cannot serve backend='compiled' "
            f"(needs a sequential fast plan)"
        )
    return dataclasses.replace(plan, backend=backend)


def compiled_backend_available() -> bool:
    """True when the compiled C chain backend can serve plans here.

    Lazy import so merely enumerating plans on a host without a compiler
    never pays the probe's import cost twice; the underlying probe result
    is process-cached by ``cbackend.available``.
    """
    from repro.codegen import cbackend

    return cbackend.available()


#: the batch-parallelism axis: run the pool *within* each multiply (the
#: existing parallel schedules, elements serially) or fan the pool across
#: *elementwise* batch entries (each element sequential, BLAS pinned to 1)
BATCH_MODES = ("within", "elementwise")


@dataclasses.dataclass(frozen=True)
class BatchPlan:
    """A per-element :class:`Plan` plus the batch-parallelism decision.

    ``mode="within"`` executes batch elements one at a time, each using
    the embedded plan's own (possibly parallel) schedule; ``workers``
    then equals the plan's thread count.  ``mode="elementwise"`` fans
    elements across a pool of ``workers`` threads, each element running
    the *sequential* path single-BLAS-threaded under a per-worker arena
    -- so the embedded plan must be sequential at 1 thread.
    """

    plan: Plan
    mode: str = "within"
    workers: int = 1

    def __post_init__(self):
        if self.mode not in BATCH_MODES:
            raise ValueError(
                f"mode must be one of {BATCH_MODES}, got {self.mode!r}"
            )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.mode == "elementwise":
            if self.plan.scheme != "sequential":
                raise ValueError(
                    "elementwise batch mode runs each element on the "
                    f"sequential path, not scheme {self.plan.scheme!r}"
                )
            if self.plan.threads != 1:
                raise ValueError(
                    "elementwise batch mode pins each element to 1 BLAS "
                    f"thread, got plan.threads={self.plan.threads}"
                )
        elif self.workers != self.plan.threads:
            raise ValueError(
                f"within batch mode uses the plan's own threads "
                f"({self.plan.threads}), got workers={self.workers}"
            )

    def describe(self) -> str:
        if self.mode == "elementwise":
            return f"elementwise[{self.workers}w] x {self.plan.describe()}"
        return f"within x {self.plan.describe()}"

    def to_dict(self) -> dict:
        return {"plan": self.plan.to_dict(), "mode": self.mode,
                "workers": self.workers}

    @classmethod
    def from_dict(cls, d: dict) -> "BatchPlan":
        return cls(plan=Plan.from_dict(d["plan"]),
                   mode=d.get("mode", "within"),
                   workers=int(d.get("workers", 1)))


def batch_plan_cost(bplan: BatchPlan, p: int, q: int, r: int, batch: int,
                    add_penalty: float = 4.0) -> float:
    """Modeled batch wall-clock of ``bplan`` (gemm-equivalent flops)."""
    plan = bplan.plan
    alg = None if plan.is_dgemm else get_algorithm(plan.algorithm)
    return batch_cost(
        alg, p, q, r, plan.steps, batch, threads=bplan.workers,
        mode=bplan.mode, scheme=plan.scheme, subgroup=plan.subgroup,
        add_penalty=add_penalty,
    )


def enumerate_batch_plans(
    p: int,
    q: int,
    r: int,
    batch: int,
    threads: int = 1,
    max_candidates: int | None = None,
    add_penalty: float = 4.0,
    dtype: str = "float64",
) -> list[BatchPlan]:
    """Candidate batch plans for ``batch`` same-shape products, best first.

    Two heads merged by :func:`repro.core.cost.batch_cost`: the *within*
    head wraps the ordinary per-call candidate space at the full thread
    budget, and the *elementwise* head wraps the 1-thread sequential
    space fanned across ``threads`` workers.  Unlike the per-call space,
    sub-``trivial_dim`` shapes still produce two candidates (elementwise
    vs within dgemm) -- fanning single-threaded gemms across the pool is
    precisely the sub-knee batching win, so trivial shapes are where the
    batch axis matters most.  ``threads <= 1`` has no fan-out to rank:
    only the within head is enumerated.
    """
    dtype = str(dtype)
    head = max_candidates if max_candidates is not None else 8
    scored: list[tuple[float, BatchPlan]] = []
    for plan in enumerate_plans(p, q, r, threads=threads,
                                max_candidates=head, add_penalty=add_penalty,
                                dtype=dtype):
        bplan = BatchPlan(plan=plan, mode="within", workers=plan.threads)
        scored.append((batch_plan_cost(bplan, p, q, r, batch,
                                       add_penalty=add_penalty), bplan))
    if threads > 1:
        for plan in enumerate_plans(p, q, r, threads=1,
                                    max_candidates=head,
                                    add_penalty=add_penalty, dtype=dtype):
            bplan = BatchPlan(plan=plan, mode="elementwise", workers=threads)
            scored.append((batch_plan_cost(bplan, p, q, r, batch,
                                           add_penalty=add_penalty), bplan))
    scored.sort(key=lambda cb: (cb[0], cb[1].describe()))
    bplans = [bp for _, bp in scored]
    if max_candidates is not None:
        bplans = bplans[:max_candidates]
    return bplans


@functools.lru_cache(maxsize=1)
def candidate_algorithms() -> list[str]:
    """All catalog names the tuner considers.

    Every exact root algorithm plus the base-case permutations of each
    (Props. 2.1/2.2), so rectangular shapes can pick an orientation that
    matches, e.g. ``s424`` for the outer-product ``N x k x N`` regime.
    The cost model, not this list, decides which orientation fits a shape.
    """
    roots: list[tuple[str, object]] = []
    for root in list_algorithms(include_apa=False):
        try:
            roots.append((root, get_algorithm(root)))
        except KeyError:
            continue
    names = [name for name, _ in roots]
    covered = {alg.base_case for _, alg in roots}
    for _, alg in roots:
        for base in permutation_family(alg):
            if base in covered:
                continue
            name = "s%d%d%d" % base
            try:
                get_algorithm(name)
            except KeyError:
                continue
            covered.add(base)
            names.append(name)
    return sorted(set(names))


def max_useful_steps(
    base: tuple[int, int, int], p: int, q: int, r: int,
    min_leaf: int = DEFAULT_MIN_LEAF, cap: int = 3,
) -> int:
    """Deepest recursion whose leaves stay >= ``min_leaf`` in every dim."""
    m, k, n = base
    steps = 0
    cp, cq, cr = p, q, r
    while steps < cap and min(cp // m, cq // k, cr // n) >= min_leaf:
        cp, cq, cr = cp // m, cq // k, cr // n
        steps += 1
    return steps


def subgroup_candidates(threads: int) -> list[int]:
    """P' values the hybrid-subgroup sub-space sweeps: the proper divisors
    of ``threads`` (Section 4.3 requires P' | P; ``P' == P`` degenerates
    to the plain hybrid's whole-pool remainder phase, so it is excluded --
    the ``hybrid`` candidate already covers it)."""
    return [d for d in range(1, threads) if threads % d == 0]


def enumerate_plans(
    p: int,
    q: int,
    r: int,
    threads: int = 1,
    min_leaf: int | None = None,
    max_candidates: int | None = None,
    add_penalty: float = 4.0,
    dtype: str = "float64",
) -> list[Plan]:
    """Candidate plans for one shape, best-ranked (by the cost model) first.

    The space is algorithm x steps x schedule (x P' for the sub-group
    hybrid), pruned: recursion depths whose leaves drop below ``min_leaf``
    are skipped, and fast plans whose modeled cost exceeds plain dgemm are
    dropped (they cannot win).  The dgemm baseline plan is always
    included, so the list is never empty.

    With ``threads > 1`` every parallel scheme is enumerated -- ranking
    (the cost model's :func:`repro.core.cost.parallel_traffic` term), not
    list slicing, decides which schemes make a shortlist -- and the
    ``hybrid-subgroup`` scheme is swept over :func:`subgroup_candidates`
    per (algorithm, steps) pair, so the decisive P' knob of the paper's
    Section 4.3 is an explicit tuning dimension.

    The space is dtype-specific: float32 uses a lower leaf cutoff and a
    deeper step cap (``FLOAT32_MIN_LEAF`` / ``MAX_STEPS``), but every
    (algorithm, steps) pair is additionally bounded by
    :func:`repro.core.stability.max_stable_steps` so the extra depth never
    exceeds the precision's growth budget.

    On hosts with a working C compiler every sequential candidate gets a
    ``backend="compiled"`` twin, costed with the fused-chain discount
    (:data:`repro.core.cost.COMPILED_ADD_DISCOUNT`); hosts without one
    never see a compiled candidate, so tuning stays portable.
    """
    dtype = str(dtype)
    if min_leaf is None:
        min_leaf = default_min_leaf(dtype)
    cap = MAX_STEPS.get(dtype, MAX_STEPS["float64"])
    schemes = ("sequential",) if threads <= 1 else SCHEMES
    compiled_ok = "sequential" in schemes and compiled_backend_available()
    subgroups = subgroup_candidates(threads)
    scored: list[tuple[float, Plan]] = [
        (plan_cost(None, p, q, r, 0), Plan(threads=threads, min_leaf=min_leaf))
    ]
    dgemm_cost = scored[0][0]
    for name in candidate_algorithms():
        alg = get_algorithm(name)
        depth = max_useful_steps(alg.base_case, p, q, r,
                                 min_leaf=min_leaf, cap=cap)
        depth = min(depth, max_stable_steps(alg, dtype))
        for steps in range(1, depth + 1):
            # the arithmetic term depends only on (algorithm, steps);
            # schemes differ by their (non-negative) traffic term, so an
            # (alg, steps) pair that already loses to dgemm sequentially
            # cannot win under any scheme
            arith = plan_cost(alg, p, q, r, steps, add_penalty=add_penalty)
            if arith >= dgemm_cost:
                continue
            for scheme in schemes:
                sweep = subgroups if scheme == "hybrid-subgroup" else [None]
                for sub in sweep:
                    cost = arith + add_penalty * parallel_traffic(
                        alg, p, q, r, steps, scheme=scheme,
                        threads=threads, subgroup=sub,
                    )
                    if cost >= dgemm_cost:
                        continue
                    scored.append((cost, Plan(
                        algorithm=name, steps=steps, scheme=scheme,
                        threads=threads, min_leaf=min_leaf, subgroup=sub,
                    )))
            if compiled_ok:
                # the compiled twin of the sequential candidate: same
                # arithmetic, fused single-pass additions (cheaper traffic)
                ccost = plan_cost(alg, p, q, r, steps,
                                  add_penalty=add_penalty, backend="compiled")
                if ccost < dgemm_cost:
                    scored.append((ccost, Plan(
                        algorithm=name, steps=steps, scheme="sequential",
                        threads=threads, min_leaf=min_leaf,
                        backend="compiled",
                    )))
    scored.sort(key=lambda cp_: (cp_[0], cp_[1].describe()))
    plans = [pl for _, pl in scored]
    if max_candidates is not None:
        head = plans[:max_candidates]
        if not any(pl.is_dgemm for pl in head):
            head[-1:] = [next(pl for pl in plans if pl.is_dgemm)]
        plans = head
    return plans
