"""Batched dispatch: one plan, one arena, one pool for a whole batch.

``repro.matmul_batched`` serves the workload the per-call hot path cannot
amortize: many same-shape products, each small enough that plan
resolution, arena lookup and thread fan-out are a visible share of the
call (the Section 3.4 regime below the dgemm ramp-up knee -- exactly
where a serving workload of repeated small products lives).  The batched
entry point resolves **one** plan, warms **one** arena (or one per-worker
arena pool), borrows **one** persistent worker pool, and then runs every
element through the ordinary :func:`repro.tuner.dispatch.execute_plan`
with the arena reset between elements -- so a warm batched call touches
the heap zero times end to end, not just per element.

The batch also opens a new tunable axis (:data:`repro.tuner.space.BATCH_MODES`):

- ``within`` -- elements run serially, each using the per-element plan's
  own (possibly parallel) schedule: the existing behaviour, amortized.
- ``elementwise`` -- elements fan out across the worker pool, each
  running the *sequential* path with BLAS pinned to a single thread
  under a private per-worker arena (:class:`repro.core.workspace.WorkspacePool`).
  Below the ramp-up knee ``threads`` independent single-threaded gemms
  beat one ``threads``-way gemm per element, which is the batching win
  the paper's overhead analysis predicts.

The mode is cost-ranked by :func:`repro.core.cost.batch_cost`, measurable
by :func:`repro.tuner.measure.tune_batch` (``tune="auto"``/``"always"``),
and remembered in the plan cache under a ``batch``-suffixed key
(:func:`repro.tuner.cache.batched_key`) -- per-call entries are untouched.
"""

from __future__ import annotations

import contextlib
import threading
from collections import OrderedDict
from collections.abc import Sequence

import numpy as np

from repro.algorithms import get_algorithm
from repro.core.workspace import WorkspacePool, codegen_footprint
from repro.guard import chain
from repro.obs import telemetry
from repro.parallel import blas
from repro.parallel.pool import WorkerPool, resolve_threads
from repro.tuner import dispatch
from repro.tuner.cache import PlanCache
from repro.tuner.space import (
    BATCH_MODES,
    BatchPlan,
    Plan,
    batch_plan_cost,
)
from repro.util.validation import check_matmul_dims, require_2d

#: per-worker arena pools kept warm at once -- each serves one
#: (plan, shape, dtype, workers) combination of elementwise batches
#: (cf. ``dispatch.WORKSPACE_CACHE_SIZE`` for the per-call arenas)
BATCH_POOL_CACHE_SIZE = 4

_arena_pools: "OrderedDict[tuple, WorkspacePool]" = OrderedDict()
_batch_lock = threading.Lock()


def reset_batch_pools() -> None:
    """Drop every cached per-worker arena pool (tests; to give memory back)."""
    with _batch_lock:
        _arena_pools.clear()


# ---------------------------------------------------------------------------
# operand normalization: stacked 3-D arrays or lists of same-shape 2-D
# ---------------------------------------------------------------------------
def _normalize_operands(A, B):
    """Validate batched operands; returns ``(a_list, b_list, p, q, r, stacked)``.

    Two accepted forms: stacked 3-D arrays ``(b, p, q) @ (b, q, r)``, or
    sequences of same-shape 2-D arrays (the list convenience path).  One
    shape per batch is the amortization contract -- ragged batches are
    rejected, not silently looped.
    """
    if isinstance(A, np.ndarray) or isinstance(B, np.ndarray):
        A = np.asarray(A)
        B = np.asarray(B)
        if A.ndim != 3 or B.ndim != 3:
            raise ValueError(
                f"stacked operands must be 3-D (batch, rows, cols); got "
                f"A.ndim={A.ndim}, B.ndim={B.ndim} -- pass lists of 2-D "
                f"arrays for the list path"
            )
        if A.shape[0] != B.shape[0]:
            raise ValueError(
                f"batch sizes differ: A has {A.shape[0]}, B has {B.shape[0]}"
            )
        if A.shape[2] != B.shape[1]:
            raise ValueError(
                f"inner dimensions do not match: A is {A.shape[1]}x{A.shape[2]} "
                f"per element, B is {B.shape[1]}x{B.shape[2]}"
            )
        batch = A.shape[0]
        return (list(A), list(B), A.shape[1], A.shape[2], B.shape[2], True)
    a_list = [require_2d(np.asarray(a), f"A[{i}]") for i, a in enumerate(A)]
    b_list = [require_2d(np.asarray(b), f"B[{i}]") for i, b in enumerate(B)]
    if len(a_list) != len(b_list):
        raise ValueError(
            f"batch sizes differ: A has {len(a_list)}, B has {len(b_list)}"
        )
    if not a_list:
        raise ValueError("empty batch: the list path needs >= 1 element")
    for i, (a, b) in enumerate(zip(a_list, b_list)):
        check_matmul_dims(a, b)
        if a.shape != a_list[0].shape or b.shape != b_list[0].shape:
            raise ValueError(
                f"ragged batch: element {i} is "
                f"{a.shape}@{b.shape}, element 0 is "
                f"{a_list[0].shape}@{b_list[0].shape} -- one shape per "
                f"batch is the amortization contract (split ragged work "
                f"into per-shape batches)"
            )
        if a.dtype != a_list[0].dtype or b.dtype != b_list[0].dtype:
            raise ValueError(
                f"mixed dtypes in batch: element {i} is "
                f"{a.dtype.name}@{b.dtype.name}, element 0 is "
                f"{a_list[0].dtype.name}@{b_list[0].dtype.name}"
            )
    p, q = a_list[0].shape
    return (a_list, b_list, p, q, b_list[0].shape[1], False)


def _check_batch_out(out, a_list, b_list, p: int, r: int, stacked: bool):
    """Validate ``out=`` at the batch level; returns per-element views."""
    batch = len(a_list)
    dtype = np.result_type(a_list[0], b_list[0]) if batch else None
    if stacked:
        if not isinstance(out, np.ndarray) or out.ndim != 3:
            raise ValueError("out must be a 3-D ndarray for stacked operands")
        if out.shape != (batch, p, r):
            raise ValueError(
                f"out has shape {out.shape}, expected {(batch, p, r)}"
            )
        if dtype is not None and out.dtype != dtype:
            raise ValueError(f"out has dtype {out.dtype}, expected {dtype}")
        if not out.flags.writeable:
            raise ValueError("out must be writeable")
        for x in a_list + b_list:
            if np.may_share_memory(out, x):
                raise ValueError("out must not overlap A or B")
        return list(out)
    if not isinstance(out, (list, tuple)) or len(out) != batch:
        raise ValueError(
            f"out must be a list of {batch} 2-D arrays for list operands"
        )
    from repro.core.workspace import check_out

    return [check_out(c, a, b)
            for c, a, b in zip(out, a_list, b_list)]


# ---------------------------------------------------------------------------
# per-worker arena pools (the batched footprint)
# ---------------------------------------------------------------------------
def _element_nbytes(plan: Plan, p: int, q: int, r: int,
                    dtype_a, dtype_b) -> int:
    """Arena bytes one elementwise worker needs for one element (0 for
    plain BLAS, which needs no workspace)."""
    if plan.is_dgemm:
        return 0
    alg = get_algorithm(plan.algorithm)
    return codegen_footprint(alg, plan.strategy, False, (p, q, r),
                             dtype_a, plan.steps, dtype_b=dtype_b)


def _arena_pool(plan: Plan, p: int, q: int, r: int, dtype_a, dtype_b,
                workers: int) -> WorkspacePool | None:
    """The cached per-worker arena pool for an elementwise batch plan --
    built on first use (counted by ``workspace.batch_arena_builds``),
    LRU-kept up to :data:`BATCH_POOL_CACHE_SIZE`.  ``None`` when the
    element plan needs no workspace (plain BLAS)."""
    nbytes = _element_nbytes(plan, p, q, r, dtype_a, dtype_b)
    if nbytes == 0:
        return None
    key = (plan, p, q, r, str(np.dtype(dtype_a)), str(np.dtype(dtype_b)),
           workers)
    with _batch_lock:
        apool = _arena_pools.get(key)
        if apool is not None:
            _arena_pools.move_to_end(key)
            return apool
    apool = WorkspacePool(nbytes, workers)
    telemetry.incr("workspace.batch_arena_builds")
    with _batch_lock:
        _arena_pools[key] = apool
        while len(_arena_pools) > BATCH_POOL_CACHE_SIZE:
            _arena_pools.popitem(last=False)
    return apool


# ---------------------------------------------------------------------------
# resolution: one decision for the whole batch
# ---------------------------------------------------------------------------
def _sequential_element_plan(p: int, q: int, r: int, dtype: str,
                             cache: PlanCache) -> Plan:
    """The per-element plan of the elementwise head: the 1-thread
    resolution for this shape, coerced onto the sequential path (a
    cross-thread transfer can hand back a retargeted parallel scheme,
    which one fanned-out element cannot run)."""
    import dataclasses

    plan, _ = dispatch.get_plan(p, q, r, dtype, threads=1, cache=cache)
    if plan.scheme != "sequential" or plan.threads != 1:
        plan = dataclasses.replace(plan, scheme="sequential", threads=1,
                                   subgroup=None)
    return plan


def get_batch_plan(
    p: int,
    q: int,
    r: int,
    batch: int,
    dtype: str = "float64",
    threads: int | None = None,
    cache: PlanCache | None = None,
    batch_mode: str | None = None,
) -> tuple[BatchPlan, str]:
    """Resolve the plan + batch mode for a whole batch; ``(bplan, source)``.

    ``source`` is ``"cache"`` (a batched entry measured before, via
    :meth:`PlanCache.get_batched`), ``"model"`` (the within/elementwise
    heads ranked by :func:`repro.core.cost.batch_cost` -- the per-element
    plans still come from the ordinary resolution chain, so per-call
    tuning is reused), or ``"forced"`` (``batch_mode`` pinned by the
    caller).  Unlike per-call dispatch there is no trivial-shape bypass:
    sub-knee shapes are where the batch axis matters most (fanning
    single-threaded gemms across the pool is the sub-knee serving win).
    """
    threads = resolve_threads(threads)
    if batch < 1:
        raise ValueError("batch must be >= 1")
    cache = cache if cache is not None else dispatch._shared_cache()
    if batch_mode is not None:
        if batch_mode not in BATCH_MODES:
            raise ValueError(
                f"batch_mode must be one of {BATCH_MODES}, got {batch_mode!r}"
            )
        if batch_mode == "elementwise" and threads > 1:
            plan = _sequential_element_plan(p, q, r, dtype, cache)
            return BatchPlan(plan=plan, mode="elementwise",
                             workers=threads), "forced"
        plan, _ = dispatch.get_plan(p, q, r, dtype, threads, cache)
        return BatchPlan(plan=plan, mode="within",
                         workers=plan.threads), "forced"
    hit = cache.get_batched(p, q, r, dtype, threads, batch)
    if hit is not None:
        if hit.mode == "elementwise" and hit.workers != threads:
            hit = BatchPlan(plan=hit.plan, mode="elementwise",
                            workers=threads)
        return hit, "cache"
    plan, _ = dispatch.get_plan(p, q, r, dtype, threads, cache)
    candidates = [BatchPlan(plan=plan, mode="within", workers=plan.threads)]
    if threads > 1:
        elem = _sequential_element_plan(p, q, r, dtype, cache)
        candidates.append(BatchPlan(plan=elem, mode="elementwise",
                                    workers=threads))
    best = min(candidates,
               key=lambda bp: (batch_plan_cost(bp, p, q, r, batch),
                               bp.describe()))
    return best, "model"


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------
def execute_batch_plan(
    bplan: BatchPlan,
    A,
    B,
    out=None,
    pool: WorkerPool | None = None,
    warm: bool = True,
) -> np.ndarray | list:
    """Run a whole batch exactly as ``bplan`` prescribes.

    Operands as in :func:`matmul_batched`.  ``warm=True`` (the serving
    path) draws arenas from the process-wide caches
    (:func:`repro.tuner.dispatch.workspace_for` / :func:`_arena_pool`);
    ``warm=False`` builds throwaway arenas so measurement sweeps
    (:func:`repro.tuner.measure.tune_batch`) never evict the serving set.
    """
    a_list, b_list, p, q, r, stacked = _normalize_operands(A, B)
    batch = len(a_list)
    dtype = np.result_type(a_list[0], b_list[0]) if batch else np.dtype("f8")
    if out is not None:
        c_list = _check_batch_out(out, a_list, b_list, p, r, stacked)
        result = out
    elif stacked:
        result = np.empty((batch, p, r), dtype=dtype)
        c_list = list(result)
    else:
        c_list = [np.empty((p, r), dtype=dtype) for _ in range(batch)]
        result = c_list
    if batch == 0:
        return result
    plan = bplan.plan
    if bplan.mode == "elementwise":
        _run_elementwise(bplan, a_list, b_list, c_list, p, q, r,
                         pool=pool, warm=warm)
    else:
        _run_within(plan, a_list, b_list, c_list, p, q, r,
                    pool=pool, warm=warm)
    return result


def _run_within(plan: Plan, a_list, b_list, c_list, p, q, r,
                pool: WorkerPool | None, warm: bool) -> None:
    """Elements serially, each under the plan's own schedule: one arena
    (the executors reset it at call start) and one pool for the batch."""
    dtype_a, dtype_b = a_list[0].dtype, b_list[0].dtype
    if warm:
        workspace = dispatch.workspace_for(plan, p, q, r, dtype_a, dtype_b)
    else:
        workspace = dispatch.build_workspace(plan, p, q, r, dtype_a, dtype_b)
    if pool is None and not plan.is_dgemm and plan.scheme != "sequential":
        pool = dispatch._shared_pool(plan.threads)
    for a, b, c in zip(a_list, b_list, c_list):
        dispatch.execute_plan(plan, a, b, pool=pool, out=c,
                              workspace=workspace)


def _run_elementwise(bplan: BatchPlan, a_list, b_list, c_list, p, q, r,
                     pool: WorkerPool | None, warm: bool) -> None:
    """Elements fanned across the pool, each sequential under a private
    per-worker arena, BLAS pinned to one thread for the whole fan-out
    (the inner per-element BLAS contexts are then nested no-ops)."""
    plan = bplan.plan
    workers = bplan.workers
    dtype_a, dtype_b = a_list[0].dtype, b_list[0].dtype
    if warm:
        apool = _arena_pool(plan, p, q, r, dtype_a, dtype_b, workers)
    else:
        nbytes = _element_nbytes(plan, p, q, r, dtype_a, dtype_b)
        apool = WorkspacePool(nbytes, workers) if nbytes else None
    if pool is None:
        pool = dispatch._shared_pool(workers)

    def element(i: int):
        if apool is None:
            return dispatch.execute_plan(plan, a_list[i], b_list[i],
                                         out=c_list[i])
        with apool.arena() as ws:
            return dispatch.execute_plan(plan, a_list[i], b_list[i],
                                         out=c_list[i], workspace=ws)

    with blas.blas_threads(1):
        group = pool.group()
        for i in range(len(a_list)):
            group.run(element, i)
        group.wait()


# ---------------------------------------------------------------------------
# the public batched entry point
# ---------------------------------------------------------------------------
def matmul_batched(
    A: np.ndarray | Sequence[np.ndarray],
    B: np.ndarray | Sequence[np.ndarray],
    out: np.ndarray | Sequence[np.ndarray] | None = None,
    threads: int | None = None,
    cache: PlanCache | None = None,
    tune: str = "never",
    batch_mode: str | None = None,
    pool: WorkerPool | None = None,
    guard: bool | float | str | chain.GuardConfig | None = None,
) -> np.ndarray | list[np.ndarray]:
    """Multiply a batch of same-shape products with one amortized decision.

    ``A`` and ``B`` are stacked 3-D arrays (``(b, p, q) @ (b, q, r)``,
    returning ``(b, p, r)``) or lists of same-shape 2-D arrays (returning
    a list).  ``out=`` mirrors the input form (a 3-D stack or a list of
    2-D destinations); with it a repeat call for a resolved shape is
    allocation-free for the *whole batch* -- one plan lookup, one arena
    (or per-worker arena pool), one persistent worker pool.

    ``batch_mode`` pins the batch-parallelism axis (``"within"`` /
    ``"elementwise"``); by default the mode is cost-ranked by
    :func:`repro.core.cost.batch_cost` or served from a tuned batched
    cache entry.  ``tune`` sweeps the batch axis with measurements:
    ``"auto"`` tunes once when the decision is model-ranked (then the
    winner is cached under the batched key), ``"always"`` re-measures
    every call, ``"never"`` (default) trusts cache + model.  The online
    per-call policies do not apply to the batch axis -- pass
    ``tune="online"`` to :func:`repro.tuner.matmul` for per-call learning.

    ``guard`` opts the whole batch into fault-tolerant execution (same
    spellings as :func:`repro.tuner.dispatch.matmul`): a failing batch
    plan degrades to classical per-element ``np.matmul``, the failure is
    charged to the plan's quarantine ledger, and the product is always
    returned.
    """
    if tune not in ("never", "auto", "always"):
        raise ValueError(
            f"tune must be 'never', 'auto' or 'always' for batched calls "
            f"(the per-call online policies do not sweep the batch axis); "
            f"got {tune!r}"
        )
    a_list, b_list, p, q, r, stacked = _normalize_operands(A, B)
    batch = len(a_list)
    if batch == 0:  # an empty stacked batch: nothing to resolve or run
        dtype = np.result_type(np.asarray(A).dtype, np.asarray(B).dtype)
        if out is not None:
            _check_batch_out(out, a_list, b_list, p, r, stacked)
            return out
        return np.empty((0, p, r), dtype=dtype)
    threads = resolve_threads(threads)
    dtype = np.result_type(a_list[0], b_list[0]).name
    cache = cache if cache is not None else dispatch._shared_cache()
    bplan, source = get_batch_plan(p, q, r, batch, dtype=dtype,
                                   threads=threads, cache=cache,
                                   batch_mode=batch_mode)
    if batch_mode is None and (
        tune == "always" or (tune == "auto" and source == "model")
    ):
        from repro.tuner.measure import tune_batch

        bplan = tune_batch(p, q, r, batch, dtype=dtype, threads=threads,
                           cache=cache)
        source = "tuned"
    operands = (a_list, b_list) if not stacked else (A, B)
    if telemetry.enabled():
        telemetry.incr("dispatch.batch_calls")
        telemetry.incr("dispatch.batch_elements", batch)
        telemetry.set_gauge("dispatch.batch_size", batch)
        telemetry.incr("dispatch.source", source=source)
        span = telemetry.span("dispatch.batch", mode=bplan.mode)
    else:
        span = contextlib.nullcontext()
    cfg = chain.resolve_guard(guard)
    with span:
        if cfg is not None:
            result = chain.run_batch_guarded(
                cfg, bplan, operands[0], operands[1], out, pool, cache,
                p, q, r, dtype, threads, batch)
        else:
            result = execute_batch_plan(bplan, operands[0], operands[1],
                                        out=out, pool=pool)
    if telemetry.enabled():
        telemetry.record_dispatch({
            "shape": [p, q, r],
            "dtype": dtype,
            "threads": threads,
            "source": source,
            "plan": bplan.describe(),
            "scheme": bplan.plan.scheme,
            "batch": batch,
            "batch_mode": bplan.mode,
        })
    return result
