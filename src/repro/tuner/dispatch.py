"""The dispatch hot path: ``repro.matmul(A, B)``.

Resolution order for a ``p x q x r`` problem (the subsystem's contract):

1. **cache hit** -- the shape was tuned before *on this machine* (entries
   stamped with a foreign machine fingerprint are bypassed, not trusted):
   execute its plan verbatim (deterministic: identical calls pick
   identical plans);
2. **nearest neighbour** -- an adjacent tuned shape exists at the same
   thread count: borrow its plan (the paper's performance regimes are
   wide plateaus);
3. **cross-thread transfer** -- an adjacent shape was tuned at *another*
   thread count: serve its plan retargeted (``PlanCache.nearest``'s
   penalized fallback), while learning policies treat it as unmeasured
   and tune/explore at this thread count;
4. **cost model** -- rank the candidate space analytically and run the
   best plan untimed; the tuning *policy* (:mod:`repro.tuner.policy`)
   decides whether and how to learn from the call: ``tune="auto"`` /
   ``"always"`` run a blocking synthetic sweep, ``tune="online"``
   explores the shortlist across real calls with amortized timing.

Tiny problems skip all of it and go straight to the vendor BLAS: below the
dgemm ramp-up knee no fast algorithm can win (Section 3.4).

The hot path is allocation-managed: each resolved (plan, shape, dtype)
pair owns one :class:`repro.core.workspace.Workspace` arena (a small LRU,
one arena per plan-cache entry in live use), and worker pools persist
across calls, so a warm ``matmul(A, B, out=C)`` performs zero large
allocations -- the steady state the paper's Section 4 memory discipline is
about.  Arenas are additionally keyed by calling thread (a bump-pointer
arena cannot be shared mid-call), so concurrent ``matmul`` callers each
warm their own; timed tuning/exploration calls use throwaway arenas so
losing candidates never evict the serving set.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict

import numpy as np

from repro.algorithms import get_algorithm
from repro.bench.metrics import effective_gflops
from repro.codegen import compile_algorithm
from repro.core.workspace import Workspace, check_out
from repro.guard import chain as _guard_chain
from repro.guard import faults
from repro.obs import telemetry
from repro.parallel import blas
from repro.parallel.pool import WorkerPool, resolve_threads
from repro.parallel.schedules import multiply_parallel
from repro.tuner.cache import PlanCache
from repro.tuner.policy import TuningPolicy, get_policy
from repro.tuner.space import (
    DEFAULT_MIN_LEAF,
    Plan,
    enumerate_plans,
    trivial_dim,
)
from repro.util.validation import check_matmul_dims, require_2d

#: float64 threshold below which problems always run plain BLAS
#: (dtype-aware callers use :func:`repro.tuner.space.trivial_dim`)
TRIVIAL_DIM = 2 * DEFAULT_MIN_LEAF

#: arenas kept warm at once (each is sized for one plan/shape/dtype; the
#: serving sweet spot is a few hot shapes hit over and over)
WORKSPACE_CACHE_SIZE = 8

#: total bytes of retained arenas -- BFS/hybrid trees at large shapes are
#: hundreds of MB each (the Section 4.2 memory cost), so the cache is
#: budgeted by bytes as well as by entries; the most recent arena always
#: stays (evicting the arena of the call in flight would defeat reuse)
WORKSPACE_CACHE_BYTES = 2 << 30

#: schemes whose arenas carry the full-tree (Section 4.2) footprint --
#: the candidates for single-shot reclamation below
_TREE_SCHEMES = ("bfs", "hybrid", "hybrid-subgroup")

_log = logging.getLogger(__name__)

_default_cache: PlanCache | None = None
_workspaces: "OrderedDict[tuple, Workspace]" = OrderedDict()
#: (plan, p, q, r, dtype) combinations already warned about overflowing --
#: the warning fires once per offender, the telemetry counter every time.
#: A duplicate warning from two racing threads is benign, so membership is
#: checked without the dispatch lock.
_overflow_warned: set[tuple] = set()
#: algorithms already warned about a serving-time compile/load failure --
#: like ``_overflow_warned``, the warning fires once, the telemetry
#: counter every time, and a duplicate from racing threads is benign
_cbackend_warned: set[str] = set()
_pools: dict[int, WorkerPool] = {}
#: guards _workspaces/_pools/_default_cache mutation -- concurrent
#: dispatchers are a supported pattern (arenas are thread-keyed), so the
#: bookkeeping around them must not race
_dispatch_lock = threading.Lock()


def _shared_cache() -> PlanCache:
    global _default_cache
    if _default_cache is None:
        # double-checked: without the lock two racing first dispatches
        # would build two caches and split the tuner's memory of plans
        with _dispatch_lock:
            if _default_cache is None:
                _default_cache = PlanCache()
    return _default_cache


def reset_shared_cache() -> None:
    """Forget the process-wide cache object (tests; after env changes)."""
    global _default_cache
    with _dispatch_lock:
        _default_cache = None


def reset_workspaces() -> None:
    """Drop every cached arena (tests; to give memory back)."""
    with _dispatch_lock:
        _workspaces.clear()
        _overflow_warned.clear()
        _cbackend_warned.clear()


def shutdown_shared_pools() -> None:
    """Stop the persistent dispatch worker pools (tests; interpreter exit
    joins them automatically otherwise)."""
    with _dispatch_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown()


def _shared_pool(workers: int) -> WorkerPool:
    """A persistent pool per worker count: thread startup is not something
    a steady-state dispatch call should pay for.

    The pool is constructed *outside* ``_dispatch_lock`` -- spawning OS
    threads under the lock would stall every concurrent dispatcher for the
    duration of pool startup -- with a double-check on re-entry; the loser
    of a construction race is shut down and discarded.  A pool found
    *broken* (dead executor, latched by supervision) is replaced the same
    way a missing one is built.
    """
    with _dispatch_lock:
        pool = _pools.get(workers)
    if pool is not None and not pool.broken:
        return pool
    fresh = WorkerPool(workers)
    with _dispatch_lock:
        pool = _pools.get(workers)
        if pool is None or pool.broken:
            stale, _pools[workers] = pool, fresh
            pool, fresh = fresh, stale
    if fresh is not None:
        fresh.shutdown(wait=False)
    return pool


def rebuild_shared_pool(workers: int) -> WorkerPool:
    """Tear down the shared pool for ``workers`` and build a fresh one.

    The guard chain's recovery move after a hang/death implicating the
    pool: the old executor is abandoned without joining (a wedged worker
    must not hang recovery), and the replacement is built through
    :func:`_shared_pool` so concurrent dispatchers converge on one pool.
    """
    with _dispatch_lock:
        old = _pools.pop(workers, None)
    if old is not None:
        old.shutdown(wait=False)
    telemetry.incr("guard.pool_rebuilds")
    return _shared_pool(workers)


def build_workspace(plan: Plan, p: int, q: int, r: int,
                    dtype_a, dtype_b) -> Workspace | None:
    """A fresh, *uncached* arena sized for one plan/shape/dtype (``None``
    for plain-BLAS plans).  Measurement sweeps use this so losing
    candidates' arenas are garbage-collected instead of pinning the
    serving cache."""
    if plan.is_dgemm:
        return None
    alg = get_algorithm(plan.algorithm)
    if plan.scheme == "sequential":
        if plan.backend == "compiled":
            # compiled plans run the C chain kernels, whose memory shape
            # (fused S/T slabs, the R-row product slab, Y scratch, alias
            # packing) cbackend_footprint mirrors -- the codegen formula
            # below charges for a different executor and would mis-size
            return Workspace.for_cbackend(alg, False, (p, q, r),
                                          dtype_a, plan.steps,
                                          dtype_b=dtype_b)
        # sequential plans are served by the *generated* module, whose
        # memory shape (all R products of a level live until C assembly,
        # strategy slabs, CSE temporaries) the codegen footprint mirrors --
        # the interpreter's one-triple-per-level DFS formula would overflow
        return Workspace.for_codegen(alg, plan.strategy, False, (p, q, r),
                                     dtype_a, plan.steps, dtype_b=dtype_b)
    if plan.scheme == "dfs":
        return Workspace.for_recursion([alg.base_case] * plan.steps,
                                       p, q, r, dtype_a, dtype_b,
                                       algorithms=[alg] * plan.steps)
    return Workspace.for_parallel(alg, plan.steps, p, q, r, dtype_a, dtype_b)


def workspace_for(plan: Plan, p: int, q: int, r: int,
                  dtype_a, dtype_b) -> Workspace | None:
    """The cached arena for one (plan, shape, dtype) -- created on first
    use, LRU-evicted beyond :data:`WORKSPACE_CACHE_SIZE` entries or
    :data:`WORKSPACE_CACHE_BYTES` total.  ``None`` for plain-BLAS plans,
    which need no workspace.

    Keys include the calling thread: a bump-pointer arena reset at every
    call cannot be shared by two in-flight multiplications, so concurrent
    dispatchers each get (and re-warm) their own arena instead of silently
    corrupting each other's temporaries.
    """
    if plan.is_dgemm:
        return None
    key = (plan, p, q, r, str(np.dtype(dtype_a)), str(np.dtype(dtype_b)),
           threading.get_ident())
    with _dispatch_lock:
        ws = _workspaces.get(key)
        if ws is not None:
            _workspaces.move_to_end(key)
            ws.uses += 1
            return ws
    ws = build_workspace(plan, p, q, r, dtype_a, dtype_b)
    ws.uses = 1
    live = {t.ident for t in threading.enumerate()}
    with _dispatch_lock:
        # sweep arenas of exited threads: nothing can ever hit their keys
        # again (and thread idents are recyclable), yet LRU/byte pressure
        # was the only thing that would release the memory they pin
        for dead in [k for k in _workspaces if k[-1] not in live]:
            del _workspaces[dead]
        # single-shot reclamation (ROADMAP carry-over): dispatch moving on
        # to a *different* problem is the signal that a full-tree BFS/
        # hybrid arena used exactly once was a one-off -- give its buffer
        # back now rather than pinning hundreds of MB until LRU pressure.
        # The entry stays cached: a later hit reallocates lazily, and any
        # in-flight views keep the old buffer alive via refcounting.
        _reclaim_locked(skip_key=key)
        _workspaces[key] = ws
        total = sum(w.retained_nbytes for w in _workspaces.values())
        while len(_workspaces) > 1 and (
            len(_workspaces) > WORKSPACE_CACHE_SIZE
            or total > WORKSPACE_CACHE_BYTES
        ):
            _, evicted = _workspaces.popitem(last=False)
            total -= evicted.retained_nbytes
    return ws


def _reclaim_locked(skip_key: tuple | None = None) -> int:
    """Release the buffers of single-use tree-scheme arenas (caller holds
    ``_dispatch_lock``); returns bytes freed."""
    freed = 0
    for k, w in _workspaces.items():
        if k == skip_key or k[0].scheme not in _TREE_SCHEMES:
            continue
        if w.uses <= 1 and w.retained:
            freed += w.release_buffer()
            telemetry.incr("workspace.reclaimed")
    return freed


def reclaim_single_shot() -> int:
    """Explicitly release every single-use BFS/hybrid arena's buffer.

    The sweep above runs automatically when dispatch turns to a new
    problem; callers that know a burst of one-off large calls just ended
    (a serving layer between batches, tests) can force it.  Returns the
    bytes given back.
    """
    with _dispatch_lock:
        return _reclaim_locked()


def evict_workspace(plan: Plan, p: int, q: int, r: int,
                    dtype_a, dtype_b) -> bool:
    """Drop the calling thread's cached arena for one (plan, shape,
    dtype) -- the guard chain's hygiene after a failed execution, whose
    half-written views a zombie worker might still touch."""
    key = (plan, p, q, r, str(np.dtype(dtype_a)), str(np.dtype(dtype_b)),
           threading.get_ident())
    with _dispatch_lock:
        return _workspaces.pop(key, None) is not None


def _compiled_chains(plan: Plan):
    """The compiled C chain module serving ``plan``, or ``None`` when the
    toolchain fails at dispatch time.

    A ``backend="compiled"`` plan must never fail a multiply that the
    NumPy-source module could have served: a compile/load error (compiler
    uninstalled since tuning, cache dir yanked, ``cbackend.compilefail``
    chaos) is counted in ``cbackend.fallbacks``, warned once per
    algorithm, and answered with ``None`` so :func:`execute_plan` degrades
    in-band to :func:`repro.codegen.compile_algorithm`.
    """
    from repro.codegen import cbackend

    try:
        return cbackend.compile_chains(plan.algorithm)
    except (OSError, RuntimeError) as exc:
        telemetry.incr("cbackend.fallbacks")
        if plan.algorithm not in _cbackend_warned:
            _cbackend_warned.add(plan.algorithm)
            _log.warning(
                "compiled backend unavailable for %r (%s); serving plan "
                "[%s] with the generated NumPy module instead",
                plan.algorithm, exc, plan.describe(),
            )
        return None


def execute_plan(
    plan: Plan,
    A: np.ndarray,
    B: np.ndarray,
    pool: WorkerPool | None = None,
    out: np.ndarray | None = None,
    workspace: Workspace | None = None,
) -> np.ndarray:
    """Run one multiplication exactly as ``plan`` prescribes.

    ``out`` receives the product; ``workspace`` (see
    :func:`workspace_for`) supplies every temporary.  Sequential plans
    always run the *generated* module (Section 3.1) -- with a workspace
    its S/T/M chains are arena views and ``out`` is written directly,
    with neither an interpreter fallback nor a final full-matrix copy.
    Parallel plans carry their sub-group P' (``plan.subgroup``) through to
    the schedule verbatim -- the tuner's swept value is what executes, not
    a derived default.
    """
    if faults.active and faults.should_fire("plan.raise"):
        raise faults.InjectedFault(
            f"injected: plan.raise executing [{plan.describe()}]")
    if plan.is_dgemm:
        with blas.blas_threads(plan.threads):
            if out is None:
                return A @ B
            np.matmul(A, B, out=out)
            return out
    alg = get_algorithm(plan.algorithm)
    if plan.scheme == "sequential":
        if plan.backend == "compiled":
            cc = _compiled_chains(plan)
            if cc is not None:
                with blas.blas_threads(plan.threads):
                    return cc.multiply(A, B, steps=plan.steps, out=out,
                                       workspace=workspace)
            # toolchain broke at serving time: degrade in-band to the
            # generated NumPy module.  The arena was sized for the C
            # executor, so it is dropped rather than reused -- the
            # generated module allocates its own temporaries for this
            # (rare, counted) call instead of mis-fitting a foreign arena.
            workspace = None
        fn = compile_algorithm(alg, strategy=plan.strategy)
        with blas.blas_threads(plan.threads):
            return fn(A, B, steps=plan.steps, out=out, workspace=workspace)
    if pool is None:
        pool = _shared_pool(plan.threads)
    return multiply_parallel(
        A, B, alg, steps=plan.steps, scheme=plan.scheme,
        pool=pool, threads=plan.threads, subgroup=plan.subgroup,
        out=out, workspace=workspace,
    )


def get_plan(
    p: int,
    q: int,
    r: int,
    dtype: str = "float64",
    threads: int | None = None,
    cache: PlanCache | None = None,
) -> tuple[Plan, str]:
    """Resolve the plan for a shape; returns ``(plan, source)``.

    ``source`` is one of ``"trivial"``, ``"cache"``, ``"nearest"``,
    ``"transfer"`` or ``"model"`` -- callers use it to decide whether
    tuning is worth the trouble: ``"model"`` plans are unmeasured guesses
    and ``"transfer"`` plans (cross-thread retargeted via
    :meth:`PlanCache.nearest`) were never measured *at this thread
    count*, so the auto/online policies treat both as tunable while pure
    dispatch serves them as-is.  Cache and nearest lookups only ever
    return fingerprint-fresh entries; a cache full of another machine's
    plans resolves to ``"model"``.

    ``threads`` defaults to every available core, the same default
    ``tune``/``matmul`` use, so a tune-then-dispatch pair agrees on the
    cache key.  The candidate space is dtype-specific (float32 recurses
    deeper within its stability budget, see :mod:`repro.tuner.space`).
    """
    threads = resolve_threads(threads)
    if min(p, q, r) < trivial_dim(dtype):
        return Plan(threads=threads), "trivial"
    cache = cache if cache is not None else _shared_cache()
    plan = cache.get(p, q, r, dtype, threads)
    if plan is not None:
        return plan, "cache"
    plan = cache.nearest(p, q, r, dtype, threads, cross_thread=False)
    if plan is not None:
        return plan, "nearest"
    plan = cache.nearest(p, q, r, dtype, threads)
    if plan is not None:
        return plan, "transfer"
    plans = enumerate_plans(p, q, r, threads=threads, dtype=dtype)
    for cand in plans:
        # the quarantine ledger reaches the model stage too: a candidate
        # that keeps failing guarded execution is passed over for the
        # next-ranked plan (bounded -- the ledger's backoff probe lets it
        # through periodically to check whether the world healed)
        if not cache.plan_quarantined(p, q, r, dtype, threads, cand):
            return cand, "model"
    return plans[0], "model"


def _warn_overflow(plan: Plan, p: int, q: int, r: int, dtype: str,
                   count: int) -> None:
    """Surface a warm-path arena heap overflow (always counted, warned
    once per (plan, shape, dtype)).

    ``Workspace.overflow_allocations`` degrades gracefully by design, but
    on the *serving* path an overflow means the arena undersizes its plan
    and every warm call is silently paying allocator traffic -- exactly
    the regression the zero-allocation steady state exists to prevent, so
    it must not stay invisible.  Timed tuning calls are exempt: their
    throwaway arenas overflowing costs nothing lasting.
    """
    telemetry.incr("workspace.overflows", count)
    key = (plan, p, q, r, dtype)
    if key not in _overflow_warned:
        _overflow_warned.add(key)
        _log.warning(
            "workspace arena overflowed to the heap %d time(s) serving "
            "%dx%dx%d %s with plan [%s]; warm calls for this shape are "
            "allocating instead of reusing the arena",
            count, p, q, r, dtype, plan.describe(),
        )


def _record_call(plan: Plan, source: str, p: int, q: int, r: int,
                 dtype: str, threads: int, seconds: float, timed: bool,
                 workspace: Workspace | None) -> None:
    """Fold one dispatch call into the telemetry registry: source
    counters, the latest effective-GFLOPS/arena gauges, and a full
    per-call record into the introspection ring buffer."""
    telemetry.incr("dispatch.calls")
    telemetry.incr("dispatch.source", source=source)
    telemetry.incr("dispatch.backend", backend=plan.backend)
    gflops = effective_gflops(p, q, r, seconds) if seconds > 0 else 0.0
    telemetry.set_gauge("dispatch.last_gflops", gflops)
    telemetry.set_gauge("dispatch.last_seconds", seconds)
    record = {
        "shape": [p, q, r],
        "dtype": dtype,
        "threads": threads,
        "source": source,
        "plan": plan.describe(),
        "scheme": plan.scheme,
        "backend": plan.backend,
        "seconds": seconds,
        "gflops": gflops,
        "timed": timed,
    }
    if workspace is not None:
        stats = workspace.stats()
        telemetry.set_gauge("workspace.arena_bytes", stats["nbytes"])
        telemetry.set_gauge("workspace.high_water", stats["high_water"])
        telemetry.set_gauge("workspace.max_mark_depth",
                            stats["max_mark_depth"])
        record["arena_bytes"] = stats["nbytes"]
        record["arena_high_water"] = stats["high_water"]
        record["arena_overflows"] = stats["overflow_allocations"]
    telemetry.record_dispatch(record)


def _matmul_observed(
    policy: TuningPolicy,
    A: np.ndarray,
    B: np.ndarray,
    p: int,
    q: int,
    r: int,
    dtype: str,
    threads: int,
    cache: PlanCache,
    pool: WorkerPool | None,
    out: np.ndarray | None,
) -> np.ndarray:
    """The telemetry-enabled twin of :func:`matmul`'s dispatch tail.

    Same resolution/execution logic, with the lookup and execution under
    ``dispatch.lookup`` / ``dispatch.execute`` spans and a per-call record
    emitted at the end.  Kept separate so the disabled hot path pays one
    ``telemetry.enabled()`` branch and nothing else.
    """
    t_call = telemetry.clock_ns()
    with telemetry.span("dispatch.lookup"):
        plan, source = policy.select(p, q, r, dtype, threads, cache)
    timed = policy.wants_timing(source)
    if timed:
        workspace = build_workspace(plan, p, q, r, A.dtype, B.dtype)
        with telemetry.span("dispatch.execute", scheme=plan.scheme):
            t0 = policy.clock()
            C = execute_plan(plan, A, B, pool=pool, out=out,
                             workspace=workspace)
            elapsed = policy.clock() - t0
        policy.observe(p, q, r, dtype, threads, cache, plan, elapsed)
    else:
        workspace = workspace_for(plan, p, q, r, A.dtype, B.dtype)
        before = workspace.overflow_allocations if workspace else 0
        with telemetry.span("dispatch.execute", scheme=plan.scheme):
            C = execute_plan(plan, A, B, pool=pool, out=out,
                             workspace=workspace)
        if workspace is not None and workspace.overflow_allocations > before:
            _warn_overflow(plan, p, q, r, dtype,
                           workspace.overflow_allocations - before)
    seconds = (telemetry.clock_ns() - t_call) * 1e-9
    _record_call(plan, source, p, q, r, dtype, threads, seconds, timed,
                 workspace)
    return C


def matmul(
    A: np.ndarray,
    B: np.ndarray,
    threads: int | None = None,
    cache: PlanCache | None = None,
    tune: str | TuningPolicy = "never",
    pool: WorkerPool | None = None,
    out: np.ndarray | None = None,
    guard: bool | float | str | _guard_chain.GuardConfig | None = None,
) -> np.ndarray:
    """Multiply ``A @ B``, choosing the algorithm automatically.

    The public self-optimizing entry point: consults the plan cache (see
    :mod:`repro.tuner.cache`), falls back to the analytical cost model,
    and learns according to ``tune`` -- a policy name (``"never"``,
    ``"auto"``, ``"always"``, ``"online"``) or a
    :class:`~repro.tuner.policy.TuningPolicy` instance.  ``"online"``
    explores the candidate shortlist across real calls (epsilon-greedy,
    amortized timing) and promotes the winner into the cache once sampled;
    see :mod:`repro.tuner.policy` for the full menu.

    ``threads`` defaults to every available core.  ``out`` receives the
    product (same shape/result-dtype, not overlapping ``A``/``B``); with
    it, a repeat call for a cached shape is allocation-free -- plan lookup,
    arena, pool and destination are all reused.

    ``guard`` opts into the fault-tolerant execution ladder
    (:mod:`repro.guard.chain`): ``True`` / ``"on"`` for the default
    config, a number for a watchdog deadline in seconds, a
    :class:`~repro.guard.chain.GuardConfig` for full control, ``False`` /
    ``"off"`` to force unguarded.  The default ``None`` defers to the
    ``REPRO_GUARD`` environment variable (unset means unguarded).  A
    guarded call degrades tuned plan -> cost-model plan -> classical
    ``np.matmul`` on failure and always returns a correct product.
    """
    A = require_2d(A, "A")
    B = require_2d(B, "B")
    check_matmul_dims(A, B)
    if out is not None:
        out = check_out(out, A, B)
    policy = get_policy(tune)
    p, q = A.shape
    r = B.shape[1]
    dtype = np.result_type(A, B).name
    threads = resolve_threads(threads)
    cache = cache if cache is not None else _shared_cache()
    cfg = _guard_chain.resolve_guard(guard)
    if cfg is not None:
        return _guard_chain.run_guarded(cfg, policy, A, B, p, q, r, dtype,
                                        threads, cache, pool, out)
    if telemetry.enabled():
        # the one telemetry branch the disabled hot path pays
        return _matmul_observed(policy, A, B, p, q, r, dtype, threads,
                                cache, pool, out)
    plan, source = policy.select(p, q, r, dtype, threads, cache)
    if policy.wants_timing(source):
        # timed exploration: a throwaway arena, so losing shortlist
        # candidates never pollute (or evict from) the serving cache
        workspace = build_workspace(plan, p, q, r, A.dtype, B.dtype)
        t0 = policy.clock()
        C = execute_plan(plan, A, B, pool=pool, out=out, workspace=workspace)
        policy.observe(p, q, r, dtype, threads, cache, plan,
                       policy.clock() - t0)
        return C
    workspace = workspace_for(plan, p, q, r, A.dtype, B.dtype)
    before = workspace.overflow_allocations if workspace else 0
    C = execute_plan(plan, A, B, pool=pool, out=out, workspace=workspace)
    if workspace is not None and workspace.overflow_allocations > before:
        # satellite bugfix: warm-path heap overflows were counted but
        # never surfaced -- warn (and count) with or without telemetry
        _warn_overflow(plan, p, q, r, dtype,
                       workspace.overflow_allocations - before)
    return C
