"""The dispatch hot path: ``repro.matmul(A, B)``.

Resolution order for a ``p x q x r`` problem (the subsystem's contract):

1. **cache hit** -- the shape was tuned before *on this machine* (entries
   stamped with a foreign machine fingerprint are bypassed, not trusted):
   execute its plan verbatim (deterministic: identical calls pick
   identical plans);
2. **nearest neighbour** -- an adjacent tuned shape exists: borrow its plan
   (the paper's performance regimes are wide plateaus);
3. **cost model** -- rank the candidate space analytically and run the
   best plan untimed; the tuning *policy* (:mod:`repro.tuner.policy`)
   decides whether and how to learn from the call: ``tune="auto"`` /
   ``"always"`` run a blocking synthetic sweep, ``tune="online"``
   explores the shortlist across real calls with amortized timing.

Tiny problems skip all of it and go straight to the vendor BLAS: below the
dgemm ramp-up knee no fast algorithm can win (Section 3.4).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import get_algorithm
from repro.codegen import compile_algorithm
from repro.parallel import blas
from repro.parallel.pool import WorkerPool, available_cores
from repro.parallel.schedules import multiply_parallel
from repro.tuner.cache import PlanCache
from repro.tuner.policy import TuningPolicy, get_policy
from repro.tuner.space import (
    DEFAULT_MIN_LEAF,
    Plan,
    enumerate_plans,
    trivial_dim,
)
from repro.util.validation import check_matmul_dims, require_2d

#: float64 threshold below which problems always run plain BLAS
#: (dtype-aware callers use :func:`repro.tuner.space.trivial_dim`)
TRIVIAL_DIM = 2 * DEFAULT_MIN_LEAF

_default_cache: PlanCache | None = None


def _shared_cache() -> PlanCache:
    global _default_cache
    if _default_cache is None:
        _default_cache = PlanCache()
    return _default_cache


def reset_shared_cache() -> None:
    """Forget the process-wide cache object (tests; after env changes)."""
    global _default_cache
    _default_cache = None


def execute_plan(
    plan: Plan,
    A: np.ndarray,
    B: np.ndarray,
    pool: WorkerPool | None = None,
) -> np.ndarray:
    """Run one multiplication exactly as ``plan`` prescribes."""
    if plan.is_dgemm:
        with blas.blas_threads(plan.threads):
            return A @ B
    alg = get_algorithm(plan.algorithm)
    if plan.scheme == "sequential":
        fn = compile_algorithm(alg, strategy=plan.strategy)
        with blas.blas_threads(plan.threads):
            return fn(A, B, steps=plan.steps)
    return multiply_parallel(
        A, B, alg, steps=plan.steps, scheme=plan.scheme,
        pool=pool, threads=plan.threads,
    )


def get_plan(
    p: int,
    q: int,
    r: int,
    dtype: str = "float64",
    threads: int | None = None,
    cache: PlanCache | None = None,
) -> tuple[Plan, str]:
    """Resolve the plan for a shape; returns ``(plan, source)``.

    ``source`` is one of ``"trivial"``, ``"cache"``, ``"nearest"`` or
    ``"model"`` -- callers use it to decide whether online tuning is worth
    the trouble (only ``"model"`` plans are unmeasured guesses).  Cache
    and nearest lookups only ever return fingerprint-fresh entries; a
    cache full of another machine's plans resolves to ``"model"``.

    ``threads`` defaults to every available core, the same default
    ``tune``/``matmul`` use, so a tune-then-dispatch pair agrees on the
    cache key.  The candidate space is dtype-specific (float32 recurses
    deeper within its stability budget, see :mod:`repro.tuner.space`).
    """
    threads = threads or available_cores()
    if min(p, q, r) < trivial_dim(dtype):
        return Plan(threads=threads), "trivial"
    cache = cache if cache is not None else _shared_cache()
    plan = cache.get(p, q, r, dtype, threads)
    if plan is not None:
        return plan, "cache"
    plan = cache.nearest(p, q, r, dtype, threads)
    if plan is not None:
        return plan, "nearest"
    plans = enumerate_plans(p, q, r, threads=threads, dtype=dtype)
    return plans[0], "model"


def matmul(
    A: np.ndarray,
    B: np.ndarray,
    threads: int | None = None,
    cache: PlanCache | None = None,
    tune: str | TuningPolicy = "never",
    pool: WorkerPool | None = None,
) -> np.ndarray:
    """Multiply ``A @ B``, choosing the algorithm automatically.

    The public self-optimizing entry point: consults the plan cache (see
    :mod:`repro.tuner.cache`), falls back to the analytical cost model,
    and learns according to ``tune`` -- a policy name (``"never"``,
    ``"auto"``, ``"always"``, ``"online"``) or a
    :class:`~repro.tuner.policy.TuningPolicy` instance.  ``"online"``
    explores the candidate shortlist across real calls (epsilon-greedy,
    amortized timing) and promotes the winner into the cache once sampled;
    see :mod:`repro.tuner.policy` for the full menu.

    ``threads`` defaults to every available core.
    """
    A = require_2d(A, "A")
    B = require_2d(B, "B")
    check_matmul_dims(A, B)
    policy = get_policy(tune)
    p, q = A.shape
    r = B.shape[1]
    dtype = np.result_type(A, B).name
    threads = threads or available_cores()
    cache = cache if cache is not None else _shared_cache()
    plan, source = policy.select(p, q, r, dtype, threads, cache)
    if policy.wants_timing(source):
        t0 = policy.clock()
        C = execute_plan(plan, A, B, pool=pool)
        policy.observe(p, q, r, dtype, threads, cache, plan,
                       policy.clock() - t0)
        return C
    return execute_plan(plan, A, B, pool=pool)
