"""Timed trials: turning candidate plans into measured winners.

``measure_plan`` times one plan on given operands (median of ``trials``
after a warmup run, exactly like the paper's Section 5 protocol) and
reports effective GFLOPS (Equation 3).  Plans execute through
``dispatch.execute_plan``, so every tuned knob -- including a parallel
plan's sub-group P' -- is timed exactly as dispatch would serve it.
``tune_shape`` sweeps the ranked candidate shortlist for one problem
shape under a wall-clock budget (with ``threads > 1`` that shortlist
spans the parallel schemes and the P' divisors of the thread count) and
commits the winner to the plan cache; ``tune`` does that for many shapes
and returns ``bench``-compatible result rows for reporting.

Operand generation is deterministic: :func:`tuning_operands` derives a
per-(shape, dtype) RNG stream from a single seed, so two tunes of the
same shapes time *identical* matrices -- run-to-run tuning differences
are then attributable to the machine, never to the data.
"""

from __future__ import annotations

import dataclasses
import time
import zlib

import numpy as np

from repro.bench.metrics import effective_gflops, median_time
from repro.bench.runner import ResultRow
from repro.parallel.pool import WorkerPool, resolve_threads
from repro.tuner import dispatch
from repro.tuner.cache import PlanCache
from repro.tuner.dispatch import _shared_cache
from repro.tuner.space import BatchPlan, Plan, enumerate_batch_plans, enumerate_plans

#: default per-shape wall-clock budget for a tuning sweep (seconds)
DEFAULT_BUDGET_S = 30.0

#: default size of the measured shortlist per shape
DEFAULT_CANDIDATES = 8


def tuning_operands(
    p: int, q: int, r: int, dtype: str = "float64", seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic ``(A, B)`` test operands for tuning one shape.

    The stream is seeded from ``(seed, p, q, r, dtype)`` via a
    ``SeedSequence``, so repeated tunes of a shape see bit-identical
    operands (reproducible timings) while different shapes/dtypes get
    statistically independent data (no accidental structure shared
    across the sweep).
    """
    ss = np.random.SeedSequence(
        [seed, p, q, r, zlib.crc32(str(dtype).encode())]
    )
    g_a, g_b = (np.random.default_rng(c) for c in ss.spawn(2))
    A = (2.0 * g_a.random((p, q)) - 1.0).astype(dtype, copy=False)
    B = (2.0 * g_b.random((q, r)) - 1.0).astype(dtype, copy=False)
    return A, B


def batch_operands(
    p: int, q: int, r: int, batch: int, dtype: str = "float64",
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic stacked ``(A, B)`` operands for tuning one batch,
    seeded like :func:`tuning_operands` but over the whole stack."""
    ss = np.random.SeedSequence(
        [seed, p, q, r, batch, zlib.crc32(str(dtype).encode())]
    )
    g_a, g_b = (np.random.default_rng(c) for c in ss.spawn(2))
    A = (2.0 * g_a.random((batch, p, q)) - 1.0).astype(dtype, copy=False)
    B = (2.0 * g_b.random((batch, q, r)) - 1.0).astype(dtype, copy=False)
    return A, B


@dataclasses.dataclass(frozen=True)
class Measurement:
    """One timed plan: the tuner's unit of evidence."""

    plan: Plan
    seconds: float
    gflops: float

    def describe(self) -> str:
        return f"{self.plan.describe():>36}: {self.seconds:8.4f}s  {self.gflops:8.2f} eff.GFLOPS"


@dataclasses.dataclass(frozen=True)
class ShapeReport:
    """Everything measured while tuning one shape."""

    p: int
    q: int
    r: int
    dtype: str
    threads: int
    measurements: tuple[Measurement, ...]

    @property
    def best(self) -> Measurement:
        return min(self.measurements, key=lambda m: m.seconds)

    @property
    def label(self) -> str:
        return f"{self.p}x{self.q}x{self.r}"

    def rows(self) -> list[ResultRow]:
        """Render as ``bench.report``-compatible result rows."""
        return [
            ResultRow(
                algorithm=m.plan.describe(), workload=self.label, n=self.p,
                seconds=m.seconds, gflops=m.gflops,
                detail=f"{self.dtype},{self.threads}t"
                       + (" <-- winner" if m is self.best else ""),
            )
            for m in self.measurements
        ]


def measure_plan(
    plan: Plan,
    A,
    B,
    trials: int = 3,
    warmup: int = 1,
    pool: WorkerPool | None = None,
) -> Measurement:
    """Median-of-``trials`` timing of one plan on concrete operands.

    Timed through the same workspace-arena path dispatch serves (the
    warmup call builds the arena), so the cache commits to numbers the
    steady state will actually reproduce.  Compiled-backend candidates
    always get at least one warmup call: their first execution may pay a
    C compile + ``dlopen``, which belongs to no steady state and must
    never land inside a timed trial.
    """
    if plan.backend == "compiled":
        warmup = max(warmup, 1)
    p, q = A.shape
    r = B.shape[1]
    # throwaway arena: candidate plans that lose must not pollute (or
    # evict from) the serving workspace cache
    workspace = dispatch.build_workspace(plan, p, q, r, A.dtype, B.dtype)
    sec = median_time(
        lambda: dispatch.execute_plan(plan, A, B, pool=pool,
                                      workspace=workspace),
        trials=trials, warmup=warmup,
    )
    return Measurement(plan, sec, effective_gflops(p, q, r, sec))


def tune_shape(
    p: int,
    q: int,
    r: int,
    dtype: str = "float64",
    threads: int | None = None,
    budget_s: float = DEFAULT_BUDGET_S,
    trials: int = 3,
    max_candidates: int = DEFAULT_CANDIDATES,
    cache: PlanCache | None = None,
    persist: bool = True,
    seed: int = 0,
    pool: WorkerPool | None = None,
) -> ShapeReport:
    """Measure the ranked shortlist for one shape; cache the winner.

    Candidates are tried in cost-model order, so even a tight ``budget_s``
    times the most promising plans first; the dgemm baseline is always
    measured (it is in every shortlist).  The winner goes into ``cache``
    (and to disk, unless ``persist=False``).

    ``threads`` defaults to every available core -- the same default
    ``matmul`` dispatches with, so tune-then-dispatch hits the cache.
    """
    threads = resolve_threads(threads)
    cache = cache if cache is not None else _shared_cache()
    A, B = tuning_operands(p, q, r, dtype=dtype, seed=seed)
    plans = enumerate_plans(p, q, r, threads=threads, dtype=dtype,
                            max_candidates=max_candidates)
    deadline = time.monotonic() + budget_s
    measured: list[Measurement] = []
    for plan in plans:
        if measured and time.monotonic() >= deadline:
            break
        measured.append(measure_plan(plan, A, B, trials=trials, pool=pool))
    if not any(m.plan.is_dgemm for m in measured):
        baseline = next((pl for pl in plans if pl.is_dgemm), None)
        if baseline is not None:
            measured.append(measure_plan(baseline, A, B, trials=trials,
                                         pool=pool))
    report = ShapeReport(p, q, r, dtype, threads, tuple(measured))
    best = report.best
    cache.put(p, q, r, dtype, threads, best.plan,
              seconds=best.seconds, gflops=best.gflops)
    if persist:
        cache.save()
    return report


def tune_batch(
    p: int,
    q: int,
    r: int,
    batch: int,
    dtype: str = "float64",
    threads: int | None = None,
    budget_s: float = DEFAULT_BUDGET_S,
    trials: int = 3,
    max_candidates: int = 4,
    cache: PlanCache | None = None,
    persist: bool = True,
    seed: int = 0,
) -> BatchPlan:
    """Measure the batch-mode shortlist for one (shape, batch); cache the
    winner under the batched key.

    Sweeps :func:`repro.tuner.space.enumerate_batch_plans` -- the within
    head (the per-call candidate space at the full thread budget) merged
    with the elementwise head (1-thread sequential plans fanned across the
    pool) -- timing each candidate on the real batched execution path
    (:func:`repro.tuner.batched.execute_batch_plan` with throwaway arenas,
    so losing candidates never evict the serving set).  The winner is
    committed via :meth:`PlanCache.put_batched`; per-call entries are
    untouched.
    """
    from repro.tuner import batched as _batched

    threads = resolve_threads(threads)
    cache = cache if cache is not None else _shared_cache()
    A, B = batch_operands(p, q, r, batch, dtype=dtype, seed=seed)
    out = np.empty((batch, p, r), dtype=np.result_type(A, B))
    candidates = enumerate_batch_plans(p, q, r, batch, threads=threads,
                                       dtype=dtype,
                                       max_candidates=max_candidates)
    deadline = time.monotonic() + budget_s
    measured: list[tuple[float, BatchPlan]] = []
    for bplan in candidates:
        if measured and time.monotonic() >= deadline:
            break
        sec = median_time(
            lambda: _batched.execute_batch_plan(bplan, A, B, out=out,
                                                warm=False),
            trials=trials, warmup=1,
        )
        measured.append((sec, bplan))
    seconds, best = min(measured, key=lambda sb: (sb[0], sb[1].describe()))
    cache.put_batched(p, q, r, dtype, threads, batch, best,
                      seconds=seconds,
                      gflops=effective_gflops(p, q, r, seconds / batch))
    if persist:
        cache.save()
    return best


def tune(
    shapes,
    dtype: str = "float64",
    threads: int | None = None,
    budget_s: float = DEFAULT_BUDGET_S,
    trials: int = 3,
    max_candidates: int = DEFAULT_CANDIDATES,
    cache: PlanCache | None = None,
    persist: bool = True,
    verbose: bool = False,
    seed: int = 0,
) -> list[ShapeReport]:
    """Tune a list of ``(p, q, r)`` shapes; ``budget_s`` is per shape.

    Returns one :class:`ShapeReport` per shape (flatten with ``.rows()``
    for ``bench.report`` rendering).  ``threads`` defaults to every
    available core, matching ``matmul``'s dispatch default.
    Parallel-scheme measurements share one worker pool so repeated shapes
    don't pay pool startup each time.  ``seed`` feeds
    :func:`tuning_operands`, so two runs over the same shape list measure
    identical data.
    """
    threads = resolve_threads(threads)
    reports: list[ShapeReport] = []
    pool = WorkerPool(threads) if threads > 1 else None
    try:
        for p, q, r in shapes:
            rep = tune_shape(
                p, q, r, dtype=dtype, threads=threads, budget_s=budget_s,
                trials=trials, max_candidates=max_candidates, cache=cache,
                persist=persist, pool=pool, seed=seed,
            )
            if verbose:
                print(f"-- {rep.label} ({dtype}, {threads} threads)")
                for m in rep.measurements:
                    mark = " <--" if m is rep.best else ""
                    print(f"  {m.describe()}{mark}")
            reports.append(rep)
    finally:
        if pool is not None:
            pool.shutdown()
    return reports
