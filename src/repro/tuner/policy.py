"""Pluggable tuning policies: when (and how) dispatch is allowed to learn.

PR 1's dispatcher knew two modes bolted onto ``matmul`` (``tune="auto"`` /
``"always"``).  This module makes the decision a first-class, pluggable
object, because the paper's core claim -- the best fast algorithm varies
with shape *and* machine -- means the right learning behaviour differs by
deployment:

- ``never``   -- pure dispatch: cache -> nearest -> cost model.  Zero
  overhead, never measures (production hot path with a pre-tuned cache);
- ``auto``    -- one-shot offline tuning on a cost-model miss: the first
  call for an untuned shape pays a synthetic measurement sweep, every
  later call hits the cache;
- ``always``  -- re-tune on every call (benchmarking/diagnostics);
- ``online``  -- **budgeted exploration during real calls**: no synthetic
  operands, no blocking sweep.  Each dispatch runs one plan from the
  cost-ranked shortlist, epsilon-greedy (explore the least-tried
  candidate with probability epsilon, else exploit the best observed),
  and times the call it was going to make anyway -- the measurement cost
  is amortized to (almost) nothing.  Once every candidate has enough
  trials, or the dispatch budget is exhausted, the winner is promoted
  into the plan cache and the shape behaves like ``never`` from then on;
- ``ucb``     -- the same amortized harness driven by UCB1 instead of a
  coin flip: deterministic confidence-bound arm selection (no RNG), the
  natural fit for parallel-plan shortlists where the P' sub-space makes
  candidates plentiful and per-trial variance matters.

``register_policy`` admits project-specific strategies (per-tenant
budgets, ...) without touching dispatch; ``ucb`` itself registers through
that path.
"""

from __future__ import annotations

import math
import statistics
import threading
import time
import zlib

from repro.bench.metrics import effective_gflops
from repro.obs import telemetry
from repro.tuner.cache import PlanCache, problem_key
from repro.tuner.space import Plan, enumerate_plans
from repro.util.rng import default_rng

#: shortlist size policies explore (cost-model-ranked head of the space)
DEFAULT_SHORTLIST = 4

#: observations per candidate before the online policy may promote
DEFAULT_MIN_TRIALS = 2

#: exploration probability of the online epsilon-greedy rule
DEFAULT_EPSILON = 0.25

#: hard per-shape dispatch budget: promotion happens at the latest here,
#: even if some candidate never got ``min_trials`` observations
DEFAULT_MAX_DISPATCHES = 32


class TuningPolicy:
    """Base policy: resolve a plan, optionally learn from execution.

    ``select`` returns ``(plan, source)`` like ``dispatch.get_plan`` (with
    the extra sources ``"tuned"`` and ``"online"``); ``wants_timing``
    tells dispatch whether to time the real call and feed the duration to
    ``observe``.  The base class never measures -- it *is* the ``never``
    policy.
    """

    name = "never"

    #: monotonic clock used to bracket timed dispatches; instances (and
    #: tests) may substitute their own
    clock = staticmethod(time.perf_counter)

    def select(self, p: int, q: int, r: int, dtype: str, threads: int,
               cache: PlanCache) -> tuple[Plan, str]:
        from repro.tuner.dispatch import get_plan

        return get_plan(p, q, r, dtype=dtype, threads=threads, cache=cache)

    def wants_timing(self, source: str) -> bool:
        return False

    def observe(self, p: int, q: int, r: int, dtype: str, threads: int,
                cache: PlanCache, plan: Plan, seconds: float) -> None:
        pass


class AutoTunePolicy(TuningPolicy):
    """Offline-tune (synthetic operands, blocking) when dispatch has no
    measured evidence for the key: a cost-model miss, or a cross-thread
    ``"transfer"`` plan -- valid to serve, but never timed at this thread
    count, so the first call measures properly and caches the result."""

    name = "auto"

    def __init__(self, shortlist: int = DEFAULT_SHORTLIST,
                 trials: int = 1, persist: bool = True):
        self.shortlist = shortlist
        self.trials = trials
        self.persist = persist

    def _should_tune(self, source: str) -> bool:
        return source in ("model", "transfer")

    def select(self, p, q, r, dtype, threads, cache):
        plan, source = super().select(p, q, r, dtype, threads, cache)
        if source != "trivial" and self._should_tune(source):
            from repro.tuner.measure import tune_shape

            report = tune_shape(
                p, q, r, dtype=dtype, threads=threads, cache=cache,
                max_candidates=self.shortlist, trials=self.trials,
                persist=self.persist,
            )
            if source == "transfer" and telemetry.enabled():
                self._record_transfer_quality(plan, report, p, q, r,
                                              dtype, threads)
            return report.best.plan, "tuned"
        return plan, source

    def _record_transfer_quality(self, transferred: Plan, report,
                                 p, q, r, dtype, threads) -> None:
        """Gauge how good the cross-thread transferred plan actually was,
        relative to the re-tuned winner at this thread count.

        ``transfer.quality_ratio`` (transferred seconds / best seconds,
        1.0 = the transfer was already optimal) is the measured evidence a
        later PR needs to calibrate the fixed ``CROSS_THREAD_PENALTY``
        prior from real data instead of a guess.
        """
        sec = next((m.seconds for m in report.measurements
                    if m.plan == transferred), None)
        if sec is None:
            # the retargeted plan missed the re-tune shortlist: time it
            # once on the sweep's own deterministic operands
            from repro.tuner.measure import measure_plan, tuning_operands

            A, B = tuning_operands(p, q, r, dtype=dtype)
            try:
                sec = measure_plan(transferred, A, B, trials=1).seconds
            except Exception:  # telemetry must never break dispatch
                return
        best = report.best.seconds
        if best > 0:
            telemetry.set_gauge("transfer.quality_ratio", sec / best,
                                key=problem_key(p, q, r, dtype, threads))
            telemetry.incr("transfer.retuned")


class AlwaysTunePolicy(AutoTunePolicy):
    """Re-tune on every non-trivial call (diagnostics, never production)."""

    name = "always"

    def _should_tune(self, source: str) -> bool:
        return True


class _OnlineState:
    """Per-(shape, dtype, threads) exploration bookkeeping."""

    __slots__ = ("plans", "times", "dispatches", "done", "rng")

    def __init__(self, plans: list[Plan], seed: int):
        self.plans = plans
        self.times: list[list[float]] = [[] for _ in plans]
        self.dispatches = 0
        self.done = False
        self.rng = default_rng(seed)


class OnlineTunePolicy(TuningPolicy):
    """Epsilon-greedy exploration of the shortlist during real dispatches.

    Stateful (one :class:`_OnlineState` per problem key) and deterministic:
    the per-key RNG is seeded from ``seed`` and the key, so a fixed call
    sequence explores a fixed plan sequence -- tests rely on this, and so
    does debugging a production trace.

    The dispatch contract's nearest-neighbour step is honored: a
    fingerprint-fresh plan tuned at an adjacent shape *at the same thread
    count* is trusted (the paper's regimes are wide plateaus) and ends
    exploration for the shape, exactly as ``auto`` would dispatch it.
    Exploration only runs where no measured evidence exists -- and a
    cross-thread transfer is a prior, not evidence: timings from another
    thread count say nothing about, e.g., which P' wins here, so the
    policy keeps exploring at the queried thread count (pure dispatch,
    ``tune="never"``, still serves the transfer in the meantime).

    ``clock`` is injectable (tests substitute a fake monotonic clock to
    script which plan "wins"); dispatch brackets the real ``execute_plan``
    call with it and reports the duration to :meth:`observe`.
    """

    name = "online"

    def __init__(self, shortlist: int = DEFAULT_SHORTLIST,
                 min_trials: int = DEFAULT_MIN_TRIALS,
                 epsilon: float = DEFAULT_EPSILON,
                 max_dispatches: int = DEFAULT_MAX_DISPATCHES,
                 seed: int = 0, clock=time.perf_counter,
                 persist: bool = True):
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.shortlist = shortlist
        self.min_trials = max(1, min_trials)
        self.epsilon = epsilon
        self.max_dispatches = max_dispatches
        self.seed = seed
        self.clock = clock
        self.persist = persist
        self._states: dict[tuple, _OnlineState] = {}

    # ------------------------------------------------------------ plumbing
    def _state(self, key: tuple, p: int, q: int, r: int, dtype: str,
               threads: int) -> _OnlineState:
        st = self._states.get(key)
        if st is None:
            plans = enumerate_plans(p, q, r, threads=threads, dtype=dtype,
                                    max_candidates=self.shortlist)
            key_seed = self.seed ^ zlib.crc32(repr(key).encode())
            st = self._states[key] = _OnlineState(plans, key_seed)
        return st

    def reset(self) -> None:
        """Forget all exploration state (tests; after cache invalidation)."""
        self._states.clear()

    # ------------------------------------------------------------- choices
    def _pick(self, st: _OnlineState) -> int:
        untried = [i for i, ts in enumerate(st.times)
                   if len(ts) < self.min_trials]
        observed = [i for i, ts in enumerate(st.times) if ts]
        explore = untried and (
            not observed or st.rng.random() < self.epsilon
        )
        telemetry.incr("policy.choice", policy=self.name,
                       kind="explore" if explore else "exploit")
        if explore:
            # least-tried first; ties resolve to the better cost rank
            return min(untried, key=lambda i: (len(st.times[i]), i))
        if observed:
            return min(observed,
                       key=lambda i: statistics.median(st.times[i]))
        return 0

    def select(self, p, q, r, dtype, threads, cache):
        from repro.tuner.space import trivial_dim

        if min(p, q, r) < trivial_dim(dtype):
            return Plan(threads=threads), "trivial"
        hit = cache.get(p, q, r, dtype, threads)
        if hit is not None:
            return hit, "cache"
        near = cache.nearest(p, q, r, dtype, threads, cross_thread=False)
        if near is not None:
            return near, "nearest"
        key = (p, q, r, dtype, threads)
        st = self._state(key, p, q, r, dtype, threads)
        if st.done:
            # already converged, but *this* cache misses (new or cleared
            # cache, or one from another process): re-commit the winner
            # from the accumulated evidence instead of exploring again
            winner = self._promote(key, cache)
            if winner is not None:
                return winner, "cache"
        return st.plans[self._pick(st)], "online"

    def wants_timing(self, source: str) -> bool:
        return source == "online"

    # ------------------------------------------------------------ learning
    def observe(self, p, q, r, dtype, threads, cache, plan, seconds):
        key = (p, q, r, dtype, threads)
        st = self._states.get(key)
        if st is None or st.done:
            return
        try:
            idx = st.plans.index(plan)
        except ValueError:
            return  # a plan we didn't hand out (caller mixed policies)
        st.times[idx].append(seconds)
        st.dispatches += 1
        if telemetry.enabled():
            label = problem_key(p, q, r, dtype, threads)
            pulls = st.times[idx]
            telemetry.set_gauge("policy.arm_pulls", len(pulls),
                                policy=self.name, key=label, arm=str(idx))
            telemetry.set_gauge("policy.arm_mean_seconds",
                                sum(pulls) / len(pulls),
                                policy=self.name, key=label, arm=str(idx))
        fully_sampled = all(len(ts) >= self.min_trials for ts in st.times)
        if fully_sampled or st.dispatches >= self.max_dispatches:
            self._promote(key, cache)

    def _promote(self, key: tuple, cache: PlanCache) -> Plan | None:
        """Commit the best observed candidate to the cache; return it."""
        p, q, r, dtype, threads = key
        st = self._states[key]
        observed = [i for i, ts in enumerate(st.times) if ts]
        if not observed:
            return None
        best = min(observed, key=lambda i: statistics.median(st.times[i]))
        sec = statistics.median(st.times[best])
        cache.put(p, q, r, dtype, threads, st.plans[best],
                  seconds=sec, gflops=effective_gflops(p, q, r, sec))
        if self.persist:
            cache.save()
        st.done = True
        return st.plans[best]

    def converged(self, p: int, q: int, r: int, dtype: str = "float64",
                  threads: int = 1) -> bool:
        """Whether exploration for this key has promoted a winner."""
        st = self._states.get((p, q, r, dtype, threads))
        return bool(st and st.done)


#: UCB1 exploration weight (the bonus multiplier on sqrt(2 ln N / n_i));
#: rewards are normalized into (0, 1], so 1.0 keeps the classic balance
DEFAULT_UCB_EXPLORATION = 1.0


class UCBTunePolicy(OnlineTunePolicy):
    """UCB1 exploration of the shortlist during real dispatches.

    Same amortized deterministic timing harness as epsilon-greedy
    (:class:`OnlineTunePolicy`): dispatch brackets the real call with the
    injectable ``clock``, ``observe`` accumulates per-candidate timings,
    and the same promotion contract commits the median-best candidate to
    the cache once every candidate has ``min_trials`` observations or the
    ``max_dispatches`` budget runs out.

    Only the arm-selection rule differs, and it is *fully deterministic*
    -- no RNG at all, unlike epsilon-greedy's coin flip.  Each candidate's
    observed median time is normalized into a reward in (0, 1] (the
    incumbent scores 1) and the pick maximizes

        reward_i + exploration * sqrt(2 ln N / n_i)

    with ``N`` total observations and ``n_i`` the candidate's own count;
    untried candidates are bootstrapped first in cost-rank order.  Ties
    resolve to the better cost rank, so for a fixed problem key the
    exploration sequence -- and therefore each candidate's trial count --
    is a pure function of the observed durations.
    """

    name = "ucb"

    def __init__(self, shortlist: int = DEFAULT_SHORTLIST,
                 min_trials: int = DEFAULT_MIN_TRIALS,
                 exploration: float = DEFAULT_UCB_EXPLORATION,
                 max_dispatches: int = DEFAULT_MAX_DISPATCHES,
                 seed: int = 0, clock=time.perf_counter,
                 persist: bool = True):
        if exploration < 0.0:
            raise ValueError(
                f"exploration must be >= 0, got {exploration}"
            )
        super().__init__(shortlist=shortlist, min_trials=min_trials,
                         epsilon=0.0, max_dispatches=max_dispatches,
                         seed=seed, clock=clock, persist=persist)
        self.exploration = exploration

    def _pick(self, st: _OnlineState) -> int:
        for i, ts in enumerate(st.times):
            if not ts:  # bootstrap: every arm once, in cost-rank order
                telemetry.incr("policy.choice", policy=self.name,
                               kind="explore")
                return i
        total = sum(len(ts) for ts in st.times)
        medians = [statistics.median(ts) for ts in st.times]
        t_best = min(medians)

        def ucb(i: int) -> float:
            reward = t_best / medians[i] if medians[i] > 0 else 1.0
            bonus = self.exploration * math.sqrt(
                2.0 * math.log(total) / len(st.times[i])
            )
            return reward + bonus

        # max by score; ties resolve to the better cost rank (lower index)
        pick = max(range(len(st.times)), key=lambda i: (ucb(i), -i))
        # "exploit" = the confidence bound agreed with the incumbent best;
        # any other arm means the bonus term drove the pick
        telemetry.incr("policy.choice", policy=self.name,
                       kind="exploit" if medians[pick] <= t_best else "explore")
        return pick


#: registry of named policies (pluggable via :func:`register_policy`)
POLICIES: dict[str, type[TuningPolicy]] = {
    "never": TuningPolicy,
    "auto": AutoTunePolicy,
    "always": AlwaysTunePolicy,
    "online": OnlineTunePolicy,
}

_shared: dict[str, TuningPolicy] = {}

#: guards POLICIES/_shared -- policy singletons carry online tuning state,
#: so a racing double-construction would silently fork (and then lose)
#: half the accumulated observations
_policy_lock = threading.Lock()


def register_policy(name: str, cls: type[TuningPolicy]) -> None:
    """Add (or override) a named policy usable as ``matmul(tune=name)``."""
    if not isinstance(cls, type) or not issubclass(cls, TuningPolicy):
        raise TypeError(f"{cls!r} is not a TuningPolicy subclass")
    with _policy_lock:
        POLICIES[name] = cls
        _shared.pop(name, None)


def get_policy(spec: str | TuningPolicy, **kwargs) -> TuningPolicy:
    """Resolve a policy name (or pass an instance through).

    Named lookups without kwargs return a process-shared instance, so the
    ``online`` policy accumulates observations across ``matmul`` calls --
    that sharing *is* the feature.  Pass kwargs (or an instance) for a
    private policy with custom knobs.
    """
    if isinstance(spec, TuningPolicy):
        return spec
    try:
        cls = POLICIES[spec]
    except (KeyError, TypeError):
        raise ValueError(
            f"tune must be one of {sorted(POLICIES)} or a TuningPolicy, "
            f"got {spec!r}"
        ) from None
    if kwargs:
        return cls(**kwargs)
    with _policy_lock:
        if spec not in _shared:
            _shared[spec] = cls()
        return _shared[spec]


def reset_shared_policies() -> None:
    """Drop the process-shared policy instances (tests; config changes)."""
    with _policy_lock:
        _shared.clear()


# UCB rides the same pluggable-registration path third-party policies use
# (it needs nothing register_policy does not provide), so matmul(tune="ucb")
# and `repro tune --policy ucb` resolve it like any other name.
register_policy("ucb", UCBTunePolicy)
