"""Persistent plan cache: the tuner's memory between processes.

One JSON file maps problem keys ``(m, k, n, dtype, threads)`` to the best
measured :class:`~repro.tuner.space.Plan` and its observed performance.
The schema is versioned: a file written by an incompatible release is
ignored (never half-parsed), and saving always rewrites the current
schema atomically (write to a sibling temp file, then rename).  When the
cache directory cannot be written (read-only home, sandbox), ``save``
degrades to in-memory operation instead of raising -- dispatch keeps
working, it just forgets between processes.

Every entry is stamped with the **machine fingerprint** digest
(:func:`repro.bench.machine.fingerprint_digest`) current when it was
tuned.  The paper's core finding is that the best plan depends on the
machine as much as on the shape, so an entry tuned under a different
fingerprint (other CPU, other BLAS, other core count) is *stale*: lookups
bypass it -- falling through to the cost model -- rather than trust it,
and ``invalidate()`` clears exactly those entries.

Failures feed back into the cache too: :meth:`PlanCache.record_failure`
keeps a **per-entry failure ledger** (persisted as a separate top-level
``"failures"`` dict -- old readers ignore it, so no schema bump), and a
(plan, shape, dtype) key that fails :data:`QUARANTINE_THRESHOLD` times is
*quarantined*: every lookup (:meth:`get` / :meth:`nearest` /
:meth:`get_batched`) skips it so dispatch falls through to the next
resolution stage, except for a bounded backoff probe -- every
:data:`QUARANTINE_PROBE_EVERY`-th skip lets the plan through once, so a
transient failure (a since-fixed BLAS, a freed machine) rehabilitates
(:meth:`record_success` clears the ledger) instead of being exiled
forever.  Load/save failures are no longer silent either: they are
counted (``cache.load_errors`` / ``cache.save_errors``), warned once per
path, and a corrupt cache file is preserved as a ``.corrupt`` sidecar
for inspection rather than overwritten.

Untuned shapes fall back to the *nearest* tuned shape (same dtype,
closest in log-space) -- the paper's Figure 5/6 regimes are broad
plateaus, so a plan tuned at ``3000 x 416 x 3000`` transfers to
``3200 x 400 x 3200`` essentially unchanged.  The fallback is two-tier:
entries tuned at the queried thread count always win; only when none
lies within the radius are entries from *other* thread counts
considered, their distance scaled by a cross-thread penalty and their
plan rewritten (thread count retargeted, the sub-group hybrid's P'
snapped back to a divisor) so what comes back is always executable at
the queried thread count.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import math
import os
import tempfile
import threading
from pathlib import Path

from repro.guard import faults
from repro.obs import telemetry
from repro.tuner.space import BatchPlan, Plan

_log = logging.getLogger("repro.tuner.cache")

#: bump when the on-disk layout changes incompatibly
#: (v2: entries carry a machine-fingerprint stamp; v3: timings are
#: measured on the workspace-arena serving path -- sequential plans then
#: ran the reference interpreter; v4: sequential plans are served by the
#: *generated* modules drawing from the arena, so v3 interpreter-path
#: timings no longer describe what dispatch executes and must be re-tuned;
#: v5: entries record the scheme and sub-group P' they were tuned with --
#: v4 plans never swept P', so their parallel timings do not describe the
#: enlarged candidate space and must be re-tuned;
#: v6: entries record the serving backend -- v5 plans never swept the
#: compiled C chain backend, so on hosts with a compiler their sequential
#: timings describe only half the candidate space and must be re-tuned)
SCHEMA_VERSION = 6

#: schema versions :meth:`PlanCache.load` can still *read*: their entries
#: surface as stale-schema (visible to ``cache show`` and cleared by
#: ``invalidate``) but are bypassed by every lookup, exactly like a
#: foreign machine fingerprint
COMPAT_SCHEMAS = (4, 5)

#: default max log-space distance for the nearest-shape fallback
#: (1.0 ~= one dimension off by a factor e)
NEAREST_RADIUS = 1.0

#: extra log-space distance per ln-factor of thread-count mismatch in the
#: cross-thread nearest fallback: a plan tuned at 2 threads queried at 4
#: is penalized by ``0.5 * ln 2`` on top of its shape distance, so it can
#: never outrank an exact-thread hit (those are searched first) and only
#: transfers when it is genuinely close
CROSS_THREAD_PENALTY = 0.5

#: guarded-execution failures of one (plan, shape, dtype, threads) key
#: before it is quarantined -- one failure may be environmental bad luck,
#: two in a row is a pattern worth demoting
QUARANTINE_THRESHOLD = 2

#: bounded backoff: every Nth lookup that would skip a quarantined plan
#: lets it through as a probe, so recovery is possible without a manual
#: ledger clear
QUARANTINE_PROBE_EVERY = 16

#: cache paths already warned about this process (load/save problems are
#: warned once per path, counted always)
_warned_paths: set[str] = set()
_warned_lock = threading.Lock()


def _warn_once(key: str, message: str) -> None:
    with _warned_lock:
        if key in _warned_paths:
            return
        _warned_paths.add(key)
    _log.warning("%s", message)


def default_cache_path() -> Path:
    """``$REPRO_PLAN_CACHE`` if set, else ``~/.cache/repro/plan_cache.json``."""
    env = os.environ.get("REPRO_PLAN_CACHE")
    if env:
        return Path(env)
    base = os.environ.get("XDG_CACHE_HOME", os.path.expanduser("~/.cache"))
    return Path(base) / "repro" / "plan_cache.json"


def problem_key(m: int, k: int, n: int, dtype: str, threads: int) -> str:
    return f"{m}x{k}x{n}:{dtype}:{threads}t"


def batched_key(m: int, k: int, n: int, dtype: str, threads: int,
                batch: int) -> str:
    """Key for an entry tuned over a whole batch of same-shape products.

    A suffix on :func:`problem_key` rather than a schema bump: readers
    that only know plain keys (older releases' ``_parse_key``) drop the
    batched entries and keep every existing entry valid.
    """
    return f"{problem_key(m, k, n, dtype, threads)}:b{batch}"


def _parse_key(key: str) -> tuple[int, int, int, str, int, int | None] | None:
    """``(m, k, n, dtype, threads, batch)``; ``batch`` is ``None`` for
    plain per-call keys and the batch size for :func:`batched_key` keys."""
    try:
        parts = key.split(":")
        if len(parts) == 3:
            shape, dtype, t = parts
            batch = None
        elif len(parts) == 4:
            shape, dtype, t, b = parts
            if not b.startswith("b"):
                return None
            batch = int(b[1:])
            if batch < 1:
                return None
        else:
            return None
        m, k, n = (int(x) for x in shape.split("x"))
        return m, k, n, dtype, int(t.rstrip("t")), batch
    except (ValueError, AttributeError):
        return None


def retarget_plan(plan: Plan, threads: int) -> Plan:
    """Rewrite a plan tuned at another thread count so it is *valid* at
    ``threads``: the thread count is replaced, and a sub-group P' that no
    longer divides the new count snaps to the largest divisor not above
    it (P' = 1 always exists, so this never fails).  The algorithm,
    depth, scheme and strategy -- the knobs the paper's regime plateaus
    make transferable -- are kept."""
    sub = plan.subgroup
    if sub is not None:
        sub = max(d for d in range(1, min(sub, threads) + 1)
                  if threads % d == 0)
    return dataclasses.replace(plan, threads=threads, subgroup=sub)


class PlanCache:
    """Dictionary of tuned plans with JSON persistence.

    ``load`` is lazy and forgiving (missing file, bad JSON or a schema
    mismatch all yield an empty cache); ``save`` is atomic, and degrades
    to in-memory operation (``save_error`` set, ``False`` returned) when
    the cache location is unwritable.  Entries store the plan plus the
    measured seconds/GFLOPS so reports can show what the tuner believed
    when it committed to the plan, and the machine-fingerprint digest so
    entries tuned elsewhere are bypassed, not trusted.

    ``fingerprint`` defaults to this machine's digest; tests forge it to
    simulate a cache that traveled between boxes.
    """

    def __init__(self, path: str | Path | None = None,
                 fingerprint: str | None = None):
        self.path = Path(path) if path is not None else default_cache_path()
        self._fingerprint = fingerprint
        # Reentrant: public methods lock, then call other locking methods
        # (get -> plan_quarantined, invalidate -> stale_keys, * -> _ensure).
        self._lock = threading.RLock()
        self._entries: dict[str, dict] = {}
        self._failures: dict[str, dict] = {}
        self._loaded = False
        self.save_error: Exception | None = None
        self.load_error: Exception | None = None
        self.corrupt_sidecar: Path | None = None

    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            from repro.bench.machine import fingerprint_digest

            self._fingerprint = fingerprint_digest()
        return self._fingerprint

    # ------------------------------------------------------------- storage
    def load(self) -> "PlanCache":
        """Read the cache file; always leaves a usable (maybe empty) cache.

        Failures are loud now, not silent: an unreadable path or
        unparsable content sets ``load_error``, bumps the
        ``cache.load_errors`` counter, and warns once per path.  An
        unparsable file is additionally preserved as a ``.corrupt``
        sidecar (``corrupt_sidecar``) so whatever a crash mid-write or
        bit-rot left behind can be inspected -- the next ``save`` would
        otherwise overwrite the evidence.
        """
        with self._lock:
            return self._load_locked()

    def _load_locked(self) -> "PlanCache":
        self._loaded = True
        self._entries = {}
        self._failures = {}
        self.load_error = None
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return self  # a cold cache is the normal first-run state
        except OSError as e:
            self._note_load_error(e, f"plan cache at {self.path} is "
                                      f"unreadable ({e}); running uncached")
            return self
        if faults.active and faults.should_fire("cache.corrupt"):
            text = '{"injected": "cache.corrupt'
        try:
            raw = json.loads(text)
            if not isinstance(raw, dict):
                raise ValueError(
                    f"top-level JSON value is {type(raw).__name__}, "
                    f"not an object")
        except (json.JSONDecodeError, ValueError) as e:
            sidecar = self._quarantine_corrupt_file()
            kept = (f"; original preserved at {sidecar}" if sidecar
                    else "")
            self._note_load_error(
                e, f"plan cache at {self.path} is corrupt ({e}); "
                   f"starting fresh{kept}")
            return self
        schema = raw.get("schema")
        if schema != SCHEMA_VERSION and schema not in COMPAT_SCHEMAS:
            return self  # foreign or unknown file: start fresh, don't crash
        entries = raw.get("entries", {})
        if isinstance(entries, dict):
            self._entries = {
                k: v for k, v in entries.items()
                if _parse_key(k) is not None and isinstance(v, dict)
            }
        failures = raw.get("failures", {})
        if isinstance(failures, dict):
            self._failures = {
                k: dict(v) for k, v in failures.items()
                if isinstance(v, dict)
            }
        if schema != SCHEMA_VERSION:
            # the v4 -> v5 migration path: entries survive the read (so
            # `cache show` can display them and `invalidate` can clear
            # them) but carry their origin schema, which _fresh treats
            # like a foreign fingerprint -- bypassed, never trusted
            for ent in self._entries.values():
                ent.setdefault("schema", schema)
        return self

    def _note_load_error(self, exc: Exception, message: str) -> None:
        self.load_error = exc
        telemetry.incr("cache.load_errors")
        _warn_once(f"load:{self.path}", message)

    def _quarantine_corrupt_file(self) -> Path | None:
        """Move an unparsable cache file aside to ``<name>.corrupt``
        (best-effort -- a read-only directory leaves it in place)."""
        sidecar = self.path.with_name(self.path.name + ".corrupt")
        try:
            os.replace(self.path, sidecar)
        except OSError:
            return None
        self.corrupt_sidecar = sidecar
        return sidecar

    def save(self) -> bool:
        """Write the cache atomically; ``False`` when it cannot persist.

        A failure anywhere in the mkdir/write/rename sequence -- an
        unwritable location (OSError) or an unserializable entry value
        (TypeError/ValueError from ``json.dump``) -- marks the cache as
        effectively in-memory (``save_error``) instead of propagating: a
        read-only cache dir must not break dispatch.  The sibling temp
        file is removed on any failure.
        """
        with self._lock:
            # shallow-copy each record so concurrent in-place updates
            # (plan_quarantined bumps "skips") cannot race json.dump
            payload = {
                "schema": SCHEMA_VERSION,
                "entries": {k: dict(v) for k, v in self._entries.items()},
            }
            if self._failures:
                payload["failures"] = {
                    k: dict(v) for k, v in self._failures.items()
                }
        tmp = None
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
            )
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
            os.replace(tmp, self.path)
            tmp = None
        except (OSError, TypeError, ValueError) as e:
            self.save_error = e
            telemetry.incr("cache.save_errors")
            _warn_once(f"save:{self.path}",
                       f"plan cache at {self.path} cannot be saved ({e}); "
                       f"tuning results stay in-memory only")
            return False
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        self.save_error = None
        return True

    def _ensure(self) -> None:
        with self._lock:
            if not self._loaded:
                self.load()

    def _fresh(self, ent: dict) -> bool:
        return (ent.get("schema", SCHEMA_VERSION) == SCHEMA_VERSION
                and ent.get("fingerprint") == self.fingerprint)

    # ------------------------------------------------------ failure ledger
    @staticmethod
    def _ledger_key(m: int, k: int, n: int, dtype: str, threads: int,
                    plan: Plan, batch: int | None = None) -> str:
        base = (batched_key(m, k, n, dtype, threads, batch)
                if batch is not None
                else problem_key(m, k, n, dtype, threads))
        return f"{base}|{plan.describe()}"

    def record_failure(self, m: int, k: int, n: int, dtype: str,
                       threads: int, plan: Plan, reason,
                       batch: int | None = None) -> bool:
        """Charge one guarded-execution failure to a (plan, problem) key.

        Returns ``True`` when this failure crossed
        :data:`QUARANTINE_THRESHOLD` and newly quarantined the key.  The
        ledger rides in the cache file, so quarantine survives the
        process (the caller owns the decision to ``save``).
        """
        with self._lock:
            self._ensure()
            key = self._ledger_key(m, k, n, dtype, threads, plan, batch)
            rec = self._failures.setdefault(
                key, {"count": 0, "quarantined": False, "skips": 0})
            rec["count"] = int(rec.get("count", 0)) + 1
            rec["reason"] = str(reason)[:200]
            telemetry.incr("guard.plan_failures")
            if (not rec.get("quarantined")
                    and rec["count"] >= QUARANTINE_THRESHOLD):
                rec["quarantined"] = True
                telemetry.incr("guard.quarantines")
                _log.warning(
                    "plan [%s] quarantined for %dx%dx%d %s after %d "
                    "failure(s): %s", plan.describe(), m, k, n, dtype,
                    rec["count"], rec["reason"])
                return True
            return False

    def record_success(self, m: int, k: int, n: int, dtype: str,
                       threads: int, plan: Plan,
                       batch: int | None = None) -> None:
        """A clean guarded execution rehabilitates the key: the ledger
        entry (and any quarantine) is dropped entirely."""
        with self._lock:
            if not self._failures:
                return
            key = self._ledger_key(m, k, n, dtype, threads, plan, batch)
            if self._failures.pop(key, None) is not None:
                telemetry.incr("guard.rehabilitations")

    def plan_quarantined(self, m: int, k: int, n: int, dtype: str,
                         threads: int, plan: Plan,
                         batch: int | None = None) -> bool:
        """Should a lookup skip this plan for this problem?

        ``True`` for quarantined keys -- except every
        :data:`QUARANTINE_PROBE_EVERY`-th call, which lets the plan
        through once as a bounded retry probe (skips are tallied in the
        ledger, so backoff state persists with it).
        """
        with self._lock:
            if not self._failures:
                return False
            rec = self._failures.get(
                self._ledger_key(m, k, n, dtype, threads, plan, batch))
            if rec is None or not rec.get("quarantined"):
                return False
            skips = int(rec.get("skips", 0)) + 1
            rec["skips"] = skips
            if skips % QUARANTINE_PROBE_EVERY == 0:
                telemetry.incr("guard.quarantine_probes")
                return False
            telemetry.incr("guard.quarantine_skips")
            return True

    def failure_ledger(self) -> dict[str, dict]:
        """A copy of the raw failure ledger (reporting/doctor tools)."""
        with self._lock:
            self._ensure()
            return {k: dict(v) for k, v in sorted(self._failures.items())}

    def quarantined_keys(self) -> list[str]:
        with self._lock:
            self._ensure()
            return sorted(k for k, v in self._failures.items()
                          if v.get("quarantined"))

    def clear_failures(self) -> int:
        """Drop the whole ledger; returns how many keys it held."""
        with self._lock:
            self._ensure()
            n = len(self._failures)
            self._failures = {}
            return n

    def drop(self, key: str) -> bool:
        """Remove one entry by raw key (doctor/repair tools)."""
        with self._lock:
            self._ensure()
            return self._entries.pop(key, None) is not None

    # -------------------------------------------------------------- access
    def __len__(self) -> int:
        with self._lock:
            self._ensure()
            return len(self._entries)

    def keys(self) -> list[str]:
        with self._lock:
            self._ensure()
            return sorted(self._entries)

    def items(self) -> list[tuple[str, dict]]:
        """All raw entries (including stale ones), sorted by key."""
        with self._lock:
            self._ensure()
            return sorted(self._entries.items())

    def get(self, m: int, k: int, n: int, dtype: str = "float64",
            threads: int = 1) -> Plan | None:
        """Exact-key lookup; stale (foreign-fingerprint) entries miss."""
        with self._lock:
            self._ensure()
            ent = self._entries.get(problem_key(m, k, n, dtype, threads))
            if ent is None or not self._fresh(ent):
                return None
            try:
                plan = Plan.from_dict(ent["plan"])
            except (KeyError, TypeError, ValueError):
                return None
            if self.plan_quarantined(m, k, n, dtype, threads, plan):
                return None
            return plan

    def entry(self, m: int, k: int, n: int, dtype: str = "float64",
              threads: int = 1) -> dict | None:
        """Exact-key raw entry (plan dict + measured seconds/gflops).

        Unlike :meth:`get` this returns stale entries too (callers that
        want the dispatch contract should use ``get``); reporting tools
        inspect the ``fingerprint`` field themselves.
        """
        with self._lock:
            self._ensure()
            return self._entries.get(problem_key(m, k, n, dtype, threads))

    def put(self, m: int, k: int, n: int, dtype: str, threads: int,
            plan: Plan, seconds: float | None = None,
            gflops: float | None = None) -> None:
        """Store a tuned plan.  Besides the plan dict itself, the entry
        records the scheme, sub-group P' and serving backend it was tuned
        with as explicit top-level fields -- ``cache show`` and external
        tooling read the execution configuration without decoding the
        plan."""
        with self._lock:
            self._ensure()
            self._entries[problem_key(m, k, n, dtype, threads)] = {
                "plan": plan.to_dict(),
                "scheme": plan.scheme,
                "subgroup": plan.subgroup,
                "backend": plan.backend,
                "seconds": seconds,
                "gflops": gflops,
                "fingerprint": self.fingerprint,
            }

    def put_batched(self, m: int, k: int, n: int, dtype: str, threads: int,
                    batch: int, bplan: BatchPlan,
                    seconds: float | None = None,
                    gflops: float | None = None) -> None:
        """Store a plan tuned over a whole batch of same-shape products.

        The entry mirrors :meth:`put` plus a ``batch`` field recording the
        tuned batch mode (``"within"`` / ``"elementwise"``) and the worker
        fan-out -- the new batch-parallelism axis.  Batched entries live
        under :func:`batched_key` keys, so plain per-call entries (old and
        new) are untouched and stay valid.
        """
        with self._lock:
            self._ensure()
            plan = bplan.plan
            self._entries[batched_key(m, k, n, dtype, threads, batch)] = {
                "plan": plan.to_dict(),
                "scheme": plan.scheme,
                "subgroup": plan.subgroup,
                "backend": plan.backend,
                "batch": bplan.mode,
                "workers": bplan.workers,
                "seconds": seconds,
                "gflops": gflops,
                "fingerprint": self.fingerprint,
            }

    def get_batched(self, m: int, k: int, n: int, dtype: str, threads: int,
                    batch: int) -> BatchPlan | None:
        """Batched-entry lookup: exact batch size first, else the entry
        for the *closest* tuned batch size of the same problem key (batch
        modes are regime plateaus in ``b`` just as plans are in shape;
        ties break toward the smaller batch for determinism).  Stale
        entries miss, like :meth:`get`."""
        with self._lock:
            return self._get_batched_locked(m, k, n, dtype, threads, batch)

    def _get_batched_locked(self, m, k, n, dtype, threads, batch):
        self._ensure()
        prefix = problem_key(m, k, n, dtype, threads) + ":b"
        candidates = []
        for key, ent in self._entries.items():
            if not key.startswith(prefix):
                continue
            parsed = _parse_key(key)
            if parsed is None or parsed[5] is None or not self._fresh(ent):
                continue
            candidates.append((abs(math.log(parsed[5] / batch)),
                               parsed[5], ent))
        if not candidates:
            return None
        best = min(candidates, key=lambda c: (c[0], c[1]))[2]
        try:
            bplan = BatchPlan(
                plan=Plan.from_dict(best["plan"]),
                mode=best.get("batch", "within"),
                workers=int(best.get("workers", 1)),
            )
        except (KeyError, TypeError, ValueError):
            return None
        if self.plan_quarantined(m, k, n, dtype, threads, bplan.plan,
                                 batch=batch):
            return None
        return bplan

    def nearest(
        self, m: int, k: int, n: int, dtype: str = "float64",
        threads: int = 1, radius: float = NEAREST_RADIUS,
        cross_thread: bool = True,
    ) -> Plan | None:
        """Closest tuned shape with the same dtype; ``None`` when nothing
        tuned (and fingerprint-fresh) lies within ``radius``.

        Distance is Euclidean in log-dimension space.  Entries tuned at
        the queried thread count are searched first and always win; only
        when none is in range does the search fall back *across* thread
        counts, each candidate's distance scaled up by
        :data:`CROSS_THREAD_PENALTY` per ln-factor of thread mismatch.  A
        cross-thread hit is retargeted via :func:`retarget_plan` before it
        is returned, so the plan is always valid at ``threads``.

        ``cross_thread=False`` restricts the search to exact-thread
        entries: the online learning policies use this so a transfer
        counts as a serving *prior*, not as measured evidence that would
        end exploration at the new thread count.

        Ties are broken deterministically: candidates are scanned in
        sorted key order and a new candidate must be *strictly* closer to
        displace the incumbent, so equidistant tuned shapes resolve to the
        lexicographically smallest key no matter what order the cache file
        listed them in -- identical calls pick identical plans.
        """
        with self._lock:
            return self._nearest_locked(m, k, n, dtype, threads, radius,
                                        cross_thread)

    def _nearest_locked(self, m, k, n, dtype, threads, radius,
                        cross_thread) -> Plan | None:
        self._ensure()
        best_exact, d_exact = None, radius
        best_cross, d_cross = None, radius
        for key in sorted(self._entries):
            ent = self._entries[key]
            parsed = _parse_key(key)
            if parsed is None or not self._fresh(ent):
                continue
            em, ek, en, edtype, et, ebatch = parsed
            if edtype != dtype or ebatch is not None:
                continue
            if et != threads and not cross_thread:
                continue
            d = math.sqrt(
                math.log(em / m) ** 2
                + math.log(ek / k) ** 2
                + math.log(en / n) ** 2
            )
            if et == threads:
                if d < d_exact or (best_exact is None and d <= radius):
                    best_exact, d_exact = ent, d
            else:
                d += CROSS_THREAD_PENALTY * abs(math.log(et / threads))
                if d < d_cross or (best_cross is None and d <= radius):
                    best_cross, d_cross = ent, d
        best = best_exact if best_exact is not None else best_cross
        if best is None:
            return None
        try:
            plan = Plan.from_dict(best["plan"])
        except (KeyError, TypeError, ValueError):
            return None
        if plan.threads != threads:
            plan = retarget_plan(plan, threads)
        if self.plan_quarantined(m, k, n, dtype, threads, plan):
            return None
        return plan

    # -------------------------------------------------------- invalidation
    def stale_keys(self) -> list[str]:
        """Keys whose entries were tuned under a different fingerprint."""
        with self._lock:
            self._ensure()
            return sorted(k for k, v in self._entries.items()
                          if not self._fresh(v))

    def invalidate(self, stale_only: bool = True) -> list[str]:
        """Drop stale entries (or, with ``stale_only=False``, everything).

        Returns the removed keys; the caller decides whether to ``save``.
        Fresh entries are untouched in the default mode -- re-tuning work
        done on *this* machine is never thrown away by an invalidation
        sweep.
        """
        with self._lock:
            self._ensure()
            doomed = (self.stale_keys() if stale_only
                      else sorted(self._entries))
            for key in doomed:
                del self._entries[key]
            return doomed

    def clear(self) -> None:
        with self._lock:
            self._entries = {}
            self._failures = {}
            self._loaded = True
