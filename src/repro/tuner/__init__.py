"""Shape-aware autotuner and plan-cache dispatch (the paper, made a system).

The paper's practical finding (Figures 5-6) is that *no single fast
algorithm wins everywhere*: the best base case, recursion depth and
parallel schedule depend on problem shape, dtype and thread count.  This
subsystem turns that finding into machinery:

- :mod:`repro.tuner.space`    -- the :class:`Plan` dataclass and candidate
  enumeration, pruned/ranked by the ``core.cost`` analytical model;
- :mod:`repro.tuner.measure`  -- timed trials (``tune`` / ``tune_shape``)
  under a wall-clock budget, reporting effective GFLOPS;
- :mod:`repro.tuner.cache`    -- the persistent, versioned JSON plan cache
  keyed by ``(m, k, n, dtype, threads)`` with nearest-shape fallback;
- :mod:`repro.tuner.dispatch` -- ``matmul(A, B)``: cache hit -> run the
  plan; miss -> cost-model pick, optional online tuning.

Quick start::

    import numpy as np
    from repro import tuner

    tuner.tune([(1536, 1536, 1536)], budget_s=20)   # once, persisted
    C = tuner.matmul(A, B)                          # dispatches the winner
"""

from repro.tuner.cache import PlanCache, SCHEMA_VERSION, default_cache_path
from repro.tuner.dispatch import (
    execute_plan,
    get_plan,
    matmul,
    reset_shared_cache,
)
from repro.tuner.measure import (
    Measurement,
    ShapeReport,
    measure_plan,
    tune,
    tune_shape,
)
from repro.tuner.space import Plan, candidate_algorithms, enumerate_plans

__all__ = [
    "Plan",
    "PlanCache",
    "SCHEMA_VERSION",
    "Measurement",
    "ShapeReport",
    "candidate_algorithms",
    "default_cache_path",
    "enumerate_plans",
    "execute_plan",
    "get_plan",
    "matmul",
    "measure_plan",
    "reset_shared_cache",
    "tune",
    "tune_shape",
]
