"""Shape-aware autotuner and plan-cache dispatch (the paper, made a system).

The paper's practical finding (Figures 5-6) is that *no single fast
algorithm wins everywhere*: the best base case, recursion depth and
parallel schedule depend on problem shape, dtype and thread count.  This
subsystem turns that finding into machinery:

- :mod:`repro.tuner.space`    -- the :class:`Plan` dataclass and candidate
  enumeration (dtype-specific: float32 recurses deeper within its
  stability budget; thread-aware: all four parallel schemes plus the
  sub-group hybrid's P' swept over the divisors of the thread count),
  pruned/ranked by the ``core.cost`` analytical model including its
  communication terms;
- :mod:`repro.tuner.measure`  -- timed trials (``tune`` / ``tune_shape``)
  under a wall-clock budget on deterministic seeded operands, reporting
  effective GFLOPS;
- :mod:`repro.tuner.cache`    -- the persistent, versioned JSON plan cache
  keyed by ``(m, k, n, dtype, threads)`` with nearest-shape fallback
  (two-tier: exact-thread entries first, then penalized cross-thread
  transfer with the plan retargeted to the queried thread count); every
  entry carries a machine fingerprint, so a cache tuned on another box
  is bypassed and re-tuned, never trusted;
- :mod:`repro.tuner.policy`   -- pluggable tuning policies: ``never`` /
  ``auto`` / ``always`` / ``online`` (budgeted epsilon-greedy exploration
  during real calls, winner promoted into the cache) / ``ucb``
  (deterministic UCB1 over the same amortized harness);
- :mod:`repro.tuner.dispatch` -- ``matmul(A, B)``: cache hit -> run the
  plan; miss -> cost-model pick, learning per the selected policy.

Quick start::

    import numpy as np
    from repro import tuner

    tuner.tune([(1536, 1536, 1536)], budget_s=20)   # once, persisted
    C = tuner.matmul(A, B)                          # dispatches the winner

    # or skip the offline pass: learn during real traffic
    for A, B in workload:
        C = tuner.matmul(A, B, tune="online")
"""

from repro.tuner.batched import (
    execute_batch_plan,
    get_batch_plan,
    matmul_batched,
    reset_batch_pools,
)
from repro.tuner.cache import (
    PlanCache,
    SCHEMA_VERSION,
    batched_key,
    default_cache_path,
    retarget_plan,
)
from repro.tuner.dispatch import (
    build_workspace,
    execute_plan,
    get_plan,
    matmul,
    reset_shared_cache,
    reset_workspaces,
    shutdown_shared_pools,
    workspace_for,
)
from repro.tuner.measure import (
    Measurement,
    ShapeReport,
    batch_operands,
    measure_plan,
    tune,
    tune_batch,
    tune_shape,
    tuning_operands,
)
from repro.tuner.policy import (
    POLICIES,
    AlwaysTunePolicy,
    AutoTunePolicy,
    OnlineTunePolicy,
    TuningPolicy,
    UCBTunePolicy,
    get_policy,
    register_policy,
    reset_shared_policies,
)
from repro.tuner.space import (
    BATCH_MODES,
    PLAN_BACKENDS,
    BatchPlan,
    Plan,
    batch_plan_cost,
    candidate_algorithms,
    compiled_backend_available,
    enumerate_batch_plans,
    enumerate_plans,
    retarget_backend,
    subgroup_candidates,
)

__all__ = [
    "BATCH_MODES",
    "PLAN_BACKENDS",
    "BatchPlan",
    "Plan",
    "PlanCache",
    "POLICIES",
    "SCHEMA_VERSION",
    "AlwaysTunePolicy",
    "AutoTunePolicy",
    "Measurement",
    "build_workspace",
    "OnlineTunePolicy",
    "ShapeReport",
    "TuningPolicy",
    "UCBTunePolicy",
    "batch_operands",
    "batch_plan_cost",
    "batched_key",
    "candidate_algorithms",
    "compiled_backend_available",
    "default_cache_path",
    "enumerate_batch_plans",
    "enumerate_plans",
    "execute_batch_plan",
    "execute_plan",
    "get_batch_plan",
    "get_plan",
    "get_policy",
    "matmul",
    "matmul_batched",
    "measure_plan",
    "register_policy",
    "reset_batch_pools",
    "reset_shared_cache",
    "reset_shared_policies",
    "reset_workspaces",
    "retarget_backend",
    "retarget_plan",
    "shutdown_shared_pools",
    "subgroup_candidates",
    "tune",
    "tune_batch",
    "tune_shape",
    "tuning_operands",
    "workspace_for",
]
