"""Input validation and error metrics shared across the library."""

from __future__ import annotations

import numpy as np


def require_2d(X: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Coerce to a floating 2-D ndarray, raising on bad input.

    float32 is preserved (the paper notes single precision as the honest
    alternative to APA algorithms); everything else is upcast to float64.
    """
    A = np.asarray(X)
    if A.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got ndim={A.ndim}")
    if A.dtype not in (np.float32, np.float64):
        A = A.astype(np.float64)
    return A


def check_matmul_dims(A: np.ndarray, B: np.ndarray) -> tuple[int, int, int]:
    """Return (P, Q, R) for C = A @ B, validating the inner dimension."""
    p, q = A.shape
    q2, r = B.shape
    if q != q2:
        raise ValueError(f"inner dimensions disagree: A is {A.shape}, B is {B.shape}")
    return p, q, r


def relative_error(C: np.ndarray, C_ref: np.ndarray) -> float:
    """Frobenius-norm relative error ||C - C_ref|| / ||C_ref||.

    This is the metric used throughout the tests to compare fast-algorithm
    output against the classical product; exact algorithms should sit at the
    rounding-error level (~1e-14 for well-scaled inputs) while APA algorithms
    show the O(lambda) degradation the paper warns about.
    """
    denom = float(np.linalg.norm(C_ref))
    if denom == 0.0:
        return float(np.linalg.norm(C))
    return float(np.linalg.norm(C - C_ref)) / denom
