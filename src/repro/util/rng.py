"""Deterministic random-number handling.

Everything in the library that needs randomness takes either a
``numpy.random.Generator`` or an integer seed, so experiments and tests are
reproducible run-to-run.
"""

from __future__ import annotations

import numpy as np

_DEFAULT_SEED = 20150207  # PPoPP 2015 conference date


def default_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a Generator.

    ``None`` maps to the library-wide fixed seed (determinism by default);
    an existing Generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = _DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rngs(n: int, seed: int | None = None) -> list[np.random.Generator]:
    """Return ``n`` statistically independent child generators.

    Used by multi-start search drivers and parallel workload generators so
    each start/worker gets its own stream while the whole run stays
    reproducible from a single seed.
    """
    ss = np.random.SeedSequence(_DEFAULT_SEED if seed is None else seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
