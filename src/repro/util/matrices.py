"""Block-matrix helpers: partitioning into views, peeling splits, test data.

The recursive fast algorithms operate on an M x K grid of equally sized
sub-blocks of A (and K x N of B, M x N of C).  All partitioning here returns
*views*, never copies, following the guide's "views, not copies" rule --
copies are only made when an addition chain actually combines blocks.
"""

from __future__ import annotations

import numpy as np


def block_views(X: np.ndarray, rows: int, cols: int) -> list[np.ndarray]:
    """Partition ``X`` into a ``rows x cols`` grid of equally sized views.

    Returns the blocks in row-major order, matching the row-wise
    vectorization convention of the paper (Section 1.2): block (i, j) sits at
    index ``i * cols + j``, exactly like the entry ordering of ``vec(X)``.

    ``X.shape`` must be divisible by ``(rows, cols)``; callers handle ragged
    dimensions with :func:`peel_split` first.
    """
    p, q = X.shape
    if p % rows or q % cols:
        raise ValueError(
            f"matrix of shape {X.shape} not divisible into {rows}x{cols} blocks"
        )
    bp, bq = p // rows, q // cols
    return [
        X[i * bp : (i + 1) * bp, j * bq : (j + 1) * bq]
        for i in range(rows)
        for j in range(cols)
    ]


def flatten_blocks(blocks: list[np.ndarray], rows: int, cols: int) -> np.ndarray:
    """Inverse of :func:`block_views`: reassemble a row-major block list."""
    if len(blocks) != rows * cols:
        raise ValueError(f"expected {rows * cols} blocks, got {len(blocks)}")
    return np.block([[blocks[i * cols + j] for j in range(cols)] for i in range(rows)])


def peel_split(X: np.ndarray, row_div: int, col_div: int):
    """Split ``X`` for dynamic peeling (paper Section 3.5).

    Returns ``(core, right, bottom, corner)`` views where ``core`` is the
    largest leading submatrix whose dimensions are divisible by
    ``(row_div, col_div)``; the other three are the boundary strips (possibly
    zero-width).  Dynamic peeling runs the fast algorithm on ``core`` and
    fixes up the boundary contributions with classical (thin) products at
    every recursion level, which keeps memory use flat compared with padding.
    """
    p, q = X.shape
    pr, qr = p % row_div, q % col_div
    pc, qc = p - pr, q - qr
    return X[:pc, :qc], X[:pc, qc:], X[pc:, :qc], X[pc:, qc:]


def random_matrix(
    rows: int,
    cols: int,
    rng: np.random.Generator | int | None = None,
    dtype=np.float64,
) -> np.ndarray:
    """Uniform [-1, 1) test matrix; deterministic given a seed."""
    from repro.util.rng import default_rng

    g = default_rng(rng)
    return (2.0 * g.random((rows, cols)) - 1.0).astype(dtype, copy=False)
