"""Shared utilities: RNG handling, block-matrix views, validation helpers."""

from repro.util.rng import default_rng, spawn_rngs
from repro.util.matrices import (
    block_views,
    flatten_blocks,
    peel_split,
    random_matrix,
)
from repro.util.validation import (
    check_matmul_dims,
    relative_error,
    require_2d,
)

__all__ = [
    "default_rng",
    "spawn_rngs",
    "block_views",
    "flatten_blocks",
    "peel_split",
    "random_matrix",
    "check_matmul_dims",
    "relative_error",
    "require_2d",
]
