"""C emission verifier: prove the native chain kernels match their scheme.

The C backend (:mod:`repro.codegen.cbackend`) emits three fused kernels
per algorithm -- ``form_S``, ``form_T``, ``form_C`` -- as flat C source.
The Python-side symbolic pass (:mod:`repro.analyze.symbolic`) cannot see
them, so a sign flipped in the C emitter would only surface as a numeric
test failure.  This pass closes that gap the same way: it parses the
emitted translation unit back into coefficient vectors over the input
blocks (``form_S``/``form_T``) and over the rank-R products (``form_C``),
resolves CSE definitions in emission order, grafts the zero-traffic alias
columns back in from the driver's ``_prepare`` layout (the C source never
materializes them -- the ctypes driver passes block views directly), and
compares the recovered bilinear tensor

    sum_r  U_hat[:, r] x V_hat[:, r] x W_hat[:, r]

coefficient-by-coefficient against the catalog ``[U, V, W]`` scheme.
No compiler is involved: emission is pure string generation, so the pass
runs (and proves) on hosts with no C toolchain at all.

Every statement must match one of the emitter's declared forms
(``EMISSION_CONTRACT["cbackend"]``: ``block_ptr``, ``slab_ptr``,
``product_ptr``, ``scratch_ptr``, ``output_ptr``, ``fused_store``) --
anything else is a finding, never silently skipped.

Finding codes: ``CEMIT-PARSE`` (statement outside the contract),
``CEMIT-HEADER`` (provenance header disagrees with the algorithm),
``CEMIT-BLOCK`` (block pointer offsets disagree with its index),
``CEMIT-UNINIT`` (store reads a slab row before it is written),
``CEMIT-LAYOUT`` (slab row in C disagrees with the driver layout),
``CEMIT-RANK`` (``form_C`` consumes != rank products),
``CEMIT-CBLOCK`` (an output block is never written),
``CEMIT-TENSOR`` (recovered bilinear form differs from the scheme).
"""

from __future__ import annotations

import re

import numpy as np

from repro.analyze.base import Finding

#: relative tolerance of the tensor comparison -- coefficients round-trip
#: through ``repr(float)`` so anything beyond float noise is emitter drift
TENSOR_RTOL = 1e-8

_RE_HEADER = re.compile(
    r" \* algorithm (\S+) <(\d+),(\d+),(\d+)> rank (\d+), cse=(True|False)")
_RE_FN = re.compile(r"void (form_[STC])\(")
_RE_BLOCK = re.compile(
    r"const double \*p([AB])(\d+) = X \+ \(\(size_t\)\((\d+)\*bp \+ i\)\)"
    r"\*ldx \+ \(size_t\)\((\d+)\)\*bq;")
_RE_SLAB = re.compile(
    r"double \*p(\w+) = S \+ (\d+)\*blk \+ \(size_t\)i\*bq;")
_RE_PRODUCT = re.compile(
    r"const double \*p(M)(\d+) = M\[(\d+)\] \+ \(size_t\)i\*bq;")
_RE_SCRATCH = re.compile(r"double \*p(\w+) = Y \+ (\d+)\*bq;")
_RE_OUTPUT = re.compile(
    r"double \*pC(\d+) = C \+ \(\(size_t\)\((\d+)\*bp \+ i\)\)\*ldc"
    r" \+ \(size_t\)\((\d+)\)\*bq;")
_RE_STORE = re.compile(r"p(\w+)\[j\] = (.+);$")
_RE_TERM = re.compile(
    r"([+-]) (?:(-?[0-9][0-9.eE+-]*) \* )?p([A-Za-z]+\d+)\[j\]")

#: statement-free lines the parser passes over without a contract match
_BOILERPLATE = (
    "{", "}", "(void)Y;",
    "const size_t blk = (size_t)bp * (size_t)bq;",
    "for (long i = 0; i < bp; ++i) {",
    "#include <stddef.h>",
)


def _parse_rhs(rhs: str) -> list[tuple[float, str]] | None:
    """``pA0[j] - 0.5 * pYA1[j]`` -> ``[(1.0, "A0"), (-0.5, "YA1")]``.

    Returns ``None`` when any character falls outside the emitter's term
    grammar -- the caller turns that into a loud finding.
    """
    s = rhs if rhs.startswith(("+ ", "- ")) else "+ " + rhs
    pos, terms = 0, []
    while pos < len(s):
        m = _RE_TERM.match(s, pos)
        if m is None:
            return None
        sign, coeff, src = m.groups()
        c = float(coeff) if coeff is not None else 1.0
        terms.append((c if sign == "+" else -c, src))
        pos = m.end()
        if pos < len(s):
            if s[pos] != " ":
                return None
            pos += 1
    return terms


class _Kernel:
    """The parsed state of one ``form_*`` function."""

    def __init__(self, name: str) -> None:
        self.name = name
        #: pointer name (sans ``p``) -> coefficient vector, or ``None``
        #: for declared-but-unwritten slab/scratch/output rows
        self.env: dict[str, np.ndarray | None] = {}
        self.slab_rows: dict[str, int] = {}      # target -> declared S row
        self.block_of: dict[str, int] = {}       # pA3 -> 3 (checked)
        self.out_block: dict[str, int] = {}      # C target -> output block
        self.products: dict[str, int] = {}       # M target -> product index
        self.stored: list[str] = []              # store order


def _parse_unit(source: str, nblocks: dict[str, int],
                where: str) -> tuple[dict[str, _Kernel], dict, list[Finding]]:
    """One pass over the translation unit; returns the three kernels, the
    provenance header fields, and the parse findings."""
    findings: list[Finding] = []
    kernels: dict[str, _Kernel] = {}
    header: dict = {}
    current: _Kernel | None = None
    pending_store = False
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.strip()
        loc = f"{where}:{lineno}"
        if not line or line.startswith(("/*", "*", "*/")):
            m = _RE_HEADER.match(raw)
            if m:
                header = {
                    "algorithm": m.group(1),
                    "base_case": tuple(int(m.group(i)) for i in (2, 3, 4)),
                    "rank": int(m.group(5)),
                    "cse": m.group(6) == "True",
                }
            continue
        m = _RE_FN.match(line)
        if m:
            current = _Kernel(m.group(1))
            kernels[current.name] = current
            pending_store = False
            continue
        if line in _BOILERPLATE:
            continue
        if current is None:
            findings.append(Finding(
                "cemit", "CEMIT-PARSE", loc,
                f"statement outside any kernel: {line!r}"))
            continue
        if pending_store:
            pending_store = False
            m = _RE_STORE.match(line)
            if m is None:
                findings.append(Finding(
                    "cemit", "CEMIT-PARSE", loc,
                    f"j-loop body is not a fused store: {line!r}"))
                continue
            target, rhs = m.groups()
            terms = _parse_rhs(rhs)
            if terms is None:
                findings.append(Finding(
                    "cemit", "CEMIT-PARSE", loc,
                    f"store RHS outside the term grammar: {rhs!r}"))
                continue
            vec = None
            for coeff, src in terms:
                src_vec = current.env.get(src)
                if src_vec is None:
                    findings.append(Finding(
                        "cemit", "CEMIT-UNINIT", loc,
                        f"store of {target!r} reads {src!r} before any"
                        " write reaches it"))
                    break
                vec = coeff * src_vec if vec is None else vec + coeff * src_vec
            else:
                if target not in current.env:
                    findings.append(Finding(
                        "cemit", "CEMIT-PARSE", loc,
                        f"store targets undeclared pointer {target!r}"))
                    continue
                current.env[target] = vec
                current.stored.append(target)
            continue
        if line.startswith("for (long j"):
            pending_store = True
            continue
        m = _RE_BLOCK.match(line)
        if m:
            space, idx, brow, bcol = m.group(1), int(m.group(2)), \
                int(m.group(3)), int(m.group(4))
            cols = nblocks[f"{space}cols"]
            if brow * cols + bcol != idx:
                findings.append(Finding(
                    "cemit", "CEMIT-BLOCK", loc,
                    f"pointer p{space}{idx} addresses block"
                    f" ({brow},{bcol}) = index {brow * cols + bcol}"))
                continue
            vec = np.zeros(nblocks[space])
            vec[idx] = 1.0
            current.env[f"{space}{idx}"] = vec
            current.block_of[f"{space}{idx}"] = idx
            continue
        m = _RE_SLAB.match(line)
        if m:
            current.env.setdefault(m.group(1), None)
            current.slab_rows[m.group(1)] = int(m.group(2))
            continue
        m = _RE_PRODUCT.match(line)
        if m:
            name, idx, row = f"M{m.group(2)}", int(m.group(2)), int(m.group(3))
            if idx != row:
                findings.append(Finding(
                    "cemit", "CEMIT-BLOCK", loc,
                    f"pointer p{name} reads product row {row}"))
                continue
            vec = np.zeros(nblocks["M"])
            vec[idx] = 1.0
            current.env[name] = vec
            current.products[name] = idx
            continue
        m = _RE_SCRATCH.match(line)
        if m:
            current.env.setdefault(m.group(1), None)
            continue
        m = _RE_OUTPUT.match(line)
        if m:
            idx, bi, bj = (int(m.group(i)) for i in (1, 2, 3))
            if bi * nblocks["Ccols"] + bj != idx:
                findings.append(Finding(
                    "cemit", "CEMIT-BLOCK", loc,
                    f"pointer pC{idx} addresses output block ({bi},{bj})"
                    f" = index {bi * nblocks['Ccols'] + bj}"))
                continue
            current.env.setdefault(f"C{idx}", None)
            current.out_block[f"C{idx}"] = idx
            continue
        findings.append(Finding(
            "cemit", "CEMIT-PARSE", loc,
            f"statement outside the cbackend emission contract: {line!r}"))
    return kernels, header, findings


def _side_matrix(kernel: _Kernel | None, side: dict, nblocks: int,
                 rank: int, where: str,
                 findings: list[Finding]) -> np.ndarray | None:
    """Recover the per-rank coefficient matrix (``nblocks x rank``) from a
    parsed ``form_S``/``form_T`` plus the driver's slab layout."""
    if kernel is None:
        findings.append(Finding(
            "cemit", "CEMIT-PARSE", where, "kernel missing from the unit"))
        return None
    mat = np.zeros((nblocks, rank))
    for r, (ch, lay) in enumerate(zip(side["chains"], side["layout"])):
        if lay[0] == "alias":
            mat[lay[1], r] = ch.terms[0].coeff
            continue
        vec = kernel.env.get(ch.target)
        if vec is None:
            findings.append(Finding(
                "cemit", "CEMIT-UNINIT", where,
                f"{kernel.name} never writes slab column {ch.target!r}"))
            return None
        declared = kernel.slab_rows.get(ch.target)
        if declared != lay[1]:
            findings.append(Finding(
                "cemit", "CEMIT-LAYOUT", where,
                f"{kernel.name} places {ch.target!r} in slab row"
                f" {declared}, driver layout expects row {lay[1]}"))
            return None
        mat[:, r] = vec
    return mat


def verify_source(source: str, algorithm, cse: bool,
                  where: str = "<cbackend>") -> list[Finding]:
    """Verify one emitted C translation unit against its scheme.

    ``algorithm`` is the catalog :class:`FastAlgorithm` the unit was
    generated from; ``cse`` must match the generation flag (the slab
    layout depends on it).  Returns findings (empty == proven).
    """
    from repro.codegen.cbackend import _prepare

    s, t, c = _prepare(algorithm, cse)
    m, k, n = algorithm.base_case
    rank = algorithm.rank
    nblocks = {"A": m * k, "Acols": k, "B": k * n, "Bcols": n,
               "M": rank, "Ccols": n}
    kernels, header, findings = _parse_unit(source, nblocks, where)
    if findings:
        return findings
    if header.get("algorithm") != algorithm.name or \
            header.get("base_case") != (m, k, n) or \
            header.get("rank") != rank or header.get("cse") != cse:
        findings.append(Finding(
            "cemit", "CEMIT-HEADER", where,
            f"provenance header {header} disagrees with"
            f" {algorithm.name} <{m},{k},{n}> rank {rank} cse={cse}"))
        return findings
    U_hat = _side_matrix(kernels.get("form_S"), s, m * k, rank,
                         f"{where}.form_S", findings)
    V_hat = _side_matrix(kernels.get("form_T"), t, k * n, rank,
                         f"{where}.form_T", findings)
    fc = kernels.get("form_C")
    if fc is None:
        findings.append(Finding(
            "cemit", "CEMIT-PARSE", f"{where}.form_C",
            "kernel missing from the unit"))
    if findings:
        return findings
    if len(fc.products) != rank:
        findings.append(Finding(
            "cemit", "CEMIT-RANK", f"{where}.form_C",
            f"form_C consumes {len(fc.products)} products, scheme rank"
            f" is {rank}"))
        return findings
    W_hat = np.zeros((m * n, rank))
    missing = []
    for idx in range(m * n):
        vec = fc.env.get(f"C{idx}")
        if vec is None:
            missing.append(idx)
        else:
            W_hat[idx] = vec
    if missing:
        findings.append(Finding(
            "cemit", "CEMIT-CBLOCK", f"{where}.form_C",
            f"output block(s) {missing} never written"))
        return findings
    T = np.einsum("ir,jr,kr->ijk", U_hat, V_hat, W_hat)
    T_scheme = np.einsum("ir,jr,kr->ijk",
                         algorithm.U, algorithm.V, algorithm.W)
    scale = max(1.0, float(np.abs(T_scheme).max()))
    err = np.abs(T - T_scheme)
    worst = float(err.max())
    if worst > TENSOR_RTOL * scale:
        ia, ib, ic = np.unravel_index(int(err.argmax()), err.shape)
        findings.append(Finding(
            "cemit", "CEMIT-TENSOR", where,
            "recovered bilinear form differs from the [U,V,W] scheme: "
            f"T[A{ia},B{ib},C{ic}] = {T[ia, ib, ic]:g}, scheme says"
            f" {T_scheme[ia, ib, ic]:g} (max |delta| = {worst:g})",
            detail={"max_abs_error": worst}))
    return findings


def verify_algorithm(name_or_alg, cse: bool) -> list[Finding]:
    """Emit and verify one catalog entry's C unit (no compiler needed)."""
    from repro.algorithms.catalog import get_algorithm
    from repro.codegen.cbackend import generate_c_source

    alg = (get_algorithm(name_or_alg) if isinstance(name_or_alg, str)
           else name_or_alg)
    where = f"{alg.name}[cbackend,cse={cse}]"
    return verify_source(generate_c_source(alg, cse), alg, cse, where=where)


def verify_catalog(names=None,
                   cse_options=(False, True)) -> tuple[int, list[Finding]]:
    """Sweep every catalog entry x cse; returns ``(checked, findings)``."""
    from repro.algorithms.catalog import list_algorithms

    if names is None:
        names = list_algorithms(include_apa=True)
    findings: list[Finding] = []
    checked = 0
    for name in names:
        for cse in cse_options:
            findings.extend(verify_algorithm(name, cse))
            checked += 1
    return checked, findings
