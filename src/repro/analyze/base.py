"""Shared finding model for the static-analysis passes (`repro analyze`).

Every analyzer reports :class:`Finding` records; an empty list means the
property it checks is *proved* for the artifacts it swept (not merely
"no test failed").  Codes are stable strings the mutation-testing suite
keys on, so renaming one is an API change.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One defect located by a static analyzer."""

    analyzer: str   # "symbolic" | "arena" | "concurrency" | "catalog"
    code: str       # stable machine code, e.g. "SYM-TENSOR"
    where: str      # artifact/function or file:line the finding anchors to
    message: str    # human explanation
    detail: dict = field(default_factory=dict, compare=False, hash=False)

    def __str__(self) -> str:
        return f"[{self.analyzer}:{self.code}] {self.where}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "analyzer": self.analyzer,
            "code": self.code,
            "where": self.where,
            "message": self.message,
            "detail": dict(self.detail),
        }


def has_code(findings: list[Finding], code: str) -> bool:
    """Whether any finding carries ``code`` (mutation tests use this)."""
    return any(f.code == code for f in findings)
