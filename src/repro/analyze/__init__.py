"""repro.analyze: static analysis over generated kernels and the source tree.

Five passes, each importable and driven by ``repro analyze``:

- :mod:`repro.analyze.symbolic` -- abstractly interprets every generated
  module's ``_core``/``_core_ws`` and proves the recovered bilinear form
  equals the catalog ``[U,V,W]`` scheme, coefficient by coefficient,
  without executing a multiply;
- :mod:`repro.analyze.cemit` -- the same proof for the C chain emitter:
  parses the ``form_S``/``form_T``/``form_C`` translation units back into
  coefficient tables and compares the recovered tensor against the
  scheme, with no compiler in the loop;
- :mod:`repro.analyze.arena` -- checks the arena discipline of generated
  code (balanced ``mark``/``release``, no view read after its scope is
  released, static take totals within ``codegen_footprint``) and the
  mark/release balance of the hand-written tree;
- :mod:`repro.analyze.concurrency` -- a registry of known shared state and
  the lock that must guard each, flagging mutations reached outside a
  ``with <lock>`` scope, plus a hot-path allocation lint;
- :mod:`repro.analyze.catalog` -- shape/rank/dtype/finiteness and residual
  verification for every catalog entry (exact entries to ``EXACT_TOL``,
  APA entries against their recorded residual).

An empty finding list is a proof over the swept artifacts, which is what
lets CI block on this pass.  The suite is self-validating: the mutation
tests in ``tests/test_analyze.py`` corrupt artifacts in known ways and
assert the corresponding analyzer fires.
"""

from __future__ import annotations

from repro.analyze.base import Finding, has_code

ANALYZERS = ("symbolic", "cemit", "arena", "concurrency", "catalog")

__all__ = ["ANALYZERS", "Finding", "has_code", "run", "run_all"]


def run(analyzer: str, **kwargs) -> tuple[int, list[Finding]]:
    """Run one analyzer by name; returns ``(artifacts_checked, findings)``.

    Emits ``analyze.runs`` / ``analyze.findings.<name>`` through
    :mod:`repro.obs` so sweeps show up in telemetry like any other
    subsystem.
    """
    from repro import obs

    if analyzer == "symbolic":
        from repro.analyze.symbolic import verify_catalog

        with obs.span("analyze.symbolic"):
            checked, findings = verify_catalog(**kwargs)
    elif analyzer == "cemit":
        from repro.analyze.cemit import verify_catalog as verify_cemit

        with obs.span("analyze.cemit"):
            checked, findings = verify_cemit(**kwargs)
    elif analyzer == "arena":
        from repro.analyze.arena import check_catalog_arena, check_tree

        with obs.span("analyze.arena"):
            checked, findings = check_catalog_arena(**kwargs)
            n2, f2 = check_tree()
            checked += n2
            findings = findings + f2
    elif analyzer == "concurrency":
        from repro.analyze.concurrency import check_tree

        with obs.span("analyze.concurrency"):
            checked, findings = check_tree(**kwargs)
    elif analyzer == "catalog":
        from repro.analyze.catalog import check_catalog

        with obs.span("analyze.catalog"):
            checked, findings = check_catalog(**kwargs)
    else:
        raise ValueError(f"unknown analyzer {analyzer!r}; have {ANALYZERS}")
    obs.incr("analyze.runs")
    obs.incr(f"analyze.findings.{analyzer}", len(findings))
    return checked, findings


def run_all(analyzers=ANALYZERS) -> dict[str, tuple[int, list[Finding]]]:
    """Run the requested analyzers; returns ``{name: (checked, findings)}``."""
    return {name: run(name) for name in analyzers}
