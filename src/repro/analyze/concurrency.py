"""Concurrency lint: every known piece of shared state has a named lock.

The tuner/arena/obs stack shares mutable state across threads -- dispatch
arena caches and pools, the plan cache's entry/failure ledgers, the
telemetry registry, policy singletons, fault-injection ledgers, the
codegen module cache.  Each has exactly one lock that must guard its
mutations; holding that invariant by convention is how PRs 3-8 shipped,
and this pass mechanizes it: :data:`REGISTRY` names each shared object
and its lock, and the lint flags any mutation site reached outside a
``with <lock>`` block (``CONC-UNLOCKED``).

A mutation is: item assignment/deletion/augmented assignment through the
name, a mutating method call (``append``/``pop``/``update``/...), or a
``global`` rebind from function scope.  Module-level initialization,
``__init__`` construction of instance state, and functions whose name
ends in ``_locked`` (the must-hold-lock convention) are exempt.  Entries
with ``lock=None`` are *documented* lock-free (benign races, e.g. the
once-per-key warning set) and are skipped but kept in the registry so
the exemption is explicit and reviewed.

The second half is the hot-path allocation lint (``CONC-ALLOC``): inside
arena-served functions (a ``workspace``/``ws`` parameter), every bare
``np.empty``/``np.zeros`` must sit under an ``is None``/``is not None``
guard on the workspace or output -- an unconditional allocation there
re-introduces exactly the per-call heap traffic the arenas eliminated.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.analyze.base import Finding

_MUTATORS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend", "insert",
    "move_to_end", "pop", "popitem", "remove", "setdefault", "update",
})


@dataclass(frozen=True)
class SharedState:
    """One registered shared object and the lock that must guard it."""

    module: str          # path relative to src/repro, e.g. "tuner/dispatch.py"
    name: str            # global name, or "self.<attr>" for instance state
    lock: str | None     # "with <lock>" expr that must enclose mutations
    note: str = ""


#: Known shared state across the stack.  Adding a new shared structure
#: without registering it here is the review-time failure mode this
#: registry exists to make visible.
REGISTRY: tuple[SharedState, ...] = (
    SharedState("tuner/dispatch.py", "_workspaces", "_dispatch_lock",
                "thread-keyed arena cache"),
    SharedState("tuner/dispatch.py", "_pools", "_dispatch_lock",
                "persistent worker pools"),
    SharedState("tuner/dispatch.py", "_default_cache", "_dispatch_lock",
                "lazily built shared PlanCache"),
    SharedState("tuner/dispatch.py", "_overflow_warned", None,
                "once-per-key warning set; duplicate warn is benign"),
    SharedState("tuner/cache.py", "self._entries", "self._lock",
                "plan cache entries"),
    SharedState("tuner/cache.py", "self._failures", "self._lock",
                "quarantine failure ledger"),
    SharedState("tuner/cache.py", "_warned_paths", "_warned_lock",
                "once-per-path load warnings"),
    SharedState("tuner/batched.py", "_arena_pools", "_batch_lock",
                "per-worker arena pools for batched dispatch"),
    SharedState("tuner/policy.py", "POLICIES", "_policy_lock",
                "named policy registry"),
    SharedState("tuner/policy.py", "_shared", "_policy_lock",
                "process-shared policy singletons"),
    SharedState("obs/telemetry.py", "_counters", "_lock"),
    SharedState("obs/telemetry.py", "_gauges", "_lock"),
    SharedState("obs/telemetry.py", "_spans", "_lock"),
    SharedState("obs/telemetry.py", "_dispatch_ring", "_lock"),
    SharedState("guard/faults.py", "_specs", "_lock",
                "fault-injection specs"),
    SharedState("guard/faults.py", "_fired", "_lock",
                "fault-injection fire ledger"),
    SharedState("codegen/generator.py", "_MODULE_CACHE", "_compile_lock",
                "generated-module cache"),
    SharedState("codegen/cbackend.py", "_LIB_CACHE", "_lib_lock",
                "loaded shared-library cache"),
    SharedState("codegen/cbackend.py", "_CACHE_STATE", "_lib_lock",
                "resolved on-disk cache dir + warn-once flag"),
    SharedState("tuner/dispatch.py", "_cbackend_warned", None,
                "once-per-algorithm fallback warning set; duplicate "
                "warn is benign"),
)

#: Files whose arena-served functions get the allocation lint.
HOT_ALLOC_FILES = ("codegen/runtime.py",)


def _src_root() -> Path:
    return Path(__file__).resolve().parent.parent


def _parents(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    out: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            out[child] = node
    return out


def _matches(expr: ast.expr, name: str) -> bool:
    if name.startswith("self."):
        attr = name.split(".", 1)[1]
        return (isinstance(expr, ast.Attribute) and expr.attr == attr
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self")
    return isinstance(expr, ast.Name) and expr.id == name


def _ancestors(node: ast.AST, parents: dict) -> list[ast.AST]:
    chain = []
    cur = parents.get(node)
    while cur is not None:
        chain.append(cur)
        cur = parents.get(cur)
    return chain


def _is_guarded(node: ast.AST, parents: dict, state: SharedState) -> bool:
    fn_seen = False
    for anc in _ancestors(node, parents):
        if isinstance(anc, ast.With):
            for item in anc.items:
                if _matches(item.context_expr, state.lock):
                    return True
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and not fn_seen:
            fn_seen = True
            if anc.name.endswith("_locked"):
                return True
            if anc.name == "__init__" and state.name.startswith("self."):
                return True
    if not fn_seen:
        return True  # module-level statement: single-threaded import time
    return False


def _mutation_sites(tree: ast.Module, parents: dict,
                    state: SharedState) -> list[tuple[ast.AST, str]]:
    name = state.name
    sites: list[tuple[ast.AST, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for t in targets:
                if isinstance(t, ast.Subscript) and _matches(t.value, name):
                    sites.append((node, "item assignment"))
                elif _matches(t, name):
                    if name.startswith("self."):
                        sites.append((node, "attribute rebind"))
                    else:
                        # global rebind counts only from function scope with
                        # a `global` declaration (module level is init)
                        fns = [a for a in _ancestors(node, parents)
                               if isinstance(a, ast.FunctionDef)]
                        if fns and any(
                                isinstance(s, ast.Global) and name in s.names
                                for fn in fns for s in ast.walk(fn)):
                            sites.append((node, "global rebind"))
        elif isinstance(node, ast.Delete):
            for t in node.targets:
                if isinstance(t, ast.Subscript) and _matches(t.value, name):
                    sites.append((node, "item deletion"))
        elif isinstance(node, ast.Call):
            f = node.func
            if isinstance(f, ast.Attribute) and f.attr in _MUTATORS \
                    and _matches(f.value, name):
                sites.append((node, f"mutating call .{f.attr}()"))
    return sites


def check_module_source(source: str, states: list[SharedState],
                        where: str) -> tuple[int, list[Finding]]:
    """Lint one module's source against a list of registry entries.

    Returns ``(mutation_sites_checked, findings)``.  Exposed separately so
    the mutation-testing suite can lint synthetic modules.
    """
    findings: list[Finding] = []
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return 0, [Finding("concurrency", "CONC-PARSE", where,
                           f"does not parse: {exc}")]
    parents = _parents(tree)
    checked = 0
    for state in states:
        sites = _mutation_sites(tree, parents, state)
        checked += len(sites)
        if state.lock is None:
            continue
        for node, kind in sites:
            if not _is_guarded(node, parents, state):
                findings.append(Finding(
                    "concurrency", "CONC-UNLOCKED",
                    f"{where}:{getattr(node, 'lineno', 0)}",
                    f"{kind} on shared {state.name!r} outside"
                    f" `with {state.lock}`"
                    + (f" ({state.note})" if state.note else "")))
    return checked, findings


def _alloc_guarded(node: ast.AST, parents: dict) -> bool:
    for anc in _ancestors(node, parents):
        test = None
        if isinstance(anc, (ast.If, ast.IfExp)):
            test = anc.test
        elif isinstance(anc, ast.FunctionDef):
            break
        if test is not None and any(
                isinstance(n, ast.Compare)
                and any(isinstance(op, (ast.Is, ast.IsNot)) for op in n.ops)
                for n in ast.walk(test)):
            return True
    return False


def check_alloc_source(source: str, where: str) -> tuple[int, list[Finding]]:
    """Hot-path allocation lint over one module's arena-served functions."""
    findings: list[Finding] = []
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return 0, [Finding("concurrency", "CONC-PARSE", where,
                           f"does not parse: {exc}")]
    parents = _parents(tree)
    checked = 0
    for fn in ast.walk(tree):
        if not isinstance(fn, ast.FunctionDef):
            continue
        params = {a.arg for a in fn.args.args + fn.args.kwonlyargs}
        if not params & {"workspace", "ws"}:
            continue
        checked += 1
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and isinstance(node.func,
                                                         ast.Attribute):
                f = node.func
                if isinstance(f.value, ast.Name) and f.value.id == "np" \
                        and f.attr in ("empty", "zeros"):
                    if not _alloc_guarded(node, parents):
                        findings.append(Finding(
                            "concurrency", "CONC-ALLOC",
                            f"{where}:{node.lineno}",
                            f"unconditional np.{f.attr} in arena-served"
                            f" {fn.name}(); allocate only when the workspace"
                            " (or out) is None"))
    return checked, findings


def check_tree(root: Path | None = None,
               registry: tuple[SharedState, ...] = REGISTRY
               ) -> tuple[int, list[Finding]]:
    """Run the shared-state and allocation lints over the source tree."""
    root = root or _src_root()
    findings: list[Finding] = []
    checked = 0
    by_module: dict[str, list[SharedState]] = {}
    for state in registry:
        by_module.setdefault(state.module, []).append(state)
    for module, states in sorted(by_module.items()):
        path = root / module
        if not path.exists():
            findings.append(Finding(
                "concurrency", "CONC-REGISTRY", module,
                "registered module does not exist; update the registry"))
            continue
        n, f = check_module_source(path.read_text(), states,
                                   f"src/repro/{module}")
        checked += n
        findings.extend(f)
    for module in HOT_ALLOC_FILES:
        path = root / module
        n, f = check_alloc_source(path.read_text(), f"src/repro/{module}")
        checked += n
        findings.extend(f)
    return checked, findings
