"""Symbolic kernel verifier: prove generated modules match their scheme.

A generated module (``repro.codegen.generator``) is trusted today because
executing it matches ``np.matmul`` on random inputs.  This pass removes
the "executing" part: it parses the module's AST and *abstractly
interprets* both cores -- the allocating ``_core`` and the arena-lowered
``_core_ws`` -- over symbolic block variables.  Every S/T chain becomes a
linear-combination vector over the input blocks, every ``_run`` /
``_run_ws`` call registers one bilinear product, and every C-block write
becomes a linear combination of products.  The recovered bilinear form

    C[ic] = sum_p  w[ic,p] * (s_p . A) * (t_p . B)

is then compared coefficient-by-coefficient (as the order-3 tensor
``sum_r U[:,r] x V[:,r] x W[:,r]``) against the catalog ``[U,V,W]``
scheme named by the module's ``_SCHEME`` metadata.  The tensor comparison
is invariant to scalar piping, CSE factoring and chain ordering, so every
strategy x cse combination is checked against the *same* ground truth --
without executing a single multiply.

Any statement outside the generator's emission contract
(``repro.codegen.strategies.EMISSION_CONTRACT``) is itself a finding:
the interpreter fails loud, never silently skips.

Finding codes: ``SYM-META`` (missing/stale scheme metadata), ``SYM-PARSE``
(statement outside the contract), ``SYM-BLOCK`` (malformed block slice),
``SYM-UNINIT`` (read of unwritten buffer), ``SYM-OPERANDS`` (product fed
from the wrong side), ``SYM-RANK`` (product count != scheme rank),
``SYM-CBLOCK`` (output block never written), ``SYM-TENSOR`` (recovered
bilinear form differs from the scheme).
"""

from __future__ import annotations

import ast
from typing import Any

import numpy as np

from repro.analyze.base import Finding

TENSOR_RTOL = 1e-8

_UFUNC_STORES = {"copyto", "add", "subtract", "negative", "multiply"}


class _Opaque:
    """Scalar bookkeeping value (shapes, dtypes, marks) -- never an array."""

    __slots__ = ()


_OPAQUE = _Opaque()


class _Input:
    """A function input matrix (``A`` or ``B``)."""

    __slots__ = ("space",)

    def __init__(self, space: str) -> None:
        self.space = space  # "A" or "B"


class _Val:
    """A linear combination: over input blocks ("A"/"B") or products ("M")."""

    __slots__ = ("kind", "vec")

    def __init__(self, kind: str, vec: Any) -> None:
        self.kind = kind      # "A" | "B" | "M"
        self.vec = vec        # np.ndarray for A/B; dict[int, float] for M

    def copy(self) -> "_Val":
        v = self.vec.copy() if isinstance(self.vec, np.ndarray) else dict(self.vec)
        return _Val(self.kind, v)


class _Cell:
    """A preallocated destination (``np.empty`` / ``ws.take``)."""

    __slots__ = ("val",)

    def __init__(self) -> None:
        self.val: _Val | None = None


class _CHolder:
    """The result matrix C: one slot per output block."""

    __slots__ = ("slots",)

    def __init__(self, n: int) -> None:
        self.slots: list[_Val | None] = [None] * n


class _CSlot:
    __slots__ = ("holder", "index")

    def __init__(self, holder: _CHolder, index: int) -> None:
        self.holder = holder
        self.index = index


class _Slab:
    """An R-row product slab (``_MM`` / ``_ST``)."""

    __slots__ = ("rows",)

    def __init__(self, n: int) -> None:
        self.rows: list[_Val | None] = [None] * n


class _SlabView:
    """``_ST[:RANK].reshape(...)`` -- a window onto a slab's head rows."""

    __slots__ = ("slab", "count")

    def __init__(self, slab: _Slab, count: int) -> None:
        self.slab = slab
        self.count = count


class _SlabSlot:
    __slots__ = ("slab", "index")

    def __init__(self, slab: _Slab, index: int) -> None:
        self.slab = slab
        self.index = index


class _StreamRows:
    """Result of ``runtime.streaming_combine``: one chain row per rank."""

    __slots__ = ("space", "rows")

    def __init__(self, space: str, rows: np.ndarray) -> None:
        self.space = space
        self.rows = rows      # (R, nbase) effective chain matrix


class _Abort(Exception):
    """Raised when interpretation cannot proceed for this function."""


def _call_name(node: ast.Call) -> str:
    f = node.func
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute):
        base = f.value
        if isinstance(base, ast.Name):
            return f"{base.id}.{f.attr}"
        return f"?.{f.attr}"
    return "?"


def _const_num(node: ast.expr) -> float | None:
    """Evaluate a numeric literal, allowing a leading unary minus."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_num(node.operand)
        return None if inner is None else -inner
    return None


class _Interp:
    """Abstract interpreter for one generated core function."""

    def __init__(self, fn: ast.FunctionDef, alg, consts: dict,
                 arrays: dict, where: str) -> None:
        self.fn = fn
        self.alg = alg
        self.consts = consts            # module ints: M, K, N, RANK
        self.arrays = arrays            # module _S_DEFS/_S_CHAINS/... literals
        self.where = where
        self.findings: list[Finding] = []
        self.env: dict[str, Any] = {}
        self.products: list[tuple[np.ndarray, np.ndarray]] = []
        self.result: _CHolder | None = None
        m, k, n = alg.m, alg.k, alg.n
        self.na, self.nb, self.nc = m * k, k * n, m * n

    # -- reporting ---------------------------------------------------------

    def _find(self, code: str, node: ast.AST | None, msg: str, **detail) -> None:
        line = getattr(node, "lineno", 0)
        self.findings.append(Finding(
            "symbolic", code, f"{self.where}:{line}", msg, dict(detail)))

    def _abort(self, code: str, node: ast.AST | None, msg: str) -> None:
        self._find(code, node, msg)
        raise _Abort(msg)

    # -- entry -------------------------------------------------------------

    def run(self) -> None:
        params = [a.arg for a in self.fn.args.args]
        self.env[params[0]] = _Input("A")
        self.env[params[1]] = _Input("B")
        for extra in params[2:]:
            self.env[extra] = _OPAQUE
        try:
            self._exec_body(self.fn.body)
        except _Abort:
            return
        self._check()

    def _check(self) -> None:
        if self.result is None:
            self._find("SYM-PARSE", self.fn,
                       "core never produced a result matrix")
            return
        if len(self.products) != self.alg.rank:
            self._find("SYM-RANK", self.fn,
                       f"core performs {len(self.products)} recursive products,"
                       f" scheme rank is {self.alg.rank}")
        slots = self.result.slots
        bad = [i for i, s in enumerate(slots) if s is None]
        if bad:
            self._find("SYM-CBLOCK", self.fn,
                       f"output block(s) {bad} never written")
            return
        T = np.zeros((self.na, self.nb, self.nc))
        for ic, comb in enumerate(slots):
            if comb.kind != "M":
                self._find("SYM-PARSE", self.fn,
                           f"output block {ic} is not a combination of products")
                return
            for p, w in comb.vec.items():
                a_vec, b_vec = self.products[p]
                T[:, :, ic] += w * np.outer(a_vec, b_vec)
        U, V, W = self.alg.U, self.alg.V, self.alg.W
        T_scheme = np.einsum("ir,jr,kr->ijk", U, V, W)
        scale = max(1.0, float(np.abs(T_scheme).max()))
        err = np.abs(T - T_scheme)
        worst = float(err.max())
        if worst > TENSOR_RTOL * scale:
            ia, ib, ic = np.unravel_index(int(err.argmax()), err.shape)
            self._find(
                "SYM-TENSOR", self.fn,
                "recovered bilinear form differs from the [U,V,W] scheme: "
                f"T[A{ia},B{ib},C{ic}] = {T[ia, ib, ic]:g}, "
                f"scheme says {T_scheme[ia, ib, ic]:g} "
                f"(max |delta| = {worst:g})",
                max_abs_error=worst)

    # -- statements --------------------------------------------------------

    def _exec_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._exec_assign(stmt)
        elif isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, ast.Call):
                self._exec_call_stmt(stmt.value)
            elif not isinstance(stmt.value, ast.Constant):
                self._abort("SYM-PARSE", stmt, "unexpected expression statement")
        elif isinstance(stmt, ast.Delete):
            for t in stmt.targets:
                if isinstance(t, ast.Name):
                    self.env.pop(t.id, None)
        elif isinstance(stmt, ast.Return):
            self._exec_return(stmt)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt)
        else:
            self._abort("SYM-PARSE", stmt,
                        f"statement form {type(stmt).__name__} is outside the"
                        " emission contract")

    def _exec_assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1:
            self._abort("SYM-PARSE", stmt, "chained assignment not in contract")
        target = stmt.targets[0]
        if isinstance(target, ast.Tuple):
            # p, q = A.shape  -- scalar bookkeeping
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    self.env[elt.id] = _OPAQUE
            return
        if isinstance(target, ast.Subscript):
            # C0[:] = expr  (pairwise into-view store)
            base = target.value
            if not isinstance(base, ast.Name):
                self._abort("SYM-PARSE", stmt, "unsupported subscript store")
            dest = self.env.get(base.id)
            val = self._eval_store_value(stmt.value, stmt)
            self._store(dest, val, stmt)
            return
        if not isinstance(target, ast.Name):
            self._abort("SYM-PARSE", stmt, "unsupported assignment target")
        name = target.id
        value = stmt.value
        # block view:  A3 = A[1*bp:2*bp, 1*bq:2*bq]
        if isinstance(value, ast.Subscript):
            obj = self._eval(value, stmt)
            self.env[name] = obj
            return
        if isinstance(value, ast.IfExp):
            # C = out if out is not None else np.empty((p, r), _dt)
            self.env[name] = self._eval_ifexp(value, stmt)
            return
        self.env[name] = self._eval(value, stmt)

    def _eval_ifexp(self, node: ast.IfExp, stmt: ast.stmt) -> Any:
        holder = _CHolder(self.nc)
        self.result = holder
        return holder

    def _eval_store_value(self, node: ast.expr, ctx: ast.AST) -> _Val:
        # C0[:] = 0.0  zeroes an output block that no product reaches
        if isinstance(node, ast.Constant) and node.value == 0:
            return _Val("M", {})
        return self._as_val(self._eval(node, ctx), ctx)

    def _exec_return(self, stmt: ast.Return) -> None:
        v = stmt.value
        if isinstance(v, ast.Name):
            obj = self.env.get(v.id)
            if isinstance(obj, _CHolder):
                self.result = obj
                return
            self._abort("SYM-PARSE", stmt, f"returning non-result {v.id!r}")
        if isinstance(v, ast.Call) and _call_name(v) == "runtime.streaming_output":
            self._streaming_output(v, stmt)
            return
        self._abort("SYM-PARSE", stmt, "unsupported return value")

    def _exec_for(self, stmt: ast.For) -> None:
        # for _i in range(RANK): ...   (streaming arena product loop)
        ok = (isinstance(stmt.target, ast.Name)
              and isinstance(stmt.iter, ast.Call)
              and _call_name(stmt.iter) == "range"
              and len(stmt.iter.args) == 1)
        if not ok:
            self._abort("SYM-PARSE", stmt, "loop form outside the contract")
        count = self._eval_int(stmt.iter.args[0], stmt)
        var = stmt.target.id
        for i in range(count):
            self.env[var] = i
            self._exec_body(stmt.body)
        self.env.pop(var, None)

    # -- calls as statements ----------------------------------------------

    def _exec_call_stmt(self, call: ast.Call) -> None:
        name = _call_name(call)
        if name.startswith("np.") and name.split(".", 1)[1] in _UFUNC_STORES:
            self._exec_ufunc(name.split(".", 1)[1], call)
            return
        if name == "runtime.axpy":
            dest = self._dest(call.args[0], call)
            cur = self._load(call.args[0], call)
            src = self._as_val(self._eval(call.args[1], call), call)
            coeff = _const_num(call.args[2])
            if coeff is None:
                self._abort("SYM-PARSE", call, "axpy coefficient not literal")
            self._store(dest, self._lin(cur, src, coeff, call), call)
            return
        if name == "_run_ws":
            self._run_product(call, arena=True)
            return
        if name == "runtime.streaming_output_stacked":
            self._streaming_output_stacked(call)
            return
        if name in ("ws.release", "ws.reset"):
            return
        self._abort("SYM-PARSE", call,
                    f"call {name!r} is outside the emission contract")

    def _exec_ufunc(self, op: str, call: ast.Call) -> None:
        out = None
        for kw in call.keywords:
            if kw.arg == "out":
                out = kw.value
        if op == "copyto":
            dest_node, src = call.args[0], call.args[1]
            val = self._as_val(self._eval(src, call), call).copy()
        elif op == "negative":
            dest_node = out
            val = self._scale(self._as_val(self._eval(call.args[0], call), call),
                              -1.0)
        elif op == "multiply":
            dest_node = out
            coeff = _const_num(call.args[1])
            if coeff is None:
                self._abort("SYM-PARSE", call, "multiply coefficient not literal")
            val = self._scale(self._as_val(self._eval(call.args[0], call), call),
                              coeff)
        elif op in ("add", "subtract"):
            dest_node = out
            a = self._as_val(self._eval(call.args[0], call), call)
            b = self._as_val(self._eval(call.args[1], call), call)
            val = self._lin(a, b, 1.0 if op == "add" else -1.0, call)
        else:  # pragma: no cover - _UFUNC_STORES is closed
            self._abort("SYM-PARSE", call, f"ufunc {op!r} not in contract")
        if dest_node is None:
            self._abort("SYM-PARSE", call, f"np.{op} without destination")
        dest = self._dest(dest_node, call)
        self._store(dest, val, call)

    # -- loads / stores ----------------------------------------------------

    def _dest(self, node: ast.expr, ctx: ast.AST) -> Any:
        """Resolve a store destination (cell, C slot, or slab slot)."""
        if isinstance(node, ast.Name):
            obj = self.env.get(node.id)
            if obj is None:
                self._abort("SYM-UNINIT", ctx,
                            f"store into undefined name {node.id!r}")
            return obj
        if isinstance(node, ast.Subscript):
            return self._eval(node, ctx)
        self._abort("SYM-PARSE", ctx, "unsupported store destination")

    def _store(self, dest: Any, val: _Val, ctx: ast.AST) -> None:
        if isinstance(dest, _Cell):
            dest.val = val
        elif isinstance(dest, _CSlot):
            dest.holder.slots[dest.index] = val
        elif isinstance(dest, _SlabSlot):
            dest.slab.rows[dest.index] = val
        else:
            self._abort("SYM-PARSE", ctx,
                        f"store into non-buffer {type(dest).__name__}")

    def _load(self, node: ast.expr, ctx: ast.AST) -> _Val:
        return self._as_val(self._eval(node, ctx), ctx)

    def _as_val(self, obj: Any, ctx: ast.AST) -> _Val:
        if isinstance(obj, _Val):
            return obj
        if isinstance(obj, _Cell):
            if obj.val is None:
                self._abort("SYM-UNINIT", ctx, "read of unwritten buffer")
            return obj.val
        if isinstance(obj, _CSlot):
            v = obj.holder.slots[obj.index]
            if v is None:
                self._abort("SYM-UNINIT", ctx,
                            f"read of unwritten output block {obj.index}")
            return v
        if isinstance(obj, _SlabSlot):
            v = obj.slab.rows[obj.index]
            if v is None:
                self._abort("SYM-UNINIT", ctx, "read of unwritten slab row")
            return v
        self._abort("SYM-PARSE", ctx,
                    f"expected an array value, got {type(obj).__name__}")

    # -- linear algebra over abstract values -------------------------------

    def _unit(self, space: str, index: int) -> _Val:
        n = self.na if space == "A" else self.nb
        v = np.zeros(n)
        v[index] = 1.0
        return _Val(space, v)

    def _scale(self, v: _Val, c: float) -> _Val:
        if isinstance(v.vec, np.ndarray):
            return _Val(v.kind, c * v.vec)
        return _Val(v.kind, {p: c * w for p, w in v.vec.items()})

    def _lin(self, a: _Val, b: _Val, c: float, ctx: ast.AST) -> _Val:
        """a + c * b"""
        if a.kind != b.kind:
            self._abort("SYM-OPERANDS", ctx,
                        f"mixing {a.kind}-side and {b.kind}-side values in"
                        " one chain")
        if isinstance(a.vec, np.ndarray):
            return _Val(a.kind, a.vec + c * b.vec)
        out = dict(a.vec)
        for p, w in b.vec.items():
            out[p] = out.get(p, 0.0) + c * w
        return _Val(a.kind, out)

    # -- expressions -------------------------------------------------------

    def _eval_int(self, node: ast.expr, ctx: ast.AST) -> int:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value
        if isinstance(node, ast.Name):
            v = self.consts.get(node.id, self.env.get(node.id))
            if isinstance(v, int):
                return v
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            return (self._eval_int(node.left, ctx)
                    + self._eval_int(node.right, ctx))
        self._abort("SYM-PARSE", ctx, "expected a static integer expression")

    def _eval(self, node: ast.expr, ctx: ast.AST) -> Any:
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            if node.id in self.consts:
                return self.consts[node.id]
            if node.id in self.arrays:
                return self.arrays[node.id]
            self._abort("SYM-UNINIT", ctx, f"read of undefined name {node.id!r}")
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Attribute):
            base = self._eval(node.value, ctx)
            if node.attr in ("shape", "dtype", "itemsize"):
                return _OPAQUE
            self._abort("SYM-PARSE", ctx, f"attribute .{node.attr} not in contract")
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            inner = self._eval(node.operand, ctx)
            if isinstance(inner, (int, float)):
                return -inner
            return self._scale(self._as_val(inner, ctx), -1.0)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, ctx)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, ctx)
        if isinstance(node, ast.Call):
            return self._eval_call(node, ctx)
        if isinstance(node, ast.List):
            return [self._eval(e, ctx) for e in node.elts]
        if isinstance(node, ast.Tuple):
            return tuple(self._eval(e, ctx) for e in node.elts)
        self._abort("SYM-PARSE", ctx,
                    f"expression form {type(node).__name__} outside contract")

    def _eval_binop(self, node: ast.BinOp, ctx: ast.AST) -> Any:
        left = self._eval(node.left, ctx)
        right = self._eval(node.right, ctx)
        scalars = (int, float, _Opaque)
        if isinstance(left, scalars) and isinstance(right, scalars):
            if isinstance(left, _Opaque) or isinstance(right, _Opaque):
                return _OPAQUE
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.FloorDiv):
                return left // right
            return _OPAQUE
        if isinstance(node.op, ast.Mult):
            if isinstance(left, (int, float)):
                return self._scale(self._as_val(right, ctx), float(left))
            if isinstance(right, (int, float)):
                return self._scale(self._as_val(left, ctx), float(right))
        if isinstance(node.op, (ast.Add, ast.Sub)):
            a = self._as_val(left, ctx)
            b = self._as_val(right, ctx)
            return self._lin(a, b, 1.0 if isinstance(node.op, ast.Add) else -1.0,
                             ctx)
        self._abort("SYM-PARSE", ctx, "arithmetic form outside contract")

    def _eval_subscript(self, node: ast.Subscript, ctx: ast.AST) -> Any:
        base = self._eval(node.value, ctx)
        if isinstance(base, _Input):
            return self._block_view(base, node, ctx)
        if isinstance(base, _CHolder):
            idx = self._c_block_index(node, ctx)
            return _CSlot(base, idx)
        if isinstance(base, _StreamRows):
            i = self._eval_int(node.slice, ctx)
            return _Val(base.space, base.rows[i].copy())
        if isinstance(base, (_Slab, _SlabView)):
            slab = base.slab if isinstance(base, _SlabView) else base
            if isinstance(node.slice, ast.Slice):
                # _ST[:RANK]
                count = self._eval_int(node.slice.upper, ctx)
                return _SlabView(slab, count)
            i = self._eval_int(node.slice, ctx)
            return _SlabSlot(slab, i)
        if isinstance(base, _Opaque):
            return _OPAQUE
        self._abort("SYM-PARSE", ctx, "subscript of unsupported value")

    def _slice_block(self, sl: ast.expr, ctx: ast.AST) -> tuple[int, str]:
        """Parse ``rr*bvar:(rr+1)*bvar`` -> (rr, bvar)."""
        if not isinstance(sl, ast.Slice) or sl.step is not None:
            self._abort("SYM-BLOCK", ctx, "non-block slice on input matrix")

        def side(expr: ast.expr) -> tuple[int, str]:
            if (isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Mult)
                    and isinstance(expr.left, ast.Constant)
                    and isinstance(expr.right, ast.Name)):
                return int(expr.left.value), expr.right.id
            self._abort("SYM-BLOCK", ctx, "block slice bound is not c*bvar")

        lo, lo_var = side(sl.lower)
        hi, hi_var = side(sl.upper)
        if hi != lo + 1 or hi_var != lo_var:
            self._abort("SYM-BLOCK", ctx,
                        f"block slice spans {lo}*{lo_var}:{hi}*{hi_var},"
                        " expected one block")
        return lo, lo_var

    def _block_view(self, inp: _Input, node: ast.Subscript,
                    ctx: ast.AST) -> _Val:
        sl = node.slice
        if not (isinstance(sl, ast.Tuple) and len(sl.elts) == 2):
            self._abort("SYM-BLOCK", ctx, "input matrix sliced non-2d")
        rr, rvar = self._slice_block(sl.elts[0], ctx)
        cc, cvar = self._slice_block(sl.elts[1], ctx)
        m, k, n = self.alg.m, self.alg.k, self.alg.n
        if inp.space == "A":
            want, rows, cols = ("bp", "bq"), m, k
        else:
            want, rows, cols = ("bq", "br"), k, n
        if (rvar, cvar) != want or not (0 <= rr < rows and 0 <= cc < cols):
            self._abort("SYM-BLOCK", ctx,
                        f"{inp.space} block [{rr}*{rvar}, {cc}*{cvar}] is out"
                        f" of the {rows}x{cols} grid")
        return self._unit(inp.space, rr * cols + cc)

    def _c_block_index(self, node: ast.Subscript, ctx: ast.AST) -> int:
        sl = node.slice
        if isinstance(sl, ast.Slice):       # C0[:] = ... handled via _CSlot
            self._abort("SYM-PARSE", ctx, "bare slice store on result matrix")
        if not (isinstance(sl, ast.Tuple) and len(sl.elts) == 2):
            self._abort("SYM-BLOCK", ctx, "result matrix sliced non-2d")
        rr, rvar = self._slice_block(sl.elts[0], ctx)
        cc, cvar = self._slice_block(sl.elts[1], ctx)
        m, n = self.alg.m, self.alg.n
        if (rvar, cvar) != ("bp", "br") or not (0 <= rr < m and 0 <= cc < n):
            self._abort("SYM-BLOCK", ctx,
                        f"C block [{rr}*{rvar}, {cc}*{cvar}] is out of the"
                        f" {m}x{n} grid")
        return rr * n + cc

    # -- calls as expressions ----------------------------------------------

    def _eval_call(self, node: ast.Call, ctx: ast.AST) -> Any:
        name = _call_name(node)
        if name.endswith(".copy") and not name.startswith("np."):
            recv = self._eval(node.func.value, ctx)
            return self._as_val(recv, ctx).copy()
        if name.endswith(".reshape"):
            recv = self._eval(node.func.value, ctx)
            if isinstance(recv, (_Slab, _SlabView)):
                return recv
            self._abort("SYM-PARSE", ctx, "reshape of non-slab value")
        if name in ("np.result_type", "ws.mark", "ws.take_scratch"):
            return _OPAQUE
        if name == "np.empty":
            return self._alloc(node, ctx)
        if name == "ws.take":
            return self._alloc(node, ctx)
        if name in ("_run", "_run_ws"):
            return self._run_product(node, arena=(name == "_run_ws"))
        if name == "runtime.streaming_combine":
            return self._streaming_combine(node, ctx)
        if name == "runtime.streaming_output":
            self._abort("SYM-PARSE", ctx,
                        "streaming_output outside return position")
        self._abort("SYM-PARSE", ctx,
                    f"call {name!r} is outside the emission contract")

    def _alloc(self, node: ast.Call, ctx: ast.AST) -> Any:
        shape = node.args[0]
        if not isinstance(shape, ast.Tuple):
            self._abort("SYM-PARSE", ctx, "allocation with non-tuple shape")
        dims = shape.elts
        if len(dims) == 3:
            # _MM = ws.take((RANK, bp, br), _dt)  -- the product slab
            return _Slab(self._eval_int(dims[0], ctx))
        if len(dims) != 2:
            self._abort("SYM-PARSE", ctx, "allocation shape outside contract")
        d0, d1 = dims
        if (isinstance(d0, ast.Name) and d0.id == "p"
                and isinstance(d1, ast.Name) and d1.id == "r"):
            # C = np.empty((p, r), _dt)  -- the result matrix
            holder = _CHolder(self.nc)
            self.result = holder
            return holder
        if isinstance(d0, ast.Name) and d0.id in ("bp", "bq", "br"):
            # (bp, bq) / (bq, br) / (bp, br)  -- one chain destination
            return _Cell()
        # (RANK + ncd, bp * br)  -- the streaming product/defs stack
        return _Slab(self._eval_int(d0, ctx))

    def _run_product(self, node: ast.Call, arena: bool) -> _Val:
        args = node.args
        a = self._as_val(self._eval(args[0], node), node)
        b = self._as_val(self._eval(args[1], node), node)
        if a.kind != "A" or b.kind != "B":
            self._find("SYM-OPERANDS", node,
                       f"recursive product fed ({a.kind}-side, {b.kind}-side)"
                       " operands; expected (A-side, B-side)")
            raise _Abort("operand sides swapped")
        idx = len(self.products)
        self.products.append((a.vec.copy(), b.vec.copy()))
        val = _Val("M", {idx: 1.0})
        if arena:
            dest = self._dest(args[4], node)
            self._store(dest, val, node)
        return val

    # -- streaming runtime models ------------------------------------------

    def _effective_rows(self, chains: np.ndarray, defs, nbase: int,
                        ctx: ast.AST) -> np.ndarray:
        if chains.shape[1] == nbase:
            return chains.copy()
        ndefs = chains.shape[1] - nbase
        if defs is None or np.asarray(defs).shape[0] != ndefs:
            self._abort("SYM-PARSE", ctx,
                        "chain matrix width disagrees with defs matrix")
        return chains[:, :nbase] + chains[:, nbase:] @ np.asarray(defs)

    def _streaming_combine(self, node: ast.Call, ctx: ast.AST) -> _StreamRows:
        inp = self._eval(node.args[0], ctx)
        if not isinstance(inp, _Input):
            self._abort("SYM-PARSE", ctx, "streaming_combine of non-input")
        defs = self._eval(node.args[3], ctx)
        chains = self._eval(node.args[4], ctx)
        nbase = self.na if inp.space == "A" else self.nb
        rows = self._effective_rows(np.asarray(chains), defs, nbase, ctx)
        return _StreamRows(inp.space, rows)

    def _streaming_c_rows(self, defs, chains, ctx: ast.AST) -> np.ndarray:
        R = self.alg.rank
        return self._effective_rows(np.asarray(chains), defs, R, ctx)

    def _combine_products(self, rows: np.ndarray,
                          prods: list[_Val], ctx: ast.AST) -> list[_Val]:
        out = []
        for i in range(rows.shape[0]):
            comb: dict[int, float] = {}
            for j, mv in enumerate(prods):
                c = rows[i, j]
                if c == 0.0:
                    continue
                for p, w in mv.vec.items():
                    comb[p] = comb.get(p, 0.0) + c * w
            out.append(_Val("M", comb))
        return out

    def _streaming_output(self, node: ast.Call, ctx: ast.AST) -> None:
        prods = [self._as_val(v, ctx) for v in self._eval(node.args[0], ctx)]
        defs = self._eval(node.args[1], ctx)
        chains = self._eval(node.args[2], ctx)
        rows = self._streaming_c_rows(defs, chains, ctx)
        holder = _CHolder(self.nc)
        for i, v in enumerate(self._combine_products(rows, prods, ctx)):
            holder.slots[i] = v
        self.result = holder

    def _streaming_output_stacked(self, node: ast.Call) -> None:
        st = self._eval(node.args[0], node)
        if isinstance(st, _SlabView):
            st = st.slab
        if not isinstance(st, _Slab):
            self._abort("SYM-PARSE", node, "stacked output of non-slab")
        nprod = self._eval_int(node.args[1], node)
        prods = []
        for i in range(nprod):
            v = st.rows[i]
            if v is None:
                self._abort("SYM-UNINIT", node,
                            f"product row {i} never computed")
            prods.append(v)
        defs = self._eval(node.args[2], node)
        chains = self._eval(node.args[3], node)
        rows = self._streaming_c_rows(defs, chains, node)
        holder = self._eval(node.args[8], node)
        if not isinstance(holder, _CHolder):
            self._abort("SYM-PARSE", node, "stacked output into non-result")
        for i, v in enumerate(self._combine_products(rows, prods, node)):
            holder.slots[i] = v
        self.result = holder


# -- module-level driver ----------------------------------------------------


def _module_info(tree: ast.Module, where: str,
                 findings: list[Finding]) -> tuple[dict, dict, dict | None]:
    """Extract module consts (M/K/N/RANK), array literals and _SCHEME."""
    consts: dict[str, int] = {}
    arrays: dict[str, Any] = {}
    scheme: dict | None = None
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        t = stmt.targets[0]
        if isinstance(t, ast.Tuple):
            names = [e.id for e in t.elts if isinstance(e, ast.Name)]
            if names == ["M", "K", "N", "RANK"]:
                try:
                    vals = ast.literal_eval(stmt.value)
                    consts.update(dict(zip(names, vals)))
                except (ValueError, SyntaxError):
                    findings.append(Finding(
                        "symbolic", "SYM-META", where,
                        "M, K, N, RANK line is not a literal tuple"))
            continue
        if not isinstance(t, ast.Name):
            continue
        if t.id == "_SCHEME":
            try:
                scheme = ast.literal_eval(stmt.value)
            except (ValueError, SyntaxError):
                findings.append(Finding(
                    "symbolic", "SYM-META", where,
                    "_SCHEME is not a literal dict"))
        elif t.id.startswith(("_S_", "_T_", "_C_")):
            v = stmt.value
            if isinstance(v, ast.Constant) and v.value is None:
                arrays[t.id] = None
            elif isinstance(v, ast.Call) and _call_name(v) == "np.array":
                try:
                    arrays[t.id] = np.asarray(ast.literal_eval(v.args[0]))
                except (ValueError, SyntaxError):
                    findings.append(Finding(
                        "symbolic", "SYM-META", where,
                        f"{t.id} is not a literal array"))
    return consts, arrays, scheme


def verify_source(source: str, algorithm=None,
                  where: str = "<generated>") -> list[Finding]:
    """Verify one generated module's source against its ``[U,V,W]`` scheme.

    ``algorithm`` defaults to the catalog entry named by the module's
    ``_SCHEME`` metadata.  Returns the findings (empty == proven).
    """
    findings: list[Finding] = []
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding("symbolic", "SYM-PARSE", where,
                        f"module does not parse: {exc}")]
    consts, arrays, scheme = _module_info(tree, where, findings)
    if scheme is None:
        findings.append(Finding(
            "symbolic", "SYM-META", where,
            "module carries no _SCHEME metadata (regenerate with the"
            " current repro.codegen.generator)"))
    if algorithm is None:
        if scheme is None:
            return findings
        from repro.algorithms.catalog import get_algorithm

        try:
            algorithm = get_algorithm(scheme["algorithm"])
        except (KeyError, ValueError) as exc:
            findings.append(Finding(
                "symbolic", "SYM-META", where,
                f"_SCHEME names unknown algorithm: {exc}"))
            return findings
    if scheme is not None:
        mkn = (algorithm.m, algorithm.k, algorithm.n)
        if tuple(scheme.get("base_case", ())) != mkn or \
                scheme.get("rank") != algorithm.rank:
            findings.append(Finding(
                "symbolic", "SYM-META", where,
                f"_SCHEME says base {scheme.get('base_case')} rank"
                f" {scheme.get('rank')}, catalog scheme is {mkn} rank"
                f" {algorithm.rank}"))
        from repro.codegen.generator import fingerprint

        expect = fingerprint(algorithm, scheme.get("strategy", "?"),
                             bool(scheme.get("cse")),
                             bool(scheme.get("pipe_scalars", True)))
        if scheme.get("fingerprint") != expect:
            findings.append(Finding(
                "symbolic", "SYM-META", where,
                "_SCHEME fingerprint is stale: module was generated from a"
                " scheme that no longer matches the catalog entry"))
    if (consts.get("M"), consts.get("K"), consts.get("N")) != \
            (algorithm.m, algorithm.k, algorithm.n) or \
            consts.get("RANK") != algorithm.rank:
        findings.append(Finding(
            "symbolic", "SYM-META", where,
            f"module constants M,K,N,RANK = {consts} disagree with scheme"))
        return findings
    cores = {fn.name: fn for fn in tree.body
             if isinstance(fn, ast.FunctionDef)
             and fn.name in ("_core", "_core_ws")}
    for name in ("_core", "_core_ws"):
        fn = cores.get(name)
        if fn is None:
            findings.append(Finding(
                "symbolic", "SYM-PARSE", where, f"module has no {name}"))
            continue
        interp = _Interp(fn, algorithm, consts, arrays, f"{where}.{name}")
        interp.run()
        findings.extend(interp.findings)
    return findings


def verify_algorithm(name_or_alg, strategy: str, cse: bool,
                     pipe_scalars: bool = True) -> list[Finding]:
    """Generate and symbolically verify one catalog entry configuration."""
    from repro.algorithms.catalog import get_algorithm
    from repro.codegen.generator import generate_source

    alg = (get_algorithm(name_or_alg) if isinstance(name_or_alg, str)
           else name_or_alg)
    where = f"{alg.name}[{strategy},cse={cse}]"
    src = generate_source(alg, strategy, cse, pipe_scalars)
    return verify_source(src, alg, where=where)


def verify_catalog(names=None, strategies=None,
                   cse_options=(False, True)) -> tuple[int, list[Finding]]:
    """Sweep every catalog entry x strategy x cse; returns (checked, findings)."""
    from repro.algorithms.catalog import list_algorithms
    from repro.codegen.strategies import STRATEGIES

    if names is None:
        names = list_algorithms(include_apa=True)
    if strategies is None:
        strategies = STRATEGIES
    findings: list[Finding] = []
    checked = 0
    for name in names:
        for strategy in strategies:
            for cse in cse_options:
                findings.extend(verify_algorithm(name, strategy, cse))
                checked += 1
    return checked, findings
