"""Arena-discipline checker for generated kernels and the source tree.

The workspace protocol (``repro.core.workspace``) is a convention: every
``ws.take`` happens inside a ``mark``/``release`` pair, no view taken in
a scope outlives that scope's ``release``, and the takes a generated
``_core_ws`` performs fit inside the ``codegen_footprint`` budget that
sizes the arena.  PRs 3-8 enforce this dynamically (overflow warnings,
tracking allocators); this pass enforces it *statically* on the AST:

- ``ARENA-UNRELEASED``   -- a mark is never released before return;
- ``ARENA-RELEASE-ORDER``-- releases happen out of LIFO order;
- ``ARENA-ORPHAN-RELEASE`` -- a release names no live mark;
- ``ARENA-UNSCOPED-TAKE`` -- a take outside any mark scope;
- ``ARENA-ESCAPE``       -- an arena view (or a view derived from one,
  e.g. the ``_MM`` slab row a recursive call writes into) is read after
  its scope was released, or returned to the caller;
- ``ARENA-FOOTPRINT``    -- the statically summed takes of one recursion
  level exceed ``codegen_footprint`` for that configuration.

The source-tree half checks every hand-written function for balanced
``x = <arena>.mark()`` / ``<arena>.release(x)`` pairs.
"""

from __future__ import annotations

import ast
from pathlib import Path

import numpy as np

from repro.analyze.base import Finding

_ALIGNMENT = 64


def _align_up(n: int) -> int:
    return (n + _ALIGNMENT - 1) & ~(_ALIGNMENT - 1)


def _call_name(node: ast.Call) -> str:
    f = node.func
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name):
        return f"{f.value.id}.{f.attr}"
    return "?"


def _loads(node: ast.AST) -> set[str]:
    """Every Name read inside ``node``."""
    return {n.id for n in ast.walk(node)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)}


class _ScopeChecker:
    """Walk one ``_core_ws`` body tracking the mark stack and view scopes."""

    def __init__(self, where: str, sim_env: dict | None = None) -> None:
        self.where = where
        self.findings: list[Finding] = []
        self.stack: list[str] = []          # live mark variable names
        self.tags: dict[str, int] = {}      # arena view name -> depth at take
        self.dead: set[str] = set()         # views whose scope was released
        # footprint simulation (optional): bump pointer in bytes
        self.sim = sim_env
        self.offset = 0
        self.peak = 0
        self.saved: list[int] = []          # offset at each mark

    def _find(self, code: str, node: ast.AST, msg: str) -> None:
        line = getattr(node, "lineno", 0)
        self.findings.append(Finding(
            "arena", code, f"{self.where}:{line}", msg))

    # -- bump-pointer simulation ------------------------------------------

    def _sim_take(self, node: ast.Call, scratch: bool) -> None:
        if self.sim is None:
            return
        try:
            arg = ast.Expression(node.args[0])
            ast.fix_missing_locations(arg)
            v = eval(compile(arg, "<take>", "eval"),  # noqa: S307 - our own AST
                     {"__builtins__": {}}, dict(self.sim))
        except Exception:
            return
        if scratch:
            nbytes = int(v)
        else:
            dt = np.dtype(np.float64)
            nbytes = int(np.prod(v)) * dt.itemsize
        self.offset += _align_up(nbytes)
        self.peak = max(self.peak, self.offset)

    # -- statement walk ----------------------------------------------------

    def check_reads(self, node: ast.AST) -> None:
        for name in _loads(node) & self.dead:
            self._find("ARENA-ESCAPE", node,
                       f"arena view {name!r} is read after its mark scope"
                       " was released")

    def visit_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self.visit(stmt)

    def visit(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            name = _call_name(stmt.value)
            target = stmt.targets[0]
            tname = target.id if isinstance(target, ast.Name) else None
            if name == "ws.mark":
                if tname is None:
                    self._find("ARENA-ORPHAN-RELEASE", stmt,
                               "mark not bound to a name")
                    return
                self.stack.append(tname)
                self.saved.append(self.offset)
                return
            if name in ("ws.take", "ws.take_scratch"):
                self.check_reads(stmt.value)
                if not self.stack:
                    self._find("ARENA-UNSCOPED-TAKE", stmt,
                               "take outside any mark/release scope")
                if tname is not None:
                    self.tags[tname] = len(self.stack)
                self._sim_take(stmt.value, name.endswith("take_scratch"))
                return
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call) \
                and _call_name(stmt.value) == "ws.release":
            arg = stmt.value.args[0]
            var = arg.id if isinstance(arg, ast.Name) else None
            if var is None or var not in self.stack:
                self._find("ARENA-ORPHAN-RELEASE", stmt,
                           f"release of {var!r} which is not a live mark")
                return
            if self.stack[-1] != var:
                self._find("ARENA-RELEASE-ORDER", stmt,
                           f"release of {var!r} is not LIFO (top of stack is"
                           f" {self.stack[-1]!r})")
            # pop down to and including var
            while self.stack:
                top = self.stack.pop()
                off = self.saved.pop()
                self.offset = off
                if top == var:
                    break
            depth = len(self.stack)
            for vname, tag in list(self.tags.items()):
                if tag > depth:
                    self.dead.add(vname)
                    del self.tags[vname]
            return
        if isinstance(stmt, ast.For):
            self.check_reads(stmt.iter)
            self.visit_body(stmt.body)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.check_reads(stmt.value)
                for name in _loads(stmt.value) & set(self.tags):
                    self._find("ARENA-ESCAPE", stmt,
                               f"arena view {name!r} escapes via return")
            if self.stack:
                self._find("ARENA-UNRELEASED", stmt,
                           f"mark(s) {self.stack!r} never released before"
                           " return")
            return
        # generic statement: escape check on reads, alias propagation
        self.check_reads(stmt)
        if isinstance(stmt, ast.Assign):
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                tag = self._alias_tag(stmt.value)
                if tag is not None:
                    self.tags[target.id] = tag
                else:
                    self.tags.pop(target.id, None)

    def _alias_tag(self, value: ast.expr) -> int | None:
        """Scope tag a fresh binding inherits from the arena views it views."""
        if isinstance(value, ast.Call):
            name = _call_name(value)
            if name == "_run_ws" and len(value.args) >= 5:
                # the result aliases the out slab row (5th positional arg)
                refs = _loads(value.args[4]) & set(self.tags)
                return max((self.tags[r] for r in refs), default=None)
            if name == "runtime.streaming_combine":
                has_ws = any(kw.arg == "workspace" for kw in value.keywords)
                return len(self.stack) if has_ws else None
        refs = _loads(value) & set(self.tags)
        if refs:
            return max(self.tags[r] for r in refs)
        return None


def check_core_ws(source: str, algorithm=None, strategy: str | None = None,
                  cse: bool | None = None,
                  where: str = "<generated>") -> list[Finding]:
    """Check one generated module's ``_core_ws`` for arena discipline."""
    findings: list[Finding] = []
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding("arena", "ARENA-PARSE", where,
                        f"module does not parse: {exc}")]
    consts: dict[str, int] = {}
    scheme = None
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            t = stmt.targets[0]
            if isinstance(t, ast.Tuple):
                names = [e.id for e in t.elts if isinstance(e, ast.Name)]
                if names == ["M", "K", "N", "RANK"]:
                    try:
                        consts.update(dict(zip(names,
                                               ast.literal_eval(stmt.value))))
                    except (ValueError, SyntaxError):
                        pass
            elif isinstance(t, ast.Name) and t.id == "_SCHEME":
                try:
                    scheme = ast.literal_eval(stmt.value)
                except (ValueError, SyntaxError):
                    pass
    fn = next((f for f in tree.body
               if isinstance(f, ast.FunctionDef) and f.name == "_core_ws"),
              None)
    if fn is None:
        return [Finding("arena", "ARENA-PARSE", where,
                        "module has no _core_ws")]

    sim_env = None
    budget = None
    if consts and {"M", "K", "N", "RANK"} <= set(consts):
        m, k, n = consts["M"], consts["K"], consts["N"]
        blk = 8
        p, q, r = m * blk, k * blk, n * blk
        dt = np.dtype(np.float64)
        sim_env = {"M": m, "K": k, "N": n, "RANK": consts["RANK"],
                   "p": p, "q": q, "r": r,
                   "bp": blk, "bq": blk, "br": blk,
                   "_dt": dt, "_dta": dt, "_dtb": dt, "max": max}
        if algorithm is None and scheme is not None:
            from repro.algorithms.catalog import get_algorithm

            try:
                algorithm = get_algorithm(scheme["algorithm"])
                strategy = scheme.get("strategy")
                cse = scheme.get("cse")
            except (KeyError, ValueError):
                algorithm = None
        if algorithm is not None and strategy is not None and cse is not None:
            from repro.core.workspace import codegen_footprint

            budget = codegen_footprint(algorithm, strategy, bool(cse),
                                       (p, q, r), dt, steps=1)

    checker = _ScopeChecker(f"{where}._core_ws", sim_env)
    checker.visit_body(fn.body)
    findings.extend(checker.findings)
    if budget is not None and checker.peak > budget:
        findings.append(Finding(
            "arena", "ARENA-FOOTPRINT", f"{where}._core_ws",
            f"statically summed takes peak at {checker.peak} bytes for shape"
            f" {sim_env['p']}x{sim_env['q']}x{sim_env['r']}, exceeding the"
            f" codegen_footprint budget of {budget} bytes",
            {"peak": checker.peak, "budget": int(budget)}))
    return findings


def check_catalog_arena(names=None, strategies=None,
                        cse_options=(False, True)) -> tuple[int, list[Finding]]:
    """Arena-check the generated ``_core_ws`` of every catalog config."""
    from repro.algorithms.catalog import get_algorithm, list_algorithms
    from repro.codegen.generator import generate_source
    from repro.codegen.strategies import STRATEGIES

    if names is None:
        names = list_algorithms(include_apa=True)
    if strategies is None:
        strategies = STRATEGIES
    findings: list[Finding] = []
    checked = 0
    for name in names:
        alg = get_algorithm(name)
        for strategy in strategies:
            for cse in cse_options:
                src = generate_source(alg, strategy, cse)
                findings.extend(check_core_ws(
                    src, alg, strategy, cse,
                    where=f"{name}[{strategy},cse={cse}]"))
                checked += 1
    return checked, findings


# -- hand-written tree: balanced mark/release per function ------------------


def _src_root() -> Path:
    return Path(__file__).resolve().parent.parent


def check_function_marks(fn: ast.FunctionDef, where: str) -> list[Finding]:
    """Every ``x = <obj>.mark()`` must see ``<obj>.release(x)`` in the same
    function (``try/finally`` bodies included -- this is a reachability
    check on names, not paths)."""
    findings = []
    marks: dict[str, int] = {}
    released: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            f = node.value.func
            if isinstance(f, ast.Attribute) and f.attr == "mark" \
                    and not node.value.args:
                t = node.targets[0]
                if isinstance(t, ast.Name):
                    marks[t.id] = node.lineno
        if isinstance(node, ast.Call):
            f = node.func
            if isinstance(f, ast.Attribute) and f.attr == "release":
                for a in node.args:
                    if isinstance(a, ast.Name):
                        released.add(a.id)
    for name, line in marks.items():
        if name not in released:
            findings.append(Finding(
                "arena", "ARENA-UNRELEASED", f"{where}:{line}",
                f"mark {name!r} in {fn.name}() has no matching release"))
    return findings


def check_tree(root: Path | None = None) -> tuple[int, list[Finding]]:
    """Mark/release balance across the hand-written source tree."""
    root = root or _src_root()
    findings: list[Finding] = []
    checked = 0
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root.parent)
        try:
            tree = ast.parse(path.read_text())
        except SyntaxError as exc:
            findings.append(Finding("arena", "ARENA-PARSE", str(rel),
                                    f"does not parse: {exc}"))
            continue
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef):
                checked += 1
                findings.extend(check_function_marks(node, str(rel)))
    return checked, findings
