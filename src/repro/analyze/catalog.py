"""Catalog validator: every shipped scheme is well-formed and accurate.

The catalog is the ground truth the whole stack (and the symbolic
verifier) measures against, so it gets its own static pass: shape/rank
consistency of ``[U,V,W]``, float64 dtype, finiteness, and residual
verification -- exact entries must satisfy ``residual <= EXACT_TOL``,
APA entries must reproduce the residual recorded in their data file
(drift means the file was edited without re-deriving the metadata).

Codes: ``CAT-SHAPE``, ``CAT-DTYPE``, ``CAT-NONFINITE``, ``CAT-RESIDUAL``,
``CAT-FLAG`` (apa/exact metadata contradicts the measured residual),
``CAT-LOAD`` (entry fails to load at all), ``CAT-DATA`` (data file is
not valid JSON / missing keys).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.analyze.base import Finding

#: An APA entry's recomputed residual may differ from the recorded one
#: only by float noise; anything larger means the scheme and its
#: metadata have drifted apart.
RESIDUAL_DRIFT_RTOL = 1e-6


def check_algorithm(alg, where: str | None = None,
                    recorded_residual: float | None = None) -> list[Finding]:
    """Validate one :class:`FastAlgorithm` (importable for mutation tests)."""
    from repro.core.algorithm import EXACT_TOL

    where = where or alg.name
    findings: list[Finding] = []
    m, k, n, R = alg.m, alg.k, alg.n, alg.rank
    expect = {"U": (m * k, R), "V": (k * n, R), "W": (m * n, R)}
    for name, shape in expect.items():
        M = getattr(alg, name)
        if M.shape != shape:
            findings.append(Finding(
                "catalog", "CAT-SHAPE", where,
                f"{name} has shape {M.shape}, <{m},{k},{n}> rank {R}"
                f" requires {shape}"))
            return findings
        if M.dtype != np.float64:
            findings.append(Finding(
                "catalog", "CAT-DTYPE", where,
                f"{name} stored as {M.dtype}, catalog contract is float64"))
        if not np.isfinite(M).all():
            findings.append(Finding(
                "catalog", "CAT-NONFINITE", where,
                f"{name} contains non-finite coefficients"))
            return findings
    res = float(alg.residual())
    # data files record rel_residual = ||T - [[U,V,W]]||_F / ||T||_F, and
    # the matmul tensor has exactly m*k*n unit entries
    rel = res / float(np.sqrt(m * k * n))
    if alg.apa:
        if res <= EXACT_TOL:
            findings.append(Finding(
                "catalog", "CAT-FLAG", where,
                f"entry is flagged APA but its residual {res:.3g} is exact"
                " to tolerance; drop the flag"))
        if recorded_residual is not None:
            drift = abs(rel - recorded_residual)
            if drift > RESIDUAL_DRIFT_RTOL * max(1.0, abs(recorded_residual)):
                findings.append(Finding(
                    "catalog", "CAT-RESIDUAL", where,
                    f"recomputed rel residual {rel:.9g} differs from the"
                    f" recorded rel_residual {recorded_residual:.9g}; the"
                    " scheme and its metadata have drifted apart"))
        if rel >= 1.0:
            findings.append(Finding(
                "catalog", "CAT-RESIDUAL", where,
                f"APA relative residual {rel:.3g} >= 1: scheme carries no"
                " signal"))
    else:
        if res > EXACT_TOL:
            findings.append(Finding(
                "catalog", "CAT-RESIDUAL", where,
                f"exact entry has residual {res:.3g} > EXACT_TOL"
                f" ({EXACT_TOL:g}): a coefficient is corrupt"))
    return findings


def check_data_file(path: Path) -> list[Finding]:
    """Validate one ``algorithms/data/*.json`` payload's structure."""
    where = f"data/{path.name}"
    try:
        raw = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [Finding("catalog", "CAT-DATA", where,
                        f"unreadable or invalid JSON: {exc}")]
    missing = {"name", "base_case", "rank", "U", "V", "W"} - set(raw)
    if missing:
        return [Finding("catalog", "CAT-DATA", where,
                        f"missing required keys {sorted(missing)}")]
    if raw.get("apa") and "rel_residual" not in raw:
        return [Finding("catalog", "CAT-DATA", where,
                        "APA entry records no rel_residual")]
    return []


def check_catalog(include_apa: bool = True) -> tuple[int, list[Finding]]:
    """Validate every data file and every registered catalog entry."""
    from repro.algorithms.catalog import DATA_DIR, get_algorithm, list_algorithms

    findings: list[Finding] = []
    checked = 0
    recorded: dict[str, float] = {}
    for path in sorted(Path(DATA_DIR).glob("*.json")):
        checked += 1
        findings.extend(check_data_file(path))
        try:
            raw = json.loads(path.read_text())
            if "rel_residual" in raw:
                # key by file stem: the registry name is the file name, the
                # payload "name" field keeps the searcher's generic label
                recorded[path.stem] = float(raw["rel_residual"])
        except (OSError, json.JSONDecodeError, TypeError, ValueError):
            pass
    for name in list_algorithms(include_apa=include_apa):
        checked += 1
        try:
            alg = get_algorithm(name)
        except Exception as exc:  # the load path is the thing under test
            findings.append(Finding(
                "catalog", "CAT-LOAD", name,
                f"catalog entry fails to load: {exc}"))
            continue
        findings.extend(check_algorithm(
            alg, where=name, recorded_residual=recorded.get(name)))
    return checked, findings
