"""Runtime control of the vendor BLAS thread count.

The paper's DFS and HYBRID schemes adjust MKL's thread count per call
(``mkl_set_num_threads``).  Our vendor library is the OpenBLAS bundled with
numpy; we bind its thread-control entry points via ctypes.  When the
symbols cannot be found (exotic numpy builds) the controls degrade to
no-ops and ``is_controllable()`` reports False so benchmarks can fall back
to the tiled-gemm substrate in ``repro.parallel.gemm``.
"""

from __future__ import annotations

import contextlib
import ctypes
import glob
import os
import threading

_SYMBOL_CANDIDATES = [
    # (get, set) pairs, most specific first
    ("scipy_openblas_get_num_threads64_", "scipy_openblas_set_num_threads64_"),
    ("scipy_openblas_get_num_threads", "scipy_openblas_set_num_threads"),
    ("openblas_get_num_threads64_", "openblas_set_num_threads64_"),
    ("openblas_get_num_threads", "openblas_set_num_threads"),
]

_lock = threading.Lock()
_lib = None
_lib_path = None
_get = None
_set = None
_probed = False


def _library_paths() -> list[str]:
    paths = []
    try:
        import numpy

        base = os.path.dirname(numpy.__file__)
        paths += glob.glob(os.path.join(base, "..", "numpy.libs", "libscipy_openblas*"))
        paths += glob.glob(os.path.join(base, ".libs", "libopenblas*"))
    except Exception:  # pragma: no cover - numpy always present in practice
        pass
    return paths


def _probe() -> None:
    global _lib, _lib_path, _get, _set, _probed
    if _probed:
        return
    with _lock:
        if _probed:
            return
        for path in _library_paths():
            try:
                lib = ctypes.CDLL(path)
            except OSError:
                continue
            for get_name, set_name in _SYMBOL_CANDIDATES:
                getter = getattr(lib, get_name, None)
                setter = getattr(lib, set_name, None)
                if getter is not None and setter is not None:
                    getter.restype = ctypes.c_int
                    setter.argtypes = [ctypes.c_int]
                    _lib, _lib_path, _get, _set = lib, path, getter, setter
                    _probed = True
                    return
        _probed = True


def is_controllable() -> bool:
    """True when the vendor BLAS exposes runtime thread control."""
    _probe()
    return _set is not None


def library_name() -> str | None:
    """Basename of the vendor BLAS shared library, or ``None`` if unprobed.

    The machine fingerprint (``repro.bench.machine``) uses this to detect
    a swapped BLAS (e.g. OpenBLAS -> MKL) between tuning runs.
    """
    _probe()
    return os.path.basename(_lib_path) if _lib_path else None


def get_threads() -> int:
    """Current BLAS thread count (1 when uncontrollable)."""
    _probe()
    return int(_get()) if _get is not None else 1


def set_threads(n: int) -> None:
    """Set the BLAS thread count; silently a no-op when uncontrollable."""
    if n < 1:
        raise ValueError("thread count must be >= 1")
    _probe()
    if _set is not None:
        _set(int(n))


@contextlib.contextmanager
def blas_threads(n: int | None):
    """Temporarily pin the vendor BLAS to ``n`` threads.

    This is the lever the parallel schemes use: BFS tasks run their leaf
    gemms under ``blas_threads(1)``, DFS leaves under ``blas_threads(P)``.

    The context is guarded so in-process tuning sweeps cannot leak global
    BLAS state: ``n`` is clamped to >= 1 (a zero/negative request pins to
    one thread rather than raising after the getter already ran), ``None``
    is a no-op, nesting restores the exact value saved at entry, and a
    degenerate saved value (some builds report 0 before initialization)
    restores to 1 instead of erroring inside ``finally``.
    """
    if n is None:
        yield
        return
    _probe()
    old = get_threads()
    set_threads(max(1, int(n)))
    try:
        yield
    finally:
        set_threads(old if old >= 1 else 1)


def sequential():
    """Alias for ``blas_threads(1)`` -- the paper's sequential dgemm."""
    return blas_threads(1)
