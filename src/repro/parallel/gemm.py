"""Parallel dgemm substrates.

Two ways to run a leaf multiplication on ``t`` threads, mirroring the
paper's use of multithreaded MKL:

- :func:`dgemm` -- the vendor path: pin OpenBLAS to ``t`` threads for the
  call (closest to ``mkl_set_num_threads`` + ``dgemm``);
- :func:`tiled_gemm` -- an explicit substrate: split C's rows into slabs
  and compute each slab's ``A_slab @ B`` on the pool (numpy releases the
  GIL inside BLAS, so slabs genuinely overlap).  Used when the vendor
  library is uncontrollable and by the machine-model benchmarks, which
  need a gemm whose parallelism we can sweep deterministically.
"""

from __future__ import annotations

import numpy as np

from repro.parallel import blas
from repro.parallel.pool import WorkerPool, _row_slabs


def dgemm(
    A: np.ndarray, B: np.ndarray, threads: int = 1,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Vendor gemm at an explicit thread count, into ``out`` when given."""
    with blas.blas_threads(threads):
        if out is None:
            return A @ B
        np.matmul(A, B, out=out)
        return out


def tiled_gemm(
    A: np.ndarray,
    B: np.ndarray,
    pool: WorkerPool,
    threads: int | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Row-slab parallel gemm over a worker pool (single-threaded BLAS
    inside each slab so parallelism is exactly ``threads``)."""
    t = threads or pool.workers
    p, q = A.shape
    r = B.shape[1]
    # result dtype must follow the operands: a bare np.empty would pin C to
    # float64 and make np.dot(..., out=C) reject/upcast float32 inputs
    C = out if out is not None else np.empty((p, r), dtype=np.result_type(A, B))
    if t <= 1 or p < t:
        with blas.blas_threads(1):
            np.dot(A, B, out=C)
        return C

    def work(sl: slice) -> None:
        np.dot(A[sl], B, out=C[sl])

    with blas.blas_threads(1):
        g = pool.group()
        for sl in _row_slabs(p, t):
            g.run(work, sl)
        g.wait()
    return C
