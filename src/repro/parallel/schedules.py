"""Shared-memory parallel fast matrix multiplication (paper Section 4).

Three schemes over the recursion tree:

- **DFS** (Section 4.1): ordinary depth-first recursion; every leaf gemm
  uses *all* P threads (vendor-BLAS parallelism) and every addition chain
  is row-slab parallelized.  Code path identical to sequential; needs large
  leaves to profit (the parallel dgemm ramp-up is flatter).

- **BFS** (Section 4.2): task parallelism.  The recursion tree is expanded
  level-synchronously: one task per (node, r) forms ``S_r``/``T_r`` with
  its additions, a ``taskwait`` barrier separates levels, the ``R^L`` leaf
  products run as independent single-BLAS-thread tasks, and combine stages
  walk back up with one task per node.  Needs ~R/(MN) extra memory per
  level and suffers load imbalance when P does not divide the task count.

- **HYBRID** (Section 4.3): the first ``R^L - (R^L mod P)`` leaves run BFS
  style (perfectly load balanced), the remaining ``R^L mod P`` run DFS
  style with all threads *after* the BFS batch completes (the paper's
  explicit synchronization that avoids oversubscription).  The alternative
  sub-group variant assigns the remainder to disjoint groups of P' < P
  threads; both are implemented.

Dynamic peeling applies at every node: boundary fix-up products are
attached to the node and executed during its combine stage.

Every scheme accepts ``out=`` and ``workspace=`` (a
:class:`repro.core.workspace.Workspace`): DFS reuses one per-level
``S``/``T``/``M_r`` triple from the arena, BFS/HYBRID draw every node's
``S``/``T`` operands and result storage from per-level arena pools whose
sizes follow the Section 4.2 per-level memory formula.  Buffers are
preassigned *before* tasks fan out (deterministic, no allocator in any
task body), so a warm call performs no large allocations.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.algorithm import FastAlgorithm
from repro.core.recursion import combine_blocks
from repro.core.workspace import (
    Workspace,
    check_out,
    needs_scratch,
    scratch_view,
)
from repro.obs import telemetry
from repro.parallel import blas
from repro.parallel.gemm import dgemm
from repro.parallel.pool import (
    WorkerPool,
    parallel_axpy,
    parallel_combine,
)
from repro.util.matrices import block_views, peel_split
from repro.util.validation import check_matmul_dims, require_2d

SCHEMES = ("dfs", "bfs", "hybrid", "hybrid-subgroup")


def _label_tasks(pool: WorkerPool, text: str) -> None:
    """Tag tasks submitted after this point with a phase label, when the
    pool records labels at all (duck-typed: ``TracedPool.label``).  The
    label lands on every ``TaskEvent`` of the phase, which the telemetry
    registry aggregates as a ``task.<label>`` span -- so per-scheme,
    per-phase task totals come out of the same stream the trace holds."""
    set_label = getattr(pool, "label", None)
    if set_label is not None:
        set_label(text)


def default_subgroup(threads: int) -> int:
    """Fallback P' for the sub-group hybrid when the caller pins none.

    Half the threads (two groups) is the paper's illustrative choice; the
    tuner never relies on this -- it sweeps P' over the divisors of the
    thread count and lets the cost model + measurement decide
    (``repro.tuner.space.subgroup_candidates``).
    """
    return max(1, threads // 2)


# =========================================================================
# DFS
# =========================================================================
def _dfs_recurse(
    A: np.ndarray,
    B: np.ndarray,
    alg: FastAlgorithm,
    steps: int,
    pool: WorkerPool,
    threads: int,
    out: np.ndarray | None = None,
    ws: Workspace | None = None,
) -> np.ndarray:
    p, q = A.shape
    r = B.shape[1]
    m, k, n = alg.base_case
    if steps <= 0 or p < m or q < k or r < n:
        return dgemm(A, B, threads=threads, out=out)

    A11, A12, A21, A22 = peel_split(A, m, k)
    B11, B12, B21, B22 = peel_split(B, k, n)
    pc, qc = A11.shape
    rc = B11.shape[1]

    C = out if out is not None else np.empty((p, r), dtype=np.result_type(A, B))
    Ccore = C[:pc, :rc]
    _dfs_core(A11, B11, Ccore, alg, steps, pool, threads, ws)

    if q - qc:
        # full-core-size fix-up: from the arena, like recursion._recurse
        if ws is not None:
            fix_mark = ws.mark()
            t = ws.take((pc, rc), C.dtype)
            dgemm(A12, B21, threads=threads, out=t)
            np.add(Ccore, t, out=Ccore)
            ws.release(fix_mark)
        else:
            Ccore += dgemm(A12, B21, threads=threads)
    if r - rc:
        dgemm(A11, B12, threads=threads, out=C[:pc, rc:])
        if q - qc:
            C[:pc, rc:] += dgemm(A12, B22, threads=threads)
    if p - pc:
        dgemm(A21, B11, threads=threads, out=C[pc:, :rc])
        if q - qc:
            C[pc:, :rc] += dgemm(A22, B21, threads=threads)
    if (p - pc) and (r - rc):
        C[pc:, rc:] = dgemm(A21, B12, threads=threads) + dgemm(
            A22, B22, threads=threads
        )
    return C


def _dfs_core(A, B, C, alg, steps, pool, threads, ws=None) -> None:
    m, k, n = alg.base_case
    blocksA = block_views(A, m, k)
    blocksB = block_views(B, k, n)
    blocksC = block_views(C, m, n)
    bp, bq = blocksA[0].shape
    br = blocksB[0].shape[1]
    started = [False] * len(blocksC)

    S_buf = T_buf = M_buf = scratch = None
    level_mark = None
    if ws is not None:
        # one S/T/M_r triple per level, reused across every rank (the
        # Section 4.1 DFS memory discipline)
        level_mark = ws.mark()
        S_buf = ws.take((bp, bq), A.dtype)
        T_buf = ws.take((bq, br), B.dtype)
        M_buf = ws.take((bp, br), C.dtype)
        if (needs_scratch(alg.U) or needs_scratch(alg.V)
                or needs_scratch(alg.W)):
            scratch = ws.take_scratch(max(S_buf.nbytes, T_buf.nbytes,
                                          M_buf.nbytes))

    for rr in range(alg.rank):
        ucol = alg.U[:, rr]
        vcol = alg.V[:, rr]
        unz = np.nonzero(ucol)[0]
        vnz = np.nonzero(vcol)[0]
        # additions fully parallelized (Section 4.1)
        if unz.size == 1 and float(ucol[unz[0]]) == 1.0:
            S = blocksA[int(unz[0])]
        else:
            S = S_buf if S_buf is not None else np.empty((bp, bq),
                                                         dtype=A.dtype)
            parallel_combine(pool, S, blocksA, ucol, scratch=scratch)
        if vnz.size == 1 and float(vcol[vnz[0]]) == 1.0:
            T = blocksB[int(vnz[0])]
        else:
            T = T_buf if T_buf is not None else np.empty((bq, br),
                                                         dtype=B.dtype)
            parallel_combine(pool, T, blocksB, vcol, scratch=scratch)
        if ws is None:
            Mr = _dfs_recurse(S, T, alg, steps - 1, pool, threads)
        else:
            inner = ws.mark()
            Mr = _dfs_recurse(S, T, alg, steps - 1, pool, threads,
                              out=M_buf, ws=ws)
            ws.release(inner)
        wcol = alg.W[:, rr]
        for i in np.nonzero(wcol)[0]:
            c = float(wcol[i])
            blk = blocksC[i]
            if not started[i]:
                parallel_combine(pool, blk, (Mr,), (c,), scratch=scratch)
                started[i] = True
            else:
                parallel_axpy(pool, blk, Mr, c, scratch=scratch)
    if ws is not None:
        ws.release(level_mark)
    for i, s in enumerate(started):
        if not s:
            blocksC[i][:] = 0.0


# =========================================================================
# BFS / HYBRID: level-synchronous task tree
# =========================================================================
@dataclasses.dataclass
class _Node:
    """One subproblem in the recursion tree."""

    A: np.ndarray
    B: np.ndarray
    level: int
    alg: FastAlgorithm
    children: list["_Node"] = dataclasses.field(default_factory=list)
    result: np.ndarray | None = None
    #: preassigned result storage (arena pool view, or the caller's ``out``)
    result_buf: np.ndarray | None = None
    # peeling views captured at expansion time, applied at combine time
    _peel: tuple | None = None
    # (S_buf, T_buf, scratch) per rank, preassigned before the form tasks run
    _child_bufs: list | None = None
    # combine-stage scratch for W coefficients outside {0, +-1}
    _scratch: np.ndarray | None = None
    # preassigned (pc x rc) buffer for the inner-dimension peel fix-up
    _qfix: np.ndarray | None = None

    def expand(self) -> list[tuple["_Node", int]]:
        """Split into per-rank child subproblems; returns (self, r) work
        items whose S/T formation runs as tasks."""
        m, k, n = self.alg.base_case
        A11, A12, A21, A22 = peel_split(self.A, m, k)
        B11, B12, B21, B22 = peel_split(self.B, k, n)
        self._peel = (A11, A12, A21, A22, B11, B12, B21, B22)
        self.children = [None] * self.alg.rank  # type: ignore[list-item]
        return [(self, r) for r in range(self.alg.rank)]

    def child_shapes(self) -> tuple[tuple[int, int], tuple[int, int]]:
        """(S shape, T shape) of this node's children (all ranks equal)."""
        m, k, n = self.alg.base_case
        pc, qc = self._peel[0].shape
        rc = self._peel[4].shape[1]
        return (pc // m, qc // k), (qc // k, rc // n)

    def form_child(self, r: int) -> "_Node":
        """Task body: form (S_r, T_r) with serial additions (they belong to
        the task, Section 4.2)."""
        m, k, n = self.alg.base_case
        A11 = self._peel[0]
        B11 = self._peel[4]
        blocksA = block_views(A11, m, k)
        blocksB = block_views(B11, k, n)
        bufs = self._child_bufs[r] if self._child_bufs is not None else None
        if bufs is None:
            S = combine_blocks(blocksA, self.alg.U[:, r])
            T = combine_blocks(blocksB, self.alg.V[:, r])
        else:
            S_buf, T_buf, scr = bufs
            S = combine_blocks(blocksA, self.alg.U[:, r], out=S_buf,
                               scratch=scr)
            T = combine_blocks(blocksB, self.alg.V[:, r], out=T_buf,
                               scratch=scr)
        child = _Node(S, T, self.level + 1, self.alg)
        self.children[r] = child
        return child

    def leaf_multiply(self) -> None:
        if self.result_buf is not None:
            np.matmul(self.A, self.B, out=self.result_buf)
            self.result = self.result_buf
        else:
            self.result = self.A @ self.B

    def combine(self) -> None:
        """Task body: assemble C from children products + peel fix-ups."""
        A11, A12, A21, A22, B11, B12, B21, B22 = self._peel
        p, q = self.A.shape
        r = self.B.shape[1]
        pc, qc = A11.shape
        rc = B11.shape[1]
        m, k, n = self.alg.base_case
        C = self.result_buf
        if C is None:
            C = np.empty((p, r), dtype=np.result_type(self.A, self.B))
        Ccore = C[:pc, :rc]
        blocksC = block_views(Ccore, m, n)
        started = [False] * len(blocksC)
        for rr, child in enumerate(self.children):
            Mr = child.result
            wcol = self.alg.W[:, rr]
            for i in np.nonzero(wcol)[0]:
                c = float(wcol[i])
                blk = blocksC[i]
                if not started[i]:
                    if c == 1.0:
                        blk[:] = Mr
                    else:
                        np.multiply(Mr, c, out=blk)
                    started[i] = True
                elif c == 1.0:
                    blk += Mr
                elif c == -1.0:
                    blk -= Mr
                elif self._scratch is not None:
                    t = scratch_view(self._scratch, blk.shape, blk.dtype)
                    np.multiply(Mr, c, out=t)
                    np.add(blk, t, out=blk)
                else:
                    blk += c * Mr
        for i, s in enumerate(started):
            if not s:
                blocksC[i][:] = 0.0
        # thin classical fix-ups (dynamic peeling, Section 3.5); the
        # inner-dimension strip is the one full-core-size product, so it
        # uses the preassigned arena buffer when one exists
        if q - qc:
            if self._qfix is not None:
                np.matmul(A12, B21, out=self._qfix)
                np.add(Ccore, self._qfix, out=Ccore)
            else:
                Ccore += A12 @ B21
        if r - rc:
            np.matmul(A11, B12, out=C[:pc, rc:])
            if q - qc:
                C[:pc, rc:] += A12 @ B22
        if p - pc:
            np.matmul(A21, B11, out=C[pc:, :rc])
            if q - qc:
                C[pc:, :rc] += A22 @ B21
        if (p - pc) and (r - rc):
            C[pc:, rc:] = A21 @ B12 + A22 @ B22
        self.result = C
        self.children = []  # release child references promptly


def _expand_tree(
    root: _Node,
    levels: int,
    pool: WorkerPool,
    ws: Workspace | None = None,
    uv_scratch: bool = False,
) -> list[list[_Node]]:
    """Level-synchronous expansion with a taskwait barrier per level.

    With an arena, each level's S/T pool is carved *serially* here before
    the form tasks fan out -- the per-level pools of Section 4.2, assigned
    deterministically so no task body ever touches the bump pointer.
    """
    tree: list[list[_Node]] = [[root]]
    frontier = [root]
    for _ in range(levels):
        work: list[tuple[_Node, int]] = []
        for node in frontier:
            m, k, n = node.alg.base_case
            p, q = node.A.shape
            r = node.B.shape[1]
            if p < m or q < k or r < n:
                continue  # too small: stays a leaf, multiplied directly
            work.extend(node.expand())
        if not work:
            break
        if ws is not None:
            for node, r in work:
                s_shape, t_shape = node.child_shapes()
                S_buf = ws.take(s_shape, node.A.dtype)
                T_buf = ws.take(t_shape, node.B.dtype)
                scr = None
                if uv_scratch:
                    scr = ws.take_scratch(max(S_buf.nbytes, T_buf.nbytes))
                if node._child_bufs is None:
                    node._child_bufs = [None] * node.alg.rank
                node._child_bufs[r] = (S_buf, T_buf, scr)
        # forming a child recomputes S/T from the parent's operands
        # into preassigned buffers -- idempotent, so retryable
        children = pool.map_wait(lambda wi: wi[0].form_child(wi[1]), work,
                                 retryable=True)
        frontier = children
        tree.append(children)
    return tree


def _combine_tree(
    tree: list[list[_Node]],
    pool: WorkerPool,
    ws: Workspace | None = None,
    w_scratch: bool = False,
) -> None:
    for level in range(len(tree) - 2, -1, -1):
        nodes = [nd for nd in tree[level] if nd.children]
        if ws is not None:
            for nd in nodes:
                # the root's storage is the caller's ``out`` (or a fresh
                # array) -- arena memory must never escape to the caller
                if nd.result_buf is None and nd.level > 0:
                    nd.result_buf = ws.take(
                        (nd.A.shape[0], nd.B.shape[1]),
                        np.result_type(nd.A, nd.B),
                    )
                if w_scratch and nd._scratch is None:
                    bs, ts = nd.child_shapes()
                    itemsize = np.result_type(nd.A, nd.B).itemsize
                    nd._scratch = ws.take_scratch(bs[0] * ts[1] * itemsize)
                if nd._qfix is None and nd._peel[1].shape[1]:
                    nd._qfix = ws.take(
                        (nd._peel[0].shape[0], nd._peel[4].shape[1]),
                        np.result_type(nd.A, nd.B),
                    )
        pool.map_wait(lambda nd: nd.combine(), nodes)


def _bfs_leaves(tree: list[list[_Node]]) -> list[_Node]:
    leaves = [nd for nd in tree[-1]]
    # nodes that stopped early (too small to split) are also leaves
    for level in tree[:-1]:
        leaves.extend(nd for nd in level if not nd.children)
    return [nd for nd in leaves if nd.result is None]


def _assign_leaf_buffers(leaves: list[_Node], ws: Workspace) -> None:
    for nd in leaves:
        if nd.result_buf is None and nd.level > 0:
            nd.result_buf = ws.take((nd.A.shape[0], nd.B.shape[1]),
                                    np.result_type(nd.A, nd.B))


def _run_bfs(
    root: _Node,
    steps: int,
    pool: WorkerPool,
    ws: Workspace | None = None,
) -> np.ndarray:
    uv_scratch = w_scratch = False
    if ws is not None:
        ws.reset()
        uv_scratch = needs_scratch(root.alg.U) or needs_scratch(root.alg.V)
        w_scratch = needs_scratch(root.alg.W)
    with telemetry.span("parallel.bfs.expand"):
        _label_tasks(pool, "bfs.expand")
        tree = _expand_tree(root, steps, pool, ws, uv_scratch)
    leaves = _bfs_leaves(tree)
    if ws is not None:
        _assign_leaf_buffers(leaves, ws)
    with telemetry.span("parallel.bfs.leaf"):
        _label_tasks(pool, "bfs.leaf")
        with blas.blas_threads(1):  # one BLAS thread per task: pure task parallelism
            pool.map_wait(lambda nd: nd.leaf_multiply(), leaves,
                          retryable=True)
    with telemetry.span("parallel.bfs.combine"):
        _label_tasks(pool, "bfs.combine")
        _combine_tree(tree, pool, ws, w_scratch)
    return root.result


def _run_hybrid(
    root: _Node,
    steps: int,
    pool: WorkerPool,
    threads: int,
    subgroup: int | None = None,
    ws: Workspace | None = None,
) -> np.ndarray:
    uv_scratch = w_scratch = False
    if ws is not None:
        ws.reset()
        uv_scratch = needs_scratch(root.alg.U) or needs_scratch(root.alg.V)
        w_scratch = needs_scratch(root.alg.W)
    with telemetry.span("parallel.hybrid.expand"):
        _label_tasks(pool, "hybrid.expand")
        tree = _expand_tree(root, steps, pool, ws, uv_scratch)
    leaves = _bfs_leaves(tree)
    if ws is not None:
        _assign_leaf_buffers(leaves, ws)
    n_bfs = len(leaves) - (len(leaves) % threads)
    bfs_part, dfs_part = leaves[:n_bfs], leaves[n_bfs:]
    # 1) perfectly balanced BFS batch
    if bfs_part:
        with telemetry.span("parallel.hybrid.bfs_batch"):
            _label_tasks(pool, "hybrid.bfs_batch")
            with blas.blas_threads(1):
                pool.map_wait(lambda nd: nd.leaf_multiply(), bfs_part,
                              retryable=True)
    # 2) remainder after an explicit barrier (paper's lock scheme): DFS
    if dfs_part:
        with telemetry.span("parallel.hybrid.remainder"):
            _label_tasks(pool, "hybrid.remainder")
            if subgroup is None:
                with blas.blas_threads(threads):
                    for nd in dfs_part:
                        nd.leaf_multiply()
            else:
                # Section 4.3 alternative: disjoint groups of P' threads
                if threads % subgroup:
                    raise ValueError("subgroup size must divide thread count")
                waves = threads // subgroup
                with blas.blas_threads(subgroup):
                    for i in range(0, len(dfs_part), waves):
                        pool.map_wait(
                            lambda nd: nd.leaf_multiply(),
                            dfs_part[i : i + waves],
                            retryable=True,
                        )
    with telemetry.span("parallel.hybrid.combine"):
        _label_tasks(pool, "hybrid.combine")
        _combine_tree(tree, pool, ws, w_scratch)
    return root.result


# =========================================================================
# public entry point
# =========================================================================
def multiply_parallel(
    A: np.ndarray,
    B: np.ndarray,
    algorithm: FastAlgorithm,
    steps: int = 1,
    scheme: str = "hybrid",
    pool: WorkerPool | None = None,
    threads: int | None = None,
    subgroup: int | None = None,
    out: np.ndarray | None = None,
    workspace: Workspace | None = None,
) -> np.ndarray:
    """Parallel fast multiply ``A @ B`` (Section 4).

    ``scheme`` is one of ``dfs``, ``bfs``, ``hybrid``, ``hybrid-subgroup``;
    ``threads`` defaults to the pool's worker count; ``subgroup`` is the
    P' of the sub-group hybrid.

    ``out`` receives the product; ``workspace`` is an arena sized by
    :meth:`Workspace.for_recursion` (dfs) or :meth:`Workspace.for_parallel`
    (bfs/hybrid) from which every temporary is drawn, so a warm
    ``(out, workspace)`` call performs no large allocations.
    """
    A = require_2d(A, "A")
    B = require_2d(B, "B")
    check_matmul_dims(A, B)
    if out is not None:
        out = check_out(out, A, B)
    if scheme not in SCHEMES:
        raise ValueError(f"scheme must be one of {SCHEMES}, got {scheme!r}")
    if subgroup is not None and scheme != "hybrid-subgroup":
        # silently running without the requested P' would mask a user
        # error the CLI and Plan validation both reject
        raise ValueError(
            f"subgroup (P') only applies to scheme 'hybrid-subgroup', "
            f"not {scheme!r}"
        )
    owns_pool = pool is None
    pool = pool or WorkerPool(threads)
    P = threads or pool.workers
    sg = None
    if scheme == "hybrid-subgroup":
        sg = subgroup if subgroup is not None else default_subgroup(P)
        if sg < 1 or P % sg:
            # validated before any work runs, not mid-combine
            if owns_pool:
                pool.shutdown()
            raise ValueError(
                f"subgroup (P') must divide the thread count ({P}), "
                f"got {sg}"
            )
    try:
        with telemetry.span("parallel." + scheme, threads=P):
            if scheme == "dfs":
                if workspace is not None:
                    workspace.reset()
                _label_tasks(pool, "dfs")
                return _dfs_recurse(A, B, algorithm, steps, pool, P,
                                    out=out, ws=workspace)
            root = _Node(A, B, 0, algorithm, result_buf=out)
            if scheme == "bfs":
                return _run_bfs(root, steps, pool, ws=workspace)
            return _run_hybrid(root, steps, pool, P, subgroup=sg,
                               ws=workspace)
    finally:
        if owns_pool:
            pool.shutdown()
