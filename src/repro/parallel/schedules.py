"""Shared-memory parallel fast matrix multiplication (paper Section 4).

Three schemes over the recursion tree:

- **DFS** (Section 4.1): ordinary depth-first recursion; every leaf gemm
  uses *all* P threads (vendor-BLAS parallelism) and every addition chain
  is row-slab parallelized.  Code path identical to sequential; needs large
  leaves to profit (the parallel dgemm ramp-up is flatter).

- **BFS** (Section 4.2): task parallelism.  The recursion tree is expanded
  level-synchronously: one task per (node, r) forms ``S_r``/``T_r`` with
  its additions, a ``taskwait`` barrier separates levels, the ``R^L`` leaf
  products run as independent single-BLAS-thread tasks, and combine stages
  walk back up with one task per node.  Needs ~R/(MN) extra memory per
  level and suffers load imbalance when P does not divide the task count.

- **HYBRID** (Section 4.3): the first ``R^L - (R^L mod P)`` leaves run BFS
  style (perfectly load balanced), the remaining ``R^L mod P`` run DFS
  style with all threads *after* the BFS batch completes (the paper's
  explicit synchronization that avoids oversubscription).  The alternative
  sub-group variant assigns the remainder to disjoint groups of P' < P
  threads; both are implemented.

Dynamic peeling applies at every node: boundary fix-up products are
attached to the node and executed during its combine stage.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.core.algorithm import FastAlgorithm
from repro.core.recursion import combine_blocks
from repro.parallel import blas
from repro.parallel.gemm import dgemm
from repro.parallel.pool import WorkerPool, parallel_combine
from repro.util.matrices import block_views, peel_split
from repro.util.validation import check_matmul_dims, require_2d

SCHEMES = ("dfs", "bfs", "hybrid", "hybrid-subgroup")


# =========================================================================
# DFS
# =========================================================================
def _dfs_recurse(
    A: np.ndarray,
    B: np.ndarray,
    alg: FastAlgorithm,
    steps: int,
    pool: WorkerPool,
    threads: int,
) -> np.ndarray:
    p, q = A.shape
    r = B.shape[1]
    m, k, n = alg.base_case
    if steps <= 0 or p < m or q < k or r < n:
        return dgemm(A, B, threads=threads)

    A11, A12, A21, A22 = peel_split(A, m, k)
    B11, B12, B21, B22 = peel_split(B, k, n)
    pc, qc = A11.shape
    rc = B11.shape[1]

    C = np.empty((p, r), dtype=np.result_type(A, B))
    Ccore = C[:pc, :rc]
    _dfs_core(A11, B11, Ccore, alg, steps, pool, threads)

    if q - qc:
        Ccore += dgemm(A12, B21, threads=threads)
    if r - rc:
        C[:pc, rc:] = dgemm(A11, B12, threads=threads)
        if q - qc:
            C[:pc, rc:] += dgemm(A12, B22, threads=threads)
    if p - pc:
        C[pc:, :rc] = dgemm(A21, B11, threads=threads)
        if q - qc:
            C[pc:, :rc] += dgemm(A22, B21, threads=threads)
    if (p - pc) and (r - rc):
        C[pc:, rc:] = dgemm(A21, B12, threads=threads) + dgemm(
            A22, B22, threads=threads
        )
    return C


def _dfs_core(A, B, C, alg, steps, pool, threads) -> None:
    m, k, n = alg.base_case
    blocksA = block_views(A, m, k)
    blocksB = block_views(B, k, n)
    blocksC = block_views(C, m, n)
    bp, bq = blocksA[0].shape
    br = blocksB[0].shape[1]
    started = [False] * len(blocksC)
    for rr in range(alg.rank):
        ucol = alg.U[:, rr]
        vcol = alg.V[:, rr]
        # additions fully parallelized (Section 4.1)
        if np.count_nonzero(ucol) == 1 and ucol[np.nonzero(ucol)[0][0]] == 1.0:
            S = blocksA[int(np.nonzero(ucol)[0][0])]
        else:
            S = np.empty((bp, bq), dtype=A.dtype)
            parallel_combine(pool, S, blocksA, ucol)
        if np.count_nonzero(vcol) == 1 and vcol[np.nonzero(vcol)[0][0]] == 1.0:
            T = blocksB[int(np.nonzero(vcol)[0][0])]
        else:
            T = np.empty((bq, br), dtype=B.dtype)
            parallel_combine(pool, T, blocksB, vcol)
        Mr = _dfs_recurse(S, T, alg, steps - 1, pool, threads)
        wcol = alg.W[:, rr]
        for i in np.nonzero(wcol)[0]:
            c = float(wcol[i])
            blk = blocksC[i]
            if not started[i]:
                if c == 1.0:
                    parallel_combine(pool, blk, [Mr], [1.0])
                else:
                    parallel_combine(pool, blk, [Mr], [c])
                started[i] = True
            else:
                from repro.parallel.pool import parallel_axpy

                parallel_axpy(pool, blk, Mr, c)
    for i, s in enumerate(started):
        if not s:
            blocksC[i][:] = 0.0


# =========================================================================
# BFS / HYBRID: level-synchronous task tree
# =========================================================================
@dataclasses.dataclass
class _Node:
    """One subproblem in the recursion tree."""

    A: np.ndarray
    B: np.ndarray
    level: int
    alg: FastAlgorithm
    children: list["_Node"] = dataclasses.field(default_factory=list)
    result: np.ndarray | None = None
    # peeling views captured at expansion time, applied at combine time
    _peel: tuple | None = None

    def expand(self) -> list[tuple["_Node", int]]:
        """Split into per-rank child subproblems; returns (self, r) work
        items whose S/T formation runs as tasks."""
        m, k, n = self.alg.base_case
        A11, A12, A21, A22 = peel_split(self.A, m, k)
        B11, B12, B21, B22 = peel_split(self.B, k, n)
        self._peel = (A11, A12, A21, A22, B11, B12, B21, B22)
        self.children = [None] * self.alg.rank  # type: ignore[list-item]
        return [(self, r) for r in range(self.alg.rank)]

    def form_child(self, r: int) -> "_Node":
        """Task body: form (S_r, T_r) with serial additions (they belong to
        the task, Section 4.2)."""
        m, k, n = self.alg.base_case
        A11 = self._peel[0]
        B11 = self._peel[4]
        blocksA = block_views(A11, m, k)
        blocksB = block_views(B11, k, n)
        S = combine_blocks(blocksA, self.alg.U[:, r])
        T = combine_blocks(blocksB, self.alg.V[:, r])
        child = _Node(S, T, self.level + 1, self.alg)
        self.children[r] = child
        return child

    def leaf_multiply(self) -> None:
        self.result = self.A @ self.B

    def combine(self) -> None:
        """Task body: assemble C from children products + peel fix-ups."""
        A11, A12, A21, A22, B11, B12, B21, B22 = self._peel
        p, q = self.A.shape
        r = self.B.shape[1]
        pc, qc = A11.shape
        rc = B11.shape[1]
        m, k, n = self.alg.base_case
        C = np.empty((p, r), dtype=np.result_type(self.A, self.B))
        Ccore = C[:pc, :rc]
        blocksC = block_views(Ccore, m, n)
        started = [False] * len(blocksC)
        for rr, child in enumerate(self.children):
            Mr = child.result
            wcol = self.alg.W[:, rr]
            for i in np.nonzero(wcol)[0]:
                c = float(wcol[i])
                blk = blocksC[i]
                if not started[i]:
                    if c == 1.0:
                        blk[:] = Mr
                    else:
                        np.multiply(Mr, c, out=blk)
                    started[i] = True
                elif c == 1.0:
                    blk += Mr
                elif c == -1.0:
                    blk -= Mr
                else:
                    blk += c * Mr
        for i, s in enumerate(started):
            if not s:
                blocksC[i][:] = 0.0
        # thin classical fix-ups (dynamic peeling, Section 3.5)
        if q - qc:
            Ccore += A12 @ B21
        if r - rc:
            C[:pc, rc:] = A11 @ B12
            if q - qc:
                C[:pc, rc:] += A12 @ B22
        if p - pc:
            C[pc:, :rc] = A21 @ B11
            if q - qc:
                C[pc:, :rc] += A22 @ B21
        if (p - pc) and (r - rc):
            C[pc:, rc:] = A21 @ B12 + A22 @ B22
        self.result = C
        self.children = []  # release child memory promptly


def _expand_tree(
    root: _Node, levels: int, pool: WorkerPool
) -> list[list[_Node]]:
    """Level-synchronous expansion with a taskwait barrier per level."""
    tree: list[list[_Node]] = [[root]]
    frontier = [root]
    for _ in range(levels):
        work: list[tuple[_Node, int]] = []
        for node in frontier:
            m, k, n = node.alg.base_case
            p, q = node.A.shape
            r = node.B.shape[1]
            if p < m or q < k or r < n:
                continue  # too small: stays a leaf, multiplied directly
            work.extend(node.expand())
        if not work:
            break
        children = pool.map_wait(lambda wi: wi[0].form_child(wi[1]), work)
        frontier = children
        tree.append(children)
    return tree


def _combine_tree(tree: list[list[_Node]], pool: WorkerPool) -> None:
    for level in range(len(tree) - 2, -1, -1):
        nodes = [nd for nd in tree[level] if nd.children]
        pool.map_wait(lambda nd: nd.combine(), nodes)


def _bfs_leaves(tree: list[list[_Node]]) -> list[_Node]:
    leaves = [nd for nd in tree[-1]]
    # nodes that stopped early (too small to split) are also leaves
    for level in tree[:-1]:
        leaves.extend(nd for nd in level if not nd.children)
    return [nd for nd in leaves if nd.result is None]


def _run_bfs(root: _Node, steps: int, pool: WorkerPool) -> np.ndarray:
    tree = _expand_tree(root, steps, pool)
    leaves = _bfs_leaves(tree)
    with blas.blas_threads(1):  # one BLAS thread per task: pure task parallelism
        pool.map_wait(lambda nd: nd.leaf_multiply(), leaves)
    _combine_tree(tree, pool)
    return root.result


def _run_hybrid(
    root: _Node,
    steps: int,
    pool: WorkerPool,
    threads: int,
    subgroup: int | None = None,
) -> np.ndarray:
    tree = _expand_tree(root, steps, pool)
    leaves = _bfs_leaves(tree)
    n_bfs = len(leaves) - (len(leaves) % threads)
    bfs_part, dfs_part = leaves[:n_bfs], leaves[n_bfs:]
    # 1) perfectly balanced BFS batch
    if bfs_part:
        with blas.blas_threads(1):
            pool.map_wait(lambda nd: nd.leaf_multiply(), bfs_part)
    # 2) remainder after an explicit barrier (paper's lock scheme): DFS
    if dfs_part:
        if subgroup is None:
            with blas.blas_threads(threads):
                for nd in dfs_part:
                    nd.leaf_multiply()
        else:
            # Section 4.3 alternative: disjoint groups of P' threads
            if threads % subgroup:
                raise ValueError("subgroup size must divide thread count")
            waves = threads // subgroup
            with blas.blas_threads(subgroup):
                for i in range(0, len(dfs_part), waves):
                    pool.map_wait(
                        lambda nd: nd.leaf_multiply(), dfs_part[i : i + waves]
                    )
    _combine_tree(tree, pool)
    return root.result


# =========================================================================
# public entry point
# =========================================================================
def multiply_parallel(
    A: np.ndarray,
    B: np.ndarray,
    algorithm: FastAlgorithm,
    steps: int = 1,
    scheme: str = "hybrid",
    pool: WorkerPool | None = None,
    threads: int | None = None,
    subgroup: int | None = None,
) -> np.ndarray:
    """Parallel fast multiply ``A @ B`` (Section 4).

    ``scheme`` is one of ``dfs``, ``bfs``, ``hybrid``, ``hybrid-subgroup``;
    ``threads`` defaults to the pool's worker count; ``subgroup`` is the
    P' of the sub-group hybrid.
    """
    A = require_2d(A, "A")
    B = require_2d(B, "B")
    check_matmul_dims(A, B)
    if scheme not in SCHEMES:
        raise ValueError(f"scheme must be one of {SCHEMES}, got {scheme!r}")
    owns_pool = pool is None
    pool = pool or WorkerPool(threads)
    P = threads or pool.workers
    try:
        if scheme == "dfs":
            return _dfs_recurse(A, B, algorithm, steps, pool, P)
        root = _Node(A, B, 0, algorithm)
        if scheme == "bfs":
            return _run_bfs(root, steps, pool)
        sg = subgroup if scheme == "hybrid-subgroup" else None
        if scheme == "hybrid-subgroup" and sg is None:
            sg = max(1, P // 2)
        return _run_hybrid(root, steps, pool, P, subgroup=sg)
    finally:
        if owns_pool:
            pool.shutdown()
