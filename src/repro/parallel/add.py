"""Bandwidth-bound kernels and the STREAM-like machine measurement.

Section 4.5's argument: gemm is compute-bound and scales ~P-fold, matrix
addition is bandwidth-bound and scales with the memory system (the paper's
node: ~5x at 24 cores, i.e. ~20% parallel efficiency), so parallel fast
algorithms lose ground to parallel classical gemm as cores increase.  This
module provides the measured inputs for that analysis on the present node.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.parallel.pool import WorkerPool, parallel_axpy


@dataclasses.dataclass(frozen=True)
class StreamResult:
    """Triad bandwidth at each thread count, GiB/s, plus derived efficiency."""

    threads: list[int]
    bandwidth_gib_s: list[float]

    def speedup(self) -> list[float]:
        b0 = self.bandwidth_gib_s[0]
        return [b / b0 for b in self.bandwidth_gib_s]

    def parallel_efficiency(self) -> list[float]:
        return [s / t for s, t in zip(self.speedup(), self.threads)]


def stream_triad(
    pool: WorkerPool,
    threads: int,
    size_mb: float = 64.0,
    repeats: int = 5,
) -> float:
    """STREAM-triad-like measurement ``a += 2.0 * b`` at a thread count.

    Returns sustained GiB/s (3 matrix accesses per element: read a, read b,
    write a), median of ``repeats``.
    """
    n = int(size_mb * 1024 * 1024 / 8)
    rows = max(threads, 64)
    a = np.ones((rows, n // rows))
    b = np.ones((rows, n // rows))
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        if threads <= 1:
            np.add(a, b, out=a)
        else:
            parallel_axpy(pool, a, b, 1.0)
        times.append(time.perf_counter() - t0)
    bytes_moved = 3 * a.nbytes
    return bytes_moved / (sorted(times)[len(times) // 2]) / 2**30


def measure_stream(
    pool: WorkerPool, thread_counts: list[int], size_mb: float = 64.0
) -> StreamResult:
    bw = [stream_triad(pool, t, size_mb=size_mb) for t in thread_counts]
    return StreamResult(list(thread_counts), bw)
