"""Scheduler tracing: quantify load (im)balance of the parallel schemes.

The Figure-4 narrative hinges on *where the time goes*: BFS with Strassen
spawns 7 leaf tasks, so with P=2 one worker draws 4 leaves and the other 3
(or worse at deeper recursion), while HYBRID's BFS batch is a multiple of
P by construction.  ``TracedPool`` records a (worker, start, stop, label)
event per task so benchmarks and tests can compute per-worker busy time
and the imbalance ratio directly instead of inferring it from totals.

Timestamps come from the shared telemetry clock
(:func:`repro.obs.telemetry.clock`), and every captured event is also
forwarded to :func:`repro.obs.telemetry.record_task` -- this module is a
*consumer* of the same event stream the unified telemetry registry
aggregates, so a trace's per-task timings and ``repro stats``' per-label
span totals are two views of identical data, on one time base.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Callable

from repro.obs import telemetry
from repro.parallel.pool import WorkerPool


@dataclasses.dataclass(frozen=True)
class TaskEvent:
    worker: str
    label: str
    start: float
    stop: float

    @property
    def duration(self) -> float:
        return self.stop - self.start


@dataclasses.dataclass
class Trace:
    events: list[TaskEvent] = dataclasses.field(default_factory=list)

    def clear(self) -> None:
        self.events.clear()

    def per_worker_busy(self) -> dict[str, float]:
        """Total busy seconds per worker; ``{}`` for an empty trace."""
        busy: dict[str, float] = {}
        for ev in self.events:
            busy[ev.worker] = busy.get(ev.worker, 0.0) + ev.duration
        return busy

    def imbalance(self) -> float:
        """max worker busy time / mean worker busy time (1.0 = perfect).

        Degenerate traces answer 1.0 rather than raising: an empty trace
        (no workers to be imbalanced across), a single worker (max equals
        mean by construction), and all-zero durations (instantaneous
        tasks would otherwise divide by a zero mean).
        """
        busy = list(self.per_worker_busy().values())
        if len(busy) < 2:
            return 1.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean > 0 else 1.0

    def makespan(self) -> float:
        if not self.events:
            return 0.0
        return max(e.stop for e in self.events) - min(e.start for e in self.events)

    def total_task_time(self) -> float:
        return sum(e.duration for e in self.events)

    def by_label_prefix(self, prefix: str) -> "Trace":
        return Trace([e for e in self.events if e.label.startswith(prefix)])


class TracedPool(WorkerPool):
    """WorkerPool that wraps every submitted task with timing capture.

    Drop-in replacement: pass it as the ``pool`` argument of
    ``multiply_parallel`` and read ``pool.trace`` afterwards.
    """

    def __init__(self, workers: int | None = None):
        super().__init__(workers)
        self.trace = Trace()
        self._lock = threading.Lock()
        self._labels = threading.local()

    def label(self, text: str) -> None:
        """Set the label recorded for tasks submitted by this thread."""
        self._labels.value = text

    def _current_label(self) -> str:
        return getattr(self._labels, "value", "task")

    def submit(self, fn: Callable, *args, **kwargs):
        label = self._current_label()

        def wrapped(*a, **kw):
            t0 = telemetry.clock()
            try:
                return fn(*a, **kw)
            finally:
                t1 = telemetry.clock()
                worker = threading.current_thread().name
                ev = TaskEvent(worker, label, t0, t1)
                with self._lock:
                    self.trace.events.append(ev)
                # same event, second consumer: the unified registry (no-op
                # unless telemetry is enabled)
                telemetry.record_task(worker, label, t0, t1)

        return super().submit(wrapped, *args, **kwargs)
