"""Scheduler tracing: quantify load (im)balance of the parallel schemes.

The Figure-4 narrative hinges on *where the time goes*: BFS with Strassen
spawns 7 leaf tasks, so with P=2 one worker draws 4 leaves and the other 3
(or worse at deeper recursion), while HYBRID's BFS batch is a multiple of
P by construction.  ``TracedPool`` records a (worker, start, stop, label)
event per task so benchmarks and tests can compute per-worker busy time
and the imbalance ratio directly instead of inferring it from totals.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Callable

from repro.parallel.pool import WorkerPool


@dataclasses.dataclass(frozen=True)
class TaskEvent:
    worker: str
    label: str
    start: float
    stop: float

    @property
    def duration(self) -> float:
        return self.stop - self.start


@dataclasses.dataclass
class Trace:
    events: list[TaskEvent] = dataclasses.field(default_factory=list)

    def clear(self) -> None:
        self.events.clear()

    def per_worker_busy(self) -> dict[str, float]:
        busy: dict[str, float] = {}
        for ev in self.events:
            busy[ev.worker] = busy.get(ev.worker, 0.0) + ev.duration
        return busy

    def imbalance(self) -> float:
        """max worker busy time / mean worker busy time (1.0 = perfect)."""
        busy = list(self.per_worker_busy().values())
        if not busy:
            return 1.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean > 0 else 1.0

    def makespan(self) -> float:
        if not self.events:
            return 0.0
        return max(e.stop for e in self.events) - min(e.start for e in self.events)

    def total_task_time(self) -> float:
        return sum(e.duration for e in self.events)

    def by_label_prefix(self, prefix: str) -> "Trace":
        return Trace([e for e in self.events if e.label.startswith(prefix)])


class TracedPool(WorkerPool):
    """WorkerPool that wraps every submitted task with timing capture.

    Drop-in replacement: pass it as the ``pool`` argument of
    ``multiply_parallel`` and read ``pool.trace`` afterwards.
    """

    def __init__(self, workers: int | None = None):
        super().__init__(workers)
        self.trace = Trace()
        self._lock = threading.Lock()
        self._labels = threading.local()

    def label(self, text: str) -> None:
        """Set the label recorded for tasks submitted by this thread."""
        self._labels.value = text

    def _current_label(self) -> str:
        return getattr(self._labels, "value", "task")

    def submit(self, fn: Callable, *args, **kwargs):
        label = self._current_label()

        def wrapped(*a, **kw):
            t0 = time.perf_counter()
            try:
                return fn(*a, **kw)
            finally:
                t1 = time.perf_counter()
                ev = TaskEvent(threading.current_thread().name, label, t0, t1)
                with self._lock:
                    self.trace.events.append(ev)

        return super().submit(wrapped, *args, **kwargs)
