"""Worker pool with OpenMP-task-like semantics.

The paper parallelizes with OpenMP tasks plus ``taskwait`` barriers
(Section 4.4).  Python threads + numpy reproduce this honestly because the
heavy primitives (BLAS gemm, large-array ufuncs) release the GIL, so leaf
multiplications and matrix additions genuinely overlap.

``TaskGroup`` mirrors ``#pragma omp taskwait``: submit tasks, then ``wait``
for all of them; exceptions in workers propagate to the waiter.

Supervision (the ``repro.guard`` substrate): a pool detects a dead
executor and refuses further work with :class:`PoolBrokenError` instead
of deadlocking; ``wait``/``map_wait`` accept a deadline and raise
:class:`TaskTimeoutError` when a worker wedges past it; and tasks marked
``retryable=True`` -- the *idempotent* slab kernels below, which
recompute their output slab from scratch -- get one bounded inline retry
in the waiting thread before their failure propagates.  The
``worker.hang`` / ``worker.die`` fault points live in :meth:`submit` so
chaos tests can prove all of it deterministically.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.workspace import scratch_view
from repro.guard import faults
from repro.obs import telemetry


class PoolBrokenError(RuntimeError):
    """The pool's executor is dead (shut down, or its workers died);
    submitting to it would lose the task.  Guarded dispatch treats this
    as an infrastructure failure: rebuild the pool, degrade the call."""


class TaskTimeoutError(TimeoutError):
    """A task group's barrier overran its deadline: at least one worker
    is hung (or the deadline was unrealistic).  The group's remaining
    futures are cancelled/abandoned before this is raised."""


def available_cores() -> int:
    """Cores available to this process (the paper's "P threads")."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_threads(threads: int | None) -> int:
    """Validate an explicit thread count, defaulting ``None`` to all cores.

    ``threads=0`` used to silently mean "all cores" through ``threads or
    available_cores()`` expressions, masking caller bugs; only ``None``
    carries that meaning now.
    """
    if threads is None:
        return available_cores()
    if not isinstance(threads, int) or isinstance(threads, bool) or threads < 1:
        raise ValueError(
            f"threads must be a positive integer or None (got {threads!r}); "
            "pass None for the all-cores default"
        )
    return threads


class WorkerPool:
    """Thin, persistent thread pool with barrier-style task groups."""

    def __init__(self, workers: int | None = None):
        self.workers = workers or available_cores()
        self._ex = ThreadPoolExecutor(max_workers=self.workers)
        self._broken = False

    @property
    def broken(self) -> bool:
        """Has this pool detected (or been told of) a dead executor?"""
        return self._broken

    # -- task API ----------------------------------------------------------
    def submit(self, fn: Callable, *args, **kwargs) -> Future:
        if faults.active:
            if faults.should_fire("worker.die"):
                self._broken = True
            if faults.should_fire("worker.hang"):
                inner = fn

                def fn(*a, **kw):  # noqa: F811 - deliberate shadow
                    faults.hang()
                    return inner(*a, **kw)
        if self._broken:
            raise PoolBrokenError(
                f"worker pool ({self.workers} workers) is broken; "
                f"rebuild it before submitting")
        try:
            return self._ex.submit(fn, *args, **kwargs)
        except RuntimeError as e:
            # the executor was shut down underneath us (interpreter
            # teardown race, or an external kill): latch broken so every
            # later submit fails fast with the typed error
            self._broken = True
            raise PoolBrokenError(f"worker pool executor is dead: {e}") from e

    def map_wait(self, fn: Callable, items: Iterable,
                 timeout: float | None = None,
                 retryable: bool = False) -> list:
        """Submit ``fn(item)`` for every item and wait (ordered results).

        Routed through :meth:`submit` so subclasses (e.g. the tracing pool)
        see every task.  ``timeout`` bounds the whole barrier
        (:class:`TaskTimeoutError` past it); ``retryable`` marks the tasks
        idempotent, granting each one bounded inline retry on failure.
        """
        group = self.group()
        for it in items:
            group.run(fn, it, retryable=retryable)
        return group.wait(timeout=timeout)

    def group(self) -> "TaskGroup":
        return TaskGroup(self)

    # -- supervision --------------------------------------------------------
    def probe(self, timeout: float = 1.0) -> bool:
        """Health check: can the pool still run a trivial task in time?

        ``False`` marks the pool broken (a wedged or dead executor), so
        the caller can tear it down and rebuild.
        """
        if self._broken:
            return False
        try:
            fut = self.submit(lambda: True)
            fut.result(timeout=timeout)
            return True
        except (PoolBrokenError, FuturesTimeout, RuntimeError):
            self._broken = True
            return False

    # -- lifecycle ----------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop the executor.  ``wait=False`` abandons it without joining
        (the supervision path: a wedged worker must not hang teardown);
        queued-but-unstarted tasks are cancelled."""
        self._broken = True
        self._ex.shutdown(wait=wait, cancel_futures=not wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class TaskGroup:
    """Collects futures; ``wait()`` is the ``taskwait`` barrier."""

    def __init__(self, pool: WorkerPool):
        self._pool = pool
        self._futures: list[Future] = []
        self._tasks: list[tuple[Callable, tuple, dict, bool]] = []

    def run(self, fn: Callable, *args, retryable: bool = False,
            **kwargs) -> Future:
        """Submit one task.  ``retryable=True`` asserts the task is
        idempotent (recomputes its output from its inputs, no
        accumulation), granting it one inline retry at the barrier."""
        fut = self._pool.submit(fn, *args, **kwargs)  # honors subclasses
        self._futures.append(fut)
        self._tasks.append((fn, args, kwargs, retryable))
        return fut

    def wait(self, timeout: float | None = None) -> list:
        """Barrier: results of every submitted task, in submission order.

        Every future is retrieved even when an early one raises --
        abandoning the rest would leak "exception was never retrieved"
        warnings and leave ``_futures`` populated for a reused group.  The
        first exception (in submission order) is re-raised after the
        barrier completes.

        ``timeout`` (seconds) bounds the *whole* barrier: when the
        deadline passes before every task finished, remaining futures are
        cancelled (running ones are abandoned -- their eventual exception
        is swallowed via a done-callback so nothing warns at gc) and
        :class:`TaskTimeoutError` is raised.  A task submitted with
        ``retryable=True`` whose worker raised is retried **once, inline
        in the waiting thread** -- the slab kernels this is for are
        idempotent, and the waiter is the one thread known to still be
        alive when workers are dying.
        """
        futures, self._futures = self._futures, []
        tasks, self._tasks = self._tasks, []
        deadline = None if timeout is None else time.monotonic() + timeout
        results: list = []
        first_exc: BaseException | None = None
        for i, f in enumerate(futures):
            try:
                if deadline is None:
                    results.append(f.result())
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise FuturesTimeout()
                    results.append(f.result(timeout=remaining))
            except FuturesTimeout:
                self._abandon(futures[i:])
                raise TaskTimeoutError(
                    f"task group barrier overran its {timeout:g}s "
                    f"deadline ({len(futures) - i} task(s) unfinished)"
                ) from None
            except BaseException as exc:  # noqa: BLE001 - barrier must drain
                fn, args, kwargs, retryable = tasks[i]
                if retryable and isinstance(exc, Exception):
                    telemetry.incr("pool.task_retries")
                    try:
                        results.append(fn(*args, **kwargs))
                        continue
                    except Exception as retry_exc:  # retry failed too
                        exc = retry_exc
                if first_exc is None:
                    first_exc = exc
        if first_exc is not None:
            raise first_exc
        return results

    @staticmethod
    def _abandon(futures: list[Future]) -> None:
        """Cancel what can be cancelled; swallow the rest's outcomes so
        abandoned futures never warn "exception was never retrieved"."""
        for f in futures:
            f.cancel()
            f.add_done_callback(lambda fut: fut.cancelled() or
                                fut.exception())


# --------------------------------------------------------------------------
# parallel element-wise kernels (bandwidth-bound work of Section 4.5)
# --------------------------------------------------------------------------
def _row_slabs(nrows: int, parts: int) -> list[slice]:
    bounds = np.linspace(0, nrows, parts + 1).astype(int)
    return [slice(a, b) for a, b in zip(bounds[:-1], bounds[1:]) if b > a]


def parallel_copy(pool: WorkerPool, dst: np.ndarray, src: np.ndarray) -> None:
    g = pool.group()
    for sl in _row_slabs(dst.shape[0], pool.workers):
        # a slab copy is idempotent: a crashed worker's slab can simply
        # be copied again by the waiter
        g.run(np.copyto, dst[sl], src[sl], retryable=True)
    g.wait()


def parallel_axpy(
    pool: WorkerPool, out: np.ndarray, x: np.ndarray, alpha: float,
    scratch: np.ndarray | None = None,
) -> None:
    """``out += alpha * x`` split row-wise across the pool.

    ``scratch`` (an untyped byte buffer of at least ``out.nbytes``) absorbs
    the ``alpha * x`` product for general ``alpha`` so the update stays
    allocation-free; slabs write disjoint scratch rows, so one buffer
    serves every worker.
    """
    alpha = float(alpha)  # numpy scalars would upcast float32 slabs (NEP 50)
    view = None
    if scratch is not None:
        view = scratch_view(scratch, out.shape, out.dtype)

    def work(sl: slice) -> None:
        if alpha == 1.0:
            np.add(out[sl], x[sl], out=out[sl])
        elif alpha == -1.0:
            np.subtract(out[sl], x[sl], out=out[sl])
        elif view is not None:
            np.multiply(x[sl], alpha, out=view[sl])
            np.add(out[sl], view[sl], out=out[sl])
        else:
            out[sl] += alpha * x[sl]

    # NOT retryable: `out += ...` accumulates in place, so a re-run after
    # a partially-applied slab would double-add
    g = pool.group()
    for sl in _row_slabs(out.shape[0], pool.workers):
        g.run(work, sl)
    g.wait()


def parallel_combine(
    pool: WorkerPool,
    out: np.ndarray,
    blocks: Sequence[np.ndarray],
    coeffs: Sequence[float],
    scratch: np.ndarray | None = None,
) -> None:
    """``out = sum_i coeffs[i] * blocks[i]`` with row-slab parallelism.

    This is how the DFS scheme parallelizes every addition chain ("matrix
    additions are trivially parallelized", Section 4.1).  ``scratch``
    (bytes, >= ``out.nbytes``) makes general-coefficient terms
    allocation-free, as in :func:`parallel_axpy`.
    """
    # python-float coefficients: a numpy float64 scalar would silently
    # upcast float32 slabs under NEP 50
    nz = [(float(c), blk) for c, blk in zip(coeffs, blocks) if c != 0.0]
    if not nz:
        out[:] = 0.0
        return
    view = None
    if scratch is not None and any(c not in (1.0, -1.0) for c, _ in nz[1:]):
        view = scratch_view(scratch, out.shape, out.dtype)

    def work(sl: slice) -> None:
        c0, b0 = nz[0]
        if c0 == 1.0:
            np.copyto(out[sl], b0[sl])
        else:
            np.multiply(b0[sl], c0, out=out[sl])
        for c, blk in nz[1:]:
            if c == 1.0:
                np.add(out[sl], blk[sl], out=out[sl])
            elif c == -1.0:
                np.subtract(out[sl], blk[sl], out=out[sl])
            elif view is not None:
                np.multiply(blk[sl], c, out=view[sl])
                np.add(out[sl], view[sl], out=out[sl])
            else:
                out[sl] += c * blk[sl]

    # retryable: each slab starts from a copyto/multiply of its first
    # term, so re-running it recomputes the slab from scratch
    g = pool.group()
    for sl in _row_slabs(out.shape[0], pool.workers):
        g.run(work, sl, retryable=True)
    g.wait()
