"""Worker pool with OpenMP-task-like semantics.

The paper parallelizes with OpenMP tasks plus ``taskwait`` barriers
(Section 4.4).  Python threads + numpy reproduce this honestly because the
heavy primitives (BLAS gemm, large-array ufuncs) release the GIL, so leaf
multiplications and matrix additions genuinely overlap.

``TaskGroup`` mirrors ``#pragma omp taskwait``: submit tasks, then ``wait``
for all of them; exceptions in workers propagate to the waiter.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.workspace import scratch_view


def available_cores() -> int:
    """Cores available to this process (the paper's "P threads")."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_threads(threads: int | None) -> int:
    """Validate an explicit thread count, defaulting ``None`` to all cores.

    ``threads=0`` used to silently mean "all cores" through ``threads or
    available_cores()`` expressions, masking caller bugs; only ``None``
    carries that meaning now.
    """
    if threads is None:
        return available_cores()
    if not isinstance(threads, int) or isinstance(threads, bool) or threads < 1:
        raise ValueError(
            f"threads must be a positive integer or None (got {threads!r}); "
            "pass None for the all-cores default"
        )
    return threads


class WorkerPool:
    """Thin, persistent thread pool with barrier-style task groups."""

    def __init__(self, workers: int | None = None):
        self.workers = workers or available_cores()
        self._ex = ThreadPoolExecutor(max_workers=self.workers)

    # -- task API ----------------------------------------------------------
    def submit(self, fn: Callable, *args, **kwargs) -> Future:
        return self._ex.submit(fn, *args, **kwargs)

    def map_wait(self, fn: Callable, items: Iterable) -> list:
        """Submit ``fn(item)`` for every item and wait (ordered results).

        Routed through :meth:`submit` so subclasses (e.g. the tracing pool)
        see every task.
        """
        futures = [self.submit(fn, it) for it in items]
        return [f.result() for f in futures]

    def group(self) -> "TaskGroup":
        return TaskGroup(self)

    # -- lifecycle ----------------------------------------------------------
    def shutdown(self) -> None:
        self._ex.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class TaskGroup:
    """Collects futures; ``wait()`` is the ``taskwait`` barrier."""

    def __init__(self, pool: WorkerPool):
        self._pool = pool
        self._futures: list[Future] = []

    def run(self, fn: Callable, *args, **kwargs) -> Future:
        fut = self._pool.submit(fn, *args, **kwargs)  # honors subclasses
        self._futures.append(fut)
        return fut

    def wait(self) -> list:
        """Barrier: results of every submitted task, in submission order.

        Every future is retrieved even when an early one raises --
        abandoning the rest would leak "exception was never retrieved"
        warnings and leave ``_futures`` populated for a reused group.  The
        first exception (in submission order) is re-raised after the
        barrier completes.
        """
        futures, self._futures = self._futures, []
        results: list = []
        first_exc: BaseException | None = None
        for f in futures:
            try:
                results.append(f.result())
            except BaseException as exc:  # noqa: BLE001 - barrier must drain
                if first_exc is None:
                    first_exc = exc
        if first_exc is not None:
            raise first_exc
        return results


# --------------------------------------------------------------------------
# parallel element-wise kernels (bandwidth-bound work of Section 4.5)
# --------------------------------------------------------------------------
def _row_slabs(nrows: int, parts: int) -> list[slice]:
    bounds = np.linspace(0, nrows, parts + 1).astype(int)
    return [slice(a, b) for a, b in zip(bounds[:-1], bounds[1:]) if b > a]


def parallel_copy(pool: WorkerPool, dst: np.ndarray, src: np.ndarray) -> None:
    g = pool.group()
    for sl in _row_slabs(dst.shape[0], pool.workers):
        g.run(np.copyto, dst[sl], src[sl])
    g.wait()


def parallel_axpy(
    pool: WorkerPool, out: np.ndarray, x: np.ndarray, alpha: float,
    scratch: np.ndarray | None = None,
) -> None:
    """``out += alpha * x`` split row-wise across the pool.

    ``scratch`` (an untyped byte buffer of at least ``out.nbytes``) absorbs
    the ``alpha * x`` product for general ``alpha`` so the update stays
    allocation-free; slabs write disjoint scratch rows, so one buffer
    serves every worker.
    """
    alpha = float(alpha)  # numpy scalars would upcast float32 slabs (NEP 50)
    view = None
    if scratch is not None:
        view = scratch_view(scratch, out.shape, out.dtype)

    def work(sl: slice) -> None:
        if alpha == 1.0:
            np.add(out[sl], x[sl], out=out[sl])
        elif alpha == -1.0:
            np.subtract(out[sl], x[sl], out=out[sl])
        elif view is not None:
            np.multiply(x[sl], alpha, out=view[sl])
            np.add(out[sl], view[sl], out=out[sl])
        else:
            out[sl] += alpha * x[sl]

    g = pool.group()
    for sl in _row_slabs(out.shape[0], pool.workers):
        g.run(work, sl)
    g.wait()


def parallel_combine(
    pool: WorkerPool,
    out: np.ndarray,
    blocks: Sequence[np.ndarray],
    coeffs: Sequence[float],
    scratch: np.ndarray | None = None,
) -> None:
    """``out = sum_i coeffs[i] * blocks[i]`` with row-slab parallelism.

    This is how the DFS scheme parallelizes every addition chain ("matrix
    additions are trivially parallelized", Section 4.1).  ``scratch``
    (bytes, >= ``out.nbytes``) makes general-coefficient terms
    allocation-free, as in :func:`parallel_axpy`.
    """
    # python-float coefficients: a numpy float64 scalar would silently
    # upcast float32 slabs under NEP 50
    nz = [(float(c), blk) for c, blk in zip(coeffs, blocks) if c != 0.0]
    if not nz:
        out[:] = 0.0
        return
    view = None
    if scratch is not None and any(c not in (1.0, -1.0) for c, _ in nz[1:]):
        view = scratch_view(scratch, out.shape, out.dtype)

    def work(sl: slice) -> None:
        c0, b0 = nz[0]
        if c0 == 1.0:
            np.copyto(out[sl], b0[sl])
        else:
            np.multiply(b0[sl], c0, out=out[sl])
        for c, blk in nz[1:]:
            if c == 1.0:
                np.add(out[sl], blk[sl], out=out[sl])
            elif c == -1.0:
                np.subtract(out[sl], blk[sl], out=out[sl])
            elif view is not None:
                np.multiply(blk[sl], c, out=view[sl])
                np.add(out[sl], view[sl], out=out[sl])
            else:
                out[sl] += c * blk[sl]

    g = pool.group()
    for sl in _row_slabs(out.shape[0], pool.workers):
        g.run(work, sl)
    g.wait()
