"""Shared-memory parallel execution (paper Section 4).

``blas`` controls the vendor BLAS thread count; ``pool`` provides
OpenMP-task-like groups with taskwait barriers; ``gemm``/``add`` are the
compute- and bandwidth-bound substrates; ``schedules`` implements the DFS,
BFS and HYBRID fast-multiply schemes.
"""

from repro.parallel.blas import blas_threads, get_threads, is_controllable, set_threads
from repro.parallel.gemm import dgemm, tiled_gemm
from repro.parallel.pool import WorkerPool, available_cores, resolve_threads
from repro.parallel.schedules import SCHEMES, default_subgroup, multiply_parallel

__all__ = [
    "default_subgroup",
    "blas_threads",
    "get_threads",
    "is_controllable",
    "set_threads",
    "dgemm",
    "tiled_gemm",
    "WorkerPool",
    "available_cores",
    "resolve_threads",
    "SCHEMES",
    "multiply_parallel",
]
