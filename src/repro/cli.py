"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands map onto the library's main entry points:

- ``list``      — the algorithm catalog as a Table-2-style summary;
- ``verify``    — exactness/residual check of catalog entries;
- ``multiply``  — time one fast multiply against the vendor BLAS and
  report effective GFLOPS (Eq. 3), sequential or parallel, optionally
  through the native C chain backend;
- ``codegen``   — print the generated Python (or C) source for an
  algorithm/strategy/CSE combination;
- ``search``    — run the §2.3 ALS search (delegates to
  ``repro.search.driver``).

Each subcommand is also importable as a function for tests
(``cmd_list``, ``cmd_verify``, ...); they return process exit codes.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="python -m repro",
        description="Practical parallel fast matrix multiplication "
                    "(Benson & Ballard, PPoPP 2015 reproduction)",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="show the algorithm catalog (Table 2)")
    p.add_argument("--apa", action="store_true", help="include APA entries")

    p = sub.add_parser("verify", help="validate catalog decompositions")
    p.add_argument("names", nargs="*", help="algorithm names (default: all)")

    p = sub.add_parser("multiply", help="time a fast multiply vs BLAS")
    p.add_argument("--algorithm", "-a", default="strassen")
    p.add_argument("--shape", nargs=3, type=int, metavar=("P", "Q", "R"),
                   default=None, help="problem shape (default: square --size)")
    p.add_argument("--size", "-n", type=int, default=1024)
    p.add_argument("--steps", "-s", type=int, default=1)
    p.add_argument("--trials", type=int, default=5, help="median-of-k trials")
    p.add_argument("--parallel", action="store_true")
    p.add_argument("--scheme", default="hybrid",
                   choices=["dfs", "bfs", "hybrid", "hybrid-subgroup"])
    p.add_argument("--threads", type=int, default=None)
    p.add_argument("--native", action="store_true",
                   help="use the compiled C chain backend")
    p.add_argument("--blas-threads", type=int, default=None,
                   help="pin the vendor BLAS thread count for both sides")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("codegen", help="print generated source")
    p.add_argument("--algorithm", "-a", default="strassen")
    p.add_argument("--strategy", default="write_once",
                   choices=["pairwise", "write_once", "streaming"])
    p.add_argument("--cse", action="store_true")
    p.add_argument("--c", dest="c_source", action="store_true",
                   help="emit the native C chains instead of Python")

    p = sub.add_parser("search", help="ALS search for a new algorithm "
                                      "(see repro.search.driver)")
    p.add_argument("rest", nargs=argparse.REMAINDER,
                   help="arguments forwarded to repro.search.driver")
    return ap


# ---------------------------------------------------------------- commands
def cmd_list(args, out=sys.stdout) -> int:
    from repro.algorithms import get_algorithm, table2

    print(f"{'name':>14} {'base':>9} {'rank':>5} {'paper':>6} {'classical':>9} "
          f"{'speedup/step':>12} {'nnz':>6} {'kind':>6}  provenance", file=out)
    for e in table2():
        if e.apa and not args.apa:
            continue
        nnz = sum(get_algorithm(e.name).nnz())
        kind = "APA" if e.apa else "exact"
        base = "<%d,%d,%d>" % e.base_case
        paper = "-" if e.paper_rank is None else str(e.paper_rank)
        print(f"{e.name:>14} {base:>9} {e.rank:>5} {paper:>6} "
              f"{e.classical_rank:>9} {100 * e.speedup_per_step:>11.0f}% "
              f"{nnz:>6} {kind:>6}  {e.provenance}", file=out)
    return 0


def cmd_verify(args, out=sys.stdout) -> int:
    from repro.algorithms import get_algorithm, list_algorithms

    names = args.names or list_algorithms()
    worst = 0.0
    failures = 0
    for name in names:
        alg = get_algorithm(name)
        resid = alg.residual()
        ok = alg.apa or resid <= 1e-9
        failures += not ok
        worst = max(worst, 0.0 if alg.apa else resid)
        status = "APA " if alg.apa else ("ok  " if ok else "FAIL")
        print(f"{name:>14} <{alg.m},{alg.k},{alg.n}> rank {alg.rank:>3} "
              f"residual {resid:.2e}  {status}", file=out)
    print(f"{len(names)} checked, {failures} failures, "
          f"worst exact residual {worst:.2e}", file=out)
    return 1 if failures else 0


def cmd_multiply(args, out=sys.stdout) -> int:
    import repro
    from repro.bench.metrics import effective_gflops, median_time

    p, q, r = args.shape if args.shape else (args.size,) * 3
    rng = np.random.default_rng(args.seed)
    A = rng.standard_normal((p, q))
    B = rng.standard_normal((q, r))

    if args.native:
        from repro.codegen import cbackend

        cc = cbackend.compile_chains(args.algorithm)
        fast = lambda: cc.multiply(A, B, steps=args.steps)  # noqa: E731
        label = f"{args.algorithm} (native chains)"
    elif args.parallel:
        fast = lambda: repro.multiply(  # noqa: E731
            A, B, algorithm=args.algorithm, steps=args.steps,
            parallel=True, scheme=args.scheme, threads=args.threads)
        label = f"{args.algorithm} ({args.scheme})"
    else:
        fast = lambda: repro.multiply(  # noqa: E731
            A, B, algorithm=args.algorithm, steps=args.steps)
        label = args.algorithm

    if args.blas_threads is not None:
        from repro.parallel import blas

        with blas.blas_threads(args.blas_threads):
            t_blas = median_time(lambda: A @ B, trials=args.trials)
            t_fast = median_time(fast, trials=args.trials)
    else:
        t_blas = median_time(lambda: A @ B, trials=args.trials)
        t_fast = median_time(fast, trials=args.trials)
    C = fast()
    err = float(np.linalg.norm(C - A @ B) / np.linalg.norm(A @ B))
    print(f"shape {p}x{q}x{r}, steps={args.steps}", file=out)
    print(f"{'vendor BLAS':>24}: {t_blas:8.4f}s "
          f"{effective_gflops(p, q, r, t_blas):8.2f} eff.GFLOPS", file=out)
    print(f"{label:>24}: {t_fast:8.4f}s "
          f"{effective_gflops(p, q, r, t_fast):8.2f} eff.GFLOPS "
          f"(speedup {t_blas / t_fast:5.2f}x, rel.err {err:.1e})", file=out)
    return 0


def cmd_codegen(args, out=sys.stdout) -> int:
    from repro.algorithms import get_algorithm

    alg = get_algorithm(args.algorithm)
    if args.c_source:
        from repro.codegen import cbackend

        print(cbackend.generate_c_source(alg, cse=args.cse), file=out)
    else:
        from repro.codegen import generate_source

        print(generate_source(alg, strategy=args.strategy, cse=args.cse),
              file=out)
    return 0


def cmd_search(args, out=sys.stdout) -> int:
    from repro.search import driver

    return driver.main(args.rest)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "search":
        # forward verbatim: the driver owns its own argparse (REMAINDER
        # would otherwise swallow/reject the driver's flags)
        from repro.search import driver

        return driver.main(argv[1:])
    args = _build_parser().parse_args(argv)
    handler = {
        "list": cmd_list,
        "verify": cmd_verify,
        "multiply": cmd_multiply,
        "codegen": cmd_codegen,
        "search": cmd_search,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # output truncated by a downstream pipe (e.g. `| head`): not an error
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
