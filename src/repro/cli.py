"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands map onto the library's main entry points:

- ``list``      — the algorithm catalog as a Table-2-style summary;
- ``verify``    — exactness/residual check of catalog entries;
- ``multiply``  — time one fast multiply against the vendor BLAS and
  report effective GFLOPS (Eq. 3), sequential or parallel, optionally
  through the native C chain backend; ``--auto`` lets the tuner's plan
  cache / cost model pick the algorithm instead;
- ``tune``      — sweep candidate plans for a set of shapes under a time
  budget and persist the winners to the plan cache (``repro.tuner``);
  ``--policy online`` instead explores during simulated dispatch traffic
  (the budgeted epsilon-greedy policy of ``repro.tuner.policy``) and
  ``--policy ucb`` drives the same traffic with deterministic UCB1; with
  ``--threads > 1`` the candidate space spans the parallel schemes and
  the hybrid-subgroup P' divisors;
- ``cache``     — inspect (``show``), invalidate (``invalidate``), or
  health-check (``doctor``) the plan cache; entries tuned under another
  machine fingerprint or a pre-P'-sweep schema are shown as stale (with
  scheme/P' columns for parallel plans) and are the default target of
  invalidation; ``doctor`` additionally reports quarantined plans (the
  ``repro.guard`` failure ledger), unparsable entries, corrupt-file
  sidecars, and load errors, and ``doctor --fix`` repairs what it can;
- ``codegen``   — print the generated Python (or C) source for an
  algorithm/strategy/CSE combination;
- ``search``    — run the §2.3 ALS search (delegates to
  ``repro.search.driver``);
- ``stats``     — report the unified telemetry registry (``repro.obs``):
  dispatch plan sources, cache hit ratio, arena health, per-scheme span
  totals; ``--format json|prom`` for machines, ``--reset`` to clear.
  Reads the live in-process registry when it has data, else the snapshot
  file a ``repro multiply --auto`` run saved.

Each subcommand is also importable as a function for tests
(``cmd_list``, ``cmd_verify``, ...); they return process exit codes.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="python -m repro",
        description="Practical parallel fast matrix multiplication "
                    "(Benson & Ballard, PPoPP 2015 reproduction)",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="show the algorithm catalog (Table 2)")
    p.add_argument("--apa", action="store_true", help="include APA entries")

    p = sub.add_parser("verify", help="validate catalog decompositions")
    p.add_argument("names", nargs="*", help="algorithm names (default: all)")

    p = sub.add_parser("multiply", help="time a fast multiply vs BLAS")
    p.add_argument("--algorithm", "-a", default="strassen")
    p.add_argument("--shape", nargs=3, type=int, metavar=("P", "Q", "R"),
                   default=None, help="problem shape (default: square --size)")
    p.add_argument("--size", "-n", type=int, default=1024)
    p.add_argument("--steps", "-s", type=int, default=1)
    p.add_argument("--trials", type=int, default=5, help="median-of-k trials")
    p.add_argument("--parallel", action="store_true")
    p.add_argument("--scheme", default="hybrid",
                   choices=["dfs", "bfs", "hybrid", "hybrid-subgroup"])
    p.add_argument("--threads", type=int, default=None)
    p.add_argument("--subgroup", type=int, default=None,
                   help="P' of the hybrid-subgroup scheme (must divide the "
                        "thread count; default: threads // 2)")
    p.add_argument("--native", action="store_true",
                   help="use the compiled C chain backend")
    p.add_argument("--backend", default="auto",
                   choices=["auto", "numpy", "compiled"],
                   help="serving backend: 'compiled' forces the native C "
                        "chain kernels, 'numpy' the generated NumPy "
                        "module; 'auto' (default) lets the tuner sweep "
                        "both where the compiler is available")
    p.add_argument("--blas-threads", type=int, default=None,
                   help="pin the vendor BLAS thread count for both sides")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--auto", action="store_true",
                   help="let the tuner pick the plan (ignores --algorithm); "
                        "runs with telemetry on and saves an obs snapshot "
                        "for a later `repro stats`")
    p.add_argument("--explain", action="store_true",
                   help="print the full dispatch decision trace (ranked "
                        "shortlist, chosen plan + source, arena footprint) "
                        "for one call; implies --auto")
    p.add_argument("--cache", default=None,
                   help="plan-cache file for --auto (default: "
                        "$REPRO_PLAN_CACHE or ~/.cache/repro)")
    p.add_argument("--batch", type=int, default=None, metavar="N",
                   help="multiply a batch of N same-shape products through "
                        "repro.matmul_batched (one plan/arena/pool for the "
                        "whole batch) and compare against the stacked "
                        "vendor BLAS; with --explain, also prints the "
                        "batch-mode (within vs elementwise) decision")
    p.add_argument("--guard", action="store_true",
                   help="run through the repro.guard fallback chain "
                        "(tuned plan -> cost-model plan -> classical "
                        "BLAS); with --explain, also prints the guard "
                        "counters the call left behind")

    p = sub.add_parser("tune", help="tune plans for a set of shapes and "
                                    "persist them to the plan cache")
    p.add_argument("--shapes", nargs="+", metavar="PxQxR",
                   default=["1024x1024x1024", "1024x416x1024", "2048x416x416"],
                   help="problem shapes, e.g. 1536x1536x1536 (default: one "
                        "per paper regime: square, outer product, "
                        "tall-skinny)")
    p.add_argument("--threads", type=int, default=None,
                   help="thread count to tune for (default: all cores, "
                        "matching repro.matmul's dispatch default)")
    p.add_argument("--dtype", default="float64",
                   choices=["float32", "float64"])
    p.add_argument("--budget-seconds", type=float, default=30.0,
                   help="wall-clock budget per shape")
    p.add_argument("--trials", type=int, default=3, help="median-of-k trials")
    p.add_argument("--candidates", type=int, default=8,
                   help="size of the measured shortlist per shape")
    p.add_argument("--cache", default=None,
                   help="plan-cache file (default: $REPRO_PLAN_CACHE or "
                        "~/.cache/repro/plan_cache.json)")
    p.add_argument("--csv", default=None,
                   help="also export the measurements as CSV")
    p.add_argument("--dry-run", action="store_true",
                   help="list the ranked candidate plans without timing")
    p.add_argument("--policy", default="offline",
                   choices=["offline", "online", "ucb"],
                   help="offline: blocking measurement sweep (default); "
                        "online: epsilon-greedy exploration during "
                        "simulated dispatch traffic; ucb: the same "
                        "amortized traffic driven by deterministic UCB1 "
                        "-- with --threads > 1 both online policies "
                        "explore the parallel shortlist including the "
                        "hybrid-subgroup P' sweep")
    p.add_argument("--dispatches", type=int, default=16,
                   help="simulated dispatches per shape for "
                        "--policy online/ucb")
    p.add_argument("--seed", type=int, default=0,
                   help="operand-generation seed (tunes are reproducible "
                        "given the same seed)")

    p = sub.add_parser("cache", help="inspect, invalidate, or health-check "
                                     "the plan cache")
    p.add_argument("action", choices=["show", "invalidate", "doctor"])
    p.add_argument("--cache", default=None,
                   help="plan-cache file (default: $REPRO_PLAN_CACHE or "
                        "~/.cache/repro/plan_cache.json)")
    p.add_argument("--all", action="store_true",
                   help="invalidate every entry, not just fingerprint-stale "
                        "ones")
    p.add_argument("--fix", action="store_true",
                   help="with doctor: drop unparsable entries, invalidate "
                        "stale ones, clear the failure ledger, remove the "
                        ".corrupt sidecar, and rewrite the cache file")

    p = sub.add_parser("codegen", help="print generated source")
    p.add_argument("--algorithm", "-a", default="strassen")
    p.add_argument("--strategy", default="write_once",
                   choices=["pairwise", "write_once", "streaming"])
    p.add_argument("--cse", action="store_true")
    p.add_argument("--c", dest="c_source", action="store_true",
                   help="emit the native C chains instead of Python")

    p = sub.add_parser("search", help="ALS search for a new algorithm "
                                      "(see repro.search.driver)")
    p.add_argument("rest", nargs=argparse.REMAINDER,
                   help="arguments forwarded to repro.search.driver")

    p = sub.add_parser("analyze", help="static analysis: symbolic kernel "
                                       "verification, arena-discipline and "
                                       "concurrency lint, catalog validation")
    p.add_argument("--all", dest="run_all", action="store_true",
                   help="run every analyzer (default when none is selected)")
    for name, text in (
            ("symbolic", "prove every generated kernel computes its scheme"),
            ("cemit", "prove the emitted C chain kernels compute their "
                      "scheme (no compiler needed)"),
            ("arena", "mark/release scoping, escapes, footprint budgets"),
            ("concurrency", "unlocked shared-state mutation, hot-path "
                            "allocation"),
            ("catalog", "shape/dtype/residual validation of catalog "
                        "entries")):
        p.add_argument(f"--{name}", dest="analyzers", action="append_const",
                       const=name, help=text)
    p.add_argument("--algorithm", "-a", action="append", dest="algorithms",
                   default=None, metavar="NAME",
                   help="restrict symbolic/arena passes to these catalog "
                        "entries (repeatable; default: all)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable findings instead of a summary")

    p = sub.add_parser("stats", help="report the repro.obs telemetry "
                                     "registry (dispatch sources, arena "
                                     "health, span totals)")
    p.add_argument("--format", default="human",
                   choices=["human", "json", "prom"],
                   help="human summary (default), raw JSON snapshot, or "
                        "Prometheus text exposition")
    p.add_argument("--reset", action="store_true",
                   help="clear the registry (and the snapshot file, when "
                        "that is what was reported) after reporting")
    p.add_argument("--snapshot", default=None,
                   help="snapshot file to fall back to when the live "
                        "registry is empty (default: $REPRO_OBS_SNAPSHOT "
                        "or ~/.cache/repro/obs_snapshot.json)")
    return ap


# ---------------------------------------------------------------- commands
def cmd_list(args, out=sys.stdout) -> int:
    from repro.algorithms import get_algorithm, table2

    print(f"{'name':>14} {'base':>9} {'rank':>5} {'paper':>6} {'classical':>9} "
          f"{'speedup/step':>12} {'nnz':>6} {'kind':>6}  provenance", file=out)
    for e in table2():
        if e.apa and not args.apa:
            continue
        nnz = sum(get_algorithm(e.name).nnz())
        kind = "APA" if e.apa else "exact"
        base = "<%d,%d,%d>" % e.base_case
        paper = "-" if e.paper_rank is None else str(e.paper_rank)
        print(f"{e.name:>14} {base:>9} {e.rank:>5} {paper:>6} "
              f"{e.classical_rank:>9} {100 * e.speedup_per_step:>11.0f}% "
              f"{nnz:>6} {kind:>6}  {e.provenance}", file=out)
    return 0


def cmd_verify(args, out=sys.stdout) -> int:
    from repro.algorithms import get_algorithm, list_algorithms

    names = args.names or list_algorithms()
    worst = 0.0
    failures = 0
    for name in names:
        alg = get_algorithm(name)
        resid = alg.residual()
        ok = alg.apa or resid <= 1e-9
        failures += not ok
        worst = max(worst, 0.0 if alg.apa else resid)
        status = "APA " if alg.apa else ("ok  " if ok else "FAIL")
        print(f"{name:>14} <{alg.m},{alg.k},{alg.n}> rank {alg.rank:>3} "
              f"residual {resid:.2e}  {status}", file=out)
    print(f"{len(names)} checked, {failures} failures, "
          f"worst exact residual {worst:.2e}", file=out)
    return 1 if failures else 0


def cmd_multiply(args, out=sys.stdout) -> int:
    import repro
    from repro.bench.metrics import effective_gflops, median_time

    if args.subgroup is not None:
        # validate up front: a bad P' must be an argparse-style error, not
        # a traceback from deep inside the hybrid's remainder phase
        if not (args.parallel and args.scheme == "hybrid-subgroup"):
            print("error: --subgroup requires --parallel "
                  "--scheme hybrid-subgroup", file=sys.stderr)
            return 2
        from repro.parallel import available_cores

        threads = args.threads or available_cores()
        if args.subgroup < 1 or threads % args.subgroup:
            print(f"error: --subgroup must be a divisor of the thread "
                  f"count ({threads}), got {args.subgroup}",
                  file=sys.stderr)
            return 2

    if args.guard:
        # guarded execution lives in the dispatch entry point
        args.auto = True
    p, q, r = args.shape if args.shape else (args.size,) * 3
    if args.batch is not None and args.batch < 1:
        print(f"error: --batch must be >= 1, got {args.batch}",
              file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    A = rng.standard_normal((p, q))
    B = rng.standard_normal((q, r))

    if args.explain:
        from repro import tuner

        cache = tuner.PlanCache(args.cache) if args.cache else None
        return _explain(args, A, B, p, q, r, cache, out)

    if args.batch:
        return _multiply_batched(args, p, q, r, rng, out)

    if args.auto:
        from repro import obs, tuner

        # --auto runs observed: the dispatch records/counters the run
        # leaves behind are what a follow-up `repro stats` reports
        obs.enable()
        cache = tuner.PlanCache(args.cache) if args.cache else None
        plan, source = tuner.get_plan(
            p, q, r, dtype=np.result_type(A, B).name,
            threads=args.threads, cache=cache,
        )
        if args.backend != "auto":
            # forcing a backend bypasses plan re-resolution: retarget the
            # resolved plan and execute it directly (arena included)
            try:
                plan = tuner.retarget_backend(plan, args.backend)
            except ValueError as exc:
                print(f"error: --backend {args.backend}: {exc}",
                      file=sys.stderr)
                return 2
            ws = tuner.workspace_for(plan, p, q, r, A.dtype, B.dtype)
            fast = lambda: tuner.execute_plan(  # noqa: E731
                plan, A, B, workspace=ws)
            label = f"auto: {plan.describe()} [forced {args.backend}]"
        else:
            # dispatch through the real entry point (plan lookup, arena,
            # pool and telemetry all included), so the printed numbers
            # describe what repro.matmul actually does for this shape
            fast = lambda: tuner.matmul(  # noqa: E731
                A, B, threads=args.threads, cache=cache,
                guard=True if args.guard else None)
            label = (f"auto: {plan.describe()} [{source}]"
                     + (" +guard" if args.guard else ""))
    elif args.native or args.backend == "compiled":
        from repro.codegen import cbackend

        cc = cbackend.compile_chains(args.algorithm)
        fast = lambda: cc.multiply(A, B, steps=args.steps)  # noqa: E731
        label = f"{args.algorithm} (native chains)"
    elif args.parallel:
        fast = lambda: repro.multiply(  # noqa: E731
            A, B, algorithm=args.algorithm, steps=args.steps,
            parallel=True, scheme=args.scheme, threads=args.threads,
            subgroup=args.subgroup)
        label = f"{args.algorithm} ({args.scheme})"
    else:
        fast = lambda: repro.multiply(  # noqa: E731
            A, B, algorithm=args.algorithm, steps=args.steps)
        label = args.algorithm

    if args.blas_threads is not None:
        from repro.parallel import blas

        with blas.blas_threads(args.blas_threads):
            t_blas = median_time(lambda: A @ B, trials=args.trials)
            t_fast = median_time(fast, trials=args.trials)
    else:
        t_blas = median_time(lambda: A @ B, trials=args.trials)
        t_fast = median_time(fast, trials=args.trials)
    C = fast()
    err = float(np.linalg.norm(C - A @ B) / np.linalg.norm(A @ B))
    print(f"shape {p}x{q}x{r}, steps={args.steps}", file=out)
    print(f"{'vendor BLAS':>24}: {t_blas:8.4f}s "
          f"{effective_gflops(p, q, r, t_blas):8.2f} eff.GFLOPS", file=out)
    print(f"{label:>24}: {t_fast:8.4f}s "
          f"{effective_gflops(p, q, r, t_fast):8.2f} eff.GFLOPS "
          f"(speedup {t_blas / t_fast:5.2f}x, rel.err {err:.1e})", file=out)
    if args.auto:
        from repro import obs

        path = obs.save_snapshot()
        if path is not None:
            print(f"telemetry snapshot: {path} (inspect with "
                  f"`python -m repro stats`)", file=out)
    return 0


def _multiply_batched(args, p: int, q: int, r: int, rng, out) -> int:
    """``repro multiply --batch N``: one amortized batched call vs the
    stacked vendor BLAS (per-batch and per-element numbers)."""
    from repro import tuner
    from repro.bench.metrics import effective_gflops, median_time

    batch = args.batch
    cache = tuner.PlanCache(args.cache) if args.cache else None
    A = rng.standard_normal((batch, p, q))
    B = rng.standard_normal((batch, q, r))
    bplan, source = tuner.get_batch_plan(
        p, q, r, batch, dtype=np.result_type(A, B).name,
        threads=args.threads, cache=cache,
    )
    C = np.empty((batch, p, r), dtype=np.result_type(A, B))
    fast = lambda: tuner.matmul_batched(  # noqa: E731
        A, B, out=C, threads=args.threads, cache=cache,
        guard=True if args.guard else None)
    t_blas = median_time(lambda: np.matmul(A, B), trials=args.trials)
    t_fast = median_time(fast, trials=args.trials)
    fast()
    ref = np.matmul(A, B)
    err = float(np.linalg.norm(C - ref) / np.linalg.norm(ref))
    label = f"batched: {bplan.describe()} [{source}]"
    print(f"shape {p}x{q}x{r} x batch {batch}", file=out)
    print(f"{'stacked vendor BLAS':>40}: {t_blas:8.4f}s "
          f"{effective_gflops(p, q, r, t_blas / batch):8.2f} eff.GFLOPS/elem",
          file=out)
    print(f"{label:>40}: {t_fast:8.4f}s "
          f"{effective_gflops(p, q, r, t_fast / batch):8.2f} eff.GFLOPS/elem "
          f"(speedup {t_blas / t_fast:5.2f}x, rel.err {err:.1e})", file=out)
    return 0


def _explain(args, A, B, p: int, q: int, r: int, cache, out) -> int:
    """``repro multiply --explain``: the full decision trace of one call.

    Everything dispatch decides silently, spelled out: the cost-ranked
    candidate shortlist with model scores, the resolved plan and where it
    came from (cache / nearest / transfer / model), the arena that will
    serve it, then one observed call with its dispatch record and span
    timings.
    """
    from repro import obs, tuner
    from repro.algorithms import get_algorithm
    from repro.core.cost import plan_cost
    from repro.parallel import available_cores

    obs.enable()
    threads = args.threads or available_cores()
    dtype = np.result_type(A, B).name
    print(f"== decision trace: {p}x{q}x{r} {dtype}, {threads} threads ==",
          file=out)

    plans = tuner.enumerate_plans(p, q, r, threads=threads, dtype=dtype,
                                  max_candidates=8)
    print("cost-ranked shortlist (analytical model):", file=out)
    for i, pl in enumerate(plans, 1):
        alg = None if pl.is_dgemm else get_algorithm(pl.algorithm)
        cost = plan_cost(alg, p, q, r, pl.steps, scheme=pl.scheme,
                         threads=pl.threads, subgroup=pl.subgroup,
                         backend=pl.backend)
        print(f"  #{i} {pl.describe():<40} cost {cost:.4g}", file=out)

    plan, source = tuner.get_plan(p, q, r, dtype=dtype, threads=threads,
                                  cache=cache)
    if args.backend != "auto":
        try:
            plan = tuner.retarget_backend(plan, args.backend)
        except ValueError as exc:
            print(f"error: --backend {args.backend}: {exc}",
                  file=sys.stderr)
            return 2
        source = f"{source}, backend forced"
    print(f"chosen plan: {plan.describe()}  [source: {source}]", file=out)
    avail = ("available" if tuner.compiled_backend_available()
             else "unavailable: no C toolchain")
    print(f"backend: {plan.backend} (compiled chains {avail})", file=out)
    ws = tuner.workspace_for(plan, p, q, r, A.dtype, B.dtype)
    if ws is None:
        print("arena footprint: none (plain BLAS needs no workspace)",
              file=out)
    else:
        print(f"arena footprint: {ws.nbytes:,} bytes", file=out)

    if args.backend != "auto":
        # the forced-backend plan must be the one observed, so execute it
        # directly instead of letting matmul re-resolve
        C = tuner.execute_plan(plan, A, B, workspace=ws)
    else:
        C = tuner.matmul(A, B, threads=threads, cache=cache,
                         guard=True if args.guard else None)
    err = float(np.linalg.norm(C - A @ B) / np.linalg.norm(A @ B))
    records = obs.dispatch_records()
    if records:
        rec = records[-1]
        print(f"observed call: {rec['seconds']:.4f}s "
              f"{rec['gflops']:.2f} eff.GFLOPS "
              f"(scheme {rec['scheme']}, rel.err {err:.1e})", file=out)
        if "arena_high_water" in rec:
            print(f"arena high water: {rec['arena_high_water']:,} bytes, "
                  f"overflows: {rec['arena_overflows']}", file=out)
    for row in obs.snapshot()["spans"]:
        if row["name"].startswith(("dispatch.", "parallel.")):
            print(f"  span {row['name']:<28} x{row['count']:<3} "
                  f"total {row['total_s']:.4f}s", file=out)

    guard = obs.summarize()["guard"]
    if args.guard or any(
            v for v in guard.values() if not isinstance(v, dict)) or any(
            guard["fallbacks"].values()) or any(
            guard["faults_fired"].values()):
        mode = "on" if args.guard else "off (counters from prior faults)"
        print(f"guard: {mode}", file=out)
        fb = guard["fallbacks"]
        fb_txt = ("  ".join(f"{k}={v}" for k, v in sorted(fb.items()))
                  or "none")
        print(f"  fallbacks: {fb_txt}", file=out)
        print(f"  plan failures: {guard['plan_failures']}  "
              f"quarantines: {guard['quarantines']}  "
              f"skips: {guard['quarantine_skips']}  "
              f"rehabilitations: {guard['rehabilitations']}", file=out)
        print(f"  numeric violations: {guard['numeric_violations']}  "
              f"watchdog timeouts: {guard['watchdog_timeouts']}  "
              f"pool rebuilds: {guard['pool_rebuilds']}", file=out)
        if guard["faults_fired"]:
            fired = "  ".join(f"{k}={v}" for k, v
                              in sorted(guard["faults_fired"].items()))
            print(f"  injected faults fired: {fired}", file=out)
        quarantined = cache.quarantined_keys() if cache is not None else []
        if quarantined:
            print(f"  quarantined plan keys: "
                  f"{', '.join(quarantined)}", file=out)

    if args.batch:
        batch = args.batch
        print(f"== batch decision: {batch} x {p}x{q}x{r} {dtype}, "
              f"{threads} threads ==", file=out)
        bplans = tuner.enumerate_batch_plans(p, q, r, batch,
                                             threads=threads, dtype=dtype,
                                             max_candidates=6)
        print("batch-mode shortlist (batch_cost, per-batch):", file=out)
        for i, bp in enumerate(bplans, 1):
            cost = tuner.batch_plan_cost(bp, p, q, r, batch)
            print(f"  #{i} {bp.describe():<52} cost {cost:.4g}", file=out)
        bplan, bsource = tuner.get_batch_plan(p, q, r, batch, dtype=dtype,
                                              threads=threads, cache=cache)
        print(f"chosen batch plan: {bplan.describe()}  "
              f"[source: {bsource}]", file=out)
        print(f"amortized: one plan lookup + one "
              f"{'per-worker arena pool' if bplan.mode == 'elementwise' else 'arena'}"
              f" + one worker pool serve all {batch} elements", file=out)
        As = np.stack([A] * batch)
        Bs = np.stack([B] * batch)
        tuner.matmul_batched(As, Bs, threads=threads, cache=cache)
        for row in obs.snapshot()["spans"]:
            if row["name"] == "dispatch.batch":
                print(f"  span {row['name']:<28} x{row['count']:<3} "
                      f"total {row['total_s']:.4f}s", file=out)
    return 0


def cmd_stats(args, out=sys.stdout) -> int:
    import json

    from repro import obs

    snap = obs.snapshot()
    live = not obs.is_empty(snap)
    origin = "live registry"
    snap_path = None
    if not live:
        # a previous `repro multiply --auto` (another process) saved one
        loaded = obs.load_snapshot(args.snapshot)
        if loaded is not None:
            snap = loaded
            snap_path = (args.snapshot if args.snapshot
                         else obs.default_snapshot_path())
            origin = f"snapshot file {snap_path}"

    if args.format == "json":
        json.dump(snap, out, indent=2, sort_keys=True)
        print(file=out)
    elif args.format == "prom":
        out.write(obs.prometheus_text(snap))
    else:
        _render_stats(snap, origin, out)

    if args.reset:
        # clear both stores: a surviving snapshot file would silently
        # resurface as stale data on the next `repro stats`
        obs.reset()
        for path in (args.snapshot, obs.default_snapshot_path()):
            if path is not None:
                try:
                    import os

                    os.unlink(path)
                except OSError:
                    pass
    return 0


def _render_stats(snap: dict, origin: str, out) -> None:
    from repro import obs

    summary = obs.summarize(snap)
    if obs.is_empty(snap):
        print("telemetry: no data (enable with REPRO_OBS=1 or run "
              "`repro multiply --auto`)", file=out)
        return
    print(f"telemetry ({origin})", file=out)
    print(f"dispatch: {summary['calls']} call(s)", file=out)
    if summary["sources"]:
        mix = "  ".join(f"{src}={n}" for src, n
                        in sorted(summary["sources"].items()))
        ratio = summary["cache_hit_ratio"]
        hit = f"{ratio:.0%}" if ratio is not None else "n/a"
        print(f"  plan sources: {mix}  (cache hit ratio: {hit})", file=out)
    if summary["policy"]:
        mix = "  ".join(f"{kind}={n}" for kind, n
                        in sorted(summary["policy"].items()))
        print(f"  policy choices: {mix}", file=out)
    ws = summary["workspace"]
    if ws["arena_bytes"] is not None:
        print(f"workspace: arena {int(ws['arena_bytes']):,} bytes, "
              f"high water {int(ws['high_water'] or 0):,}, "
              f"overflows {ws['overflows']}", file=out)
    else:
        print(f"workspace: overflows {ws['overflows']}", file=out)
    guard = summary.get("guard", {})
    if guard and (any(v for v in guard.values() if not isinstance(v, dict))
                  or any(guard.get("fallbacks", {}).values())
                  or any(guard.get("faults_fired", {}).values())):
        fb = "  ".join(f"{k}={v}" for k, v
                       in sorted(guard["fallbacks"].items())) or "none"
        print(f"guard: fallbacks {fb}", file=out)
        print(f"  plan failures {guard['plan_failures']}, "
              f"quarantines {guard['quarantines']}, "
              f"skips {guard['quarantine_skips']}, "
              f"rehabilitations {guard['rehabilitations']}", file=out)
        print(f"  numeric violations {guard['numeric_violations']}, "
              f"watchdog timeouts {guard['watchdog_timeouts']}, "
              f"pool rebuilds {guard['pool_rebuilds']}, "
              f"task retries {guard['task_retries']}", file=out)
        if guard["cache_load_errors"] or guard["cache_save_errors"]:
            print(f"  cache load errors {guard['cache_load_errors']}, "
                  f"save errors {guard['cache_save_errors']}", file=out)
        if guard["faults_fired"]:
            fired = "  ".join(f"{k}={v}" for k, v
                              in sorted(guard["faults_fired"].items()))
            print(f"  injected faults fired: {fired}", file=out)
    if summary["span_totals"]:
        print("span totals (by total time):", file=out)
        for row in summary["span_totals"][:12]:
            labels = "".join(f" {k}={v}" for k, v
                             in sorted(row["labels"].items()))
            print(f"  {row['name']:<28}{labels} x{row['count']:<4} "
                  f"total {row['total_s']:.4f}s", file=out)
    extras = [g for g in summary["gauges"]
              if g["name"].startswith(("transfer.", "policy."))]
    if extras:
        print("gauges:", file=out)
        for g in extras[:12]:
            labels = "".join(f" {k}={v}" for k, v
                             in sorted(g["labels"].items()))
            print(f"  {g['name']}{labels} = {g['value']:.4g}", file=out)
    if summary["records"]:
        rec = summary["records"][-1]
        # batch records carry no per-call seconds (the span does)
        took = (f" {rec['seconds']:.4f}s" if "seconds" in rec
                else f" batch={rec.get('batch', '?')}")
        print(f"last dispatch: {rec['shape'][0]}x{rec['shape'][1]}"
              f"x{rec['shape'][2]} {rec['dtype']} -> {rec['plan']} "
              f"[{rec['source']}]{took}", file=out)


def _parse_shape(text: str) -> tuple[int, int, int]:
    parts = text.lower().split("x")
    if len(parts) == 1:
        parts = parts * 3
    if len(parts) != 3:
        raise ValueError(f"bad shape {text!r}: want PxQxR (or a single N)")
    return tuple(int(x) for x in parts)  # type: ignore[return-value]


def cmd_tune(args, out=sys.stdout) -> int:
    from repro import tuner
    from repro.bench import report

    from repro.parallel import available_cores

    try:
        shapes = [_parse_shape(s) for s in args.shapes]
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    threads = args.threads or available_cores()
    cache = tuner.PlanCache(args.cache) if args.cache else tuner.PlanCache()

    if args.dry_run:
        for p, q, r in shapes:
            print(f"-- {p}x{q}x{r}: ranked candidates "
                  f"({threads} threads, {args.dtype})", file=out)
            for pl in tuner.enumerate_plans(p, q, r, threads=threads,
                                            dtype=args.dtype,
                                            max_candidates=args.candidates):
                print(f"   {pl.describe()}", file=out)
        return 0

    if args.policy in ("online", "ucb"):
        return _tune_online(args, shapes, threads, cache, out)

    t0 = time.perf_counter()
    reports = tuner.tune(
        shapes, dtype=args.dtype, threads=threads,
        budget_s=args.budget_seconds, trials=args.trials,
        max_candidates=args.candidates, cache=cache, seed=args.seed,
    )
    rows = [row for rep in reports for row in rep.rows()]

    # ---- human-readable tuning report (bench.report rendering) ----
    print(f"tuned {len(reports)} shape(s) in {time.perf_counter() - t0:.1f}s "
          f"({args.dtype}, {threads} threads); "
          f"plan cache: {cache.path}", file=out)
    if cache.save_error is not None:
        print(f"warning: cache not persisted ({cache.save_error}); "
              f"ran in-memory", file=out)
    for rep in reports:
        print(f"\n-- {rep.label}", file=out)
        for m in sorted(rep.measurements, key=lambda m: m.seconds):
            mark = "  <-- cached" if m is rep.best else ""
            print(f"  {m.describe()}{mark}", file=out)
    series = report.rows_to_series(
        [row for row in rows
         if "winner" in row.detail or row.algorithm.startswith("dgemm")]
    )
    if len(reports) > 1:
        print("\n" + report.ascii_plot(
            series, title="tuned winners vs dgemm baseline"), file=out)
    if args.csv:
        report.to_csv(rows, args.csv)
        print(f"\nwrote {len(rows)} measurements to {args.csv}", file=out)
    return 0


def _tune_online(args, shapes, threads, cache, out) -> int:
    """``repro tune --policy online|ucb``: learn from simulated dispatches.

    Feeds each shape through ``tuner.matmul`` with the requested online
    policy (epsilon-greedy or deterministic UCB1) on deterministic
    synthetic operands -- a dry run of exactly what a production process
    would experience, useful for pre-warming a cache with online-policy
    behaviour (and for demoing convergence).  With ``--threads > 1`` the
    explored shortlist spans the parallel schemes, including the
    hybrid-subgroup P' divisors.
    """
    from repro import tuner

    t0 = time.perf_counter()
    for p, q, r in shapes:
        cls = (tuner.UCBTunePolicy if args.policy == "ucb"
               else tuner.OnlineTunePolicy)
        policy = cls(shortlist=args.candidates, seed=args.seed,
                     max_dispatches=args.dispatches)
        A, B = tuner.tuning_operands(p, q, r, dtype=args.dtype,
                                     seed=args.seed)
        n = 0
        for n in range(1, args.dispatches + 1):
            tuner.matmul(A, B, threads=threads, cache=cache, tune=policy)
            if policy.converged(p, q, r, args.dtype, threads):
                break
        plan, source = tuner.get_plan(p, q, r, dtype=args.dtype,
                                      threads=threads, cache=cache)
        state = ("converged" if policy.converged(p, q, r, args.dtype, threads)
                 else "still exploring" if source != "trivial" else "trivial")
        print(f"-- {p}x{q}x{r}: {state} after {n} dispatch(es); "
              f"plan {plan.describe()} [{source}]", file=out)
    print(f"online-tuned {len(shapes)} shape(s) in "
          f"{time.perf_counter() - t0:.1f}s ({args.dtype}, {threads} "
          f"threads); plan cache: {cache.path}", file=out)
    if cache.save_error is not None:
        print(f"warning: cache not persisted ({cache.save_error}); "
              f"ran in-memory", file=out)
    return 0


def cmd_cache(args, out=sys.stdout) -> int:
    from repro import tuner
    from repro.bench.machine import fingerprint_digest, machine_fingerprint

    cache = tuner.PlanCache(args.cache) if args.cache else tuner.PlanCache()
    if args.action == "show":
        fp = machine_fingerprint()
        print(f"plan cache: {cache.path}", file=out)
        print(f"this machine: {fingerprint_digest()}  "
              f"[cpu: {fp['cpu']}, cores: {fp['cores']}, "
              f"blas: {fp['blas']}, numpy: {fp['numpy']}]", file=out)
        stale = set(cache.stale_keys())
        print(f"{len(cache)} entries, {len(stale)} stale", file=out)
        for key, ent in cache.items():
            try:
                desc = tuner.Plan.from_dict(ent["plan"]).describe()
            except (KeyError, TypeError, ValueError):
                desc = "?"  # still show the row: this is a diagnosis tool
            gf = ent.get("gflops")
            perf = f"{gf:8.2f} eff.GFLOPS" if gf else " " * 17
            # v5 entries carry the parallel configuration as explicit
            # fields; hybrid-subgroup rows always show P' -- 'auto' when
            # the plan defers to the execution-time default
            scheme = ent.get("scheme")
            cfg = ""
            if scheme and scheme != "sequential":
                cfg = f" [{scheme}]"
                if scheme == "hybrid-subgroup":
                    sub = ent.get("subgroup")
                    cfg = f" [{scheme} P'={sub if sub else 'auto'}]"
            # stale rows show why: a pre-v5 schema (plans tuned before the
            # P' sweep existed) or the foreign machine digest they carry
            if key not in stale:
                mark = "fresh"
            elif ent.get("schema", tuner.SCHEMA_VERSION) != tuner.SCHEMA_VERSION:
                mark = f"STALE (schema v{ent['schema']})"
            else:
                mark = f"STALE ({ent.get('fingerprint', 'unstamped')})"
            print(f"  {key:>32} -> {desc:<36} {perf} {mark}{cfg}", file=out)
        ledger = cache.failure_ledger()
        if ledger:
            quarantined = cache.quarantined_keys()
            print(f"failure ledger: {len(ledger)} key(s), "
                  f"{len(quarantined)} quarantined", file=out)
            for key, rec in ledger.items():
                state = ("QUARANTINED" if rec.get("quarantined")
                         else f"{rec.get('count', 0)} failure(s)")
                skips = rec.get("skips", 0)
                backoff = f", {skips} skip(s)" if skips else ""
                print(f"  {key}: {state}{backoff} "
                      f"[{rec.get('reason', '?')}]", file=out)
        if cache.load_error is not None:
            print(f"load error: {cache.load_error}", file=out)
        if cache.corrupt_sidecar is not None:
            print(f"corrupt original preserved at: {cache.corrupt_sidecar}",
                  file=out)
        return 0
    if args.action == "doctor":
        return _cache_doctor(args, cache, out)
    # invalidate: stale-only by default, so work tuned on this machine
    # survives the sweep
    removed = cache.invalidate(stale_only=not getattr(args, "all", False))
    if removed and not cache.save():
        print(f"error: could not rewrite {cache.path}: {cache.save_error}",
              file=sys.stderr)
        return 1
    scope = "entries" if getattr(args, "all", False) else "stale entries"
    print(f"removed {len(removed)} {scope} from {cache.path} "
          f"({len(cache)} remain)", file=out)
    return 0


def _cache_doctor(args, cache, out) -> int:
    """``repro cache doctor [--fix]``: one health report per failure mode.

    Diagnoses (and with ``--fix`` repairs): unreadable/corrupt cache
    files (the ``.corrupt`` sidecar the loader left), entries from a
    stale schema or foreign machine fingerprint, entries whose plan no
    longer parses, and plans the ``repro.guard`` failure ledger has
    quarantined.  Exit code 0 when healthy (or fixed), 1 when problems
    remain.
    """
    import os

    from repro import tuner

    print(f"plan cache: {cache.path}", file=out)
    len(cache)  # force the lazy load so load_error/corrupt_sidecar are set
    problems = 0

    if cache.load_error is not None:
        problems += 1
        print(f"  [corrupt] cache file could not be loaded: "
              f"{cache.load_error}", file=out)
        if cache.corrupt_sidecar is not None:
            print(f"            original preserved at "
                  f"{cache.corrupt_sidecar}", file=out)

    stale = set(cache.stale_keys())
    unparsable = []
    stale_schema = stale_fp = 0
    for key, ent in cache.items():
        try:
            tuner.Plan.from_dict(ent["plan"])
        except (KeyError, TypeError, ValueError):
            unparsable.append(key)
        if key in stale:
            if ent.get("schema",
                       tuner.SCHEMA_VERSION) != tuner.SCHEMA_VERSION:
                stale_schema += 1
            else:
                stale_fp += 1
    if stale_schema:
        problems += 1
        print(f"  [stale-schema] {stale_schema} entrie(s) from an "
              f"incompatible schema (current v{tuner.SCHEMA_VERSION})",
              file=out)
    if stale_fp:
        problems += 1
        print(f"  [stale-fingerprint] {stale_fp} entrie(s) tuned under "
              f"another machine fingerprint", file=out)
    if unparsable:
        problems += 1
        print(f"  [unparsable] {len(unparsable)} entrie(s) whose plan "
              f"no longer parses: {', '.join(unparsable)}", file=out)

    quarantined = cache.quarantined_keys()
    if quarantined:
        problems += 1
        ledger = cache.failure_ledger()
        print(f"  [quarantined] {len(quarantined)} plan key(s) in the "
              f"failure ledger:", file=out)
        for key in quarantined:
            rec = ledger[key]
            print(f"      {key} ({rec.get('count', 0)} failure(s): "
                  f"{rec.get('reason', '?')})", file=out)

    sidecar = cache.corrupt_sidecar
    if sidecar is None:
        # a sidecar left by an earlier process is just as actionable
        candidate = cache.path.with_name(cache.path.name + ".corrupt")
        if candidate.exists():
            sidecar = candidate
    if sidecar is not None and cache.load_error is None:
        problems += 1
        print(f"  [corrupt-sidecar] leftover quarantined file: {sidecar}",
              file=out)

    if not problems:
        print(f"  healthy: {len(cache)} entrie(s), no quarantined plans, "
              f"no corruption", file=out)
        return 0
    if not args.fix:
        print(f"{problems} problem(s); rerun with --fix to repair",
              file=out)
        return 1

    # --fix: drop what cannot be used, keep what can
    for key in unparsable:
        cache.drop(key)
    removed = cache.invalidate(stale_only=True)
    cleared = cache.clear_failures()
    if not cache.save():
        print(f"error: could not rewrite {cache.path}: "
              f"{cache.save_error}", file=sys.stderr)
        return 1
    if sidecar is not None:
        try:
            os.unlink(sidecar)
        except OSError:
            pass
    print(f"fixed: dropped {len(unparsable)} unparsable + "
          f"{len(removed)} stale entrie(s), cleared {cleared} ledger "
          f"key(s), rewrote {cache.path}", file=out)
    return 0


def cmd_codegen(args, out=sys.stdout) -> int:
    from repro.algorithms import get_algorithm

    alg = get_algorithm(args.algorithm)
    if args.c_source:
        from repro.codegen import cbackend

        print(cbackend.generate_c_source(alg, cse=args.cse), file=out)
    else:
        from repro.codegen import generate_source

        print(generate_source(alg, strategy=args.strategy, cse=args.cse),
              file=out)
    return 0


def cmd_analyze(args, out=sys.stdout) -> int:
    import json as _json

    from repro import analyze

    selected = args.analyzers or []
    if args.run_all or not selected:
        selected = list(analyze.ANALYZERS)
    kwargs = {}
    if args.algorithms:
        kwargs["names"] = args.algorithms
    total_checked = 0
    all_findings = []
    for name in selected:
        checked, findings = analyze.run(
            name, **(kwargs if name in ("symbolic", "cemit", "arena")
                     else {}))
        total_checked += checked
        all_findings.extend(findings)
        if not args.json:
            status = "clean" if not findings else f"{len(findings)} finding(s)"
            print(f"{name:>12}: {checked} checked, {status}", file=out)
    if args.json:
        print(_json.dumps({
            "analyzers": selected,
            "checked": total_checked,
            "findings": [f.to_dict() for f in all_findings],
        }, indent=2), file=out)
    else:
        for f in all_findings:
            print(f"  {f}", file=out)
        verdict = "clean" if not all_findings else "FINDINGS"
        print(f"{total_checked} checked across {len(selected)} analyzer(s): "
              f"{verdict}", file=out)
    return 1 if all_findings else 0


def cmd_search(args, out=sys.stdout) -> int:
    from repro.search import driver

    return driver.main(args.rest)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "search":
        # forward verbatim: the driver owns its own argparse (REMAINDER
        # would otherwise swallow/reject the driver's flags)
        from repro.search import driver

        return driver.main(argv[1:])
    args = _build_parser().parse_args(argv)
    handler = {
        "list": cmd_list,
        "verify": cmd_verify,
        "multiply": cmd_multiply,
        "tune": cmd_tune,
        "cache": cmd_cache,
        "codegen": cmd_codegen,
        "analyze": cmd_analyze,
        "search": cmd_search,
        "stats": cmd_stats,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # output truncated by a downstream pipe (e.g. `| head`): not an error
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
