"""The alpha-beta-gamma machine model and cost bookkeeping.

Costs follow the standard distributed-computing convention the paper's
communication references use ([2], [15], [23]):

    time = alpha * (#messages) + beta * (#words moved) + gamma * (#flops)

per processor along the critical path.  ``Machine`` carries the three
parameters plus processor count and per-processor memory; ``CostBreakdown``
accumulates the three terms so models can be compared both in closed form
and as estimated wall time.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Machine:
    """A distributed-memory machine in the alpha-beta-gamma model.

    Defaults are loosely calibrated to a commodity cluster: 1 us latency,
    1 ns/word (~8 GB/s links), 0.1 ns/flop (~10 GFLOPS/proc).
    """

    procs: int
    alpha: float = 1e-6   # seconds per message
    beta: float = 1e-9    # seconds per word
    gamma: float = 1e-10  # seconds per flop
    memory_words: float = float("inf")  # per-processor capacity

    def __post_init__(self):
        if self.procs < 1:
            raise ValueError("need at least one processor")
        if min(self.alpha, self.beta, self.gamma) < 0:
            raise ValueError("cost parameters must be nonnegative")


@dataclasses.dataclass
class CostBreakdown:
    """Accumulated per-processor critical-path costs."""

    messages: float = 0.0
    words: float = 0.0
    flops: float = 0.0
    peak_memory: float = 0.0
    label: str = ""

    def add(self, messages: float = 0.0, words: float = 0.0,
            flops: float = 0.0) -> None:
        self.messages += messages
        self.words += words
        self.flops += flops

    def track_memory(self, words: float) -> None:
        self.peak_memory = max(self.peak_memory, words)

    def time(self, m: Machine) -> float:
        """Estimated wall time on ``m``."""
        return (m.alpha * self.messages + m.beta * self.words
                + m.gamma * self.flops)

    def fits(self, m: Machine) -> bool:
        return self.peak_memory <= m.memory_words

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(
            self.messages + other.messages,
            self.words + other.words,
            self.flops + other.flops,
            max(self.peak_memory, other.peak_memory),
            self.label or other.label,
        )
