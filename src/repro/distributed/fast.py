"""CAPS-style distributed fast matrix multiplication, generalized.

Ballard, Demmel, Holtz, Lipshitz & Schwartz's CAPS algorithm parallelizes
Strassen by interleaving two kinds of recursion steps (exactly the BFS/DFS
vocabulary the paper reuses for shared memory):

- **BFS step**: split the P processors into R groups, redistribute so each
  group owns one subproblem M_r = S_r T_r.  Costs one collective exchange
  of the (shrunken) operands, multiplies memory by ~R/(mk | kn | mn) per
  operand, and divides the processor count by R.
- **DFS step**: all P processors cooperate on the R subproblems one after
  another.  No redistribution (additions stay local under a block-cyclic
  layout) but the R-fold sequential factor hits the critical path.

The base case runs classical SUMMA on whatever processors remain (local
classical multiply when P reaches 1).

This module *simulates* the per-processor alpha-beta-gamma costs of any
B/D schedule for any ``FastAlgorithm`` -- the Section-6 "extend to
distributed memory" exercise -- and reproduces the headline asymptotics:
with enough memory, a BFS-first schedule communicates asymptotically less
than any classical algorithm (words ~ n^2 / P^(2/omega) vs n^2 / P^(2/3)).
"""

from __future__ import annotations

import itertools
import math


from repro.core.algorithm import FastAlgorithm
from repro.distributed.classical import summa_cost
from repro.distributed.model import CostBreakdown, Machine


def _addition_counts(alg: FastAlgorithm) -> tuple[int, int, int]:
    """(A-side, B-side, C-side) entrywise additions per recursion level,
    per block entry (scalar multiplies folded in)."""
    nu, nv, nw = alg.nnz()
    return (
        max(0, nu - alg.rank),
        max(0, nv - alg.rank),
        max(0, nw - alg.m * alg.n),
    )


def caps_cost(
    alg: FastAlgorithm,
    n: int,
    machine: Machine,
    schedule: str,
) -> CostBreakdown:
    """Simulate one B/D ``schedule`` (e.g. ``"BBD"``) for an N x N product.

    Square problems only for clarity; the per-step dimension shrink uses
    the base-case dims per mode.  Raises when a BFS step's processor split
    is infeasible (P not divisible by R).
    """
    m, k, nn = alg.base_case
    R = alg.rank
    au, av, aw = _addition_counts(alg)

    cost = CostBreakdown(label=f"CAPS[{schedule}] {alg.name} (n={n}, "
                         f"P={machine.procs})")

    def recurse(p: float, q: float, r: float, procs: int, depth: int,
                seq_factor: float) -> None:
        """Accumulate costs; ``seq_factor`` multiplies critical-path work
        (DFS steps serialize subproblems)."""
        data_per_proc = (p * q + q * r + p * r) / procs
        cost.track_memory(data_per_proc)
        if depth >= len(schedule):
            if procs == 1:
                cost.add(flops=seq_factor * 2.0 * p * q * r)
            else:
                # generic 2D-classical base case (SUMMA-like costs without
                # requiring a perfect-square processor count): words
                # ~2n^2/sqrt(P), sqrt(P) shift/broadcast rounds
                g = math.sqrt(procs)
                cost.add(
                    messages=seq_factor * 2.0 * g,
                    words=seq_factor * 2.0 * p * q / g,
                    flops=seq_factor * 2.0 * p * q * r / procs,
                )
                cost.track_memory(3.0 * p * q / procs)
            return

        step = schedule[depth]
        bp, bq, br = p / m, q / k, r / nn
        if step == "B":
            if procs % R:
                raise ValueError(
                    f"BFS step at depth {depth} needs P divisible by R="
                    f"{R}, got P={procs}"
                )
            # redistribute operands + later the outputs: one exchange of
            # the local share of all S_r/T_r/M_r
            exchanged = (R * (bp * bq + bq * br + bp * br)) / procs
            cost.add(messages=seq_factor * 2.0 * max(1.0, math.log2(procs)),
                     words=seq_factor * exchanged)
            # additions are local after the exchange
            cost.add(flops=seq_factor *
                     (au * bp * bq + av * bq * br + aw * bp * br) / procs)
            cost.track_memory(exchanged)
            recurse(bp, bq, br, procs // R, depth + 1, seq_factor)
        elif step == "D":
            # additions local under aligned layout; R subproblems in sequence
            cost.add(flops=seq_factor *
                     (au * bp * bq + av * bq * br + aw * bp * br) / procs)
            recurse(bp, bq, br, procs, depth + 1, seq_factor * R)
        else:
            raise ValueError(f"schedule may contain only 'B'/'D', got {step!r}")

    recurse(float(n), float(n), float(n), machine.procs, 0, 1.0)
    return cost


def enumerate_schedules(
    alg: FastAlgorithm,
    n: int,
    machine: Machine,
    max_steps: int = 4,
) -> list[tuple[str, CostBreakdown]]:
    """All feasible B/D schedules up to ``max_steps`` with their costs."""
    out = []
    for L in range(max_steps + 1):
        for pattern in itertools.product("BD", repeat=L):
            sched = "".join(pattern)
            try:
                out.append((sched, caps_cost(alg, n, machine, sched)))
            except ValueError:
                continue
    return out


def best_schedule(
    alg: FastAlgorithm,
    n: int,
    machine: Machine,
    max_steps: int = 4,
) -> tuple[str, CostBreakdown]:
    """Minimum-time feasible schedule honoring the memory limit.

    Reproduces CAPS's qualitative rule: take BFS steps while memory (and
    processor divisibility) allow -- they cut communication -- and DFS
    steps otherwise.
    """
    candidates = [
        (s, c) for s, c in enumerate_schedules(alg, n, machine, max_steps)
        if c.fits(machine)
    ]
    if not candidates:
        raise ValueError("no feasible schedule fits the memory limit")
    return min(candidates, key=lambda t: t[1].time(machine))


def bandwidth_exponent(alg: FastAlgorithm) -> float:
    """Asymptotic words ~ n^2 / P^(2/omega - epsilon...): the classical 3D
    exponent is 2/3; fast algorithms achieve 2/omega_0 > 2/3.  Returns
    ``2 / omega0`` for comparison tables."""
    return 2.0 / alg.exponent


def communication_series(
    alg: FastAlgorithm,
    n: int,
    machine_procs: list[int],
    steps_fn=None,
) -> list[tuple[int, float, float]]:
    """(P, fast words, SUMMA words) over a processor sweep, using an
    all-BFS schedule as deep as divisibility allows (up to 4)."""
    out = []
    for P in machine_procs:
        mach = Machine(P)
        depth = 0
        pp = P
        while depth < 4 and pp % alg.rank == 0:
            pp //= alg.rank
            depth += 1
        sched = "B" * depth
        fast = caps_cost(alg, n, mach, sched)
        g = int(round(math.sqrt(P)))
        summa = summa_cost(n, Machine(g * g)) if g * g == P else None
        out.append((P, fast.words, summa.words if summa else float("nan")))
    return out
