"""Distributed-memory extension (paper Section 6 future work).

The paper closes by noting that fast algorithms reduce *communication* as
well as arithmetic on distributed machines and that the authors "would
like to extend the framework to the distributed-memory case".  This
package supplies that extension as a communication-cost simulator in the
alpha-beta-gamma model: classical baselines (2D SUMMA, 3D) and the
BFS/DFS-interleaved parallelization of any ``FastAlgorithm`` (the CAPS
scheme of Ballard et al. for Strassen, generalized to arbitrary base
cases), with per-processor memory tracking.
"""

from repro.distributed.model import Machine, CostBreakdown
from repro.distributed.classical import summa_cost, cannon_cost, threed_cost
from repro.distributed.fast import (
    caps_cost,
    best_schedule,
    enumerate_schedules,
)

__all__ = [
    "Machine",
    "CostBreakdown",
    "summa_cost",
    "cannon_cost",
    "threed_cost",
    "caps_cost",
    "best_schedule",
    "enumerate_schedules",
]
