"""Classical distributed matmul baselines in the alpha-beta-gamma model.

Standard results (Van De Geijn & Watts SUMMA; Cannon; the 2.5D/3D family
of Solomonik & Demmel) for square N x N products on P processors:

- 2D (SUMMA/Cannon): flops 2N^3/P, words Theta(N^2/sqrt(P)),
  memory Theta(N^2/P);
- 3D: words Theta(N^2/P^(2/3)) at memory Theta(N^2/P^(2/3)) -- the
  bandwidth-optimal corner when memory allows P^(1/3) replication.

These are the comparators the fast-algorithm communication results are
measured against in the paper's reference [2].
"""

from __future__ import annotations

import math

from repro.distributed.model import CostBreakdown, Machine


def _square_grid(P: int) -> int:
    g = int(round(math.sqrt(P)))
    if g * g != P:
        raise ValueError(f"2D algorithms need a square processor count, got {P}")
    return g


def summa_cost(n: int, machine: Machine, block: int | None = None) -> CostBreakdown:
    """SUMMA on a sqrt(P) x sqrt(P) grid with panel width ``block``.

    Per processor: 2n^3/P flops; each of the n/b panel rounds broadcasts an
    (n/sqrt(P)) x b panel of A and of B along rows/columns: ~2 n^2/sqrt(P)
    words total, n/b * 2 log(sqrt(P)) messages (tree broadcasts).
    """
    P = machine.procs
    g = _square_grid(P)
    b = block or max(1, n // (4 * g))
    cost = CostBreakdown(label=f"SUMMA({n}, P={P})")
    rounds = math.ceil(n / b)
    logg = max(1.0, math.log2(g))
    cost.add(
        messages=rounds * 2 * logg,
        words=2.0 * n * n / g,
        flops=2.0 * n ** 3 / P,
    )
    cost.track_memory(3.0 * n * n / P + 2.0 * (n / g) * b)
    return cost


def cannon_cost(n: int, machine: Machine) -> CostBreakdown:
    """Cannon's algorithm: same asymptotic traffic as SUMMA with
    point-to-point shifts (sqrt(P) rounds, 2 messages each)."""
    P = machine.procs
    g = _square_grid(P)
    cost = CostBreakdown(label=f"Cannon({n}, P={P})")
    cost.add(
        messages=2.0 * g,
        words=2.0 * n * n / g,
        flops=2.0 * n ** 3 / P,
    )
    cost.track_memory(3.0 * n * n / P)
    return cost


def threed_cost(n: int, machine: Machine) -> CostBreakdown:
    """3D algorithm on a P^(1/3) cube: words Theta(n^2 / P^(2/3)).

    Requires ~3 n^2/P^(2/3) words of memory per processor (replication);
    raises nothing here -- callers check ``fits``.
    """
    P = machine.procs
    c = round(P ** (1.0 / 3.0))
    if c ** 3 != P:
        raise ValueError(f"3D algorithm needs a cubic processor count, got {P}")
    cost = CostBreakdown(label=f"3D({n}, P={P})")
    logp = max(1.0, math.log2(P))
    cost.add(
        messages=2.0 * logp,
        words=3.0 * n * n / c ** 2,
        flops=2.0 * n ** 3 / P,
    )
    cost.track_memory(3.0 * n * n / c ** 2)
    return cost
