"""Blocked right-looking LU with partial pivoting (GETRF) over a kernel.

The classic LAPACK decomposition: factor a ``block``-wide panel with an
unblocked pivoted elimination, apply the pivots across the matrix, solve
the ``U12`` strip with a unit-lower TRSM, and update the trailing matrix

    A22 ← A22 − L21 · U12 .

For block size b ≪ n the trailing gemm carries ``1 − O(b/n)`` of the
O(n³) work, which is precisely the fraction a fast algorithm accelerates
(``MatmulKernel.fast_fraction`` lets tests verify this).  Pivoting is
unchanged from the classical algorithm — fast multiplication never
touches the panel — so the factorization's growth-factor behaviour is
the textbook one, and the only numerical difference is the rounding
profile of the trailing updates (measured in ``tests/test_linalg.py``).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.linalg.kernels import MatmulKernel
from repro.linalg.trsm import solve_triangular
from repro.util.validation import require_2d

DEFAULT_BLOCK = 128


def _panel_lu(A: np.ndarray) -> np.ndarray:
    """Unblocked pivoted LU on the tall panel ``A`` (modified in place).

    Returns the local pivot vector ``piv`` with the convention that row
    ``i`` of the panel was swapped with row ``piv[i]`` (``piv[i] >= i``),
    matching LAPACK's ``ipiv``.  The caller applies the same swaps to the
    rest of the matrix rows.
    """
    m, b = A.shape
    piv = np.arange(min(m, b))
    for i in range(min(m, b)):
        p = i + int(np.argmax(np.abs(A[i:, i])))
        piv[i] = p
        if p != i:
            A[[i, p], :] = A[[p, i], :]
        a_ii = A[i, i]
        if a_ii == 0.0:
            # exactly singular column: leave zeros (LAPACK records info>0;
            # we surface it at the driver level via the U diagonal)
            continue
        A[i + 1:, i] /= a_ii
        if i + 1 < b:
            # rank-1 trailing update within the panel
            A[i + 1:, i + 1:] -= np.outer(A[i + 1:, i], A[i, i + 1:])
    return piv


def lu_factor(
    A: np.ndarray,
    kernel: MatmulKernel | None = None,
    block: int = DEFAULT_BLOCK,
) -> tuple[np.ndarray, np.ndarray]:
    """Factor ``A = P L U`` (partial pivoting), LAPACK-packed.

    Returns ``(LU, piv)``: ``LU`` holds the unit-lower ``L`` strictly
    below the diagonal and ``U`` on/above it; ``piv`` is the LAPACK-style
    sequential pivot vector (row ``i`` swapped with ``piv[i]``).

    ``kernel`` computes the trailing updates (default: vendor BLAS);
    ``block`` is the panel width.
    """
    A = require_2d(A, "A")
    kernel = kernel or MatmulKernel()
    LU = np.array(A, dtype=np.float64, copy=True)
    m, n = LU.shape
    mn = min(m, n)
    piv = np.arange(mn)
    for j in range(0, mn, block):
        b = min(block, mn - j)
        panel = LU[j:, j : j + b]
        local = _panel_lu(panel)
        piv[j : j + b] = local + j
        # apply the panel's swaps to the columns left and right of it
        for i, p in enumerate(local):
            if p != i:
                gi, gp = j + i, j + p
                LU[[gi, gp], :j] = LU[[gp, gi], :j]
                LU[[gi, gp], j + b :] = LU[[gp, gi], j + b :]
        if j + b < n:
            # U12 ← L11⁻¹ A12   (unit-lower small solve)
            LU[j : j + b, j + b :] = solve_triangular(
                LU[j : j + b, j : j + b],
                LU[j : j + b, j + b :],
                side="left", lower=True, unit_diagonal=True,
                kernel=kernel,
            )
        if j + b < m and j + b < n:
            # trailing update through the kernel: A22 −= L21 U12
            kernel.update(
                LU[j + b :, j + b :],
                LU[j + b :, j : j + b],
                LU[j : j + b, j + b :],
                alpha=-1.0,
            )
    return LU, piv


def _apply_pivots(B: np.ndarray, piv: np.ndarray, inverse: bool = False) -> np.ndarray:
    """Apply the sequential row swaps of ``piv`` to ``B`` (copy)."""
    X = np.array(B, copy=True)
    idx = range(len(piv) - 1, -1, -1) if inverse else range(len(piv))
    for i in idx:
        p = int(piv[i])
        if p != i:
            X[[i, p]] = X[[p, i]]
    return X


def lu_solve(
    lu_piv: tuple[np.ndarray, np.ndarray],
    B: np.ndarray,
    kernel: MatmulKernel | None = None,
) -> np.ndarray:
    """Solve ``A X = B`` given ``lu_factor(A)`` output.

    Both triangular sweeps run through :func:`solve_triangular`, so a fast
    kernel accelerates the solve phase too (relevant for many right-hand
    sides, where the solve is itself gemm-shaped).
    """
    LU, piv = lu_piv
    if LU.shape[0] != LU.shape[1]:
        raise ValueError("lu_solve requires a square factorization")
    squeeze = np.asarray(B).ndim == 1
    B = require_2d(np.asarray(B).reshape(-1, 1) if squeeze else B, "B")
    kernel = kernel or MatmulKernel()
    Y = _apply_pivots(B, piv)
    Y = solve_triangular(LU, Y, side="left", lower=True,
                         unit_diagonal=True, kernel=kernel)
    X = solve_triangular(LU, Y, side="left", lower=False,
                         unit_diagonal=False, kernel=kernel)
    return X[:, 0] if squeeze else X


def lu_reconstruct(lu_piv: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
    """Rebuild ``A`` from its packed factorization (test utility)."""
    LU, piv = lu_piv
    m, n = LU.shape
    mn = min(m, n)
    L = np.tril(LU[:, :mn], -1) + np.eye(m, mn)
    U = np.triu(LU[:mn, :])
    A = L @ U
    return _apply_pivots(A, piv, inverse=True)


def lu_error(A: np.ndarray, lu_piv: tuple[np.ndarray, np.ndarray]) -> float:
    """Normwise backward error ``‖A − P L U‖ / ‖A‖`` of a factorization."""
    A = np.asarray(A, dtype=np.float64)
    R = lu_reconstruct(lu_piv) - A
    denom = float(np.linalg.norm(A)) or 1.0
    return float(np.linalg.norm(R)) / denom


def scipy_reference(A: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vendor LAPACK GETRF via SciPy, in the same packed convention."""
    LU, piv = scipy.linalg.lu_factor(np.asarray(A, dtype=np.float64),
                                     check_finite=False)
    return LU, piv
