"""Blocked lower Cholesky factorization (POTRF) over a kernel.

Right-looking blocked algorithm: for each diagonal block,

    L11 ← chol(A11)                     (vendor LAPACK, small)
    L21 ← A21 L11⁻ᵀ                     (TRSM, right/lower/trans)
    A22 ← A22 − L21 L21ᵀ                (SYRK-shaped, through the kernel)

The trailing update is the only O(n³) term; routing it through a fast
algorithm transfers the paper's speedups to SPD factorization.  A true
SYRK exploits symmetry for half the flops; here the update is computed
as a full gemm so that classical and fast kernels are compared on the
same operation — the *relative* comparison the paper cares about is
unaffected, and ``use_syrk_blocks=True`` provides the halved-flop blocked
variant (lower-triangle block columns only) for the curious.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.linalg.kernels import MatmulKernel
from repro.linalg.trsm import solve_triangular
from repro.util.validation import require_2d

DEFAULT_BLOCK = 128


def cholesky(
    A: np.ndarray,
    kernel: MatmulKernel | None = None,
    block: int = DEFAULT_BLOCK,
    use_syrk_blocks: bool = False,
) -> np.ndarray:
    """Return lower-triangular ``L`` with ``L Lᵀ = A`` for SPD ``A``.

    Only the lower triangle of ``A`` is referenced.  Raises
    ``np.linalg.LinAlgError`` if a diagonal block is not positive
    definite (inherited from the vendor base case).
    """
    A = require_2d(A, "A")
    if A.shape[0] != A.shape[1]:
        raise ValueError(f"A must be square, got {A.shape}")
    kernel = kernel or MatmulKernel()
    n = A.shape[0]
    # work on a fresh lower-triangular copy; upper stays zero
    L = np.tril(A).astype(np.float64)
    for j in range(0, n, block):
        b = min(block, n - j)
        Ljj = L[j : j + b, j : j + b]
        Ljj[...] = np.linalg.cholesky(Ljj)
        if j + b == n:
            break
        # panel: L21 ← A21 L11⁻ᵀ  (solve X L11ᵀ = A21 from the right)
        L[j + b :, j : j + b] = solve_triangular(
            Ljj, L[j + b :, j : j + b],
            side="right", lower=True, trans=True, kernel=kernel,
        )
        L21 = L[j + b :, j : j + b]
        trailing = L[j + b :, j + b :]
        if use_syrk_blocks:
            _syrk_update_lower(trailing, L21, kernel, block)
        else:
            kernel.update(trailing, L21, L21.T, alpha=-1.0)
            # re-zero the upper triangle the full update touched
            trailing[...] = np.tril(trailing)
    return L


def _syrk_update_lower(
    C: np.ndarray, X: np.ndarray, kernel: MatmulKernel, block: int
) -> None:
    """``C ← C − X Xᵀ`` touching only C's lower triangle, block column-wise.

    Diagonal blocks are updated with a full small gemm then re-truncated;
    sub-diagonal blocks use the kernel at full size.  Total flops ≈ half
    of the full update for large C.
    """
    n = C.shape[0]
    for j in range(0, n, block):
        b = min(block, n - j)
        Xj = X[j : j + b, :]
        # diagonal block (small): classical, then keep the lower part
        D = C[j : j + b, j : j + b]
        D -= Xj @ Xj.T
        D[...] = np.tril(D)
        if j + b < n:
            kernel.update(C[j + b :, j : j + b], X[j + b :, :], Xj.T, alpha=-1.0)


def cholesky_error(A: np.ndarray, L: np.ndarray) -> float:
    """Backward error ``‖A − L Lᵀ‖ / ‖A‖`` using the lower triangle of A."""
    A = np.asarray(A, dtype=np.float64)
    S = np.tril(A) + np.tril(A, -1).T
    R = L @ L.T - S
    denom = float(np.linalg.norm(S)) or 1.0
    return float(np.linalg.norm(R)) / denom


def scipy_reference(A: np.ndarray) -> np.ndarray:
    """Vendor LAPACK POTRF via SciPy (lower), for comparison in tests."""
    return scipy.linalg.cholesky(np.asarray(A, dtype=np.float64),
                                 lower=True, check_finite=False)
