"""Recursive blocked triangular solve (TRSM) over a fast-multiply kernel.

TRSM is the purest showcase for fast matrix multiplication inside a
LAPACK-style routine: the recursion

    [L11  0 ] [X1]   [B1]            X1 = L11⁻¹ B1
    [L21 L22] [X2] = [B2]   ⇒        X2 = L22⁻¹ (B2 − L21 · X1)

does *all* of its O(n³) arithmetic in the ``L21 · X1`` products, so the
fast algorithm's speedup transfers essentially undiluted.  Small diagonal
blocks are solved by the vendor LAPACK (``scipy.linalg.solve_triangular``)
— the same base-case philosophy as the paper's dgemm leaf calls.

All four side/uplo combinations are implemented by direct recursion;
``trans=True`` is normalized away up front by operating on the transposed
view (a no-copy NumPy view), flipping ``uplo`` and ``side`` rules as
linear algebra dictates.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.linalg.kernels import MatmulKernel
from repro.util.validation import require_2d

#: below this triangular-block size the vendor LAPACK is used directly
DEFAULT_BASE_SIZE = 128


def _base_solve(T, B, lower, unit, side):
    if side == "left":
        return scipy.linalg.solve_triangular(
            T, B, lower=lower, unit_diagonal=unit, check_finite=False
        )
    # right solve  X T = B  ⇔  Tᵀ Xᵀ = Bᵀ
    Xt = scipy.linalg.solve_triangular(
        T.T, B.T, lower=not lower, unit_diagonal=unit, check_finite=False
    )
    return np.ascontiguousarray(Xt.T)


def solve_triangular(
    T: np.ndarray,
    B: np.ndarray,
    side: str = "left",
    lower: bool = True,
    trans: bool = False,
    unit_diagonal: bool = False,
    kernel: MatmulKernel | None = None,
    base_size: int = DEFAULT_BASE_SIZE,
) -> np.ndarray:
    """Solve ``op(T) X = B`` (``side="left"``) or ``X op(T) = B`` (right).

    Parameters
    ----------
    T:
        square triangular matrix (entries in the ignored triangle are not
        referenced, as in BLAS TRSM).
    B:
        right-hand side; any conforming shape.
    side, lower, trans, unit_diagonal:
        BLAS TRSM flags; ``op(T) = Tᵀ`` when ``trans``.
    kernel:
        :class:`MatmulKernel` for the off-diagonal updates (default: BLAS).
    base_size:
        diagonal blocks at or below this order go to vendor LAPACK.

    Returns a fresh array ``X`` with ``op(T) X ≈ B`` to the accuracy of the
    configured multiply (rounding-level for exact fast algorithms).
    """
    T = require_2d(T, "T")
    B = require_2d(B, "B")
    if T.shape[0] != T.shape[1]:
        raise ValueError(f"T must be square, got {T.shape}")
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    need = B.shape[0] if side == "left" else B.shape[1]
    if T.shape[0] != need:
        raise ValueError(f"dimension mismatch: T is {T.shape}, B is {B.shape}")
    if trans:
        # op(T)=Tᵀ: solve against the transposed view with flipped uplo.
        T = T.T
        lower = not lower
    kernel = kernel or MatmulKernel()
    X = np.array(B, dtype=np.float64, copy=True)
    if T.shape[0] == 0 or X.size == 0:
        return X
    _solve_inplace(T, X, side, lower, unit_diagonal, kernel, base_size)
    return X


def _solve_inplace(T, X, side, lower, unit, kernel, base_size) -> None:
    """Overwrite ``X`` with the solution; recursive halving on T."""
    n = T.shape[0]
    if n <= base_size:
        X[...] = _base_solve(T, X, lower, unit, side)
        return
    h = n // 2
    T11, T12 = T[:h, :h], T[:h, h:]
    T21, T22 = T[h:, :h], T[h:, h:]
    if side == "left":
        X1, X2 = X[:h, :], X[h:, :]
        if lower:
            # L11 X1 = B1;  L22 X2 = B2 − L21 X1
            _solve_inplace(T11, X1, side, lower, unit, kernel, base_size)
            kernel.update(X2, T21, X1, alpha=-1.0)
            _solve_inplace(T22, X2, side, lower, unit, kernel, base_size)
        else:
            # U22 X2 = B2;  U11 X1 = B1 − U12 X2
            _solve_inplace(T22, X2, side, lower, unit, kernel, base_size)
            kernel.update(X1, T12, X2, alpha=-1.0)
            _solve_inplace(T11, X1, side, lower, unit, kernel, base_size)
    else:
        X1, X2 = X[:, :h], X[:, h:]
        if lower:
            # X2 L22 = B2;  X1 L11 = B1 − X2 L21
            _solve_inplace(T22, X2, side, lower, unit, kernel, base_size)
            kernel.update(X1, X2, T21, alpha=-1.0)
            _solve_inplace(T11, X1, side, lower, unit, kernel, base_size)
        else:
            # X1 U11 = B1;  X2 U22 = B2 − X1 U12
            _solve_inplace(T11, X1, side, lower, unit, kernel, base_size)
            kernel.update(X2, X1, T12, alpha=-1.0)
            _solve_inplace(T22, X2, side, lower, unit, kernel, base_size)
