"""Matrix powers by repeated squaring, and exact walk counting on graphs.

Repeated squaring is matmul-only, so it inherits whatever kernel it is
given.  :func:`count_walks` uses it on a graph adjacency matrix, where
``(A^ℓ)[i, j]`` counts the walks of length ℓ from i to j — an
*integer*-valued ground truth.  Because exact fast algorithms commit
only rounding error (bounded far below 0.5 for modest graphs), rounding
the fast-multiply float result recovers the combinatorial answer
exactly; APA algorithms, by contrast, corrupt the counts once their
O(λ) error crosses one half.  This is the paper's stability discussion
made concrete in an application where "close" is observably different
from "correct".
"""

from __future__ import annotations

import numpy as np

from repro.linalg.kernels import MatmulKernel
from repro.util.validation import require_2d


def matrix_power(
    A: np.ndarray,
    exponent: int,
    kernel: MatmulKernel | None = None,
) -> np.ndarray:
    """Compute ``A**exponent`` (non-negative integer) by binary powering.

    Uses ⌊log₂ p⌋ squarings plus popcount-1 extra products, all through
    the kernel.
    """
    A = require_2d(A, "A")
    if A.shape[0] != A.shape[1]:
        raise ValueError(f"A must be square, got {A.shape}")
    if exponent < 0 or int(exponent) != exponent:
        raise ValueError(f"exponent must be a non-negative integer, got {exponent}")
    kernel = kernel or MatmulKernel()
    n = A.shape[0]
    result = np.eye(n)
    base = np.array(A, dtype=np.float64, copy=True)
    p = int(exponent)
    first = True
    while p:
        if p & 1:
            result = base.copy() if first else kernel(result, base)
            first = False
        p >>= 1
        if p:
            base = kernel(base, base)
    return result


def count_walks(
    adjacency: np.ndarray,
    length: int,
    kernel: MatmulKernel | None = None,
) -> np.ndarray:
    """Exact walk counts of ``length`` between all vertex pairs.

    ``adjacency`` is a 0/1 (or small non-negative integer multigraph)
    matrix; the result is an integer matrix.  Raises ``ValueError`` if
    the float computation is too far from integers to round safely —
    which is exactly what happens with APA kernels at long lengths, and
    never with exact kernels at sane sizes.
    """
    A = np.asarray(adjacency)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError(f"adjacency must be square, got shape {A.shape}")
    if (A < 0).any():
        raise ValueError("adjacency entries must be non-negative")
    P = matrix_power(A.astype(np.float64), length, kernel=kernel)
    R = np.rint(P)
    drift = float(np.max(np.abs(P - R))) if P.size else 0.0
    if drift > 0.25:
        raise ValueError(
            f"float walk counts are {drift:.3f} away from integers; "
            "the configured kernel is not accurate enough for this length"
        )
    return R.astype(np.int64)
