"""Dense linear algebra on top of fast matrix multiplication (paper §6).

The paper closes by proposing to "incorporate these fast algorithms into
frameworks like BLIS and PLASMA to see how they affect a broader class of
algorithms in numerical linear algebra".  This subpackage delivers that
extension for the blocked dense-factorization core of LAPACK:

- :class:`~repro.linalg.kernels.MatmulKernel` — one object capturing the
  paper's whole tuning space (algorithm, recursion depth, addition
  strategy, parallel scheme) behind a gemm-shaped interface, so every
  routine below is generic over classical vs fast multiplication;
- :func:`~repro.linalg.trsm.solve_triangular` — recursive blocked
  triangular solve whose off-diagonal updates are fast multiplies;
- :func:`~repro.linalg.lu.lu_factor` / :func:`~repro.linalg.lu.lu_solve`
  — blocked right-looking LU with partial pivoting (GETRF), trailing
  update through the kernel;
- :func:`~repro.linalg.cholesky.cholesky` — blocked lower Cholesky
  (POTRF) with a SYRK-shaped trailing update;
- :func:`~repro.linalg.inverse.invert_triangular` /
  :func:`~repro.linalg.inverse.inv` /
  :func:`~repro.linalg.inverse.newton_schulz` — inversion built from the
  pieces above, plus the multiplication-rich Newton–Schulz iteration;
- :func:`~repro.linalg.power.matrix_power` /
  :func:`~repro.linalg.power.count_walks` — repeated squaring; walk
  counting on graph adjacency matrices as an end-to-end integer-exactness
  check of fast multiplication.

In every routine the O(n³) work is concentrated in gemm-shaped updates,
which is exactly why swapping a fast algorithm into the kernel transfers
the paper's speedups to the full factorization: an LU spends ~2/3 of its
flops in the trailing update for typical block sizes, a two-sided
recursion (TRSM, triangular inverse) essentially all of them.
``benchmarks/bench_linalg.py`` measures that transfer.
"""

from repro.linalg.cholesky import cholesky
from repro.linalg.inverse import inv, invert_triangular, newton_schulz
from repro.linalg.kernels import MatmulKernel
from repro.linalg.lu import lu_factor, lu_reconstruct, lu_solve
from repro.linalg.power import count_walks, matrix_power
from repro.linalg.trsm import solve_triangular

__all__ = [
    "MatmulKernel",
    "solve_triangular",
    "lu_factor",
    "lu_solve",
    "lu_reconstruct",
    "cholesky",
    "invert_triangular",
    "inv",
    "newton_schulz",
    "matrix_power",
    "count_walks",
]
