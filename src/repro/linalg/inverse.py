"""Matrix inversion built on the fast-multiply kernel.

Three routes, in increasing reliance on multiplication:

- :func:`invert_triangular` — the classic recursion
  ``inv([[A,0],[C,B]]) = [[A⁻¹,0],[−B⁻¹ C A⁻¹, B⁻¹]]`` whose entire
  O(n³) cost is two half-size multiplies per level (the same structure
  that gives triangular inversion Strassen-like exponents in the
  literature);
- :func:`inv` — general inverse via pivoted LU + two triangular solves
  against the identity;
- :func:`newton_schulz` — the iteration ``Xₖ₊₁ = Xₖ(2I − A Xₖ)``, two
  full-size products per sweep.  With an exact fast algorithm it
  converges exactly as with classical multiplication (quadratically,
  once ``‖I − A X₀‖ < 1``); with an APA algorithm the λ-error floor is
  clearly visible — a compact demonstration of the paper's stability
  caveats inside a real algorithm (see ``examples/fast_factorizations.py``).
"""

from __future__ import annotations

import numpy as np

from repro.linalg.kernels import MatmulKernel
from repro.linalg.lu import lu_factor, lu_solve
from repro.linalg.trsm import DEFAULT_BASE_SIZE, solve_triangular
from repro.util.validation import require_2d


def invert_triangular(
    T: np.ndarray,
    lower: bool = True,
    unit_diagonal: bool = False,
    kernel: MatmulKernel | None = None,
    base_size: int = DEFAULT_BASE_SIZE,
) -> np.ndarray:
    """Invert a triangular matrix by block recursion.

    The off-diagonal block of the inverse is ``−B⁻¹ C A⁻¹`` (lower case):
    two kernel multiplies per recursion level and nothing else above the
    base size, so the fast algorithm's advantage applies to ~100% of the
    flops — the most favourable setting §6 could hope for.
    """
    T = require_2d(T, "T")
    n = T.shape[0]
    if n != T.shape[1]:
        raise ValueError(f"T must be square, got {T.shape}")
    kernel = kernel or MatmulKernel()
    if n <= base_size:
        eye = np.eye(n)
        return solve_triangular(
            T, eye, side="left", lower=lower,
            unit_diagonal=unit_diagonal, kernel=kernel, base_size=base_size,
        )
    h = n // 2
    A = T[:h, :h]
    B = T[h:, h:]
    Ainv = invert_triangular(A, lower, unit_diagonal, kernel, base_size)
    Binv = invert_triangular(B, lower, unit_diagonal, kernel, base_size)
    out = np.zeros((n, n))
    out[:h, :h] = Ainv
    out[h:, h:] = Binv
    if lower:
        C = T[h:, :h]
        out[h:, :h] = -kernel(kernel(Binv, C), Ainv)
    else:
        C = T[:h, h:]
        out[:h, h:] = -kernel(kernel(Ainv, C), Binv)
    return out


def inv(
    A: np.ndarray,
    kernel: MatmulKernel | None = None,
    block: int = 128,
) -> np.ndarray:
    """General inverse via blocked pivoted LU (GETRF + GETRI shape)."""
    A = require_2d(A, "A")
    if A.shape[0] != A.shape[1]:
        raise ValueError(f"A must be square, got {A.shape}")
    kernel = kernel or MatmulKernel()
    fac = lu_factor(A, kernel=kernel, block=block)
    return lu_solve(fac, np.eye(A.shape[0]), kernel=kernel)


def newton_schulz(
    A: np.ndarray,
    kernel: MatmulKernel | None = None,
    iterations: int = 30,
    tol: float = 1e-12,
    X0: np.ndarray | None = None,
) -> tuple[np.ndarray, list[float]]:
    """Newton–Schulz inverse iteration ``Xₖ₊₁ = Xₖ (2I − A Xₖ)``.

    Returns ``(X, history)`` where ``history[k] = ‖I − A Xₖ‖_F / √n`` per
    sweep (including the final one); iteration stops early at ``tol``.
    The default ``X0 = Aᵀ/(‖A‖₁‖A‖∞)`` guarantees initial contraction for
    any nonsingular ``A`` (Pan–Reif / Söderström–Stewart).

    Each sweep is exactly two kernel products — the ideal stress test for
    error accumulation under fast multiplication, since rounding from one
    sweep feeds the next.
    """
    A = require_2d(A, "A")
    n = A.shape[0]
    if n != A.shape[1]:
        raise ValueError(f"A must be square, got {A.shape}")
    kernel = kernel or MatmulKernel()
    if X0 is None:
        norm1 = float(np.abs(A).sum(axis=0).max())
        norminf = float(np.abs(A).sum(axis=1).max())
        X = A.T / (norm1 * norminf)
    else:
        X = np.array(X0, dtype=np.float64, copy=True)
    eye2 = 2.0 * np.eye(n)
    history: list[float] = []
    scale = float(np.sqrt(n))
    for _ in range(iterations):
        AX = kernel(A, X)
        res = float(np.linalg.norm(np.eye(n) - AX)) / scale
        history.append(res)
        if res <= tol:
            break
        X = kernel(X, eye2 - AX)
    return X, history
