"""Gemm-shaped kernel objects that route through the fast-multiply stack.

A :class:`MatmulKernel` is the single knob the :mod:`repro.linalg`
routines expose for choosing *how* their O(n³) updates are computed: the
vendor BLAS (``algorithm=None``), any catalog fast algorithm by name, or
an explicit :class:`~repro.core.algorithm.FastAlgorithm` — sequentially
or under one of the paper's parallel schemes.

This mirrors how BLIS/PLASMA-style frameworks are organized (the paper's
§6 proposal): the factorization drivers are written once against a gemm
interface and the kernel decides classical vs fast.  The ``min_dim``
guard encodes the paper's §3.4 cutoff lesson — fast algorithms only pay
off once the operands clear the vendor gemm's ramp-up region, so small
panel-sized updates fall through to BLAS automatically.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.algorithm import FastAlgorithm
from repro.core.recursion import multiply as multiply_reference
from repro.parallel.schedules import multiply_parallel


@dataclasses.dataclass
class MatmulKernel:
    """A configured matrix-multiply ``(A, B) -> A @ B``.

    Parameters
    ----------
    algorithm:
        ``None`` for the vendor BLAS, a registry name (``"strassen"``,
        ``"s424"``, ...) or a :class:`FastAlgorithm`.
    steps:
        recursion depth for the fast algorithm (paper: best of 1–3).
    parallel, scheme, threads:
        run leaf multiplies under a §4 scheme (``dfs``/``bfs``/``hybrid``).
    min_dim:
        operands whose smallest dimension is below this use BLAS directly;
        fast recursion on panel-thin blocks only adds overhead (§3.4).
    counting:
        when True, record every call in :attr:`calls` (shape triples), so
        tests and benchmarks can audit where the flops went.
    """

    algorithm: str | FastAlgorithm | None = None
    steps: int = 1
    parallel: bool = False
    scheme: str = "hybrid"
    threads: int | None = None
    min_dim: int = 128
    counting: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.algorithm, str):
            from repro.algorithms import get_algorithm

            self.algorithm = get_algorithm(self.algorithm)
        self.calls: list[tuple[int, int, int, str]] = []

    # ------------------------------------------------------------------ info
    @property
    def is_fast(self) -> bool:
        """True when a fast algorithm (not the vendor BLAS) is configured."""
        return self.algorithm is not None

    def flops(self, p: int, q: int, r: int) -> float:
        """Classical flop count ``2pqr`` of one product (for reporting).

        The kernel's *actual* arithmetic is lower when fast algorithms
        engage; effective-GFLOPS reporting (Eq. 3) deliberately normalizes
        by the classical count, and so do we.
        """
        return 2.0 * p * q * r

    # ----------------------------------------------------------------- calls
    def __call__(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """Return ``A @ B`` through the configured path."""
        p, q = A.shape
        r = B.shape[1]
        route = self._route(p, q, r)
        if self.counting:
            self.calls.append((p, q, r, route))
        if route == "blas":
            return A @ B
        assert isinstance(self.algorithm, FastAlgorithm)
        if route == "parallel":
            return multiply_parallel(
                A, B, self.algorithm, steps=self.steps,
                scheme=self.scheme, threads=self.threads,
            )
        return multiply_reference(A, B, self.algorithm, steps=self.steps)

    def update(
        self,
        C: np.ndarray,
        A: np.ndarray,
        B: np.ndarray,
        alpha: float = -1.0,
    ) -> np.ndarray:
        """In-place rank-q update ``C += alpha * (A @ B)``; returns ``C``.

        This is the gemm form every blocked factorization needs (trailing
        updates are ``C -= L @ U``).  ``C`` may be a non-contiguous view
        into a larger matrix — the accumulate is done with ufunc ``out=``
        so no copy of ``C`` is made.
        """
        if C.shape != (A.shape[0], B.shape[1]):
            raise ValueError(
                f"update shape mismatch: C is {C.shape}, product is "
                f"{(A.shape[0], B.shape[1])}"
            )
        if min(C.shape) == 0 or A.shape[1] == 0:
            return C
        P = self(A, B)
        if alpha == 1.0:
            np.add(C, P, out=C)
        elif alpha == -1.0:
            np.subtract(C, P, out=C)
        else:
            P *= alpha
            np.add(C, P, out=C)
        return C

    # -------------------------------------------------------------- internal
    def _route(self, p: int, q: int, r: int) -> str:
        if self.algorithm is None or min(p, q, r) < self.min_dim:
            return "blas"
        return "parallel" if self.parallel else "sequential"

    def reset_counts(self) -> None:
        self.calls.clear()

    def fast_fraction(self) -> float:
        """Fraction of recorded classical flops routed through the fast path.

        Only meaningful with ``counting=True``; tests use it to assert
        that the blocked drivers really do put the bulk of their work
        through the fast algorithm.
        """
        total = fast = 0.0
        for p, q, r, route in self.calls:
            f = self.flops(p, q, r)
            total += f
            if route != "blas":
                fast += f
        return fast / total if total else 0.0
