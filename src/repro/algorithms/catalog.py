"""Registry of fast algorithms (the paper's Table 2 and then some).

Resolution order for each named algorithm:

1. a literal definition (Strassen, Winograd, classical);
2. a coefficient file in ``repro/algorithms/data/*.json`` produced by our
   ALS search campaign (``repro.search.driver``), re-running the paper's
   own Section-2.3 methodology;
3. a documented *composed fallback* (Kronecker products / direct sums of
   smaller exact algorithms) whose rank may exceed the paper's -- the delta
   is visible via ``table2()`` and recorded in EXPERIMENTS.md.

Any base-case permutation of a registered algorithm is available through
:func:`by_base_case` (Propositions 2.1/2.2 guarantee equal rank).
"""

from __future__ import annotations

import dataclasses
import functools
import json
from pathlib import Path

from repro.algorithms.classical import classical
from repro.algorithms.strassen import strassen, winograd
from repro.core.algorithm import FastAlgorithm
from repro.core.compose import direct_sum_k, direct_sum_n, kron
from repro.core.transforms import permutation_family, permute_to

DATA_DIR = Path(__file__).parent / "data"

#: Table 2 of the paper: base case -> (fast rank, classical rank)
PAPER_TABLE2 = {
    (2, 2, 3): (11, 12),
    (2, 2, 5): (18, 20),
    (2, 2, 2): (7, 8),
    (2, 2, 4): (14, 16),
    (3, 3, 3): (23, 27),
    (2, 3, 3): (15, 18),
    (2, 3, 4): (20, 24),
    (2, 4, 4): (26, 32),
    (3, 3, 4): (29, 36),
    (3, 4, 4): (38, 48),
    (3, 3, 6): (40, 54),
}

#: APA entries of Table 2: base case -> rank
PAPER_TABLE2_APA = {
    (3, 2, 2): 10,  # Bini et al.
    (3, 3, 3): 21,  # Schonhage
}


def _load_data(stem: str) -> FastAlgorithm | None:
    path = DATA_DIR / f"{stem}.json"
    if not path.exists():
        return None
    d = json.loads(path.read_text())
    d["name"] = stem  # registry name wins over the driver's generic name
    return FastAlgorithm.from_dict(d)


# --------------------------------------------------------------------------
# composed fallbacks (exact, possibly above paper rank)
# --------------------------------------------------------------------------
def _fallback_223() -> FastAlgorithm:
    # <2,2,2> (+)n <2,2,1>: 7 + 4 = 11, the Hopcroft-Kerr rank
    return direct_sum_n(strassen(), classical(2, 2, 1), name="hk223")


def _fallback_224() -> FastAlgorithm:
    # <2,2,2> x <1,1,2>: 7 * 2 = 14, the Hopcroft-Kerr rank
    return kron(strassen(), classical(1, 1, 2), name="hk224")


def _fallback_225() -> FastAlgorithm:
    # 14 + 4 = 18, the Hopcroft-Kerr rank
    return direct_sum_n(_fallback_224(), classical(2, 2, 1), name="hk225")


def _fallback_233() -> FastAlgorithm:
    # <2,2,3> (+)k <2,1,3>: 11 + 6 = 17 (paper: 15)
    return direct_sum_k(_fallback_223(), classical(2, 1, 3), name="c233")


def _fallback_234() -> FastAlgorithm:
    # best of: s233 (+)n <2,3,1> (15+6=21) or fallback 17+6=23
    base = _load_data("s233") or _fallback_233()
    return direct_sum_n(base, classical(2, 3, 1), name="c234")


def _fallback_244() -> FastAlgorithm:
    # <2,2,2> x <1,2,2>: 7 * 4 = 28 (paper: 26)
    return kron(strassen(), classical(1, 2, 2), name="c244")


def _fallback_334() -> FastAlgorithm:
    # <3,3,2> x <1,1,2>: 15*2=30 with searched s233, else 17*2=34 (paper: 29)
    base = _load_data("s233") or _fallback_233()
    return kron(permute_to(base, 3, 3, 2), classical(1, 1, 2), name="c334")


def _fallback_344() -> FastAlgorithm:
    # <3,4,2> x <1,1,2>: 2 * rank(<2,3,4>-family) (paper: 38)
    base = _load_data("s234") or _fallback_234()
    return kron(permute_to(base, 3, 4, 2), classical(1, 1, 2), name="c344")


def _fallback_336() -> FastAlgorithm:
    # <3,3,2> x <1,1,3>: 3 * rank(<2,3,3>-family); 45 with s233@15
    # (paper/Smirnov: 40)
    base = _load_data("s233") or _fallback_233()
    return kron(permute_to(base, 3, 3, 2), classical(1, 1, 3), name="c336")


def _fallback_322_apa() -> FastAlgorithm:
    # no approximate decomposition available -> exact permuted <2,2,3>
    return permute_to(_load_data("s233") or _fallback_223(), 3, 2, 2)


_SEARCHED = {
    "s233": ((2, 3, 3), _fallback_233),
    "s234": ((2, 3, 4), _fallback_234),
    "s244": ((2, 4, 4), _fallback_244),
    "s334": ((3, 3, 4), _fallback_334),
    "s344": ((3, 4, 4), _fallback_344),
    "s336": ((3, 3, 6), _fallback_336),
    "s333": ((3, 3, 3), None),  # Laderman-rank; seeded search always ships
    "s225": ((2, 2, 5), _fallback_225),
}


@functools.lru_cache(maxsize=None)
def get_algorithm(name: str) -> FastAlgorithm:
    """Look up an algorithm by registry name.

    Names: ``classical{m}{k}{n}``, ``strassen``, ``winograd``,
    ``hk223/hk224/hk225``, searched ``s{mkn}`` (e.g. ``s424`` resolves via
    permutation), APA ``bini322`` / ``schonhage333``.
    """
    if name == "strassen":
        return strassen()
    if name == "winograd":
        return winograd()
    if name.startswith("classical"):
        dims = name.removeprefix("classical")
        if len(dims) != 3 or not dims.isdigit():
            raise KeyError(f"bad classical algorithm name {name!r}")
        return classical(*(int(c) for c in dims))
    if name == "hk223":
        return _fallback_223()
    if name == "hk224":
        return _fallback_224()
    if name == "hk225":
        return _fallback_225()
    if name == "bini322":
        alg = _load_data("bini322")
        return alg if alg is not None else _fallback_322_apa()
    if name == "schonhage333":
        alg = _load_data("schonhage333")
        if alg is None:
            raise KeyError("schonhage333 data file missing and no fallback")
        return alg
    if name in _SEARCHED:
        alg = _load_data(name)
        # a data file that did not reach exactness (search plateaued) must
        # not shadow the exact composed fallback
        if alg is not None and not alg.apa:
            return alg
        fallback = _SEARCHED[name][1]
        if fallback is None:
            if alg is not None:
                return alg
            raise KeyError(f"{name}: no data file and no fallback")
        return fallback()
    # permutations, e.g. "s424" -> permute s244; "s332" -> s233
    if name.startswith("s") and len(name) == 4 and name[1:].isdigit():
        dims = tuple(int(c) for c in name[1:])
        alg = by_base_case(*dims)
        if alg.name.startswith("classical"):
            raise KeyError(
                f"no fast algorithm registered for base case {dims} "
                f"(only the classical fallback exists; use classical{name[1:]})"
            )
        return alg
    raise KeyError(f"unknown algorithm {name!r}")


def _registered_roots(include_apa: bool = False) -> list[str]:
    roots = ["strassen", "hk223", "hk224", "hk225"]
    roots += [s for s in _SEARCHED]
    if include_apa:
        roots += ["bini322", "schonhage333"]
    return roots


def list_algorithms(include_apa: bool = True) -> list[str]:
    """All registry names with a concrete (non-classical) algorithm behind
    them — the root entries plus the Winograd variant; permutation names
    (``s424`` etc.) resolve through :func:`get_algorithm` but are not
    enumerated here."""
    names = ["strassen", "winograd"]
    names += [r for r in _registered_roots(include_apa=include_apa)
              if r != "strassen"]
    return names


def by_base_case(m: int, k: int, n: int, include_apa: bool = False) -> FastAlgorithm:
    """Best-rank registered algorithm for exactly ``<m,k,n>`` (resolving
    base-case permutations via Props. 2.1/2.2)."""
    best: FastAlgorithm | None = None
    for name in _registered_roots(include_apa=include_apa):
        try:
            alg = get_algorithm(name)
        except KeyError:
            continue
        if alg.apa and not include_apa:
            continue
        family = permutation_family(alg)
        cand = family.get((m, k, n))
        if cand is not None and (best is None or cand.rank < best.rank):
            best = cand
    if best is None:
        return classical(m, k, n)
    return best


@dataclasses.dataclass(frozen=True)
class CatalogEntry:
    name: str
    base_case: tuple[int, int, int]
    rank: int
    classical_rank: int
    speedup_per_step: float
    apa: bool
    paper_rank: int | None
    provenance: str


def table2() -> list[CatalogEntry]:
    """Our rendition of the paper's Table 2: every registered algorithm with
    its achieved rank next to the paper's rank."""
    out = []
    names = ["strassen", "winograd", "hk223", "hk224", "hk225",
             "s233", "s234", "s244", "s334", "s344", "s336", "s333",
             "bini322", "schonhage333"]
    for name in names:
        try:
            alg = get_algorithm(name)
        except KeyError:
            continue
        bc = alg.base_case
        paper = PAPER_TABLE2.get(bc, (None,))[0]
        if alg.apa:
            paper = PAPER_TABLE2_APA.get(bc, paper)
        if name in ("strassen", "winograd"):
            prov = "literal (paper)"
        elif alg.name == name and (DATA_DIR / f"{name}.json").exists():
            prov = "ALS search (this repo)"
        else:
            prov = "composed fallback"
        out.append(CatalogEntry(
            name=name, base_case=bc, rank=alg.rank,
            classical_rank=alg.classical_rank,
            speedup_per_step=alg.multiplication_speedup_per_step,
            apa=alg.apa, paper_rank=paper, provenance=prov,
        ))
    return out


def refresh_cache() -> None:
    """Drop memoized algorithms (call after regenerating data files)."""
    get_algorithm.cache_clear()
