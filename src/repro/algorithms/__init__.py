"""Algorithm catalog: literal, searched and composed fast algorithms."""

from repro.algorithms.catalog import (
    CatalogEntry,
    PAPER_TABLE2,
    by_base_case,
    get_algorithm,
    list_algorithms,
    table2,
)
from repro.algorithms.classical import classical
from repro.algorithms.strassen import strassen, winograd

__all__ = [
    "CatalogEntry",
    "PAPER_TABLE2",
    "by_base_case",
    "get_algorithm",
    "list_algorithms",
    "table2",
    "classical",
    "strassen",
    "winograd",
]
