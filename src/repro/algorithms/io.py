"""Interop with the original fast-matmul coefficient text format.

Benson & Ballard's released code (github.com/arbenson/fast-matmul) stores
algorithms as plain-text files: a header line ``M,K,N,R`` followed by the
three factor matrices row by row, blank-line separated, entries
whitespace-separated (rationals like ``1/2`` allowed; APA files use the
symbol ``x`` for lambda -- we substitute a concrete value on read).

This lets coefficient files travel in both directions between this
reproduction and the authors' repository.
"""

from __future__ import annotations

from fractions import Fraction
from pathlib import Path

import numpy as np

from repro.core.algorithm import FastAlgorithm


def _parse_entry(tok: str, lam: float) -> float:
    """Entry grammar: rational numbers plus the APA placeholder ``x``."""
    tok = tok.strip()
    if not tok:
        raise ValueError("empty coefficient token")
    if "x" in tok:
        # forms like 'x', '-x', '1/x', '-1/x', '2x'
        neg = tok.startswith("-")
        body = tok.lstrip("+-")
        if body == "x":
            val = lam
        elif body.endswith("/x"):
            num = body[:-2] or "1"
            val = float(Fraction(num)) / lam
        elif body.endswith("x"):
            coef = body[:-1] or "1"
            val = float(Fraction(coef)) * lam
        else:
            raise ValueError(f"cannot parse APA coefficient {tok!r}")
        return -val if neg else val
    return float(Fraction(tok))


def _format_entry(x: float, max_den: int = 64) -> str:
    frac = Fraction(x).limit_denominator(max_den)
    if abs(float(frac) - x) < 1e-12:
        return str(frac)
    return repr(x)


def read_fast_matmul(path: str | Path, lam: float = 1e-4,
                     name: str | None = None) -> FastAlgorithm:
    """Read a fast-matmul text file into a :class:`FastAlgorithm`.

    ``lam`` is substituted for the APA placeholder ``x`` when present; the
    result is marked ``apa`` automatically if its residual is nonzero.
    """
    text = Path(path).read_text()
    lines = [ln for ln in (l.split("#")[0].strip() for l in text.splitlines())]
    # drop leading blanks
    while lines and not lines[0]:
        lines.pop(0)
    if not lines:
        raise ValueError(f"{path}: empty file")
    header = lines.pop(0).replace(",", " ").split()
    if len(header) != 4:
        raise ValueError(f"{path}: header must be 'M,K,N,R', got {header}")
    m, k, n, R = (int(t) for t in header)

    blocks: list[list[list[float]]] = []
    cur: list[list[float]] = []
    for ln in lines:
        if not ln:
            if cur:
                blocks.append(cur)
                cur = []
            continue
        cur.append([_parse_entry(t, lam) for t in ln.split()])
    if cur:
        blocks.append(cur)
    if len(blocks) != 3:
        raise ValueError(f"{path}: expected 3 factor blocks, got {len(blocks)}")
    U, V, W = (np.array(b, dtype=float) for b in blocks)
    for mat, rows, label in ((U, m * k, "U"), (V, k * n, "V"), (W, m * n, "W")):
        if mat.shape != (rows, R):
            raise ValueError(
                f"{path}: {label} has shape {mat.shape}, expected {(rows, R)}"
            )
    alg = FastAlgorithm(m, k, n, U, V, W,
                        name=name or Path(path).stem, apa=True)
    if alg.check_exact():
        alg = FastAlgorithm(m, k, n, U, V, W,
                            name=name or Path(path).stem, apa=False)
    return alg


def write_fast_matmul(alg: FastAlgorithm, path: str | Path) -> None:
    """Write an algorithm in the fast-matmul text format (exact entries as
    small rationals where possible)."""
    out = [f"{alg.m},{alg.k},{alg.n},{alg.rank}"]
    for mat in (alg.U, alg.V, alg.W):
        out.append("")
        for row in mat:
            out.append(" ".join(_format_entry(float(x)) for x in row))
    Path(path).write_text("\n".join(out) + "\n")


def roundtrip_equal(a: FastAlgorithm, b: FastAlgorithm, tol: float = 1e-9) -> bool:
    """True when two algorithms have identical factors up to ``tol``."""
    return (
        a.base_case == b.base_case
        and a.rank == b.rank
        and bool(np.allclose(a.U, b.U, atol=tol))
        and bool(np.allclose(a.V, b.V, atol=tol))
        and bool(np.allclose(a.W, b.W, atol=tol))
    )
