"""The classical (rank ``m*k*n``) algorithm for any base case.

One rank-one term per scalar product ``a_{ij} * b_{jl} -> c_{il}``.  Used
as the trivial building block in compositions (direct sums, Kronecker
products) and as the reference baseline everywhere.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithm import FastAlgorithm


def classical(m: int, k: int, n: int) -> FastAlgorithm:
    """Exact <m,k,n> algorithm with the full ``m*k*n`` multiplications."""
    R = m * k * n
    U = np.zeros((m * k, R))
    V = np.zeros((k * n, R))
    W = np.zeros((m * n, R))
    r = 0
    for i in range(m):
        for j in range(k):
            for l in range(n):
                U[i * k + j, r] = 1.0
                V[j * n + l, r] = 1.0
                W[i * n + l, r] = 1.0
                r += 1
    return FastAlgorithm(m, k, n, U, V, W, name=f"classical{m}{k}{n}")
