"""Strassen's algorithm and the Strassen-Winograd variant as [[U,V,W]].

The Strassen factor matrices are transcribed verbatim from Section 2.2.2 of
the paper.  The Winograd variant performs the same 7 multiplications but
only 15 additions once its shared intermediates are reused -- our CSE pass
(Section 3.3) rediscovers that reuse from the raw factors.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithm import FastAlgorithm


def strassen() -> FastAlgorithm:
    """Strassen's <2,2,2> algorithm, rank 7 (paper Section 2.2.2).

    Notes on W relative to the paper's display: (1) the printed W lists the
    c21 combination (M2+M4) in row 2 and c12 (M3+M5) in row 3 -- column-major
    ordering for vec(C) -- while the rest of the paper uses row-major
    vectorization, so we swap those rows; (2) the printed row for c22 reads
    ``m1 - m2 + m3 + m4`` but the algorithm text in Section 2.1 (and
    Strassen's original paper) has ``C22 = M1 - M2 + M3 + M6``, which is
    what we encode.  Exactness is enforced by ``FastAlgorithm.validate``.
    """
    U = np.array(
        [
            [1, 0, 1, 0, 1, -1, 0],
            [0, 0, 0, 0, 1, 0, 1],
            [0, 1, 0, 0, 0, 1, 0],
            [1, 1, 0, 1, 0, 0, -1],
        ],
        dtype=float,
    )
    V = np.array(
        [
            [1, 1, 0, -1, 0, 1, 0],
            [0, 0, 1, 0, 0, 1, 0],
            [0, 0, 0, 1, 0, 0, 1],
            [1, 0, -1, 0, 1, 0, 1],
        ],
        dtype=float,
    )
    W = np.array(
        [
            [1, 0, 0, 1, -1, 0, 1],   # c11 = m1 + m4 - m5 + m7
            [0, 0, 1, 0, 1, 0, 0],    # c12 = m3 + m5
            [0, 1, 0, 1, 0, 0, 0],    # c21 = m2 + m4
            [1, -1, 1, 0, 0, 1, 0],   # c22 = m1 - m2 + m3 + m6
        ],
        dtype=float,
    )
    return FastAlgorithm(2, 2, 2, U, V, W, name="strassen")


def winograd() -> FastAlgorithm:
    """Strassen-Winograd <2,2,2>: 7 multiplications, additive complexity 15.

    Products (blocks of A row-major a11,a12,a21,a22; B likewise):

        M1 = a11 * b11                 M5 = (a21+a22) * (b12-b11)
        M2 = a12 * b21                 M6 = (a21+a22-a11) * (b11-b12+b22)
        M3 = (a11+a12-a21-a22) * b22   M7 = (a11-a21) * (b22-b12)
        M4 = a22 * (b11-b12-b21+b22)   [sign convention below]

        C11 = M1+M2, C12 = M1+M3+M5+M6, C21 = M1-M4+M6+M7, C22 = M1+M5+M6+M7
    """
    # columns: M1..M7
    U = np.array(
        [
            [1, 0, 1, 0, 0, -1, 1],
            [0, 1, 1, 0, 0, 0, 0],
            [0, 0, -1, 0, 1, 1, -1],
            [0, 0, -1, 1, 1, 1, 0],
        ],
        dtype=float,
    )
    V = np.array(
        [
            [1, 0, 0, 1, -1, 1, 0],
            [0, 0, 0, -1, 1, -1, -1],
            [0, 1, 0, -1, 0, 0, 0],
            [0, 0, 1, 1, 0, 1, 1],
        ],
        dtype=float,
    )
    W = np.array(
        [
            [1, 1, 0, 0, 0, 0, 0],
            [1, 0, 1, 0, 1, 1, 0],
            [1, 0, 0, -1, 0, 1, 1],
            [1, 0, 0, 0, 1, 1, 1],
        ],
        dtype=float,
    )
    return FastAlgorithm(2, 2, 2, U, V, W, name="winograd")
