"""Composing fast algorithms: Kronecker products and direct sums.

Two classic constructions let us build exact algorithms for larger base
cases out of smaller ones (used both for the Hopcroft-Kerr-rank family
``<2,2,n>`` and as documented fallbacks when the numerical search does not
reach the paper's rank):

- **Kronecker (tensor) product**: algorithms for ``<m1,k1,n1>`` (rank R1)
  and ``<m2,k2,n2>`` (rank R2) combine into ``<m1*m2, k1*k2, n1*n2>`` with
  rank ``R1*R2`` -- this is exactly the "composed" construction the paper
  uses for its <54,54,54> algorithm (Section 5.2), where different factors
  may be used at each recursion level.

- **Direct sums** along each of the three dimensions: e.g. splitting B's
  columns gives ``<m,k,n1+n2>`` from ``<m,k,n1>`` and ``<m,k,n2>`` with
  rank ``R1+R2`` (``C = A [B1 B2] = [A B1, A B2]``).  Splitting along k
  sums the two partial products instead.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithm import FastAlgorithm


# --------------------------------------------------------------------------
# index maps between "pair" ordering and row-major vec ordering
# --------------------------------------------------------------------------
def _kron_row_permutation(r1: int, c1: int, r2: int, c2: int) -> np.ndarray:
    """Permutation ``perm`` such that for X = A1 (x) A2 (block Kronecker of
    an r1 x c1 by an r2 x c2 matrix), ``vec(X)[perm[i]] = (vec(A1) kron
    vec(A2))[i]``.

    Kron-index ``i = i1 * (r2*c2) + i2`` with ``i1 = a*c1 + b`` and
    ``i2 = c*c2 + d`` corresponds to entry (row, col) =
    ``(a*r2 + c, b*c2 + d)`` of X, i.e. row-major vec index
    ``(a*r2 + c) * (c1*c2) + b*c2 + d``.
    """
    perm = np.empty(r1 * c1 * r2 * c2, dtype=np.intp)
    i = 0
    for a in range(r1):
        for b in range(c1):
            for c in range(r2):
                for d in range(c2):
                    perm[i] = (a * r2 + c) * (c1 * c2) + (b * c2 + d)
                    i += 1
    return perm


def kron(f: FastAlgorithm, g: FastAlgorithm, name: str | None = None) -> FastAlgorithm:
    """Tensor-product algorithm for ``<f.m*g.m, f.k*g.k, f.n*g.n>``.

    Semantically: partition A into an ``f.m x f.k`` grid whose blocks are
    themselves multiplied with algorithm ``g``.
    """
    pu = _kron_row_permutation(f.m, f.k, g.m, g.k)
    pv = _kron_row_permutation(f.k, f.n, g.k, g.n)
    pw = _kron_row_permutation(f.m, f.n, g.m, g.n)
    U = np.empty((f.U.shape[0] * g.U.shape[0], f.rank * g.rank))
    V = np.empty((f.V.shape[0] * g.V.shape[0], f.rank * g.rank))
    W = np.empty((f.W.shape[0] * g.W.shape[0], f.rank * g.rank))
    U[pu] = np.kron(f.U, g.U)
    V[pv] = np.kron(f.V, g.V)
    W[pw] = np.kron(f.W, g.W)
    return FastAlgorithm(
        f.m * g.m, f.k * g.k, f.n * g.n, U, V, W,
        name=name or f"{f.name}*{g.name}",
        apa=f.apa or g.apa,
    )


# --------------------------------------------------------------------------
# direct sums
# --------------------------------------------------------------------------
def _embed_rows(src: np.ndarray, row_map: np.ndarray, total_rows: int) -> np.ndarray:
    out = np.zeros((total_rows, src.shape[1]))
    out[row_map] = src
    return out


def _grid_rows(rows: int, cols: int, row_off: int, col_off: int,
               total_cols: int) -> np.ndarray:
    """vec indices of an ``rows x cols`` block placed at (row_off, col_off)
    inside a matrix with ``total_cols`` columns (row-major vec)."""
    idx = np.empty(rows * cols, dtype=np.intp)
    t = 0
    for i in range(rows):
        for j in range(cols):
            idx[t] = (row_off + i) * total_cols + (col_off + j)
            t += 1
    return idx


def direct_sum_n(f: FastAlgorithm, g: FastAlgorithm,
                 name: str | None = None) -> FastAlgorithm:
    """``<m,k,n1>`` (+) ``<m,k,n2>`` -> ``<m,k,n1+n2>``, rank ``R1+R2``.

    B and C are split column-wise; A is shared by both halves.
    """
    if (f.m, f.k) != (g.m, g.k):
        raise ValueError(f"m,k must agree: {f.base_case} vs {g.base_case}")
    m, k, n = f.m, f.k, f.n + g.n
    U = np.hstack([f.U, g.U])
    vf = _grid_rows(k, f.n, 0, 0, n)
    vg = _grid_rows(k, g.n, 0, f.n, n)
    V = np.hstack([
        _embed_rows(f.V, vf, k * n),
        _embed_rows(g.V, vg, k * n),
    ])
    wf = _grid_rows(m, f.n, 0, 0, n)
    wg = _grid_rows(m, g.n, 0, f.n, n)
    W = np.hstack([
        _embed_rows(f.W, wf, m * n),
        _embed_rows(g.W, wg, m * n),
    ])
    return FastAlgorithm(m, k, n, U, V, W,
                         name=name or f"{f.name}(+n){g.name}",
                         apa=f.apa or g.apa)


def direct_sum_m(f: FastAlgorithm, g: FastAlgorithm,
                 name: str | None = None) -> FastAlgorithm:
    """``<m1,k,n>`` (+) ``<m2,k,n>`` -> ``<m1+m2,k,n>``: A and C split row-wise."""
    if (f.k, f.n) != (g.k, g.n):
        raise ValueError(f"k,n must agree: {f.base_case} vs {g.base_case}")
    m, k, n = f.m + g.m, f.k, f.n
    uf = _grid_rows(f.m, k, 0, 0, k)
    ug = _grid_rows(g.m, k, f.m, 0, k)
    U = np.hstack([
        _embed_rows(f.U, uf, m * k),
        _embed_rows(g.U, ug, m * k),
    ])
    V = np.hstack([f.V, g.V])
    wf = _grid_rows(f.m, n, 0, 0, n)
    wg = _grid_rows(g.m, n, f.m, 0, n)
    W = np.hstack([
        _embed_rows(f.W, wf, m * n),
        _embed_rows(g.W, wg, m * n),
    ])
    return FastAlgorithm(m, k, n, U, V, W,
                         name=name or f"{f.name}(+m){g.name}",
                         apa=f.apa or g.apa)


def direct_sum_k(f: FastAlgorithm, g: FastAlgorithm,
                 name: str | None = None) -> FastAlgorithm:
    """``<m,k1,n>`` (+) ``<m,k2,n>`` -> ``<m,k1+k2,n>``.

    A split column-wise, B row-wise; the two partial products *add* into the
    shared C, so W columns concatenate without embedding.
    """
    if (f.m, f.n) != (g.m, g.n):
        raise ValueError(f"m,n must agree: {f.base_case} vs {g.base_case}")
    m, k, n = f.m, f.k + g.k, f.n
    uf = _grid_rows(m, f.k, 0, 0, k)
    ug = _grid_rows(m, g.k, 0, f.k, k)
    U = np.hstack([
        _embed_rows(f.U, uf, m * k),
        _embed_rows(g.U, ug, m * k),
    ])
    vf = _grid_rows(f.k, n, 0, 0, n)
    vg = _grid_rows(g.k, n, f.k, 0, n)
    V = np.hstack([
        _embed_rows(f.V, vf, k * n),
        _embed_rows(g.V, vg, k * n),
    ])
    W = np.hstack([f.W, g.W])
    return FastAlgorithm(m, k, n, U, V, W,
                         name=name or f"{f.name}(+k){g.name}",
                         apa=f.apa or g.apa)
