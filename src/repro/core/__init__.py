"""Core representation of fast matrix-multiplication algorithms.

The paper's framework (Section 2) is reproduced here:

- ``tensor``      -- the matmul tensor ``T_{<M,K,N>}`` and tensor algebra
- ``algorithm``   -- ``FastAlgorithm`` = a low-rank decomposition [[U,V,W]]
- ``transforms``  -- base-case permutations (Props. 2.1/2.2) and the
                     equivalence-class transforms (Prop. 2.3)
- ``compose``     -- classical algorithms, Kronecker products, direct sums
- ``recursion``   -- the reference (interpreter) recursive executor with
                     dynamic peeling and cutoff policies
- ``apa``         -- arbitrary-precision-approximate (APA) machinery
- ``cost``        -- arithmetic/communication/memory cost models
- ``workspace``   -- preallocated arenas with the Section 4.1/4.2 footprint
                     formulas (zero-allocation steady state for hot paths)
"""

from repro.core.algorithm import FastAlgorithm, EXACT_TOL
from repro.core.tensor import matmul_tensor
from repro.core.workspace import Workspace, WorkspacePool, track_allocations

__all__ = [
    "FastAlgorithm",
    "EXACT_TOL",
    "matmul_tensor",
    "Workspace",
    "WorkspacePool",
    "track_allocations",
]
