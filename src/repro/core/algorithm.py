"""``FastAlgorithm``: a fast matrix-multiplication algorithm as ``[[U,V,W]]``.

A fast algorithm for base case ``<m,k,n>`` is a triple of factor matrices

    U : (m*k, R)   -- linear combinations of A's blocks forming S_r
    V : (k*n, R)   -- linear combinations of B's blocks forming T_r
    W : (m*n, R)   -- linear combinations of the products M_r forming C

with ``[[U,V,W]] == T_{<m,k,n>}`` (exact algorithms) or approximately so
(APA algorithms, paper Section 2.2.3).  The rank ``R`` (number of columns)
is the number of recursive multiplications.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path

import numpy as np

from repro.core import tensor as tz

#: residual below which a decomposition is treated as numerically exact
EXACT_TOL = 1e-9


@dataclasses.dataclass(frozen=True)
class FastAlgorithm:
    """Immutable description of one fast algorithm.

    Attributes
    ----------
    m, k, n : base-case dimensions ``<m,k,n>`` (A is m x k, B is k x n).
    U, V, W : factor matrices, shapes ``(m*k, R)``, ``(k*n, R)``, ``(m*n, R)``.
    name    : registry name, e.g. ``"strassen"``.
    apa     : True for arbitrary-precision-approximate algorithms; their
              tensor residual is nonzero by design and ``check_exact``
              reports rather than enforces it.
    """

    m: int
    k: int
    n: int
    U: np.ndarray
    V: np.ndarray
    W: np.ndarray
    name: str = "unnamed"
    apa: bool = False

    def __post_init__(self):
        U = np.ascontiguousarray(np.asarray(self.U, dtype=np.float64))
        V = np.ascontiguousarray(np.asarray(self.V, dtype=np.float64))
        W = np.ascontiguousarray(np.asarray(self.W, dtype=np.float64))
        if U.shape[0] != self.m * self.k:
            raise ValueError(f"U has {U.shape[0]} rows, expected m*k={self.m * self.k}")
        if V.shape[0] != self.k * self.n:
            raise ValueError(f"V has {V.shape[0]} rows, expected k*n={self.k * self.n}")
        if W.shape[0] != self.m * self.n:
            raise ValueError(f"W has {W.shape[0]} rows, expected m*n={self.m * self.n}")
        if not (U.shape[1] == V.shape[1] == W.shape[1]):
            raise ValueError(
                f"rank mismatch: U,V,W have {U.shape[1]},{V.shape[1]},{W.shape[1]} columns"
            )
        # freeze the arrays so the dataclass is genuinely immutable
        for arr in (U, V, W):
            arr.setflags(write=False)
        object.__setattr__(self, "U", U)
        object.__setattr__(self, "V", V)
        object.__setattr__(self, "W", W)

    # ------------------------------------------------------------------ info
    @property
    def rank(self) -> int:
        """Number of multiplications R (columns of the factors)."""
        return int(self.U.shape[1])

    @property
    def base_case(self) -> tuple[int, int, int]:
        return (self.m, self.k, self.n)

    @property
    def classical_rank(self) -> int:
        """Multiplications the classical algorithm uses on this base case."""
        return self.m * self.k * self.n

    @property
    def multiplication_speedup_per_step(self) -> float:
        """Expected speedup per recursive step if additions were free
        (Table 2 column): ``mkn / R - 1``."""
        return self.classical_rank / self.rank - 1.0

    @property
    def exponent(self) -> float:
        """Asymptotic exponent for square multiplication by uniform recursion:
        ``omega = 3 * log_{mkn}(R)`` (equals log2 7 for Strassen)."""
        return 3.0 * math.log(self.rank) / math.log(self.classical_rank)

    def nnz(self) -> tuple[int, int, int]:
        """Nonzero counts ``(nnz(U), nnz(V), nnz(W))`` -- the secondary
        quality metric of Section 2.3 (drives communication cost)."""
        return (
            int(np.count_nonzero(self.U)),
            int(np.count_nonzero(self.V)),
            int(np.count_nonzero(self.W)),
        )

    # ------------------------------------------------------------ validation
    def residual(self) -> float:
        """``||T_{<m,k,n>} - [[U,V,W]]||_F``."""
        return tz.residual(tz.matmul_tensor(self.m, self.k, self.n), self.U, self.V, self.W)

    def check_exact(self, tol: float = EXACT_TOL) -> bool:
        """True iff the decomposition reproduces the matmul tensor to ``tol``."""
        return self.residual() <= tol

    def validate(self, tol: float = EXACT_TOL) -> None:
        """Raise if a non-APA algorithm fails exactness."""
        if not self.apa and not self.check_exact(tol):
            raise ValueError(
                f"algorithm {self.name!r} for <{self.m},{self.k},{self.n}> "
                f"has residual {self.residual():.3e} > {tol:.1e}"
            )

    # ----------------------------------------------------------- derivations
    def transposed_family(self):
        """All six base-case permutations; see ``repro.core.transforms``."""
        from repro.core.transforms import permutation_family

        return permutation_family(self)

    # --------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "base_case": [self.m, self.k, self.n],
            "rank": self.rank,
            "apa": self.apa,
            "residual": self.residual(),
            "U": self.U.tolist(),
            "V": self.V.tolist(),
            "W": self.W.tolist(),
        }

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def from_dict(cls, d: dict) -> "FastAlgorithm":
        m, k, n = d["base_case"]
        return cls(
            m=m, k=k, n=n,
            U=np.array(d["U"]), V=np.array(d["V"]), W=np.array(d["W"]),
            name=d.get("name", "unnamed"), apa=bool(d.get("apa", False)),
        )

    @classmethod
    def load(cls, path: str | Path) -> "FastAlgorithm":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "APA" if self.apa else "exact"
        return (
            f"FastAlgorithm({self.name!r}, <{self.m},{self.k},{self.n}>, "
            f"rank={self.rank}, {kind})"
        )
