"""Arbitrary-precision approximate (APA) algorithms (paper Section 2.2.3).

An APA algorithm is a lambda-parametrized decomposition whose tensor
approaches the exact matmul tensor as ``lambda -> 0`` while the factor
entries blow up like ``1/lambda`` -- so evaluating at small lambda trades
accuracy for a lower rank.  Bini's <3,2,2> rank-10 and Schonhage's <3,3,3>
rank-21 algorithms are of this type.

Two representations are supported:

- :class:`LaurentAlgorithm`: entries are Laurent polynomials in lambda
  (dict degree -> coefficient matrix).  ``at(lam)`` instantiates a concrete
  ``FastAlgorithm``; ``residual_curve`` exhibits the O(lambda) convergence.
- plain ``FastAlgorithm`` with ``apa=True``: a fixed-lambda instantiation
  (what our ALS border-rank search produces; see DESIGN.md substitutions).

``optimal_lambda`` implements the paper's rule of thumb ``lambda = sqrt(eps)``
balancing truncation error (O(lambda)) against roundoff amplification
(O(eps/lambda)).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core import tensor as tz
from repro.core.algorithm import FastAlgorithm

PolyFactor = dict[int, np.ndarray]


def optimal_lambda(eps: float = np.finfo(np.float64).eps) -> float:
    """Bini's ``lambda = sqrt(eps)`` accuracy-balancing choice."""
    return float(np.sqrt(eps))


def eval_poly(poly: PolyFactor, lam: float) -> np.ndarray:
    """Evaluate a Laurent-polynomial factor at a concrete lambda."""
    out = None
    for deg, coef in sorted(poly.items()):
        term = np.asarray(coef, dtype=float) * (lam ** deg)
        out = term if out is None else out + term
    if out is None:
        raise ValueError("empty polynomial factor")
    return out


@dataclasses.dataclass(frozen=True)
class LaurentAlgorithm:
    """APA matmul algorithm with Laurent-polynomial factor entries.

    ``U_poly`` etc. map integer lambda-degrees to coefficient matrices; e.g.
    ``{0: U0, 1: U1}`` means ``U(lam) = U0 + lam * U1`` and ``{-1: W1}``
    means ``W(lam) = W1 / lam``.
    """

    m: int
    k: int
    n: int
    U_poly: PolyFactor
    V_poly: PolyFactor
    W_poly: PolyFactor
    name: str = "apa"

    @property
    def rank(self) -> int:
        return next(iter(self.U_poly.values())).shape[1]

    def factors_at(self, lam: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if lam <= 0:
            raise ValueError("lambda must be positive")
        return (
            eval_poly(self.U_poly, lam),
            eval_poly(self.V_poly, lam),
            eval_poly(self.W_poly, lam),
        )

    def at(self, lam: float | None = None) -> FastAlgorithm:
        """Instantiate at a concrete lambda (default: sqrt(machine eps))."""
        if lam is None:
            lam = optimal_lambda()
        U, V, W = self.factors_at(float(lam))
        return FastAlgorithm(
            self.m, self.k, self.n, U, V, W,
            name=f"{self.name}(lam={lam:.2e})", apa=True,
        )

    def residual_curve(self, lambdas) -> list[float]:
        """Tensor residual at each lambda -- should decay ~ O(lambda)."""
        T = tz.matmul_tensor(self.m, self.k, self.n)
        out = []
        for lam in lambdas:
            U, V, W = self.factors_at(float(lam))
            out.append(tz.residual(T, U, V, W))
        return out


# --------------------------------------------------------------------------
# minimal genuine border-rank example for unit-testing the APA mechanics
# --------------------------------------------------------------------------
def w_state_tensor() -> np.ndarray:
    """The 2x2x2 "W-state" tensor: rank 3 but border rank 2 -- the smallest
    honest example of why APA ranks can undercut exact ranks."""
    T = np.zeros((2, 2, 2))
    T[0, 0, 1] = T[0, 1, 0] = T[1, 0, 0] = 1.0
    return T


def w_state_apa_factors() -> tuple[PolyFactor, PolyFactor, PolyFactor]:
    """Rank-2 Laurent decomposition of the W-state tensor:

    ``T = lim_{lam->0} (1/lam) [ (e1+lam e2)^{o 3} - e1^{o 3} ]``

    so U(lam) = V(lam) = [e1+lam e2, e1], W(lam) = [(1/lam) e1... ] with the
    subtraction folded into W's second column.  Residual decays O(lambda);
    factor entries grow O(1/lambda): exactly the APA trade-off.
    """
    U0 = np.array([[1.0, 1.0], [0.0, 0.0]])
    U1 = np.array([[0.0, 0.0], [1.0, 0.0]])
    Wm1 = np.array([[1.0, -1.0], [0.0, 0.0]])
    W0 = np.array([[0.0, 0.0], [1.0, 0.0]])
    return ({0: U0, 1: U1}, {0: U0.copy(), 1: U1.copy()}, {-1: Wm1, 0: W0})


def apa_error_model(lam: float, steps: int, eps: float = np.finfo(np.float64).eps) -> float:
    """Crude forward-error estimate for an APA algorithm applied recursively.

    Each recursion level adds an O(lambda) truncation term and an
    O(eps/lambda) roundoff amplification -- "lose at least half the digits
    with each recursive step" (Section 1.1).  Returns predicted rel. error.
    """
    return float(lam * steps + (eps / lam) * steps + eps)
