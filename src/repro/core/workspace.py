"""Workspace arenas: zero-allocation steady state for the hot paths.

The paper's shared-memory implementation (Section 4) wins because the
temporaries of a fast algorithm are managed deliberately: DFS reuses one
``S``/``T``/``M_r`` buffer set per recursion level, while BFS pays a known
``~R/(MN)`` extra-memory factor per level for task parallelism.  The
executors in this repository originally allocated fresh arrays for every
rank of every level on every call; for the repeated mid-size products the
tuner serves, allocator traffic and page faulting eat a large slice of the
fast-algorithm advantage.  A :class:`Workspace` computes the *exact* buffer
footprint of an (algorithm, steps, shape, dtype, scheme) plan up front,
allocates it once, and hands out reusable views, so a warm
``repro.matmul(A, B, out=C)`` performs no large allocations at all.

Footprint formulas (derivations follow the paper's Sections 4.1/4.2):

**DFS / sequential** (Section 4.1).  At recursion level ``l`` the core
problem has dimensions ``(p_l, q_l, r_l)`` with ``p_{l+1} = floor(p_l'/M)``
where ``p_l' = p_l - (p_l mod M)`` is the peeled core (Section 3.5), and
similarly for ``q`` (by ``K``) and ``r`` (by ``N``).  Depth-first order
touches one rank at a time, so a single ``S`` (``p_{l+1} x q_{l+1}``),
``T`` (``q_{l+1} x r_{l+1}``) and ``M_r`` (``p_{l+1} x r_{l+1}``) buffer
per level is reused across all ``R`` ranks *and* across sibling subtrees::

    W_dfs = sum_{l=1}^{L} (p_l q_l + q_l r_l + p_l r_l + max-block scratch)

This is the paper's observation that DFS needs no extra memory beyond one
temporary set per level.  The scratch term holds ``c * X`` products for
coefficients outside {0, +-1} so the addition chains run fused
(``np.multiply``/``np.add`` with ``out=``) with no hidden temporaries.

**BFS / hybrid** (Section 4.2).  Level-synchronous expansion materializes
*every* ``(S_r, T_r)`` pair of a level at once: level ``l`` holds
``R^l`` nodes of dimensions ``(p_l, q_l, r_l)``, i.e. per additional level
the ``S``/``T`` pools grow by a factor ``R/(MK)`` resp. ``R/(KN)`` of the
input and the result pool by ``R/(MN)`` of the output -- the paper's
"extra memory per level" argument::

    W_bfs = sum_{l=1}^{L} R^l (p_l q_l + q_l r_l)          # S/T pools
          + sum_{l=1}^{L} R^l (p_l r_l)                    # result pools

The paper frees each level's pool as the combine sweep walks back up the
tree; an arena instead *retains* the full-tree footprint so the next call
reuses it -- steady-state reuse across calls supersedes intra-call
freeing, and the geometric series is dominated by the deepest level
anyway.  Per-level pools are laid out contiguously in expansion order, so
the combine sweep still releases them level by level logically (the bump
pointer rewinds wholesale at the next ``reset``).

All sizes are computed by *simulating* the executor's level loop
(:func:`dfs_level_shapes` / :func:`bfs_level_shapes`), so peeling, early
termination (a dimension dropping below the base case) and composed
per-level schedules are all accounted exactly rather than bounded.

**Generated sequential modules** (Section 3.1 codegen) have a third memory
shape: all ``R`` products of a level live until the C-assembly pass, plus
per-strategy slots (CSE ``Y`` definitions, streaming block stacks).
:func:`codegen_footprint` sizes those by simulating the generated module's
own peel loop; :func:`repro.tuner.dispatch` uses it for every sequential
plan so the generated code is served *from* the arena instead of falling
back to this interpreter.

The arena is not thread-safe for concurrent ``take`` calls; the parallel
schedules preassign every buffer *before* fanning tasks out, which is also
what makes the assignment deterministic.  If a caller outgrows the arena
(e.g. a custom cutoff policy recursing deeper than the plan declared),
``take`` degrades to a plain allocation and counts it in
``overflow_allocations`` instead of failing.
"""

from __future__ import annotations

import contextlib
import math
import queue
import tracemalloc
from typing import Iterable, Sequence

import numpy as np

from repro.guard import faults as _faults

#: byte alignment of every handed-out buffer (one cache line)
ALIGNMENT = 64

#: slack added per expected ``take`` to absorb alignment rounding
_ALIGN_SLACK = ALIGNMENT


def _prod(shape: Iterable[int]) -> int:
    return math.prod(int(s) for s in shape)


def _align_up(n: int) -> int:
    return -(-n // ALIGNMENT) * ALIGNMENT


class Workspace:
    """A bump-pointer arena over one contiguous preallocated buffer.

    ``take(shape, dtype)`` returns a C-contiguous, cache-line-aligned view;
    ``mark()``/``release(mark)`` give stack-discipline reuse (the DFS
    recursion releases a level's buffers when the subtree returns);
    ``reset()`` rewinds everything at the start of a call.  Requests beyond
    capacity fall back to ``np.empty`` (counted, never fatal).
    """

    def __init__(self, nbytes: int):
        self._nbytes = max(int(nbytes), ALIGNMENT)
        self._buf: np.ndarray | None = None
        self._base = 0
        self._top = 0
        self.high_water = 0
        self.overflow_allocations = 0
        self.mark_depth = 0
        self.max_mark_depth = 0
        #: calls served since the buffer was (re)allocated -- dispatch's
        #: reclamation sweep uses this to spot single-shot arenas
        self.uses = 0
        self._alloc()

    def _alloc(self) -> None:
        self._buf = np.empty(self._nbytes, dtype=np.uint8)
        # absolute alignment: offset 0 of the arena is cache-line aligned
        self._base = (-self._buf.ctypes.data) % ALIGNMENT

    @property
    def nbytes(self) -> int:
        """Declared capacity (stable across :meth:`release_buffer`)."""
        return self._nbytes

    @property
    def retained_nbytes(self) -> int:
        """Bytes currently held by the backing buffer (0 when released)."""
        return 0 if self._buf is None else self._buf.nbytes

    @property
    def retained(self) -> bool:
        return self._buf is not None

    def release_buffer(self) -> int:
        """Drop the backing buffer; returns the bytes given back.

        The arena object stays valid -- the next :meth:`reset` (every
        executor's first act) or ``take`` reallocates lazily.  Views
        handed out earlier keep the old buffer alive via refcounting, so
        releasing is safe even if a product computed from this arena is
        still in flight somewhere.
        """
        freed = self.retained_nbytes
        self._buf = None
        self._top = 0
        self.mark_depth = 0
        return freed

    # ------------------------------------------------------------ lifecycle
    def reset(self) -> None:
        """Rewind the bump pointer; every prior view becomes reusable."""
        if self._buf is None:
            self._alloc()
        self._top = 0
        self.mark_depth = 0

    def mark(self) -> int:
        self.mark_depth += 1
        if self.mark_depth > self.max_mark_depth:
            self.max_mark_depth = self.mark_depth
        return self._top

    def release(self, mark: int) -> None:
        self._top = mark
        if self.mark_depth > 0:
            self.mark_depth -= 1

    def stats(self) -> dict:
        """Arena health as one JSON-ready dict -- what the dispatch layer's
        telemetry gauges publish per call: capacity, peak bytes actually
        carved, current/deepest mark nesting, and heap-overflow count."""
        return {
            "nbytes": self.nbytes,
            "high_water": self.high_water,
            "mark_depth": self.mark_depth,
            "max_mark_depth": self.max_mark_depth,
            "overflow_allocations": self.overflow_allocations,
        }

    # ------------------------------------------------------------- hand-out
    def _carve(self, nbytes: int) -> np.ndarray | None:
        if self._buf is None:
            self._alloc()
        start = _align_up(self._top)
        end = start + nbytes
        if end + self._base > self._buf.nbytes:
            return None
        self._top = end
        if end > self.high_water:
            self.high_water = end
        return self._buf[self._base + start : self._base + end]

    def take(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        """A C-contiguous ``shape``/``dtype`` view of the arena."""
        dtype = np.dtype(dtype)
        raw = None
        if _faults.active and _faults.should_fire("workspace.overflow"):
            # forced overflow *with* a failing heap fallback: arena
            # exhaustion under true memory pressure, the case the graceful
            # everyday overflow below can't exercise
            self.overflow_allocations += 1
            raise MemoryError(
                f"injected: workspace.overflow taking {shape} {dtype}")
        else:
            raw = self._carve(_prod(shape) * dtype.itemsize)
        if raw is None:
            self.overflow_allocations += 1
            return np.empty(shape, dtype=dtype)
        return raw.view(dtype).reshape(shape)

    def take_scratch(self, nbytes: int) -> np.ndarray:
        """An untyped byte buffer (viewed per use via :func:`scratch_view`)."""
        if _faults.active and _faults.should_fire("workspace.overflow"):
            self.overflow_allocations += 1
            raise MemoryError(
                f"injected: workspace.overflow taking {nbytes} scratch bytes")
        raw = self._carve(int(nbytes))
        if raw is None:
            self.overflow_allocations += 1
            return np.empty(int(nbytes), dtype=np.uint8)
        return raw

    # ------------------------------------------------------------ factories
    @classmethod
    def for_recursion(
        cls,
        base_cases: Sequence[tuple[int, int, int]],
        p: int,
        q: int,
        r: int,
        dtype_a="float64",
        dtype_b=None,
        algorithms: Sequence | None = None,
    ) -> "Workspace":
        """Arena for the DFS/sequential executors (Section 4.1 footprint).

        ``base_cases`` is one ``(M, K, N)`` per recursion level -- repeat a
        single algorithm's base case ``steps`` times, or pass a composed
        schedule's per-level cases.  Passing the matching ``algorithms``
        lets the footprint drop the per-level scratch for coefficient
        matrices over {0, +-1} (most of the catalog), which the executors
        never take.
        """
        nbytes = dfs_footprint(base_cases, p, q, r, dtype_a, dtype_b,
                               algorithms=algorithms)
        return cls(nbytes)

    @classmethod
    def for_parallel(
        cls,
        algorithm,
        steps: int,
        p: int,
        q: int,
        r: int,
        dtype_a="float64",
        dtype_b=None,
    ) -> "Workspace":
        """Arena for the BFS/hybrid task tree (Section 4.2 footprint)."""
        nbytes = bfs_footprint(algorithm, steps, p, q, r, dtype_a, dtype_b)
        return cls(nbytes)

    @classmethod
    def for_codegen(
        cls,
        algorithm,
        strategy: str,
        cse: bool,
        shape: tuple[int, int, int],
        dtype_a="float64",
        steps: int = 1,
        dtype_b=None,
    ) -> "Workspace":
        """Arena for a *generated* sequential module (Section 3.1 codegen).

        Sized by :func:`codegen_footprint`, which mirrors the generated
        module's peel loop and per-strategy slot counts (all ``R`` product
        buffers of a level live until C assembly, unlike the interpreter's
        single reused ``M_r``).
        """
        nbytes = codegen_footprint(algorithm, strategy, cse, shape,
                                   dtype_a, steps, dtype_b=dtype_b)
        return cls(nbytes)

    @classmethod
    def for_cbackend(
        cls,
        algorithm,
        cse: bool,
        shape: tuple[int, int, int],
        dtype_a="float64",
        steps: int = 1,
        dtype_b=None,
    ) -> "Workspace":
        """Arena for the compiled C chain driver (``backend="compiled"``).

        Sized by :func:`cbackend_footprint`, which mirrors
        :meth:`repro.codegen.cbackend.CompiledChains.multiply`: float64
        conversion copies, per-level S/T slabs, the contiguous product
        slab, C-side ``Y`` scratch and the dynamic-peeling fix-up
        temporaries.
        """
        nbytes = cbackend_footprint(algorithm, cse, shape, dtype_a, steps,
                                    dtype_b=dtype_b)
        return cls(nbytes)


class WorkspacePool:
    """A checkout pool of identical arenas for elementwise batch fan-out.

    A single :class:`Workspace` is not thread-safe, so when a batched call
    fans elements across a worker pool each concurrently active element
    needs a private arena.  The pool preallocates ``workers`` identical
    arenas once (the batched footprint of the ISSUE's "per-worker arena
    pool") and hands them out through a blocking queue: a worker task
    acquires an arena, runs its element, and returns it -- with at most
    ``workers`` tasks in flight the checkout never waits, and a warm
    batched call touches the heap zero times.
    """

    def __init__(self, element_nbytes: int, workers: int):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.element_nbytes = int(element_nbytes)
        self._arenas = tuple(Workspace(element_nbytes)
                             for _ in range(workers))
        self._free: queue.SimpleQueue = queue.SimpleQueue()
        for ws in self._arenas:
            self._free.put(ws)

    @property
    def nbytes(self) -> int:
        """Total bytes across all per-worker arenas (the batched footprint)."""
        return sum(ws.nbytes for ws in self._arenas)

    @property
    def overflow_allocations(self) -> int:
        return sum(ws.overflow_allocations for ws in self._arenas)

    def acquire(self) -> Workspace:
        """Check an arena out (blocks until one is free), reset for use."""
        ws = self._free.get()
        ws.reset()
        return ws

    def release(self, ws: Workspace) -> None:
        self._free.put(ws)

    @contextlib.contextmanager
    def arena(self):
        ws = self.acquire()
        try:
            yield ws
        finally:
            self.release(ws)

    def stats(self) -> dict:
        """Aggregated arena health (same keys as :meth:`Workspace.stats`)."""
        return {
            "nbytes": self.nbytes,
            "high_water": max(ws.high_water for ws in self._arenas),
            "mark_depth": max(ws.mark_depth for ws in self._arenas),
            "max_mark_depth": max(ws.max_mark_depth for ws in self._arenas),
            "overflow_allocations": self.overflow_allocations,
        }


# ---------------------------------------------------------------------------
# scratch views and out= validation (shared by all three execution layers)
# ---------------------------------------------------------------------------
def scratch_view(scratch: np.ndarray, shape: tuple[int, ...], dtype) -> np.ndarray:
    """Reinterpret the head of a byte ``scratch`` buffer as ``shape``/``dtype``."""
    dtype = np.dtype(dtype)
    nbytes = _prod(shape) * dtype.itemsize
    return scratch[:nbytes].view(dtype).reshape(shape)


def needs_scratch(coeffs: np.ndarray) -> bool:
    """Whether a coefficient matrix forces ``c * X`` scaling temporaries.

    Chains over {0, +-1} lower to pure ``np.add``/``np.subtract`` and never
    need one; anything else needs a scratch buffer to stay allocation-free.
    """
    c = np.asarray(coeffs)
    return not bool(np.all((c == 0.0) | (c == 1.0) | (c == -1.0)))


def check_out(out: np.ndarray, A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Validate an ``out=`` destination for ``A @ B``.

    Raises ``ValueError`` on wrong shape/dtype, a read-only destination, or
    an ``out`` that (possibly) overlaps ``A`` or ``B`` -- the executors
    write ``C`` blocks while ``A``/``B`` blocks are still being read, so
    aliasing would silently corrupt the product.
    """
    if not isinstance(out, np.ndarray) or out.ndim != 2:
        raise ValueError("out must be a 2-D ndarray")
    expect = (A.shape[0], B.shape[1])
    if out.shape != expect:
        raise ValueError(f"out has shape {out.shape}, expected {expect}")
    dtype = np.result_type(A, B)
    if out.dtype != dtype:
        raise ValueError(f"out has dtype {out.dtype}, expected {dtype}")
    if not out.flags.writeable:
        raise ValueError("out must be writeable")
    if np.may_share_memory(out, A) or np.may_share_memory(out, B):
        raise ValueError("out must not overlap A or B")
    return out


# ---------------------------------------------------------------------------
# footprint formulas (Sections 4.1 / 4.2)
# ---------------------------------------------------------------------------
def dfs_level_shapes(
    base_cases: Sequence[tuple[int, int, int]], p: int, q: int, r: int
) -> list[tuple[int, int, int]]:
    """Per-level ``(S rows, S cols == T rows, T cols)`` of the DFS recursion.

    Simulates dynamic peeling level by level: the level-``l`` core is the
    largest leading submatrix divisible by that level's base case, and the
    children inherit ``core / (M, K, N)``.  A level whose split would drop
    a block dimension below ``CutoffPolicy``'s default ``min_dim`` (2) is
    *skipped with the dimensions unchanged*, matching the executors:
    ``multiply_schedule`` falls through to the next level's algorithm on
    the full subproblem when one level's split is too big.  (The parallel
    DFS recursion descends even onto 1-wide blocks; those byte-scale
    buffers fall back to the heap, which the overflow counter records and
    the 1 MiB allocation budget never notices.)
    """
    shapes: list[tuple[int, int, int]] = []
    for m, k, n in base_cases:
        if min(p // m, q // k, r // n) < 2:
            continue
        sp, sq, sr = (p - p % m) // m, (q - q % k) // k, (r - r % n) // n
        shapes.append((sp, sq, sr))
        p, q, r = sp, sq, sr
    return shapes


def dfs_footprint(
    base_cases: Sequence[tuple[int, int, int]],
    p: int,
    q: int,
    r: int,
    dtype_a="float64",
    dtype_b=None,
    algorithms: Sequence | None = None,
) -> int:
    """Exact DFS/sequential arena bytes: per level one S + T + M_r + scratch
    (+ a core-size fix-up buffer at levels where the inner dimension peels).

    With ``algorithms`` (one per level, matching ``base_cases``), the
    scratch term is only charged at levels whose U/V/W carry coefficients
    outside {0, +-1} -- the executors take no scratch otherwise.
    """
    isa = np.dtype(dtype_a).itemsize
    isb = np.dtype(dtype_b if dtype_b is not None else dtype_a).itemsize
    isc = np.result_type(np.dtype(dtype_a),
                         np.dtype(dtype_b if dtype_b is not None else dtype_a)
                         ).itemsize
    total = 0
    takes = 0
    cp, cq, cr = p, q, r
    for lvl, (m, k, n) in enumerate(base_cases):
        # a non-fitting level is skipped, dims unchanged (see
        # dfs_level_shapes) -- composed schedules keep recursing below it
        if min(cp // m, cq // k, cr // n) < 2:
            continue
        sp, sq, sr = (cp - cp % m) // m, (cq - cq % k) // k, (cr - cr % n) // n
        total += _align_up(sp * sq * isa)      # S
        total += _align_up(sq * sr * isb)      # T
        total += _align_up(sp * sr * isc)      # M_r
        takes += 3
        alg = algorithms[lvl] if algorithms is not None else None
        if alg is None or (needs_scratch(alg.U) or needs_scratch(alg.V)
                           or needs_scratch(alg.W)):
            total += _align_up(max(sp * sq * isa, sq * sr * isb,
                                   sp * sr * isc))
            takes += 1
        if cq % k:  # peel fix-up Ccore += A12 @ B21 is core-sized
            total += _align_up((sp * m) * (sr * n) * isc)
            takes += 1
        cp, cq, cr = sp, sq, sr
    return total + takes * _ALIGN_SLACK + ALIGNMENT


def bfs_level_shapes(
    base_case: tuple[int, int, int],
    rank: int,
    steps: int,
    p: int,
    q: int,
    r: int,
) -> list[tuple[int, tuple[int, int, int]]]:
    """Per expansion level: ``(node count, child (sp, sq, sr))``.

    Every node of a level shares one shape (children of a node inherit the
    same peeled core), so the level-synchronous tree is fully described by
    ``steps`` (count, shape) pairs -- count grows by ``R`` per level.
    """
    levels: list[tuple[int, tuple[int, int, int]]] = []
    m, k, n = base_case
    count = 1
    for _ in range(steps):
        if p < m or q < k or r < n:
            break
        sp, sq, sr = (p - p % m) // m, (q - q % k) // k, (r - r % n) // n
        count *= rank
        levels.append((count, (sp, sq, sr)))
        p, q, r = sp, sq, sr
    return levels


def bfs_footprint(
    algorithm,
    steps: int,
    p: int,
    q: int,
    r: int,
    dtype_a="float64",
    dtype_b=None,
) -> int:
    """Exact BFS/hybrid arena bytes (Section 4.2's per-level pools).

    Level ``l`` contributes ``R^l`` S/T pairs (the node operands) plus
    ``R^l`` result buffers (leaf products at the deepest level, combined
    ``C`` blocks above it).  The root result is always excluded: it is
    either the caller's ``out`` or a per-call fresh allocation (arena
    memory must never be handed back to the caller).
    """
    isa = np.dtype(dtype_a).itemsize
    isb = np.dtype(dtype_b if dtype_b is not None else dtype_a).itemsize
    isc = np.result_type(np.dtype(dtype_a),
                         np.dtype(dtype_b if dtype_b is not None else dtype_a)
                         ).itemsize
    uv_scratch = needs_scratch(algorithm.U) or needs_scratch(algorithm.V)
    w_scratch = needs_scratch(algorithm.W)
    m, k, n = algorithm.base_case
    rank = algorithm.rank
    total = 0
    takes = 0
    count = 1
    cp, cq, cr = p, q, r
    for _ in range(steps):
        if cp < m or cq < k or cr < n:
            break
        sp, sq, sr = (cp - cp % m) // m, (cq - cq % k) // k, (cr - cr % n) // n
        if cq % k:  # each parent combine needs a core-size peel fix-up
            total += count * _align_up((sp * m) * (sr * n) * isc)
            takes += count
        if w_scratch:
            # one combine scratch per internal node, sized to its C block
            total += count * _align_up(sp * sr * isc)
            takes += count
        count *= rank
        st = _align_up(sp * sq * isa) + _align_up(sq * sr * isb)
        if uv_scratch:
            st += _align_up(max(sp * sq * isa, sq * sr * isb))
        total += count * (st + _align_up(sp * sr * isc))   # S/T + result pool
        takes += count * (4 if uv_scratch else 3)
        cp, cq, cr = sp, sq, sr
    return total + takes * _ALIGN_SLACK + ALIGNMENT


def codegen_footprint(
    algorithm,
    strategy: str,
    cse: bool,
    shape: tuple[int, int, int],
    dtype_a="float64",
    steps: int = 1,
    dtype_b=None,
) -> int:
    """Exact arena bytes for a *generated* sequential module (Section 3.1).

    The generated code's memory shape differs from the interpreter DFS
    formula in three ways, all accounted here by simulating the module's
    own recursion (``_run_ws``/``_core_ws`` in the emitted source):

    - **all R product buffers of a level live at once** (one ``(R, bp, br)``
      slab), because the generated C assembly reads every ``M_r`` after the
      rank loop, whereas the interpreter reuses a single ``M_r`` buffer;
    - **per-strategy slot counts**: write_once/pairwise hold one S + one T
      view at a time (marked/released per rank) plus the CSE ``Y``
      definitions of both sides for the whole level and the C-side
      definitions during assembly; streaming holds the
      ``(R, bp, bq)``/``(R, bq, br)`` combine slabs, the product slab with
      its ``|C defs|`` tail rows (the products double as the C-formation
      stack head, so it is never copied) and, transiently, the block
      stacks (``m*k + |defs|`` rows) and the combined C rows;
    - **the peel loop**: the generated ``_run`` recurses whenever the
      dimensions admit one split (no interpreter ``min_dim`` cutoff), and
      each level where the inner dimension peels draws one core-size
      fix-up buffer inside ``runtime.peel_apply``.

    Sizing uses the result dtype (``np.result_type(A, B)``) for every
    slot, which matches the emitted write_once/streaming temporaries and
    upper-bounds arena pairwise's operand-dtype chains.  Chain and CSE
    slot counts come from the generator's own
    :func:`repro.codegen.generator.prepared_chains` (imported lazily --
    ``repro.codegen`` depends on this module, not vice versa), so arena
    sizing cannot drift from what the emitted module actually takes.
    """
    from repro.codegen.generator import prepared_chains
    from repro.codegen.strategies import needs_axpy_scratch

    (_, s_chains, t_chains, c_chains,
     s_defs, t_defs, c_defs) = prepared_chains(algorithm, cse)

    m, k, n = algorithm.base_case
    R = algorithm.rank
    isz = np.result_type(np.dtype(dtype_a),
                         np.dtype(dtype_b if dtype_b is not None else dtype_a)
                         ).itemsize
    scratch_needed = needs_axpy_scratch(
        s_chains + t_chains + c_chains + s_defs + t_defs + c_defs)
    nsd, ntd, ncd = len(s_defs), len(t_defs), len(c_defs)
    state = {"takes": 0}

    def take(nelems: int) -> int:
        state["takes"] += 1
        return _align_up(int(nelems) * isz)

    def level(p: int, q: int, r: int, left: int) -> int:
        if left <= 0 or p < m or q < k or r < n:
            return 0
        pc, qc, rcore = p - p % m, q - q % k, r - r % n
        bp, bq, br = pc // m, qc // k, rcore // n
        total = 0
        if q - qc:  # peel_apply's core-size inner-dimension fix-up
            total += take(pc * rcore)
        child = level(bp, bq, br, left - 1)
        if strategy == "streaming":
            total += take(R * bp * bq) + take(R * bq * br)   # _SS, _TT slabs
            total += take((R + ncd) * bp * br)               # _ST slab
            stack_a = take((m * k + nsd) * bp * bq)
            stack_b = take((k * n + ntd) * bq * br)
            cc_rows = take(m * n * bp * br)
            # combine stacks are released before the rank loop recurses;
            # the combined-C rows only exist after it -- peak is the worst
            # transient on top of the persistent slabs
            total += max(stack_a, stack_b, child, cc_rows)
        else:
            if scratch_needed:
                total += take(max(bp * bq, bq * br, bp * br))
            total += sum(take(bp * bq) for _ in range(nsd))
            total += sum(take(bq * br) for _ in range(ntd))
            total += take(R * bp * br)                       # _MM slab
            st = take(bp * bq) + take(bq * br)  # one live S + T per rank
            c_assembly = sum(take(bp * br) for _ in range(ncd))
            total += max(st + child, c_assembly)
        return total

    p, q, r = shape
    total = level(int(p), int(q), int(r), int(steps))
    return total + state["takes"] * _ALIGN_SLACK + ALIGNMENT


def cbackend_footprint(
    algorithm,
    cse: bool,
    shape: tuple[int, int, int],
    dtype_a="float64",
    steps: int = 1,
    dtype_b=None,
) -> int:
    """Arena bytes for the compiled C chain driver (``backend="compiled"``).

    Mirrors :meth:`repro.codegen.cbackend.CompiledChains.multiply`, whose
    memory shape differs from both the interpreter and the generated
    NumPy modules:

    - every slot is **float64** regardless of the operand dtypes (the C
      kernels compute in double); non-double operands draw one conversion
      copy each, and a non-double result draws a double accumulation
      buffer that is cast once on exit;
    - ``form_S``/``form_T`` fill whole **slab arrays** (one row per CSE
      definition + non-alias chain) in a single call, so all slab rows of
      a level are live at once, alongside the contiguous ``(R, bp, bn)``
      product slab that ``form_C`` reads after the rank loop;
    - alias (zero-traffic) chains are strided block views that get packed
      into the arena right before the leaf dgemm or a deeper recursion
      (one S-sized + one T-sized buffer, marked/released per rank);
    - ``form_C`` takes ``|C defs|`` scratch rows, and each level where a
      dimension peels draws per-quadrant fix-up buffers.

    Slot counts come from the backend's own
    :func:`repro.codegen.cbackend._prepare` (imported lazily --
    ``repro.codegen`` depends on this module, not vice versa), so arena
    sizing cannot drift from the slab layout the emitted C actually uses.
    """
    from repro.codegen.cbackend import _prepare

    s, t, c = _prepare(algorithm, cse)
    m, k, n = algorithm.base_case
    R = algorithm.rank
    isz = np.dtype(np.float64).itemsize
    res = np.result_type(np.dtype(dtype_a),
                         np.dtype(dtype_b if dtype_b is not None else dtype_a))
    state = {"takes": 0}

    def take(nelems: int) -> int:
        if nelems <= 0:
            return 0
        state["takes"] += 1
        return _align_up(int(nelems) * isz)

    p, q, r = (int(d) for d in shape)
    total = 0
    if np.dtype(dtype_a) != np.float64:
        total += take(p * q)                        # Ad conversion copy
    if np.dtype(dtype_b if dtype_b is not None else dtype_a) != np.float64:
        total += take(q * r)                        # Bd conversion copy
    if res != np.float64:
        total += take(p * r)                        # double result buffer

    def level(p: int, q: int, r: int, left: int) -> int:
        if left <= 0 or p < m or q < k or r < n:
            return 0
        pc, qc, rc = p - p % m, q - q % k, r - r % n
        bp, bq, bn = pc // m, qc // k, rc // n
        lvl = take(max(s["slots"], 1) * bp * bq)    # form_S slab
        lvl += take(max(t["slots"], 1) * bq * bn)   # form_T slab
        lvl += take(R * bp * bn)                    # product slab
        lvl += take(max(len(c["defs"]), 1) * bn)    # form_C Y scratch
        # per-rank packing of alias (strided block view) operands before
        # the leaf dgemm or a deeper recursion; released before the next
        # rank, so one instance bounds all R
        if any(kind == "alias" for kind, _ in s["layout"]):
            lvl += take(bp * bq)
        if any(kind == "alias" for kind, _ in t["layout"]):
            lvl += take(bq * bn)
        if left > 1 and min(bp, bq, bn) >= max(m, k, n):
            lvl += level(bp, bq, bn, left - 1)
        if q - qc:
            lvl += take(pc * rc)                    # core += A12 @ B21
        if r - rc:
            lvl += take(pc * (r - rc))
        if p - pc:
            lvl += take((p - pc) * rc)
        if (p - pc) and (r - rc):
            lvl += take((p - pc) * (r - rc))
        return lvl

    total += level(p, q, r, int(steps))
    return total + state["takes"] * _ALIGN_SLACK + ALIGNMENT


# ---------------------------------------------------------------------------
# allocation tracking (the regression tests' and benchmark's allocator probe)
# ---------------------------------------------------------------------------
class AllocationReport:
    """Filled in when a :func:`track_allocations` block exits."""

    def __init__(self) -> None:
        self.peak_bytes: int | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AllocationReport(peak_bytes={self.peak_bytes})"


@contextlib.contextmanager
def track_allocations():
    """Measure the peak heap growth inside the ``with`` block.

    Uses :mod:`tracemalloc`, which numpy's data allocator reports into, so
    every array buffer -- including temporaries created and freed inside a
    single expression -- is visible.  ``report.peak_bytes`` is the peak
    traced memory minus the baseline at entry: a warm arena-backed call
    must keep it under the large-allocation threshold, while one stray
    ``np.empty`` of a matrix-sized temporary pushes it far above.
    """
    report = AllocationReport()
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    try:
        baseline, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        yield report
        _, peak = tracemalloc.get_traced_memory()
        report.peak_bytes = max(0, peak - baseline)
    finally:
        if not was_tracing:
            tracemalloc.stop()
