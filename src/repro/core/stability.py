"""Numerical stability analysis of fast algorithms (paper Section 6).

The paper leaves stability as the framework's open empirical question:
"While theoretical bounds can be derived from each algorithm's [[U,V,W]]
representation, it is an open question which algorithmic properties are
most influential in practice; our framework will allow for rapid empirical
testing."  This module supplies both halves:

- **theory**: the Bini-Lotti / Higham-style growth bound.  A recursive
  bilinear algorithm satisfies ``|C - C_computed| <= c(n) eps |A||B| + O(eps^2)``
  where the prefactor grows with the *stability factors*

      e_max = max_r ( ||u_r||_1 ||v_r||_1 ||w_r||_1-ish combinations )

  We expose the standard quantities: per-algorithm alpha/beta/gamma
  (max column 1-norms of U, V and row 1-norms of W), the one-level growth
  factor, and its L-level compounding.

- **practice**: a measurement harness that multiplies calibrated random
  inputs at several recursion depths and reports observed error growth,
  letting Table-2 algorithms (and APA entries) be ranked empirically.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.core.algorithm import FastAlgorithm
from repro.util.matrices import random_matrix


@dataclasses.dataclass(frozen=True)
class StabilityFactors:
    """Norm-based quantities controlling the rounding-error growth."""

    alpha: float  # max_r ||u_r||_1
    beta: float   # max_r ||v_r||_1
    gamma: float  # max_i ||w_{i,:}||_1 (output combination mass)
    emax: float   # one-level amplification alpha * beta * gamma

    def growth(self, levels: int) -> float:
        """Crude L-level compounding of the one-level amplification."""
        return self.emax ** levels


def stability_factors(alg: FastAlgorithm) -> StabilityFactors:
    """Compute the norm-based stability factors of an algorithm.

    The classical algorithm has alpha = beta = 1 and gamma = K (each output
    sums K products), giving the baseline growth; Strassen's factors are
    modestly larger -- the well-known "Strassen is slightly less stable but
    fine in practice" quantification."""
    alpha = float(np.abs(alg.U).sum(axis=0).max())
    beta = float(np.abs(alg.V).sum(axis=0).max())
    gamma = float(np.abs(alg.W).sum(axis=1).max())
    return StabilityFactors(alpha, beta, gamma, alpha * beta * gamma)


@dataclasses.dataclass
class ErrorMeasurement:
    """Observed relative errors by recursion depth for one algorithm."""

    algorithm: str
    steps: list[int]
    rel_errors: list[float]

    @property
    def growth_per_step(self) -> float:
        """Geometric-mean error amplification per added recursion level."""
        errs = [max(e, 1e-18) for e in self.rel_errors]
        if len(errs) < 2:
            return 1.0
        ratios = [errs[i + 1] / errs[i] for i in range(len(errs) - 1)]
        return float(np.exp(np.mean(np.log(ratios))))


def measure_error_growth(
    alg: FastAlgorithm,
    n: int = 256,
    steps: tuple[int, ...] = (0, 1, 2, 3),
    seed: int = 0,
    dtype=np.float64,
) -> ErrorMeasurement:
    """Empirical forward error of ``alg`` at several recursion depths.

    The reference is the float64 classical product of the same inputs, so
    for ``dtype=float32`` the measurement shows the single-precision floor
    the paper contrasts with APA accuracy.
    """
    from repro.core.recursion import multiply

    A = random_matrix(n, n, seed).astype(dtype)
    B = random_matrix(n, n, seed + 1).astype(dtype)
    ref = A.astype(np.float64) @ B.astype(np.float64)
    norm = float(np.linalg.norm(ref))
    errs = []
    for s in steps:
        C = multiply(A, B, alg, steps=s)
        errs.append(float(np.linalg.norm(C.astype(np.float64) - ref)) / norm)
    return ErrorMeasurement(alg.name, list(steps), errs)


#: default growth-factor ceilings per dtype for tuner candidate pruning.
#: float32 has ~2^-24 unit roundoff; allowing a 2^12 amplification keeps
#: roughly half the mantissa, the paper's "single precision is fine for
#: fast algorithms at moderate depth" regime.  float64 is lenient (2^20
#: over 2^-53 still leaves >9 significant digits).
GROWTH_BOUNDS = {"float32": 2.0 ** 12, "float64": 2.0 ** 20}


def growth_bound(dtype: str = "float64") -> float:
    """Max tolerated L-level amplification ``emax**L`` for ``dtype``."""
    return GROWTH_BOUNDS.get(str(dtype), GROWTH_BOUNDS["float64"])


def max_stable_steps(alg: FastAlgorithm, dtype: str = "float64",
                     max_growth: float | None = None) -> int:
    """Deepest recursion whose compounded growth stays within the bound.

    The largest ``L`` with ``stability_factors(alg).growth(L) <=
    max_growth`` (default: :func:`growth_bound` for ``dtype``).  The
    tuner's float32 candidate space uses this so lower precision buys
    *bounded* extra depth, never unbounded error amplification.
    """
    if max_growth is None:
        max_growth = growth_bound(dtype)
    emax = stability_factors(alg).emax
    if emax <= 1.0:
        return 1 << 30  # classical-like: no compounding to bound
    return max(0, int(math.floor(math.log(max_growth) / math.log(emax))))


def error_bound(alg: FastAlgorithm, steps: int, q: int, dtype: str) -> float:
    """A-priori relative forward-error bound for ``steps`` levels.

    The Bini-Lotti / Higham-style shape ``growth * q * eps``: the
    classical inner-product term ``q * eps`` amplified by the compounded
    per-level factor.  Deliberately loose (norm-wise, worst-case constant
    dropped) -- it is the *ordering* and the dtype scaling that matter for
    tuner pruning and for the property-test assertion.
    """
    eps = float(np.finfo(np.dtype(dtype)).eps)
    return stability_factors(alg).growth(steps) * max(q, 1) * eps


def diagonal_rescale_for_stability(alg: FastAlgorithm) -> FastAlgorithm:
    """Equilibrate the rank-one terms (a Prop.-2.3 diagonal scaling).

    Balancing ``||u_r|| ~ ||v_r|| ~ ||w_r||`` per term minimizes the
    product-of-norms bound over the scaling orbit and often improves the
    observed error of ALS-found algorithms whose factors came out skewed.
    Exactness is untouched.
    """
    U = np.array(alg.U)
    V = np.array(alg.V)
    W = np.array(alg.W)
    for r in range(alg.rank):
        nu = np.linalg.norm(U[:, r], 1)
        nv = np.linalg.norm(V[:, r], 1)
        nw = np.linalg.norm(W[:, r], 1)
        if min(nu, nv, nw) <= 0:
            continue
        s = (nu * nv * nw) ** (1.0 / 3.0)
        U[:, r] *= s / nu
        V[:, r] *= s / nv
        W[:, r] *= s / nw
    return FastAlgorithm(alg.m, alg.k, alg.n, U, V, W,
                         name=f"{alg.name}+equil", apa=alg.apa)


def rank_by_stability(algorithms: dict[str, FastAlgorithm]) -> list[tuple[str, float]]:
    """Sort algorithms by their theoretical one-level growth factor."""
    scored = [(name, stability_factors(a).emax) for name, a in algorithms.items()]
    return sorted(scored, key=lambda t: t[1])
