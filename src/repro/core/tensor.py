"""The matrix-multiplication tensor and basic order-3 tensor operations.

Everything in the framework reduces to one object: the tensor
``T_{<M,K,N>}`` of shape ``(MK, KN, MN)`` with ``t_ijk = 1`` exactly when
entry ``i`` of ``vec(A)`` times entry ``j`` of ``vec(B)`` contributes to
entry ``k`` of ``vec(C)`` (paper Section 2.2.2, row-wise vectorization).
A rank-``R`` decomposition ``T = sum_r u_r o v_r o w_r`` *is* a fast
algorithm with ``R`` multiplications.
"""

from __future__ import annotations

import numpy as np


def matmul_tensor(m: int, k: int, n: int) -> np.ndarray:
    """Build the exact ``<m,k,n>`` matrix-multiplication tensor.

    Shape is ``(m*k, k*n, m*n)`` with exactly ``m*k*n`` nonzero (unit)
    entries.  Index ``i`` enumerates A's entries row-wise (row ``i//k``,
    column ``i%k``), ``j`` B's entries, ``k``-axis C's entries.
    """
    if min(m, k, n) < 1:
        raise ValueError(f"base-case dims must be positive, got {(m, k, n)}")
    T = np.zeros((m * k, k * n, m * n))
    for ar in range(m):  # row of A == row of C
        for ac in range(k):  # col of A == row of B
            for bc in range(n):  # col of B == col of C
                T[ar * k + ac, ac * n + bc, ar * n + bc] = 1.0
    return T


def tensor_from_factors(U: np.ndarray, V: np.ndarray, W: np.ndarray) -> np.ndarray:
    """Evaluate ``sum_r u_r o v_r o w_r`` densely: the tensor ``[[U,V,W]]``."""
    return np.einsum("ir,jr,kr->ijk", U, V, W, optimize=True)


def residual(
    T: np.ndarray, U: np.ndarray, V: np.ndarray, W: np.ndarray
) -> float:
    """Frobenius norm ``||T - [[U,V,W]]||`` -- zero iff the algorithm is exact."""
    return float(np.linalg.norm((T - tensor_from_factors(U, V, W)).ravel()))


def relative_residual(
    T: np.ndarray, U: np.ndarray, V: np.ndarray, W: np.ndarray
) -> float:
    """``||T - [[U,V,W]]|| / ||T||`` -- the search's convergence measure."""
    return residual(T, U, V, W) / float(np.linalg.norm(T.ravel()))


def mode_product(T: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``T x_1 x x_2 y``: contract the first two modes (paper Section 1.2).

    For the matmul tensor this computes ``vec(C)`` from ``vec(A)`` and
    ``vec(B)``: ``z_k = sum_ij t_ijk x_i y_j``.
    """
    return np.einsum("ijk,i,j->k", T, x, y, optimize=True)


def frontal_slice(T: np.ndarray, k: int) -> np.ndarray:
    """The k-th frontal slice ``T_k = t_{:,:,k}`` (paper notation Table 1)."""
    return T[:, :, k]


def unfold(T: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` unfolding (matricization), Kolda-Bader convention.

    ``unfold(T, 0)`` has shape ``(I, J*K)`` with column index ``j + k*J``
    varying j fastest; the ALS solver relies on this pairing with the
    Khatri-Rao product.
    """
    if mode not in (0, 1, 2):
        raise ValueError(f"mode must be 0, 1 or 2, got {mode}")
    return np.moveaxis(T, mode, 0).reshape(T.shape[mode], -1, order="F")


def khatri_rao(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Column-wise Kronecker product: shape ``(I*J, R)`` from (I,R),(J,R).

    Row index is ``i + j*I`` (j varying slowest) to match :func:`unfold`'s
    Fortran-order flattening, so ``unfold(T,0) ~= U @ khatri_rao(V, W).T``
    pairs mode-1 with V and mode-2 with W correctly.
    """
    I, R = A.shape
    J, R2 = B.shape
    if R != R2:
        raise ValueError("factors must have the same number of columns")
    return (A[:, None, :] * B[None, :, :]).reshape(I * J, R, order="F")


def vec(A: np.ndarray) -> np.ndarray:
    """Row-order vectorization used throughout the paper."""
    return np.asarray(A).reshape(-1)


def unvec(x: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Inverse of :func:`vec`."""
    return np.asarray(x).reshape(rows, cols)
