"""Arithmetic, communication and memory cost models for fast algorithms.

Reproduces the analytical machinery the paper uses to reason about
performance:

- flop-count recurrences (Section 2.1): ``F_C(N) = 2N^3 - N^2`` classical,
  ``F_S(N) = 7 N^{log2 7} - 6 N^2`` for Strassen, and the generalization to
  any ``<M,K,N>`` base case and any recursion depth;
- the per-recursive-step multiplication speedup of Table 2;
- submatrix read/write counts of the three matrix-addition strategies
  (Section 3.2) -- the quantity that actually separates them in practice;
- CSE's effect on reads/writes (the "k - 3" argument of Section 3.3);
- memory-footprint factors of the parallel schemes (Sections 3.2 and 4.2);
- effective-GFLOPS (Equation 3) lives in ``repro.bench.metrics``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.algorithm import FastAlgorithm


# --------------------------------------------------------------------- flops
def classical_flops(p: int, q: int, r: int) -> int:
    """Exact classical flop count ``2pqr - pr`` (fused multiply + add tree)."""
    return 2 * p * q * r - p * r


def _addition_flops_per_level(alg: FastAlgorithm, p: int, q: int, r: int) -> int:
    """Flops spent in S/T/C addition chains at one recursion level.

    A chain with ``t`` nonzero terms costs ``t - 1`` additions per entry
    (scalar multiplications by +-1 are free; generic scalars add one
    multiply per entry, which we count too).
    """
    m, k, n = alg.base_case
    bs_a = (p // m) * (q // k)  # block sizes
    bs_b = (q // k) * (r // n)
    bs_c = (p // m) * (r // n)
    total = 0
    for col in alg.U.T:
        t = int(np.count_nonzero(col))
        scal = int(np.count_nonzero(np.abs(col[col != 0]) != 1.0))
        if t:
            total += (t - 1 + scal) * bs_a
    for col in alg.V.T:
        t = int(np.count_nonzero(col))
        scal = int(np.count_nonzero(np.abs(col[col != 0]) != 1.0))
        if t:
            total += (t - 1 + scal) * bs_b
    for row in alg.W:
        t = int(np.count_nonzero(row))
        scal = int(np.count_nonzero(np.abs(row[row != 0]) != 1.0))
        if t:
            total += (t - 1 + scal) * bs_c
    return total


def recursive_flops(alg: FastAlgorithm, p: int, q: int, r: int, steps: int) -> int:
    """Total flops of ``steps`` recursion levels with classical leaves.

    Requires ``(p, q, r)`` divisible by ``(m^steps, k^steps, n^steps)`` --
    the model ignores peeling, exactly like the paper's recurrences.
    """
    m, k, n = alg.base_case
    if steps == 0:
        return classical_flops(p, q, r)
    if p % m or q % k or r % n:
        raise ValueError(
            f"dimensions {(p, q, r)} not divisible by base case {(m, k, n)}"
        )
    adds = _addition_flops_per_level(alg, p, q, r)
    return adds + alg.rank * recursive_flops(
        alg, p // m, q // k, r // n, steps - 1
    )


def strassen_flops(N: int) -> int:
    """Closed form ``7 N^{log2 7} - 6 N^2`` for N a power of two (Section 2.1)."""
    if N & (N - 1):
        raise ValueError("closed form requires N to be a power of two")
    return round(7 * N ** math.log2(7) - 6 * N * N)


def speedup_per_step(alg: FastAlgorithm) -> float:
    """Table-2 column: multiplication speedup per recursive step,
    ``mkn/R - 1`` (e.g. 8/7 - 1 ~= 14% for Strassen)."""
    return alg.multiplication_speedup_per_step


# --------------------------------------------------- tuner ranking model
def _nnz_addition_weight(alg: FastAlgorithm) -> tuple[float, float, float]:
    """Per-level addition flops in units of (A-block, B-block, C-block) area.

    Mirrors ``_addition_flops_per_level`` but returns the three block-area
    coefficients so callers can evaluate them at fractional block sizes.
    """
    wa = wb = wc = 0.0
    for col in alg.U.T:
        t = int(np.count_nonzero(col))
        scal = int(np.count_nonzero(np.abs(col[col != 0]) != 1.0))
        if t:
            wa += t - 1 + scal
    for col in alg.V.T:
        t = int(np.count_nonzero(col))
        scal = int(np.count_nonzero(np.abs(col[col != 0]) != 1.0))
        if t:
            wb += t - 1 + scal
    for row in alg.W:
        t = int(np.count_nonzero(row))
        scal = int(np.count_nonzero(np.abs(row[row != 0]) != 1.0))
        if t:
            wc += t - 1 + scal
    return wa, wb, wc


def estimate_recursive_flops(
    alg: FastAlgorithm, p: float, q: float, r: float, steps: int
) -> tuple[float, float]:
    """(leaf-multiply flops, addition flops) of ``steps`` recursion levels
    on an *arbitrary*-shape ``p x q x r`` problem.

    Unlike :func:`recursive_flops` this does not require divisibility:
    block sizes are fractional, which approximates dynamic peeling's
    smoothing of the true step function.  Used by ``repro.tuner`` to rank
    candidate plans without running them.
    """
    m, k, n = alg.base_case
    if steps <= 0 or p < m or q < k or r < n:
        return 2.0 * p * q * r, 0.0
    wa, wb, wc = _nnz_addition_weight(alg)
    adds = (
        wa * (p / m) * (q / k)
        + wb * (q / k) * (r / n)
        + wc * (p / m) * (r / n)
    )
    mults, sub_adds = estimate_recursive_flops(alg, p / m, q / k, r / n, steps - 1)
    return alg.rank * mults, adds + alg.rank * sub_adds


def parallel_traffic(
    alg: FastAlgorithm | None,
    p: int,
    q: int,
    r: int,
    steps: int,
    scheme: str = "sequential",
    threads: int = 1,
    subgroup: int | None = None,
) -> float:
    """Modeled extra memory traffic (words moved) of a parallel scheme.

    Sequential and DFS executions reuse one S/T/M_r triple per level
    (Section 4.1), so they set the zero baseline.  Two terms beyond it:

    - **BFS per-level pools** (Section 4.2): expanding level ``l``
      materializes ``R^l`` leaf-product intermediates totalling
      ``(R/(MN))^l`` copies of the output ``C``, each written by its task
      and read back during the combine walk -- ``2 (R/(MN))^l p r`` words
      per level, paid by ``bfs``, ``hybrid`` and ``hybrid-subgroup``
      alike (they all run the same level-synchronous task tree).

    - **Ballard-style inter-group traffic** (``hybrid-subgroup`` only,
      after Ballard et al.'s communication model for parallel Strassen):
      the ``R^steps mod threads`` remainder leaves run on disjoint groups
      of ``subgroup`` = P' threads.  With ``G = threads // P'`` groups
      working concurrently, a ``(G-1)/G`` share of each remainder leaf's
      operand + output words crosses group boundaries, and leaves that do
      not fill the last wave of ``G`` idle a group's worth of bandwidth
      (the load-imbalance cost of Section 4.3).  Large P' (few groups)
      minimizes cross-group traffic but serializes waves; small P' is the
      reverse -- which is exactly why P' is a tuning knob and not a
      formula.

    Returns 0.0 whenever no parallel expansion happens (``threads <= 1``,
    ``steps <= 0``, or a sequential/DFS scheme).
    """
    if alg is None or steps <= 0 or threads <= 1:
        return 0.0
    if scheme in ("sequential", "dfs"):
        return 0.0
    m, k, n = alg.base_case
    R = alg.rank
    factor = 1.0
    traffic = 0.0
    for _ in range(steps):
        factor *= R / (m * n)
        traffic += 2.0 * factor * p * r
    if scheme == "hybrid-subgroup" and subgroup:
        rem = R**steps % threads
        if rem:
            lp, lq, lr = p / m**steps, q / k**steps, r / n**steps
            leaf_words = lp * lq + lq * lr + lp * lr
            groups = max(1, threads // subgroup)
            traffic += rem * leaf_words * (groups - 1) / groups
            traffic += (math.ceil(rem / groups) * groups - rem) * leaf_words
    return traffic


#: relative bandwidth charge of one addition flop under the compiled C
#: chain backend.  The NumPy strategies make one fused in-place pass *per
#: operand pair* of a chain (a length-L chain streams its destination
#: L-1 times), while the emitted C forms each S_r/T_r/C_ij row in a
#: single fused loop -- every operand read once, the destination written
#: once -- so the memory traffic per addition flop roughly halves.  The
#: leaf gemms are identical on both backends, which is why the discount
#: applies only to the addition term.
COMPILED_ADD_DISCOUNT = 0.5


def plan_cost(
    alg: FastAlgorithm | None,
    p: int,
    q: int,
    r: int,
    steps: int,
    add_penalty: float = 4.0,
    scheme: str = "sequential",
    threads: int = 1,
    subgroup: int | None = None,
    backend: str = "numpy",
) -> float:
    """Tuner ranking score for running ``alg`` at ``steps`` on ``p x q x r``.

    Additions are bandwidth-bound while leaf gemms are compute-bound
    (Section 3.2's central observation), so an addition flop is charged
    ``add_penalty`` times a multiply flop.  Parallel schemes additionally
    pay :func:`parallel_traffic` -- the Section 4.2 per-level ``R/(MN)``
    bandwidth factor plus the Ballard-style inter-group term for the
    sub-group hybrid's P' (``subgroup``) -- charged at the same
    bandwidth penalty, which is what makes P' candidates cost-rankable
    before any of them is timed.  ``alg=None`` scores the plain vendor
    gemm.  Lower is better; the unit is "gemm-equivalent flops".

    ``backend="compiled"`` scores the fused single-pass C chain kernels:
    the addition penalty shrinks by :data:`COMPILED_ADD_DISCOUNT` (the
    leaf gemms and the traffic term are backend-independent), which is
    what lets a compiled sequential twin outrank its NumPy sibling in the
    candidate shortlist without a measurement.
    """
    if alg is None or steps <= 0:
        return 2.0 * p * q * r
    mults, adds = estimate_recursive_flops(alg, p, q, r, steps)
    eff_penalty = add_penalty
    if backend == "compiled":
        eff_penalty *= COMPILED_ADD_DISCOUNT
    cost = mults + eff_penalty * adds
    cost += add_penalty * parallel_traffic(
        alg, p, q, r, steps, scheme=scheme, threads=threads, subgroup=subgroup
    )
    return cost


#: modeled per-task fan-out overhead (submission, wakeup, barrier) in
#: gemm-equivalent flops.  Calibrated to the Section 3.4 observation that
#: dispatch/fan-out overhead is what dominates below the dgemm ramp-up
#: knee: ~0.1 ms of a core's time at a few GFLOP/s.
BATCH_FANOUT_FLOPS = 5.0e5


def batch_cost(
    alg: FastAlgorithm | None,
    p: int,
    q: int,
    r: int,
    steps: int,
    batch: int,
    threads: int = 1,
    mode: str = "within",
    scheme: str = "sequential",
    subgroup: int | None = None,
    add_penalty: float = 4.0,
) -> float:
    """Ranking score for executing a *batch* of same-shape products.

    Extends :func:`plan_cost` with the batch-parallelism axis: run the
    pool **within** each multiply (the existing parallel schedules, one
    element at a time) or fan the pool across **elementwise** batch
    entries (each element sequential, BLAS pinned to 1).  The unit is
    per-worker wall-clock in gemm-equivalent flops, so the two modes are
    directly comparable:

    - ``elementwise`` pays ``ceil(batch / threads)`` waves of the
      *sequential* per-element cost, one fan-out charge per wave, plus a
      cache/bandwidth contention term -- each extra concurrently active
      worker streams its own operands and output through the shared
      memory system (the Ballard et al. bandwidth argument applied to
      independent products instead of subtrees).
    - ``within`` pays the full batch serially, each element at the
      parallel plan's per-thread cost plus a per-element fan-out charge
      that grows with the pool size -- the overhead that dominates below
      the Section 3.4 ramp-up knee and makes small-shape batches prefer
      elementwise fan-out.

    ``threads`` is the worker budget of the whole batch (the pool size in
    elementwise mode, the plan's thread count in within mode).
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if mode == "elementwise":
        workers = max(1, threads)
        per = plan_cost(alg, p, q, r, steps, add_penalty=add_penalty,
                        scheme="sequential", threads=1)
        waves = math.ceil(batch / workers)
        contention = add_penalty * (p * q + q * r + p * r) * (workers - 1)
        return waves * (per + BATCH_FANOUT_FLOPS + contention)
    if mode != "within":
        raise ValueError(f"unknown batch mode {mode!r}")
    per = plan_cost(alg, p, q, r, steps, add_penalty=add_penalty,
                    scheme=scheme, threads=threads, subgroup=subgroup)
    fanout = BATCH_FANOUT_FLOPS * threads if threads > 1 else 0.0
    return batch * (per / max(1, threads) + fanout)


# ------------------------------------------------------ reads/writes, Sec 3.2
def addition_rw_counts(alg: FastAlgorithm, strategy: str) -> tuple[int, int]:
    """(submatrix reads, submatrix writes) per recursion level, Section 3.2.

    pairwise:   2*nnz(U,V,W) - 2R - MN reads,  nnz(U,V,W) writes
    write-once: nnz(U,V,W) reads,              <= 2R + MN writes
    streaming:  MK + KN + R reads,             <= 2R + MN writes

    For write-once/streaming we report the paper's upper bounds minus the
    copy-only chains (single-nonzero U/V columns need no temporary at all).
    """
    m, k, n = alg.base_case
    R = alg.rank
    nu, nv, nw = alg.nnz()
    nnz_total = nu + nv + nw
    singles = int(
        np.sum(np.count_nonzero(alg.U, axis=0) == 1)
        + np.sum(np.count_nonzero(alg.V, axis=0) == 1)
    )
    if strategy == "pairwise":
        return 2 * nnz_total - 2 * R - m * n, nnz_total
    if strategy == "write_once":
        return nnz_total, 2 * R + m * n - singles
    if strategy == "streaming":
        return m * k + k * n + R, 2 * R + m * n - singles
    raise ValueError(f"unknown strategy {strategy!r}")


def cse_rw_delta(occurrences: int) -> int:
    """Change in (reads + writes) from eliminating one length-2 subexpression
    used ``occurrences`` times under write-once additions (Section 3.3):
    saves 2 reads per use but costs 2 reads + 1 write to form the temporary,
    net ``3 - occurrences`` ... negative (an improvement) only for >= 4 uses.
    """
    return 3 - occurrences


# -------------------------------------------------------------------- memory
def bfs_memory_factor(alg: FastAlgorithm, levels: int = 1) -> float:
    """Extra memory (in units of the output C) the BFS scheme needs for the
    M_r intermediates: a factor ``R/(MN)`` per recursive step (Section 4.2)."""
    return (alg.rank / (alg.m * alg.n)) ** levels


def temporaries_memory(alg: FastAlgorithm, strategy: str) -> int:
    """How many S/T-block temporaries are live at once at one level.

    pairwise / write-once build (S_r, T_r) just before M_r and release them
    after; streaming materializes all R of each (Section 3.2).
    """
    if strategy in ("pairwise", "write_once"):
        return 2
    if strategy == "streaming":
        return 2 * alg.rank
    raise ValueError(f"unknown strategy {strategy!r}")


# ------------------------------------------------------------------ exponent
def composed_exponent(base_cases: list[tuple[int, int, int]], ranks: list[int]) -> float:
    """Exponent of a composed (multi-level) algorithm such as the paper's
    <54,54,54> = <3,3,6> o <3,6,3> o <6,3,3> with 40^3 multiplies:
    ``omega = 3 log_{prod mkn}(prod R)``."""
    size = 1
    for m, k, n in base_cases:
        size *= m * k * n
    rank = math.prod(ranks)
    return 3.0 * math.log(rank) / math.log(size)
