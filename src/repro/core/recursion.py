"""Reference recursive executor for fast algorithms (the "interpreter").

This is the semantic ground truth the code generator is tested against:
given any ``FastAlgorithm`` it multiplies arbitrary-size matrices by

1. *dynamic peeling* (Section 3.5): strip the at-most-(M-1)/(K-1)/(N-1)
   boundary rows/columns so the core is evenly divisible, recurse on the
   core, and patch the boundary contributions with thin classical products;
2. forming ``S_r``/``T_r`` from U/V columns, recursing for ``M_r = S_r T_r``,
   and accumulating ``C`` blocks from W rows;
3. stopping after ``steps`` recursion levels -- or earlier when a block
   dimension would vanish or a cutoff policy says the subproblem has left
   the flat part of the dgemm curve (Section 3.4).

Both entry points accept ``out=`` (write the product into caller storage)
and ``workspace=`` (a :class:`repro.core.workspace.Workspace` arena holding
the per-level ``S``/``T``/``M_r`` triples of Section 4.1).  With both
supplied, a call performs no array allocations at steady state; the
arithmetic is the *same sequence of ufunc/gemm calls* as the allocating
path, so results match it bit for bit.
"""

from __future__ import annotations

import dataclasses
import inspect
import weakref
from typing import Callable

import numpy as np

from repro.core.algorithm import FastAlgorithm
from repro.core.workspace import (
    Workspace,
    check_out,
    needs_scratch,
    scratch_view,
)
from repro.util.matrices import block_views, peel_split
from repro.util.validation import check_matmul_dims, require_2d

BaseMultiply = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _dot(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Default base case: the vendor BLAS gemm (numpy/OpenBLAS dgemm)."""
    return A @ B


#: weak memo so a throwaway lambda base (and everything its closure pins)
#: is collectable the moment the caller drops it
_accepts_out_memo: "weakref.WeakKeyDictionary[Callable, bool]" = (
    weakref.WeakKeyDictionary()
)


def _signature_accepts_out(base: Callable) -> bool:
    try:
        return _accepts_out_memo[base]
    except (KeyError, TypeError):  # miss, or a non-weakrefable builtin
        pass
    try:
        result = "out" in inspect.signature(base).parameters
    except (TypeError, ValueError):  # builtins without introspectable sigs
        result = False
    try:
        _accepts_out_memo[base] = result
    except TypeError:
        pass
    return result


def _base_accepts_out(base: Callable) -> bool:
    """Whether a base-case callable takes an ``out=`` destination.

    Checked at every leaf, so the ``inspect.signature`` reflection is
    memoized (weakly) per callable; setting a ``_accepts_out`` attribute
    on the callable skips it entirely.
    """
    accepts = getattr(base, "_accepts_out", None)
    if accepts is not None:
        return bool(accepts)
    return _signature_accepts_out(base)


def _leaf(base: BaseMultiply, A: np.ndarray, B: np.ndarray,
          out: np.ndarray | None) -> np.ndarray:
    """Run the base case, writing into ``out`` when one is supplied."""
    if out is None:
        return base(A, B)
    if base is _dot:
        np.matmul(A, B, out=out)
        return out
    if _base_accepts_out(base):
        return base(A, B, out=out)
    np.copyto(out, base(A, B))
    return out


@dataclasses.dataclass(frozen=True)
class CutoffPolicy:
    """When to take another recursive step (Section 3.4).

    ``max_steps`` is the paper's "one, two or three steps of recursion";
    ``min_dim`` refuses to recurse once a subproblem dimension would drop
    below the measured flat part of the dgemm ramp-up curve.
    """

    max_steps: int = 1
    min_dim: int = 2

    def should_recurse(self, step: int, p: int, q: int, r: int,
                       m: int, k: int, n: int) -> bool:
        if step >= self.max_steps:
            return False
        # subproblem dims after one more split
        return min(p // m, q // k, r // n) >= max(self.min_dim, 1)


def combine_blocks(
    blocks: list[np.ndarray],
    coeffs: np.ndarray,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray | None:
    """Form ``sum_i coeffs[i] * blocks[i]`` skipping zeros.

    Returns a *view* (no copy) when the combination is a single block with
    coefficient 1 -- the memory-saving special case of Section 3.1.  Returns
    None when all coefficients are zero.

    With ``out=`` the chain is written into caller storage fused
    (``np.multiply``/``np.add``/``np.subtract`` with ``out``); a byte
    ``scratch`` buffer additionally absorbs the ``c * block`` products of
    coefficients outside {0, +-1}, making the chain allocation-free.  The
    fused path performs the identical ufunc sequence on identical values,
    so it is bit-for-bit equal to the allocating path.
    """
    nz = np.nonzero(coeffs)[0]
    if nz.size == 0:
        return None
    first = nz[0]
    # python-float coefficients: under NEP 50 a numpy float64 scalar would
    # silently upcast float32 blocks
    c0 = float(coeffs[first])
    if nz.size == 1:
        if c0 == 1.0:
            return blocks[first]
        if out is None:
            return c0 * blocks[first]
        np.multiply(blocks[first], c0, out=out)
        return out
    if out is None:
        out = blocks[first] * c0 if c0 != 1.0 else blocks[first].copy()
    elif c0 == 1.0:
        np.copyto(out, blocks[first])
    else:
        np.multiply(blocks[first], c0, out=out)
    for i in nz[1:]:
        c = float(coeffs[i])
        if c == 1.0:
            np.add(out, blocks[i], out=out)
        elif c == -1.0:
            np.subtract(out, blocks[i], out=out)
        elif scratch is not None:
            t = scratch_view(scratch, out.shape, out.dtype)
            np.multiply(blocks[i], c, out=t)
            np.add(out, t, out=out)
        else:
            out += c * blocks[i]
    return out


def multiply(
    A: np.ndarray,
    B: np.ndarray,
    algorithm: FastAlgorithm,
    steps: int = 1,
    base: BaseMultiply | None = None,
    cutoff: CutoffPolicy | None = None,
    out: np.ndarray | None = None,
    workspace: Workspace | None = None,
) -> np.ndarray:
    """Multiply ``A @ B`` with ``algorithm``, recursing ``steps`` levels.

    ``base`` is called on the leaf subproblems (default: BLAS gemm); the
    classical algorithm is also used for all peeling fix-ups, mirroring the
    generated code.

    ``out`` receives the product (it must match ``(p, r)`` and the result
    dtype and must not overlap ``A``/``B`` -- see
    :func:`repro.core.workspace.check_out`).  ``workspace`` supplies the
    per-level ``S``/``T``/``M_r`` buffers; build one with
    ``Workspace.for_recursion([algorithm.base_case] * steps, p, q, r,
    A.dtype, B.dtype)``.  With both, a warm call allocates nothing.
    """
    A = require_2d(A, "A")
    B = require_2d(B, "B")
    check_matmul_dims(A, B)
    if out is not None:
        out = check_out(out, A, B)
    if base is None:
        base = _dot
    policy = cutoff if cutoff is not None else CutoffPolicy(max_steps=steps)
    if workspace is not None:
        workspace.reset()
    return _recurse(A, B, algorithm, 0, base, policy, out=out, ws=workspace)


def _recurse(
    A: np.ndarray,
    B: np.ndarray,
    alg: FastAlgorithm,
    step: int,
    base: BaseMultiply,
    policy: CutoffPolicy,
    out: np.ndarray | None = None,
    ws: Workspace | None = None,
) -> np.ndarray:
    p, q = A.shape
    r = B.shape[1]
    m, k, n = alg.base_case
    if not policy.should_recurse(step, p, q, r, m, k, n):
        return _leaf(base, A, B, out)

    # ---- dynamic peeling: carve the evenly divisible core ----
    A11, A12, A21, A22 = peel_split(A, m, k)
    B11, B12, B21, B22 = peel_split(B, k, n)
    pc, qc = A11.shape
    rc = B11.shape[1]

    # the top-level C is the caller's ``out`` or a fresh array -- never
    # arena memory, which the next call would overwrite
    C = out if out is not None else np.empty((p, r), dtype=np.result_type(A, B))
    Ccore = C[:pc, :rc]

    # ---- fast product on the core ----
    _core_multiply(A11, B11, Ccore, alg, step, base, policy, ws)

    # ---- boundary fix-ups with thin classical products ----
    if q - qc:  # inner-dimension strip contributes to the core block of C
        # the one full-core-size (pc x rc) fix-up product: draw it from the
        # arena so non-divisible shapes stay allocation-free too (the other
        # strips below are O(boundary)-thin and negligible)
        if ws is not None:
            fix_mark = ws.mark()
            t = ws.take((pc, rc), C.dtype)
            np.matmul(A12, B21, out=t)
            np.add(Ccore, t, out=Ccore)
            ws.release(fix_mark)
        else:
            Ccore += A12 @ B21
    if r - rc:  # right strip of C
        np.matmul(A11, B12, out=C[:pc, rc:])
        if q - qc:
            C[:pc, rc:] += A12 @ B22
    if p - pc:  # bottom strip of C
        np.matmul(A21, B11, out=C[pc:, :rc])
        if q - qc:
            C[pc:, :rc] += A22 @ B21
    if (p - pc) and (r - rc):  # corner
        C[pc:, rc:] = A21 @ B12 + A22 @ B22
    return C


def multiply_schedule(
    A: np.ndarray,
    B: np.ndarray,
    schedule: list[FastAlgorithm],
    base: BaseMultiply | None = None,
    out: np.ndarray | None = None,
    workspace: Workspace | None = None,
) -> np.ndarray:
    """Multiply using a *different* algorithm at each recursion level.

    This is the paper's "composed" construction (Section 5.2): e.g.
    ``schedule = [<3,3,6>, <3,6,3>, <6,3,3>]`` realizes the <54,54,54>
    algorithm with ``prod(R_i)`` total multiplications and exponent
    ``3 log_54 40 ~= 2.775`` when every level has rank 40.  Recursion depth
    equals ``len(schedule)``; dynamic peeling applies at every level.

    ``out``/``workspace`` follow :func:`multiply`; size the arena with
    ``Workspace.for_recursion([alg.base_case for alg in schedule], ...)``.
    """
    A = require_2d(A, "A")
    B = require_2d(B, "B")
    check_matmul_dims(A, B)
    if out is not None:
        out = check_out(out, A, B)
    if base is None:
        base = _dot
    if workspace is not None:
        workspace.reset()
    if not schedule:
        return _leaf(base, A, B, out)

    def run(X: np.ndarray, Y: np.ndarray, level: int,
            out: np.ndarray | None = None) -> np.ndarray:
        if level >= len(schedule):
            return _leaf(base, X, Y, out)
        alg = schedule[level]

        # one-level policy: recurse exactly once here, deeper via closure
        def inner_base(S: np.ndarray, T: np.ndarray,
                       out: np.ndarray | None = None) -> np.ndarray:
            return run(S, T, level + 1, out=out)

        inner_base._accepts_out = True
        return _recurse(X, Y, alg, 0, inner_base, CutoffPolicy(max_steps=1),
                        out=out, ws=workspace)

    return run(A, B, 0, out=out)


def _core_multiply(
    A: np.ndarray,
    B: np.ndarray,
    C: np.ndarray,
    alg: FastAlgorithm,
    step: int,
    base: BaseMultiply,
    policy: CutoffPolicy,
    ws: Workspace | None = None,
) -> None:
    """One recursion level on an evenly divisible core, writing into C."""
    m, k, n = alg.base_case
    blocksA = block_views(A, m, k)
    blocksB = block_views(B, k, n)
    blocksC = block_views(C, m, n)
    started = [False] * len(blocksC)

    S_buf = T_buf = M_buf = scratch = None
    level_mark = None
    if ws is not None:
        # one S/T/M_r triple per level, reused across all R ranks and all
        # sibling subtrees -- the Section 4.1 DFS memory discipline
        level_mark = ws.mark()
        bp, bq = blocksA[0].shape
        br = blocksB[0].shape[1]
        S_buf = ws.take((bp, bq), A.dtype)
        T_buf = ws.take((bq, br), B.dtype)
        M_buf = ws.take((bp, br), C.dtype)
        if (needs_scratch(alg.U) or needs_scratch(alg.V)
                or needs_scratch(alg.W)):
            scratch = ws.take_scratch(max(S_buf.nbytes, T_buf.nbytes,
                                          M_buf.nbytes))

    for rr in range(alg.rank):
        S = combine_blocks(blocksA, alg.U[:, rr], out=S_buf, scratch=scratch)
        T = combine_blocks(blocksB, alg.V[:, rr], out=T_buf, scratch=scratch)
        if S is None or T is None:
            continue  # dead product (possible in composed algorithms)
        if ws is None:
            Mr = _recurse(S, T, alg, step + 1, base, policy)
        else:
            inner = ws.mark()
            Mr = _recurse(S, T, alg, step + 1, base, policy,
                          out=M_buf, ws=ws)
            ws.release(inner)
        wcol = alg.W[:, rr]
        for i in np.nonzero(wcol)[0]:
            c = float(wcol[i])
            blk = blocksC[i]
            if not started[i]:
                if c == 1.0:
                    blk[:] = Mr
                else:
                    np.multiply(Mr, c, out=blk)
                started[i] = True
            elif c == 1.0:
                blk += Mr
            elif c == -1.0:
                blk -= Mr
            elif scratch is not None:
                t = scratch_view(scratch, blk.shape, blk.dtype)
                np.multiply(Mr, c, out=t)
                np.add(blk, t, out=blk)
            else:
                blk += c * Mr
    if ws is not None:
        ws.release(level_mark)
    for i, s in enumerate(started):
        if not s:  # all-zero W row can only happen for degenerate inputs
            blocksC[i][:] = 0.0
