"""Reference recursive executor for fast algorithms (the "interpreter").

This is the semantic ground truth the code generator is tested against:
given any ``FastAlgorithm`` it multiplies arbitrary-size matrices by

1. *dynamic peeling* (Section 3.5): strip the at-most-(M-1)/(K-1)/(N-1)
   boundary rows/columns so the core is evenly divisible, recurse on the
   core, and patch the boundary contributions with thin classical products;
2. forming ``S_r``/``T_r`` from U/V columns, recursing for ``M_r = S_r T_r``,
   and accumulating ``C`` blocks from W rows;
3. stopping after ``steps`` recursion levels -- or earlier when a block
   dimension would vanish or a cutoff policy says the subproblem has left
   the flat part of the dgemm curve (Section 3.4).
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.core.algorithm import FastAlgorithm
from repro.util.matrices import block_views, peel_split
from repro.util.validation import check_matmul_dims, require_2d

BaseMultiply = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _dot(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Default base case: the vendor BLAS gemm (numpy/OpenBLAS dgemm)."""
    return A @ B


@dataclasses.dataclass(frozen=True)
class CutoffPolicy:
    """When to take another recursive step (Section 3.4).

    ``max_steps`` is the paper's "one, two or three steps of recursion";
    ``min_dim`` refuses to recurse once a subproblem dimension would drop
    below the measured flat part of the dgemm ramp-up curve.
    """

    max_steps: int = 1
    min_dim: int = 2

    def should_recurse(self, step: int, p: int, q: int, r: int,
                       m: int, k: int, n: int) -> bool:
        if step >= self.max_steps:
            return False
        # subproblem dims after one more split
        return min(p // m, q // k, r // n) >= max(self.min_dim, 1)


def combine_blocks(
    blocks: list[np.ndarray], coeffs: np.ndarray
) -> np.ndarray | None:
    """Form ``sum_i coeffs[i] * blocks[i]`` skipping zeros.

    Returns a *view* (no copy) when the combination is a single block with
    coefficient 1 -- the memory-saving special case of Section 3.1.  Returns
    None when all coefficients are zero.
    """
    nz = np.nonzero(coeffs)[0]
    if nz.size == 0:
        return None
    first = nz[0]
    # python-float coefficients: under NEP 50 a numpy float64 scalar would
    # silently upcast float32 blocks
    c0 = float(coeffs[first])
    if nz.size == 1:
        return blocks[first] if c0 == 1.0 else c0 * blocks[first]
    out = blocks[first] * c0 if c0 != 1.0 else blocks[first].copy()
    for i in nz[1:]:
        c = float(coeffs[i])
        if c == 1.0:
            out += blocks[i]
        elif c == -1.0:
            out -= blocks[i]
        else:
            out += c * blocks[i]
    return out


def multiply(
    A: np.ndarray,
    B: np.ndarray,
    algorithm: FastAlgorithm,
    steps: int = 1,
    base: BaseMultiply | None = None,
    cutoff: CutoffPolicy | None = None,
) -> np.ndarray:
    """Multiply ``A @ B`` with ``algorithm``, recursing ``steps`` levels.

    ``base`` is called on the leaf subproblems (default: BLAS gemm); the
    classical algorithm is also used for all peeling fix-ups, mirroring the
    generated code.
    """
    A = require_2d(A, "A")
    B = require_2d(B, "B")
    check_matmul_dims(A, B)
    if base is None:
        base = _dot
    policy = cutoff if cutoff is not None else CutoffPolicy(max_steps=steps)
    return _recurse(A, B, algorithm, 0, base, policy)


def _recurse(
    A: np.ndarray,
    B: np.ndarray,
    alg: FastAlgorithm,
    step: int,
    base: BaseMultiply,
    policy: CutoffPolicy,
) -> np.ndarray:
    p, q = A.shape
    r = B.shape[1]
    m, k, n = alg.base_case
    if not policy.should_recurse(step, p, q, r, m, k, n):
        return base(A, B)

    # ---- dynamic peeling: carve the evenly divisible core ----
    A11, A12, A21, A22 = peel_split(A, m, k)
    B11, B12, B21, B22 = peel_split(B, k, n)
    pc, qc = A11.shape
    rc = B11.shape[1]

    C = np.empty((p, r), dtype=np.result_type(A, B))
    Ccore = C[:pc, :rc]

    # ---- fast product on the core ----
    _core_multiply(A11, B11, Ccore, alg, step, base, policy)

    # ---- boundary fix-ups with thin classical products ----
    if q - qc:  # inner-dimension strip contributes to the core block of C
        Ccore += A12 @ B21
    if r - rc:  # right strip of C
        C[:pc, rc:] = A11 @ B12
        if q - qc:
            C[:pc, rc:] += A12 @ B22
    if p - pc:  # bottom strip of C
        C[pc:, :rc] = A21 @ B11
        if q - qc:
            C[pc:, :rc] += A22 @ B21
    if (p - pc) and (r - rc):  # corner
        C[pc:, rc:] = A21 @ B12 + A22 @ B22
    return C


def multiply_schedule(
    A: np.ndarray,
    B: np.ndarray,
    schedule: list[FastAlgorithm],
    base: BaseMultiply | None = None,
) -> np.ndarray:
    """Multiply using a *different* algorithm at each recursion level.

    This is the paper's "composed" construction (Section 5.2): e.g.
    ``schedule = [<3,3,6>, <3,6,3>, <6,3,3>]`` realizes the <54,54,54>
    algorithm with ``prod(R_i)`` total multiplications and exponent
    ``3 log_54 40 ~= 2.775`` when every level has rank 40.  Recursion depth
    equals ``len(schedule)``; dynamic peeling applies at every level.
    """
    A = require_2d(A, "A")
    B = require_2d(B, "B")
    check_matmul_dims(A, B)
    if base is None:
        base = _dot
    if not schedule:
        return base(A, B)

    def run(X: np.ndarray, Y: np.ndarray, level: int) -> np.ndarray:
        if level >= len(schedule):
            return base(X, Y)
        alg = schedule[level]
        # one-level policy: recurse exactly once here, deeper via closure
        inner_base = lambda S, T: run(S, T, level + 1)  # noqa: E731
        return multiply(X, Y, alg, steps=1, base=inner_base)

    return run(A, B, 0)


def _core_multiply(
    A: np.ndarray,
    B: np.ndarray,
    C: np.ndarray,
    alg: FastAlgorithm,
    step: int,
    base: BaseMultiply,
    policy: CutoffPolicy,
) -> None:
    """One recursion level on an evenly divisible core, writing into C."""
    m, k, n = alg.base_case
    blocksA = block_views(A, m, k)
    blocksB = block_views(B, k, n)
    blocksC = block_views(C, m, n)
    started = [False] * len(blocksC)

    for rr in range(alg.rank):
        S = combine_blocks(blocksA, alg.U[:, rr])
        T = combine_blocks(blocksB, alg.V[:, rr])
        if S is None or T is None:
            continue  # dead product (possible in composed algorithms)
        Mr = _recurse(S, T, alg, step + 1, base, policy)
        wcol = alg.W[:, rr]
        for i in np.nonzero(wcol)[0]:
            c = float(wcol[i])
            blk = blocksC[i]
            if not started[i]:
                if c == 1.0:
                    blk[:] = Mr
                else:
                    np.multiply(Mr, c, out=blk)
                started[i] = True
            elif c == 1.0:
                blk += Mr
            elif c == -1.0:
                blk -= Mr
            else:
                blk += c * Mr
    for i, s in enumerate(started):
        if not s:  # all-zero W row can only happen for degenerate inputs
            blocksC[i][:] = 0.0
