"""repro: a practical parallel fast matrix multiplication framework.

Python reproduction of Benson & Ballard, *A Framework for Practical
Parallel Fast Matrix Multiplication* (PPoPP 2015).  The package provides

- a catalog of fast algorithms as low-rank tensor decompositions
  (``repro.algorithms``), including Strassen, Strassen-Winograd,
  Hopcroft-Kerr-rank <2,2,n> algorithms and ALS-discovered algorithms at
  the paper's ranks (<2,3,3>:15, <2,3,4>:20, <2,4,4>:26, <3,3,3>:23, ...);
- the numerical search used to find them (``repro.search``);
- a code generator emitting specialized multiply routines with three
  matrix-addition strategies and optional CSE (``repro.codegen``);
- shared-memory parallel schemes DFS / BFS / HYBRID (``repro.parallel``);
- a benchmark harness regenerating every figure and table of the paper's
  evaluation (``repro.bench`` + the repository's ``benchmarks/``).

Quick start::

    import numpy as np, repro
    A = np.random.rand(1000, 1000)
    B = np.random.rand(1000, 1000)
    C = repro.multiply(A, B, algorithm="strassen", steps=2)
    np.allclose(C, A @ B)
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import by_base_case, classical, get_algorithm, strassen, table2, winograd
from repro.bench.metrics import effective_gflops
from repro.codegen import compile_algorithm, generate_source
from repro.core import EXACT_TOL, FastAlgorithm, matmul_tensor
from repro.core.recursion import CutoffPolicy, multiply_schedule
from repro.core.recursion import multiply as multiply_reference
from repro.parallel import WorkerPool, available_cores, multiply_parallel

__version__ = "1.0.0"

__all__ = [
    "FastAlgorithm",
    "EXACT_TOL",
    "matmul_tensor",
    "get_algorithm",
    "by_base_case",
    "table2",
    "strassen",
    "winograd",
    "classical",
    "multiply",
    "matmul",
    "matmul_batched",
    "multiply_reference",
    "multiply_parallel",
    "multiply_schedule",
    "CutoffPolicy",
    "compile_algorithm",
    "generate_source",
    "WorkerPool",
    "available_cores",
    "effective_gflops",
    "__version__",
]


def multiply(
    A: np.ndarray,
    B: np.ndarray,
    algorithm: str | FastAlgorithm = "strassen",
    steps: int = 1,
    strategy: str = "write_once",
    cse: bool = False,
    parallel: bool = False,
    scheme: str = "hybrid",
    threads: int | None = None,
    subgroup: int | None = None,
) -> np.ndarray:
    """Multiply ``A @ B`` with a fast algorithm (the one-call public API).

    Parameters mirror the paper's tuning space: the algorithm (by registry
    name or as a ``FastAlgorithm``), the recursion depth ``steps``, the
    matrix-addition ``strategy`` (``write_once`` is the paper's default
    winner), optional ``cse``, and -- when ``parallel`` -- the scheduling
    ``scheme`` (``dfs`` / ``bfs`` / ``hybrid`` / ``hybrid-subgroup``),
    thread count and the sub-group hybrid's P' (``subgroup``, a divisor
    of the thread count; defaults per
    :func:`repro.parallel.schedules.default_subgroup`).
    """
    alg = get_algorithm(algorithm) if isinstance(algorithm, str) else algorithm
    if parallel:
        return multiply_parallel(A, B, alg, steps=steps, scheme=scheme,
                                 threads=threads, subgroup=subgroup)
    return compile_algorithm(alg, strategy=strategy, cse=cse)(A, B, steps=steps)


def matmul(A: np.ndarray, B: np.ndarray, **kwargs) -> np.ndarray:
    """Multiply ``A @ B`` with the algorithm chosen *for you*.

    The self-optimizing entry point (``repro.tuner``): consults the
    persistent plan cache for this shape/dtype/thread-count (entries tuned
    on another machine are fingerprint-stale and bypassed), falls back to
    the analytical cost model, and learns per the ``tune`` policy --
    ``"auto"`` measures the candidate shortlist once and remembers the
    winner; ``"online"`` explores it across real calls with amortized
    timing and promotes the winner into the cache.  With ``out=C`` a
    repeat call for a cached shape is allocation-free: plan, workspace
    arena (:mod:`repro.core.workspace`), worker pool and destination are
    all reused.  See :func:`repro.tuner.matmul` and
    :mod:`repro.tuner.policy` for the full parameter list.
    """
    from repro import tuner

    return tuner.matmul(A, B, **kwargs)


def matmul_batched(
    A: np.ndarray | list[np.ndarray],
    B: np.ndarray | list[np.ndarray],
    **kwargs,
) -> np.ndarray | list[np.ndarray]:
    """Multiply a whole batch of same-shape products, ``(b, p, q) @
    (b, q, r)`` stacked arrays or lists of 2-D arrays, with one amortized
    decision: one plan lookup, one workspace arena (or per-worker arena
    pool) and one persistent worker pool serve every element, so a warm
    batched call with ``out=`` is allocation-free end to end.  The batch
    also opens a tunable axis -- fan elements across the pool
    (``batch_mode="elementwise"``, BLAS pinned to one thread per element)
    versus the usual within-multiply parallel schedules
    (``batch_mode="within"``) -- cost-ranked by default and measurable
    with ``tune="auto"``.  See :func:`repro.tuner.matmul_batched`.
    """
    from repro import tuner

    return tuner.matmul_batched(A, B, **kwargs)


def __getattr__(name: str):
    """Lazy subpackage access (PEP 562): ``repro.linalg`` pulls in SciPy
    and ``repro.distributed``/``repro.search``/``repro.tuner``/``repro.cli``
    /``repro.obs`` are niche, so none of them should tax ``import repro``."""
    if name in ("linalg", "distributed", "search", "cli", "tuner", "obs"):
        import importlib

        return importlib.import_module(f"repro.{name}")
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
