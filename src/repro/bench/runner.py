"""Experiment drivers that regenerate the paper's figures/tables as text.

Each ``run_*`` function returns a list of result rows and prints a
paper-style table; the ``benchmarks/`` scripts wrap these in
pytest-benchmark entry points.  Policy knobs follow Section 5:

- sequential experiments report the best of 1..3 recursion steps
  (rectangular: 1..2), like the paper;
- parallel experiments take the best of (BFS, HYBRID) at low core counts
  and the best of (DFS, HYBRID) at full core count;
- every timing is a median of five runs (``repro.bench.metrics``).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

import numpy as np

from repro.bench.metrics import effective_gflops, median_time
from repro.bench.workloads import Workload
from repro.codegen import compile_algorithm
from repro.core.algorithm import FastAlgorithm
from repro.parallel import WorkerPool, blas, multiply_parallel
from repro.util.validation import relative_error


@dataclasses.dataclass
class ResultRow:
    algorithm: str
    workload: str
    n: int
    seconds: float
    gflops: float
    detail: str = ""


def _best_over_steps(
    multiply: Callable, A: np.ndarray, B: np.ndarray, step_options: Sequence[int],
    trials: int,
) -> tuple[float, int]:
    best, best_steps = np.inf, step_options[0]
    for s in step_options:
        sec = median_time(lambda: multiply(A, B, steps=s), trials=trials, warmup=1)
        if sec < best:
            best, best_steps = sec, s
    return best, best_steps


def run_sequential(
    algorithms: dict[str, FastAlgorithm | None],
    workloads: Sequence[Workload],
    step_options: Sequence[int] = (1, 2),
    strategy: str = "write_once",
    cse: bool = False,
    trials: int = 5,
    title: str = "",
    quiet: bool = False,
) -> list[ResultRow]:
    """Sequential sweep: every algorithm on every workload, single-threaded
    vendor BLAS underneath (algorithm None = plain dgemm baseline)."""
    rows: list[ResultRow] = []
    with blas.blas_threads(1):
        for wl in workloads:
            A, B = wl.matrices()
            for name, alg in algorithms.items():
                if alg is None:
                    sec = median_time(lambda: A @ B, trials=trials, warmup=1)
                    detail = "dgemm"
                else:
                    mult = compile_algorithm(alg, strategy=strategy, cse=cse)
                    sec, steps = _best_over_steps(mult, A, B, step_options, trials)
                    detail = f"best of steps={steps}"
                rows.append(ResultRow(
                    name, wl.label, wl.p, sec,
                    effective_gflops(wl.p, wl.q, wl.r, sec), detail,
                ))
    if not quiet:
        print_table(rows, title=title)
    return rows


def run_parallel(
    algorithms: dict[str, FastAlgorithm | None],
    workloads: Sequence[Workload],
    cores: int,
    schemes: Sequence[str] = ("bfs", "hybrid"),
    step_options: Sequence[int] = (1, 2),
    trials: int = 3,
    title: str = "",
    quiet: bool = False,
) -> list[ResultRow]:
    """Parallel sweep at a core count; fast algorithms take the best over
    (scheme x steps), the baseline is the vendor gemm at ``cores`` threads."""
    rows: list[ResultRow] = []
    with WorkerPool(cores) as pool:
        for wl in workloads:
            A, B = wl.matrices()
            for name, alg in algorithms.items():
                if alg is None:
                    with blas.blas_threads(cores):
                        sec = median_time(lambda: A @ B, trials=trials, warmup=1)
                    detail = f"dgemm({cores}t)"
                else:
                    best, detail = np.inf, ""
                    for scheme in schemes:
                        for s in step_options:
                            sec = median_time(
                                lambda: multiply_parallel(
                                    A, B, alg, steps=s, scheme=scheme,
                                    pool=pool, threads=cores,
                                ),
                                trials=trials, warmup=1,
                            )
                            if sec < best:
                                best, detail = sec, f"{scheme}, steps={s}"
                    sec = best
                rows.append(ResultRow(
                    name, wl.label, wl.p, sec,
                    effective_gflops(wl.p, wl.q, wl.r, sec) / cores, detail,
                ))
    if not quiet:
        print_table(rows, title=title, per_core=True)
    return rows


def check_accuracy(
    algorithms: dict[str, FastAlgorithm],
    workload: Workload,
    steps: int = 1,
) -> dict[str, float]:
    """Relative errors vs the classical product (APA algorithms stand out)."""
    A, B = workload.matrices()
    ref = A @ B
    out = {}
    for name, alg in algorithms.items():
        mult = compile_algorithm(alg)
        out[name] = relative_error(mult(A, B, steps=steps), ref)
    return out


def print_table(rows: list[ResultRow], title: str = "", per_core: bool = False) -> None:
    unit = "eff. GFLOPS/core" if per_core else "eff. GFLOPS"
    if title:
        print(f"\n== {title} ==")
    print(f"{'algorithm':<16} {'workload':<18} {unit:>18} {'seconds':>10}  detail")
    for r in rows:
        print(f"{r.algorithm:<16} {r.workload:<18} {r.gflops:>18.2f} "
              f"{r.seconds:>10.4f}  {r.detail}")


def winners_by_workload(rows: list[ResultRow]) -> dict[str, str]:
    """workload label -> fastest algorithm name (used by shape-matching
    assertions in the benchmark suite)."""
    best: dict[str, ResultRow] = {}
    for r in rows:
        cur = best.get(r.workload)
        if cur is None or r.seconds < cur.seconds:
            best[r.workload] = r
    return {k: v.algorithm for k, v in best.items()}


def speedup_over(rows: list[ResultRow], baseline: str) -> dict[tuple[str, str], float]:
    """(algorithm, workload) -> speedup vs the named baseline algorithm."""
    base = {r.workload: r.seconds for r in rows if r.algorithm == baseline}
    out = {}
    for r in rows:
        if r.algorithm != baseline and r.workload in base:
            out[(r.algorithm, r.workload)] = base[r.workload] / r.seconds
    return out
