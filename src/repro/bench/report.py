"""Rendering benchmark results: series tables, ASCII plots, CSV export.

The paper presents its evaluation as line plots of effective GFLOPS vs N.
On a terminal we render the same series as aligned tables plus a coarse
ASCII chart, and export CSV so the figures can be re-plotted elsewhere.
"""

from __future__ import annotations

import csv
import dataclasses
import io
from pathlib import Path
from typing import Iterable

from repro.bench.runner import ResultRow


@dataclasses.dataclass
class Series:
    """One plot line: algorithm name + (x, y) points."""

    name: str
    xs: list[float]
    ys: list[float]

    def __post_init__(self):
        if len(self.xs) != len(self.ys):
            raise ValueError("xs and ys must have equal length")


def rows_to_series(rows: Iterable[ResultRow]) -> list[Series]:
    """Group result rows into per-algorithm series over N."""
    by_alg: dict[str, list[tuple[float, float]]] = {}
    for r in rows:
        by_alg.setdefault(r.algorithm, []).append((float(r.n), r.gflops))
    out = []
    for name, pts in by_alg.items():
        pts.sort()
        out.append(Series(name, [p[0] for p in pts], [p[1] for p in pts]))
    return out


def ascii_plot(series: list[Series], width: int = 64, height: int = 16,
               title: str = "", ylabel: str = "eff. GFLOPS") -> str:
    """Coarse ASCII line chart of several series (paper-figure stand-in)."""
    if not series or not any(s.xs for s in series):
        return "(no data)"
    all_x = [x for s in series for x in s.xs]
    all_y = [y for s in series for y in s.ys]
    x0, x1 = min(all_x), max(all_x)
    y0, y1 = min(all_y), max(all_y)
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0
    grid = [[" "] * width for _ in range(height)]
    marks = "ox+*#%@&$"
    for si, s in enumerate(series):
        ch = marks[si % len(marks)]
        for x, y in zip(s.xs, s.ys):
            col = int((x - x0) / (x1 - x0) * (width - 1))
            row = int((y - y0) / (y1 - y0) * (height - 1))
            grid[height - 1 - row][col] = ch
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y1:10.1f} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{y0:10.1f} +" + "-" * width + "+")
    lines.append(" " * 12 + f"{x0:<10.0f}{'N':^{width - 20}}{x1:>10.0f}")
    legend = "  ".join(f"{marks[i % len(marks)]}={s.name}"
                       for i, s in enumerate(series))
    lines.append(" " * 12 + legend)
    lines.append(" " * 12 + f"(y: {ylabel})")
    return "\n".join(lines)


def to_csv(rows: Iterable[ResultRow], path: str | Path | None = None) -> str:
    """Serialize rows as CSV; write to ``path`` when given."""
    buf = io.StringIO()
    w = csv.writer(buf)
    w.writerow(["algorithm", "workload", "n", "seconds", "gflops", "detail"])
    for r in rows:
        w.writerow([r.algorithm, r.workload, r.n,
                    f"{r.seconds:.6f}", f"{r.gflops:.4f}", r.detail])
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def from_csv(path: str | Path) -> list[ResultRow]:
    """Inverse of :func:`to_csv`."""
    out = []
    with open(path, newline="") as fh:
        for rec in csv.DictReader(fh):
            out.append(ResultRow(
                algorithm=rec["algorithm"], workload=rec["workload"],
                n=int(rec["n"]), seconds=float(rec["seconds"]),
                gflops=float(rec["gflops"]), detail=rec["detail"],
            ))
    return out


def speedup_table(rows: Iterable[ResultRow], baseline: str = "dgemm") -> str:
    """Text table of speedups over a baseline, one line per workload."""
    rows = list(rows)
    base = {r.workload: r.seconds for r in rows if r.algorithm == baseline}
    names = sorted({r.algorithm for r in rows if r.algorithm != baseline})
    lines = [f"{'workload':<18} " + " ".join(f"{n:>10}" for n in names)]
    by_wl: dict[str, dict[str, float]] = {}
    for r in rows:
        if r.algorithm != baseline and r.workload in base:
            by_wl.setdefault(r.workload, {})[r.algorithm] = (
                base[r.workload] / r.seconds
            )
    for wl, d in by_wl.items():
        lines.append(f"{wl:<18} " +
                     " ".join(f"{d.get(n, float('nan')):>10.3f}" for n in names))
    return "\n".join(lines)
