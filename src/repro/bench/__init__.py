"""Benchmark harness: metrics (Eq. 3), machine model (Fig. 3 / Sec 3.4),
workload generators (Sec 5) and experiment runners for every figure/table."""

from repro.bench.metrics import effective_flops, effective_gflops, median_time, time_multiply
from repro.bench.machine import GemmCurve, measure_gemm_curve, recommended_steps, should_recurse
from repro.bench.runner import (
    ResultRow,
    check_accuracy,
    print_table,
    run_parallel,
    run_sequential,
    speedup_over,
    winners_by_workload,
)
from repro.bench import workloads

__all__ = [
    "effective_flops",
    "effective_gflops",
    "median_time",
    "time_multiply",
    "GemmCurve",
    "measure_gemm_curve",
    "recommended_steps",
    "should_recurse",
    "ResultRow",
    "check_accuracy",
    "print_table",
    "run_parallel",
    "run_sequential",
    "speedup_over",
    "winners_by_workload",
    "workloads",
]
