"""Timing and the effective-GFLOPS metric (paper Equation 3).

All timings are the *median of five trials* exactly as in Section 5, and
all performance numbers are "effective GFLOPS":

    effective GFLOPS = (2 P Q R - P R) / time_in_seconds * 1e-9

which is true GFLOPS for the classical algorithm and an inverse-time scale
normalized by problem size for the fast ones (they do fewer flops).
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np


def effective_flops(p: int, q: int, r: int) -> int:
    """Numerator of Equation 3 for a ``p x q`` times ``q x r`` product."""
    return 2 * p * q * r - p * r


def effective_gflops(p: int, q: int, r: int, seconds: float) -> float:
    """Equation 3."""
    return effective_flops(p, q, r) / seconds * 1e-9


def median_time(fn: Callable[[], object], trials: int = 5,
                warmup: int = 1) -> float:
    """Median wall time of ``trials`` runs after ``warmup`` untimed runs."""
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(trials):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def time_multiply(
    multiply: Callable[[np.ndarray, np.ndarray], np.ndarray],
    A: np.ndarray,
    B: np.ndarray,
    trials: int = 5,
    warmup: int = 1,
) -> tuple[float, float]:
    """(median seconds, effective GFLOPS) for one multiply callable."""
    p, q = A.shape
    r = B.shape[1]
    sec = median_time(lambda: multiply(A, B), trials=trials, warmup=warmup)
    return sec, effective_gflops(p, q, r, sec)
