"""Machine model: dgemm ramp-up curves and the recursion-cutoff rule.

Figure 3 of the paper measures MKL dgemm for three problem shapes in serial
and in parallel, observes a "ramp-up" phase that flattens near N ~= 1500
(serial) / N ~= 5000 (24 threads), and derives the cutoff principle of
Section 3.4: *take a recursive step only if the subproblems still land on
the flat part of the curve* -- more precisely, if the relative performance
drop from the current size to the subproblem size exceeds the algorithm's
speedup per step, recursion cannot pay.

``GemmCurve`` is the measured object; ``should_recurse`` applies the rule;
``recommended_steps`` turns it into the step count used by benchmarks.

This module is also the source of the **machine fingerprint**
(:func:`machine_fingerprint` / :func:`fingerprint_digest`): everything the
curves above depend on -- CPU model, core count, BLAS vendor and thread
ceiling, numpy version -- folded into a short digest.  The plan cache
stamps each tuned entry with it, so a cache tuned on one box is detected
(and re-tuned) rather than silently trusted on another.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
import platform

import numpy as np

from repro.bench.metrics import effective_gflops, median_time
from repro.parallel import blas
from repro.util.matrices import random_matrix


# ------------------------------------------------------- machine fingerprint
def _cpu_model() -> str:
    """Human-readable CPU model, best effort across platforms."""
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


@functools.lru_cache(maxsize=1)
def machine_fingerprint() -> dict:
    """The hardware/software facts a tuned plan's validity depends on.

    Computed once per process.  Every field is *configuration*, never live
    mutable state: the BLAS thread ceiling comes from the pinning
    environment variables (the operator-level knob that genuinely shifts
    tuning winners), not from ``blas.get_threads()``, whose value depends
    on whichever ``blas_threads`` context happens to be active at first
    call and would make the digest nondeterministic across processes on
    the same box.  Keys are stable and JSON-serializable; see
    :func:`fingerprint_digest` for the cache stamp.
    """
    env_threads = (os.environ.get("OPENBLAS_NUM_THREADS")
                   or os.environ.get("OMP_NUM_THREADS"))
    try:
        blas_threads = int(env_threads) if env_threads else 0
    except ValueError:
        blas_threads = 0
    return {
        "cpu": _cpu_model(),
        "cores": os.cpu_count() or 1,
        "blas": blas.library_name() or "unknown",
        # 0 = unpinned (use all cores); a pinned value changes the digest
        "blas_threads": blas_threads or os.cpu_count() or 1,
        "numpy": np.__version__,
    }


def fingerprint_digest(fingerprint: dict | None = None) -> str:
    """Short stable digest of a fingerprint (default: this machine's)."""
    fp = machine_fingerprint() if fingerprint is None else fingerprint
    blob = json.dumps(fp, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


@dataclasses.dataclass(frozen=True)
class GemmCurve:
    """Measured dgemm performance over a size sweep for one shape family.

    ``sizes`` are the varying dimension N; ``gflops`` the measured rate.
    Interpolation is linear, clamped at the ends.
    """

    sizes: list[int]
    gflops: list[float]
    threads: int = 1
    shape: str = "square"

    def at(self, n: int) -> float:
        return float(np.interp(n, self.sizes, self.gflops))

    @property
    def peak(self) -> float:
        return max(self.gflops)

    def flat_size(self, fraction: float = 0.9) -> int:
        """Smallest measured N reaching ``fraction`` of peak -- the start of
        the flat part of the ramp-up curve."""
        target = fraction * self.peak
        for n, g in zip(self.sizes, self.gflops):
            if g >= target:
                return n
        return self.sizes[-1]


def measure_gemm_curve(
    sizes: list[int],
    threads: int = 1,
    shape: str = "square",
    fixed: int | None = None,
    trials: int = 3,
) -> GemmCurve:
    """Measure the vendor gemm over a size sweep (Figure 3).

    ``shape``: ``square`` (N x N x N), ``outer`` (N x fixed x N) or
    ``ts`` (N x fixed x fixed).
    """
    gf = []
    with blas.blas_threads(threads):
        for n in sizes:
            if shape == "square":
                p, q, r = n, n, n
            elif shape == "outer":
                p, q, r = n, fixed, n
            elif shape == "ts":
                p, q, r = n, fixed, fixed
            else:
                raise ValueError(f"unknown shape {shape!r}")
            A = random_matrix(p, q, 0)
            B = random_matrix(q, r, 1)
            sec = median_time(lambda: A @ B, trials=trials, warmup=1)
            gf.append(effective_gflops(p, q, r, sec))
    return GemmCurve(list(sizes), gf, threads=threads, shape=shape)


def should_recurse(
    curve: GemmCurve,
    n: int,
    split: int,
    speedup_per_step: float,
) -> bool:
    """Section 3.4 rule.

    Taking a step turns a size-``n`` leaf into size-``n // split`` leaves.
    If the gemm rate drops by a larger ratio than the multiplication
    speedup gained, the step cannot pay.  (The converse is not guaranteed
    -- addition overhead may still eat the gain -- which is why benchmarks
    take the best over 1..3 steps, like the paper.)
    """
    here = curve.at(n)
    there = curve.at(max(1, n // split))
    if there <= 0.0:
        return False
    drop = here / there - 1.0
    return drop < speedup_per_step


def recommended_steps(
    curve: GemmCurve,
    n: int,
    split: int,
    speedup_per_step: float,
    max_steps: int = 3,
) -> int:
    """Apply :func:`should_recurse` greedily down the recursion."""
    steps = 0
    size = n
    while steps < max_steps and size >= split and should_recurse(
        curve, size, split, speedup_per_step
    ):
        steps += 1
        size //= split
    return steps
