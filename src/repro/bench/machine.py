"""Machine model: dgemm ramp-up curves and the recursion-cutoff rule.

Figure 3 of the paper measures MKL dgemm for three problem shapes in serial
and in parallel, observes a "ramp-up" phase that flattens near N ~= 1500
(serial) / N ~= 5000 (24 threads), and derives the cutoff principle of
Section 3.4: *take a recursive step only if the subproblems still land on
the flat part of the curve* -- more precisely, if the relative performance
drop from the current size to the subproblem size exceeds the algorithm's
speedup per step, recursion cannot pay.

``GemmCurve`` is the measured object; ``should_recurse`` applies the rule;
``recommended_steps`` turns it into the step count used by benchmarks.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.bench.metrics import effective_gflops, median_time
from repro.parallel import blas
from repro.util.matrices import random_matrix


@dataclasses.dataclass(frozen=True)
class GemmCurve:
    """Measured dgemm performance over a size sweep for one shape family.

    ``sizes`` are the varying dimension N; ``gflops`` the measured rate.
    Interpolation is linear, clamped at the ends.
    """

    sizes: list[int]
    gflops: list[float]
    threads: int = 1
    shape: str = "square"

    def at(self, n: int) -> float:
        return float(np.interp(n, self.sizes, self.gflops))

    @property
    def peak(self) -> float:
        return max(self.gflops)

    def flat_size(self, fraction: float = 0.9) -> int:
        """Smallest measured N reaching ``fraction`` of peak -- the start of
        the flat part of the ramp-up curve."""
        target = fraction * self.peak
        for n, g in zip(self.sizes, self.gflops):
            if g >= target:
                return n
        return self.sizes[-1]


def measure_gemm_curve(
    sizes: list[int],
    threads: int = 1,
    shape: str = "square",
    fixed: int | None = None,
    trials: int = 3,
) -> GemmCurve:
    """Measure the vendor gemm over a size sweep (Figure 3).

    ``shape``: ``square`` (N x N x N), ``outer`` (N x fixed x N) or
    ``ts`` (N x fixed x fixed).
    """
    gf = []
    with blas.blas_threads(threads):
        for n in sizes:
            if shape == "square":
                p, q, r = n, n, n
            elif shape == "outer":
                p, q, r = n, fixed, n
            elif shape == "ts":
                p, q, r = n, fixed, fixed
            else:
                raise ValueError(f"unknown shape {shape!r}")
            A = random_matrix(p, q, 0)
            B = random_matrix(q, r, 1)
            sec = median_time(lambda: A @ B, trials=trials, warmup=1)
            gf.append(effective_gflops(p, q, r, sec))
    return GemmCurve(list(sizes), gf, threads=threads, shape=shape)


def should_recurse(
    curve: GemmCurve,
    n: int,
    split: int,
    speedup_per_step: float,
) -> bool:
    """Section 3.4 rule.

    Taking a step turns a size-``n`` leaf into size-``n // split`` leaves.
    If the gemm rate drops by a larger ratio than the multiplication
    speedup gained, the step cannot pay.  (The converse is not guaranteed
    -- addition overhead may still eat the gain -- which is why benchmarks
    take the best over 1..3 steps, like the paper.)
    """
    here = curve.at(n)
    there = curve.at(max(1, n // split))
    if there <= 0.0:
        return False
    drop = here / there - 1.0
    return drop < speedup_per_step


def recommended_steps(
    curve: GemmCurve,
    n: int,
    split: int,
    speedup_per_step: float,
    max_steps: int = 3,
) -> int:
    """Apply :func:`should_recurse` greedily down the recursion."""
    steps = 0
    size = n
    while steps < max_steps and size >= split and should_recurse(
        curve, size, split, speedup_per_step
    ):
        steps += 1
        size //= split
    return steps
