"""Problem-shape generators for the paper's evaluation (Section 5).

Three families, matching Figures 3-7:

- ``square``       -- N x N x N
- ``outer``        -- N x K x N with fixed inner dimension K
                      (the paper's N x 1600 x N / N x 2800 x N)
- ``ts_square``    -- N x K x K, a tall-skinny times small-square product
                      (the paper's N x 2400 x 2400 / N x 3000 x 3000)

Paper dimensions are scaled by ``REPRO_BENCH_SCALE`` (default keeps the
aspect ratios at roughly 1/4 of the paper's sizes so a 2-core container
finishes sweeps in minutes; see EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np

from repro.util.matrices import random_matrix


def bench_scale() -> float:
    """Global problem-size multiplier (env ``REPRO_BENCH_SCALE``)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int) -> int:
    return max(8, int(round(n * bench_scale())))


@dataclasses.dataclass(frozen=True)
class Workload:
    """One (P, Q, R) multiplication problem with deterministic contents."""

    p: int
    q: int
    r: int
    seed: int = 0

    def matrices(self) -> tuple[np.ndarray, np.ndarray]:
        return (
            random_matrix(self.p, self.q, self.seed),
            random_matrix(self.q, self.r, self.seed + 1),
        )

    @property
    def label(self) -> str:
        return f"{self.p}x{self.q}x{self.r}"


def square(n: int, seed: int = 0) -> Workload:
    return Workload(n, n, n, seed)


def outer(n: int, k: int, seed: int = 0) -> Workload:
    """Outer-product shape N x K x N (K fixed, small)."""
    return Workload(n, k, n, seed)


def ts_square(n: int, k: int, seed: int = 0) -> Workload:
    """Tall-skinny times small square: N x K x K."""
    return Workload(n, k, k, seed)


# ---- paper sweeps, scaled ~1/4 by default (paper N in [2000, 20000]) ----
def fig5_square_sweep() -> list[Workload]:
    return [square(scaled(n)) for n in (512, 768, 1024, 1280, 1536)]


def fig5_outer_sweep() -> list[Workload]:
    # paper: N x 1600 x N, N in [2000, 12000] -> K = 416 at 0.26 ratio
    return [outer(scaled(n), scaled(416)) for n in (768, 1024, 1536, 2048)]


def fig5_ts_sweep() -> list[Workload]:
    # paper: N x 2400 x 2400, N in [10000, 18000]
    return [ts_square(scaled(n), scaled(624)) for n in (2048, 2560, 3072)]


def fig7_outer_sweep() -> list[Workload]:
    # paper: N x 2800 x N
    return [outer(scaled(n), scaled(728)) for n in (1024, 1536, 2048)]


def fig7_ts_sweep() -> list[Workload]:
    # paper: N x 3000 x 3000
    return [ts_square(scaled(n), scaled(780)) for n in (2048, 3072, 4096)]
