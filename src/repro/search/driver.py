"""Multi-start search driver: find, discretize and serialize fast algorithms.

Usage (module CLI, used to (re)generate ``repro/algorithms/data/*.json``):

    python -m repro.search.driver --base 3 3 3 --rank 23 --starts 400 \
        --out src/repro/algorithms/data/s333.json

Every run is reproducible: start ``i`` of seed ``s`` always uses the same
child RNG stream.  The driver keeps the best (lowest-residual) solution
seen; if any start can be discretized to an exactly verifying solution it
stops early and stores that.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import tensor as tz
from repro.core.algorithm import EXACT_TOL
from repro.search.als import AlsOptions, AlsResult, als
from repro.search.sparsify import discretize, normalize_columns
from repro.util.rng import spawn_rngs


@dataclasses.dataclass
class SearchOutcome:
    """Best decomposition found for one (base case, rank) target."""

    m: int
    k: int
    n: int
    rank: int
    U: np.ndarray
    V: np.ndarray
    W: np.ndarray
    rel_residual: float
    exact: bool
    discrete: bool
    starts_used: int
    seed: int

    def to_dict(self) -> dict:
        return {
            "name": f"s{self.m}{self.k}{self.n}",
            "base_case": [self.m, self.k, self.n],
            "rank": self.rank,
            "apa": not self.exact,
            "rel_residual": self.rel_residual,
            "exact": self.exact,
            "discrete": self.discrete,
            "starts_used": self.starts_used,
            "seed": self.seed,
            "provenance": "repro.search.driver ALS multi-start",
            "U": self.U.tolist(),
            "V": self.V.tolist(),
            "W": self.W.tolist(),
        }


def search(
    m: int,
    k: int,
    n: int,
    rank: int,
    starts: int = 100,
    seed: int = 0,
    options: AlsOptions | None = None,
    accept_residual: float = 1e-8,
    verbose: bool = False,
    deadline_s: float | None = None,
) -> SearchOutcome | None:
    """Multi-start ALS for ``<m,k,n>`` at ``rank``.

    Returns the best outcome whose relative residual beats
    ``accept_residual`` (converged or discretized), else None.  APA targets
    (ranks below the tensor's exact rank) simply accept the lowest plateau.
    """
    T = tz.matmul_tensor(m, k, n)
    rngs = spawn_rngs(starts, seed)
    opts = options or AlsOptions()
    polish = AlsOptions(
        max_sweeps=1500, attract=False,
        reg_init=1e-6, reg_final=1e-13, stall_sweeps=500,
    )
    best: SearchOutcome | None = None
    t0 = time.time()
    for i, rng in enumerate(rngs):
        if deadline_s is not None and time.time() - t0 > deadline_s:
            break
        res: AlsResult = als(T, rank, rng=rng, options=opts)
        if res.rel_residual < 1e-2:
            # the attraction bias keeps a true basin at ~1e-3; release it
            res = als(T, rank, rng=rng, options=polish,
                      init=(res.U, res.V, res.W))
        if verbose:
            print(
                f"[{m}{k}{n} r{rank}] start {i}: rel={res.rel_residual:.3e} "
                f"sweeps={res.sweeps}",
                flush=True,
            )
        if best is None or res.rel_residual < best.rel_residual:
            best = SearchOutcome(
                m, k, n, rank, res.U, res.V, res.W,
                res.rel_residual, exact=False, discrete=False,
                starts_used=i + 1, seed=seed,
            )
        if res.rel_residual < accept_residual:
            trip = discretize(T, res.U, res.V, res.W)
            if trip is not None:
                Ud, Vd, Wd = trip
                rel = tz.residual(T, Ud, Vd, Wd) / float(np.linalg.norm(T.ravel()))
                return SearchOutcome(
                    m, k, n, rank, Ud, Vd, Wd, rel,
                    exact=rel <= EXACT_TOL, discrete=True,
                    starts_used=i + 1, seed=seed,
                )
            # converged but not discretizable: normalized float solution
            Un, Vn, Wn = normalize_columns(res.U, res.V, res.W)
            return SearchOutcome(
                m, k, n, rank, Un, Vn, Wn, res.rel_residual,
                exact=res.rel_residual * float(np.linalg.norm(T.ravel())) <= EXACT_TOL,
                discrete=False, starts_used=i + 1, seed=seed,
            )
    if best is not None:
        Un, Vn, Wn = normalize_columns(best.U, best.V, best.W)
        best = dataclasses.replace(best, U=Un, V=Vn, W=Wn)
    return best


def save_outcome(outcome: SearchOutcome, path: str | Path) -> None:
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(json.dumps(outcome.to_dict()))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--base", nargs=3, type=int, required=True, metavar=("M", "K", "N"))
    ap.add_argument("--rank", type=int, required=True)
    ap.add_argument("--starts", type=int, default=100)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--sweeps", type=int, default=2000)
    ap.add_argument("--accept", type=float, default=1e-8,
                    help="relative residual accepted (APA targets: plateau)")
    ap.add_argument("--deadline", type=float, default=None, help="seconds budget")
    ap.add_argument("--out", type=str, required=True)
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)

    m, k, n = args.base
    opts = AlsOptions(max_sweeps=args.sweeps)
    outcome = search(
        m, k, n, args.rank,
        starts=args.starts, seed=args.seed, options=opts,
        accept_residual=args.accept, verbose=not args.quiet,
        deadline_s=args.deadline,
    )
    if outcome is None:
        print("no solution found", file=sys.stderr)
        return 1
    save_outcome(outcome, args.out)
    print(
        f"saved {args.out}: rel_residual={outcome.rel_residual:.3e} "
        f"exact={outcome.exact} discrete={outcome.discrete} "
        f"starts_used={outcome.starts_used}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
