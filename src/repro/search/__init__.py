"""Numerical search for fast algorithms (paper Section 2.3).

``als`` implements regularized alternating least squares on the matmul
tensor; ``sparsify`` recovers exact discrete solutions via Prop.-2.3
transforms and rounding; ``driver`` is the seeded multi-start front end
that produced the coefficient files in ``repro/algorithms/data/``.
"""

from repro.search.als import AlsOptions, AlsResult, als
from repro.search.driver import SearchOutcome, search, save_outcome
from repro.search.sparsify import discretize, normalize_columns, round_to_grid

__all__ = [
    "AlsOptions",
    "AlsResult",
    "als",
    "SearchOutcome",
    "search",
    "save_outcome",
    "discretize",
    "normalize_columns",
    "round_to_grid",
]
