"""Alternating least squares search for fast algorithms (paper Section 2.3.2).

Given the exact matmul tensor ``T_{<M,K,N>}`` and a target rank R, we seek
factor matrices U, V, W with ``[[U,V,W]] ~= T``.  Each ALS sweep fixes two
factors and solves a linear least-squares problem for the third; following
Johnson & McLoughlin and Smirnov we add

- Tikhonov regularization (annealed towards zero) against the
  ill-conditioned subproblems the paper mentions,
- an optional *discreteness attraction* term that pulls entries toward a
  small grid (0, +-1/2, +-1, ...), Smirnov's Eq. (4-5) device for recovering
  exact rational solutions,
- periodic column rebalancing so no factor absorbs all the scale.

The driver (``repro.search.driver``) wraps this in a seeded multi-start
loop and hands near-converged solutions to ``repro.search.sparsify`` for
exact rounding.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core import tensor as tz
from repro.util.rng import default_rng


@dataclasses.dataclass
class AlsOptions:
    """Tuning knobs for one ALS run."""

    max_sweeps: int = 2000
    tol: float = 1e-12  # relative residual declared converged
    reg_init: float = 5e-2
    reg_final: float = 1e-9
    reg_decay: float = 0.985
    attract: bool = True  # Smirnov-style pull toward discrete entries
    attract_start: int = 200  # sweep at which attraction turns on
    attract_weight: float = 2e-3
    attract_grid: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0)
    stall_sweeps: int = 250  # stop if no meaningful progress for this long
    stall_rtol: float = 1e-4
    init_scale: float = 0.5


@dataclasses.dataclass
class AlsResult:
    U: np.ndarray
    V: np.ndarray
    W: np.ndarray
    rel_residual: float
    sweeps: int
    converged: bool


def _nearest_grid(X: np.ndarray, grid: tuple[float, ...]) -> np.ndarray:
    """Round each entry to the nearest signed grid value (grid lists magnitudes)."""
    vals = np.array(sorted({+g for g in grid} | {-g for g in grid}))
    idx = np.argmin(np.abs(X[..., None] - vals), axis=-1)
    return vals[idx]


def _solve_factor(
    unfolded: np.ndarray,
    A: np.ndarray,
    B: np.ndarray,
    reg: float,
    attract_weight: float,
    target: np.ndarray | None,
) -> np.ndarray:
    """Regularized LS update of one factor.

    ``unfolded`` is the tensor matricized along the factor's mode and
    ``A, B`` are the other two factors ordered to match
    ``khatri_rao(A, B)``.  Solves
    ``min ||unfolded - F @ KR(A,B)^T||^2 + reg ||F||^2 + aw ||F - target||^2``.
    """
    G = (A.T @ A) * (B.T @ B)
    rhs = unfolded @ tz.khatri_rao(A, B)
    mu = reg + attract_weight
    G = G + mu * np.eye(G.shape[0])
    if target is not None and attract_weight > 0.0:
        rhs = rhs + attract_weight * target
    # G is symmetric positive definite after regularization
    try:
        cf = np.linalg.cholesky(G)
        return np.linalg.solve(cf.T, np.linalg.solve(cf, rhs.T)).T
    except np.linalg.LinAlgError:
        return np.linalg.lstsq(G, rhs.T, rcond=None)[0].T


def _rebalance(U: np.ndarray, V: np.ndarray, W: np.ndarray) -> None:
    """Equalize per-column norms across the three factors (in place)."""
    nu = np.linalg.norm(U, axis=0)
    nv = np.linalg.norm(V, axis=0)
    nw = np.linalg.norm(W, axis=0)
    scale = np.cbrt(nu * nv * nw)
    # guard dead columns
    safe = lambda d: np.where(d > 1e-300, d, 1.0)  # noqa: E731
    U *= (scale / safe(nu))[None, :]
    V *= (scale / safe(nv))[None, :]
    W *= (scale / safe(nw))[None, :]


def als(
    T: np.ndarray,
    rank: int,
    rng: np.random.Generator | int | None = None,
    options: AlsOptions | None = None,
    init: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> AlsResult:
    """Run one ALS descent on tensor ``T`` at the given rank."""
    opt = options or AlsOptions()
    g = default_rng(rng)
    I, J, K = T.shape
    if init is not None:
        U, V, W = (np.array(x, dtype=float) for x in init)
    else:
        U = opt.init_scale * g.standard_normal((I, rank))
        V = opt.init_scale * g.standard_normal((J, rank))
        W = opt.init_scale * g.standard_normal((K, rank))

    T0 = tz.unfold(T, 0)
    T1 = tz.unfold(T, 1)
    T2 = tz.unfold(T, 2)
    normT = float(np.linalg.norm(T.ravel()))

    reg = opt.reg_init
    best = np.inf
    best_sweep = 0
    rel = np.inf
    sweep = 0
    for sweep in range(1, opt.max_sweeps + 1):
        aw = opt.attract_weight if (opt.attract and sweep >= opt.attract_start) else 0.0
        tU = _nearest_grid(U, opt.attract_grid) if aw else None
        U = _solve_factor(T0, V, W, reg, aw, tU)
        tV = _nearest_grid(V, opt.attract_grid) if aw else None
        V = _solve_factor(T1, U, W, reg, aw, tV)
        tW = _nearest_grid(W, opt.attract_grid) if aw else None
        W = _solve_factor(T2, U, V, reg, aw, tW)
        _rebalance(U, V, W)
        reg = max(opt.reg_final, reg * opt.reg_decay)

        rel = tz.residual(T, U, V, W) / normT
        if rel < opt.tol:
            return AlsResult(U, V, W, rel, sweep, True)
        if rel < best * (1.0 - opt.stall_rtol):
            best = rel
            best_sweep = sweep
        elif sweep - best_sweep > opt.stall_sweeps:
            break
    return AlsResult(U, V, W, rel, sweep, rel < opt.tol)
