"""Turning near-converged ALS factors into exact, sparse, discrete algorithms.

The paper (Section 2.3.2) reports that the most useful post-processing
steps are (1) the Prop. 2.3 equivalence transforms to encourage sparsity
and discrete values and (2) rounding/regularization.  We implement the
pipeline that worked for us:

1. *column normalization* -- use the diagonal-scaling freedom to make the
   largest-magnitude entry of each U and V column exactly +-1 (pushing the
   scale into W);
2. *grid rounding* -- snap all entries to a small rational grid;
3. *exact repair* -- if rounding two of the factors is correct, the third
   is the solution of a linear system; solve it exactly and round;
4. *verification* -- accept only decompositions whose residual against the
   exact matmul tensor is (numerically) zero.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core import tensor as tz
from repro.core.algorithm import EXACT_TOL, FastAlgorithm

DEFAULT_GRID = (0.0, 0.25, 1.0 / 3.0, 0.5, 2.0 / 3.0, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0)


def normalize_columns(
    U: np.ndarray, V: np.ndarray, W: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Scale each rank-1 term so max|u|, max|v| = 1 with positive leading sign.

    This is a Prop.-2.3 diagonal scaling (Dx Dy Dz = I), so exactness is
    untouched; it maps solutions that are "discrete up to scale" onto the
    grid so rounding can see them.
    """
    U, V, W = U.copy(), V.copy(), W.copy()
    for r in range(U.shape[1]):
        for F, G in ((U, W), (V, W)):
            j = int(np.argmax(np.abs(F[:, r])))
            s = F[j, r]
            if s == 0.0:
                continue
            F[:, r] /= s
            G[:, r] *= s
    return U, V, W


def round_to_grid(X: np.ndarray, grid=DEFAULT_GRID) -> np.ndarray:
    vals = np.array(sorted({g for g in grid} | {-g for g in grid}))
    idx = np.argmin(np.abs(X[..., None] - vals), axis=-1)
    return vals[idx]


def _solve_third(T: np.ndarray, mode: int, A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Exact LS solve for the remaining factor given the other two.

    ``mode`` identifies the factor being solved (0 -> U given (V,W), etc.);
    A, B are ordered to match :func:`repro.core.tensor.khatri_rao`'s pairing
    with :func:`repro.core.tensor.unfold`.
    """
    KR = tz.khatri_rao(A, B)
    return np.linalg.lstsq(KR, tz.unfold(T, mode).T, rcond=None)[0].T


def discretize(
    T: np.ndarray,
    U: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
    grid=DEFAULT_GRID,
    tol: float = EXACT_TOL,
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Attempt to convert near-exact factors into an exactly verifying triple.

    Tries direct rounding first, then each "round two factors, solve the
    third, round it" repair.  Returns the exact triple or None.
    """
    U, V, W = normalize_columns(U, V, W)
    Ur, Vr, Wr = (round_to_grid(X, grid) for X in (U, V, W))
    if tz.residual(T, Ur, Vr, Wr) <= tol:
        return Ur, Vr, Wr

    candidates = [
        (0, (Vr, Wr), lambda F: (round_to_grid(F, grid), Vr, Wr)),
        (1, (Ur, Wr), lambda F: (Ur, round_to_grid(F, grid), Wr)),
        (2, (Ur, Vr), lambda F: (Ur, Vr, round_to_grid(F, grid))),
    ]
    for mode, (A, B), pack in candidates:
        F = _solve_third(T, mode, A, B)
        trip = pack(F)
        if tz.residual(T, *trip) <= tol:
            return trip
        # also accept the un-rounded exact solve if it verifies (rational
        # entries outside the grid)
        exact_trip = {0: (F, Vr, Wr), 1: (Ur, F, Wr), 2: (Ur, Vr, F)}[mode]
        if tz.residual(T, *exact_trip) <= tol:
            return exact_trip
    return None


def sign_sweep(
    T: np.ndarray,
    U: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
    tol: float = EXACT_TOL,
    max_terms: int = 12,
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Last-resort repair: flip signs of (u_r, v_r) pairs (a Prop.-2.3
    scaling with Dx = Dy = -1, Dz = 1 on one column) looking for an exact
    match after rounding.  Only used for small ranks."""
    R = U.shape[1]
    if R > max_terms:
        return None
    for signs in itertools.product((1.0, -1.0), repeat=R):
        s = np.array(signs)
        trip = (U * s, V * s, W)
        if tz.residual(T, *trip) <= tol:
            return trip
    return None


def to_algorithm(
    m: int,
    k: int,
    n: int,
    U: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
    name: str,
    tol: float = EXACT_TOL,
) -> FastAlgorithm:
    """Wrap verified factors; marks the algorithm APA when not exact."""
    alg = FastAlgorithm(m, k, n, U, V, W, name=name)
    if not alg.check_exact(tol):
        alg = FastAlgorithm(m, k, n, U, V, W, name=name, apa=True)
    return alg
