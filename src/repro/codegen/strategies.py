"""Lowering addition chains to numpy code for the three strategies (Sec 3.2).

The paper's three matrix-addition variants map onto numpy as follows (the
absolute constants differ from hand-written C, but the traffic ordering the
paper analyzes is preserved -- see EXPERIMENTS.md):

- ``pairwise``   -- one binary operation per chain term, each producing a
  fresh array (the daxpy-per-pair evaluation: ~2 reads + 1 write per term,
  plus allocation overhead).
- ``write_once`` -- a preallocated destination updated in place: one output
  buffer per chain, every source read once, no intermediate allocations.
- ``streaming``  -- the whole side at once: stack the input's blocks (one
  read of A resp. B), then form *all* temporaries in a single BLAS pass;
  needs R-times temporary memory, exactly the trade-off of Section 3.2.

Chain emission returns plain source lines; the generator assembles them
into a module.
"""

from __future__ import annotations

from repro.codegen.chains import Chain, Term

STRATEGIES = ("pairwise", "write_once", "streaming")


def _c(x: float) -> str:
    """Literal for a coefficient with full double precision."""
    return repr(float(x))


def emit_pairwise(chain: Chain, out_shape: str | None = None,
                  into_view: str | None = None) -> list[str]:
    """Pairwise lowering; ``into_view`` writes the final value into an
    existing view (used for C blocks) after accumulating in a temporary."""
    t0 = chain.terms[0]
    name = chain.target if into_view is None else f"_t{chain.target}"
    lines = []
    if len(chain.terms) == 1 and into_view is not None:
        if t0.coeff == 1.0:
            lines.append(f"{into_view}[:] = {t0.source}")
        else:
            lines.append(f"np.multiply({t0.source}, {_c(t0.coeff)}, out={into_view})")
        return lines
    if t0.coeff == 1.0:
        first = f"{t0.source}.copy()" if len(chain.terms) > 1 else t0.source
    elif t0.coeff == -1.0:
        first = f"-{t0.source}"
    else:
        first = f"{_c(t0.coeff)} * {t0.source}"
    lines.append(f"{name} = {first}")
    for t in chain.terms[1:]:
        if t.coeff == 1.0:
            lines.append(f"{name} = {name} + {t.source}")
        elif t.coeff == -1.0:
            lines.append(f"{name} = {name} - {t.source}")
        else:
            lines.append(f"{name} = {name} + {_c(t.coeff)} * {t.source}")
    if into_view is not None:
        lines.append(f"{into_view}[:] = {name}")
    return lines


def emit_write_once(chain: Chain, out_shape: str,
                    into_view: str | None = None) -> list[str]:
    """Write-once lowering: preallocated destination, in-place updates."""
    t0 = chain.terms[0]
    lines = []
    if into_view is not None:
        name = into_view
    else:
        name = chain.target
        if len(chain.terms) == 1 and t0.coeff == 1.0:
            return [f"{name} = {t0.source}"]  # pure alias, no traffic
        lines.append(f"{name} = np.empty({out_shape}, _dt)")
    if t0.coeff == 1.0:
        lines.append(f"np.copyto({name}, {t0.source})")
    elif t0.coeff == -1.0:
        lines.append(f"np.negative({t0.source}, out={name})")
    else:
        lines.append(f"np.multiply({t0.source}, {_c(t0.coeff)}, out={name})")
    for t in chain.terms[1:]:
        if t.coeff == 1.0:
            lines.append(f"np.add({name}, {t.source}, out={name})")
        elif t.coeff == -1.0:
            lines.append(f"np.subtract({name}, {t.source}, out={name})")
        else:
            lines.append(f"runtime.axpy({name}, {t.source}, {_c(t.coeff)})")
    return lines


def emit_chain(chain: Chain, strategy: str, out_shape: str,
               into_view: str | None = None) -> list[str]:
    if strategy == "pairwise":
        return emit_pairwise(chain, out_shape, into_view)
    if strategy == "write_once":
        return emit_write_once(chain, out_shape, into_view)
    raise ValueError(
        f"emit_chain handles pairwise/write_once, not {strategy!r} "
        "(streaming is lowered to runtime.streaming_* calls)"
    )
