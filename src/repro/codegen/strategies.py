"""Lowering addition chains to numpy code for the three strategies (Sec 3.2).

The paper's three matrix-addition variants map onto numpy as follows (the
absolute constants differ from hand-written C, but the traffic ordering the
paper analyzes is preserved -- see EXPERIMENTS.md):

- ``pairwise``   -- one binary operation per chain term, each producing a
  fresh array (the daxpy-per-pair evaluation: ~2 reads + 1 write per term,
  plus allocation overhead).
- ``write_once`` -- a preallocated destination updated in place: one output
  buffer per chain, every source read once, no intermediate allocations.
- ``streaming``  -- the whole side at once: stack the input's blocks (one
  read of A resp. B), then form *all* temporaries in a single BLAS pass;
  needs R-times temporary memory, exactly the trade-off of Section 3.2.

Chain emission returns plain source lines; the generator assembles them
into a module.

With ``arena=True`` a chain is lowered against a workspace arena instead of
the heap: destinations come from ``ws.take`` views, general coefficients run
through ``runtime.axpy`` with the level's ``_scr`` scratch buffer, and pure
aliases stay zero-traffic views.  Under an arena the pairwise/write_once
distinction collapses -- pairwise's defining property is one fresh array
per binary operation, which is exactly the allocator traffic the arena
exists to eliminate -- so both lower to the in-place write-once form (the
value sequence is unchanged: ``a + b`` and ``np.add(a, b, out=view)``
produce identical bits, so arena-backed results still match the allocating
lowering bit for bit).
"""

from __future__ import annotations

from repro.codegen.chains import Chain

STRATEGIES = ("pairwise", "write_once", "streaming")

#: The statement vocabulary each strategy is allowed to emit.  The symbolic
#: verifier (``repro.analyze.symbolic``) interprets exactly these forms; any
#: new emission shape must be added here *and* taught to the interpreter, so
#: a drift between generator and verifier fails loudly instead of silently
#: skipping statements.
EMISSION_CONTRACT = {
    "pairwise": (
        "copy", "unary_neg", "scale", "binop_add", "binop_sub",
        "alias", "view_store",
    ),
    "write_once": (
        "np.empty", "ws.take", "np.copyto", "np.negative", "np.multiply",
        "np.add", "np.subtract", "runtime.axpy", "alias", "view_store",
    ),
    "streaming": (
        "np.empty", "ws.take", "runtime.streaming_combine",
        "runtime.streaming_output", "runtime.streaming_output_stacked",
    ),
    # Not a Python lowering strategy: the statement forms the C chain
    # emitter (``repro.codegen.cbackend``) may produce inside its fused
    # form_S/form_T/form_C kernels.  The C-side verifier
    # (``repro.analyze.cemit``) parses exactly these shapes back into
    # coefficient tables, so emitter drift fails the same way Python-side
    # drift does.
    "cbackend": (
        "block_ptr", "slab_ptr", "product_ptr", "scratch_ptr",
        "output_ptr", "fused_store",
    ),
}


def _c(x: float) -> str:
    """Literal for a coefficient with full double precision."""
    return repr(float(x))


def emit_pairwise(chain: Chain, out_shape: str | None = None,
                  into_view: str | None = None) -> list[str]:
    """Pairwise lowering; ``into_view`` writes the final value into an
    existing view (used for C blocks) after accumulating in a temporary."""
    t0 = chain.terms[0]
    name = chain.target if into_view is None else f"_t{chain.target}"
    lines = []
    if len(chain.terms) == 1 and into_view is not None:
        if t0.coeff == 1.0:
            lines.append(f"{into_view}[:] = {t0.source}")
        else:
            lines.append(f"np.multiply({t0.source}, {_c(t0.coeff)}, out={into_view})")
        return lines
    if t0.coeff == 1.0:
        first = f"{t0.source}.copy()" if len(chain.terms) > 1 else t0.source
    elif t0.coeff == -1.0:
        first = f"-{t0.source}"
    else:
        first = f"{_c(t0.coeff)} * {t0.source}"
    lines.append(f"{name} = {first}")
    for t in chain.terms[1:]:
        if t.coeff == 1.0:
            lines.append(f"{name} = {name} + {t.source}")
        elif t.coeff == -1.0:
            lines.append(f"{name} = {name} - {t.source}")
        else:
            lines.append(f"{name} = {name} + {_c(t.coeff)} * {t.source}")
    if into_view is not None:
        lines.append(f"{into_view}[:] = {name}")
    return lines


def emit_write_once(chain: Chain, out_shape: str,
                    into_view: str | None = None,
                    arena: bool = False,
                    dtype_expr: str = "_dt") -> list[str]:
    """Write-once lowering: preallocated destination, in-place updates.

    With ``arena=True`` the destination is an arena view (``ws.take``) and
    general-coefficient updates pass the level scratch buffer ``_scr`` to
    ``runtime.axpy`` so no hidden temporary is formed.  ``dtype_expr``
    names the destination dtype: ``_dt`` (the result dtype) for write_once
    -- matching its allocating ``np.empty(..., _dt)`` -- but the *operand*
    dtype for arena-lowered pairwise, whose allocating form derives chain
    dtypes from the blocks themselves (``A0 + A3``), so mixed-dtype inputs
    stay bit-for-bit identical between the two paths.
    """
    t0 = chain.terms[0]
    lines = []
    if into_view is not None:
        name = into_view
    else:
        name = chain.target
        if len(chain.terms) == 1 and t0.coeff == 1.0:
            return [f"{name} = {t0.source}"]  # pure alias, no traffic
        if arena:
            lines.append(f"{name} = ws.take({out_shape}, {dtype_expr})")
        else:
            lines.append(f"{name} = np.empty({out_shape}, _dt)")
    if t0.coeff == 1.0:
        lines.append(f"np.copyto({name}, {t0.source})")
    elif t0.coeff == -1.0:
        lines.append(f"np.negative({t0.source}, out={name})")
    else:
        lines.append(f"np.multiply({t0.source}, {_c(t0.coeff)}, out={name})")
    scr = ", _scr" if arena else ""
    for t in chain.terms[1:]:
        if t.coeff == 1.0:
            lines.append(f"np.add({name}, {t.source}, out={name})")
        elif t.coeff == -1.0:
            lines.append(f"np.subtract({name}, {t.source}, out={name})")
        else:
            lines.append(f"runtime.axpy({name}, {t.source}, {_c(t.coeff)}{scr})")
    return lines


def needs_axpy_scratch(chains: list[Chain]) -> bool:
    """Whether arena lowering of ``chains`` ever calls ``runtime.axpy`` with
    a general coefficient (any term beyond a chain's first outside
    {1, -1}) -- exactly those calls draw on the level scratch buffer."""
    return any(t.coeff not in (1.0, -1.0)
               for ch in chains for t in ch.terms[1:])


def emit_chain(chain: Chain, strategy: str, out_shape: str,
               into_view: str | None = None, arena: bool = False,
               dtype_expr: str = "_dt") -> list[str]:
    if arena:
        # both non-streaming strategies lower to arena-backed write-once
        # form (see module docstring); streaming lowers to runtime calls
        if strategy in ("pairwise", "write_once"):
            return emit_write_once(chain, out_shape, into_view, arena=True,
                                   dtype_expr=dtype_expr)
    elif strategy == "pairwise":
        return emit_pairwise(chain, out_shape, into_view)
    elif strategy == "write_once":
        return emit_write_once(chain, out_shape, into_view)
    raise ValueError(
        f"emit_chain handles pairwise/write_once, not {strategy!r} "
        "(streaming is lowered to runtime.streaming_* calls)"
    )
