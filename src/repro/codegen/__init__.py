"""Code generation: [[U,V,W]] -> specialized Python multiply routines.

Mirrors the paper's Section 3: ``chains`` extracts the addition-chain IR,
``cse`` optionally eliminates repeated length-2 subexpressions,
``strategies`` lowers chains per addition variant, ``generator`` assembles
and compiles the module, ``runtime`` hosts the helpers generated code calls.
"""

from repro.codegen.chains import Chain, ChainProgram, Term, extract_chains
from repro.codegen.cse import CseResult, eliminate, table3_row
from repro.codegen.generator import (
    compile_algorithm,
    generate_source,
    write_source,
)
from repro.codegen.strategies import STRATEGIES

__all__ = [
    "Chain",
    "ChainProgram",
    "Term",
    "extract_chains",
    "CseResult",
    "eliminate",
    "table3_row",
    "compile_algorithm",
    "generate_source",
    "write_source",
    "STRATEGIES",
]
