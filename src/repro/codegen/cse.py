"""Greedy length-2 common-subexpression elimination (paper Section 3.3).

``T11 = B24 - B12 - B22`` and ``T25 = B23 + B12 + B22`` share the
subexpression ``B12 + B22`` up to scalar multiple; extracting
``Y = B12 + B22`` saves one addition per occurrence at the cost of one
addition to form Y.  We canonicalize every unordered pair of sources in a
chain by the ratio of their coefficients, count occurrences across all
chains, and repeatedly extract the most frequent pair (ties broken
deterministically), exactly the greedy scheme behind the paper's Table 3.

Eliminating a subexpression used k times saves k-1 additions but, under
write-once lowering, only *reduces memory traffic* when k >= 4
(Section 3.3's read/write counting) -- which is why the benchmarks can show
CSE hurting the write-once variant while shrinking the flop count.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict

from repro.codegen.chains import Chain, Term

_RATIO_DECIMALS = 12


@dataclasses.dataclass
class CseResult:
    chains: list[Chain]  # rewritten chains (same order/targets as input)
    definitions: list[Chain]  # Y-temporary definitions, in creation order
    subexpressions_eliminated: int
    additions_saved: int
    original_additions: int

    @property
    def final_additions(self) -> int:
        return self.original_additions - self.additions_saved


def _pair_key(t1: Term, t2: Term) -> tuple:
    """Canonical key for a pair, invariant under overall scaling.

    The pair ``c1*s1 + c2*s2`` (sources ordered) is characterized by the
    ratio ``c2/c1``; any chain containing ``d*s1 + d*(c2/c1)*s2`` matches.
    """
    if t1.source > t2.source:
        t1, t2 = t2, t1
    return (t1.source, t2.source, round(t2.coeff / t1.coeff, _RATIO_DECIMALS))


def _count_pairs(chains: list[Chain]) -> dict[tuple, int]:
    counts: dict[tuple, int] = defaultdict(int)
    for ch in chains:
        ts = ch.terms
        for a in range(len(ts)):
            for b in range(a + 1, len(ts)):
                counts[_pair_key(ts[a], ts[b])] += 1
    return counts


def eliminate(chains: list[Chain], min_occurrences: int = 2,
              temp_prefix: str = "Y") -> CseResult:
    """Run greedy CSE over ``chains`` until no pair repeats.

    Returns rewritten chains plus the temporary definitions; temporaries can
    themselves participate in later eliminations (nested reuse).
    """
    work = [Chain(c.target, list(c.terms)) for c in chains]
    definitions: list[Chain] = []
    original = sum(c.additions for c in work)
    eliminated = 0
    saved = 0

    while True:
        counts = _count_pairs(work)
        best_key, best_count = None, min_occurrences - 1
        for key in sorted(counts):  # deterministic tie-break
            if counts[key] > best_count:
                best_key, best_count = key, counts[key]
        if best_key is None:
            break

        s1, s2, ratio = best_key
        temp = f"{temp_prefix}{len(definitions)}"
        definitions.append(Chain(temp, [Term(1.0, s1), Term(ratio, s2)]))
        eliminated += 1
        saved += best_count - 1  # each use saves one add, forming Y costs one

        for ch in work:
            idx = {t.source: i for i, t in enumerate(ch.terms)}
            if s1 in idx and s2 in idx:
                t1, t2 = ch.terms[idx[s1]], ch.terms[idx[s2]]
                if round(t2.coeff / t1.coeff, _RATIO_DECIMALS) == ratio:
                    keep = [t for t in ch.terms if t.source not in (s1, s2)]
                    keep.append(Term(t1.coeff, temp))
                    ch.terms = keep

    return CseResult(
        chains=work,
        definitions=definitions,
        subexpressions_eliminated=eliminated,
        additions_saved=saved,
        original_additions=original,
    )


def table3_row(s_chains: list[Chain], t_chains: list[Chain]) -> dict:
    """Reproduce one row of the paper's Table 3 for the S/T formation of an
    algorithm: original additions, post-CSE additions, subexpressions
    eliminated, additions saved."""
    res = eliminate(s_chains + t_chains)
    return {
        "original": res.original_additions,
        "cse": res.final_additions,
        "subexpressions_eliminated": res.subexpressions_eliminated,
        "additions_saved": res.additions_saved,
    }
