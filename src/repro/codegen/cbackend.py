"""Native (C) backend for the addition chains — the paper's actual codegen.

The paper's generator emits C++ so that each ``S_r``/``T_r``/``C_ij``
linear combination becomes one fused loop: every operand is read once and
the destination written once per pass, with no interpreter or temporary-
array overhead.  The Python strategies in :mod:`repro.codegen.strategies`
approximate that with NumPy ufuncs (one in-place pass *per operand pair*
for ``write_once``).  This module closes the gap: it emits real C for the
chains of one algorithm, compiles it with the system C compiler, and
drives it through ``ctypes`` — producing the genuine single-pass kernels
the paper measures, while recursion, dynamic peeling and the leaf dgemm
stay in Python/BLAS exactly as before.

Generated interface per algorithm (one shared object each)::

    void form_S(const double *A, long lda, long bp, long bq, double *S);
    void form_T(const double *B, long ldb, long bp, long bq, double *T);
    void form_C(const double **M, long bp, long bq,
                double *C, long ldc, double *Y);

``form_S``/``form_T`` read the m·k (k·n) sub-blocks of the parent operand
in place (row stride ``lda``, in elements) and write CSE definitions plus
all non-alias chains into a contiguous slab; alias chains (single-nonzero
columns after scalar piping) are zero-traffic views handled on the Python
side, mirroring the paper's "no temporary is formed" rule.  ``form_C``
assembles the output blocks from an array of product-row pointers in one
fused pass per block; ``Y`` is caller-provided scratch for C-side CSE
definitions (NULL when there are none).

Shared objects are cached on disk under ``$REPRO_CACHE_DIR/cbackend``
(default ``~/.cache/repro/cbackend``), keyed by (source, compiler, flags,
machine fingerprint) so a ``.so`` built with a different ``REPRO_CC``, a
different flag set, or on another machine (``-march=native``!) is never
reused.  Objects are compiled to a temporary name and ``os.replace``d
into place, so a concurrent process can never ``CDLL`` a half-written
file; when the cache dir is unwritable the backend degrades to
compile-per-process in a private temp dir (mirroring ``PlanCache``'s
in-memory degradation).

Use :func:`available` to test for a working compiler,
:func:`compile_chains` for a :class:`CompiledChains`, and
:func:`multiply` for the one-call API.  Everything degrades loudly
(``RuntimeError``), never silently, when no compiler exists; dispatch
(:func:`repro.tuner.dispatch.execute_plan`) catches that and falls back
to the NumPy-source modules so a ``backend="compiled"`` plan never fails
a multiply.

The kernels are float64-only; the driver computes in double and returns
``np.result_type(A, B)`` (float32 in -> float32 out, rounded once on
exit).  Result dtypes double cannot represent by kind -- complex,
extended-precision floats -- are rejected with ``ValueError`` and belong
on the python codegen or interpreter paths.  :meth:`CompiledChains.multiply`
accepts ``out=``/``workspace=`` like the generated NumPy modules: with a
workspace sized by :func:`repro.core.workspace.cbackend_footprint` the
warm path draws every slab, product buffer and peel temporary from the
arena and allocates nothing from the heap.
"""

from __future__ import annotations

import ctypes
import functools
import hashlib
import os
import subprocess
import tempfile
import threading
import warnings
from pathlib import Path

import numpy as np

from repro.codegen import cse as cse_mod
from repro.codegen.chains import Chain, extract_chains
from repro.core.algorithm import FastAlgorithm
from repro.core.stability import stability_factors
from repro.obs import telemetry
from repro.util.matrices import peel_split
from repro.util.validation import check_matmul_dims

_CC = os.environ.get("REPRO_CC", "cc")
_CFLAGS = ["-O3", "-march=native", "-std=c99", "-fPIC", "-shared"]
_DPTR = ctypes.POINTER(ctypes.c_double)

#: loaded shared objects keyed by :func:`_source_key`; guarded by
#: ``_lib_lock`` (registered in the concurrency shared-state registry) --
#: concurrent first-compiles of one algorithm must converge on one handle
_lib_lock = threading.Lock()
_LIB_CACHE: dict[str, ctypes.CDLL] = {}

#: resolved on-disk cache directory: ``False`` until first resolution,
#: then a ``Path`` or ``None`` (= unwritable, compile-per-process);
#: ``warned`` makes the degradation warning fire once per process.
#: Guarded by ``_lib_lock`` like the library cache itself.
_CACHE_STATE: dict[str, object] = {"dir": False, "warned": False}


@functools.lru_cache(maxsize=1)
def available() -> bool:
    """True when a C compiler is present and produces loadable objects."""
    try:
        # the probe must never consume an injected cbackend.compilefail
        # firing (and a transient fault must not poison this lru cache)
        _compile_source("void repro_probe(void) {}\n", fire_faults=False)
        return True
    except (OSError, RuntimeError, subprocess.SubprocessError):
        return False


# ======================================================================
# chain preparation (shared by the emitter and the ctypes driver)
# ======================================================================
def _prepare(algorithm: FastAlgorithm, cse: bool):
    """Extract chains, apply CSE, and fix the slab layouts.

    Returns ``(s, t, c)`` where each side is a dict with ``chains``,
    ``defs`` and — for s/t — ``layout``: per rank column either
    ``("alias", block_index)`` or ``("slot", slab_row)``; definitions
    occupy the leading slab rows in their creation order, which is also
    emission order (``eliminate`` only creates a definition before its
    first use, so dependencies always point backwards).
    """
    prog = extract_chains(algorithm, pipe_scalars=True)
    sides = {}
    for key, chains, prefix in (
        ("s", prog.s_chains, "YA"),
        ("t", prog.t_chains, "YB"),
        ("c", prog.c_chains, "YM"),
    ):
        defs: list[Chain] = []
        if cse:
            res = cse_mod.eliminate(chains, temp_prefix=prefix)
            chains, defs = res.chains, res.definitions
        layout = []
        slot = len(defs)
        for ch in chains:
            # input-block aliases are zero-traffic views; a chain CSE has
            # rewritten to a bare Y reference still needs materializing
            if (ch.is_alias() and key != "c"
                    and not ch.terms[0].source.startswith("Y")):
                layout.append(("alias", int(ch.terms[0].source[1:])))
            else:
                layout.append(("slot", slot))
                slot += 1
        sides[key] = {"chains": chains, "defs": defs,
                      "layout": layout, "slots": slot}
    return sides["s"], sides["t"], sides["c"]


# ======================================================================
# C source emission
# ======================================================================
def _coeff_term(coeff: float, expr: str) -> str:
    if coeff == 1.0:
        return f"+ {expr}"
    if coeff == -1.0:
        return f"- {expr}"
    return f"+ {coeff!r} * {expr}"


def _rhs(terms) -> str:
    parts = [_coeff_term(t.coeff, f"p{t.source}[j]") for t in terms]
    joined = " ".join(parts)
    return joined[2:] if joined.startswith("+ ") else joined


def _referenced_sources(chains: list[Chain]) -> list[str]:
    seen: list[str] = []
    for ch in chains:
        for t in ch.terms:
            if t.source not in seen:
                seen.append(t.source)
    return seen


def _emit_side(fn: str, side: dict, blocks_cols: int, prefix: str) -> list[str]:
    """Emit ``form_S``/``form_T``: one fused j-loop per definition/chain."""
    defs, chains, layout = side["defs"], side["chains"], side["layout"]
    body = list(defs) + [
        ch for ch, lay in zip(chains, layout) if lay[0] == "slot"
    ]
    slot_of = {ch.target: lay[1]
               for ch, lay in zip(chains, layout) if lay[0] == "slot"}
    for i, d in enumerate(defs):
        slot_of[d.target] = i

    lines = [
        f"void {fn}(const double *X, long ldx, long bp, long bq, double *S)",
        "{",
        "  const size_t blk = (size_t)bp * (size_t)bq;",
        "  for (long i = 0; i < bp; ++i) {",
    ]
    for s in _referenced_sources(body):
        if s.startswith(prefix):
            b = int(s[len(prefix):])
            br, bc = divmod(b, blocks_cols)
            lines.append(
                f"    const double *p{s} = X + ((size_t)({br}*bp + i))*ldx"
                f" + (size_t)({bc})*bq;"
            )
        # Y sources resolve to slab pointers declared below
    for ch in body:
        lines.append(
            f"    double *p{ch.target} = S + {slot_of[ch.target]}*blk"
            f" + (size_t)i*bq;"
        )
    for ch in body:
        lines.append("    for (long j = 0; j < bq; ++j)")
        lines.append(f"      p{ch.target}[j] = {_rhs(ch.terms)};")
    lines += ["  }", "}"]
    return lines


def _emit_output(side: dict, m: int, n: int) -> list[str]:
    """Emit ``form_C``; products come in as row-pointer array ``M``."""
    defs, chains = side["defs"], side["chains"]
    lines = [
        "void form_C(const double **M, long bp, long bq,"
        " double *C, long ldc, double *Y)",
        "{",
        "  (void)Y;" if not defs else "",
        "  for (long i = 0; i < bp; ++i) {",
    ]
    body = list(defs) + list(chains)
    for s in _referenced_sources(body):
        if s.startswith("M"):
            lines.append(
                f"    const double *p{s} = M[{int(s[1:])}] + (size_t)i*bq;"
            )
    for d_i, d in enumerate(defs):
        lines.append(f"    double *p{d.target} = Y + {d_i}*bq;")
    for ch in chains:
        idx = int(ch.target[1:])
        bi, bj = divmod(idx, n)
        lines.append(
            f"    double *p{ch.target} = C + ((size_t)({bi}*bp + i))*ldc"
            f" + (size_t)({bj})*bq;"
        )
    for ch in body:
        lines.append("    for (long j = 0; j < bq; ++j)")
        lines.append(f"      p{ch.target}[j] = {_rhs(ch.terms)};")
    lines += ["  }", "}"]
    return [ln for ln in lines if ln != ""]


def generate_c_source(algorithm: FastAlgorithm, cse: bool = False) -> str:
    """Return the complete C translation unit for ``algorithm``'s chains."""
    s, t, c = _prepare(algorithm, cse)
    m, k, n = algorithm.base_case
    lines = [
        "/* Auto-generated by repro.codegen.cbackend; do not edit.",
        f" * algorithm {algorithm.name} <{m},{k},{n}> rank {algorithm.rank},"
        f" cse={cse}",
        f" * slab rows: S={s['slots']} T={t['slots']}"
        f" (defs first: {len(s['defs'])}/{len(t['defs'])}),"
        f" C scratch rows: {len(c['defs'])}",
        " */",
        "#include <stddef.h>",
        "",
    ]
    lines += _emit_side("form_S", s, k, "A")
    lines.append("")
    lines += _emit_side("form_T", t, n, "B")
    lines.append("")
    lines += _emit_output(c, m, n)
    lines.append("")
    return "\n".join(lines)


# ======================================================================
# compilation and the ctypes driver
# ======================================================================
def _source_key(src: str) -> str:
    """Cache key for one translation unit: source alone is NOT enough.

    ``-march=native`` objects are machine-specific, and a ``REPRO_CC`` or
    flag change produces different code from identical source — so the
    key digests (source, compiler, flags, machine fingerprint) together.
    """
    from repro.bench.machine import fingerprint_digest

    blob = "\x00".join([src, _CC, " ".join(_CFLAGS), fingerprint_digest()])
    return hashlib.sha1(blob.encode()).hexdigest()


def _cache_dir_locked() -> Path | None:
    """Resolve the on-disk ``.so`` cache dir (caller holds ``_lib_lock``).

    Per-user, never world-shared: ``$REPRO_CACHE_DIR/cbackend`` when set,
    else ``$XDG_CACHE_HOME``/``~/.cache`` + ``repro/cbackend``.  Returns
    ``None`` when the directory cannot be created or written — callers
    then compile into a private per-process temp dir, so a read-only home
    (or a hostile shared mount) costs persistence, never correctness.
    """
    cur = _CACHE_STATE["dir"]
    if cur is not False:
        return cur
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        root = Path(env).expanduser() / "cbackend"
    else:
        base = os.environ.get("XDG_CACHE_HOME")
        home = Path(base).expanduser() if base else Path.home() / ".cache"
        root = home / "repro" / "cbackend"
    try:
        root.mkdir(parents=True, exist_ok=True)
        probe = root / f".write-probe-{os.getpid()}"
        probe.write_bytes(b"")
        probe.unlink()
    except OSError:
        _CACHE_STATE["dir"] = None
        if not _CACHE_STATE["warned"]:
            _CACHE_STATE["warned"] = True
            warnings.warn(
                f"cbackend cache dir {root} is not writable; compiled "
                f"objects will not persist across processes",
                RuntimeWarning, stacklevel=3,
            )
        return None
    _CACHE_STATE["dir"] = root
    return root


def _build_so(src: str, key: str, cache_dir: Path) -> Path:
    """Compile ``src`` into ``cache_dir/chains-<key>.so`` atomically.

    The compiler writes a (pid, thread)-suffixed temp name which is
    ``os.replace``d into place only on success, so another process (or
    thread -- same pid!) racing ``CDLL`` on the final name can never map
    a half-written object; racing builders each own a distinct temp and
    the last replace wins with identical content.
    """
    so = cache_dir / f"chains-{key}.so"
    uniq = f"{os.getpid()}-{threading.get_ident()}"
    tmp = cache_dir / f"chains-{key}.{uniq}.tmp.so"
    cpath = cache_dir / f"chains-{key}.{uniq}.tmp.c"
    cpath.write_text(src)
    try:
        with telemetry.span("cbackend.compile"):
            proc = subprocess.run(
                [_CC, *_CFLAGS, "-o", str(tmp), str(cpath)],
                capture_output=True, text=True,
            )
        telemetry.incr("cbackend.compiles")
        if proc.returncode != 0:
            raise RuntimeError(
                f"C compilation failed ({_CC}):\n{proc.stderr[:2000]}"
            )
        os.replace(tmp, so)
        # keep the source next to the object for debugging (same-dir
        # rename: atomic, and a loser of the race just overwrites with
        # identical content)
        os.replace(cpath, cache_dir / f"chains-{key}.c")
    finally:
        for leftover in (tmp, cpath):
            try:
                leftover.unlink()
            except OSError:
                pass
    return so


def _compile_source(src: str, fire_faults: bool = True) -> ctypes.CDLL:
    key = _source_key(src)
    with _lib_lock:
        lib = _LIB_CACHE.get(key)
        if lib is not None:
            return lib
        cache_dir = _cache_dir_locked()
    if fire_faults:
        from repro.guard import faults

        if faults.active and faults.should_fire("cbackend.compilefail"):
            raise faults.InjectedFault("injected fault: cbackend.compilefail")
    if cache_dir is None:
        # degraded mode: private per-process build dir, nothing persists
        workdir = Path(tempfile.mkdtemp(prefix="repro-cbackend-"))
        so = _build_so(src, key, workdir)
    else:
        so = cache_dir / f"chains-{key}.so"
        if not so.exists():
            _build_so(src, key, cache_dir)
    with telemetry.span("cbackend.load"):
        lib = ctypes.CDLL(str(so))
    with _lib_lock:
        # a concurrent compile of the same key may have won: converge on
        # one handle so `_compile_source(src) is _compile_source(src)`
        return _LIB_CACHE.setdefault(key, lib)


def _take(ws, shape) -> np.ndarray:
    """A float64 buffer from the arena (heap when no workspace given)."""
    if ws is None:
        return np.empty(shape, dtype=np.float64)
    return ws.take(shape, np.float64)


def _as_contiguous(X: np.ndarray, ws) -> np.ndarray:
    """Contiguous float64 view/copy of ``X``, arena-backed when possible."""
    if X.dtype == np.float64 and X.flags.c_contiguous:
        return X
    if ws is None:
        return np.ascontiguousarray(X, dtype=np.float64)
    buf = ws.take(X.shape, np.float64)
    np.copyto(buf, X)
    return buf


class CompiledChains:
    """Compiled chain kernels for one algorithm (+ a multiply driver).

    The driver mirrors :func:`repro.core.recursion.multiply` — dynamic
    peeling, leaf dgemm — but forms every S/T/C linear combination with
    the fused single-pass C kernels.
    """

    def __init__(self, algorithm: FastAlgorithm, cse: bool = False):
        self.algorithm = algorithm
        self.cse = cse
        self._s, self._t, self._c = _prepare(algorithm, cse)
        self.source = generate_c_source(algorithm, cse=cse)
        self.lib = _compile_source(self.source)
        for fn in ("form_S", "form_T", "form_C"):
            getattr(self.lib, fn).restype = None

    # ------------------------------------------------------------- driver
    def multiply(
        self,
        A: np.ndarray,
        B: np.ndarray,
        steps: int = 1,
        out: np.ndarray | None = None,
        workspace=None,
    ) -> np.ndarray:
        """``A @ B`` with ``steps`` recursion levels of the algorithm.

        The compiled kernels are float64-only, so the driver computes in
        double and returns ``np.result_type(A, B)`` -- float32 in, float32
        out (rounded once at the end), never a silent upcast.  Result
        dtypes double cannot hold exactly by kind (complex, extended
        precision) are rejected up front with a pointer at the python
        backends instead of being quietly narrowed.

        ``out`` receives the product (same contract as the generated
        NumPy modules: result dtype, writeable, non-overlapping).  With a
        ``workspace`` sized by
        :func:`repro.core.workspace.cbackend_footprint` every slab,
        product buffer and peel temporary comes from the arena; the
        returned array is never arena memory (a float64 ``out`` is
        written directly, any other result is a fresh cast).
        """
        from repro.core.workspace import check_out

        A = np.asarray(A)
        B = np.asarray(B)
        check_matmul_dims(A, B)
        if out is not None:
            check_out(out, A, B)
        dtype = np.result_type(A, B)
        if dtype.kind not in "fiub" or (dtype.kind == "f"
                                        and dtype.itemsize > 8):
            raise ValueError(
                f"the native chain backend computes in float64 and cannot "
                f"represent result dtype {dtype}; use "
                f"repro.codegen.compile_algorithm or the interpreter instead"
            )
        ws = workspace
        if ws is not None:
            ws.reset()
        Ad = _as_contiguous(A, ws)
        Bd = _as_contiguous(B, ws)
        if dtype.kind in "iub" and Ad.size and Bd.size:
            # double holds integers exactly only up to 2^53, and the fast
            # algorithm's *intermediates* (S_r/T_r sums, M_r products)
            # overflow that range before the final entries do -- so the
            # guard is an a-priori worst-case bound on every intermediate:
            # |S| <= alpha^steps * max|A|, |T| <= beta^steps * max|B|, a
            # leaf product <= q * |S||T|, and the combine sweep amplifies
            # by gamma^steps.  Conservative by design: rejecting a
            # representable product loudly beats returning a rounded one.
            growth = stability_factors(self.algorithm).emax ** max(steps, 1)
            bound = (float(np.abs(Ad).max()) * float(np.abs(Bd).max())
                     * A.shape[1] * growth)
            if bound >= 2.0 ** 53:
                raise ValueError(
                    "integer product may exceed float64's exactly"
                    " representable range (2^53) in the fast algorithm's"
                    " intermediates; the native chain backend computes in"
                    " double -- use the interpreter for big-integer products"
                )
        p, r = A.shape[0], B.shape[1]
        if out is not None and dtype == np.float64 and out.dtype == np.float64:
            dest = out
        elif dtype == np.float64:
            # the returned array must never be arena memory (the next
            # call resets the workspace), so it comes from the heap
            dest = np.empty((p, r), dtype=np.float64)
        else:
            dest = _take(ws, (p, r))
        self._recurse(Ad, Bd, steps, dest, ws)
        if dtype == np.float64:
            return dest
        C = dest
        if dtype.kind in "iub":
            C = np.rint(C)
        if out is not None:
            np.copyto(out, C, casting="unsafe")
            return out
        return C.astype(dtype)

    __call__ = multiply

    def _recurse(self, A, B, steps: int, C: np.ndarray, ws) -> None:
        """Write ``A @ B`` (float64) into ``C`` with ``steps`` levels."""
        p, q = A.shape
        r = B.shape[1]
        m, k, n = self.algorithm.base_case
        if steps <= 0 or p < m or q < k or r < n:
            np.matmul(A, B, out=C)
            return
        A11, A12, A21, A22 = peel_split(A, m, k)
        B11, B12, B21, B22 = peel_split(B, k, n)
        pc, qc = A11.shape
        rc = B11.shape[1]
        self._core(A11, B11, C[:pc, :rc], steps, ws)
        # dynamic-peeling fix-ups run through arena temporaries: matmul
        # into a contiguous buffer, then one in-place combine into the
        # strided C quadrant (a strided matmul out= would buffer anyway)
        mark = ws.mark() if ws is not None else None
        if q - qc:
            t = _take(ws, (pc, rc))
            np.matmul(A12, B21, out=t)
            C[:pc, :rc] += t
        if r - rc:
            t = _take(ws, (pc, r - rc))
            np.matmul(A11, B12, out=t)
            C[:pc, rc:] = t
            if q - qc:
                np.matmul(A12, B22, out=t)
                C[:pc, rc:] += t
        if p - pc:
            t = _take(ws, (p - pc, rc))
            np.matmul(A21, B11, out=t)
            C[pc:, :rc] = t
            if q - qc:
                np.matmul(A22, B21, out=t)
                C[pc:, :rc] += t
        if (p - pc) and (r - rc):
            t = _take(ws, (p - pc, r - rc))
            np.matmul(A21, B12, out=t)
            C[pc:, rc:] = t
            if q - qc:
                np.matmul(A22, B22, out=t)
                C[pc:, rc:] += t
        if ws is not None:
            ws.release(mark)

    def _core(self, A, B, Cout, steps, ws) -> None:
        """One level on an evenly divisible core; writes into ``Cout``."""
        m, k, n = self.algorithm.base_case
        R = self.algorithm.rank
        p, q = A.shape
        r = B.shape[1]
        bp, bq, bn = p // m, q // k, r // n

        mark = ws.mark() if ws is not None else None
        Sslab = _take(ws, (max(self._s["slots"], 1), bp * bq))
        Tslab = _take(ws, (max(self._t["slots"], 1), bq * bn))
        self.lib.form_S(
            A.ctypes.data_as(_DPTR), ctypes.c_long(A.strides[0] // 8),
            ctypes.c_long(bp), ctypes.c_long(bq), Sslab.ctypes.data_as(_DPTR),
        )
        self.lib.form_T(
            B.ctypes.data_as(_DPTR), ctypes.c_long(B.strides[0] // 8),
            ctypes.c_long(bq), ctypes.c_long(bn), Tslab.ctypes.data_as(_DPTR),
        )

        def operand(layout, slab, X, rows, cols, block_cols, rr):
            kind, idx = layout[rr]
            if kind == "slot":
                return slab[idx].reshape(rows, cols)
            bi, bj = divmod(idx, block_cols)
            return X[bi * rows:(bi + 1) * rows, bj * cols:(bj + 1) * cols]

        # one contiguous slab holds all R products: its rows are what the
        # form_C pointer array addresses, and a deeper recursion level
        # writes its result straight into the row (no per-product heap)
        Mslab = _take(ws, (R, bp * bn))
        deeper = steps > 1 and min(bp, bq, bn) >= max(m, k, n)
        for rr in range(R):
            S = operand(self._s["layout"], Sslab, A, bp, bq, k, rr)
            T = operand(self._t["layout"], Tslab, B, bq, bn, n, rr)
            Mview = Mslab[rr].reshape(bp, bn)
            rmark = ws.mark() if ws is not None else None
            if deeper:
                self._recurse(_as_contiguous(S, ws), _as_contiguous(T, ws),
                              steps - 1, Mview, ws)
            else:
                # alias operands are strided block views; BLAS wants them
                # packed, so pack into the arena instead of letting
                # np.matmul buffer on the heap
                np.matmul(_as_contiguous(S, ws), _as_contiguous(T, ws),
                          out=Mview)
            if ws is not None:
                ws.release(rmark)

        Mptrs = (_DPTR * R)(*[Mslab[rr].ctypes.data_as(_DPTR)
                              for rr in range(R)])
        ndefs = len(self._c["defs"])
        scratch = _take(ws, (max(ndefs, 1) * bn,))
        self.lib.form_C(
            Mptrs, ctypes.c_long(bp), ctypes.c_long(bn),
            Cout.ctypes.data_as(_DPTR), ctypes.c_long(Cout.strides[0] // 8),
            scratch.ctypes.data_as(_DPTR),
        )
        if ws is not None:
            ws.release(mark)


@functools.lru_cache(maxsize=64)
def _compiled_cached(name: str, cse: bool) -> CompiledChains:
    from repro.algorithms import get_algorithm

    return CompiledChains(get_algorithm(name), cse=cse)


def compile_chains(
    algorithm: str | FastAlgorithm, cse: bool = False
) -> CompiledChains:
    """Compile (or fetch from cache) the C chain kernels for an algorithm."""
    if not available():
        raise RuntimeError(
            "no working C compiler; the native chain backend is unavailable "
            "(set REPRO_CC or install gcc)"
        )
    if isinstance(algorithm, str):
        return _compiled_cached(algorithm, cse)
    return CompiledChains(algorithm, cse=cse)


def multiply(
    A: np.ndarray,
    B: np.ndarray,
    algorithm: str | FastAlgorithm = "strassen",
    steps: int = 1,
    cse: bool = False,
) -> np.ndarray:
    """One-call native-chain fast multiply (compare with ``repro.multiply``)."""
    return compile_chains(algorithm, cse=cse).multiply(A, B, steps=steps)
