"""Runtime support for generated fast-matmul modules.

Generated code is plain Python over numpy; everything it calls beyond numpy
lives here: the default BLAS base case, dynamic peeling, axpy-style
accumulation, and the stacked-gemm primitives used by the *streaming*
addition strategy (stack the input's blocks once -- one read of the input --
then form every S_r/T_r in a single BLAS pass).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.util.matrices import peel_split
from repro.util.validation import require_2d

as2d = require_2d


def default_base(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Leaf multiply: the vendor gemm."""
    return A @ B


def axpy(out: np.ndarray, x: np.ndarray, alpha: float) -> None:
    """``out += alpha * x`` with the fewest temporaries numpy allows."""
    if alpha == 1.0:
        np.add(out, x, out=out)
    elif alpha == -1.0:
        np.subtract(out, x, out=out)
    else:
        out += alpha * x


def peel_apply(
    A: np.ndarray,
    B: np.ndarray,
    m: int,
    k: int,
    n: int,
    core_fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
) -> np.ndarray:
    """Dynamic peeling (Section 3.5) around a divisible-core multiply.

    ``core_fn`` gets the largest ``(m,k,n)``-divisible leading submatrices;
    boundary strips are fixed up with thin classical products.
    """
    p, q = A.shape
    r = B.shape[1]
    A11, A12, A21, A22 = peel_split(A, m, k)
    B11, B12, B21, B22 = peel_split(B, k, n)
    pc, qc = A11.shape
    rc = B11.shape[1]
    if pc == p and qc == q and rc == r:
        return core_fn(A11, B11)

    C = np.empty((p, r), dtype=np.result_type(A, B))
    C[:pc, :rc] = core_fn(A11, B11)
    if q - qc:
        C[:pc, :rc] += A12 @ B21
    if r - rc:
        C[:pc, rc:] = A11 @ B12
        if q - qc:
            C[:pc, rc:] += A12 @ B22
    if p - pc:
        C[pc:, :rc] = A21 @ B11
        if q - qc:
            C[pc:, :rc] += A22 @ B21
    if (p - pc) and (r - rc):
        C[pc:, rc:] = A21 @ B12 + A22 @ B22
    return C


# --------------------------------------------------------------------------
# streaming-strategy primitives
# --------------------------------------------------------------------------
def stack_blocks(X: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Copy ``X``'s ``rows x cols`` block grid into a ``(rows*cols, bp*bq)``
    matrix (row-major block order) -- the single read of the input that the
    streaming strategy performs."""
    p, q = X.shape
    bp, bq = p // rows, q // cols
    return (
        X.reshape(rows, bp, cols, bq)
        .transpose(0, 2, 1, 3)
        .reshape(rows * cols, bp * bq)
    )


def streaming_combine(
    X: np.ndarray,
    rows: int,
    cols: int,
    defs_matrix: np.ndarray | None,
    chain_matrix: np.ndarray,
) -> np.ndarray:
    """Form every S_r (or T_r) in one pass: ``chain_matrix @ [stack; defs]``.

    ``defs_matrix`` (CSE temporaries as rows over the stacked blocks) is
    evaluated first and appended as extra sources; without CSE it is None
    and ``chain_matrix`` is just U^T (or V^T) with piped scalars.
    Returns an ``(R, bp, bq)`` array whose slices are the temporaries.
    """
    p, q = X.shape
    bp, bq = p // rows, q // cols
    stack = stack_blocks(X, rows, cols)
    if defs_matrix is not None and defs_matrix.size:
        ys = defs_matrix.astype(stack.dtype, copy=False) @ stack
        stack = np.vstack([stack, ys])
    out = chain_matrix.astype(stack.dtype, copy=False) @ stack
    return out.reshape(-1, bp, bq)


def streaming_output(
    products: list[np.ndarray],
    defs_matrix: np.ndarray | None,
    chain_matrix: np.ndarray,
    p: int,
    r: int,
    m: int,
    n: int,
) -> np.ndarray:
    """Streaming C formation: read each M_r once, write each C block once."""
    bp, br = p // m, r // n
    stack = np.empty((len(products), bp * br), dtype=products[0].dtype)
    for i, Mr in enumerate(products):
        stack[i] = Mr.reshape(-1)
    if defs_matrix is not None and defs_matrix.size:
        stack = np.vstack(
            [stack, defs_matrix.astype(stack.dtype, copy=False) @ stack]
        )
    cc = chain_matrix.astype(stack.dtype, copy=False) @ stack  # (m*n, bp*br)
    return (
        cc.reshape(m, n, bp, br)
        .transpose(0, 2, 1, 3)
        .reshape(p, r)
    )
