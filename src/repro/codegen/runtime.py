"""Runtime support for generated fast-matmul modules.

Generated code is plain Python over numpy; everything it calls beyond numpy
lives here: the default BLAS base case, dynamic peeling, axpy-style
accumulation, and the stacked-gemm primitives used by the *streaming*
addition strategy (stack the input's blocks once -- one read of the input --
then form every S_r/T_r in a single BLAS pass).

Every helper on the generated modules' hot path takes optional ``out=`` /
``workspace=`` arguments so arena-backed generated code (see
:mod:`repro.codegen.generator` for the protocol) runs allocation-free:
``peel_apply`` writes the product into caller storage and draws its one
core-size fix-up buffer from the arena, ``axpy`` absorbs general-coefficient
scaling into a scratch view, and the streaming primitives assemble their
block stacks inside arena slabs instead of fresh stacked copies.  Without
those arguments each helper behaves exactly as the historical allocating
path (same ufunc/gemm sequence, bit-for-bit identical results).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.workspace import Workspace, check_out, scratch_view
from repro.util.matrices import peel_split
from repro.util.validation import require_2d

as2d = require_2d

__all__ = [
    "as2d", "axpy", "check_out", "default_base", "leaf", "peel_apply",
    "scratch_view", "stack_blocks", "streaming_combine", "streaming_output",
    "streaming_output_stacked",
]


def default_base(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Leaf multiply: the vendor gemm."""
    return A @ B


def leaf(base: Callable, A: np.ndarray, B: np.ndarray,
         out: np.ndarray | None = None) -> np.ndarray:
    """Run the base case, writing into ``out`` when one is supplied.

    The default gemm base writes straight into ``out`` (no temporary); a
    custom base without ``out`` support is copied -- custom bases are a
    correctness/testing hook, not a steady-state serving path.
    """
    if out is None:
        return base(A, B)
    if base is default_base:
        np.matmul(A, B, out=out)
        return out
    np.copyto(out, base(A, B))
    return out


def axpy(out: np.ndarray, x: np.ndarray, alpha: float,
         scratch: np.ndarray | None = None) -> None:
    """``out += alpha * x`` with the fewest temporaries numpy allows.

    ``scratch`` (a byte buffer at least ``out.nbytes`` long, typically an
    arena view) absorbs the ``alpha * x`` product of general coefficients,
    making the update allocation-free; without it that branch falls back to
    one temporary.  ``alpha`` is coerced to python float so NEP 50 does not
    upcast float32 operands through a float64 numpy scalar.
    """
    alpha = float(alpha)
    if alpha == 1.0:
        np.add(out, x, out=out)
    elif alpha == -1.0:
        np.subtract(out, x, out=out)
    elif scratch is not None:
        t = scratch_view(scratch, out.shape, out.dtype)
        np.multiply(x, alpha, out=t)
        np.add(out, t, out=out)
    else:
        out += alpha * x


def peel_apply(
    A: np.ndarray,
    B: np.ndarray,
    m: int,
    k: int,
    n: int,
    core_fn: Callable,
    out: np.ndarray | None = None,
    workspace: Workspace | None = None,
) -> np.ndarray:
    """Dynamic peeling (Section 3.5) around a divisible-core multiply.

    ``core_fn`` gets the largest ``(m,k,n)``-divisible leading submatrices;
    boundary strips are fixed up with thin classical products.

    Without ``out``/``workspace`` this is the historical allocating path
    and ``core_fn`` is called as ``core_fn(A11, B11)``.  With either, the
    product is written into ``out`` (or a single fresh array when ``out``
    is None) and ``core_fn`` is called as ``core_fn(A11, B11, Cview)`` --
    it must write its result into the view.  The one core-size fix-up
    product (``Ccore += A12 @ B21`` when the inner dimension peels) is
    drawn from ``workspace`` so non-divisible shapes stay allocation-free;
    the remaining strips are O(boundary)-thin.
    """
    p, q = A.shape
    r = B.shape[1]
    A11, A12, A21, A22 = peel_split(A, m, k)
    B11, B12, B21, B22 = peel_split(B, k, n)
    pc, qc = A11.shape
    rc = B11.shape[1]

    if out is None and workspace is None:
        if pc == p and qc == q and rc == r:
            return core_fn(A11, B11)
        C = np.empty((p, r), dtype=np.result_type(A, B))
        C[:pc, :rc] = core_fn(A11, B11)
        if q - qc:
            C[:pc, :rc] += A12 @ B21
        if r - rc:
            C[:pc, rc:] = A11 @ B12
            if q - qc:
                C[:pc, rc:] += A12 @ B22
        if p - pc:
            C[pc:, :rc] = A21 @ B11
            if q - qc:
                C[pc:, :rc] += A22 @ B21
        if (p - pc) and (r - rc):
            C[pc:, rc:] = A21 @ B12 + A22 @ B22
        return C

    C = out if out is not None else np.empty((p, r), dtype=np.result_type(A, B))
    if pc == p and qc == q and rc == r:
        core_fn(A11, B11, C)
        return C
    Ccore = C[:pc, :rc]
    core_fn(A11, B11, Ccore)
    if q - qc:
        if workspace is not None:
            fix = workspace.mark()
            t = workspace.take((pc, rc), C.dtype)
            np.matmul(A12, B21, out=t)
            np.add(Ccore, t, out=Ccore)
            workspace.release(fix)
        else:
            Ccore += A12 @ B21
    if r - rc:
        np.matmul(A11, B12, out=C[:pc, rc:])
        if q - qc:
            C[:pc, rc:] += A12 @ B22
    if p - pc:
        np.matmul(A21, B11, out=C[pc:, :rc])
        if q - qc:
            C[pc:, :rc] += A22 @ B21
    if (p - pc) and (r - rc):
        C[pc:, rc:] = A21 @ B12 + A22 @ B22
    return C


# --------------------------------------------------------------------------
# streaming-strategy primitives
# --------------------------------------------------------------------------
def stack_blocks(X: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Copy ``X``'s ``rows x cols`` block grid into a ``(rows*cols, bp*bq)``
    matrix (row-major block order) -- the single read of the input that the
    streaming strategy performs."""
    p, q = X.shape
    bp, bq = p // rows, q // cols
    return (
        X.reshape(rows, bp, cols, bq)
        .transpose(0, 2, 1, 3)
        .reshape(rows * cols, bp * bq)
    )


def _stack_blocks_into(stack: np.ndarray, X: np.ndarray,
                       rows: int, cols: int, bp: int, bq: int) -> None:
    """Fill ``stack``'s leading rows with ``X``'s block grid, view-to-view.

    ``X`` is usually a non-contiguous peel-core view, so the reshape dance
    of :func:`stack_blocks` would silently copy; block-wise ``copyto``
    writes the same values with no temporary.
    """
    for b in range(rows * cols):
        bi, bj = divmod(b, cols)
        np.copyto(stack[b].reshape(bp, bq),
                  X[bi * bp:(bi + 1) * bp, bj * bq:(bj + 1) * bq])


def streaming_combine(
    X: np.ndarray,
    rows: int,
    cols: int,
    defs_matrix: np.ndarray | None,
    chain_matrix: np.ndarray,
    workspace: Workspace | None = None,
) -> np.ndarray:
    """Form every S_r (or T_r) in one pass: ``chain_matrix @ [stack; defs]``.

    ``defs_matrix`` (CSE temporaries as rows over the stacked blocks) is
    evaluated first and appended as extra sources; without CSE it is None
    and ``chain_matrix`` is just U^T (or V^T) with piped scalars.
    Returns an ``(R, bp, bq)`` array whose slices are the temporaries.

    With ``workspace``, the result slab and the block stack are arena
    views: the stack is filled block-by-block (no stacked copy), the CSE
    rows are matmul'd into its tail, and the stack is released before
    returning -- only the ``(R, bp, bq)`` slab stays live.  The matmul
    operands are identical to the allocating path, so results match it
    bit for bit.
    """
    p, q = X.shape
    bp, bq = p // rows, q // cols
    if workspace is None:
        stack = stack_blocks(X, rows, cols)
        if defs_matrix is not None and defs_matrix.size:
            ys = defs_matrix.astype(stack.dtype, copy=False) @ stack
            stack = np.vstack([stack, ys])
        out = chain_matrix.astype(stack.dtype, copy=False) @ stack
        return out.reshape(-1, bp, bq)

    R = chain_matrix.shape[0]
    nbase = rows * cols
    nd = (defs_matrix.shape[0]
          if defs_matrix is not None and defs_matrix.size else 0)
    slab = workspace.take((R, bp, bq), X.dtype)
    mark = workspace.mark()
    stack = workspace.take((nbase + nd, bp * bq), X.dtype)
    _stack_blocks_into(stack, X, rows, cols, bp, bq)
    if nd:
        np.matmul(defs_matrix.astype(X.dtype, copy=False), stack[:nbase],
                  out=stack[nbase:])
    np.matmul(chain_matrix.astype(X.dtype, copy=False), stack,
              out=slab.reshape(R, bp * bq))
    workspace.release(mark)
    return slab


def streaming_output(
    products,
    defs_matrix: np.ndarray | None,
    chain_matrix: np.ndarray,
    p: int,
    r: int,
    m: int,
    n: int,
    out: np.ndarray | None = None,
    workspace: Workspace | None = None,
) -> np.ndarray:
    """Streaming C formation: read each M_r once, write each C block once.

    ``products`` is a list of ``(bp, br)`` arrays or an ``(R, bp, br)``
    slab.  With ``out=`` the blocks are scattered into caller storage
    (block-wise, so a non-contiguous peel-core destination works without a
    hidden copy); with ``workspace`` the product stack and the combined
    block rows are arena views released before returning.
    """
    bp, br = p // m, r // n
    nprod = len(products)
    nd = (defs_matrix.shape[0]
          if defs_matrix is not None and defs_matrix.size else 0)
    dtype = products[0].dtype
    mark = workspace.mark() if workspace is not None else None
    if workspace is not None:
        stack = workspace.take((nprod + nd, bp * br), dtype)
    else:
        stack = np.empty((nprod + nd, bp * br), dtype=dtype)
    for i, Mr in enumerate(products):
        np.copyto(stack[i].reshape(bp, br), Mr)
    if nd:
        np.matmul(defs_matrix.astype(dtype, copy=False), stack[:nprod],
                  out=stack[nprod:])
    if workspace is not None:
        cc = workspace.take((m * n, bp * br), dtype)
        np.matmul(chain_matrix.astype(dtype, copy=False), stack, out=cc)
    else:
        cc = chain_matrix.astype(dtype, copy=False) @ stack  # (m*n, bp*br)
    C = out if out is not None else np.empty((p, r), dtype=dtype)
    _scatter_blocks(C, cc, m, n, bp, br)
    if workspace is not None:
        workspace.release(mark)
    return C


def streaming_output_stacked(
    stack: np.ndarray,
    nprod: int,
    defs_matrix: np.ndarray | None,
    chain_matrix: np.ndarray,
    p: int,
    r: int,
    m: int,
    n: int,
    out: np.ndarray,
    workspace: Workspace,
) -> np.ndarray:
    """:func:`streaming_output` for a *pre-stacked* product slab.

    Arena-lowered generated cores write their ``M_r`` products straight
    into the first ``nprod`` rows of ``stack`` (an arena view with
    ``len(defs)`` spare tail rows), so C formation needs no second copy of
    the product slab: the CSE definition rows are matmul'd into the tail
    in place, the combined block rows come from a transient arena buffer,
    and the blocks scatter into ``out``.  Identical matmul operands to
    :func:`streaming_output`, hence bit-identical results.
    """
    bp, br = p // m, r // n
    dtype = stack.dtype
    if defs_matrix is not None and defs_matrix.size:
        np.matmul(defs_matrix.astype(dtype, copy=False), stack[:nprod],
                  out=stack[nprod:])
    mark = workspace.mark()
    cc = workspace.take((m * n, bp * br), dtype)
    np.matmul(chain_matrix.astype(dtype, copy=False), stack, out=cc)
    _scatter_blocks(out, cc, m, n, bp, br)
    workspace.release(mark)
    return out


def _scatter_blocks(C: np.ndarray, cc: np.ndarray,
                    m: int, n: int, bp: int, br: int) -> None:
    """Write combined rows ``cc[(i, j)]`` into ``C``'s block grid, view to
    view (block-wise, so a non-contiguous peel-core destination never
    forces a hidden reshape copy)."""
    for i in range(m):
        for j in range(n):
            np.copyto(C[i * bp:(i + 1) * bp, j * br:(j + 1) * br],
                      cc[i * n + j].reshape(bp, br))
