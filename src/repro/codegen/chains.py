"""Addition chains: the intermediate representation the code generator lowers.

From ``[[U,V,W]]`` we extract three groups of *chains* (paper Section 3.2):

- ``S_r = sum_i U[i,r] * A_i``   (one per rank column of U)
- ``T_r = sum_j V[j,r] * B_j``
- ``C_i = sum_r W[i,r] * M_r``   (one per output block)

Before lowering we apply *static scalar piping* (Section 3.1): when a U or
V column has a single nonzero, no temporary is formed -- the block is passed
straight into the recursive call and its scalar folded into the
corresponding W column at generation time, so it is applied once to the
(small) product instead of to the (large) operand.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.algorithm import FastAlgorithm


@dataclasses.dataclass(frozen=True)
class Term:
    """One ``coeff * source`` contribution to a chain.

    ``source`` is a symbolic operand name: ``"A0"``/``"B3"`` for input
    blocks (row-major index), ``"M5"`` for products, or ``"Y2"`` for a CSE
    temporary.
    """

    coeff: float
    source: str


@dataclasses.dataclass
class Chain:
    """``target = sum(coeff * source)``; empty chains are dropped upstream."""

    target: str
    terms: list[Term]

    @property
    def additions(self) -> int:
        """Entrywise additions to evaluate the chain (copies are free)."""
        return max(0, len(self.terms) - 1)

    def is_alias(self) -> bool:
        """True when the chain is just ``target = source`` (coeff 1)."""
        return len(self.terms) == 1 and self.terms[0].coeff == 1.0


@dataclasses.dataclass
class ChainProgram:
    """All chains of one algorithm plus the piped W matrix."""

    algorithm: FastAlgorithm
    s_chains: list[Chain]  # length R, possibly aliases
    t_chains: list[Chain]
    c_chains: list[Chain]  # length M*N
    W_effective: np.ndarray  # W with piped scalars folded in

    @property
    def total_additions(self) -> int:
        return sum(c.additions for c in
                   self.s_chains + self.t_chains + self.c_chains)

    @property
    def st_additions(self) -> int:
        """Additions in the formation of S and T (the Table-3 quantity)."""
        return sum(c.additions for c in self.s_chains + self.t_chains)


def extract_chains(alg: FastAlgorithm, pipe_scalars: bool = True) -> ChainProgram:
    """Build the chain program for ``alg``.

    With ``pipe_scalars`` (the default, matching the paper's generator),
    single-nonzero U/V columns become pure aliases and their scalars are
    folded into ``W_effective``.
    """
    U, V, W = alg.U, alg.V, np.array(alg.W)
    R = alg.rank

    s_chains: list[Chain] = []
    t_chains: list[Chain] = []
    for r in range(R):
        for mat, prefix, out in ((U, "A", s_chains), (V, "B", t_chains)):
            col = mat[:, r]
            nz = np.nonzero(col)[0]
            terms = [Term(float(col[i]), f"{prefix}{i}") for i in nz]
            if pipe_scalars and len(terms) == 1 and terms[0].coeff != 1.0:
                W[:, r] *= terms[0].coeff
                terms = [Term(1.0, terms[0].source)]
            out.append(Chain(("S" if prefix == "A" else "T") + str(r), terms))

    c_chains: list[Chain] = []
    for i in range(W.shape[0]):
        row = W[i]
        nz = np.nonzero(row)[0]
        c_chains.append(
            Chain(f"C{i}", [Term(float(row[r]), f"M{r}") for r in nz])
        )
    return ChainProgram(alg, s_chains, t_chains, c_chains, W)
