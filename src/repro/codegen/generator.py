"""The code generator: ``[[U,V,W]]`` -> specialized Python source (Sec 3.1).

For each algorithm / addition-strategy / CSE combination we emit a
standalone module with fully unrolled block views, S/T formation, recursive
product calls and C assembly -- the Python analogue of the paper's C++
generator.  Key ingredients reproduced:

- custom linear-combination code per S_r/T_r/C_ij chain;
- scalar multiplication by +-1 lowered to native add/subtract;
- single-nonzero U/V columns forming no temporary (alias + static scalar
  piping into W);
- three addition strategies (``repro.codegen.strategies``);
- optional greedy CSE (``repro.codegen.cse``);
- dynamic peeling for arbitrary dimensions (``runtime.peel_apply``).

``compile_algorithm`` executes the source and returns its ``multiply``
callable; sources are cached by content hash and can be dumped for
inspection with ``write_source``.

**Arena protocol for generated code.**  Every generated module's entry
point is ``multiply(A, B, steps=1, base=None, out=None, workspace=None)``:

- ``out=`` receives the product (validated by ``runtime.check_out``:
  matching shape/result-dtype, writeable, non-overlapping with A/B);
- ``workspace=`` is a :class:`repro.core.workspace.Workspace` arena that
  supplies *every* temporary -- S/T chain destinations, CSE ``Y``
  definitions, the per-level ``M_r`` product slab, the streaming block
  stacks, the general-coefficient axpy scratch, and dynamic peeling's
  core-size fix-up buffer.  Size it with
  :func:`repro.core.workspace.codegen_footprint` (or the
  ``Workspace.for_codegen`` factory), which mirrors this module's peel
  loop and per-strategy slot counts exactly.

With a workspace the module runs a second, arena-lowered core
(``_core_ws``): the arena is ``reset()`` at call entry, each recursion
level ``mark()``s on entry and ``release()``s on exit, and per-rank S/T
buffers are marked/released inside the rank loop while the level's
``M_r`` slab (taken once, ``R`` blocks) stays live until C assembly --
the stack discipline that lets one arena serve the whole recursion tree.
A warm call with both ``out=`` and ``workspace=`` performs no large
allocations; results are bit-for-bit identical to the allocating path
(same ufunc/gemm sequence on the same values).  Without a workspace the
historical allocating core runs unchanged (``out=`` is then honored by a
final copy).
"""

from __future__ import annotations

import hashlib
import textwrap
import threading
import types

import numpy as np

from repro.codegen import cse as cse_mod
from repro.codegen.chains import Chain, ChainProgram, extract_chains
from repro.codegen.strategies import STRATEGIES, emit_chain, needs_axpy_scratch

_MODULE_CACHE: dict[str, types.ModuleType] = {}
#: guards _MODULE_CACHE -- concurrent dispatchers compile lazily, and an
#: unlocked check-then-exec would run the same module body twice and hand
#: out two distinct function objects for one fingerprint
_compile_lock = threading.Lock()


def _np_literal(M: np.ndarray) -> str:
    rows = ",\n     ".join(
        "[" + ", ".join(repr(float(x)) for x in row) + "]" for row in M
    )
    return f"np.array([{rows}])"


def _flatten_defs(defs: list[Chain], base_index: dict[str, int]) -> np.ndarray:
    """Express CSE temporaries as linear combinations of the base sources
    (substituting nested Y references) for the streaming matrices."""
    nbase = len(base_index)
    vecs: dict[str, np.ndarray] = {}
    rows = []
    for d in defs:
        v = np.zeros(nbase)
        for t in d.terms:
            if t.source in base_index:
                v[base_index[t.source]] += t.coeff
            else:
                v += t.coeff * vecs[t.source]
        vecs[d.target] = v
        rows.append(v)
    return np.array(rows) if rows else np.zeros((0, nbase))


def _chain_matrix(chains: list[Chain], base_index: dict[str, int],
                  def_names: list[str]) -> np.ndarray:
    cols = len(base_index) + len(def_names)
    def_index = {nm: len(base_index) + i for i, nm in enumerate(def_names)}
    M = np.zeros((len(chains), cols))
    for r, ch in enumerate(chains):
        for t in ch.terms:
            j = base_index.get(t.source)
            if j is None:
                j = def_index[t.source]
            M[r, j] += t.coeff
    return M


def prepared_chains(
    algorithm, cse: bool, pipe_scalars: bool = True
) -> tuple[ChainProgram, list[Chain], list[Chain], list[Chain],
           list[Chain], list[Chain], list[Chain]]:
    """The chain program exactly as :func:`generate_source` lowers it.

    Returns ``(prog, s_chains, t_chains, c_chains, s_defs, t_defs,
    c_defs)`` with the same CSE invocation (prefixes, ordering) the
    emitted module uses.  ``repro.core.workspace.codegen_footprint``
    shares this so arena sizing can never drift from the generator's
    actual slot counts.
    """
    prog: ChainProgram = extract_chains(algorithm, pipe_scalars=pipe_scalars)
    s_chains, t_chains, c_chains = prog.s_chains, prog.t_chains, prog.c_chains
    s_defs: list[Chain] = []
    t_defs: list[Chain] = []
    c_defs: list[Chain] = []
    if cse:
        rs = cse_mod.eliminate(s_chains, temp_prefix="YA")
        rt = cse_mod.eliminate(t_chains, temp_prefix="YB")
        rc = cse_mod.eliminate(c_chains, temp_prefix="YM")
        s_chains, s_defs = rs.chains, rs.definitions
        t_chains, t_defs = rt.chains, rt.definitions
        c_chains, c_defs = rc.chains, rc.definitions
    return prog, s_chains, t_chains, c_chains, s_defs, t_defs, c_defs


def generate_source(
    algorithm,
    strategy: str = "write_once",
    cse: bool = False,
    pipe_scalars: bool = True,
) -> str:
    """Emit the Python source of a specialized multiply for ``algorithm``."""
    if strategy not in STRATEGIES:
        raise ValueError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
    (prog, s_chains, t_chains, c_chains,
     s_defs, t_defs, c_defs) = prepared_chains(algorithm, cse, pipe_scalars)
    alg = prog.algorithm
    m, k, n, R = alg.m, alg.k, alg.n, alg.rank

    for r, (sc, tc) in enumerate(zip(prog.s_chains, prog.t_chains)):
        if not sc.terms or not tc.terms:
            raise ValueError(f"degenerate rank column {r}: empty S or T chain")

    L: list[str] = []
    emit = L.append
    emit('"""Auto-generated fast matrix multiplication.')
    emit("")
    emit(f"algorithm : {alg.name} <{m},{k},{n}> rank {R}"
         f"{' (APA)' if alg.apa else ''}")
    emit(f"strategy  : {strategy}, cse={cse}, scalar piping={pipe_scalars}")
    emit('Generated by repro.codegen.generator; do not edit."""')
    emit("import numpy as np")
    emit("from repro.codegen import runtime")
    emit("")
    emit(f"M, K, N, RANK = {m}, {k}, {n}, {R}")
    # Scheme metadata the static verifier (repro.analyze.symbolic) keys on:
    # enough to resolve the catalog [U,V,W] this module must implement and
    # the exact generator configuration that produced it.
    emit("_SCHEME = {")
    emit(f"    'algorithm': {alg.name!r},")
    emit(f"    'base_case': ({m}, {k}, {n}),")
    emit(f"    'rank': {R},")
    emit(f"    'apa': {bool(alg.apa)!r},")
    emit(f"    'strategy': {strategy!r},")
    emit(f"    'cse': {bool(cse)!r},")
    emit(f"    'pipe_scalars': {bool(pipe_scalars)!r},")
    emit(f"    'fingerprint': {fingerprint(algorithm, strategy, cse, pipe_scalars)!r},")
    emit("}")
    emit("")

    if strategy == "streaming":
        a_index = {f"A{i}": i for i in range(m * k)}
        b_index = {f"B{i}": i for i in range(k * n)}
        m_index = {f"M{i}": i for i in range(R)}
        SD = _flatten_defs(s_defs, a_index)
        TD = _flatten_defs(t_defs, b_index)
        CD = _flatten_defs(c_defs, m_index)
        SC = _chain_matrix(s_chains, a_index, [d.target for d in s_defs])
        TC = _chain_matrix(t_chains, b_index, [d.target for d in t_defs])
        CC = _chain_matrix(c_chains, m_index, [d.target for d in c_defs])
        emit(f"_S_DEFS = {_np_literal(SD) if SD.size else 'None'}")
        emit(f"_T_DEFS = {_np_literal(TD) if TD.size else 'None'}")
        emit(f"_C_DEFS = {_np_literal(CD) if CD.size else 'None'}")
        emit(f"_S_CHAINS = {_np_literal(SC)}")
        emit(f"_T_CHAINS = {_np_literal(TC)}")
        emit(f"_C_CHAINS = {_np_literal(CC)}")
        emit("")

    emit(textwrap.dedent("""\
        def multiply(A, B, steps=1, base=None, out=None, workspace=None):
            \"\"\"Multiply A @ B with the generated fast algorithm.

            ``out=`` receives the product (validated: shape, result dtype,
            no overlap with A/B); ``workspace=`` is an arena supplying every
            temporary (size it with workspace.codegen_footprint) -- with
            both, a warm call performs no large allocations.  See
            repro.codegen.generator for the protocol.
            \"\"\"
            A = runtime.as2d(A, "A")
            B = runtime.as2d(B, "B")
            if A.shape[1] != B.shape[0]:
                raise ValueError("inner dimensions disagree")
            if base is None:
                base = runtime.default_base
            if out is not None:
                out = runtime.check_out(out, A, B)
            if workspace is not None:
                workspace.reset()
                return _run_ws(A, B, int(steps), base, out, workspace)
            C = _run(A, B, int(steps), base)
            if out is not None:
                np.copyto(out, C)
                return out
            return C


        def _run(A, B, steps, base):
            p, q = A.shape
            r = B.shape[1]
            if steps <= 0 or p < M or q < K or r < N:
                return base(A, B)
            return runtime.peel_apply(
                A, B, M, K, N, lambda a, b: _core(a, b, steps, base))


        def _run_ws(A, B, steps, base, out, ws):
            p, q = A.shape
            r = B.shape[1]
            if steps <= 0 or p < M or q < K or r < N:
                return runtime.leaf(base, A, B, out)
            return runtime.peel_apply(
                A, B, M, K, N,
                lambda a, b, o=None: _core_ws(a, b, steps, base, o, ws),
                out=out, workspace=ws)

    """))

    body: list[str] = []
    b = body.append
    b("p, q = A.shape")
    b("r = B.shape[1]")
    b("bp = p // M; bq = q // K; br = r // N")
    b("_dt = np.result_type(A, B)")
    for i in range(m * k):
        rr, cc = divmod(i, k)
        b(f"A{i} = A[{rr}*bp:{rr + 1}*bp, {cc}*bq:{cc + 1}*bq]")
    for i in range(k * n):
        rr, cc = divmod(i, n)
        b(f"B{i} = B[{rr}*bq:{rr + 1}*bq, {cc}*br:{cc + 1}*br]")
    b("")

    if strategy == "streaming":
        b("_SS = runtime.streaming_combine(A, M, K, _S_DEFS, _S_CHAINS)")
        b("_TT = runtime.streaming_combine(B, K, N, _T_DEFS, _T_CHAINS)")
        for r in range(R):
            b(f"M{r} = _run(_SS[{r}], _TT[{r}], steps - 1, base)")
        b("return runtime.streaming_output("
          f"[{', '.join(f'M{r}' for r in range(R))}], "
          "_C_DEFS, _C_CHAINS, p, r, M, N)")
    else:
        for d in s_defs:
            body.extend(emit_chain(d, strategy, "(bp, bq)"))
        for d in t_defs:
            body.extend(emit_chain(d, strategy, "(bq, br)"))
        # interleave S_r, T_r, M_r so temporaries stay short-lived
        # (the pairwise/write-once memory story of Section 3.2)
        for r in range(R):
            body.extend(emit_chain(s_chains[r], strategy, "(bp, bq)"))
            body.extend(emit_chain(t_chains[r], strategy, "(bq, br)"))
            b(f"M{r} = _run(S{r}, T{r}, steps - 1, base)")
            if not s_chains[r].is_alias():
                b(f"del S{r}")
            if not t_chains[r].is_alias():
                b(f"del T{r}")
        b("")
        b("C = np.empty((p, r), _dt)")
        for i in range(m * n):
            rr, cc = divmod(i, n)
            b(f"C{i} = C[{rr}*bp:{rr + 1}*bp, {cc}*br:{cc + 1}*br]")
        for d in c_defs:
            body.extend(emit_chain(d, strategy, "(bp, br)"))
        for i, ch in enumerate(c_chains):
            if not ch.terms:
                b(f"C{i}[:] = 0.0")
                continue
            body.extend(emit_chain(ch, strategy, "(bp, br)", into_view=f"C{i}"))
        b("return C")

    emit("def _core(A, B, steps, base):")
    for line in body:
        emit(("    " + line) if line else "")
    emit("")
    emit("")

    # ---- the arena-lowered core: every temporary is a workspace view ----
    wsb: list[str] = []
    w = wsb.append
    w("p, q = A.shape")
    w("r = B.shape[1]")
    w("bp = p // M; bq = q // K; br = r // N")
    w("_dt = np.result_type(A, B)")
    w("_lvl = ws.mark()")
    if strategy == "streaming":
        w("_SS = runtime.streaming_combine(A, M, K, _S_DEFS, _S_CHAINS,"
          " workspace=ws)")
        w("_TT = runtime.streaming_combine(B, K, N, _T_DEFS, _T_CHAINS,"
          " workspace=ws)")
        # the product rows double as the head of the C-formation stack, so
        # no second copy of the M_r slab is ever made (its tail holds the
        # C-side CSE definition rows, matmul'd in place)
        w(f"_ST = ws.take((RANK + {len(c_defs)}, bp * br), _dt)")
        w("_MM = _ST[:RANK].reshape(RANK, bp, br)")
        w("for _i in range(RANK):")
        w("    _mk = ws.mark()")
        w("    _run_ws(_SS[_i], _TT[_i], steps - 1, base, _MM[_i], ws)")
        w("    ws.release(_mk)")
        w("C = out if out is not None else np.empty((p, r), _dt)")
        w("runtime.streaming_output_stacked(_ST, RANK, _C_DEFS, _C_CHAINS,"
          " p, r, M, N, C, ws)")
    else:
        for i in range(m * k):
            rr, cc = divmod(i, k)
            w(f"A{i} = A[{rr}*bp:{rr + 1}*bp, {cc}*bq:{cc + 1}*bq]")
        for i in range(k * n):
            rr, cc = divmod(i, n)
            w(f"B{i} = B[{rr}*bq:{rr + 1}*bq, {cc}*br:{cc + 1}*br]")
        if needs_axpy_scratch(s_chains + t_chains + c_chains
                              + s_defs + t_defs + c_defs):
            w("_scr = ws.take_scratch(_dt.itemsize"
              " * max(bp * bq, bq * br, bp * br))")
        # allocating pairwise derives S/T chain dtypes from the operand
        # blocks (``A0 + A3``); the arena lowering must match it so mixed-
        # dtype inputs stay bit-for-bit equal.  write_once allocates its
        # chains in the result dtype on both paths already.
        if strategy == "pairwise":
            w("_dta = A.dtype")
            w("_dtb = B.dtype")
            dta, dtb = "_dta", "_dtb"
        else:
            dta = dtb = "_dt"
        for d in s_defs:
            wsb.extend(emit_chain(d, strategy, "(bp, bq)", arena=True,
                                  dtype_expr=dta))
        for d in t_defs:
            wsb.extend(emit_chain(d, strategy, "(bq, br)", arena=True,
                                  dtype_expr=dtb))
        # the M_r slab is taken once and lives until C assembly; per-rank
        # S/T views are marked/released inside the loop (Section 4.1's
        # stack discipline, adapted to the generated all-ranks-live C pass)
        w("_MM = ws.take((RANK, bp, br), _dt)")
        for r in range(R):
            w("_mk = ws.mark()")
            wsb.extend(emit_chain(s_chains[r], strategy, "(bp, bq)",
                                  arena=True, dtype_expr=dta))
            wsb.extend(emit_chain(t_chains[r], strategy, "(bq, br)",
                                  arena=True, dtype_expr=dtb))
            w(f"M{r} = _run_ws(S{r}, T{r}, steps - 1, base, _MM[{r}], ws)")
            w("ws.release(_mk)")
        w("")
        w("C = out if out is not None else np.empty((p, r), _dt)")
        for i in range(m * n):
            rr, cc = divmod(i, n)
            w(f"C{i} = C[{rr}*bp:{rr + 1}*bp, {cc}*br:{cc + 1}*br]")
        for d in c_defs:
            wsb.extend(emit_chain(d, strategy, "(bp, br)", arena=True))
        for i, ch in enumerate(c_chains):
            if not ch.terms:
                w(f"C{i}[:] = 0.0")
                continue
            wsb.extend(emit_chain(ch, strategy, "(bp, br)",
                                  into_view=f"C{i}", arena=True))
    w("ws.release(_lvl)")
    w("return C")

    emit("def _core_ws(A, B, steps, base, out, ws):")
    for line in wsb:
        emit(("    " + line) if line else "")
    emit("")
    return "\n".join(L)


def fingerprint(algorithm, strategy: str, cse: bool, pipe_scalars: bool = True) -> str:
    h = hashlib.sha1()
    for arr in (algorithm.U, algorithm.V, algorithm.W):
        h.update(np.ascontiguousarray(arr).tobytes())
    h.update(f"{algorithm.base_case}|{strategy}|{cse}|{pipe_scalars}".encode())
    return h.hexdigest()[:16]


def compile_algorithm(
    algorithm,
    strategy: str = "write_once",
    cse: bool = False,
    pipe_scalars: bool = True,
):
    """Generate + exec the specialized module; returns its ``multiply``.

    Modules are cached by content hash, so repeated calls are cheap.
    """
    key = fingerprint(algorithm, strategy, cse, pipe_scalars)
    mod = _MODULE_CACHE.get(key)
    if mod is None:
        with _compile_lock:
            mod = _MODULE_CACHE.get(key)
            if mod is None:
                src = generate_source(algorithm, strategy, cse, pipe_scalars)
                name = f"repro_generated_{algorithm.name}_{strategy}_{key}"
                mod = types.ModuleType(name)
                mod.__dict__["__file__"] = f"<generated {name}>"
                exec(compile(src, f"<generated {name}>", "exec"), mod.__dict__)
                _MODULE_CACHE[key] = mod
    return mod.multiply


def write_source(algorithm, path, strategy: str = "write_once",
                 cse: bool = False, pipe_scalars: bool = True) -> None:
    """Dump the generated module to ``path`` for inspection."""
    from pathlib import Path

    Path(path).write_text(generate_source(algorithm, strategy, cse, pipe_scalars))
