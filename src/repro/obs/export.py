"""Export formats for telemetry snapshots.

Three consumers, three shapes:

- :func:`prometheus_text` renders a snapshot in the Prometheus text
  exposition format (counters as ``*_total``, spans as
  ``*_seconds_count`` / ``*_seconds_sum`` pairs), so a scrape endpoint
  or the ``repro stats --format prom`` CLI can feed a real monitoring
  stack without any client library;
- :func:`save_snapshot` / :func:`load_snapshot` persist a snapshot as
  JSON, which is how telemetry crosses the process boundary between
  ``repro multiply --auto`` (which records) and a later ``repro stats``
  (which reads);
- :func:`summarize` digests a snapshot into the handful of numbers a
  human asks first (calls, plan-source mix, cache hit ratio, arena
  health, per-scheme span totals) -- the CLI's human renderer and the
  future serving layer's health endpoint both read this.

Like :mod:`repro.obs.telemetry`, stdlib-only: no imports from the rest
of ``repro``.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from pathlib import Path

from . import telemetry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

#: environment override for the cross-process snapshot file
SNAPSHOT_ENV = "REPRO_OBS_SNAPSHOT"


# ----------------------------------------------------------- prometheus
def _metric_name(name: str, suffix: str = "") -> str:
    # dots (our namespacing) become underscores; anything else exotic too
    return "repro_" + _NAME_RE.sub("_", name) + suffix


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _label_text(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_NAME_RE.sub("_", str(k))}="{_escape_label_value(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def prometheus_text(snap: dict | None = None) -> str:
    """Render a snapshot (default: the live registry) as Prometheus text.

    Counters become ``repro_<name>_total``, gauges ``repro_<name>``, and
    each span a ``_seconds_count`` / ``_seconds_sum`` pair plus a
    ``_seconds_max`` gauge.  Output is deterministically ordered and
    label values are escaped per the exposition format.
    """
    if snap is None:
        snap = telemetry.snapshot()
    lines: list[str] = []
    typed: set[str] = set()

    def emit(name: str, mtype: str, labels: dict, value) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {mtype}")
        lines.append(f"{name}{_label_text(labels)} {_fmt(value)}")

    for row in snap.get("counters", []):
        emit(_metric_name(row["name"], "_total"), "counter",
             row["labels"], row["value"])
    for row in snap.get("gauges", []):
        emit(_metric_name(row["name"]), "gauge", row["labels"], row["value"])
    for row in snap.get("spans", []):
        base = _metric_name(row["name"], "_seconds")
        emit(base + "_count", "counter", row["labels"], row["count"])
        emit(base + "_sum", "counter", row["labels"], row["total_s"])
        emit(base + "_max", "gauge", row["labels"], row["max_s"])
    return "\n".join(lines) + ("\n" if lines else "")


# ------------------------------------------------------- snapshot files
def default_snapshot_path() -> Path:
    """Where the cross-process snapshot lives: ``$REPRO_OBS_SNAPSHOT`` if
    set, else ``$XDG_CACHE_HOME``/``~/.cache`` ``/repro/obs_snapshot.json``
    (alongside the plan cache's conventions)."""
    env = os.environ.get(SNAPSHOT_ENV)
    if env:
        return Path(env).expanduser()
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base).expanduser() if base else Path.home() / ".cache"
    return root / "repro" / "obs_snapshot.json"


def save_snapshot(path: Path | str | None = None,
                  snap: dict | None = None) -> Path | None:
    """Write a snapshot (default: the live registry) as JSON.

    Atomic (temp file + rename) so a concurrent reader never sees a torn
    file.  Returns the path written, or ``None`` when the filesystem
    refuses -- telemetry must never take down the workload it observes.
    """
    if snap is None:
        snap = telemetry.snapshot()
    target = Path(path) if path is not None else default_snapshot_path()
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(target.parent),
                                   prefix=target.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(snap, fh, indent=2, sort_keys=True)
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return None
    return target


def load_snapshot(path: Path | str | None = None) -> dict | None:
    """Read a snapshot written by :func:`save_snapshot`; ``None`` when the
    file is missing, unreadable, or from an incompatible schema."""
    target = Path(path) if path is not None else default_snapshot_path()
    try:
        with open(target) as fh:
            snap = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(snap, dict):
        return None
    if snap.get("schema") != telemetry.SNAPSHOT_SCHEMA:
        return None
    return snap


# -------------------------------------------------------------- summary
def summarize(snap: dict | None = None) -> dict:
    """Digest a snapshot into the first-questions numbers.

    Returns ``{"calls", "sources", "cache_hit_ratio", "policy",
    "workspace", "guard", "span_totals", "gauges", "records"}``.  The cache hit
    ratio counts exact + nearest hits over non-trivial dispatches
    (trivial calls never consult the cache), ``None`` when nothing
    non-trivial ran.
    """
    if snap is None:
        snap = telemetry.snapshot()

    counters: dict[str, dict] = {}
    for row in snap.get("counters", []):
        counters.setdefault(row["name"], {})[
            tuple(sorted(row["labels"].items()))] = row["value"]

    def total(name: str) -> int:
        return sum(counters.get(name, {}).values())

    sources = {
        dict(labels).get("source", "?"): value
        for labels, value in counters.get("dispatch.source", {}).items()
    }
    calls = total("dispatch.calls")
    non_trivial = calls - sources.get("trivial", 0)
    hits = sources.get("cache", 0) + sources.get("nearest", 0)
    hit_ratio = (hits / non_trivial) if non_trivial > 0 else None

    policy = {
        dict(labels).get("kind", "?"): value
        for labels, value in counters.get("policy.choice", {}).items()
    }

    gauges = {
        (row["name"], tuple(sorted(row["labels"].items()))): row["value"]
        for row in snap.get("gauges", [])
    }

    workspace = {
        "arena_bytes": gauges.get(("workspace.arena_bytes", ()), None),
        "high_water": gauges.get(("workspace.high_water", ()), None),
        "max_mark_depth": gauges.get(("workspace.max_mark_depth", ()), None),
        "overflows": total("workspace.overflows"),
    }

    # resilience counters (repro.guard): zero-filled so callers can probe
    # without existence checks
    guard = {
        "fallbacks": {
            dict(labels).get("stage", "?"): value
            for labels, value in counters.get("guard.fallbacks", {}).items()
        },
        "failures": total("guard.failures"),
        "plan_failures": total("guard.plan_failures"),
        "quarantines": total("guard.quarantines"),
        "quarantine_skips": total("guard.quarantine_skips"),
        "rehabilitations": total("guard.rehabilitations"),
        "numeric_violations": total("guard.numeric_violations"),
        "watchdog_timeouts": total("guard.watchdog_timeouts"),
        "pool_rebuilds": total("guard.pool_rebuilds"),
        "cache_load_errors": total("cache.load_errors"),
        "cache_save_errors": total("cache.save_errors"),
        "task_retries": total("pool.task_retries"),
        "faults_fired": {
            dict(labels).get("point", "?"): value
            for labels, value in counters.get("faults.fired", {}).items()
        },
    }

    span_totals: list[dict] = []
    for row in snap.get("spans", []):
        span_totals.append({
            "name": row["name"],
            "labels": row["labels"],
            "count": row["count"],
            "total_s": row["total_s"],
        })
    span_totals.sort(key=lambda r: -r["total_s"])

    return {
        "calls": calls,
        "sources": sources,
        "cache_hit_ratio": hit_ratio,
        "policy": policy,
        "workspace": workspace,
        "guard": guard,
        "span_totals": span_totals,
        "gauges": [
            {"name": name, "labels": dict(labels), "value": value}
            for (name, labels), value in sorted(gauges.items())
        ],
        "records": snap.get("dispatch_records", []),
    }
