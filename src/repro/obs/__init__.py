"""repro.obs: unified telemetry for the tuner/arena/parallel stack.

Spans, counters, gauges, dispatch-record introspection, and export
formats (JSON snapshot, Prometheus text).  Off by default; enable with
:func:`enable` or ``REPRO_OBS=1``.  See :mod:`repro.obs.telemetry` for
the design notes (one-branch disabled path, zero repro-internal
dependencies).
"""

from .export import (
    SNAPSHOT_ENV,
    default_snapshot_path,
    load_snapshot,
    prometheus_text,
    save_snapshot,
    summarize,
)
from .telemetry import (
    DEFAULT_RING_SIZE,
    NULL_SPAN,
    SNAPSHOT_SCHEMA,
    active_spans,
    clock,
    clock_ns,
    counter_value,
    disable,
    dispatch_records,
    enable,
    enabled,
    gauge_value,
    incr,
    is_empty,
    record_dispatch,
    record_task,
    reset,
    ring_size,
    set_gauge,
    snapshot,
    span,
    span_stats,
)

__all__ = [
    "DEFAULT_RING_SIZE",
    "NULL_SPAN",
    "SNAPSHOT_ENV",
    "SNAPSHOT_SCHEMA",
    "active_spans",
    "clock",
    "clock_ns",
    "counter_value",
    "default_snapshot_path",
    "disable",
    "dispatch_records",
    "enable",
    "enabled",
    "gauge_value",
    "incr",
    "is_empty",
    "load_snapshot",
    "prometheus_text",
    "record_dispatch",
    "record_task",
    "reset",
    "ring_size",
    "save_snapshot",
    "set_gauge",
    "snapshot",
    "span",
    "span_stats",
    "summarize",
]
