"""Unified telemetry: spans, counters, gauges, and dispatch introspection.

The paper's whole argument is about *where the time goes* -- per-level
S/T/M traffic, scheme-dependent load balance, cache behaviour -- and the
runtime stack (``tuner.dispatch`` -> ``core.workspace`` ->
``parallel.schedules``) makes all of those decisions silently.  This
module is the one place they become visible: a process-wide, thread-safe
registry of

- **spans** -- nestable ``with span("dispatch.lookup"):`` timers on
  ``time.perf_counter_ns``, aggregated per (name, labels) into
  count/total/min/max;
- **counters** -- monotonic integers (``incr("dispatch.calls")``);
- **gauges** -- last-written floats (``set_gauge("workspace.arena_bytes",
  n)``);
- **dispatch records** -- a bounded ring buffer of the last N per-call
  records ``tuner.dispatch`` emits (plan source, chosen plan, seconds,
  effective GFLOPS, arena health), the raw stream a serving layer's
  per-request telemetry will read;
- **task events** -- the ``(worker, label, start, stop)`` stream the
  parallel schedules' tracing pool produces
  (:mod:`repro.parallel.trace` feeds :func:`record_task`), aggregated
  into per-label spans and per-worker busy counters so load imbalance is
  observable without holding raw event lists.

Telemetry is **off by default** and the disabled path is deliberately
one branch: every recording entry point starts with ``if not _enabled:
return`` (``span`` returns a shared no-op context manager), so an
uninstrumented production dispatch pays a single predictable-taken
branch per call site -- the CI overhead gate
(``benchmarks/bench_obs.py``) holds the *enabled* warm-dispatch path to
<= 3% and the disabled path is far below measurement noise.

Zero dependencies by design: this module imports nothing from the rest
of ``repro`` (stdlib only), so every layer -- including
``core.workspace`` at the bottom of the stack -- may import it without
cycles.

Enable with :func:`enable` (or ``REPRO_OBS=1`` in the environment), read
with :func:`snapshot` (JSON-ready) and the :mod:`repro.obs.export`
formatters, clear with :func:`reset`.
"""

from __future__ import annotations

import collections
import os
import threading
import time

#: dispatch records retained by default (override via ``enable(ring_size=)``)
DEFAULT_RING_SIZE = 256

#: the one branch the disabled hot path pays (module global, read without
#: a lock: stale reads cost at most one dropped or extra sample around an
#: enable()/disable() edge, never corruption)
_enabled = False

_lock = threading.Lock()
_local = threading.local()


# ---------------------------------------------------------------- clock
def clock_ns() -> int:
    """The shared telemetry clock: monotonic integer nanoseconds."""
    return time.perf_counter_ns()


def clock() -> float:
    """The shared clock in float seconds (same origin as :func:`clock_ns`);
    :mod:`repro.parallel.trace` timestamps its task events with this so
    every timing stream in the process is mutually comparable."""
    return time.perf_counter_ns() * 1e-9


# ------------------------------------------------------------- registry
def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _SpanStat:
    __slots__ = ("count", "total_ns", "min_ns", "max_ns")

    def __init__(self) -> None:
        self.count = 0
        self.total_ns = 0
        self.min_ns: int | None = None
        self.max_ns = 0

    def add(self, dt_ns: int) -> None:
        self.count += 1
        self.total_ns += dt_ns
        if self.min_ns is None or dt_ns < self.min_ns:
            self.min_ns = dt_ns
        if dt_ns > self.max_ns:
            self.max_ns = dt_ns


#: (name, labels) -> value; plain dicts guarded by the module lock
_counters: dict[tuple[str, tuple], int] = {}
_gauges: dict[tuple[str, tuple], float] = {}
_spans: dict[tuple[str, tuple], _SpanStat] = {}
_dispatch_ring: collections.deque = collections.deque(maxlen=DEFAULT_RING_SIZE)


# ---------------------------------------------------------------- spans
class _NullSpan:
    """Shared do-nothing context manager: what ``span`` hands out while
    telemetry is disabled, so the disabled call site costs one branch and
    one attribute load, never an allocation."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("_key", "_t0")

    def __init__(self, key: tuple[str, tuple]):
        self._key = key
        self._t0 = 0

    def __enter__(self) -> "_Span":
        stack = getattr(_local, "stack", None)
        if stack is None:
            stack = _local.stack = []
        stack.append(self._key[0])
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        dt = time.perf_counter_ns() - self._t0
        try:
            _local.stack.pop()
        except (AttributeError, IndexError):  # pragma: no cover - defensive
            pass
        with _lock:
            stat = _spans.get(self._key)
            if stat is None:
                stat = _spans[self._key] = _SpanStat()
            stat.add(dt)
        return False


def span(name: str, **labels):
    """A nestable timing context manager (no-op while disabled).

    Spans aggregate per ``(name, labels)``: count, total, min and max
    nanoseconds.  Nesting is unrestricted -- each level times itself --
    and the per-thread nesting stack is visible via :func:`active_spans`.
    """
    if not _enabled:
        return NULL_SPAN
    return _Span((name, _label_key(labels)))


def active_spans() -> tuple[str, ...]:
    """The calling thread's current span-nesting stack, outermost first."""
    return tuple(getattr(_local, "stack", ()))


# ---------------------------------------------------- counters / gauges
def incr(name: str, value: int = 1, **labels) -> None:
    """Add ``value`` to a monotonic counter (no-op while disabled)."""
    if not _enabled:
        return
    key = (name, _label_key(labels))
    with _lock:
        _counters[key] = _counters.get(key, 0) + int(value)


def set_gauge(name: str, value: float, **labels) -> None:
    """Set a last-value-wins gauge (no-op while disabled)."""
    if not _enabled:
        return
    key = (name, _label_key(labels))
    with _lock:
        _gauges[key] = float(value)


def counter_value(name: str, **labels) -> int:
    """Current value of one counter (0 when never incremented)."""
    with _lock:
        return _counters.get((name, _label_key(labels)), 0)


def gauge_value(name: str, **labels) -> float | None:
    """Current value of one gauge (``None`` when never set)."""
    with _lock:
        return _gauges.get((name, _label_key(labels)))


def span_stats(name: str, **labels) -> dict | None:
    """Aggregated stats of one span as a dict (``None`` when never entered)."""
    with _lock:
        stat = _spans.get((name, _label_key(labels)))
        if stat is None:
            return None
        return {
            "count": stat.count,
            "total_s": stat.total_ns * 1e-9,
            "min_s": (stat.min_ns or 0) * 1e-9,
            "max_s": stat.max_ns * 1e-9,
        }


# ------------------------------------------------------ dispatch records
def record_dispatch(record: dict) -> None:
    """Append one per-call dispatch record to the ring buffer (no-op while
    disabled).  The record is whatever JSON-ready dict the dispatcher
    built; the ring keeps the newest :data:`DEFAULT_RING_SIZE` (or the
    size passed to :func:`enable`)."""
    if not _enabled:
        return
    with _lock:
        _dispatch_ring.append(record)


def dispatch_records() -> list[dict]:
    """The retained dispatch records, oldest first."""
    with _lock:
        return list(_dispatch_ring)


# ----------------------------------------------------------- task events
def record_task(worker: str, label: str, start_s: float, stop_s: float) -> None:
    """Fold one pool task event into the registry (no-op while disabled).

    This is the schedules' task stream -- :class:`repro.parallel.trace.
    TracedPool` forwards every event it captures -- aggregated as a span
    ``task.<label>`` plus per-worker busy-time counters, so per-scheme
    task totals and load balance are readable from a snapshot without
    retaining raw event lists.
    """
    if not _enabled:
        return
    dt_ns = max(0, int(round((stop_s - start_s) * 1e9)))
    skey = ("task." + label, ())
    ckey = ("task.events", (("worker", str(worker)),))
    bkey = ("task.busy_ns", (("worker", str(worker)),))
    with _lock:
        stat = _spans.get(skey)
        if stat is None:
            stat = _spans[skey] = _SpanStat()
        stat.add(dt_ns)
        _counters[ckey] = _counters.get(ckey, 0) + 1
        _counters[bkey] = _counters.get(bkey, 0) + dt_ns


# ----------------------------------------------------------- lifecycle
def enabled() -> bool:
    """Whether telemetry is currently recording."""
    return _enabled


def enable(ring_size: int | None = None) -> None:
    """Turn recording on (idempotent).  ``ring_size`` bounds the dispatch
    ring buffer; passing one resizes it, keeping the newest records."""
    global _enabled, _dispatch_ring
    with _lock:
        if ring_size is not None and ring_size != _dispatch_ring.maxlen:
            _dispatch_ring = collections.deque(
                _dispatch_ring, maxlen=max(1, int(ring_size))
            )
        _enabled = True


def disable() -> None:
    """Stop recording.  Accumulated data is kept (read it, or ``reset``)."""
    global _enabled
    _enabled = False


def reset() -> None:
    """Drop every counter, gauge, span aggregate and dispatch record."""
    with _lock:
        _counters.clear()
        _gauges.clear()
        _spans.clear()
        _dispatch_ring.clear()


def ring_size() -> int:
    """Current dispatch-ring capacity."""
    return _dispatch_ring.maxlen or DEFAULT_RING_SIZE


# ------------------------------------------------------------- snapshot
#: bump when the snapshot layout changes incompatibly (mirrors the plan
#: cache's discipline: a consumer must be able to refuse foreign layouts)
SNAPSHOT_SCHEMA = 1


def _metric_rows(table: dict) -> list[dict]:
    return [
        {"name": name, "labels": dict(labels), "value": value}
        for (name, labels), value in sorted(table.items())
    ]


def snapshot(reset_after: bool = False) -> dict:
    """The whole registry as one JSON-ready dict.

    Structured (lists of ``{name, labels, value}`` rows) rather than
    flattened strings, so the Prometheus formatter and the serving layer
    can consume labels without parsing.  ``reset_after=True`` atomically
    clears the registry under the same lock, so a scrape-and-reset
    consumer never loses samples recorded between the two steps.
    """
    with _lock:
        snap = {
            "schema": SNAPSHOT_SCHEMA,
            "enabled": _enabled,
            "counters": _metric_rows(_counters),
            "gauges": _metric_rows(_gauges),
            "spans": [
                {
                    "name": name,
                    "labels": dict(labels),
                    "count": stat.count,
                    "total_s": stat.total_ns * 1e-9,
                    "min_s": (stat.min_ns or 0) * 1e-9,
                    "max_s": stat.max_ns * 1e-9,
                }
                for (name, labels), stat in sorted(
                    _spans.items(), key=lambda kv: kv[0]
                )
            ],
            "dispatch_records": list(_dispatch_ring),
        }
        if reset_after:
            _counters.clear()
            _gauges.clear()
            _spans.clear()
            _dispatch_ring.clear()
    return snap


def is_empty(snap: dict | None = None) -> bool:
    """Whether a snapshot (default: the live registry) holds any data."""
    if snap is None:
        snap = snapshot()
    return not (snap.get("counters") or snap.get("gauges")
                or snap.get("spans") or snap.get("dispatch_records"))


# honor the environment at import: REPRO_OBS=1 (anything but ""/"0") turns
# recording on for the whole process, the zero-code-change way to observe
# an existing workload
if os.environ.get("REPRO_OBS", "").strip() not in ("", "0"):
    enable()
