"""Search for *discrete* exact decompositions (sparse factors).

Dense float factors are exact but addition-heavy; the paper's performance
hinges on factor sparsity (Section 2.3's secondary metric).  This driver
re-runs multi-start ALS and pushes every converged solution through an
attraction ladder (Smirnov-style regularization toward a small grid) plus
rounding/repair until a fully discrete exact solution appears; the
sparsest one wins and replaces the data file if it improves on it.

Usage: python scripts/discrete_search.py s233 900   # target, deadline sec
"""

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import tensor as tz
from repro.core.algorithm import FastAlgorithm
from repro.search.als import AlsOptions, als
from repro.search.sparsify import discretize
from repro.search.driver import SearchOutcome, save_outcome
from repro.util.rng import spawn_rngs

DATA = Path(__file__).resolve().parent.parent / "src/repro/algorithms/data"
GRID = (0.0, 0.5, 1.0, 2.0)

TARGETS = {
    "s233": (2, 3, 3, 15),
    "s234": (2, 3, 4, 20),
    "s244": (2, 4, 4, 26),
    "s334": (3, 3, 4, 29),
}


def attraction_ladder(T, R, U, V, W, seed=0):
    aw = 3e-3
    for phase in range(6):
        opts = AlsOptions(
            max_sweeps=500, attract=True, attract_start=0, attract_weight=aw,
            attract_grid=GRID, reg_init=1e-9, reg_final=1e-12,
            stall_sweeps=10**9,
        )
        res = als(T, R, options=opts, init=(U, V, W))
        U, V, W = res.U, res.V, res.W
        trip = discretize(T, U, V, W, grid=GRID)
        if trip is not None:
            return trip
        aw *= 2.2
    return None


def run(stem: str, deadline: float) -> None:
    m, k, n, R = TARGETS[stem]
    T = tz.matmul_tensor(m, k, n)
    path = DATA / f"{stem}.json"
    best_nnz = None
    if path.exists():
        d = json.loads(path.read_text())
        cur = FastAlgorithm.from_dict(d)
        if not cur.apa and d.get("discrete"):
            best_nnz = sum(cur.nnz())
    opts = AlsOptions(max_sweeps=1800)
    polish = AlsOptions(max_sweeps=1200, attract=False, reg_init=1e-6,
                        reg_final=1e-13, stall_sweeps=400)
    t0 = time.time()
    rngs = spawn_rngs(4000, seed=1234 + R)
    found = 0
    for i, g in enumerate(rngs):
        if time.time() - t0 > deadline:
            break
        r1 = als(T, R, rng=g, options=opts)
        if r1.rel_residual > 1e-2:
            continue
        r2 = als(T, R, rng=g, options=polish, init=(r1.U, r1.V, r1.W))
        if r2.rel_residual > 1e-9:
            continue
        trip = attraction_ladder(T, R, r2.U, r2.V, r2.W)
        if trip is None:
            continue
        Ud, Vd, Wd = trip
        rel = tz.residual(T, Ud, Vd, Wd)
        if rel > 1e-9:
            continue
        nnz = sum(int(np.count_nonzero(x)) for x in trip)
        found += 1
        print(f"[{stem}] start {i}: discrete! nnz={nnz} resid={rel:.1e}",
              flush=True)
        if best_nnz is None or nnz < best_nnz:
            best_nnz = nnz
            out = SearchOutcome(m, k, n, R, Ud, Vd, Wd, float(rel),
                                exact=True, discrete=True,
                                starts_used=i + 1, seed=1234 + R)
            save_outcome(out, path)
            print(f"[{stem}] saved with nnz={nnz}", flush=True)
    print(f"[{stem}] done: {found} discrete solutions, best nnz={best_nnz}",
          flush=True)


if __name__ == "__main__":
    stem = sys.argv[1]
    deadline = float(sys.argv[2]) if len(sys.argv) > 2 else 600.0
    run(stem, deadline)
