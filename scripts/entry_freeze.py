"""Entry-by-entry freezing discretization (third-generation discretizer).

The all-at-once grid attraction (``discrete_search2.py``) cracked
``<3,3,3>`` but plateaus on the dense ``<2,3,3>/<2,3,4>/<2,4,4>``
solutions.  This script discretizes *one entry at a time*: from an exact
dense solution, repeatedly pick the free U entry closest to the grid,
freeze it to its rounded value, and re-solve all remaining free entries
by masked alternating least squares (rows of U solve independent masked
LS problems; V and W stay fully free and compensate).  When U is fully
discrete, repeat for V; W is then determined by one linear solve.

Greedy order + short re-polish makes each freeze a small perturbation,
so the iterate never leaves the exact manifold unless the rounded value
is infeasible — in which case we abort the start and try the next basin.

Usage: python scripts/entry_freeze.py s233 1200
"""

import sys
import time

import numpy as np

from repro.core import tensor as tz
from repro.search.als import AlsOptions, als
from repro.search.driver import SearchOutcome, save_outcome
from repro.search.sparsify import normalize_columns, round_to_grid
from repro.util.rng import spawn_rngs
from scripts.discrete_search2 import DATA, TARGETS  # reuse target table

GRID = (0.0, 0.5, 1.0, 2.0)


def _grid_vals(grid=GRID):
    return np.array(sorted({g for g in grid} | {-g for g in grid}))


def _masked_row_solve(KR, rhs, frozen_vals, mask_row):
    """LS-solve one factor row with ``mask_row`` entries pinned."""
    free = ~mask_row
    if not free.any():
        return frozen_vals
    resid = rhs - KR[:, mask_row] @ frozen_vals[mask_row]
    sol, *_ = np.linalg.lstsq(KR[:, free], resid, rcond=None)
    out = frozen_vals.copy()
    out[free] = sol
    return out


def _polish(T, U, V, W, maskU, maskV, sweeps):
    """ALS sweeps respecting the frozen masks on U and V (W always free)."""
    T0, T1, T2 = (tz.unfold(T, i) for i in range(3))
    for _ in range(sweeps):
        KR = tz.khatri_rao(V, W)
        for i in range(U.shape[0]):
            U[i] = _masked_row_solve(KR, T0[i], U[i], maskU[i])
        KR = tz.khatri_rao(U, W)
        for j in range(V.shape[0]):
            V[j] = _masked_row_solve(KR, T1[j], V[j], maskV[j])
        KR = tz.khatri_rao(U, V)
        W = np.linalg.lstsq(KR, T2.T, rcond=None)[0].T
    return U, V, W


def _freeze_factor(T, U, V, W, which, maskU, maskV,
                   tol=1e-8, polish_sweeps=25, verbose=False):
    """Freeze every entry of one factor; returns updated triple or None."""
    F, mask = (U, maskU) if which == "U" else (V, maskV)
    vals = _grid_vals()
    while not mask.all():
        # pick the free entry closest to the grid (ties: smallest |value|)
        dist = np.abs(F[..., None] - vals).min(axis=-1)
        dist[mask] = np.inf
        i, j = np.unravel_index(int(np.argmin(dist)), F.shape)
        F[i, j] = vals[int(np.argmin(np.abs(F[i, j] - vals)))]
        mask[i, j] = True
        U, V, W = _polish(T, U, V, W, maskU, maskV, polish_sweeps)
        r = tz.residual(T, U, V, W)
        if r > tol:
            # one longer rescue polish before giving up on this start
            U, V, W = _polish(T, U, V, W, maskU, maskV, 6 * polish_sweeps)
            r = tz.residual(T, U, V, W)
            if r > tol:
                if verbose:
                    done = int(mask.sum())
                    print(f"    {which}[{i},{j}] infeasible at "
                          f"{done}/{mask.size} (resid {r:.1e})", flush=True)
                return None
    return U, V, W


def try_one(T, U, V, W, verbose=False):
    U, V, W = normalize_columns(U, V, W)
    U, V, W = (np.array(x) for x in (U, V, W))
    maskU = np.zeros(U.shape, bool)
    maskV = np.zeros(V.shape, bool)
    got = _freeze_factor(T, U, V, W, "U", maskU, maskV, verbose=verbose)
    if got is None:
        return None
    U, V, W = got
    got = _freeze_factor(T, U, V, W, "V", maskU, maskV, verbose=verbose)
    if got is None:
        return None
    U, V, W = got
    # W is linear now: solve exactly, then try rounding it too
    KR = tz.khatri_rao(U, V)
    W = np.linalg.lstsq(KR, tz.unfold(T, 2).T, rcond=None)[0].T
    Wr = round_to_grid(W, GRID)
    if tz.residual(T, U, V, Wr) <= 1e-9:
        return U, V, Wr
    if tz.residual(T, U, V, W) <= 1e-9:
        return U, V, W
    return None


def run(stem: str, deadline: float, seed_base: int = 4242) -> None:
    m, k, n, R = TARGETS[stem]
    T = tz.matmul_tensor(m, k, n)
    path = DATA / f"{stem}.json"
    import json

    best_nnz = None
    if path.exists():
        d = json.loads(path.read_text())
        if d.get("discrete"):
            best_nnz = sum(int(np.count_nonzero(np.array(d[key])))
                           for key in "UVW")

    opts = AlsOptions(max_sweeps=1800)
    polish = AlsOptions(max_sweeps=1200, attract=False, reg_init=1e-6,
                        reg_final=1e-13, stall_sweeps=400)
    t0 = time.time()
    for i, g in enumerate(spawn_rngs(4000, seed=seed_base + R)):
        if time.time() - t0 > deadline:
            break
        r1 = als(T, R, rng=g, options=opts)
        if r1.rel_residual > 1e-2:
            continue
        r2 = als(T, R, rng=g, options=polish, init=(r1.U, r1.V, r1.W))
        if r2.rel_residual > 1e-9:
            continue
        trip = try_one(T, r2.U, r2.V, r2.W, verbose=True)
        if trip is None:
            print(f"[{stem}] start {i}: exact, freeze failed", flush=True)
            continue
        Ud, Vd, Wd = trip
        rel = tz.residual(T, Ud, Vd, Wd)
        nnz = sum(int(np.count_nonzero(x)) for x in trip)
        print(f"[{stem}] start {i}: DISCRETE nnz={nnz} resid={rel:.1e}",
              flush=True)
        if best_nnz is None or nnz < best_nnz:
            best_nnz = nnz
            out = SearchOutcome(m, k, n, R, Ud, Vd, Wd, float(rel),
                                exact=True, discrete=True,
                                starts_used=i + 1, seed=seed_base + R)
            save_outcome(out, path)
            print(f"[{stem}] saved nnz={nnz}", flush=True)
    print(f"[{stem}] done, best nnz={best_nnz}", flush=True)


if __name__ == "__main__":
    run(sys.argv[1], float(sys.argv[2]) if len(sys.argv) > 2 else 600.0)
