"""Improve the APA (border-rank) decompositions by long ALS descents.

Below the exact rank the residual cannot reach zero, but on border-rank
targets it decays slowly as factor entries grow ~1/lambda -- the longer the
descent, the better the approximate algorithm.  We run a few starts with
many sweeps, negligible regularization and no stall cutoff, and keep the
best residual.

Usage: python scripts/apa_search.py bini322 600
"""

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import tensor as tz
from repro.search.als import AlsOptions, als
from repro.search.driver import SearchOutcome, save_outcome
from repro.util.rng import spawn_rngs

DATA = Path(__file__).resolve().parent.parent / "src/repro/algorithms/data"

TARGETS = {
    "bini322": (3, 2, 2, 10),
    "schonhage333": (3, 3, 3, 21),
}


def run(stem: str, deadline: float) -> None:
    m, k, n, R = TARGETS[stem]
    T = tz.matmul_tensor(m, k, n)
    path = DATA / f"{stem}.json"
    best = np.inf
    if path.exists():
        best = json.loads(path.read_text()).get("rel_residual", np.inf)
    print(f"[{stem}] current best rel residual: {best:.3e}", flush=True)
    # phase 1 with attraction finds good basins (empirically the slow
    # annealing + discreteness pull avoids the worst local minima); phase 2
    # releases the bias and descends the border-rank valley
    explore = AlsOptions(max_sweeps=4000)
    polish = AlsOptions(
        max_sweeps=20000, attract=False, reg_init=1e-8, reg_final=1e-14,
        stall_sweeps=8000, stall_rtol=1e-6, tol=1e-13,
    )
    t0 = time.time()
    for i, g in enumerate(spawn_rngs(64, seed=777 + R)):
        if time.time() - t0 > deadline:
            break
        res = als(T, R, rng=g, options=explore)
        res = als(T, R, rng=g, options=polish, init=(res.U, res.V, res.W))
        print(f"[{stem}] start {i}: rel={res.rel_residual:.3e} "
              f"sweeps={res.sweeps}", flush=True)
        if res.rel_residual < best:
            best = res.rel_residual
            from repro.search.sparsify import normalize_columns

            U, V, W = normalize_columns(res.U, res.V, res.W)
            out = SearchOutcome(m, k, n, R, U, V, W, float(res.rel_residual),
                                exact=False, discrete=False,
                                starts_used=i + 1, seed=777 + R)
            save_outcome(out, path)
            print(f"[{stem}] saved rel={best:.3e}", flush=True)
    print(f"[{stem}] done, best {best:.3e}", flush=True)


if __name__ == "__main__":
    stem = sys.argv[1]
    deadline = float(sys.argv[2]) if len(sys.argv) > 2 else 600.0
    run(stem, deadline)
