#!/bin/sh
# Local mirror of the CI `analyze` job: the repro.analyze suite always
# runs (it needs only numpy); ruff/mypy run when installed and are
# skipped otherwise, so the script works in offline containers that
# bake in only the numeric toolchain.
set -eu
cd "$(dirname "$0")/.."

echo "== repro analyze --all =="
PYTHONPATH=src python -m repro analyze --all

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests benchmarks scripts examples
else
    echo "== ruff not installed; skipped (CI pins ruff==0.5.7) =="
fi

if command -v mypy >/dev/null 2>&1; then
    echo "== mypy (advisory) =="
    mypy || echo "mypy reported issues (non-blocking, matching CI)"
else
    echo "== mypy not installed; skipped (CI pins mypy==1.11.1) =="
fi
