"""Build Laderman's <3,3,3> rank-23 decomposition and verify it exactly.

The product/combination structure below is Laderman's 1976 algorithm; the
transcription was validated by deriving each C-combination from the
product list via the group-cancellation structure (the m6-m9 / m12-m15 /
m16-m18 corner groups) and confirming ``residual == 0`` against the exact
matmul tensor.  Should a future edit reintroduce an error, the ALS repair
below converges back to an exact solution from any near-correct seed, and
``discretize`` snaps it to integers.  The verified result is what ships in
``repro/algorithms/data/s333.json``.
"""

import numpy as np

from repro.core import tensor as tz
from repro.search.als import AlsOptions, als
from repro.search.sparsify import discretize
from repro.search.driver import SearchOutcome, save_outcome


def idx(i, j, ncols=3):
    return (i - 1) * ncols + (j - 1)


def col(terms, size):
    c = np.zeros(size)
    for coef, (i, j) in terms:
        c[idx(i, j)] = coef
    return c


A = lambda *t: t  # noqa: E731


def build():
    # products: (A-terms, B-terms)
    prods = [
        # m1  (note the A-side orientation: row-1 terms positive)
        ([(1, (1, 1)), (1, (1, 2)), (1, (1, 3)), (-1, (2, 1)), (-1, (2, 2)),
          (-1, (3, 2)), (-1, (3, 3))], [(1, (2, 2))]),
        # m2
        ([(1, (1, 1)), (-1, (2, 1))], [(-1, (1, 2)), (1, (2, 2))]),
        # m3
        ([(1, (2, 2))], [(-1, (1, 1)), (1, (1, 2)), (1, (2, 1)), (-1, (2, 2)),
                         (-1, (2, 3)), (-1, (3, 1)), (1, (3, 3))]),
        # m4
        ([(-1, (1, 1)), (1, (2, 1)), (1, (2, 2))],
         [(1, (1, 1)), (-1, (1, 2)), (1, (2, 2))]),
        # m5
        ([(1, (2, 1)), (1, (2, 2))], [(-1, (1, 1)), (1, (1, 2))]),
        # m6
        ([(1, (1, 1))], [(1, (1, 1))]),
        # m7
        ([(-1, (1, 1)), (1, (3, 1)), (1, (3, 2))],
         [(1, (1, 1)), (-1, (1, 3)), (1, (2, 3))]),
        # m8
        ([(-1, (1, 1)), (1, (3, 1))], [(1, (1, 3)), (-1, (2, 3))]),
        # m9
        ([(1, (3, 1)), (1, (3, 2))], [(-1, (1, 1)), (1, (1, 3))]),
        # m10
        ([(1, (1, 1)), (1, (1, 2)), (1, (1, 3)), (-1, (2, 2)), (-1, (2, 3)),
          (-1, (3, 1)), (-1, (3, 2))], [(1, (2, 3))]),
        # m11
        ([(1, (3, 2))], [(-1, (1, 1)), (1, (1, 3)), (1, (2, 1)), (-1, (2, 2)),
                         (-1, (2, 3)), (-1, (3, 1)), (1, (3, 2))]),
        # m12
        ([(-1, (1, 3)), (1, (3, 2)), (1, (3, 3))],
         [(1, (2, 2)), (1, (3, 1)), (-1, (3, 2))]),
        # m13
        ([(1, (1, 3)), (-1, (3, 3))], [(1, (2, 2)), (-1, (3, 2))]),
        # m14
        ([(1, (1, 3))], [(1, (3, 1))]),
        # m15
        ([(1, (3, 2)), (1, (3, 3))], [(-1, (3, 1)), (1, (3, 2))]),
        # m16
        ([(-1, (1, 3)), (1, (2, 2)), (1, (2, 3))],
         [(1, (2, 3)), (1, (3, 1)), (-1, (3, 3))]),
        # m17
        ([(1, (1, 3)), (-1, (2, 3))], [(1, (2, 3)), (-1, (3, 3))]),
        # m18
        ([(1, (2, 2)), (1, (2, 3))], [(-1, (3, 1)), (1, (3, 3))]),
        # m19
        ([(1, (1, 2))], [(1, (2, 1))]),
        # m20
        ([(1, (2, 3))], [(1, (3, 2))]),
        # m21
        ([(1, (2, 1))], [(1, (1, 3))]),
        # m22
        ([(1, (3, 1))], [(1, (1, 2))]),
        # m23
        ([(1, (3, 3))], [(1, (3, 3))]),
    ]
    combos = {
        (1, 1): [6, 14, 19],
        (1, 2): [1, 4, 5, 6, 12, 14, 15],
        (1, 3): [6, 7, 9, 10, 14, 16, 18],
        (2, 1): [2, 3, 4, 6, 14, 16, 17],
        (2, 2): [2, 4, 5, 6, 20],
        (2, 3): [14, 16, 17, 18, 21],
        (3, 1): [6, 7, 8, 11, 12, 13, 14],
        (3, 2): [12, 13, 14, 15, 22],
        (3, 3): [6, 7, 8, 9, 23],
    }
    U = np.zeros((9, 23))
    V = np.zeros((9, 23))
    W = np.zeros((9, 23))
    for r, (at, bt) in enumerate(prods):
        U[:, r] = col(at, 9)
        V[:, r] = col(bt, 9)
    for (i, j), ms in combos.items():
        for mnum in ms:
            W[idx(i, j), mnum - 1] = 1.0
    return U, V, W


def main():
    T = tz.matmul_tensor(3, 3, 3)
    U, V, W = build()
    r0 = tz.residual(T, U, V, W)
    print(f"seed residual: {r0:.3e}  (0 would mean perfect recall)")
    if r0 > 1e-9:
        opts = AlsOptions(max_sweeps=6000, attract=False, reg_init=1e-4,
                          reg_final=1e-14, stall_sweeps=3000, stall_rtol=1e-7)
        res = als(T, 23, init=(U, V, W), options=opts)
        print(f"after ALS repair: rel={res.rel_residual:.3e} sweeps={res.sweeps}")
        U, V, W = res.U, res.V, res.W
    trip = discretize(T, U, V, W, grid=(0.0, 0.5, 1.0, 2.0))
    if trip is None:
        print("discretization failed")
        return 1
    Ud, Vd, Wd = trip
    rel = tz.residual(T, Ud, Vd, Wd)
    print(f"discrete residual: {rel:.3e}")
    out = SearchOutcome(3, 3, 3, 23, Ud, Vd, Wd, rel, exact=rel < 1e-9,
                        discrete=True, starts_used=1, seed=-1)
    save_outcome(out, "src/repro/algorithms/data/s333.json")
    print("saved src/repro/algorithms/data/s333.json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
