"""Sequential-freezing discrete search (the flow that cracked <3,3,3>:23).

Instead of attracting all three factors at once (which drifts off the
exact manifold), discretize them one at a time:

1. from a converged exact (dense) solution, run ALS with attraction on U
   *only* -- V and W stay free and compensate, so U can migrate to the grid
   without losing exactness;
2. hard-round U, freeze it, and re-solve V,W by plain alternating least
   squares (biconvex; converges to an exact pair when rounded-U is
   feasible);
3. repeat the attraction/round/freeze for V (W still compensating);
4. the final W solve is a linear problem: exact solution, then rounding
   with verification.

Usage: python scripts/discrete_search2.py s233 600
"""

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import tensor as tz
from repro.core.algorithm import FastAlgorithm
from repro.search.als import AlsOptions, als
from repro.search.sparsify import round_to_grid
from repro.search.driver import SearchOutcome, save_outcome
from repro.util.rng import spawn_rngs

DATA = Path(__file__).resolve().parent.parent / "src/repro/algorithms/data"
GRID = (0.0, 0.5, 1.0, 2.0)

TARGETS = {
    "s233": (2, 3, 3, 15),
    "s234": (2, 3, 4, 20),
    "s244": (2, 4, 4, 26),
    "s334": (3, 3, 4, 29),
    "s344": (3, 4, 4, 38),
}


def _solve(unf, A, B, reg=1e-12):
    KR = tz.khatri_rao(A, B)
    G = KR.T @ KR + reg * np.eye(KR.shape[1])
    return np.linalg.solve(G, KR.T @ unf.T).T


def _attract_one(T, which, U, V, W, sweeps=1200, aw0=2e-3, grid=GRID):
    """ALS sweeps with discreteness attraction on a single factor."""
    T0, T1, T2 = (tz.unfold(T, i) for i in range(3))
    aw = aw0
    for it in range(sweeps):
        if it and it % 200 == 0:
            aw = min(aw * 1.8, 8e-2)
        # U update
        KR = tz.khatri_rao(V, W)
        G = KR.T @ KR
        rhs = KR.T @ T0.T
        if which == "U":
            tgt = round_to_grid(U, grid)
            U = np.linalg.solve(G + aw * np.eye(G.shape[0]),
                                rhs + aw * tgt.T).T
        else:
            U = np.linalg.solve(G + 1e-12 * np.eye(G.shape[0]), rhs).T
        # V update
        KR = tz.khatri_rao(U, W)
        G = KR.T @ KR
        rhs = KR.T @ T1.T
        if which == "V":
            tgt = round_to_grid(V, grid)
            V = np.linalg.solve(G + aw * np.eye(G.shape[0]),
                                rhs + aw * tgt.T).T
        else:
            V = np.linalg.solve(G + 1e-12 * np.eye(G.shape[0]), rhs).T
        # W update (never attracted here; solved last)
        KR = tz.khatri_rao(U, V)
        G = KR.T @ KR
        rhs = KR.T @ T2.T
        W = np.linalg.solve(G + 1e-12 * np.eye(G.shape[0]), rhs).T
    return U, V, W


def _alternate_fixed_U(T, U, V, W, sweeps=2500):
    T1, T2 = tz.unfold(T, 1), tz.unfold(T, 2)
    for _ in range(sweeps):
        V = _solve(T1, U, W)
        W = _solve(T2, U, V)
    return V, W


def try_one(T, R, U, V, W, grid=GRID):
    """One pass of the sequential-freezing pipeline; returns triple or None."""
    # stage 1: drive U to the grid, then freeze
    U, V, W = _attract_one(T, "U", U, V, W)
    Ur = round_to_grid(U, grid)
    V, W = _alternate_fixed_U(T, Ur, V, W)
    if tz.residual(T, Ur, V, W) > 1e-8:
        return None
    # stage 2: drive V to the grid with U frozen
    T1, T2 = tz.unfold(T, 1), tz.unfold(T, 2)
    aw = 2e-3
    for it in range(2500):
        if it and it % 250 == 0:
            aw = min(aw * 1.8, 1e-1)
        KR = tz.khatri_rao(Ur, W)
        G = KR.T @ KR
        V = np.linalg.solve(G + aw * np.eye(G.shape[0]),
                            KR.T @ T1.T + aw * round_to_grid(V, grid).T).T
        W = _solve(T2, Ur, V)
    Vr = round_to_grid(V, grid)
    W = _solve(T2, Ur, Vr)
    if tz.residual(T, Ur, Vr, W) > 1e-8:
        return None
    # stage 3: W is now determined linearly; round with verification
    Wr = round_to_grid(W, grid)
    if tz.residual(T, Ur, Vr, Wr) <= 1e-9:
        return Ur, Vr, Wr
    # accept exact rational W even if off-grid
    if tz.residual(T, Ur, Vr, W) <= 1e-9:
        return Ur, Vr, W
    return None


def run(stem: str, deadline: float) -> None:
    m, k, n, R = TARGETS[stem]
    T = tz.matmul_tensor(m, k, n)
    path = DATA / f"{stem}.json"
    best_nnz = None
    if path.exists():
        d = json.loads(path.read_text())
        cur = FastAlgorithm.from_dict(d)
        if not cur.apa and d.get("discrete"):
            best_nnz = sum(cur.nnz())

    opts = AlsOptions(max_sweeps=1800)
    polish = AlsOptions(max_sweeps=1200, attract=False, reg_init=1e-6,
                        reg_final=1e-13, stall_sweeps=400)
    t0 = time.time()
    for i, g in enumerate(spawn_rngs(4000, seed=86 + R)):
        if time.time() - t0 > deadline:
            break
        r1 = als(T, R, rng=g, options=opts)
        if r1.rel_residual > 1e-2:
            continue
        r2 = als(T, R, rng=g, options=polish, init=(r1.U, r1.V, r1.W))
        if r2.rel_residual > 1e-9:
            continue
        trip = try_one(T, R, r2.U, r2.V, r2.W)
        if trip is None:
            print(f"[{stem}] start {i}: exact but not discretized", flush=True)
            continue
        Ud, Vd, Wd = trip
        rel = tz.residual(T, Ud, Vd, Wd)
        nnz = sum(int(np.count_nonzero(x)) for x in trip)
        print(f"[{stem}] start {i}: DISCRETE nnz={nnz} resid={rel:.1e}",
              flush=True)
        if best_nnz is None or nnz < best_nnz:
            best_nnz = nnz
            out = SearchOutcome(m, k, n, R, Ud, Vd, Wd, float(rel),
                                exact=True, discrete=True,
                                starts_used=i + 1, seed=86 + R)
            save_outcome(out, path)
            print(f"[{stem}] saved nnz={nnz}", flush=True)
    print(f"[{stem}] done, best nnz={best_nnz}", flush=True)


if __name__ == "__main__":
    run(sys.argv[1], float(sys.argv[2]) if len(sys.argv) > 2 else 600.0)
