"""Post-process searched coefficient files toward sparse discrete solutions.

For each data JSON: starting from the stored exact-but-dense factors, run
attraction-annealed ALS (pulling entries toward a small grid), then round
and exact-repair.  Overwrite the file only when the result is exact and
sparser than what is stored.  This is the Prop.-2.3 + regularization
"hands-on tinkering" step the paper describes for recovering discrete
algorithms.
"""

import json
import sys
from pathlib import Path

import numpy as np

from repro.core import tensor as tz
from repro.core.algorithm import FastAlgorithm
from repro.search.als import AlsOptions, als
from repro.search.sparsify import discretize
from repro.search.driver import SearchOutcome, save_outcome

DATA = Path(__file__).resolve().parent.parent / "src/repro/algorithms/data"
GRID = (0.0, 0.5, 1.0, 2.0)


def try_sparsify(path: Path) -> None:
    d = json.loads(path.read_text())
    if d.get("apa"):
        return
    alg = FastAlgorithm.from_dict(d)
    m, k, n = alg.base_case
    T = tz.matmul_tensor(m, k, n)
    nnz0 = sum(alg.nnz())
    best = None
    for aw0, seed in ((2e-3, 0), (5e-3, 1), (1e-2, 2), (2e-3, 3)):
        U, V, W = np.array(alg.U), np.array(alg.V), np.array(alg.W)
        if seed >= 2:  # jitter to escape the current sheet of the manifold
            g = np.random.default_rng(seed)
            U = U + 0.02 * g.standard_normal(U.shape)
        aw = aw0
        for phase in range(6):
            opts = AlsOptions(
                max_sweeps=600, attract=True, attract_start=0,
                attract_weight=aw, attract_grid=GRID,
                reg_init=1e-8, reg_final=1e-12, stall_sweeps=10**9,
            )
            res = als(T, alg.rank, options=opts, init=(U, V, W))
            U, V, W = res.U, res.V, res.W
            trip = discretize(T, U, V, W, grid=GRID)
            if trip is not None:
                nnz = sum(int(np.count_nonzero(x)) for x in trip)
                if best is None or nnz < best[0]:
                    best = (nnz, trip)
                break
            aw = min(aw * 2.5, 5e-2)
    if best is None:
        print(f"{path.name}: no discrete solution found (keeping float)")
        return
    nnz, (Ud, Vd, Wd) = best
    rel = tz.residual(T, Ud, Vd, Wd)
    print(f"{path.name}: discrete nnz {nnz0} -> {nnz}, resid {rel:.2e}")
    if rel < 1e-9:
        out = SearchOutcome(m, k, n, alg.rank, Ud, Vd, Wd, float(rel),
                            exact=True, discrete=True,
                            starts_used=d.get("starts_used", 0),
                            seed=d.get("seed", 0))
        save_outcome(out, path)
        print(f"  saved {path.name}")


def main() -> int:
    targets = sys.argv[1:] or ["s233", "s234", "s244", "s334", "s344", "s336"]
    for stem in targets:
        p = DATA / f"{stem}.json"
        if p.exists():
            try_sparsify(p)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
