"""Shim so `pip install -e .` works in offline environments without the
`wheel` package (legacy setuptools editable install)."""

from setuptools import setup

setup()
