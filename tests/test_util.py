"""Tests for repro.util: matrices, rng, validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.matrices import block_views, flatten_blocks, peel_split, random_matrix
from repro.util.rng import default_rng, spawn_rngs
from repro.util.validation import check_matmul_dims, relative_error, require_2d


class TestBlockViews:
    def test_row_major_order(self):
        X = np.arange(24.0).reshape(4, 6)
        blocks = block_views(X, 2, 3)
        assert len(blocks) == 6
        np.testing.assert_array_equal(blocks[0], X[:2, :2])
        np.testing.assert_array_equal(blocks[1], X[:2, 2:4])
        np.testing.assert_array_equal(blocks[3], X[2:, :2])

    def test_views_not_copies(self):
        X = np.zeros((4, 4))
        blocks = block_views(X, 2, 2)
        blocks[0][:] = 7.0
        assert X[0, 0] == 7.0

    def test_indivisible_raises(self):
        with pytest.raises(ValueError, match="not divisible"):
            block_views(np.zeros((5, 4)), 2, 2)

    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_flatten_roundtrip(self, r, c, br, bc):
        X = random_matrix(r * br, c * bc, r + c)
        blocks = block_views(X, r, c)
        np.testing.assert_array_equal(flatten_blocks(blocks, r, c), X)

    def test_flatten_count_check(self):
        with pytest.raises(ValueError):
            flatten_blocks([np.zeros((2, 2))], 2, 2)


class TestPeelSplit:
    def test_exact_division_empty_strips(self):
        X = np.ones((6, 8))
        core, right, bottom, corner = peel_split(X, 3, 4)
        assert core.shape == (6, 8)
        assert right.shape == (6, 0)
        assert bottom.shape == (0, 8)
        assert corner.shape == (0, 0)

    @given(st.integers(1, 30), st.integers(1, 30), st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_pieces_partition_matrix(self, p, q, rd, cd):
        X = random_matrix(p, q, p * q % 97)
        core, right, bottom, corner = peel_split(X, rd, cd)
        assert core.shape[0] % rd == 0 and core.shape[1] % cd == 0
        top = np.hstack([core, right])
        bot = np.hstack([bottom, corner])
        np.testing.assert_array_equal(np.vstack([top, bot]), X)

    def test_views_share_memory(self):
        X = np.zeros((5, 5))
        core, *_ = peel_split(X, 2, 2)
        core[:] = 1.0
        assert X[0, 0] == 1.0 and X[4, 4] == 0.0


class TestRng:
    def test_default_rng_deterministic(self):
        assert default_rng().random() == default_rng().random()

    def test_passthrough(self):
        g = np.random.default_rng(1)
        assert default_rng(g) is g

    def test_spawn_independent(self):
        a, b = spawn_rngs(2, seed=0)
        assert a.random() != b.random()

    def test_spawn_reproducible(self):
        a1, _ = spawn_rngs(2, seed=3)
        a2, _ = spawn_rngs(2, seed=3)
        assert a1.random() == a2.random()

    def test_random_matrix_range(self):
        M = random_matrix(50, 50, 0)
        assert M.min() >= -1.0 and M.max() < 1.0


class TestValidation:
    def test_require_2d_passthrough(self):
        A = np.zeros((2, 3))
        assert require_2d(A) is A

    def test_require_2d_preserves_float32(self):
        A = np.zeros((2, 3), dtype=np.float32)
        assert require_2d(A).dtype == np.float32

    def test_require_2d_upcasts_ints(self):
        A = np.zeros((2, 3), dtype=np.int64)
        assert require_2d(A).dtype == np.float64

    def test_require_2d_rejects_vector(self):
        with pytest.raises(ValueError, match="2-D"):
            require_2d(np.zeros(3))

    def test_check_matmul_dims(self):
        assert check_matmul_dims(np.zeros((2, 3)), np.zeros((3, 5))) == (2, 3, 5)
        with pytest.raises(ValueError):
            check_matmul_dims(np.zeros((2, 3)), np.zeros((4, 5)))

    def test_relative_error_zero_ref(self):
        assert relative_error(np.ones((2, 2)), np.zeros((2, 2))) == 2.0

    def test_relative_error_identity(self):
        A = np.random.rand(3, 3)
        assert relative_error(A, A) == 0.0
