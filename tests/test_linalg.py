"""Unit tests for ``repro.linalg`` — fast matmul inside dense factorizations.

Covers the §6-extension routines: kernel routing, TRSM in all flag
combinations, blocked pivoted LU, blocked Cholesky, triangular/general
inversion, Newton–Schulz, and matrix powers — each against the vendor
reference, with both classical and fast kernels.
"""

import numpy as np
import pytest
import scipy.linalg

from repro.algorithms import get_algorithm
from repro.linalg import (
    MatmulKernel,
    cholesky,
    count_walks,
    inv,
    invert_triangular,
    lu_factor,
    lu_reconstruct,
    lu_solve,
    matrix_power,
    newton_schulz,
    solve_triangular,
)
from repro.linalg.cholesky import cholesky_error
from repro.linalg.lu import _apply_pivots, lu_error, scipy_reference

RNG = np.random.default_rng(20150207)


def _well_conditioned(n, rng=RNG):
    """Random matrix with singular values in [1, 2] (safe to invert)."""
    Q1, _ = np.linalg.qr(rng.standard_normal((n, n)))
    Q2, _ = np.linalg.qr(rng.standard_normal((n, n)))
    s = np.linspace(1.0, 2.0, n)
    return Q1 @ np.diag(s) @ Q2


def _spd(n, rng=RNG):
    X = rng.standard_normal((n, n))
    return X @ X.T + n * np.eye(n)


# fast kernel used across the file: Strassen with a low engage threshold
# so that the small test problems actually exercise the fast path.
def fast_kernel(**kw):
    kw.setdefault("algorithm", "strassen")
    kw.setdefault("steps", 2)
    kw.setdefault("min_dim", 32)
    return MatmulKernel(**kw)


# ---------------------------------------------------------------- kernels
class TestMatmulKernel:
    def test_default_is_blas(self):
        k = MatmulKernel()
        assert not k.is_fast
        A, B = RNG.standard_normal((40, 30)), RNG.standard_normal((30, 50))
        np.testing.assert_allclose(k(A, B), A @ B, rtol=1e-13)

    def test_name_resolution(self):
        k = MatmulKernel(algorithm="strassen")
        assert k.is_fast
        assert k.algorithm.base_case == (2, 2, 2)

    def test_explicit_algorithm_object(self):
        alg = get_algorithm("strassen")
        k = MatmulKernel(algorithm=alg, min_dim=16, steps=1)
        A, B = RNG.standard_normal((64, 64)), RNG.standard_normal((64, 64))
        np.testing.assert_allclose(k(A, B), A @ B, rtol=0, atol=1e-10)

    def test_min_dim_guard_routes_small_to_blas(self):
        k = fast_kernel(counting=True)
        A, B = RNG.standard_normal((8, 8)), RNG.standard_normal((8, 8))
        k(A, B)
        assert k.calls[-1][3] == "blas"
        A, B = RNG.standard_normal((64, 64)), RNG.standard_normal((64, 64))
        k(A, B)
        assert k.calls[-1][3] == "sequential"

    def test_update_subtracts_in_place(self):
        k = MatmulKernel()
        C = RNG.standard_normal((20, 20))
        C0 = C.copy()
        A, B = RNG.standard_normal((20, 10)), RNG.standard_normal((10, 20))
        out = k.update(C, A, B, alpha=-1.0)
        assert out is C
        np.testing.assert_allclose(C, C0 - A @ B, rtol=1e-13)

    def test_update_into_view(self):
        k = fast_kernel()
        M = np.zeros((100, 100))
        view = M[10:74, 20:84]
        A, B = RNG.standard_normal((64, 32)), RNG.standard_normal((32, 64))
        k.update(view, A, B, alpha=1.0)
        np.testing.assert_allclose(M[10:74, 20:84], A @ B, atol=1e-10)
        assert np.all(M[:10] == 0) and np.all(M[74:] == 0)

    def test_update_general_alpha(self):
        k = MatmulKernel()
        C = np.ones((6, 6))
        A = np.eye(6)
        k.update(C, A, A, alpha=0.5)
        np.testing.assert_allclose(C, np.ones((6, 6)) + 0.5 * np.eye(6))

    def test_update_shape_mismatch_raises(self):
        k = MatmulKernel()
        with pytest.raises(ValueError, match="update shape mismatch"):
            k.update(np.zeros((3, 3)), np.zeros((3, 2)), np.zeros((2, 4)))

    def test_update_empty_inner_dim_is_noop(self):
        k = MatmulKernel()
        C = np.ones((4, 4))
        k.update(C, np.zeros((4, 0)), np.zeros((0, 4)))
        np.testing.assert_array_equal(C, np.ones((4, 4)))

    def test_fast_fraction_accounting(self):
        k = fast_kernel(counting=True)
        big = RNG.standard_normal((128, 128))
        small = RNG.standard_normal((8, 8))
        k(big, big)
        k(small, small)
        frac = k.fast_fraction()
        assert 0.99 < frac < 1.0  # big product dominates the flops
        k.reset_counts()
        assert k.fast_fraction() == 0.0

    def test_parallel_route(self):
        k = fast_kernel(parallel=True, scheme="bfs", threads=2)
        A, B = RNG.standard_normal((96, 96)), RNG.standard_normal((96, 96))
        np.testing.assert_allclose(k(A, B), A @ B, atol=1e-10)


# ------------------------------------------------------------------- trsm
class TestSolveTriangular:
    @staticmethod
    def _effective(T, lower, unit):
        """The matrix TRSM actually solves with: referenced triangle only,
        diagonal replaced by 1 under the unit flag."""
        if unit:
            strict = np.tril(T, -1) if lower else np.triu(T, 1)
            return strict + np.eye(T.shape[0])
        return np.tril(T) if lower else np.triu(T)

    @pytest.mark.parametrize("side", ["left", "right"])
    @pytest.mark.parametrize("lower", [True, False])
    @pytest.mark.parametrize("trans", [True, False])
    @pytest.mark.parametrize("unit", [True, False])
    def test_all_flag_combinations(self, side, lower, trans, unit):
        n, m = 70, 37
        # well-conditioned for both flag readings: small strict triangle,
        # O(1) diagonal (the unit flag replaces the diagonal by exactly 1)
        T = 0.05 * np.tril(RNG.standard_normal((n, n)), -1) + np.diag(
            RNG.uniform(1.0, 2.0, n)
        )
        if not lower:
            T = T.T
        B = RNG.standard_normal((n, m) if side == "left" else (m, n))
        X = solve_triangular(T, B, side=side, lower=lower, trans=trans,
                             unit_diagonal=unit, base_size=16)
        op = self._effective(T, lower, unit)
        op = op.T if trans else op
        got = op @ X if side == "left" else X @ op
        np.testing.assert_allclose(got, B, atol=1e-9)

    def test_matches_scipy(self):
        n = 150
        T = np.tril(RNG.standard_normal((n, n))) + n * np.eye(n)
        B = RNG.standard_normal((n, 20))
        X = solve_triangular(T, B, base_size=32)
        Xref = scipy.linalg.solve_triangular(T, B, lower=True)
        np.testing.assert_allclose(X, Xref, atol=1e-10)

    def test_fast_kernel_left_lower(self):
        n = 256
        T = np.tril(RNG.standard_normal((n, n))) + n * np.eye(n)
        B = RNG.standard_normal((n, n))
        X = solve_triangular(T, B, kernel=fast_kernel(), base_size=32)
        np.testing.assert_allclose(T @ X, B, atol=1e-8)

    def test_fast_kernel_right_upper(self):
        n = 200
        T = np.triu(RNG.standard_normal((n, n))) + n * np.eye(n)
        B = RNG.standard_normal((64, n))
        X = solve_triangular(T, B, side="right", lower=False,
                             kernel=fast_kernel(), base_size=32)
        np.testing.assert_allclose(X @ T, B, atol=1e-8)

    def test_ignores_opposite_triangle(self):
        n = 90
        T = np.tril(RNG.standard_normal((n, n))) + n * np.eye(n)
        garbage = T + np.triu(1e6 * RNG.standard_normal((n, n)), 1)
        B = RNG.standard_normal((n, 5))
        np.testing.assert_allclose(
            solve_triangular(garbage, B, base_size=16),
            solve_triangular(T, B, base_size=16),
            atol=1e-10,
        )

    def test_unit_diagonal_ignores_stored_diagonal(self):
        n = 50
        T = np.tril(RNG.standard_normal((n, n)), -1) + np.diag(RNG.uniform(5, 9, n))
        B = RNG.standard_normal((n, 3))
        X = solve_triangular(T, B, unit_diagonal=True, base_size=8)
        L = np.tril(T, -1) + np.eye(n)
        np.testing.assert_allclose(L @ X, B, atol=1e-10)

    def test_nonsquare_T_raises(self):
        with pytest.raises(ValueError, match="square"):
            solve_triangular(np.zeros((3, 4)), np.zeros((3, 2)))

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            solve_triangular(np.eye(4), np.zeros((5, 2)))

    def test_bad_side_raises(self):
        with pytest.raises(ValueError, match="side"):
            solve_triangular(np.eye(4), np.zeros((4, 2)), side="middle")

    def test_empty_rhs(self):
        X = solve_triangular(np.eye(4), np.zeros((4, 0)))
        assert X.shape == (4, 0)

    def test_does_not_modify_inputs(self):
        T = np.tril(RNG.standard_normal((40, 40))) + 40 * np.eye(40)
        B = RNG.standard_normal((40, 8))
        T0, B0 = T.copy(), B.copy()
        solve_triangular(T, B, base_size=8)
        np.testing.assert_array_equal(T, T0)
        np.testing.assert_array_equal(B, B0)


# --------------------------------------------------------------------- lu
class TestLU:
    @pytest.mark.parametrize("n", [1, 7, 64, 130, 257])
    def test_reconstruction_square(self, n):
        A = _well_conditioned(max(n, 2))[:n, :n]
        fac = lu_factor(A, block=32)
        assert lu_error(A, fac) < 1e-12

    @pytest.mark.parametrize("shape", [(80, 50), (50, 80), (129, 64)])
    def test_rectangular(self, shape):
        A = RNG.standard_normal(shape)
        fac = lu_factor(A, block=24)
        assert lu_error(A, fac) < 1e-12

    def test_matches_scipy_packed_format(self):
        A = _well_conditioned(96)
        LU, piv = lu_factor(A, block=32)
        LUs, pivs = scipy_reference(A)
        # pivot sequences may differ on ties; compare reconstructions
        assert lu_error(A, (LU, piv)) < 1e-12
        assert lu_error(A, (LUs, pivs)) < 1e-12

    def test_pivoting_actually_pivots(self):
        # leading zero forces an immediate swap
        A = np.array([[0.0, 1.0], [1.0, 0.0]])
        LU, piv = lu_factor(A)
        assert piv[0] == 1
        assert lu_error(A, (LU, piv)) < 1e-15

    def test_growth_controlled_on_graded_matrix(self):
        # without pivoting this matrix explodes; with it the error stays tiny
        n = 120
        A = _well_conditioned(n)
        A[0, 0] = 1e-14
        fac = lu_factor(A, block=16)
        assert lu_error(A, fac) < 1e-10

    def test_fast_kernel_factorization(self):
        n = 300
        A = _well_conditioned(n)
        k = fast_kernel(counting=True)
        fac = lu_factor(A, kernel=k, block=64)
        assert lu_error(A, fac) < 1e-10
        # the trailing updates must dominate and go through the fast path
        assert k.fast_fraction() > 0.5

    def test_lu_solve_single_rhs(self):
        A = _well_conditioned(100)
        x = RNG.standard_normal(100)
        b = A @ x
        got = lu_solve(lu_factor(A, block=32), b)
        assert got.shape == (100,)
        np.testing.assert_allclose(got, x, atol=1e-9)

    def test_lu_solve_multi_rhs_fast(self):
        A = _well_conditioned(160)
        X = RNG.standard_normal((160, 160))
        B = A @ X
        k = fast_kernel()
        got = lu_solve(lu_factor(A, kernel=k, block=32), B, kernel=k)
        np.testing.assert_allclose(got, X, atol=1e-8)

    def test_lu_solve_requires_square(self):
        fac = lu_factor(RNG.standard_normal((6, 4)))
        with pytest.raises(ValueError, match="square"):
            lu_solve(fac, np.zeros(6))

    def test_apply_pivots_roundtrip(self):
        B = RNG.standard_normal((9, 3))
        piv = np.array([4, 1, 5, 3, 8, 7, 6, 7, 8])
        P = _apply_pivots(B, piv)
        back = _apply_pivots(P, piv, inverse=True)
        np.testing.assert_array_equal(back, B)

    def test_singular_matrix_flagged_by_zero_diagonal(self):
        A = np.ones((8, 8))  # rank 1
        LU, piv = lu_factor(A, block=4)
        assert np.min(np.abs(np.diag(LU))) < 1e-12
        assert lu_error(A, (LU, piv)) < 1e-12  # factorization still exact

    def test_block_size_invariance(self):
        A = _well_conditioned(140)
        ref = lu_reconstruct(lu_factor(A, block=140))  # unblocked
        for b in (8, 32, 64, 200):
            np.testing.assert_allclose(
                lu_reconstruct(lu_factor(A, block=b)), ref, atol=1e-11
            )


# --------------------------------------------------------------- cholesky
class TestCholesky:
    @pytest.mark.parametrize("n", [1, 5, 64, 129, 250])
    def test_factorization(self, n):
        A = _spd(n)
        L = cholesky(A, block=32)
        assert cholesky_error(A, L) < 1e-13
        assert np.allclose(L, np.tril(L))

    def test_matches_scipy(self):
        A = _spd(100)
        L = cholesky(A, block=24)
        Lref = scipy.linalg.cholesky(A, lower=True)
        np.testing.assert_allclose(L, Lref, atol=1e-10)

    def test_only_lower_triangle_referenced(self):
        A = _spd(80)
        junk = A + np.triu(1e9 * np.ones((80, 80)), 1)
        np.testing.assert_allclose(
            cholesky(junk, block=16), cholesky(A, block=16), atol=1e-12
        )

    def test_fast_kernel(self):
        A = _spd(320)
        k = fast_kernel(counting=True)
        L = cholesky(A, kernel=k, block=64)
        assert cholesky_error(A, L) < 1e-11
        assert k.fast_fraction() > 0.4

    def test_syrk_blocks_variant_agrees(self):
        A = _spd(200)
        L_full = cholesky(A, block=48, use_syrk_blocks=False)
        L_syrk = cholesky(A, block=48, use_syrk_blocks=True)
        np.testing.assert_allclose(L_full, L_syrk, atol=1e-11)

    def test_not_positive_definite_raises(self):
        A = -np.eye(50)
        with pytest.raises(np.linalg.LinAlgError):
            cholesky(A, block=16)

    def test_nonsquare_raises(self):
        with pytest.raises(ValueError, match="square"):
            cholesky(np.zeros((3, 4)))


# ---------------------------------------------------------------- inverse
class TestInverse:
    @pytest.mark.parametrize("lower", [True, False])
    def test_invert_triangular(self, lower):
        n = 180
        T = np.tril(RNG.standard_normal((n, n))) + n * np.eye(n)
        if not lower:
            T = T.T
        Tinv = invert_triangular(T, lower=lower, base_size=32)
        np.testing.assert_allclose(T @ Tinv, np.eye(n), atol=1e-10)
        # inverse of a triangular matrix is triangular of the same kind
        off = np.triu(Tinv, 1) if lower else np.tril(Tinv, -1)
        assert np.max(np.abs(off)) < 1e-12

    def test_invert_triangular_fast_kernel(self):
        n = 256
        T = np.tril(RNG.standard_normal((n, n))) + n * np.eye(n)
        k = fast_kernel(counting=True)
        Tinv = invert_triangular(T, kernel=k, base_size=64)
        np.testing.assert_allclose(T @ Tinv, np.eye(n), atol=1e-9)
        assert k.fast_fraction() > 0.5

    def test_unit_diagonal_triangular_inverse(self):
        # small strict triangle keeps cond(L) modest (a dense N(0,1) unit
        # triangular matrix has exponentially large inverse entries)
        n = 96
        L = 0.05 * np.tril(RNG.standard_normal((n, n)), -1) + np.eye(n)
        Linv = invert_triangular(L, unit_diagonal=True, base_size=16)
        np.testing.assert_allclose(L @ Linv, np.eye(n), atol=1e-11)

    def test_general_inverse(self):
        A = _well_conditioned(150)
        Ainv = inv(A, block=32)
        np.testing.assert_allclose(A @ Ainv, np.eye(150), atol=1e-9)

    def test_general_inverse_fast(self):
        A = _well_conditioned(200)
        Ainv = inv(A, kernel=fast_kernel(), block=64)
        np.testing.assert_allclose(Ainv, np.linalg.inv(A), atol=1e-8)

    def test_newton_schulz_converges(self):
        A = _well_conditioned(120)
        X, hist = newton_schulz(A, iterations=60)
        assert hist[-1] < 1e-12
        # quadratic convergence: the tail drops fast
        assert len(hist) < 30
        np.testing.assert_allclose(X, np.linalg.inv(A), atol=1e-8)

    def test_newton_schulz_fast_kernel_same_limit(self):
        A = _well_conditioned(128)
        X_ref, _ = newton_schulz(A)
        X_fast, hist = newton_schulz(A, kernel=fast_kernel(min_dim=16))
        assert hist[-1] < 1e-10
        np.testing.assert_allclose(X_fast, X_ref, atol=1e-7)

    def test_newton_schulz_history_monotone_tail(self):
        A = _well_conditioned(64)
        _, hist = newton_schulz(A, iterations=40)
        # once contraction starts, every step improves
        start = int(np.argmin(np.array(hist) > 0.5))
        assert all(b < a for a, b in zip(hist[start:-1], hist[start + 1:]))

    def test_inverse_nonsquare_raises(self):
        with pytest.raises(ValueError, match="square"):
            inv(np.zeros((3, 5)))
        with pytest.raises(ValueError, match="square"):
            invert_triangular(np.zeros((3, 5)))
        with pytest.raises(ValueError, match="square"):
            newton_schulz(np.zeros((3, 5)))


# ------------------------------------------------------------------ power
class TestMatrixPower:
    def test_power_zero_is_identity(self):
        A = RNG.standard_normal((9, 9))
        np.testing.assert_array_equal(matrix_power(A, 0), np.eye(9))

    def test_power_one_copies(self):
        A = RNG.standard_normal((9, 9))
        P = matrix_power(A, 1)
        np.testing.assert_allclose(P, A)
        assert P is not A

    @pytest.mark.parametrize("p", [2, 3, 5, 8, 13])
    def test_matches_numpy(self, p):
        A = RNG.standard_normal((20, 20)) / 5.0
        np.testing.assert_allclose(
            matrix_power(A, p), np.linalg.matrix_power(A, p), atol=1e-10
        )

    def test_fast_kernel_power(self):
        A = RNG.standard_normal((96, 96)) / 10.0
        got = matrix_power(A, 6, kernel=fast_kernel(min_dim=16))
        np.testing.assert_allclose(got, np.linalg.matrix_power(A, 6), atol=1e-9)

    def test_negative_exponent_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            matrix_power(np.eye(3), -1)

    def test_walk_counts_cycle(self):
        # directed 5-cycle: exactly one walk of length 5 returns to start
        n = 5
        A = np.zeros((n, n))
        for i in range(n):
            A[i, (i + 1) % n] = 1
        W = count_walks(A, 5)
        np.testing.assert_array_equal(W, np.eye(n, dtype=np.int64))

    def test_walk_counts_match_bruteforce(self):
        rng = np.random.default_rng(7)
        A = (rng.uniform(size=(12, 12)) < 0.3).astype(float)
        ref = np.linalg.matrix_power(A.astype(np.int64), 4)
        W = count_walks(A, 4, kernel=fast_kernel(min_dim=4, steps=1))
        np.testing.assert_array_equal(W, ref)

    def test_walk_counts_networkx_graph(self):
        nx = pytest.importorskip("networkx")
        G = nx.erdos_renyi_graph(40, 0.15, seed=3)
        A = nx.to_numpy_array(G)
        ref = np.linalg.matrix_power(A.astype(np.int64), 3)
        W = count_walks(A, 3, kernel=fast_kernel(min_dim=8))
        np.testing.assert_array_equal(W, ref)
        # triangle count = trace(A^3) / 6 — a classic identity
        tri = int(np.trace(W)) // 6
        assert tri == sum(nx.triangles(G).values()) // 3

    def test_negative_adjacency_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            count_walks(-np.eye(3), 2)

    def test_drift_guard_trips_on_bad_kernel(self):
        # a kernel that corrupts products (APA-like) should be caught:
        # for 6x6 all-ones, the corrupted A^3 entries land 36 + 7c, so
        # c = 0.07 puts them 0.49 from the nearest integer (> 0.25 guard)
        class Corrupt(MatmulKernel):
            def __call__(self, A, B):
                return super().__call__(A, B) + 0.07
        A = np.ones((6, 6))
        with pytest.raises(ValueError, match="not accurate enough"):
            count_walks(A, 3, kernel=Corrupt())
