"""Tests for the DFS / BFS / HYBRID parallel schemes (Section 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import get_algorithm, strassen
from repro.parallel import SCHEMES, WorkerPool, multiply_parallel
from repro.parallel.schedules import _Node, _bfs_leaves, _expand_tree
from repro.util.matrices import random_matrix


@pytest.fixture(scope="module")
def pool():
    with WorkerPool(2) as p:
        yield p


class TestCorrectness:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("steps", [1, 2])
    def test_strassen_square(self, pool, scheme, steps):
        A = random_matrix(96, 96, 0)
        B = random_matrix(96, 96, 1)
        C = multiply_parallel(A, B, strassen(), steps=steps, scheme=scheme, pool=pool)
        np.testing.assert_allclose(C, A @ B, rtol=1e-10, atol=1e-10)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_rectangular_odd_sizes(self, pool, scheme):
        A = random_matrix(131, 77, 2)
        B = random_matrix(77, 93, 3)
        alg = get_algorithm("s424")
        C = multiply_parallel(A, B, alg, steps=2, scheme=scheme, pool=pool)
        np.testing.assert_allclose(C, A @ B, rtol=1e-9, atol=1e-9)

    @given(st.integers(20, 70), st.integers(20, 70), st.integers(20, 70),
           st.sampled_from(["bfs", "hybrid", "dfs"]))
    @settings(max_examples=10, deadline=None)
    def test_property_any_dims(self, p, q, r, scheme):
        A = random_matrix(p, q, p)
        B = random_matrix(q, r, r)
        with WorkerPool(2) as pl:
            C = multiply_parallel(A, B, get_algorithm("s233"), steps=1,
                                  scheme=scheme, pool=pl)
        np.testing.assert_allclose(C, A @ B, rtol=1e-9, atol=1e-9)

    def test_every_catalog_algorithm_hybrid(self, pool, all_exact_algorithms):
        A = random_matrix(61, 59, 4)
        B = random_matrix(59, 67, 5)
        for alg in all_exact_algorithms:
            C = multiply_parallel(A, B, alg, steps=1, scheme="hybrid", pool=pool)
            np.testing.assert_allclose(C, A @ B, rtol=1e-8, atol=1e-8,
                                       err_msg=alg.name)

    def test_owns_pool_when_none_given(self):
        A = random_matrix(40, 40, 6)
        B = random_matrix(40, 40, 7)
        C = multiply_parallel(A, B, strassen(), steps=1, scheme="bfs", threads=2)
        np.testing.assert_allclose(C, A @ B, atol=1e-10)


class TestValidation:
    def test_bad_scheme(self, pool):
        with pytest.raises(ValueError, match="scheme"):
            multiply_parallel(np.ones((4, 4)), np.ones((4, 4)), strassen(),
                              scheme="magic", pool=pool)

    def test_dim_mismatch(self, pool):
        with pytest.raises(ValueError):
            multiply_parallel(np.ones((4, 3)), np.ones((4, 4)), strassen(),
                              pool=pool)

    def test_subgroup_must_divide(self, pool):
        A = random_matrix(32, 32, 0)
        with pytest.raises(ValueError, match="divide"):
            multiply_parallel(A, A, strassen(), steps=1,
                              scheme="hybrid-subgroup", pool=pool,
                              threads=2, subgroup=3)

    def test_subgroup_explicit(self, pool):
        A = random_matrix(32, 32, 0)
        C = multiply_parallel(A, A, strassen(), steps=1,
                              scheme="hybrid-subgroup", pool=pool,
                              threads=2, subgroup=1)
        np.testing.assert_allclose(C, A @ A, atol=1e-10)

    def test_subgroup_rejected_for_other_schemes(self, pool):
        """A requested P' must never be silently dropped: every entry
        point (library, CLI, Plan) rejects it for non-subgroup schemes."""
        A = random_matrix(32, 32, 0)
        with pytest.raises(ValueError, match="hybrid-subgroup"):
            multiply_parallel(A, A, strassen(), steps=1, scheme="hybrid",
                              pool=pool, threads=2, subgroup=1)


class TestTreeMechanics:
    def test_leaf_count_strassen_two_levels(self, pool):
        A = random_matrix(64, 64, 0)
        root = _Node(A, A, 0, strassen())
        tree = _expand_tree(root, 2, pool)
        assert len(tree) == 3
        assert len(tree[1]) == 7
        assert len(tree[2]) == 49
        assert len(_bfs_leaves(tree)) == 49

    def test_small_nodes_stay_leaves(self, pool):
        """A node too small to split must be multiplied directly."""
        A = random_matrix(3, 3, 1)
        root = _Node(A, A, 0, strassen())
        tree = _expand_tree(root, 2, pool)
        # 3x3 splits once (blocks >= 1) but 1x1 blocks cannot split again
        leaves = _bfs_leaves(tree)
        assert all(nd.result is None for nd in leaves)

    def test_children_released_after_combine(self, pool):
        A = random_matrix(16, 16, 2)
        C = multiply_parallel(A, A, strassen(), steps=1, scheme="bfs", pool=pool)
        np.testing.assert_allclose(C, A @ A, atol=1e-10)


class TestLoadBalanceBehaviour:
    def test_hybrid_batches(self, pool):
        """With P=2 and Strassen 1-step (7 leaves), hybrid runs 6 BFS + 1
        DFS leaf; verify via the result only (timing covered in benches)."""
        A = random_matrix(80, 80, 3)
        C = multiply_parallel(A, A, strassen(), steps=1, scheme="hybrid",
                              pool=pool, threads=2)
        np.testing.assert_allclose(C, A @ A, rtol=1e-10, atol=1e-10)

    def test_dfs_thread_override(self, pool):
        A = random_matrix(48, 48, 4)
        C = multiply_parallel(A, A, strassen(), steps=1, scheme="dfs",
                              pool=pool, threads=1)
        np.testing.assert_allclose(C, A @ A, atol=1e-10)
