"""Arena-aware code generation: generated modules with ``out=``/``workspace=``.

Pins down the ISSUE 4 contract:

1. a generated module with ``workspace=`` draws every S/T/M/CSE/streaming
   temporary from the arena (zero overflow allocations) and its result is
   *bit-for-bit* equal to the allocating generated path -- same ufunc/gemm
   sequence on the same values -- across all three addition strategies,
   CSE on/off, both float dtypes and non-divisible shapes;
2. ``workspace.codegen_footprint`` covers the generated recursion exactly
   (it mirrors the module's own peel loop and per-strategy slot counts);
3. warm generated calls with ``out=`` + ``workspace=`` perform no large
   allocations (<1 MiB tracking-allocator budget);
4. ``tuner.dispatch.execute_plan`` serves sequential plans from the
   *generated* module -- no interpreter fallback when a workspace is
   provided, no ``np.copyto(out, C)`` double-copy, ``out`` written
   directly;
5. float32 inputs through any codegen path come back float32.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import get_algorithm
from repro.codegen import STRATEGIES, compile_algorithm
from repro.core.recursion import multiply as interpreter_multiply
from repro.core.workspace import (
    Workspace,
    codegen_footprint,
    track_allocations,
)
from repro.tuner import Plan, PlanCache
from repro.tuner import matmul as tuner_matmul
from repro.tuner import reset_workspaces
from repro.tuner.dispatch import build_workspace, execute_plan
from repro.util.matrices import random_matrix

LARGE = 1 << 20

ALGS = ("strassen", "winograd", "s234", "s333")


def _codegen_workspace(alg, strategy, cse, p, q, r, dtype, steps):
    return Workspace.for_codegen(alg, strategy, cse, (p, q, r), dtype, steps)


# =========================================================================
# bit-for-bit equivalence: arena-backed generated == allocating generated
# =========================================================================
@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(ALGS),
    strategy=st.sampled_from(STRATEGIES),
    cse=st.booleans(),
    dtype_a=st.sampled_from((np.float64, np.float32)),
    dtype_b=st.sampled_from((np.float64, np.float32)),
    steps=st.integers(1, 2),
    dims=st.tuples(st.integers(21, 64), st.integers(21, 64),
                   st.integers(21, 64)),
    seed=st.integers(0, 2**16),
)
def test_generated_arena_bit_for_bit(name, strategy, cse, dtype_a, dtype_b,
                                     steps, dims, seed):
    # dtypes drawn independently: mixed float32 x float64 inputs pin the
    # operand-dtype chain lowering of arena pairwise (a cold and a warm
    # dispatch call must return identical bits for identical inputs)
    alg = get_algorithm(name)
    p, q, r = dims
    rng = np.random.default_rng(seed)
    A = rng.random((p, q)).astype(dtype_a)
    B = rng.random((q, r)).astype(dtype_b)
    result_dtype = np.result_type(A, B)
    fn = compile_algorithm(alg, strategy, cse)
    ref = fn(A, B, steps=steps)

    ws = Workspace.for_codegen(alg, strategy, cse, (p, q, r), A.dtype,
                               steps, dtype_b=B.dtype)
    out = np.empty((p, r), dtype=result_dtype)
    got = fn(A, B, steps=steps, out=out, workspace=ws)

    assert got is out
    assert got.dtype == result_dtype
    assert ws.overflow_allocations == 0
    assert np.array_equal(ref, got)
    # and both agree with the semantic ground truth (the interpreter runs
    # a different ufunc order -- scalar piping, streaming gemms -- so this
    # comparison is tolerance-based, not bitwise; any float32 operand sets
    # the error floor even when the result dtype is float64)
    tol = 1e-3 if np.float32 in (dtype_a, dtype_b) else 1e-9
    np.testing.assert_allclose(
        got, interpreter_multiply(A, B, alg, steps=steps),
        rtol=tol, atol=tol)


@settings(max_examples=20, deadline=None)
@given(
    strategy=st.sampled_from(STRATEGIES),
    cse=st.booleans(),
    dims=st.tuples(st.integers(24, 60), st.integers(24, 60),
                   st.integers(24, 60)),
    seed=st.integers(0, 2**16),
)
def test_workspace_without_out_is_fresh(strategy, cse, dims, seed):
    """Without ``out=`` the result must be freshly owned, never a view of
    the arena a later call would clobber."""
    alg = get_algorithm("strassen")
    p, q, r = dims
    rng = np.random.default_rng(seed)
    A = rng.random((p, q))
    B = rng.random((q, r))
    fn = compile_algorithm(alg, strategy, cse)
    ws = _codegen_workspace(alg, strategy, cse, p, q, r, A.dtype, 1)
    r1 = fn(A, B, steps=1, workspace=ws)
    snapshot = r1.copy()
    fn(B.T.copy(), A.T.copy(), steps=1, workspace=ws)
    np.testing.assert_array_equal(r1, snapshot)


# =========================================================================
# footprint coverage
# =========================================================================
class TestCodegenFootprint:
    @pytest.mark.parametrize("name", ALGS)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("cse", [False, True])
    def test_covers_generated_recursion(self, name, strategy, cse):
        alg = get_algorithm(name)
        p, q, r = 97, 65, 83  # peels at every level for every base case
        steps = 2
        A = random_matrix(p, q, 0)
        B = random_matrix(q, r, 1)
        fn = compile_algorithm(alg, strategy, cse)
        ws = _codegen_workspace(alg, strategy, cse, p, q, r, A.dtype, steps)
        out = np.empty((p, r))
        fn(A, B, steps=steps, out=out, workspace=ws)
        assert ws.overflow_allocations == 0
        assert ws.high_water <= ws.nbytes
        np.testing.assert_allclose(out, A @ B, atol=1e-8)

    def test_footprint_grows_with_steps_and_rank(self):
        alg = get_algorithm("strassen")
        one = codegen_footprint(alg, "write_once", False, (256, 256, 256),
                                "float64", 1)
        two = codegen_footprint(alg, "write_once", False, (256, 256, 256),
                                "float64", 2)
        assert two > one
        # streaming holds the R-row combine slabs on top of the M slab
        stream = codegen_footprint(alg, "streaming", False, (256, 256, 256),
                                   "float64", 1)
        assert stream > one

    def test_float32_footprint_is_smaller(self):
        alg = get_algorithm("strassen")
        f64 = codegen_footprint(alg, "write_once", False, (128, 128, 128),
                                "float64", 1)
        f32 = codegen_footprint(alg, "write_once", False, (128, 128, 128),
                                "float32", 1)
        assert f32 < f64

    def test_tiny_arena_degrades_to_heap_not_wrong_answers(self):
        alg = get_algorithm("strassen")
        A = random_matrix(64, 64, 2)
        B = random_matrix(64, 64, 3)
        fn = compile_algorithm(alg, "write_once")
        ws = Workspace(64)
        out = np.empty((64, 64))
        fn(A, B, steps=2, out=out, workspace=ws)
        assert ws.overflow_allocations > 0
        np.testing.assert_allclose(out, A @ B, atol=1e-9)

    def test_out_without_workspace_still_correct(self):
        alg = get_algorithm("s234")
        A = random_matrix(50, 66, 4)
        B = random_matrix(66, 42, 5)
        fn = compile_algorithm(alg, "write_once")
        out = np.empty((50, 42))
        got = fn(A, B, steps=1, out=out)
        assert got is out
        np.testing.assert_allclose(out, A @ B, atol=1e-9)

    def test_out_aliasing_rejected(self):
        alg = get_algorithm("strassen")
        A = random_matrix(32, 32, 6)
        B = random_matrix(32, 32, 7)
        fn = compile_algorithm(alg, "write_once")
        with pytest.raises(ValueError, match="overlap"):
            fn(A, B, steps=1, out=A)


# =========================================================================
# warm generated calls allocate nothing large
# =========================================================================
class TestGeneratedSteadyState:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("n", [512, 515])
    def test_warm_generated_call_is_allocation_free(self, strategy, n):
        alg = get_algorithm("strassen")
        A = random_matrix(n, n, 0)
        B = random_matrix(n, n, 1)
        fn = compile_algorithm(alg, strategy)
        ws = _codegen_workspace(alg, strategy, False, n, n, n, A.dtype, 2)
        out = np.empty((n, n))
        fn(A, B, steps=2, out=out, workspace=ws)  # warm numpy + arena
        with track_allocations() as rep:
            fn(A, B, steps=2, out=out, workspace=ws)
        assert rep.peak_bytes is not None and rep.peak_bytes < LARGE, strategy
        assert ws.overflow_allocations == 0
        np.testing.assert_allclose(out, A @ B, atol=1e-8)


# =========================================================================
# dispatch: sequential plans are served by the generated module
# =========================================================================
class TestDispatchServesCodegen:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_no_interpreter_fallback(self, strategy, monkeypatch):
        """With a workspace, execute_plan must run the generated module --
        never the reference interpreter (the pre-ISSUE-4 fallback)."""
        import repro.core.recursion as recursion

        def boom(*a, **k):  # pragma: no cover - failure path
            raise AssertionError("sequential dispatch fell back to the "
                                 "interpreter")

        monkeypatch.setattr(recursion, "multiply", boom)
        n = 128
        plan = Plan(algorithm="strassen", steps=2, scheme="sequential",
                    strategy=strategy, threads=1)
        A = random_matrix(n, n, 8)
        B = random_matrix(n, n, 9)
        ws = build_workspace(plan, n, n, n, A.dtype, B.dtype)
        out = np.empty((n, n))
        got = execute_plan(plan, A, B, out=out, workspace=ws)
        assert got is out
        assert ws.overflow_allocations == 0
        np.testing.assert_allclose(out, A @ B, atol=1e-9)

    def test_no_double_copy_on_warm_dispatch(self, tmp_path):
        """The old path materialized C then np.copyto(out, C) -- a full
        matrix-sized allocation the tracking allocator must no longer see
        on a warm sequential codegen-served dispatch."""
        n = 512
        cache = PlanCache(tmp_path / "plans.json")
        cache.put(n, n, n, "float64", 1,
                  Plan(algorithm="strassen", steps=2, scheme="sequential",
                       strategy="write_once", threads=1))
        A = random_matrix(n, n, 10)
        B = random_matrix(n, n, 11)
        out = np.empty((n, n))
        reset_workspaces()
        got = tuner_matmul(A, B, threads=1, cache=cache, out=out)
        assert got is out
        with track_allocations() as rep:
            got = tuner_matmul(A, B, threads=1, cache=cache, out=out)
        assert got is out
        assert rep.peak_bytes is not None and rep.peak_bytes < LARGE
        np.testing.assert_allclose(out, A @ B, atol=1e-8)
        reset_workspaces()

    def test_float32_dispatch_returns_float32(self, tmp_path):
        n = 160
        cache = PlanCache(tmp_path / "plans.json")
        cache.put(n, n, n, "float32", 1,
                  Plan(algorithm="strassen", steps=1, scheme="sequential",
                       threads=1))
        A = random_matrix(n, n, 12, dtype=np.float32)
        B = random_matrix(n, n, 13, dtype=np.float32)
        reset_workspaces()
        C = tuner_matmul(A, B, threads=1, cache=cache)
        assert C.dtype == np.float32
        np.testing.assert_allclose(C, A @ B, rtol=2e-3, atol=2e-3)
        reset_workspaces()

    def test_build_workspace_sizes_for_codegen(self):
        """The sequential arena must use the codegen footprint (R live
        products per level), not the interpreter's single-M_r formula --
        undersizing would show up as overflow allocations in live serving."""
        plan = Plan(algorithm="strassen", steps=2, scheme="sequential",
                    threads=1)
        n = 256
        ws = build_workspace(plan, n, n, n, np.dtype("float64"),
                             np.dtype("float64"))
        alg = get_algorithm("strassen")
        expected = codegen_footprint(alg, plan.strategy, False, (n, n, n),
                                     "float64", plan.steps)
        assert ws.nbytes == expected
