"""Tests for the analytical cost models (repro.core.cost)."""

import math

import pytest

from repro.algorithms import classical, get_algorithm, strassen
from repro.core import cost


class TestFlops:
    def test_classical_formula(self):
        # F_C(N) = 2N^3 - N^2 (Section 2.1)
        for n in (1, 2, 16, 100):
            assert cost.classical_flops(n, n, n) == 2 * n**3 - n**2

    def test_strassen_closed_form_small(self):
        assert cost.strassen_flops(1) == 1
        # F_S(2) = 7*1 + 18*1 = 25 = 7*2^log2(7) - 6*4
        assert cost.strassen_flops(2) == 25

    def test_strassen_closed_form_requires_pow2(self):
        with pytest.raises(ValueError):
            cost.strassen_flops(48)

    def test_recursive_matches_closed_form_full_depth(self):
        s = strassen()
        for N in (2, 4, 8, 16):
            steps = int(math.log2(N))
            rec = cost.recursive_flops(s, N, N, N, steps)
            assert rec == cost.strassen_flops(N)

    def test_recursive_flops_zero_steps_is_classical(self):
        s = strassen()
        assert cost.recursive_flops(s, 10, 12, 14, 0) == cost.classical_flops(10, 12, 14)

    def test_recursive_flops_divisibility_check(self):
        with pytest.raises(ValueError):
            cost.recursive_flops(strassen(), 9, 8, 8, 1)

    def test_one_step_strassen_counts(self):
        """One step on NxN: 7 multiplies of N/2 + 18 block additions."""
        s = strassen()
        N = 8
        b = (N // 2) ** 2
        expected = 18 * b + 7 * cost.classical_flops(N // 2, N // 2, N // 2)
        assert cost.recursive_flops(s, N, N, N, 1) == expected

    def test_fast_beats_classical_eventually(self):
        s = strassen()
        assert cost.recursive_flops(s, 256, 256, 256, 4) < cost.classical_flops(256, 256, 256)


class TestSpeedupPerStep:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("strassen", 8 / 7 - 1),       # 14%
            ("hk223", 12 / 11 - 1),        # 9%
            ("hk225", 20 / 18 - 1),        # 11%
            ("hk224", 16 / 14 - 1),        # 14%
            ("s333", 27 / 23 - 1),         # 17%
            ("s233", 18 / 15 - 1),         # 20%
            ("s234", 24 / 20 - 1),         # 20%
            ("s244", 32 / 26 - 1),         # 23%
        ],
    )
    def test_table2_values(self, name, expected):
        """The multiplication-speedup-per-step column of Table 2."""
        assert cost.speedup_per_step(get_algorithm(name)) == pytest.approx(expected)


class TestReadWriteCounts:
    def test_strassen_pairwise(self):
        s = strassen()
        reads, writes = cost.addition_rw_counts(s, "pairwise")
        nnz = sum(s.nnz())  # 36
        assert writes == nnz
        assert reads == 2 * nnz - 2 * 7 - 4

    def test_strassen_write_once(self):
        s = strassen()
        reads, writes = cost.addition_rw_counts(s, "write_once")
        assert reads == sum(s.nnz())
        # 2R + MN minus the 4 copy-only chains (S3, S4, T2, T5)
        assert writes == 2 * 7 + 4 - 4

    def test_strassen_streaming(self):
        s = strassen()
        reads, writes = cost.addition_rw_counts(s, "streaming")
        assert reads == 4 + 4 + 7  # MK + KN + R

    def test_ordering_reads(self):
        """pairwise reads >= write-once reads >= streaming reads."""
        for name in ("strassen", "s233", "s244"):
            alg = get_algorithm(name)
            rp, _ = cost.addition_rw_counts(alg, "pairwise")
            rw, _ = cost.addition_rw_counts(alg, "write_once")
            rs, _ = cost.addition_rw_counts(alg, "streaming")
            assert rp >= rw >= rs

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            cost.addition_rw_counts(strassen(), "magic")


class TestCseDelta:
    def test_breakeven_at_four_uses(self):
        """Section 3.3: a length-2 subexpression must appear at least four
        times for elimination to reduce reads+writes."""
        assert cost.cse_rw_delta(2) > 0
        assert cost.cse_rw_delta(3) == 0
        assert cost.cse_rw_delta(4) < 0


class TestMemory:
    def test_bfs_memory_factor(self):
        # Strassen: R/(MN) = 7/4 per level (Section 4.2)
        assert cost.bfs_memory_factor(strassen()) == pytest.approx(7 / 4)
        assert cost.bfs_memory_factor(strassen(), 2) == pytest.approx((7 / 4) ** 2)

    def test_temporaries(self):
        s = strassen()
        assert cost.temporaries_memory(s, "pairwise") == 2
        assert cost.temporaries_memory(s, "write_once") == 2
        assert cost.temporaries_memory(s, "streaming") == 14

    def test_temporaries_unknown(self):
        with pytest.raises(ValueError):
            cost.temporaries_memory(strassen(), "x")


class TestExponents:
    def test_strassen_exponent(self):
        assert strassen().exponent == pytest.approx(math.log2(7))

    def test_composed_54_paper_value(self):
        """<3,3,6> o <3,6,3> o <6,3,3> at rank 40 each: omega ~= 2.7748."""
        omega = cost.composed_exponent(
            [(3, 3, 6), (3, 6, 3), (6, 3, 3)], [40, 40, 40]
        )
        assert omega == pytest.approx(3 * math.log(40) / math.log(54), rel=1e-12)
        assert omega < 2.78

    def test_our_composed_exponent_with_fallback_ranks(self):
        """With the rank-45 fallback the composition is no longer faster
        than Strassen -- recorded honestly in EXPERIMENTS.md."""
        from repro.algorithms import get_algorithm

        r = get_algorithm("s336").rank
        omega = cost.composed_exponent(
            [(3, 3, 6), (3, 6, 3), (6, 3, 3)], [r, r, r]
        )
        if r == 40:
            assert omega < math.log2(7)
        else:
            assert omega == pytest.approx(3 * math.log(r) / math.log(54))

    def test_classical_exponent_is_three(self):
        assert classical(3, 3, 3).exponent == pytest.approx(3.0)
