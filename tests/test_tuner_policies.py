"""Tests for online tuning policies, the fingerprinted plan cache, and the
hardened CLI paths (``repro tune --policy``, ``repro cache``).

The convergence test scripts plan timings through a fake monotonic clock
(patched into both the online policy and the offline measurement path),
so "the online policy promotes the same winner the offline tuner finds"
is asserted exactly, not statistically.
"""

import json

import numpy as np
import pytest
from conftest import FakeClock, run_cli

from repro import cli, tuner
from repro.bench.machine import fingerprint_digest, machine_fingerprint
from repro.tuner import dispatch, measure
from repro.tuner.cache import PlanCache, problem_key
from repro.tuner.policy import OnlineTunePolicy, get_policy
from repro.tuner.space import Plan


@pytest.fixture
def cache(tmp_path):
    return PlanCache(tmp_path / "plans.json")


# --------------------------------------------------------------- fingerprint
class TestFingerprint:
    def test_fingerprint_fields_and_stability(self):
        fp = machine_fingerprint()
        assert {"cpu", "cores", "blas", "blas_threads", "numpy"} <= set(fp)
        assert fingerprint_digest() == fingerprint_digest()
        assert fingerprint_digest({"cpu": "other"}) != fingerprint_digest()

    def test_entries_are_stamped(self, cache):
        cache.put(512, 512, 512, "float64", 1, Plan())
        ent = cache.entry(512, 512, 512, "float64", 1)
        assert ent["fingerprint"] == fingerprint_digest()

    def test_forged_fingerprint_bypassed_not_crashed(self, tmp_path):
        """A cache written under another machine's fingerprint must miss
        (dispatch falls through to the cost model) rather than crash or,
        worse, be trusted."""
        path = tmp_path / "plans.json"
        foreign = PlanCache(path, fingerprint="forged-elsewhere")
        pinned = Plan(algorithm="strassen", steps=2)
        foreign.put(640, 640, 640, "float64", 1, pinned)
        assert foreign.save()
        # same file, this machine's fingerprint: entry is stale
        local = PlanCache(path)
        assert local.get(640, 640, 640, "float64", 1) is None
        assert local.nearest(650, 640, 640, "float64", 1) is None
        plan, source = tuner.get_plan(640, 640, 640, threads=1, cache=local)
        assert source == "model"
        # ... and matmul still computes the right product
        A = np.linspace(-1, 1, 200 * 150).reshape(200, 150)
        B = np.linspace(1, -1, 150 * 180).reshape(150, 180)
        C = tuner.matmul(A, B, threads=1, cache=local)
        np.testing.assert_allclose(C, A @ B, atol=1e-9)

    def test_refreshing_a_stale_key_overwrites_the_stamp(self, tmp_path):
        path = tmp_path / "plans.json"
        foreign = PlanCache(path, fingerprint="forged-elsewhere")
        foreign.put(512, 512, 512, "float64", 1, Plan())
        foreign.save()
        local = PlanCache(path)
        local.put(512, 512, 512, "float64", 1, Plan(algorithm="strassen",
                                                    steps=1))
        assert local.stale_keys() == []
        assert local.get(512, 512, 512, "float64", 1) is not None


class TestInvalidation:
    def _mixed_cache(self, path):
        """One stale (foreign) entry, one fresh (local) entry."""
        foreign = PlanCache(path, fingerprint="forged-elsewhere")
        foreign.put(512, 512, 512, "float64", 1, Plan())
        foreign.save()
        local = PlanCache(path)
        local.put(1024, 1024, 1024, "float64", 1,
                  Plan(algorithm="strassen", steps=2))
        local.save()
        return PlanCache(path)

    def test_invalidate_clears_only_stale(self, tmp_path):
        cache = self._mixed_cache(tmp_path / "plans.json")
        assert len(cache) == 2
        removed = cache.invalidate()
        assert removed == [problem_key(512, 512, 512, "float64", 1)]
        assert len(cache) == 1
        assert cache.get(1024, 1024, 1024, "float64", 1) is not None

    def test_invalidate_all(self, tmp_path):
        cache = self._mixed_cache(tmp_path / "plans.json")
        removed = cache.invalidate(stale_only=False)
        assert len(removed) == 2 and len(cache) == 0

    def test_cli_invalidate_clears_only_stale(self, tmp_path):
        path = tmp_path / "plans.json"
        self._mixed_cache(path)
        rc, text = run_cli("cache", "invalidate", "--cache", str(path))
        assert rc == 0
        assert "removed 1 stale" in text
        survivor = PlanCache(path)
        assert len(survivor) == 1
        assert survivor.get(1024, 1024, 1024, "float64", 1) is not None

    def test_cli_show_marks_stale(self, tmp_path):
        path = tmp_path / "plans.json"
        self._mixed_cache(path)
        rc, text = run_cli("cache", "show", "--cache", str(path))
        assert rc == 0
        assert "2 entries, 1 stale" in text
        assert "STALE" in text and "fresh" in text

    def test_cli_show_marks_stale_schema_and_renders_pprime(self, tmp_path):
        """v4 entries show as STALE (schema v4); fresh v5 parallel entries
        render their scheme and explicit P'."""
        path = tmp_path / "plans.json"
        cache = PlanCache(path)
        cache.put(512, 512, 512, "float64", 4,
                  Plan(algorithm="strassen", steps=2,
                       scheme="hybrid-subgroup", threads=4, subgroup=2))
        cache.save()
        raw = json.loads(path.read_text())
        old_key = problem_key(640, 640, 640, "float64", 1)
        raw["entries"][old_key] = {
            "plan": Plan(algorithm="winograd", steps=1).to_dict(),
            "seconds": 0.5, "gflops": 1.0,
            "fingerprint": cache.fingerprint, "schema": 4,
        }
        path.write_text(json.dumps(raw))
        rc, text = run_cli("cache", "show", "--cache", str(path))
        assert rc == 0
        assert "STALE (schema v4)" in text
        assert "hybrid-subgroup" in text and "P'=2" in text

    def test_cli_invalidate_clears_stale_schema(self, tmp_path):
        """`repro cache invalidate` is the v4 -> v5 migration broom."""
        path = tmp_path / "plans.json"
        cache = PlanCache(path)
        cache.put(512, 512, 512, "float64", 1, Plan())
        cache.save()
        raw = json.loads(path.read_text())
        raw["schema"] = 4
        path.write_text(json.dumps(raw))
        rc, text = run_cli("cache", "invalidate", "--cache", str(path))
        assert rc == 0
        assert "removed 1 stale" in text
        assert len(PlanCache(path)) == 0


# ------------------------------------------------------------ online policy
class TestOnlineConvergence:
    def _scripted_world(self, monkeypatch, p, q, r, costs):
        """Patch execution + measurement so plan timings follow ``costs``.

        ``costs`` maps ``plan.describe()`` to scripted seconds; both the
        online policy's amortized timing and the offline tuner's
        ``median_time`` observe exactly those durations via a shared fake
        clock.
        """
        clock = FakeClock()

        def fake_execute(plan, A, B, pool=None, out=None, workspace=None):
            clock.advance(costs[plan.describe()])
            return A @ B

        def fake_median_time(fn, trials=3, warmup=1):
            t0 = clock.now()
            fn()
            return clock.now() - t0

        monkeypatch.setattr(dispatch, "execute_plan", fake_execute)
        monkeypatch.setattr(measure, "median_time", fake_median_time)
        return clock

    def test_online_converges_to_offline_winner(self, monkeypatch,
                                                tmp_path):
        """Acceptance criterion: after a bounded number of dispatches on a
        fixed shape, the online-cached plan equals the offline winner."""
        p = q = r = 192
        shortlist = tuner.enumerate_plans(p, q, r, threads=1,
                                          max_candidates=3)
        assert len(shortlist) == 3
        # script the *last*-ranked candidate as the true winner, so
        # converging to it requires real exploration, not cost-model luck
        costs = {pl.describe(): float(3 - i) for i, pl in
                 enumerate(shortlist)}
        clock = self._scripted_world(monkeypatch, p, q, r, costs)
        true_winner = shortlist[-1]

        offline = PlanCache(tmp_path / "offline.json")
        rep = measure.tune_shape(p, q, r, threads=1, max_candidates=3,
                                 cache=offline, persist=False)
        assert rep.best.plan == true_winner

        online = PlanCache(tmp_path / "online.json")
        policy = OnlineTunePolicy(shortlist=3, min_trials=2, epsilon=1.0,
                                  clock=clock.now, persist=False, seed=0)
        A = np.zeros((p, q))
        B = np.zeros((q, r))
        budget = 3 * 2  # shortlist * min_trials: the promotion bound
        for n in range(1, budget + 1):
            tuner.matmul(A, B, threads=1, cache=online, tune=policy)
            if policy.converged(p, q, r, "float64", 1):
                break
        assert policy.converged(p, q, r, "float64", 1)
        assert n <= budget
        assert online.get(p, q, r, "float64", 1) == rep.best.plan

    def test_after_convergence_dispatch_is_cache_hit(self, monkeypatch,
                                                     tmp_path):
        p = q = r = 192
        shortlist = tuner.enumerate_plans(p, q, r, threads=1,
                                          max_candidates=2)
        costs = {pl.describe(): 1.0 + i for i, pl in enumerate(shortlist)}
        clock = self._scripted_world(monkeypatch, p, q, r, costs)
        cache = PlanCache(tmp_path / "plans.json")
        policy = OnlineTunePolicy(shortlist=2, min_trials=1, epsilon=1.0,
                                  clock=clock.now, persist=False)
        A = np.zeros((p, q))
        B = np.zeros((q, r))
        for _ in range(4):
            tuner.matmul(A, B, threads=1, cache=cache, tune=policy)
        t_settled = clock.now()
        plan, source = policy.select(p, q, r, "float64", 1, cache)
        assert source == "cache"
        # cache-hit dispatches are not timed by the policy
        assert not policy.wants_timing(source)
        tuner.matmul(A, B, threads=1, cache=cache, tune=policy)
        assert clock.now() > t_settled  # the run itself still 'took time'

    def test_exploration_is_deterministic(self, monkeypatch, tmp_path):
        """Same seed, same call sequence -> same plan sequence (the
        epsilon-greedy RNG is seeded per problem key)."""
        p = q = r = 192
        shortlist = tuner.enumerate_plans(p, q, r, threads=1,
                                          max_candidates=3)
        costs = {pl.describe(): 1.0 for pl in shortlist}
        clock = self._scripted_world(monkeypatch, p, q, r, costs)
        sequences = []
        for _ in range(2):
            policy = OnlineTunePolicy(shortlist=3, min_trials=3,
                                      epsilon=0.5, clock=clock.now,
                                      persist=False, seed=42,
                                      max_dispatches=100)
            cache = PlanCache(tmp_path / "plans.json",
                              fingerprint="unused-box")
            seen = [policy.select(p, q, r, "float64", 1, cache) for _ in
                    range(6)]
            picks = []
            for plan, source in seen:
                assert source == "online"
                policy.observe(p, q, r, "float64", 1, cache, plan, 1.0)
                picks.append(plan.describe())
            sequences.append(picks)
        assert sequences[0] == sequences[1]

    def test_budget_exhaustion_promotes_best_observed(self, monkeypatch,
                                                      tmp_path):
        """max_dispatches is a hard budget: promotion happens even if some
        candidate never reached min_trials."""
        p = q = r = 192
        shortlist = tuner.enumerate_plans(p, q, r, threads=1,
                                          max_candidates=3)
        costs = {pl.describe(): 1.0 + i for i, pl in enumerate(shortlist)}
        clock = self._scripted_world(monkeypatch, p, q, r, costs)
        cache = PlanCache(tmp_path / "plans.json")
        policy = OnlineTunePolicy(shortlist=3, min_trials=50, epsilon=0.0,
                                  max_dispatches=4, clock=clock.now,
                                  persist=False)
        A = np.zeros((p, q))
        B = np.zeros((q, r))
        for _ in range(4):
            tuner.matmul(A, B, threads=1, cache=cache, tune=policy)
        assert policy.converged(p, q, r, "float64", 1)
        assert cache.get(p, q, r, "float64", 1) is not None

    def test_online_trusts_fresh_nearest_neighbour(self, cache):
        """The dispatch contract's nearest step holds under tune="online":
        a fresh adjacent-shape plan is dispatched (and not re-explored)."""
        pinned = Plan(algorithm="strassen", steps=1)
        cache.put(600, 600, 600, "float64", 1, pinned)
        policy = OnlineTunePolicy(persist=False)
        plan, source = policy.select(620, 600, 640, "float64", 1, cache)
        assert (plan, source) == (pinned, "nearest")
        assert not policy.wants_timing(source)

    def test_cross_thread_transfer_does_not_end_exploration(self, cache):
        """A cross-thread transfer is a serving prior, not measured
        evidence: the online policies keep exploring at the queried
        thread count (where, e.g., the winning P' may not even exist at
        the source thread count), while pure dispatch still serves the
        retargeted transfer in the meantime."""
        cache.put(600, 600, 600, "float64", 2,
                  Plan(algorithm="strassen", steps=1, scheme="bfs",
                       threads=2))
        for policy in (OnlineTunePolicy(persist=False),
                       tuner.UCBTunePolicy(persist=False)):
            plan, source = policy.select(600, 600, 600, "float64", 4, cache)
            assert source == "online"
            assert policy.wants_timing(source)
        # the never-policy dispatch path serves the transfer meanwhile
        got, src = tuner.get_plan(600, 600, 600, threads=4, cache=cache)
        assert src == "transfer" and got.threads == 4

    def test_auto_policy_retunes_on_cross_thread_transfer(self, cache,
                                                          monkeypatch):
        """tune="auto" treats a transfer like a cost-model miss: the plan
        was never measured at this thread count, so the first call runs
        the blocking sweep and caches a measured winner."""
        from repro.tuner import measure
        from repro.tuner.policy import AutoTunePolicy

        cache.put(600, 600, 600, "float64", 2,
                  Plan(algorithm="strassen", steps=1, scheme="bfs",
                       threads=2))
        tuned = Plan(algorithm="winograd", steps=1, scheme="hybrid",
                     threads=4)
        calls = []

        def fake_tune_shape(p, q, r, **kw):
            calls.append((p, q, r, kw["threads"]))
            m = measure.Measurement(tuned, 0.1, 1.0)
            return measure.ShapeReport(p, q, r, "float64", kw["threads"],
                                       (m,))

        monkeypatch.setattr(measure, "tune_shape", fake_tune_shape)
        plan, source = AutoTunePolicy().select(600, 600, 600, "float64", 4,
                                               cache)
        assert calls == [(600, 600, 600, 4)]
        assert (plan, source) == (tuned, "tuned")

    def test_converged_policy_repromotes_into_fresh_cache(self, monkeypatch,
                                                          tmp_path):
        """A policy that already converged must re-commit its winner when
        handed a cache that misses (new process cache, post-clear), not
        explore forever with an unreachable done-state."""
        p = q = r = 192
        shortlist = tuner.enumerate_plans(p, q, r, threads=1,
                                          max_candidates=2)
        costs = {pl.describe(): 1.0 + i for i, pl in enumerate(shortlist)}
        clock = self._scripted_world(monkeypatch, p, q, r, costs)
        policy = OnlineTunePolicy(shortlist=2, min_trials=1, epsilon=1.0,
                                  clock=clock.now, persist=False)
        c1 = PlanCache(tmp_path / "c1.json")
        A = np.zeros((p, q))
        B = np.zeros((q, r))
        for _ in range(3):
            tuner.matmul(A, B, threads=1, cache=c1, tune=policy)
        assert policy.converged(p, q, r, "float64", 1)
        winner = c1.get(p, q, r, "float64", 1)
        c2 = PlanCache(tmp_path / "c2.json")
        plan, source = policy.select(p, q, r, "float64", 1, c2)
        assert (plan, source) == (winner, "cache")
        assert c2.get(p, q, r, "float64", 1) == winner

    def test_float32_fast_path_starts_earlier(self, cache):
        """The dtype-aware trivial threshold: 96^3 is trivial for float64
        (leaf 64) but inside the float32 space (leaf 32)."""
        _, src64 = tuner.get_plan(96, 96, 96, dtype="float64", threads=1,
                                  cache=cache)
        plan32, src32 = tuner.get_plan(96, 96, 96, dtype="float32",
                                       threads=1, cache=cache)
        assert src64 == "trivial"
        assert src32 == "model"
        A, B = tuner.tuning_operands(96, 96, 96, dtype="float32", seed=2)
        C = tuner.matmul(A, B, threads=1, cache=cache)
        ref = A.astype(np.float64) @ B.astype(np.float64)
        assert np.linalg.norm(C - ref) / np.linalg.norm(ref) < 1e-4

    def test_shared_online_policy_accumulates_state(self):
        a = get_policy("online")
        b = get_policy("online")
        assert a is b
        assert get_policy("online", min_trials=5) is not a  # private knobs
        tuner.reset_shared_policies()
        assert get_policy("online") is not a

    def test_policy_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            OnlineTunePolicy(epsilon=1.5)

    @pytest.mark.slow
    def test_online_tuning_real_timings(self, cache):
        """No mocks: online exploration on a real shape converges and the
        promoted plan dispatches to a correct product."""
        p = q = r = 160
        policy = OnlineTunePolicy(shortlist=2, min_trials=1, epsilon=1.0,
                                  persist=True)
        A, B = tuner.tuning_operands(p, q, r, seed=11)
        for _ in range(4):
            C = tuner.matmul(A, B, threads=1, cache=cache, tune=policy)
            np.testing.assert_allclose(C, A @ B, atol=1e-9)
        assert policy.converged(p, q, r, "float64", 1)
        assert PlanCache(cache.path).get(p, q, r, "float64", 1) is not None


# ---------------------------------------------------------------- UCB policy
class TestUCBConvergence:
    """Mocked-clock UCB1 tests: convergence to the offline winner, the
    epsilon-greedy cache-promotion contract, and per-key deterministic
    exploration counts (UCB uses no RNG at all)."""

    def _scripted_world(self, monkeypatch, costs):
        clock = FakeClock()

        def fake_execute(plan, A, B, pool=None, out=None, workspace=None):
            clock.advance(costs[plan.describe()])
            return A @ B

        def fake_median_time(fn, trials=3, warmup=1):
            t0 = clock.now()
            fn()
            return clock.now() - t0

        monkeypatch.setattr(dispatch, "execute_plan", fake_execute)
        monkeypatch.setattr(measure, "median_time", fake_median_time)
        return clock

    def test_ucb_converges_to_offline_winner(self, monkeypatch, tmp_path):
        p = q = r = 192
        shortlist = tuner.enumerate_plans(p, q, r, threads=1,
                                          max_candidates=3)
        assert len(shortlist) == 3
        # the last-ranked candidate is the true winner: converging to it
        # requires actual exploration, not cost-model luck
        costs = {pl.describe(): float(3 - i) for i, pl in
                 enumerate(shortlist)}
        clock = self._scripted_world(monkeypatch, costs)
        offline = PlanCache(tmp_path / "offline.json")
        rep = measure.tune_shape(p, q, r, threads=1, max_candidates=3,
                                 cache=offline, persist=False)
        assert rep.best.plan == shortlist[-1]

        online = PlanCache(tmp_path / "ucb.json")
        policy = tuner.UCBTunePolicy(shortlist=3, min_trials=2,
                                     clock=clock.now, persist=False)
        A = np.zeros((p, q))
        B = np.zeros((q, r))
        for n in range(1, policy.max_dispatches + 1):
            tuner.matmul(A, B, threads=1, cache=online, tune=policy)
            if policy.converged(p, q, r, "float64", 1):
                break
        assert policy.converged(p, q, r, "float64", 1)
        # the confidence bonus revisits the incumbent before finishing the
        # undersampled arms, so UCB may spend a few dispatches more than
        # epsilon-greedy's shortlist * min_trials floor -- but not many
        assert n <= 2 * 3 * 2
        assert online.get(p, q, r, "float64", 1) == rep.best.plan

    def test_ucb_matches_epsilon_greedy_promotion_contract(self, monkeypatch,
                                                           tmp_path):
        """Same scripted world, same shortlist: UCB and epsilon-greedy
        promote the same winner, stamp the same entry fields, and both
        serve cache hits (untimed) afterwards."""
        p = q = r = 192
        shortlist = tuner.enumerate_plans(p, q, r, threads=1,
                                          max_candidates=3)
        costs = {pl.describe(): 1.0 + (i % 2) for i, pl in
                 enumerate(shortlist)}
        clock = self._scripted_world(monkeypatch, costs)
        A = np.zeros((p, q))
        B = np.zeros((q, r))
        promoted = {}
        for name, policy in (
            ("eps", OnlineTunePolicy(shortlist=3, min_trials=1, epsilon=1.0,
                                     clock=clock.now, persist=False)),
            ("ucb", tuner.UCBTunePolicy(shortlist=3, min_trials=1,
                                        clock=clock.now, persist=False)),
        ):
            cache = PlanCache(tmp_path / f"{name}.json")
            for _ in range(8):
                tuner.matmul(A, B, threads=1, cache=cache, tune=policy)
                if policy.converged(p, q, r, "float64", 1):
                    break
            assert policy.converged(p, q, r, "float64", 1)
            ent = cache.entry(p, q, r, "float64", 1)
            assert ent["seconds"] is not None and ent["gflops"] is not None
            plan, source = policy.select(p, q, r, "float64", 1, cache)
            assert source == "cache"
            assert not policy.wants_timing(source)
            promoted[name] = cache.get(p, q, r, "float64", 1)
        assert promoted["eps"] == promoted["ucb"]

    def test_ucb_exploration_counts_deterministic_per_key(self, tmp_path):
        """No RNG anywhere: two fresh policies fed identical observations
        pick identical plan sequences, *regardless of seed* -- the
        exploration counts for a problem key are a pure function of the
        observed durations."""
        p = q = r = 192
        sequences = []
        for seed in (0, 99):
            policy = tuner.UCBTunePolicy(shortlist=3, min_trials=4,
                                         seed=seed, persist=False,
                                         max_dispatches=100)
            cache = PlanCache(tmp_path / "unused.json",
                              fingerprint="unused-box")
            picks = []
            for step in range(10):
                plan, source = policy.select(p, q, r, "float64", 1, cache)
                assert source == "online"
                # scripted durations depend only on the step index, so
                # both runs observe identical histories
                policy.observe(p, q, r, "float64", 1, cache, plan,
                               1.0 + (step % 3) * 0.25)
                picks.append(plan.describe())
            sequences.append(picks)
        assert sequences[0] == sequences[1]

    def test_ucb_budget_exhaustion_promotes_best_observed(self, monkeypatch,
                                                          tmp_path):
        p = q = r = 192
        shortlist = tuner.enumerate_plans(p, q, r, threads=1,
                                          max_candidates=3)
        costs = {pl.describe(): 1.0 + i for i, pl in enumerate(shortlist)}
        clock = self._scripted_world(monkeypatch, costs)
        cache = PlanCache(tmp_path / "plans.json")
        policy = tuner.UCBTunePolicy(shortlist=3, min_trials=50,
                                     max_dispatches=4, clock=clock.now,
                                     persist=False)
        A = np.zeros((p, q))
        B = np.zeros((q, r))
        for _ in range(4):
            tuner.matmul(A, B, threads=1, cache=cache, tune=policy)
        assert policy.converged(p, q, r, "float64", 1)
        assert cache.get(p, q, r, "float64", 1) is not None

    def test_ucb_is_registered_policy(self):
        from repro.tuner.policy import POLICIES

        assert POLICIES["ucb"] is tuner.UCBTunePolicy
        a = get_policy("ucb")
        assert isinstance(a, tuner.UCBTunePolicy)
        assert get_policy("ucb") is a  # shared instance, like "online"
        tuner.reset_shared_policies()

    def test_ucb_rejects_negative_exploration(self):
        with pytest.raises(ValueError):
            tuner.UCBTunePolicy(exploration=-0.5)

    def test_tune_ucb_cli_converges(self, tmp_path):
        """`repro tune --policy ucb` end-to-end on real (tiny) timings."""
        path = tmp_path / "plans.json"
        rc, text = run_cli(
            "tune", "--policy", "ucb", "--shapes", "192", "--threads",
            "1", "--dispatches", "12", "--candidates", "2",
            "--cache", str(path),
        )
        assert rc == 0
        assert "converged" in text
        cache = PlanCache(path)
        assert len(cache) == 1
        ent = cache.entry(192, 192, 192, "float64", 1)
        assert "subgroup" in ent  # v5 entries carry the explicit P' field


# ------------------------------------------------------- measure determinism
class TestMeasureDeterminism:
    def test_operands_reproducible(self):
        A1, B1 = tuner.tuning_operands(96, 64, 80, "float64", seed=5)
        A2, B2 = tuner.tuning_operands(96, 64, 80, "float64", seed=5)
        np.testing.assert_array_equal(A1, A2)
        np.testing.assert_array_equal(B1, B2)

    def test_operands_vary_by_shape_dtype_seed(self):
        base, _ = tuner.tuning_operands(96, 64, 80, "float64", seed=5)
        other_seed, _ = tuner.tuning_operands(96, 64, 80, "float64", seed=6)
        other_dtype, _ = tuner.tuning_operands(96, 64, 80, "float32", seed=5)
        assert not np.array_equal(base, other_seed)
        assert not np.array_equal(base, other_dtype.astype(np.float64))

    def test_operands_dtype_and_range(self):
        A, B = tuner.tuning_operands(64, 48, 56, "float32", seed=0)
        assert A.dtype == np.float32 and B.dtype == np.float32
        assert float(np.abs(A).max()) <= 1.0

    def test_repeated_tunes_measure_identical_operands(self, monkeypatch,
                                                       cache):
        """The satellite fix, asserted end-to-end: two tune_shape runs see
        bit-identical operand matrices."""
        seen = []
        real = measure.tuning_operands

        def spy(*a, **kw):
            out = real(*a, **kw)
            seen.append(out)
            return out

        monkeypatch.setattr(measure, "tuning_operands", spy)
        for _ in range(2):
            measure.tune_shape(160, 160, 160, threads=1, budget_s=2.0,
                               trials=1, max_candidates=1, cache=cache,
                               persist=False, seed=9)
        (A1, B1), (A2, B2) = seen
        np.testing.assert_array_equal(A1, A2)
        np.testing.assert_array_equal(B1, B2)


# ------------------------------------------------------------ CLI hardening
class TestCliErrorPaths:
    def test_tune_bad_shapes(self, capsys):
        rc, _ = run_cli("tune", "--shapes", "12xbogus", "--dry-run")
        assert rc == 2
        assert "bad shape" in capsys.readouterr().err

    def test_tune_bad_policy_rejected_by_parser(self):
        with pytest.raises(SystemExit) as exc:
            cli._build_parser().parse_args(
                ["tune", "--policy", "sometimes"])
        assert exc.value.code == 2

    def test_bad_tune_mode_in_api(self, cache):
        A = np.zeros((8, 8))
        with pytest.raises(ValueError):
            tuner.matmul(A, A, cache=cache, tune="sometimes")

    def test_cache_show_corrupt_json(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text("{ not json at all")
        rc, text = run_cli("cache", "show", "--cache", str(path))
        assert rc == 0
        assert "0 entries" in text

    def test_cache_show_survives_invalid_plan_entry(self, tmp_path):
        """The diagnosis tool must render a row for an entry it cannot
        decode (hand-edited or future-release plan dict), not crash."""
        path = tmp_path / "plans.json"
        cache = PlanCache(path)
        cache.put(512, 512, 512, "float64", 1, Plan())
        cache.save()
        raw = json.loads(path.read_text())
        key = problem_key(512, 512, 512, "float64", 1)
        raw["entries"][key]["plan"] = {"scheme": "bogus"}
        path.write_text(json.dumps(raw))
        rc, text = run_cli("cache", "show", "--cache", str(path))
        assert rc == 0
        assert " -> ?" in text

    def test_cache_show_empty_file(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text("")
        rc, text = run_cli("cache", "show", "--cache", str(path))
        assert rc == 0
        assert "0 entries" in text

    def test_tune_with_corrupt_cache_recovers(self, tmp_path):
        """A corrupt plan-cache file is ignored, re-tuned over, and
        rewritten valid."""
        path = tmp_path / "plans.json"
        path.write_text('{"schema": "garbage"')
        rc, text = run_cli(
            "tune", "--shapes", "160", "--threads", "1", "--trials", "1",
            "--candidates", "1", "--budget-seconds", "2",
            "--cache", str(path),
        )
        assert rc == 0 and "tuned 1 shape" in text
        assert json.loads(path.read_text())["schema"] == tuner.SCHEMA_VERSION

    def test_unwritable_cache_dir_falls_back_to_memory(self, tmp_path):
        """A cache path whose parent cannot be created (a file stands in
        the way) must not break tuning: it degrades to in-memory."""
        blocker = tmp_path / "blocker"
        blocker.write_text("i am a file, not a directory")
        path = blocker / "plans.json"
        cache = PlanCache(path)
        cache.put(512, 512, 512, "float64", 1, Plan())
        assert cache.save() is False
        assert cache.save_error is not None
        # entry still usable in-memory
        assert cache.get(512, 512, 512, "float64", 1) is not None
        rc, text = run_cli(
            "tune", "--shapes", "160", "--threads", "1", "--trials", "1",
            "--candidates", "1", "--budget-seconds", "2",
            "--cache", str(path),
        )
        assert rc == 0
        assert "warning: cache not persisted" in text

    def test_save_unserializable_entry_degrades_not_raises(self, tmp_path):
        """A non-JSON value smuggled into an entry (e.g. a numpy scalar)
        must degrade to in-memory like an unwritable dir -- and must not
        leak the mkstemp sibling temp file."""
        cache = PlanCache(tmp_path / "plans.json")
        cache.put(512, 512, 512, "float64", 1, Plan(),
                  seconds=np.float32(0.25))
        assert cache.save() is False
        assert isinstance(cache.save_error, TypeError)
        assert list(tmp_path.iterdir()) == []  # no temp-file litter

    def test_fingerprint_ignores_live_blas_state(self):
        """The digest is configuration, not mutable state: computing it
        inside a blas_threads context must not change it."""
        from repro.parallel import blas

        machine_fingerprint.cache_clear()
        with blas.blas_threads(1):
            inside = fingerprint_digest()
        machine_fingerprint.cache_clear()
        outside = fingerprint_digest()
        assert inside == outside

    def test_tune_online_cli_converges(self, tmp_path):
        path = tmp_path / "plans.json"
        rc, text = run_cli(
            "tune", "--policy", "online", "--shapes", "192", "--threads",
            "1", "--dispatches", "12", "--candidates", "2",
            "--cache", str(path),
        )
        assert rc == 0
        assert "converged" in text
        assert len(PlanCache(path)) == 1

    def test_tune_online_trivial_shape(self, tmp_path):
        rc, text = run_cli(
            "tune", "--policy", "online", "--shapes", "64", "--threads",
            "1", "--cache", str(tmp_path / "plans.json"),
        )
        assert rc == 0 and "trivial" in text

    def test_cache_invalidate_unwritable(self, tmp_path):
        """Invalidation that cannot persist reports failure (exit 1)
        instead of silently pretending the file changed."""
        path = tmp_path / "plans.json"
        foreign = PlanCache(path, fingerprint="forged-elsewhere")
        foreign.put(512, 512, 512, "float64", 1, Plan())
        foreign.save()
        path.chmod(0o444)
        parent_mode = tmp_path.stat().st_mode
        tmp_path.chmod(0o555)
        try:
            import os

            if os.access(str(tmp_path), os.W_OK):
                pytest.skip("running as root: directory modes not enforced")
            rc, _ = run_cli("cache", "invalidate", "--cache", str(path))
            assert rc == 1
        finally:
            tmp_path.chmod(parent_mode)
            path.chmod(0o644)