"""Tests for repro.tuner.batched: one plan/arena/pool for a whole batch.

Five claims are pinned down here:

1. **bit-for-bit equivalence** -- ``matmul_batched`` equals a per-element
   loop of ``execute_plan`` with the *same plan* (not merely allclose to
   BLAS: fast algorithms differ from gemm in rounding, but batching must
   not change a single bit relative to the per-call path it amortizes),
   across batch modes, schemes, dtypes and shapes straddling the trivial
   boundary;
2. the stacked 3-D and list-of-2-D operand forms agree, and malformed
   batches (ragged, mixed-dtype, bad ``out=``) are rejected with
   explanatory errors rather than silently looped;
3. **amortization is real**: a warm batched call resolves one plan, runs
   under one span, and builds zero new arenas (telemetry counters), and
   with ``out=`` stays under the per-call byte budget for the whole batch
   (tracking allocator);
4. resolution sources behave: ``forced`` pins the mode, ``model``
   cost-ranks the within/elementwise heads, ``tune="auto"`` measures once
   and the committed batched entry is served as ``cache`` on reload;
5. the batched cache keys coexist with per-call keys -- ``nearest`` skips
   them, ``get_batched`` falls back to the nearest batch size.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import get_algorithm
from repro.core.cost import batch_cost
from repro.core.workspace import WorkspacePool, track_allocations
from repro.obs import telemetry
from repro.tuner import (
    BatchPlan,
    Plan,
    PlanCache,
    batched,
    batched_key,
    dispatch,
    enumerate_batch_plans,
    measure,
    reset_workspaces,
)
from repro.tuner.cache import problem_key

LARGE = 1 << 20  # the warm-path "large allocation" threshold


@pytest.fixture(autouse=True)
def clean_state():
    """Batched serving leans on three process-global caches (workspaces,
    arena pools, telemetry); every test starts and ends clean."""
    reset_workspaces()
    batched.reset_batch_pools()
    telemetry.disable()
    telemetry.reset()
    yield
    reset_workspaces()
    batched.reset_batch_pools()
    telemetry.disable()
    telemetry.reset()


@pytest.fixture()
def cache(tmp_path):
    return PlanCache(tmp_path / "plans.json")


def batch_operands(p, q, r, batch, dtype="float64", seed=0):
    return measure.batch_operands(p, q, r, batch, dtype=dtype, seed=seed)


def looped_reference(plan, a_list, b_list):
    """The per-element ground truth: the ordinary execution path, one
    element at a time, with the exact plan the batch will use."""
    pool = None
    if not plan.is_dgemm and plan.scheme != "sequential":
        pool = dispatch._shared_pool(plan.threads)
    return [dispatch.execute_plan(plan, a, b, pool=pool)
            for a, b in zip(a_list, b_list)]


# =========================================================================
# bit-for-bit equivalence with the per-call path
# =========================================================================
#: plans spanning the execution surface the batch can route through:
#: plain BLAS, the generated sequential module, and two parallel schemes
EQUIV_PLANS = [
    Plan(threads=1),  # dgemm
    Plan(algorithm="strassen", steps=1, scheme="sequential", threads=1),
    Plan(algorithm="strassen", steps=1, scheme="dfs", threads=2),
    Plan(algorithm="strassen", steps=2, scheme="hybrid", threads=2),
]


class TestBitForBit:
    @pytest.mark.parametrize("plan", EQUIV_PLANS,
                             ids=lambda p: p.describe())
    @pytest.mark.parametrize("mode", ["within", "elementwise"])
    def test_execute_batch_plan_matches_element_loop(self, plan, mode):
        if mode == "elementwise" and (plan.scheme != "sequential"
                                      or plan.threads != 1):
            pytest.skip("elementwise fans out sequential element plans")
        workers = 2 if mode == "elementwise" else plan.threads
        bplan = BatchPlan(plan=plan, mode=mode, workers=workers)
        A, B = batch_operands(96, 96, 96, 5, seed=7)
        got = batched.execute_batch_plan(bplan, A, B)
        want = looped_reference(plan, list(A), list(B))
        for i in range(5):
            np.testing.assert_array_equal(got[i], want[i])

    @settings(deadline=None, max_examples=12)
    @given(
        n=st.sampled_from([64, 96, 120, 144]),
        batch=st.integers(min_value=1, max_value=6),
        dtype=st.sampled_from(["float32", "float64"]),
        mode=st.sampled_from(["within", "elementwise"]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_property_bit_for_bit(self, n, batch, dtype, mode, seed):
        """Shapes straddle ``trivial_dim`` (96 for f32, 128 for f64): the
        batch must be exact on both sides of the knee, in both modes."""
        plan = Plan(algorithm="strassen", steps=1, scheme="sequential",
                    threads=1)
        bplan = BatchPlan(plan=plan, mode=mode,
                          workers=2 if mode == "elementwise" else 1)
        A, B = batch_operands(n, n, n, batch, dtype=dtype, seed=seed)
        got = batched.execute_batch_plan(bplan, A, B)
        want = looped_reference(plan, list(A), list(B))
        for i in range(batch):
            np.testing.assert_array_equal(got[i], want[i])

    def test_rectangular_shapes(self):
        plan = Plan(algorithm="strassen", steps=1, scheme="sequential",
                    threads=1)
        bplan = BatchPlan(plan=plan, mode="within", workers=1)
        A, B = batch_operands(48, 96, 64, 3, seed=3)
        got = batched.execute_batch_plan(bplan, A, B)
        want = looped_reference(plan, list(A), list(B))
        assert got.shape == (3, 48, 64)
        for i in range(3):
            np.testing.assert_array_equal(got[i], want[i])

    def test_matmul_batched_allclose_to_blas(self, cache):
        A, B = batch_operands(64, 64, 64, 4, seed=11)
        got = batched.matmul_batched(A, B, threads=1, cache=cache)
        np.testing.assert_allclose(got, np.matmul(A, B), atol=1e-8 * 64)


# =========================================================================
# operand forms: stacked vs list, out=, rejection of malformed batches
# =========================================================================
class TestOperandForms:
    def test_stacked_and_list_paths_agree(self, cache):
        A, B = batch_operands(64, 64, 64, 4, seed=5)
        stacked = batched.matmul_batched(A, B, threads=1, cache=cache)
        listed = batched.matmul_batched(list(A), list(B), threads=1,
                                        cache=cache)
        assert isinstance(listed, list) and len(listed) == 4
        for i in range(4):
            np.testing.assert_array_equal(stacked[i], listed[i])

    def test_stacked_out_is_written_and_returned(self, cache):
        A, B = batch_operands(64, 64, 64, 3, seed=6)
        out = np.empty((3, 64, 64))
        got = batched.matmul_batched(A, B, out=out, threads=1, cache=cache)
        assert got is out
        np.testing.assert_allclose(out, np.matmul(A, B), atol=1e-8 * 64)

    def test_list_out_views_are_written(self, cache):
        A, B = batch_operands(64, 64, 64, 3, seed=8)
        outs = [np.empty((64, 64)) for _ in range(3)]
        got = batched.matmul_batched(list(A), list(B), out=outs, threads=1,
                                     cache=cache)
        assert got is outs
        for i in range(3):
            np.testing.assert_allclose(outs[i], A[i] @ B[i],
                                       atol=1e-8 * 64)

    def test_empty_stacked_batch(self, cache):
        A = np.empty((0, 32, 16))
        B = np.empty((0, 16, 8))
        got = batched.matmul_batched(A, B, threads=1, cache=cache)
        assert got.shape == (0, 32, 8)
        assert got.dtype == np.float64

    def test_empty_list_batch_raises(self, cache):
        with pytest.raises(ValueError, match="empty batch"):
            batched.matmul_batched([], [], threads=1, cache=cache)

    def test_ragged_batch_raises(self, cache):
        a = [np.ones((8, 8)), np.ones((16, 16))]
        b = [np.ones((8, 8)), np.ones((16, 16))]
        with pytest.raises(ValueError, match="ragged batch"):
            batched.matmul_batched(a, b, threads=1, cache=cache)

    def test_mixed_dtype_batch_raises(self, cache):
        a = [np.ones((8, 8)), np.ones((8, 8), dtype=np.float32)]
        b = [np.ones((8, 8)), np.ones((8, 8))]
        with pytest.raises(ValueError, match="mixed dtypes"):
            batched.matmul_batched(a, b, threads=1, cache=cache)

    def test_mismatched_batch_sizes_raise(self, cache):
        A, B = batch_operands(16, 16, 16, 3)
        with pytest.raises(ValueError, match="batch sizes differ"):
            batched.matmul_batched(A, B[:2], threads=1, cache=cache)

    def test_inner_dim_mismatch_raises(self, cache):
        A = np.ones((2, 8, 8))
        B = np.ones((2, 9, 8))
        with pytest.raises(ValueError, match="inner dimensions"):
            batched.matmul_batched(A, B, threads=1, cache=cache)

    def test_2d_operands_rejected_with_hint(self, cache):
        with pytest.raises(ValueError, match="must be 3-D"):
            batched.matmul_batched(np.ones((8, 8)), np.ones((8, 8)),
                                   threads=1, cache=cache)

    def test_out_overlapping_operand_raises(self, cache):
        A, B = batch_operands(16, 16, 16, 2)
        with pytest.raises(ValueError, match="overlap"):
            batched.matmul_batched(A, B, out=A, threads=1, cache=cache)

    def test_out_wrong_shape_raises(self, cache):
        A, B = batch_operands(16, 16, 16, 2)
        with pytest.raises(ValueError, match="shape"):
            batched.matmul_batched(A, B, out=np.empty((3, 16, 16)),
                                   threads=1, cache=cache)

    def test_bad_batch_mode_raises(self, cache):
        A, B = batch_operands(16, 16, 16, 2)
        with pytest.raises(ValueError, match="batch_mode"):
            batched.matmul_batched(A, B, threads=1, cache=cache,
                                   batch_mode="sideways")

    def test_online_tune_rejected_for_batches(self, cache):
        A, B = batch_operands(16, 16, 16, 2)
        with pytest.raises(ValueError, match="tune"):
            batched.matmul_batched(A, B, threads=1, cache=cache,
                                   tune="online")

    def test_threads_zero_raises(self, cache):
        A, B = batch_operands(16, 16, 16, 2)
        with pytest.raises(ValueError, match="threads"):
            batched.matmul_batched(A, B, threads=0, cache=cache)


# =========================================================================
# amortization: one plan, one arena (pool), one span per batch
# =========================================================================
class TestAmortization:
    def test_warm_batch_is_one_decision(self, cache):
        """The telemetry ledger of a warm batched call: exactly one
        dispatch.batch_calls, ``batch`` elements, one source increment,
        one span -- and *zero* new arena builds (the batch reuses the
        arena pool the first call built).  ``n=160`` sits above the
        trivial boundary so the element plan really is the generated
        sequential module with a real arena behind it."""
        n, batch = 160, 6
        cache.put(n, n, n, "float64", 1,
                  Plan(algorithm="strassen", steps=1, scheme="sequential",
                       threads=1))
        A, B = batch_operands(n, n, n, batch, seed=1)
        out = np.empty((batch, n, n))
        batched.matmul_batched(A, B, out=out, threads=2, cache=cache,
                               batch_mode="elementwise")  # builds the pool
        telemetry.enable()
        batched.matmul_batched(A, B, out=out, threads=2, cache=cache,
                               batch_mode="elementwise")
        assert telemetry.counter_value("dispatch.batch_calls") == 1
        assert telemetry.counter_value("dispatch.batch_elements") == batch
        assert telemetry.counter_value("dispatch.source",
                                       source="forced") == 1
        assert telemetry.counter_value("workspace.batch_arena_builds") == 0
        stats = telemetry.span_stats("dispatch.batch", mode="elementwise")
        assert stats is not None and stats["count"] == 1
        records = telemetry.dispatch_records()
        assert records and records[-1]["batch"] == batch
        assert records[-1]["batch_mode"] == "elementwise"

    def test_cold_elementwise_batch_builds_one_arena_pool(self, cache):
        n, batch = 160, 4
        cache.put(n, n, n, "float64", 1,
                  Plan(algorithm="strassen", steps=1, scheme="sequential",
                       threads=1))
        A, B = batch_operands(n, n, n, batch, seed=2)
        telemetry.enable()
        batched.matmul_batched(A, B, threads=2, cache=cache,
                               batch_mode="elementwise")
        assert telemetry.counter_value("workspace.batch_arena_builds") == 1

    @pytest.mark.parametrize("mode", ["within", "elementwise"])
    def test_warm_batch_is_allocation_free(self, mode, cache):
        """With ``out=``, a warm batched call stays under the per-call
        byte budget for the *whole batch* -- the headline amortization."""
        n, batch = 128, 8
        cache.put(n, n, n, "float64", 1,
                  Plan(algorithm="strassen", steps=1, scheme="sequential",
                       threads=1))
        A, B = batch_operands(n, n, n, batch, seed=4)
        out = np.empty((batch, n, n))
        threads = 2 if mode == "elementwise" else 1
        batched.matmul_batched(A, B, out=out, threads=threads, cache=cache,
                               batch_mode=mode)  # warm arenas + pool
        with track_allocations() as rep:
            batched.matmul_batched(A, B, out=out, threads=threads,
                                   cache=cache, batch_mode=mode)
        assert rep.peak_bytes is not None and rep.peak_bytes < LARGE, mode
        np.testing.assert_allclose(out, np.matmul(A, B), atol=1e-8 * n)

    def test_arena_pool_cache_is_bounded(self):
        plan = Plan(algorithm="strassen", steps=1, scheme="sequential",
                    threads=1)
        for i in range(batched.BATCH_POOL_CACHE_SIZE + 3):
            batched._arena_pool(plan, 64 + 2 * i, 64, 64,
                                np.dtype("f8"), np.dtype("f8"), workers=2)
        assert len(batched._arena_pools) == batched.BATCH_POOL_CACHE_SIZE

    def test_dgemm_elements_need_no_arena_pool(self):
        assert batched._arena_pool(Plan(threads=1), 64, 64, 64,
                                   np.dtype("f8"), np.dtype("f8"),
                                   workers=2) is None


# =========================================================================
# resolution sources: forced / model / tuned / cache
# =========================================================================
class TestResolution:
    def test_forced_modes(self, cache):
        within, src_w = batched.get_batch_plan(96, 96, 96, 4, threads=2,
                                               cache=cache,
                                               batch_mode="within")
        elem, src_e = batched.get_batch_plan(96, 96, 96, 4, threads=2,
                                             cache=cache,
                                             batch_mode="elementwise")
        assert src_w == src_e == "forced"
        assert within.mode == "within"
        assert elem.mode == "elementwise"
        assert elem.plan.scheme == "sequential" and elem.plan.threads == 1
        assert elem.workers == 2

    def test_single_thread_has_no_elementwise_head(self, cache):
        bplan, source = batched.get_batch_plan(96, 96, 96, 4, threads=1,
                                               cache=cache)
        assert source == "model" and bplan.mode == "within"

    def test_model_ranks_both_heads(self, cache):
        """At multi-thread the model must have both modes on the table;
        whichever wins, it is the batch_cost argmin of the candidates."""
        bplan, source = batched.get_batch_plan(96, 96, 96, 6, threads=2,
                                               cache=cache)
        assert source == "model"
        assert bplan.mode in ("within", "elementwise")
        shortlist = enumerate_batch_plans(96, 96, 96, 6, threads=2,
                                          max_candidates=4)
        assert any(bp.mode == "elementwise" for bp in shortlist)
        assert any(bp.mode == "within" for bp in shortlist)

    def test_tune_auto_commits_and_cache_serves(self, cache, tmp_path):
        """``tune="auto"`` measures the batch axis once; a fresh cache
        loaded from the same file then serves the decision as "cache"."""
        n, batch = 64, 4
        A, B = batch_operands(n, n, n, batch, seed=9)
        telemetry.enable()
        batched.matmul_batched(A, B, threads=2, cache=cache, tune="auto")
        assert telemetry.counter_value("dispatch.source",
                                       source="tuned") == 1
        assert cache.get_batched(n, n, n, "float64", 2, batch) is not None
        reloaded = PlanCache(tmp_path / "plans.json")
        _, source = batched.get_batch_plan(n, n, n, batch, threads=2,
                                           cache=reloaded)
        assert source == "cache"
        telemetry.reset()
        batched.matmul_batched(A, B, threads=2, cache=reloaded,
                               tune="auto")  # cache hit: no re-tuning
        assert telemetry.counter_value("dispatch.source",
                                       source="cache") == 1

    def test_cached_elementwise_rewrapped_at_current_threads(self, cache):
        plan = Plan(algorithm="strassen", steps=1, scheme="sequential",
                    threads=1)
        cache.put_batched(64, 64, 64, "float64", 4, 8,
                          BatchPlan(plan=plan, mode="elementwise",
                                    workers=4),
                          seconds=0.01, gflops=1.0)
        # same key family, served at a smaller pool: workers must follow
        hit = cache.get_batched(64, 64, 64, "float64", 4, 8)
        assert hit is not None and hit.workers == 4
        bplan, source = batched.get_batch_plan(64, 64, 64, 8, threads=4,
                                               cache=cache)
        assert source == "cache" and bplan.workers == 4

    def test_tune_batch_returns_measured_winner(self, cache):
        bplan = measure.tune_batch(64, 64, 64, 4, threads=2, cache=cache,
                                   trials=1, budget_s=10.0,
                                   max_candidates=2, persist=False)
        assert isinstance(bplan, BatchPlan)
        assert cache.get_batched(64, 64, 64, "float64", 2, 4) is not None


# =========================================================================
# cache coexistence: batched keys vs per-call keys
# =========================================================================
class TestBatchedCache:
    def test_batched_key_extends_problem_key(self):
        assert batched_key(64, 32, 16, "float64", 2, 8) == \
            problem_key(64, 32, 16, "float64", 2) + ":b8"

    def test_nearest_skips_batched_entries(self, cache):
        plan = Plan(algorithm="strassen", steps=1, scheme="sequential",
                    threads=1)
        cache.put_batched(128, 128, 128, "float64", 1, 8,
                          BatchPlan(plan=plan, mode="within", workers=1),
                          seconds=0.01, gflops=1.0)
        assert cache.nearest(130, 130, 130, "float64", 1) is None
        cache.put(128, 128, 128, "float64", 1, plan)
        hit = cache.nearest(130, 130, 130, "float64", 1)
        assert hit is not None and hit.algorithm == "strassen"

    def test_get_batched_nearest_batch_fallback(self, cache):
        plan = Plan(algorithm="strassen", steps=1, scheme="sequential",
                    threads=1)
        cache.put_batched(64, 64, 64, "float64", 1, 8,
                          BatchPlan(plan=plan, mode="within", workers=1),
                          seconds=0.01, gflops=1.0)
        # no entry at batch=6: the log-nearest batched entry (b8) serves
        hit = cache.get_batched(64, 64, 64, "float64", 1, 6)
        assert hit is not None and hit.mode == "within"
        assert cache.get_batched(65, 64, 64, "float64", 1, 8) is None

    def test_old_readers_unaffected(self, cache, tmp_path):
        """A cache file holding batched keys round-trips through save/load
        and plain ``get`` never sees them."""
        plan = Plan(algorithm="strassen", steps=1, scheme="sequential",
                    threads=1)
        cache.put(64, 64, 64, "float64", 1, plan)
        cache.put_batched(64, 64, 64, "float64", 1, 8,
                          BatchPlan(plan=plan, mode="within", workers=1),
                          seconds=0.01, gflops=1.0)
        cache.save()
        reloaded = PlanCache(tmp_path / "plans.json")
        assert reloaded.get(64, 64, 64, "float64", 1) is not None
        got = reloaded.get_batched(64, 64, 64, "float64", 1, 8)
        assert got is not None and got.plan.algorithm == "strassen"


# =========================================================================
# the batch-cost model and the sweep space
# =========================================================================
class TestBatchCost:
    def test_cost_scales_with_batch(self):
        alg = get_algorithm("strassen")
        one = batch_cost(alg, 96, 96, 96, 1, 1)
        four = batch_cost(alg, 96, 96, 96, 1, 4)
        assert four > one

    def test_elementwise_waves_amortize_workers(self):
        """4 elements over 4 workers cost ~1 wave; over 1 thread the
        within path pays all 4 serially -- the model must prefer the
        fan-out when workers cover the batch at small shapes."""
        alg = get_algorithm("strassen")
        elem = batch_cost(alg, 96, 96, 96, 1, 4, threads=4,
                          mode="elementwise")
        within = batch_cost(alg, 96, 96, 96, 1, 4, threads=1,
                            mode="within")
        assert elem < within

    def test_invalid_args_raise(self):
        alg = get_algorithm("strassen")
        with pytest.raises(ValueError):
            batch_cost(alg, 8, 8, 8, 1, 0)
        with pytest.raises(ValueError):
            batch_cost(alg, 8, 8, 8, 1, 2, mode="diagonal")

    def test_enumerate_batch_plans_sorted_and_valid(self):
        plans = enumerate_batch_plans(96, 96, 96, 4, threads=2,
                                      max_candidates=3)
        assert plans
        from repro.tuner import batch_plan_cost

        ranked = [batch_plan_cost(bp, 96, 96, 96, 4) for bp in plans]
        assert ranked == sorted(ranked)
        for bp in plans:
            if bp.mode == "elementwise":
                assert bp.plan.scheme == "sequential"
                assert bp.plan.threads == 1

    def test_batch_plan_validation(self):
        seq = Plan(algorithm="strassen", steps=1, scheme="sequential",
                   threads=1)
        par = Plan(algorithm="strassen", steps=1, scheme="dfs", threads=2)
        with pytest.raises(ValueError):
            BatchPlan(plan=par, mode="elementwise", workers=2)
        with pytest.raises(ValueError):
            BatchPlan(plan=seq, mode="within", workers=3)
        bp = BatchPlan(plan=seq, mode="elementwise", workers=2)
        assert "elementwise[2w]" in bp.describe()
        assert BatchPlan.from_dict(bp.to_dict()) == bp


# =========================================================================
# the WorkspacePool primitive
# =========================================================================
class TestWorkspacePool:
    def test_checkout_blocks_double_issue(self):
        wp = WorkspacePool(1 << 12, 2)
        a = wp.acquire()
        b = wp.acquire()
        assert a is not b
        wp.release(a)
        assert wp.acquire() is a

    def test_arena_contextmanager_returns(self):
        wp = WorkspacePool(1 << 12, 1)
        with wp.arena() as ws:
            ws.take((4, 4), np.float64)
        with wp.arena() as again:
            assert again is ws  # reset + reissued, not rebuilt

    def test_stats_aggregate(self):
        wp = WorkspacePool(1 << 12, 3)
        assert wp.nbytes >= 3 * (1 << 12)
        assert wp.overflow_allocations == 0
        stats = wp.stats()
        assert stats["nbytes"] == wp.nbytes
        assert stats["overflow_allocations"] == 0
