"""Tests for the unified telemetry registry (repro.obs)."""

import json
import logging
import threading

import numpy as np
import pytest
from conftest import MULTICORE_THREADS

from repro import obs
from repro.core.workspace import Workspace
from repro.obs import telemetry
from repro.tuner import PlanCache, dispatch, matmul
from repro.tuner.measure import Measurement, ShapeReport
from repro.tuner.policy import OnlineTunePolicy, UCBTunePolicy
from repro.tuner.space import Plan
from repro.util.matrices import random_matrix


@pytest.fixture(autouse=True)
def clean_registry():
    """Every test starts from (and leaves behind) a disabled, empty
    registry -- telemetry is process-global state."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _plan_cache(tmp_path, *entries) -> PlanCache:
    cache = PlanCache(tmp_path / "plans.json")
    for (p, q, r, dtype, threads, plan) in entries:
        cache.put(p, q, r, dtype, threads, plan, seconds=0.01, gflops=1.0)
    return cache


class TestSpans:
    def test_nesting_visible_on_stack(self):
        obs.enable()
        assert obs.active_spans() == ()
        with obs.span("outer"):
            assert obs.active_spans() == ("outer",)
            with obs.span("inner"):
                assert obs.active_spans() == ("outer", "inner")
            assert obs.active_spans() == ("outer",)
        assert obs.active_spans() == ()

    def test_aggregation(self):
        obs.enable()
        for _ in range(3):
            with obs.span("work"):
                pass
        stats = obs.span_stats("work")
        assert stats["count"] == 3
        assert stats["total_s"] >= stats["max_s"] >= stats["min_s"] >= 0.0

    def test_labels_partition_aggregates(self):
        obs.enable()
        with obs.span("exec", scheme="bfs"):
            pass
        with obs.span("exec", scheme="dfs"):
            pass
        assert obs.span_stats("exec", scheme="bfs")["count"] == 1
        assert obs.span_stats("exec", scheme="dfs")["count"] == 1
        assert obs.span_stats("exec") is None

    @pytest.mark.multicore
    def test_thread_safety_exact_counts(self):
        obs.enable()
        per_thread = 200

        def worker(idx: int) -> None:
            for _ in range(per_thread):
                with obs.span("mt"):
                    obs.incr("mt.hits")

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(MULTICORE_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = MULTICORE_THREADS * per_thread
        assert obs.counter_value("mt.hits") == total
        assert obs.span_stats("mt")["count"] == total


class TestDisabledMode:
    def test_everything_is_a_noop(self):
        obs.incr("c")
        obs.set_gauge("g", 1.0)
        obs.record_dispatch({"x": 1})
        obs.record_task("w0", "leaf", 0.0, 1.0)
        with obs.span("s"):
            pass
        assert obs.is_empty()
        assert obs.counter_value("c") == 0
        assert obs.gauge_value("g") is None
        assert obs.span_stats("s") is None
        assert obs.dispatch_records() == []

    def test_span_is_the_shared_null_singleton(self):
        assert obs.span("anything") is telemetry.NULL_SPAN
        assert obs.span("other", k="v") is telemetry.NULL_SPAN

    def test_disable_preserves_data_until_reset(self):
        obs.enable()
        obs.incr("kept")
        obs.disable()
        assert obs.counter_value("kept") == 1
        obs.reset()
        assert obs.counter_value("kept") == 0


class TestSnapshot:
    def test_json_round_trip(self):
        obs.enable()
        obs.incr("calls", 2, source="cache")
        obs.set_gauge("bytes", 1024.0)
        with obs.span("lookup"):
            pass
        obs.record_dispatch({"shape": [1, 2, 3]})
        snap = json.loads(json.dumps(obs.snapshot()))
        assert snap["schema"] == telemetry.SNAPSHOT_SCHEMA
        assert {"name": "calls", "labels": {"source": "cache"},
                "value": 2} in snap["counters"]
        assert snap["gauges"][0]["value"] == 1024.0
        assert snap["spans"][0]["name"] == "lookup"
        assert snap["dispatch_records"] == [{"shape": [1, 2, 3]}]

    def test_reset_after_atomically_clears(self):
        obs.enable()
        obs.incr("c")
        snap = obs.snapshot(reset_after=True)
        assert snap["counters"]
        assert obs.is_empty()

    def test_save_load(self, tmp_path):
        obs.enable()
        obs.incr("c")
        path = obs.save_snapshot(tmp_path / "snap.json")
        assert path is not None
        loaded = obs.load_snapshot(path)
        assert loaded["counters"][0]["name"] == "c"

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 999, "counters": []}))
        assert obs.load_snapshot(path) is None
        path.write_text("not json")
        assert obs.load_snapshot(path) is None
        assert obs.load_snapshot(tmp_path / "missing.json") is None

    def test_snapshot_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs.SNAPSHOT_ENV, str(tmp_path / "here.json"))
        assert obs.default_snapshot_path() == tmp_path / "here.json"


class TestPrometheus:
    def test_counter_gauge_span_shapes(self):
        obs.enable()
        obs.incr("dispatch.calls", 3)
        obs.set_gauge("workspace.arena_bytes", 4096.0)
        with obs.span("dispatch.lookup"):
            pass
        text = obs.prometheus_text()
        assert "# TYPE repro_dispatch_calls_total counter" in text
        assert "repro_dispatch_calls_total 3" in text
        assert "repro_workspace_arena_bytes 4096.0" in text
        assert "repro_dispatch_lookup_seconds_count 1" in text
        assert "repro_dispatch_lookup_seconds_sum" in text
        assert "repro_dispatch_lookup_seconds_max" in text

    def test_label_escaping(self):
        obs.enable()
        obs.incr("c", plan='say "hi"\nback\\slash')
        text = obs.prometheus_text()
        assert 'plan="say \\"hi\\"\\nback\\\\slash"' in text

    def test_name_sanitization(self):
        obs.enable()
        obs.incr("weird.name-with/stuff")
        assert "repro_weird_name_with_stuff_total" in obs.prometheus_text()

    def test_empty_registry_renders_empty(self):
        assert obs.prometheus_text() == ""


class TestDispatchRing:
    def test_eviction_keeps_newest(self):
        obs.enable(ring_size=4)
        for i in range(10):
            obs.record_dispatch({"i": i})
        assert [r["i"] for r in obs.dispatch_records()] == [6, 7, 8, 9]

    def test_resize_preserves_tail(self):
        obs.enable(ring_size=8)
        for i in range(8):
            obs.record_dispatch({"i": i})
        obs.enable(ring_size=2)
        assert [r["i"] for r in obs.dispatch_records()] == [6, 7]


class TestDispatchIntegration:
    def test_cached_dispatch_records_everything(self, tmp_path):
        plan = Plan(algorithm="strassen", steps=1, scheme="dfs", threads=1)
        cache = _plan_cache(tmp_path, (192, 192, 192, "float64", 1, plan))
        A = random_matrix(192, 192, 0)
        obs.enable()
        C = matmul(A, A, threads=1, cache=cache)
        np.testing.assert_allclose(C, A @ A, atol=1e-9)

        assert obs.counter_value("dispatch.calls") == 1
        assert obs.counter_value("dispatch.source", source="cache") == 1
        assert obs.counter_value("workspace.overflows") == 0
        assert obs.span_stats("dispatch.lookup")["count"] == 1
        assert obs.span_stats("dispatch.execute", scheme="dfs")["count"] == 1
        assert obs.gauge_value("workspace.arena_bytes") > 0
        assert obs.gauge_value("dispatch.last_gflops") > 0

        rec = obs.dispatch_records()[-1]
        assert rec["shape"] == [192, 192, 192]
        assert rec["source"] == "cache"
        assert rec["scheme"] == "dfs"
        assert rec["timed"] is False
        assert rec["arena_overflows"] == 0
        assert rec["seconds"] > 0

    def test_disabled_dispatch_records_nothing(self, tmp_path):
        plan = Plan(algorithm="strassen", steps=1, scheme="dfs", threads=1)
        cache = _plan_cache(tmp_path, (192, 192, 192, "float64", 1, plan))
        A = random_matrix(192, 192, 1)
        matmul(A, A, threads=1, cache=cache)
        assert obs.is_empty()


class TestOverflowSurfacing:
    def _overflowing_call(self, tmp_path, monkeypatch):
        plan = Plan(algorithm="strassen", steps=1, scheme="dfs", threads=1)
        cache = _plan_cache(tmp_path, (192, 192, 192, "float64", 1, plan))
        tiny = Workspace(64)  # every take overflows to the heap
        monkeypatch.setattr(dispatch, "workspace_for",
                            lambda *a, **k: tiny)
        dispatch.reset_workspaces()  # clears the warned-once set too
        A = random_matrix(192, 192, 2)
        return A, cache

    def test_warns_once_per_plan_shape(self, tmp_path, monkeypatch, caplog):
        A, cache = self._overflowing_call(tmp_path, monkeypatch)
        with caplog.at_level(logging.WARNING, logger=dispatch.__name__):
            matmul(A, A, threads=1, cache=cache)
            matmul(A, A, threads=1, cache=cache)
        hits = [r for r in caplog.records if "overflowed" in r.message]
        assert len(hits) == 1  # once per (plan, shape), not per call
        assert "192x192x192" in hits[0].message

    def test_counter_counts_every_overflow(self, tmp_path, monkeypatch):
        A, cache = self._overflowing_call(tmp_path, monkeypatch)
        obs.enable()
        matmul(A, A, threads=1, cache=cache)
        first = obs.counter_value("workspace.overflows")
        assert first > 0
        matmul(A, A, threads=1, cache=cache)
        assert obs.counter_value("workspace.overflows") > first


class TestWorkspaceStats:
    def test_mark_depth_tracking(self):
        ws = Workspace(1 << 16)
        assert ws.mark_depth == 0
        m1 = ws.mark()
        m2 = ws.mark()
        assert ws.mark_depth == 2
        ws.release(m2)
        ws.release(m1)
        assert ws.mark_depth == 0
        assert ws.max_mark_depth == 2
        ws.mark()
        ws.reset()
        assert ws.mark_depth == 0
        stats = ws.stats()
        assert stats["nbytes"] == ws.nbytes
        assert stats["max_mark_depth"] == 2
        assert stats["overflow_allocations"] == 0


class _TickClock:
    """Deterministic clock that advances a fixed step per reading, so
    bracketed timings are positive without real wall-clock dependence."""

    def __init__(self, step: float = 0.001):
        self.t = 0.0
        self.step = step

    def now(self) -> float:
        self.t += self.step
        return self.t


class TestPolicyTelemetry:
    def test_online_choice_counters_and_arm_gauges(self, tmp_path):
        obs.enable()
        clock = _TickClock()
        policy = OnlineTunePolicy(shortlist=2, min_trials=1, epsilon=1.0,
                                  seed=7, clock=clock.now, persist=False)
        cache = _plan_cache(tmp_path)
        A = random_matrix(192, 192, 3)
        for _ in range(3):
            matmul(A, A, threads=1, cache=cache, tune=policy)
        explored = obs.counter_value("policy.choice", policy="online",
                                     kind="explore")
        exploited = obs.counter_value("policy.choice", policy="online",
                                      kind="exploit")
        assert explored + exploited >= 2
        assert explored >= 1
        key = "192x192x192:float64:1t"
        pulls = obs.gauge_value("policy.arm_pulls", policy="online",
                                key=key, arm="0")
        assert pulls is not None and pulls >= 1
        assert obs.gauge_value("policy.arm_mean_seconds", policy="online",
                               key=key, arm="0") is not None

    def test_ucb_bootstrap_counts_as_exploration(self, tmp_path):
        obs.enable()
        clock = _TickClock()
        policy = UCBTunePolicy(shortlist=2, min_trials=1, seed=7,
                               clock=clock.now, persist=False)
        cache = _plan_cache(tmp_path)
        A = random_matrix(192, 192, 4)
        matmul(A, A, threads=1, cache=cache, tune=policy)
        assert obs.counter_value("policy.choice", policy="ucb",
                                 kind="explore") >= 1


class TestTransferQuality:
    def test_gauge_from_report_measurements(self):
        from repro.tuner.policy import AutoTunePolicy

        obs.enable()
        transferred = Plan(algorithm="strassen", steps=1, scheme="dfs",
                           threads=2)
        winner = Plan(algorithm="winograd", steps=1, scheme="dfs", threads=2)
        report = ShapeReport(
            256, 256, 256, "float64", 2,
            (Measurement(winner, 0.010, 3.0),
             Measurement(transferred, 0.015, 2.0)),
        )
        AutoTunePolicy()._record_transfer_quality(
            transferred, report, 256, 256, 256, "float64", 2)
        ratio = obs.gauge_value("transfer.quality_ratio",
                                key="256x256x256:float64:2t")
        assert ratio == pytest.approx(1.5)
        assert obs.counter_value("transfer.retuned") == 1

    def test_transfer_dispatch_sets_gauge(self, tmp_path, monkeypatch):
        """End to end: a cross-thread transfer under tune='auto' re-tunes
        and records the transferred plan's quality ratio."""
        import repro.tuner.measure as measure
        from repro.tuner.policy import AutoTunePolicy

        obs.enable()
        # cache tuned at 2 threads only; dispatch at 1 thread must transfer
        plan = Plan(algorithm="strassen", steps=1, scheme="dfs", threads=2)
        cache = _plan_cache(tmp_path, (192, 192, 192, "float64", 2, plan))

        retargeted = Plan(algorithm="strassen", steps=1, scheme="dfs",
                          threads=1)
        fake_report = ShapeReport(
            192, 192, 192, "float64", 1,
            (Measurement(Plan(threads=1), 0.008, 2.0),
             Measurement(retargeted, 0.012, 1.5)),
        )
        monkeypatch.setattr(measure, "tune_shape",
                            lambda *a, **k: fake_report)
        A = random_matrix(192, 192, 5)
        matmul(A, A, threads=1, cache=cache,
               tune=AutoTunePolicy(persist=False))
        ratio = obs.gauge_value("transfer.quality_ratio",
                                key="192x192x192:float64:1t")
        assert ratio == pytest.approx(1.5)
