"""repro.guard: fault injection, the fallback chain, and the chaos tier.

The chaos-marked tests are the resilience contract of PR 8: with faults
injected at every named point, ``repro.matmul(guard=...)`` and
``repro.matmul_batched(guard=...)`` still return a product bit-equal to
``np.matmul`` (the chain bottoms out at classical, which shares numpy's
kernel), quarantine counters advance, and the substrate (pools, arenas,
cache files) is repaired rather than left broken.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import run_cli
from repro import obs
from repro.guard import chain, faults
from repro.guard.chain import (
    GUARD_DEFAULT,
    GuardConfig,
    WatchdogTimeout,
    check_product,
    resolve_guard,
)
from repro.parallel.pool import (
    PoolBrokenError,
    TaskTimeoutError,
    WorkerPool,
)
from repro.tuner import PlanCache, dispatch, matmul, matmul_batched
from repro.tuner.space import Plan


@pytest.fixture(autouse=True)
def _clean_guard_state():
    """Every test starts and ends disarmed, unguarded, and unobserved."""
    faults.clear()
    faults.reset_fired()
    chain.reset_default_guard()
    obs.disable()
    obs.reset()
    dispatch.reset_workspaces()
    yield
    faults.clear()
    faults.reset_fired()
    chain.reset_default_guard()
    chain.shutdown_watchdog()
    obs.disable()
    obs.reset()
    dispatch.reset_workspaces()


def _operands(n: int, dtype: str = "float64", seed: int = 0):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n)).astype(dtype)
    B = rng.standard_normal((n, n)).astype(dtype)
    return A, B


def _cache_with(n: int, threads: int, plan: Plan,
                tmp_path=None) -> PlanCache:
    path = (tmp_path / "plans.json" if tmp_path is not None
            else "/nonexistent/guard_plans.json")
    cache = PlanCache(path)
    cache.put(n, n, n, "float64", threads, plan, seconds=0.01, gflops=1.0)
    return cache


# ---------------------------------------------------------------- faults
def test_fault_spec_rejects_unknown_point():
    with pytest.raises(ValueError, match="unknown fault point"):
        faults.arm("no.such.point")
    assert not faults.active


def test_fault_spec_rejects_bad_count():
    with pytest.raises(ValueError):
        faults.arm("plan.raise:0")


def test_inject_arms_and_clears():
    assert not faults.active
    with faults.inject("plan.raise:2"):
        assert faults.active
        assert faults.should_fire("plan.raise")
        assert faults.should_fire("plan.raise")
        # bounded count: spent after two firings
        assert not faults.should_fire("plan.raise")
        # a point never armed does not fire
        assert not faults.should_fire("apa.nan")
    assert not faults.active
    assert faults.fired("plan.raise") == 2


def test_should_fire_is_inert_when_disarmed():
    assert not faults.should_fire("plan.raise")
    assert faults.fired() == {}


def test_install_from_env_parses_and_rejects():
    assert not faults.install_from_env("")
    assert faults.install_from_env("worker.die,plan.raise:3")
    assert faults.active
    assert faults.should_fire("worker.die")
    faults.clear()
    with pytest.raises(ValueError):
        faults.install_from_env("plan.raise,typo.point")


# ---------------------------------------------------------- resolve_guard
def test_resolve_guard_spellings():
    assert resolve_guard(True) is GUARD_DEFAULT
    assert resolve_guard(False) is None
    assert resolve_guard("on") is GUARD_DEFAULT
    assert resolve_guard("off") is None
    assert resolve_guard(2.5) == GuardConfig(timeout_s=2.5)
    cfg = GuardConfig(timeout_s=7.0, sample_rows=2)
    assert resolve_guard(cfg) is cfg
    with pytest.raises(ValueError):
        resolve_guard("not-a-guard")
    with pytest.raises(ValueError):
        resolve_guard(object())


def test_repro_guard_env_default(monkeypatch):
    monkeypatch.setenv("REPRO_GUARD", "1")
    chain.reset_default_guard()
    assert resolve_guard(None) is GUARD_DEFAULT
    monkeypatch.setenv("REPRO_GUARD", "off")
    chain.reset_default_guard()
    assert resolve_guard(None) is None
    monkeypatch.setenv("REPRO_GUARD", "1.5")
    chain.reset_default_guard()
    assert resolve_guard(None) == GuardConfig(timeout_s=1.5)
    # guard=False beats an enabling environment
    monkeypatch.setenv("REPRO_GUARD", "1")
    chain.reset_default_guard()
    assert resolve_guard(False) is None


# ---------------------------------------------------------- check_product
def test_check_product_accepts_healthy_exact():
    A, B = _operands(24)
    C = A @ B
    plan = Plan(algorithm="strassen", steps=1, threads=1)
    assert check_product(plan, A, B, C, GUARD_DEFAULT) is None


def test_check_product_flags_nonfinite():
    A, B = _operands(24)
    C = A @ B
    C[0, 0] = np.nan
    plan = Plan(threads=1)  # even dgemm products get the finiteness scan
    reason = check_product(plan, A, B, C, GUARD_DEFAULT)
    assert reason is not None and "non-finite" in reason


def test_check_product_apa_residual():
    A, B = _operands(24)
    plan = Plan(algorithm="bini322", steps=1, threads=1)
    # healthy: the exact product trivially satisfies the APA bound
    assert check_product(plan, A, B, A @ B, GUARD_DEFAULT) is None
    # garbage: a wildly wrong product must trip the residual check
    bad = np.full_like(A @ B, 1e9)
    reason = check_product(plan, A, B, bad, GUARD_DEFAULT)
    assert reason is not None and "residual" in reason


# -------------------------------------------------------------- watchdog
def test_watchdog_passes_through_fast_calls():
    assert chain._watchdog_run(lambda: 41 + 1, timeout_s=5.0) == 42


def test_watchdog_times_out_slow_calls():
    import threading

    release = threading.Event()
    try:
        with pytest.raises(WatchdogTimeout):
            chain._watchdog_run(lambda: release.wait(10), timeout_s=0.2)
    finally:
        release.set()


# ----------------------------------------------------- quarantine ledger
def test_quarantine_after_threshold_and_probe_backoff():
    cache = PlanCache("/nonexistent/q.json")
    plan = Plan(algorithm="strassen", steps=1, threads=1)
    assert not cache.record_failure(64, 64, 64, "float64", 1, plan, "e1")
    assert not cache.plan_quarantined(64, 64, 64, "float64", 1, plan)
    assert cache.record_failure(64, 64, 64, "float64", 1, plan, "e2")
    skips = [cache.plan_quarantined(64, 64, 64, "float64", 1, plan)
             for _ in range(32)]
    # every QUARANTINE_PROBE_EVERY-th lookup lets the plan through once
    assert skips.count(False) == 2
    assert cache.quarantined_keys()
    cache.record_success(64, 64, 64, "float64", 1, plan)
    assert not cache.quarantined_keys()
    assert not cache.plan_quarantined(64, 64, 64, "float64", 1, plan)


def test_quarantined_plan_skipped_by_get(tmp_path):
    plan = Plan(algorithm="strassen", steps=1, threads=1)
    cache = _cache_with(96, 1, plan, tmp_path)
    assert cache.get(96, 96, 96, "float64", 1) is not None
    for _ in range(2):
        cache.record_failure(96, 96, 96, "float64", 1, plan, "boom")
    assert cache.get(96, 96, 96, "float64", 1) is None


def test_failure_ledger_survives_save_load(tmp_path):
    plan = Plan(algorithm="strassen", steps=1, threads=1)
    cache = _cache_with(96, 1, plan, tmp_path)
    for _ in range(2):
        cache.record_failure(96, 96, 96, "float64", 1, plan, "boom")
    assert cache.save()
    reloaded = PlanCache(tmp_path / "plans.json")
    assert reloaded.quarantined_keys() == cache.quarantined_keys()
    assert reloaded.get(96, 96, 96, "float64", 1) is None


# ------------------------------------------------------------ chaos tier
@pytest.mark.chaos
def test_plan_raise_falls_back_bit_equal():
    A, B = _operands(96)
    with faults.inject("plan.raise"):
        C = matmul(A, B, threads=1, guard=True)
    assert np.array_equal(C, np.matmul(A, B))
    assert faults.fired("plan.raise") >= 1


@pytest.mark.chaos
def test_plan_raise_quarantines_after_repeats(tmp_path):
    plan = Plan(algorithm="strassen", steps=1, threads=1)
    cache = _cache_with(192, 1, plan, tmp_path)
    A, B = _operands(192)
    ref = np.matmul(A, B)
    with faults.inject("plan.raise"):
        for _ in range(2):
            assert np.array_equal(
                matmul(A, B, threads=1, cache=cache, guard=True), ref)
    assert any("strassen" in k for k in cache.quarantined_keys())
    # quarantined: the next resolve skips the bad plan even unguarded
    got, source = dispatch.get_plan(192, 192, 192, dtype="float64",
                                    threads=1, cache=cache)
    assert got != plan


@pytest.mark.chaos
def test_single_fault_recovers_through_model_stage(tmp_path):
    """One-shot failure: stage 2 (cost-model plan) produces the result."""
    plan = Plan(algorithm="strassen", steps=1, threads=1)
    cache = _cache_with(192, 1, plan, tmp_path)
    A, B = _operands(192)
    ref = np.matmul(A, B)
    with faults.inject("plan.raise:1"):
        C = matmul(A, B, threads=1, cache=cache, guard=True)
    # the model-stage plan is a fast (exact) algorithm, not classical:
    # numerically indistinguishable, not necessarily bit-equal
    assert np.allclose(C, ref, atol=1e-8 * np.abs(ref).max())


@pytest.mark.chaos
def test_workspace_overflow_degrades_to_classical(tmp_path):
    plan = Plan(algorithm="strassen", steps=2, scheme="sequential",
                threads=1)
    cache = _cache_with(192, 1, plan, tmp_path)
    A, B = _operands(192)
    with faults.inject("workspace.overflow"):
        C = matmul(A, B, threads=1, cache=cache, guard=True)
    assert np.array_equal(C, np.matmul(A, B))
    assert faults.fired("workspace.overflow") >= 1


@pytest.mark.chaos
def test_worker_die_degrades_to_classical(tmp_path):
    plan = Plan(algorithm="strassen", steps=1, scheme="bfs", threads=2)
    cache = _cache_with(192, 2, plan, tmp_path)
    A, B = _operands(192)
    with faults.inject("worker.die"):
        C = matmul(A, B, threads=2, cache=cache, guard=True)
    assert np.array_equal(C, np.matmul(A, B))


@pytest.mark.chaos
def test_worker_hang_watchdog_rebuilds_pool(tmp_path):
    plan = Plan(algorithm="strassen", steps=1, scheme="bfs", threads=2)
    cache = _cache_with(192, 2, plan, tmp_path)
    A, B = _operands(192)
    before = dispatch._shared_pool(2)
    with faults.inject("worker.hang", hang_seconds=8.0):
        C = matmul(A, B, threads=2, cache=cache,
                   guard=GuardConfig(timeout_s=0.75))
    assert np.array_equal(C, np.matmul(A, B))
    # the infrastructure failure tore down and replaced the shared pool
    assert dispatch._shared_pool(2) is not before


@pytest.mark.chaos
def test_apa_nan_is_caught_and_survived(tmp_path):
    plan = Plan(algorithm="bini322", steps=1, threads=1)
    cache = _cache_with(192, 1, plan, tmp_path)
    A, B = _operands(192)
    obs.enable()
    with faults.inject("apa.nan"):
        C = matmul(A, B, threads=1, cache=cache, guard=True)
    obs.disable()
    # persistent poisoning: every fast attempt is rejected by the
    # numerical guardrail and the chain lands on classical
    assert np.array_equal(C, np.matmul(A, B))
    guard = obs.summarize()["guard"]
    assert guard["numeric_violations"] >= 1


@pytest.mark.chaos
def test_guard_off_lets_faults_propagate():
    A, B = _operands(96)
    with faults.inject("plan.raise"):
        with pytest.raises(faults.InjectedFault):
            matmul(A, B, threads=1, guard=False)


@pytest.mark.chaos
def test_batched_guard_bit_equal_under_faults():
    rng = np.random.default_rng(3)
    A = rng.standard_normal((4, 64, 64))
    B = rng.standard_normal((4, 64, 64))
    with faults.inject("plan.raise"):
        C = matmul_batched(A, B, threads=1, guard=True)
    assert np.array_equal(C, np.matmul(A, B))


@pytest.mark.chaos
def test_fault_storm_everything_still_correct(tmp_path):
    """All six points armed at once; both entry points stay bit-equal and
    the counters tell the story in `repro stats`."""
    path = tmp_path / "plans.json"
    seeded = PlanCache(path)
    seeded.put(192, 192, 192, "float64", 2,
               Plan(algorithm="strassen", steps=1, scheme="bfs", threads=2),
               seconds=0.01, gflops=1.0)
    assert seeded.save()

    A, B = _operands(192)
    Abatch = np.stack([A] * 3)
    Bbatch = np.stack([B] * 3)
    obs.enable()
    with faults.inject("plan.raise", "apa.nan", "worker.hang",
                       "worker.die", "workspace.overflow", "cache.corrupt",
                       hang_seconds=6.0):
        cache = PlanCache(path)  # load trips cache.corrupt -> sidecar
        C = matmul(A, B, threads=2, cache=cache,
                   guard=GuardConfig(timeout_s=2.0))
        Cb = matmul_batched(Abatch, Bbatch, threads=2, cache=cache,
                            guard=GuardConfig(timeout_s=2.0))
    assert np.array_equal(C, np.matmul(A, B))
    assert np.array_equal(Cb, np.matmul(Abatch, Bbatch))
    assert cache.load_error is not None  # the corrupt load was survived
    guard = obs.summarize()["guard"]
    assert sum(guard["fallbacks"].values()) >= 2
    assert guard["cache_load_errors"] >= 1
    rc, out = run_cli("stats")
    obs.disable()
    assert rc == 0
    assert "guard: fallbacks" in out
    assert "injected faults fired" in out


@pytest.mark.chaos
@settings(max_examples=8, deadline=None)
@given(dtype=st.sampled_from(["float32", "float64"]),
       n=st.integers(min_value=4, max_value=48),
       seed=st.integers(min_value=0, max_value=2**16))
def test_guard_fallback_bit_exact_property(dtype, n, seed):
    """Under a persistent plan failure the guarded product is bit-equal
    to np.matmul for every dtype/shape/seed."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n)).astype(dtype)
    B = rng.standard_normal((n, n)).astype(dtype)
    try:
        with faults.inject("plan.raise"):
            C = matmul(A, B, threads=1, guard=True)
    finally:
        faults.clear()
    assert C.dtype == np.result_type(A, B)
    assert np.array_equal(C, np.matmul(A, B))


# ------------------------------------------------------- pool supervision
def test_map_wait_times_out_on_hung_worker():
    pool = WorkerPool(2)
    try:
        with faults.inject("worker.hang", hang_seconds=6.0):
            with pytest.raises(TaskTimeoutError):
                pool.map_wait(lambda x: x, [1, 2, 3], timeout=0.5)
    finally:
        faults.clear()
        pool.shutdown(wait=False)


def test_map_wait_raises_on_dead_pool():
    pool = WorkerPool(2)
    try:
        with faults.inject("worker.die"):
            with pytest.raises(PoolBrokenError):
                pool.map_wait(lambda x: x, [1, 2, 3])
        assert pool.broken
    finally:
        faults.clear()
        pool.shutdown(wait=False)


def test_map_wait_retries_idempotent_tasks():
    pool = WorkerPool(2)
    state = {"failed": False}

    def flaky(x):
        if not state["failed"]:
            state["failed"] = True
            raise RuntimeError("transient")
        return x * 2

    try:
        out = pool.map_wait(flaky, [21], retryable=True)
        assert out == [42]
    finally:
        pool.shutdown(wait=False)


def test_shutdown_pool_is_broken():
    pool = WorkerPool(2)
    pool.shutdown(wait=True)
    assert pool.broken
    with pytest.raises(PoolBrokenError):
        pool.submit(lambda: None)


# ------------------------------------------------------ arena reclamation
def _tree_call(n: int, tmp_path, threads: int = 2) -> PlanCache:
    plan = Plan(algorithm="strassen", steps=1, scheme="bfs",
                threads=threads)
    cache = _cache_with(n, threads, plan, tmp_path)
    A, B = _operands(n)
    C = matmul(A, B, threads=threads, cache=cache)
    assert np.allclose(C, A @ B)
    return cache


def test_reclaim_single_shot_releases_tree_arena(tmp_path):
    _tree_call(192, tmp_path)
    retained = [w for w in dispatch._workspaces.values() if w.retained]
    assert retained, "the bfs call should have left a retained arena"
    freed = dispatch.reclaim_single_shot()
    assert freed > 0
    assert all(w.retained_nbytes == 0 for w in retained)


def test_released_arena_reallocates_on_reuse(tmp_path):
    cache = _tree_call(192, tmp_path)
    dispatch.reclaim_single_shot()
    # the entry survives with its buffer dropped; the next call through
    # the same plan lazily re-allocates and still computes correctly
    A, B = _operands(192, seed=9)
    C = matmul(A, B, threads=2, cache=cache)
    assert np.allclose(C, A @ B)


def test_new_key_insert_reclaims_single_shot_arenas(tmp_path):
    _tree_call(192, tmp_path)
    single_shot = [w for w in dispatch._workspaces.values() if w.retained]
    assert single_shot
    # a different shape inserts a new workspace key, which sweeps
    # single-use tree arenas from earlier calls
    _tree_call(160, tmp_path)
    assert all(w.retained_nbytes == 0 for w in single_shot)


def test_warm_arena_is_not_reclaimed(tmp_path):
    plan = Plan(algorithm="strassen", steps=1, scheme="bfs", threads=2)
    cache = _cache_with(192, 2, plan, tmp_path)
    A, B = _operands(192)
    matmul(A, B, threads=2, cache=cache)
    matmul(A, B, threads=2, cache=cache)  # uses >= 2: warm, keep it
    assert dispatch.reclaim_single_shot() == 0
