"""PlanCache failure recovery: corrupt files, failed saves, the doctor.

A damaged plan cache must never take dispatch down with it -- the PR 8
contract is: load failures degrade to an empty cache (counted, warned
once, original preserved in a ``.corrupt`` sidecar), save failures
degrade to in-memory operation, and ``repro cache doctor`` can both see
and repair every one of those states.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from conftest import run_cli
from repro import obs
from repro.guard import faults
from repro.tuner import PlanCache, cache as cache_mod, matmul
from repro.tuner.space import Plan


@pytest.fixture(autouse=True)
def _clean_state():
    faults.clear()
    obs.disable()
    obs.reset()
    # warn-once is keyed per path; tmp_path makes keys unique per test,
    # but reset anyway so assertions about warning counts are exact
    cache_mod._warned_paths.clear()
    yield
    faults.clear()
    obs.disable()
    obs.reset()
    cache_mod._warned_paths.clear()


def _seed_file(path, n=192, threads=1):
    cache = PlanCache(path)
    cache.put(n, n, n, "float64", threads,
              Plan(algorithm="strassen", steps=1, threads=threads),
              seconds=0.01, gflops=1.0)
    assert cache.save()
    return cache


# ------------------------------------------------------- load resilience
def test_truncated_file_recovers_with_sidecar(tmp_path):
    """Crash mid-write: half a JSON document on disk."""
    path = tmp_path / "plans.json"
    _seed_file(path)
    full = path.read_text()
    path.write_text(full[: len(full) // 2])

    obs.enable()
    cache = PlanCache(path)
    assert len(cache) == 0  # degraded to empty, not raised
    assert cache.load_error is not None
    sidecar = tmp_path / "plans.json.corrupt"
    assert cache.corrupt_sidecar == sidecar
    assert sidecar.exists()
    assert sidecar.read_text() == full[: len(full) // 2]
    assert not path.exists()  # quarantined away, save() can rewrite
    snap = obs.summarize()
    assert snap["guard"]["cache_load_errors"] >= 1


def test_corrupt_then_save_round_trips(tmp_path):
    path = tmp_path / "plans.json"
    path.write_text("{not json")
    cache = PlanCache(path)
    cache.put(192, 192, 192, "float64", 1, Plan(threads=1),
              seconds=0.01, gflops=1.0)
    assert cache.save()
    assert len(PlanCache(path)) == 1


def test_non_dict_payload_is_corrupt(tmp_path):
    path = tmp_path / "plans.json"
    path.write_text(json.dumps([1, 2, 3]))
    cache = PlanCache(path)
    assert len(cache) == 0
    assert cache.load_error is not None
    assert (tmp_path / "plans.json.corrupt").exists()


def test_load_warning_fires_once_per_path(tmp_path, caplog):
    import logging

    path = tmp_path / "plans.json"
    path.write_text("{broken")
    with caplog.at_level(logging.WARNING, logger="repro.tuner.cache"):
        PlanCache(path).keys()
        # second instance, same path: sidecar already holds the corrupt
        # original so this load is clean -- write fresh corruption
        path.write_text("{broken-again")
        PlanCache(path).keys()
    warnings = [r for r in caplog.records if "corrupt" in r.getMessage()]
    assert len(warnings) == 1


def test_unreadable_file_counts_load_error(tmp_path, monkeypatch):
    path = tmp_path / "plans.json"
    _seed_file(path)

    def boom(self):
        raise OSError("injected read failure")

    obs.enable()
    monkeypatch.setattr(type(path), "read_text", boom)
    cache = PlanCache(path)
    assert len(cache) == 0
    assert cache.load_error is not None
    # an unreadable file is NOT quarantined (nothing to move safely)
    assert cache.corrupt_sidecar is None
    assert obs.summarize()["guard"]["cache_load_errors"] >= 1


def test_injected_cache_corruption(tmp_path):
    """The cache.corrupt chaos point forces the unparsable path."""
    path = tmp_path / "plans.json"
    _seed_file(path)
    with faults.inject("cache.corrupt"):
        cache = PlanCache(path)
        assert len(cache) == 0
    assert cache.load_error is not None
    assert (tmp_path / "plans.json.corrupt").exists()


@pytest.mark.chaos
def test_dispatch_survives_corrupt_cache(tmp_path):
    """End to end: a corrupt cache file never fails a multiply."""
    path = tmp_path / "plans.json"
    _seed_file(path)
    with faults.inject("cache.corrupt"):
        cache = PlanCache(path)
        rng = np.random.default_rng(1)
        A = rng.standard_normal((192, 192))
        B = rng.standard_normal((192, 192))
        C = matmul(A, B, threads=1, cache=cache, guard=True)
    assert np.allclose(C, A @ B)


# ------------------------------------------------------- save resilience
def test_save_failure_counts_and_warns_once(tmp_path, monkeypatch, caplog):
    import logging

    path = tmp_path / "readonly" / "plans.json"
    cache = PlanCache(path)
    cache.put(192, 192, 192, "float64", 1, Plan(threads=1),
              seconds=0.01, gflops=1.0)

    import os

    def no_replace(src, dst):
        raise OSError("injected write failure")

    obs.enable()
    monkeypatch.setattr(os, "replace", no_replace)
    with caplog.at_level(logging.WARNING, logger="repro.tuner.cache"):
        assert not cache.save()
        assert not cache.save()
    assert cache.save_error is not None
    assert obs.summarize()["guard"]["cache_save_errors"] >= 2
    warnings = [r for r in caplog.records
                if "cannot be saved" in r.getMessage()]
    assert len(warnings) == 1


# ----------------------------------------------------------- cache doctor
def test_doctor_healthy_cache(tmp_path):
    path = tmp_path / "plans.json"
    _seed_file(path)
    rc, out = run_cli("cache", "doctor", "--cache", str(path))
    assert rc == 0
    assert "healthy" in out


def test_doctor_reports_and_fixes_corruption(tmp_path):
    path = tmp_path / "plans.json"
    path.write_text('{"definitely truncated')
    rc, out = run_cli("cache", "doctor", "--cache", str(path))
    assert rc == 1
    assert "[corrupt]" in out

    rc, out = run_cli("cache", "doctor", "--cache", str(path), "--fix")
    assert rc == 0
    assert "fixed" in out
    assert not (tmp_path / "plans.json.corrupt").exists()

    rc, out = run_cli("cache", "doctor", "--cache", str(path))
    assert rc == 0 and "healthy" in out


def test_doctor_reports_quarantined_plans(tmp_path):
    path = tmp_path / "plans.json"
    cache = _seed_file(path)
    plan = Plan(algorithm="strassen", steps=1, threads=1)
    for _ in range(2):
        cache.record_failure(192, 192, 192, "float64", 1, plan, "boom")
    assert cache.save()

    rc, out = run_cli("cache", "doctor", "--cache", str(path))
    assert rc == 1
    assert "[quarantined]" in out and "strassen" in out

    rc, out = run_cli("cache", "doctor", "--cache", str(path), "--fix")
    assert rc == 0
    assert not PlanCache(path).quarantined_keys()


def test_doctor_reports_unparsable_entries(tmp_path):
    path = tmp_path / "plans.json"
    _seed_file(path)
    payload = json.loads(path.read_text())
    key = next(iter(payload["entries"]))
    payload["entries"][key]["plan"] = "not-a-plan-dict"
    path.write_text(json.dumps(payload))

    rc, out = run_cli("cache", "doctor", "--cache", str(path))
    assert rc == 1
    assert "[unparsable]" in out

    rc, _ = run_cli("cache", "doctor", "--cache", str(path), "--fix")
    assert rc == 0
    assert len(PlanCache(path)) == 0


def test_cache_show_includes_failure_ledger(tmp_path):
    path = tmp_path / "plans.json"
    cache = _seed_file(path)
    plan = Plan(algorithm="strassen", steps=1, threads=1)
    for _ in range(2):
        cache.record_failure(192, 192, 192, "float64", 1, plan, "boom")
    assert cache.save()
    rc, out = run_cli("cache", "show", "--cache", str(path))
    assert rc == 0
    assert "failure ledger" in out and "QUARANTINED" in out
