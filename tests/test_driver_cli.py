"""Tests for the search driver CLI (python -m repro.search.driver)."""

import json


from repro.core.algorithm import FastAlgorithm
from repro.search.driver import main


class TestCli:
    def test_trivial_target_end_to_end(self, tmp_path):
        out = tmp_path / "t.json"
        rc = main([
            "--base", "1", "1", "2", "--rank", "2", "--starts", "3",
            "--seed", "1", "--sweeps", "300", "--quiet",
            "--out", str(out),
        ])
        assert rc == 0
        d = json.loads(out.read_text())
        assert d["base_case"] == [1, 1, 2]
        alg = FastAlgorithm.from_dict(d)
        assert alg.rank == 2

    def test_deadline_flag(self, tmp_path):
        out = tmp_path / "d.json"
        rc = main([
            "--base", "2", "2", "2", "--rank", "7", "--starts", "10000",
            "--seed", "2", "--sweeps", "400", "--deadline", "5",
            "--quiet", "--out", str(out),
        ])
        # either found quickly or saved best-so-far within the deadline
        assert rc == 0
        assert out.exists()

    def test_accept_threshold_apa_mode(self, tmp_path):
        """With an unreachable accept threshold the driver stores the best
        plateau (APA-style outcome)."""
        out = tmp_path / "a.json"
        rc = main([
            "--base", "2", "2", "2", "--rank", "5", "--starts", "2",
            "--seed", "3", "--sweeps", "150", "--accept", "1e-14",
            "--quiet", "--out", str(out),
        ])
        assert rc == 0
        d = json.loads(out.read_text())
        assert d["apa"] is True
        assert d["rel_residual"] > 1e-6

    def test_output_metadata_fields(self, tmp_path):
        out = tmp_path / "m.json"
        main([
            "--base", "1", "2", "1", "--rank", "2", "--starts", "2",
            "--seed", "4", "--sweeps", "200", "--quiet", "--out", str(out),
        ])
        d = json.loads(out.read_text())
        for key in ("rank", "seed", "starts_used", "provenance", "rel_residual"):
            assert key in d
