"""Tests for the parallel substrate: blas control, pool, gemm, add."""

import numpy as np
import pytest

from repro.parallel import blas
from repro.parallel.add import measure_stream, stream_triad
from repro.parallel.gemm import dgemm, tiled_gemm
from repro.parallel.pool import (
    WorkerPool,
    _row_slabs,
    available_cores,
    parallel_axpy,
    parallel_combine,
    parallel_copy,
    resolve_threads,
)
from repro.util.matrices import random_matrix


class TestBlasControl:
    def test_controllable_on_this_numpy(self):
        """The bundled OpenBLAS exposes thread control; if this fails the
        schemes degrade gracefully, but we want to know."""
        assert blas.is_controllable()

    def test_get_set_roundtrip(self):
        old = blas.get_threads()
        try:
            blas.set_threads(1)
            assert blas.get_threads() == 1
            blas.set_threads(2)
            assert blas.get_threads() == 2
        finally:
            blas.set_threads(old)

    def test_context_manager_restores(self):
        old = blas.get_threads()
        with blas.blas_threads(1):
            assert blas.get_threads() == 1
        assert blas.get_threads() == old

    def test_context_manager_restores_on_error(self):
        old = blas.get_threads()
        with pytest.raises(RuntimeError):
            with blas.blas_threads(1):
                raise RuntimeError("boom")
        assert blas.get_threads() == old

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            blas.set_threads(0)

    def test_sequential_alias(self):
        with blas.sequential():
            assert blas.get_threads() == 1


class TestPool:
    def test_available_cores_positive(self):
        assert available_cores() >= 1

    def test_map_wait_ordered(self):
        with WorkerPool(2) as pool:
            out = pool.map_wait(lambda x: x * x, range(10))
        assert out == [x * x for x in range(10)]

    def test_taskgroup_barrier(self):
        with WorkerPool(2) as pool:
            g = pool.group()
            acc = []
            for i in range(5):
                g.run(acc.append, i)
            g.wait()
            assert sorted(acc) == [0, 1, 2, 3, 4]

    def test_exceptions_propagate(self):
        def bad():
            raise ValueError("worker failure")

        with WorkerPool(2) as pool:
            g = pool.group()
            g.run(bad)
            with pytest.raises(ValueError, match="worker failure"):
                g.wait()

    def test_group_reusable_after_wait(self):
        with WorkerPool(2) as pool:
            g = pool.group()
            g.run(lambda: 1)
            assert g.wait() == [1]
            g.run(lambda: 2)
            assert g.wait() == [2]

    def test_wait_drains_all_futures_on_exception(self):
        """Regression: ``wait()`` used to abandon the remaining futures as
        soon as one raised, leaking "exception was never retrieved"
        warnings and leaving ``_futures`` populated -- a reused group then
        re-raised a *stale* exception on its next barrier."""
        import threading

        release = threading.Event()
        finished = []

        def slow_ok(i):
            release.wait(5.0)
            finished.append(i)
            return i

        def bad():
            raise RuntimeError("first failure")

        with WorkerPool(2) as pool:
            g = pool.group()
            g.run(bad)
            for i in range(4):
                g.run(slow_ok, i)
            release.set()
            with pytest.raises(RuntimeError, match="first failure"):
                g.wait()
            # the barrier really waited for everyone, then forgot them
            assert sorted(finished) == [0, 1, 2, 3]
            assert g._futures == []
            # and the group is reusable with no stale exception
            g.run(lambda: 99)
            assert g.wait() == [99]

    def test_wait_raises_first_exception_in_submission_order(self):
        import threading

        gate = threading.Event()

        def fail_late():
            gate.wait(5.0)
            raise ValueError("submitted first")

        def fail_fast():
            raise KeyError("submitted second")

        with WorkerPool(2) as pool:
            g = pool.group()
            g.run(fail_late)
            g.run(fail_fast)
            gate.set()
            with pytest.raises(ValueError, match="submitted first"):
                g.wait()

    def test_resolve_threads(self):
        assert resolve_threads(None) == available_cores()
        assert resolve_threads(3) == 3
        for bad in (0, -1, 2.5, True, "4"):
            with pytest.raises(ValueError, match="threads"):
                resolve_threads(bad)

    def test_row_slabs_cover_exactly(self):
        for nrows in (1, 2, 7, 100):
            for parts in (1, 2, 3, 8):
                slabs = _row_slabs(nrows, parts)
                covered = []
                for sl in slabs:
                    covered.extend(range(sl.start, sl.stop))
                assert covered == list(range(nrows))


class TestParallelKernels:
    def test_parallel_copy(self):
        src = random_matrix(101, 67, 0)
        dst = np.empty_like(src)
        with WorkerPool(2) as pool:
            parallel_copy(pool, dst, src)
        np.testing.assert_array_equal(dst, src)

    def test_parallel_axpy_matches_serial(self):
        x = random_matrix(101, 67, 1)
        out = random_matrix(101, 67, 2)
        expected = out + 2.5 * x
        with WorkerPool(2) as pool:
            parallel_axpy(pool, out, x, 2.5)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    @pytest.mark.parametrize("coeffs", [
        [1.0, -1.0, 0.5],
        [0.0, 0.0, 0.0],
        [1.0, 0.0, 0.0],
        [-2.0, 3.0, 0.0],
    ])
    def test_parallel_combine_matches_serial(self, coeffs):
        blocks = [random_matrix(33, 21, i) for i in range(3)]
        expected = sum(c * b for c, b in zip(coeffs, blocks))
        if isinstance(expected, int):
            expected = np.zeros((33, 21))
        out = np.empty((33, 21))
        with WorkerPool(2) as pool:
            parallel_combine(pool, out, blocks, coeffs)
        np.testing.assert_allclose(out, expected, atol=1e-12)


class TestGemm:
    def test_dgemm_matches_numpy(self):
        A = random_matrix(64, 48, 0)
        B = random_matrix(48, 56, 1)
        for t in (1, 2):
            np.testing.assert_allclose(dgemm(A, B, threads=t), A @ B, atol=1e-10)

    def test_tiled_gemm_matches(self):
        A = random_matrix(129, 65, 2)
        B = random_matrix(65, 77, 3)
        with WorkerPool(2) as pool:
            C = tiled_gemm(A, B, pool, threads=2)
        np.testing.assert_allclose(C, A @ B, atol=1e-10)

    def test_tiled_gemm_out_buffer(self):
        A = random_matrix(32, 32, 4)
        B = random_matrix(32, 32, 5)
        out = np.empty((32, 32))
        with WorkerPool(2) as pool:
            C = tiled_gemm(A, B, pool, threads=2, out=out)
        assert C is out
        np.testing.assert_allclose(out, A @ B, atol=1e-10)

    def test_tiled_gemm_single_thread_path(self):
        A = random_matrix(8, 8, 6)
        B = random_matrix(8, 8, 7)
        with WorkerPool(1) as pool:
            np.testing.assert_allclose(
                tiled_gemm(A, B, pool, threads=1), A @ B, atol=1e-10
            )

    @pytest.mark.parametrize("threads", [1, 2])
    def test_tiled_gemm_float32(self, threads):
        """Regression: C used to be allocated as bare float64 ``np.empty``,
        which broke/upcast ``np.dot(..., out=C)`` for float32 operands."""
        A = random_matrix(65, 33, 8, dtype=np.float32)
        B = random_matrix(33, 41, 9, dtype=np.float32)
        with WorkerPool(2) as pool:
            C = tiled_gemm(A, B, pool, threads=threads)
        assert C.dtype == np.float32
        np.testing.assert_allclose(C, A @ B, atol=1e-4)

    def test_dgemm_out(self):
        A = random_matrix(48, 32, 10)
        B = random_matrix(32, 40, 11)
        out = np.empty((48, 40))
        assert dgemm(A, B, threads=2, out=out) is out
        np.testing.assert_allclose(out, A @ B, atol=1e-10)


class TestStream:
    def test_triad_positive_bandwidth(self):
        with WorkerPool(2) as pool:
            bw = stream_triad(pool, 1, size_mb=8, repeats=3)
        assert bw > 0.1  # any machine moves >0.1 GiB/s

    def test_measure_stream_result(self):
        with WorkerPool(2) as pool:
            res = measure_stream(pool, [1, 2], size_mb=8)
        assert len(res.bandwidth_gib_s) == 2
        assert res.speedup()[0] == pytest.approx(1.0)
        eff = res.parallel_efficiency()
        assert eff[0] == pytest.approx(1.0)
        assert 0 < eff[1] <= 1.5  # bandwidth rarely scales superlinearly
