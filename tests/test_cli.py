"""Tests for the ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest
from conftest import run_cli

from repro.cli import main


class TestList:
    def test_contains_core_rows(self):
        rc, text = run_cli("list")
        assert rc == 0
        for name in ("strassen", "winograd", "hk223", "s333"):
            assert name in text
        assert "APA" not in text  # hidden by default

    def test_apa_flag_adds_apa_rows(self):
        rc, text = run_cli("list", "--apa")
        assert rc == 0
        assert "bini322" in text and "schonhage333" in text

    def test_paper_rank_column_present(self):
        rc, text = run_cli("list")
        # the three documented fallbacks show paper rank != achieved rank
        row = next(ln for ln in text.splitlines() if ln.strip().startswith("s334"))
        assert " 30 " in row and " 29 " in row


class TestVerify:
    def test_all_catalog_entries_verify(self):
        rc, text = run_cli("verify")
        assert rc == 0
        assert "0 failures" in text

    def test_selected_names(self):
        rc, text = run_cli("verify", "strassen", "s333")
        assert rc == 0
        assert "strassen" in text and "s333" in text
        assert "2 checked" in text

    def test_exact_entries_report_tiny_residual(self):
        rc, text = run_cli("verify", "strassen")
        line = text.splitlines()[0]
        assert "ok" in line


class TestMultiply:
    def test_small_multiply_reports_speedup_and_error(self):
        rc, text = run_cli("multiply", "-a", "strassen", "-n", "96",
                           "-s", "1", "--trials", "1")
        assert rc == 0
        assert "eff.GFLOPS" in text and "rel.err" in text

    def test_rectangular_shape(self):
        rc, text = run_cli("multiply", "-a", "s424", "--shape", "64", "32",
                           "64", "--trials", "1")
        assert rc == 0
        assert "64x32x64" in text

    def test_parallel_path(self):
        rc, text = run_cli("multiply", "-a", "strassen", "-n", "96",
                           "--parallel", "--scheme", "bfs", "--threads", "2",
                           "--trials", "1")
        assert rc == 0
        assert "bfs" in text

    def test_native_path(self):
        from repro.codegen import cbackend

        if not cbackend.available():
            pytest.skip("no C compiler")
        rc, text = run_cli("multiply", "-a", "strassen", "-n", "96",
                           "--native", "--trials", "1")
        assert rc == 0
        assert "native chains" in text

    def test_blas_threads_option(self):
        rc, text = run_cli("multiply", "-a", "strassen", "-n", "64",
                           "--trials", "1", "--blas-threads", "1")
        assert rc == 0

    def test_subgroup_path(self):
        rc, text = run_cli("multiply", "-a", "strassen", "-n", "96",
                           "--parallel", "--scheme", "hybrid-subgroup",
                           "--threads", "2", "--subgroup", "1",
                           "--trials", "1")
        assert rc == 0
        assert "hybrid-subgroup" in text

    def test_subgroup_must_divide_threads(self, capsys):
        rc, _ = run_cli("multiply", "-a", "strassen", "-n", "96",
                        "--parallel", "--scheme", "hybrid-subgroup",
                        "--threads", "4", "--subgroup", "3", "--trials", "1")
        assert rc == 2
        assert "divisor" in capsys.readouterr().err

    def test_subgroup_requires_subgroup_scheme(self, capsys):
        rc, _ = run_cli("multiply", "-a", "strassen", "-n", "96",
                        "--parallel", "--scheme", "bfs", "--threads", "2",
                        "--subgroup", "1", "--trials", "1")
        assert rc == 2
        assert "hybrid-subgroup" in capsys.readouterr().err


class TestCodegen:
    def test_python_source(self):
        rc, text = run_cli("codegen", "-a", "strassen")
        assert rc == 0
        assert "Auto-generated fast matrix multiplication" in text
        assert "write_once" in text

    def test_strategy_and_cse_flags(self):
        rc, text = run_cli("codegen", "-a", "s333", "--strategy", "pairwise",
                           "--cse")
        assert rc == 0
        assert "pairwise" in text and "cse=True" in text

    def test_c_source(self):
        rc, text = run_cli("codegen", "-a", "strassen", "--c")
        assert rc == 0
        assert "form_S" in text and "#include" in text


class TestSearchPassthrough:
    def test_forwards_to_driver(self, tmp_path):
        out = tmp_path / "t212.json"
        rc = main(["search", "--base", "2", "1", "2", "--rank", "4",
                   "--starts", "4", "--out", str(out), "--quiet"])
        assert rc == 0
        assert out.exists()


class TestProcessLevel:
    def test_module_invocation(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0
        assert "strassen" in proc.stdout

    def test_help_exits_zero(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0
        assert "multiply" in proc.stdout

    def test_unknown_command_fails(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "frobnicate"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode != 0


class TestStats:
    """``repro stats``: live-registry and snapshot-file telemetry report."""

    @pytest.fixture(autouse=True)
    def clean_obs(self, tmp_path, monkeypatch):
        from repro import obs

        monkeypatch.setenv(obs.SNAPSHOT_ENV, str(tmp_path / "snap.json"))
        obs.disable()
        obs.reset()
        yield
        obs.disable()
        obs.reset()

    def _warm_auto_run(self, tmp_path):
        rc, text = run_cli("multiply", "--auto", "-n", "192", "--trials", "1",
                           "--threads", "1",
                           "--cache", str(tmp_path / "plans.json"))
        assert rc == 0
        return text

    def test_no_data(self):
        rc, text = run_cli("stats")
        assert rc == 0
        assert "no data" in text

    def test_human_report_after_auto(self, tmp_path):
        self._warm_auto_run(tmp_path)
        rc, text = run_cli("stats")
        assert rc == 0
        assert "plan sources:" in text
        assert "cache hit ratio" in text
        assert "workspace:" in text and "overflows 0" in text
        assert "span totals" in text
        assert "last dispatch: 192x192x192" in text

    def test_json_format_parses(self, tmp_path):
        import json

        self._warm_auto_run(tmp_path)
        rc, text = run_cli("stats", "--format", "json")
        assert rc == 0
        snap = json.loads(text)
        assert snap["schema"] == 1
        assert any(c["name"] == "dispatch.calls" for c in snap["counters"])

    def test_prom_format(self, tmp_path):
        self._warm_auto_run(tmp_path)
        rc, text = run_cli("stats", "--format", "prom")
        assert rc == 0
        assert "# TYPE repro_dispatch_calls_total counter" in text
        assert "repro_dispatch_lookup_seconds_sum" in text

    def test_snapshot_file_fallback(self, tmp_path):
        """--auto saves a snapshot; a later process (simulated by resetting
        the live registry) reads it back."""
        from repro import obs

        text = self._warm_auto_run(tmp_path)
        assert "telemetry snapshot:" in text
        obs.disable()
        obs.reset()
        rc, text = run_cli("stats")
        assert rc == 0
        assert "snapshot file" in text
        assert "plan sources:" in text

    def test_reset_clears(self, tmp_path):
        self._warm_auto_run(tmp_path)
        rc, _ = run_cli("stats", "--reset")
        assert rc == 0
        from repro import obs

        obs.disable()  # --auto left telemetry on; stats must be empty now
        rc, text = run_cli("stats")
        assert rc == 0
        assert "no data" in text


class TestExplain:
    @pytest.fixture(autouse=True)
    def clean_obs(self):
        from repro import obs

        obs.disable()
        obs.reset()
        yield
        obs.disable()
        obs.reset()

    def test_decision_trace(self, tmp_path):
        rc, text = run_cli("multiply", "--explain", "-n", "192",
                           "--threads", "1",
                           "--cache", str(tmp_path / "plans.json"))
        assert rc == 0
        assert "decision trace: 192x192x192" in text
        assert "cost-ranked shortlist" in text
        assert "#1" in text
        assert "chosen plan:" in text and "[source:" in text
        assert "arena footprint:" in text
        assert "observed call:" in text
        assert "dispatch.lookup" in text
