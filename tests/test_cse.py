"""Tests for greedy CSE (repro.codegen.cse)."""

import numpy as np
import pytest

from repro.algorithms import get_algorithm, strassen, winograd
from repro.codegen.chains import Chain, Term, extract_chains
from repro.codegen.cse import eliminate, table3_row


def _eval_program(defs, chains, env):
    """Numerically evaluate CSE definitions then chains."""
    env = dict(env)
    for d in defs:
        env[d.target] = sum(t.coeff * env[t.source] for t in d.terms)
    return {c.target: sum(t.coeff * env[t.source] for t in c.terms) for c in chains}


class TestPaperExample:
    def test_t11_t25_shared_subexpression(self):
        """The Section 3.3 example: T11 = B24 - B12 - B22 and
        T25 = B23 + B12 + B22 share B12 + B22 up to sign."""
        chains = [
            Chain("T11", [Term(1.0, "B24"), Term(-1.0, "B12"), Term(-1.0, "B22")]),
            Chain("T25", [Term(1.0, "B23"), Term(1.0, "B12"), Term(1.0, "B22")]),
        ]
        res = eliminate(chains)
        assert res.subexpressions_eliminated == 1
        assert res.additions_saved == 1  # 2 uses: saves 2, forming Y costs 1
        assert res.original_additions == 4
        assert res.final_additions == 3
        # semantics preserved
        rng = np.random.default_rng(0)
        env = {k: rng.standard_normal() for k in ("B24", "B12", "B22", "B23")}
        before = {
            "T11": env["B24"] - env["B12"] - env["B22"],
            "T25": env["B23"] + env["B12"] + env["B22"],
        }
        after = _eval_program(res.definitions, res.chains, env)
        for k in before:
            assert after[k] == pytest.approx(before[k])


class TestSemanticPreservation:
    @pytest.mark.parametrize("name", ["strassen", "winograd", "s233", "s333", "s244"])
    def test_cse_preserves_chain_values(self, name):
        alg = get_algorithm(name)
        prog = extract_chains(alg)
        rng = np.random.default_rng(hash(name) % 2**32)
        env = {f"A{i}": rng.standard_normal() for i in range(alg.m * alg.k)}
        env.update({f"B{i}": rng.standard_normal() for i in range(alg.k * alg.n)})
        chains = prog.s_chains + prog.t_chains
        before = {c.target: sum(t.coeff * env[t.source] for t in c.terms)
                  for c in chains}
        res = eliminate(chains)
        after = _eval_program(res.definitions, res.chains, env)
        for k, v in before.items():
            assert after[k] == pytest.approx(v, abs=1e-10), (name, k)

    def test_bookkeeping_consistent(self):
        prog = extract_chains(get_algorithm("s333"))
        res = eliminate(prog.s_chains + prog.t_chains)
        # final = original - saved, and recomputing from chains agrees
        # (+ definitions' own additions)
        chain_adds = sum(c.additions for c in res.chains)
        def_adds = sum(d.additions for d in res.definitions)
        assert chain_adds + def_adds == res.final_additions


class TestWinogradReuse:
    def test_cse_recovers_winograd_savings(self):
        """Winograd's raw factors have 24 S/T/C additions; its hallmark is
        that reuse brings the total to 15.  Our greedy CSE must find a
        substantial part of that reuse."""
        prog = extract_chains(winograd())
        raw = prog.total_additions
        res_st = eliminate(prog.s_chains + prog.t_chains)
        res_c = eliminate(prog.c_chains)
        total = res_st.final_additions + res_c.final_additions
        assert raw == 24
        assert total <= 17  # greedy pairwise CSE: close to the optimal 15

    def test_strassen_has_no_st_reuse(self):
        """Strassen's S/T chains share no length-2 subexpressions."""
        prog = extract_chains(strassen())
        res = eliminate(prog.s_chains + prog.t_chains)
        assert res.subexpressions_eliminated == 0
        assert res.additions_saved == 0


class TestTable3:
    @pytest.mark.parametrize("name", ["s333", "s424", "s432", "s433", "s522"])
    def test_rows_well_formed(self, name):
        """Our Table 3 rows (counts are representation-specific; the paper's
        algorithms differ from our searched ones, so we check invariants
        rather than the paper's literal numbers)."""
        alg = get_algorithm(name)
        prog = extract_chains(alg)
        row = table3_row(prog.s_chains, prog.t_chains)
        assert row["original"] == prog.st_additions
        assert row["cse"] == row["original"] - row["additions_saved"]
        assert row["additions_saved"] >= row["subexpressions_eliminated"] >= 0

    def test_dense_algorithms_save_more(self):
        """Float-dense searched factors expose many shared pairs; CSE must
        find at least some on s244."""
        prog = extract_chains(get_algorithm("s244"))
        row = table3_row(prog.s_chains, prog.t_chains)
        assert row["additions_saved"] >= 0


class TestEliminateEdgeCases:
    def test_no_pairs(self):
        chains = [Chain("X", [Term(1.0, "A0")])]
        res = eliminate(chains)
        assert res.subexpressions_eliminated == 0
        assert res.chains[0].terms == chains[0].terms

    def test_min_occurrences_threshold(self):
        chains = [
            Chain("X", [Term(1.0, "A0"), Term(1.0, "A1")]),
            Chain("Y", [Term(2.0, "A0"), Term(2.0, "A1")]),
        ]
        res4 = eliminate(chains, min_occurrences=4)
        assert res4.subexpressions_eliminated == 0
        res2 = eliminate(chains, min_occurrences=2)
        assert res2.subexpressions_eliminated == 1

    def test_scaled_pair_matches(self):
        """A0 + A1 and 3*A0 + 3*A1 are the same subexpression up to scale."""
        chains = [
            Chain("X", [Term(1.0, "A0"), Term(1.0, "A1"), Term(1.0, "A2")]),
            Chain("Y", [Term(3.0, "A0"), Term(3.0, "A1")]),
        ]
        res = eliminate(chains)
        assert res.subexpressions_eliminated == 1
        assert all(
            {t.source for t in c.terms} != {"A0", "A1"} for c in res.chains
        )

    def test_different_ratio_does_not_match(self):
        chains = [
            Chain("X", [Term(1.0, "A0"), Term(1.0, "A1")]),
            Chain("Y", [Term(1.0, "A0"), Term(-1.0, "A1")]),
        ]
        res = eliminate(chains)
        assert res.subexpressions_eliminated == 0
