"""Property-based tests for ``repro.linalg``.

The invariants: every blocked/recursive driver must agree with the
unblocked vendor reference for *any* shape, block size and kernel
configuration, and the algebraic identities (P A = L U, L Lᵀ = A,
T·T⁻¹ = I, power laws) must hold at rounding accuracy when the kernel is
exact — regardless of whether the flops route through BLAS or a fast
algorithm.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    MatmulKernel,
    cholesky,
    count_walks,
    invert_triangular,
    lu_factor,
    lu_solve,
    matrix_power,
    solve_triangular,
)
from repro.linalg.cholesky import cholesky_error
from repro.linalg.lu import lu_error

kernels = st.sampled_from([None, "strassen", "hk223", "s233"])
blocks = st.sampled_from([8, 17, 32, 64])


def _kernel(name):
    if name is None:
        return MatmulKernel()
    return MatmulKernel(algorithm=name, steps=1, min_dim=24)


def _rand(rng, *shape):
    return rng.standard_normal(shape)


class TestLUProperties:
    @given(st.integers(2, 90), st.integers(2, 90), blocks, kernels,
           st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_palu_identity_any_shape(self, m, n, block, kname, seed):
        rng = np.random.default_rng(seed)
        A = _rand(rng, m, n)
        fac = lu_factor(A, kernel=_kernel(kname), block=block)
        assert lu_error(A, fac) < 1e-10

    @given(st.integers(4, 70), blocks, kernels, st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_solve_inverts_matvec(self, n, block, kname, seed):
        rng = np.random.default_rng(seed)
        # diagonally dominant => safely nonsingular for any draw
        A = _rand(rng, n, n) + n * np.eye(n)
        x = _rand(rng, n, 3)
        k = _kernel(kname)
        fac = lu_factor(A, kernel=k, block=block)
        got = lu_solve(fac, A @ x, kernel=k)
        np.testing.assert_allclose(got, x, atol=1e-8)

    @given(st.integers(2, 60), st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_unit_lower_and_upper_extraction(self, n, seed):
        rng = np.random.default_rng(seed)
        A = _rand(rng, n, n) + n * np.eye(n)
        LU, piv = lu_factor(A, block=16)
        L = np.tril(LU, -1) + np.eye(n)
        U = np.triu(LU)
        assert np.all(np.diag(L) == 1.0)
        # pivots are in-range and at-or-below their row index
        assert np.all(piv >= np.arange(n)) and np.all(piv < n)
        # L's entries are bounded by 1 (definition of partial pivoting)
        assert np.max(np.abs(np.tril(LU, -1))) <= 1.0 + 1e-12


class TestCholeskyProperties:
    @given(st.integers(2, 80), blocks, kernels, st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_llt_identity(self, n, block, kname, seed):
        rng = np.random.default_rng(seed)
        X = _rand(rng, n, n)
        A = X @ X.T + n * np.eye(n)
        L = cholesky(A, kernel=_kernel(kname), block=block)
        assert cholesky_error(A, L) < 1e-11
        assert np.max(np.abs(np.triu(L, 1))) == 0.0

    @given(st.integers(2, 60), st.integers(0, 10**6))
    @settings(max_examples=12, deadline=None)
    def test_diagonal_positive(self, n, seed):
        rng = np.random.default_rng(seed)
        X = _rand(rng, n, n)
        L = cholesky(X @ X.T + n * np.eye(n), block=16)
        assert np.all(np.diag(L) > 0)


class TestTrsmProperties:
    @given(
        st.integers(2, 80), st.integers(1, 20),
        st.booleans(), st.booleans(), st.booleans(),
        st.sampled_from(["left", "right"]),
        blocks, kernels, st.integers(0, 10**6),
    )
    @settings(max_examples=30, deadline=None)
    def test_residual_all_flags(self, n, m, lower, trans, unit, side,
                                base, kname, seed):
        rng = np.random.default_rng(seed)
        T = 0.1 * np.tril(_rand(rng, n, n), -1) + np.diag(rng.uniform(1, 2, n))
        if not lower:
            T = T.T
        B = _rand(rng, n, m) if side == "left" else _rand(rng, m, n)
        X = solve_triangular(T, B, side=side, lower=lower, trans=trans,
                             unit_diagonal=unit, kernel=_kernel(kname),
                             base_size=base)
        if unit:
            strict = np.tril(T, -1) if lower else np.triu(T, 1)
            op = strict + np.eye(n)
        else:
            op = np.tril(T) if lower else np.triu(T)
        op = op.T if trans else op
        got = op @ X if side == "left" else X @ op
        np.testing.assert_allclose(got, B, atol=1e-8)

    @given(st.integers(2, 60), st.integers(0, 10**6))
    @settings(max_examples=12, deadline=None)
    def test_inverse_consistency(self, n, seed):
        rng = np.random.default_rng(seed)
        T = 0.1 * np.tril(_rand(rng, n, n), -1) + np.diag(rng.uniform(1, 2, n))
        Tinv = invert_triangular(T, base_size=8)
        X = solve_triangular(T, np.eye(n), base_size=8)
        np.testing.assert_allclose(Tinv, X, atol=1e-9)


class TestPowerProperties:
    @given(st.integers(1, 30), st.integers(0, 6), st.integers(0, 6),
           kernels, st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_exponent_additivity(self, n, p, q, kname, seed):
        rng = np.random.default_rng(seed)
        A = _rand(rng, n, n) / (2.0 * np.sqrt(n))  # spectral radius < 1
        k = _kernel(kname)
        left = matrix_power(A, p + q, kernel=k)
        right = matrix_power(A, p, kernel=k) @ matrix_power(A, q, kernel=k)
        np.testing.assert_allclose(left, right, atol=1e-9)

    @given(st.integers(2, 25), st.integers(0, 5), st.floats(0.05, 0.5),
           st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_walk_counts_are_exact_integers(self, n, length, density, seed):
        rng = np.random.default_rng(seed)
        A = (rng.uniform(size=(n, n)) < density).astype(float)
        ref = np.linalg.matrix_power(A.astype(np.int64), length)
        got = count_walks(A, length, kernel=_kernel("strassen"))
        np.testing.assert_array_equal(got, ref)
