"""Failure-injection tests: errors must surface, not corrupt results."""

import numpy as np
import pytest

from repro.algorithms import classical, get_algorithm, strassen
from repro.codegen import compile_algorithm, generate_source
from repro.core.algorithm import FastAlgorithm
from repro.core.recursion import multiply
from repro.parallel import WorkerPool, multiply_parallel
from repro.parallel.pool import parallel_combine
from repro.util.matrices import random_matrix


class TestBrokenAlgorithms:
    def _broken(self):
        s = strassen()
        U = np.array(s.U)
        U[:, 3] = 0.0  # dead product column
        return FastAlgorithm(2, 2, 2, U, s.V, s.W, name="dead-column", apa=True)

    def test_generator_rejects_dead_column(self):
        with pytest.raises(ValueError, match="degenerate rank column"):
            generate_source(self._broken())

    def test_interpreter_skips_dead_column(self):
        """The reference executor tolerates dead columns (it just computes a
        wrong product for a non-exact algorithm -- no crash)."""
        A = random_matrix(8, 8, 0)
        C = multiply(A, A, self._broken(), steps=1)
        assert C.shape == (8, 8)
        assert np.isfinite(C).all()

    def test_validate_catches_wrong_coefficient(self):
        s = strassen()
        W = np.array(s.W)
        W[0, 0] = -1.0
        bad = FastAlgorithm(2, 2, 2, s.U, s.V, W, name="bad")
        with pytest.raises(ValueError, match="residual"):
            bad.validate()

    def test_multiply_with_wrong_algorithm_is_detectably_wrong(self):
        s = strassen()
        W = np.array(s.W)
        W[0, 0] = -1.0
        bad = FastAlgorithm(2, 2, 2, s.U, s.V, W, name="bad", apa=True)
        A = random_matrix(16, 16, 1)
        C = multiply(A, A, bad, steps=1)
        assert np.linalg.norm(C - A @ A) / np.linalg.norm(A @ A) > 1e-3


class TestWorkerFailures:
    def test_leaf_exception_propagates_through_bfs(self, monkeypatch):
        """A failing leaf multiply must raise at the barrier, not deadlock
        or silently return garbage."""
        from repro.parallel import schedules

        class Boom(RuntimeError):
            pass

        def bad_leaf(self):
            raise Boom("leaf failure")

        monkeypatch.setattr(schedules._Node, "leaf_multiply", bad_leaf)
        A = random_matrix(16, 17, 0)
        B = random_matrix(17, 16, 1)
        with WorkerPool(2) as pool:
            with pytest.raises(Boom, match="leaf failure"):
                multiply_parallel(A, B, strassen(), steps=1, scheme="bfs",
                                  pool=pool)

    def test_parallel_combine_bad_shapes(self):
        out = np.empty((4, 4))
        with WorkerPool(2) as pool:
            with pytest.raises(Exception):
                parallel_combine(pool, out, [np.ones((3, 3))], [1.0])

    def test_pool_survives_failed_group(self):
        with WorkerPool(2) as pool:
            g = pool.group()
            g.run(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                g.wait()
            # pool still usable
            assert pool.map_wait(lambda x: x, [1, 2]) == [1, 2]


class TestInputValidation:
    def test_nan_inputs_propagate_not_crash(self):
        A = random_matrix(8, 8, 0)
        A[0, 0] = np.nan
        C = multiply(A, A, strassen(), steps=1)
        assert np.isnan(C).any()

    def test_empty_dims_follow_numpy_semantics(self):
        C = multiply(np.ones((0, 4)), np.ones((4, 2)), strassen())
        assert C.shape == (0, 2)

    def test_generated_rejects_bad_inner(self):
        f = compile_algorithm(classical(2, 2, 2))
        with pytest.raises(ValueError):
            f(np.ones((4, 4)), np.ones((5, 4)))


class TestSearchFailureModes:
    def test_infeasible_rank_returns_best_effort(self):
        from repro.search import AlsOptions, search

        out = search(2, 2, 2, 3, starts=2, seed=0,
                     options=AlsOptions(max_sweeps=100))
        assert out is not None
        assert out.rel_residual > 0.1  # cannot fit rank 3
        assert out.exact is False

    def test_driver_cli_bad_args(self):
        from repro.search.driver import main

        with pytest.raises(SystemExit):
            main(["--rank", "7", "--out", "/tmp/x.json"])  # missing --base


class TestCatalogFailures:
    def test_unknown_name_message(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            get_algorithm("fastmagic")

    def test_nonexistent_permutation(self):
        with pytest.raises(KeyError, match="only the classical fallback"):
            get_algorithm("s999")
