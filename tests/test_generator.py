"""Tests for the code generator (repro.codegen.generator)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import classical, get_algorithm, strassen, winograd
from repro.codegen import STRATEGIES, compile_algorithm, generate_source
from repro.codegen.generator import _MODULE_CACHE, fingerprint
from repro.core.recursion import multiply as reference_multiply
from repro.util.matrices import random_matrix


class TestSourceGeneration:
    def test_source_is_valid_python(self):
        src = generate_source(strassen())
        compile(src, "<test>", "exec")

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("cse", [False, True])
    def test_all_variants_compile(self, strategy, cse):
        src = generate_source(get_algorithm("s233"), strategy, cse)
        compile(src, "<test>", "exec")

    def test_header_mentions_config(self):
        src = generate_source(strassen(), "streaming", True)
        assert "streaming" in src and "cse=True" in src

    def test_aliases_in_source(self):
        """Strassen's S3 = A11 must be an alias, not a copy."""
        src = generate_source(strassen(), "write_once")
        assert "S2 = A0" in src  # S3 in paper numbering = S2 zero-based

    def test_invalid_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            generate_source(strassen(), "nope")

    def test_write_source(self, tmp_path):
        from repro.codegen import write_source

        p = tmp_path / "gen.py"
        write_source(strassen(), p)
        assert "def multiply" in p.read_text()


class TestCompiledCorrectness:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("cse", [False, True])
    def test_strassen_matches_numpy(self, strategy, cse):
        f = compile_algorithm(strassen(), strategy, cse)
        A = random_matrix(48, 48, 0)
        B = random_matrix(48, 48, 1)
        np.testing.assert_allclose(f(A, B, steps=2), A @ B, rtol=1e-10, atol=1e-10)

    @pytest.mark.parametrize("name", ["winograd", "hk225", "s233", "s234", "s244", "s333"])
    def test_catalog_matches_reference(self, name):
        alg = get_algorithm(name)
        f = compile_algorithm(alg, "write_once")
        A = random_matrix(37, 53, 2)
        B = random_matrix(53, 31, 3)
        ref = reference_multiply(A, B, alg, steps=2)
        np.testing.assert_allclose(f(A, B, steps=2), ref, rtol=1e-9, atol=1e-9)

    @given(st.integers(1, 30), st.integers(1, 30), st.integers(1, 30),
           st.sampled_from(STRATEGIES))
    @settings(max_examples=20, deadline=None)
    def test_property_any_dims(self, p, q, r, strategy):
        f = compile_algorithm(get_algorithm("s333"), strategy)
        A = random_matrix(p, q, p + q)
        B = random_matrix(q, r, q + r)
        np.testing.assert_allclose(f(A, B, steps=1), A @ B, rtol=1e-9, atol=1e-9)

    def test_steps_zero_calls_base(self):
        f = compile_algorithm(strassen())
        calls = []

        def base(A, B):
            calls.append(1)
            return A @ B

        A = random_matrix(16, 16, 0)
        f(A, A, steps=0, base=base)
        assert calls == [1]

    def test_leaf_count(self):
        f = compile_algorithm(strassen())
        calls = []

        def base(A, B):
            calls.append(1)
            return A @ B

        A = random_matrix(16, 16, 0)
        f(A, A, steps=2, base=base)
        assert len(calls) == 49

    def test_dim_mismatch(self):
        f = compile_algorithm(strassen())
        with pytest.raises(ValueError):
            f(np.ones((2, 3)), np.ones((4, 4)))

    def test_classical_generated(self):
        f = compile_algorithm(classical(2, 3, 2))
        A = random_matrix(10, 9, 0)
        B = random_matrix(9, 8, 1)
        np.testing.assert_allclose(f(A, B, steps=1), A @ B, rtol=1e-10, atol=1e-10)

    def test_pipe_scalars_off(self):
        f = compile_algorithm(get_algorithm("bini322"), pipe_scalars=False)
        A = random_matrix(9, 8, 0)
        B = random_matrix(8, 10, 1)
        C = f(A, B, steps=1)
        # APA: accuracy limited by the decomposition residual
        rel = np.linalg.norm(C - A @ B) / np.linalg.norm(A @ B)
        assert rel < 0.2

    def test_int_inputs_coerced(self):
        f = compile_algorithm(strassen())
        A = np.arange(16).reshape(4, 4)
        B = np.arange(16).reshape(4, 4)
        np.testing.assert_allclose(f(A, B), (A @ B).astype(float))


class TestCaching:
    def test_fingerprint_stable(self):
        assert fingerprint(strassen(), "write_once", False) == fingerprint(
            strassen(), "write_once", False
        )

    def test_fingerprint_varies(self):
        f1 = fingerprint(strassen(), "write_once", False)
        assert f1 != fingerprint(strassen(), "pairwise", False)
        assert f1 != fingerprint(strassen(), "write_once", True)
        assert f1 != fingerprint(winograd(), "write_once", False)

    def test_compile_cached(self):
        f1 = compile_algorithm(strassen(), "write_once", False)
        f2 = compile_algorithm(strassen(), "write_once", False)
        assert f1 is f2
        key = fingerprint(strassen(), "write_once", False)
        assert key in _MODULE_CACHE


class TestStrategyBehaviour:
    def test_streaming_uses_runtime_calls(self):
        src = generate_source(strassen(), "streaming")
        assert "streaming_combine" in src and "streaming_output" in src

    def test_write_once_uses_out_kwarg(self):
        src = generate_source(strassen(), "write_once")
        assert "out=S0" in src

    def test_pairwise_avoids_out_kwarg(self):
        # scoped to the allocating core: the arena core (_core_ws) lowers
        # pairwise to in-place write-once form by design (the fresh-array-
        # per-op distinction is meaningless once buffers come from an arena)
        src = generate_source(strassen(), "pairwise")
        allocating = src.split("def _core_ws")[0]
        assert "out=S0" not in allocating
        assert "ws.take" in src.split("def _core_ws")[1]

    def test_all_strategies_same_result(self):
        A = random_matrix(24, 36, 5)
        B = random_matrix(36, 20, 6)
        alg = get_algorithm("s234")
        results = [
            compile_algorithm(alg, s, c)(A, B, steps=2)
            for s in STRATEGIES
            for c in (False, True)
        ]
        for r in results[1:]:
            np.testing.assert_allclose(r, results[0], rtol=1e-9, atol=1e-9)
