"""Tests for the shape-aware autotuner and plan-cache dispatch
(``repro.tuner``): plan serialization, candidate enumeration and pruning,
cache roundtrip/versioning/nearest-shape fallback, dispatch resolution
order, and end-to-end ``repro.matmul`` numerical correctness."""

import json

import numpy as np
import pytest

from repro import tuner
from repro.core.cost import estimate_recursive_flops, plan_cost
from repro.algorithms import get_algorithm
from repro.tuner.cache import PlanCache, problem_key
from repro.tuner.space import Plan
from repro.util.matrices import random_matrix


@pytest.fixture
def cache(tmp_path):
    return PlanCache(tmp_path / "plans.json")


class TestPlan:
    def test_roundtrip(self):
        pl = Plan(algorithm="strassen", steps=2, scheme="hybrid", threads=4)
        assert Plan.from_dict(pl.to_dict()) == pl

    def test_from_dict_ignores_unknown_fields(self):
        d = Plan(algorithm="s424", steps=1).to_dict()
        d["future_field"] = "whatever"
        assert Plan.from_dict(d).algorithm == "s424"

    def test_rejects_bad_scheme(self):
        with pytest.raises(ValueError):
            Plan(algorithm="strassen", steps=1, scheme="magic")

    def test_dgemm_plans(self):
        assert Plan().is_dgemm
        assert Plan(algorithm="strassen", steps=0).is_dgemm
        assert not Plan(algorithm="strassen", steps=1).is_dgemm

    def test_subgroup_roundtrip_and_describe(self):
        pl = Plan(algorithm="strassen", steps=2, scheme="hybrid-subgroup",
                  threads=4, subgroup=2)
        assert Plan.from_dict(pl.to_dict()) == pl
        assert "P'=2" in pl.describe()
        # plans from a pre-P' cache dict default to the derived P'
        d = pl.to_dict()
        del d["subgroup"]
        assert Plan.from_dict(d).subgroup is None

    def test_subgroup_validation(self):
        with pytest.raises(ValueError, match="divisor"):
            Plan(algorithm="strassen", steps=1, scheme="hybrid-subgroup",
                 threads=4, subgroup=3)
        with pytest.raises(ValueError, match="divisor"):
            Plan(algorithm="strassen", steps=1, scheme="hybrid-subgroup",
                 threads=4, subgroup=0)
        with pytest.raises(ValueError, match="hybrid-subgroup"):
            Plan(algorithm="strassen", steps=1, scheme="bfs",
                 threads=4, subgroup=2)
        # None is always legal (execution-time default)
        assert Plan(algorithm="strassen", steps=1, scheme="hybrid-subgroup",
                    threads=4).subgroup is None


class TestCostModel:
    def test_matches_exact_recurrence_on_divisible_shape(self):
        from repro.core.cost import recursive_flops

        alg = get_algorithm("strassen")
        mults, adds = estimate_recursive_flops(alg, 256, 256, 256, 2)
        exact = recursive_flops(alg, 256, 256, 256, 2)
        # fractional-block estimate equals the exact model up to the
        # classical-leaf -pr term (<1% at this size)
        assert mults + adds == pytest.approx(exact, rel=1e-2)

    def test_fast_beats_classical_at_depth(self):
        alg = get_algorithm("strassen")
        assert plan_cost(alg, 4096, 4096, 4096, 2) < plan_cost(
            None, 4096, 4096, 4096, 0
        )

    def test_penalty_disfavors_addition_heavy_plans(self):
        alg = get_algorithm("strassen")
        cheap = plan_cost(alg, 1024, 1024, 1024, 1, add_penalty=1.0)
        dear = plan_cost(alg, 1024, 1024, 1024, 1, add_penalty=10.0)
        assert dear > cheap

    def test_parallel_traffic_baselines_are_free(self):
        from repro.core.cost import parallel_traffic

        alg = get_algorithm("strassen")
        # sequential/DFS reuse one S/T/M_r triple per level: zero extra
        for scheme in ("sequential", "dfs"):
            assert parallel_traffic(alg, 1024, 1024, 1024, 2,
                                    scheme=scheme, threads=4) == 0.0
        # no parallel expansion without threads or steps
        assert parallel_traffic(alg, 1024, 1024, 1024, 2, "bfs", 1) == 0.0
        assert parallel_traffic(alg, 1024, 1024, 1024, 0, "bfs", 4) == 0.0
        assert parallel_traffic(None, 1024, 1024, 1024, 2, "bfs", 4) == 0.0

    def test_bfs_traffic_follows_section_4_2_factor(self):
        from repro.core.cost import parallel_traffic

        alg = get_algorithm("strassen")  # R/(MN) = 7/4 per level
        one = parallel_traffic(alg, 1024, 1024, 1024, 1, "bfs", 4)
        assert one == pytest.approx(2.0 * (7 / 4) * 1024 * 1024)
        two = parallel_traffic(alg, 1024, 1024, 1024, 2, "bfs", 4)
        assert two == pytest.approx(one + 2.0 * (7 / 4) ** 2 * 1024 * 1024)

    def test_subgroup_traffic_ranks_pprime(self):
        from repro.core.cost import parallel_traffic

        alg = get_algorithm("strassen")  # 7 leaves at 1 step: rem = 3 at P=4
        costs = {
            sub: parallel_traffic(alg, 1024, 1024, 1024, 1,
                                  "hybrid-subgroup", 4, subgroup=sub)
            for sub in (1, 2)
        }
        bfs = parallel_traffic(alg, 1024, 1024, 1024, 1, "bfs", 4)
        # every P' pays the BFS pools plus a positive inter-group term,
        # and different P' get *different* costs -- the ranking the sweep
        # relies on is real, not a tie broken by string sort
        assert all(c > bfs for c in costs.values())
        assert costs[1] != costs[2]

    def test_plan_cost_charges_communication(self):
        alg = get_algorithm("strassen")
        seq = plan_cost(alg, 1024, 1024, 1024, 2)
        par = plan_cost(alg, 1024, 1024, 1024, 2, scheme="bfs", threads=4)
        assert par > seq


class TestEnumeration:
    def test_contains_dgemm_baseline(self):
        plans = tuner.enumerate_plans(512, 512, 512)
        assert any(pl.is_dgemm for pl in plans)

    def test_small_problems_only_dgemm(self):
        plans = tuner.enumerate_plans(32, 32, 32)
        assert all(pl.is_dgemm for pl in plans)

    def test_sorted_by_model_cost(self):
        # rank with the same model dispatch uses -- including the
        # compiled-backend discount, so [cc] twins sort where they serve
        plans = [pl for pl in tuner.enumerate_plans(1024, 1024, 1024)
                 if not pl.is_dgemm]
        costs = [plan_cost(get_algorithm(pl.algorithm), 1024, 1024, 1024,
                           pl.steps, backend=pl.backend) for pl in plans]
        assert costs == sorted(costs)

    def test_max_candidates_keeps_baseline(self):
        plans = tuner.enumerate_plans(1024, 1024, 1024, max_candidates=3)
        assert len(plans) == 3
        assert any(pl.is_dgemm for pl in plans)

    def test_parallel_threads_enumerate_parallel_schemes(self):
        plans = tuner.enumerate_plans(1024, 1024, 1024, threads=4)
        schemes = {pl.scheme for pl in plans if not pl.is_dgemm}
        assert {"dfs", "bfs", "hybrid"} <= schemes

    def test_all_four_schemes_enumerated(self):
        """Regression: the parallel space used to slice ``SCHEMES[:3]``,
        silently dropping hybrid-subgroup from every shortlist.  All four
        schemes must appear; ranking, not slicing, decides their order."""
        from repro.parallel.schedules import SCHEMES

        plans = tuner.enumerate_plans(1024, 1024, 1024, threads=4)
        schemes = {pl.scheme for pl in plans if not pl.is_dgemm}
        assert schemes == set(SCHEMES)

    def test_hybrid_subgroup_sweeps_pprime_divisors(self):
        """The P' sub-space: one candidate per proper divisor of the
        thread count, per (algorithm, steps) pair."""
        from repro.tuner.space import subgroup_candidates

        assert subgroup_candidates(4) == [1, 2]
        assert subgroup_candidates(6) == [1, 2, 3]
        assert subgroup_candidates(5) == [1]
        assert subgroup_candidates(1) == []
        plans = tuner.enumerate_plans(1024, 1024, 1024, threads=6)
        swept = {pl.subgroup for pl in plans
                 if pl.scheme == "hybrid-subgroup"}
        assert swept == {1, 2, 3}
        by_alg_steps = {(pl.algorithm, pl.steps) for pl in plans
                        if pl.scheme == "hybrid-subgroup"}
        for key in by_alg_steps:
            subs = [pl.subgroup for pl in plans
                    if pl.scheme == "hybrid-subgroup"
                    and (pl.algorithm, pl.steps) == key]
            assert sorted(subs) == [1, 2, 3]

    def test_sequential_space_has_no_subgroup_plans(self):
        for pl in tuner.enumerate_plans(1024, 1024, 1024, threads=1):
            assert pl.subgroup is None
            assert pl.scheme in ("sequential",) or pl.is_dgemm

    def test_all_plans_resolve_and_describe(self):
        for pl in tuner.enumerate_plans(1024, 416, 1024):
            assert pl.describe()
            if not pl.is_dgemm:
                get_algorithm(pl.algorithm)  # must not raise


class TestPlanCache:
    def test_save_load_roundtrip(self, cache):
        pl = Plan(algorithm="strassen", steps=2)
        cache.put(512, 512, 512, "float64", 1, pl, seconds=0.5, gflops=1.0)
        cache.save()
        fresh = PlanCache(cache.path)
        assert fresh.get(512, 512, 512, "float64", 1) == pl
        ent = fresh.entry(512, 512, 512, "float64", 1)
        assert ent["gflops"] == 1.0

    def test_miss_returns_none(self, cache):
        assert cache.get(100, 100, 100) is None

    def test_schema_mismatch_ignored(self, cache):
        cache.path.parent.mkdir(parents=True, exist_ok=True)
        cache.path.write_text(json.dumps({
            "schema": tuner.SCHEMA_VERSION + 1,
            "entries": {problem_key(512, 512, 512, "float64", 1):
                        {"plan": Plan().to_dict()}},
        }))
        assert len(PlanCache(cache.path)) == 0
        assert PlanCache(cache.path).get(512, 512, 512) is None

    def test_corrupt_file_ignored(self, cache):
        cache.path.parent.mkdir(parents=True, exist_ok=True)
        cache.path.write_text("{ not json")
        assert PlanCache(cache.path).get(512, 512, 512) is None

    def test_save_rewrites_current_schema(self, cache):
        cache.put(256, 256, 256, "float64", 1, Plan())
        cache.save()
        raw = json.loads(cache.path.read_text())
        assert raw["schema"] == tuner.SCHEMA_VERSION

    def test_nearest_shape_fallback(self, cache):
        pl = Plan(algorithm="s424", steps=1)
        cache.put(1000, 400, 1000, "float64", 1, pl)
        assert cache.nearest(1100, 380, 1080, "float64", 1) == pl
        # different dtype or thread count never matches
        assert cache.nearest(1100, 380, 1080, "float32", 1) is None
        assert cache.nearest(1100, 380, 1080, "float64", 8) is None

    def test_nearest_respects_radius(self, cache):
        cache.put(4096, 4096, 4096, "float64", 1, Plan(algorithm="strassen",
                                                       steps=3))
        assert cache.nearest(256, 256, 256, "float64", 1) is None


class TestDispatchResolution:
    def test_trivial_small_problems_use_dgemm(self, cache):
        plan, source = tuner.get_plan(64, 64, 64, threads=1, cache=cache)
        assert source == "trivial" and plan.is_dgemm

    def test_cache_hit_is_deterministic(self, cache):
        pinned = Plan(algorithm="winograd", steps=2)
        cache.put(640, 640, 640, "float64", 1, pinned)
        for _ in range(3):
            plan, source = tuner.get_plan(640, 640, 640, threads=1, cache=cache)
            assert (plan, source) == (pinned, "cache")

    def test_nearest_fallback_on_near_miss(self, cache):
        pinned = Plan(algorithm="strassen", steps=1)
        cache.put(600, 600, 600, "float64", 1, pinned)
        plan, source = tuner.get_plan(620, 600, 640, threads=1, cache=cache)
        assert (plan, source) == (pinned, "nearest")

    def test_cost_model_fallback_on_miss(self, cache):
        plan, source = tuner.get_plan(768, 768, 768, threads=1, cache=cache)
        assert source == "model"
        assert not plan.is_dgemm  # at this size the model expects a win
        assert plan == tuner.enumerate_plans(768, 768, 768)[0]


class TestMatmulCorrectness:
    @pytest.mark.parametrize("shape", [(300, 200, 260), (643, 389, 511)])
    def test_matches_numpy_float64(self, cache, shape):
        p, q, r = shape
        A = random_matrix(p, q, 0)
        B = random_matrix(q, r, 1)
        C = tuner.matmul(A, B, threads=1, cache=cache)
        np.testing.assert_allclose(C, A @ B, atol=1e-9)

    def test_matches_numpy_float32(self, cache):
        A = random_matrix(500, 330, 2, dtype=np.float32)
        B = random_matrix(330, 470, 3, dtype=np.float32)
        C = tuner.matmul(A, B, threads=1, cache=cache)
        assert C.dtype == np.float32
        rel = np.linalg.norm(C - A @ B) / np.linalg.norm(A @ B)
        assert rel < 1e-4

    def test_executes_cached_plan(self, cache):
        """A planted cache entry is what actually runs (and stays correct
        on a non-power-of-two shape via dynamic peeling)."""
        pinned = Plan(algorithm="s424", steps=2, scheme="sequential")
        cache.put(520, 260, 520, "float64", 1, pinned)
        A = random_matrix(520, 260, 4)
        B = random_matrix(260, 520, 5)
        C = tuner.matmul(A, B, threads=1, cache=cache)
        np.testing.assert_allclose(C, A @ B, atol=1e-9)

    def test_rejects_bad_tune_mode(self, cache):
        A = random_matrix(8, 8, 0)
        with pytest.raises(ValueError):
            tuner.matmul(A, A, cache=cache, tune="sometimes")


class TestTuneShape:
    def test_tunes_and_caches_winner(self, cache):
        rep = tuner.tune_shape(
            192, 192, 192, threads=1, budget_s=3.0, trials=1, max_candidates=2,
            cache=cache, persist=True,
        )
        assert rep.measurements
        assert any(m.plan.is_dgemm for m in rep.measurements)
        cached = PlanCache(cache.path).get(192, 192, 192, "float64", 1)
        assert cached == rep.best.plan
        # dispatch now resolves from the cache, deterministically
        plan, source = tuner.get_plan(192, 192, 192, threads=1, cache=cache)
        assert source in ("cache", "trivial")

    def test_report_rows_render(self, cache):
        rep = tuner.tune_shape(160, 160, 160, threads=1, budget_s=2.0, trials=1,
                               max_candidates=2, cache=cache, persist=False)
        rows = rep.rows()
        assert len(rows) == len(rep.measurements)
        assert any("winner" in row.detail for row in rows)


class TestBlasThreadGuard:
    """The tuner sweeps thread counts in-process: the BLAS thread context
    must never leak global state (satellite fix in parallel/blas.py)."""

    def test_nested_contexts_restore(self):
        from repro.parallel import blas

        before = blas.get_threads()
        with blas.blas_threads(1):
            with blas.blas_threads(2):
                pass
            assert blas.get_threads() in (1, before)  # uncontrollable: no-op
        assert blas.get_threads() == before

    def test_zero_and_none_are_safe(self):
        from repro.parallel import blas

        before = blas.get_threads()
        with blas.blas_threads(0):
            assert blas.get_threads() >= 1
        with blas.blas_threads(None):
            pass
        assert blas.get_threads() == before


class TestNearestTieBreak:
    """Regression: ``nearest`` used ``<=`` while scanning an unsorted
    dict, so equidistant tuned shapes resolved to whichever the cache
    file happened to list last -- identical calls on identically-stocked
    caches could pick different plans."""

    def test_equidistant_entries_resolve_deterministically(self, tmp_path):
        # 500 * 720 == 600**2: both entries are exactly log(6/5) from the
        # query in log-dimension space
        a = Plan(algorithm="strassen", steps=1)
        b = Plan(algorithm="winograd", steps=1)
        winners = []
        for order in ((("a", a, 500), ("b", b, 720)),
                      (("b", b, 720), ("a", a, 500))):
            cache = PlanCache(tmp_path / f"plans_{order[0][0]}.json")
            for _, plan, m in order:
                cache.put(m, 600, 600, "float64", 1, plan)
            winners.append(cache.nearest(600, 600, 600, "float64", 1))
        assert winners[0] == winners[1]
        # sorted key order: "500x..." precedes "720x..."
        assert winners[0] == a

    def test_strictly_closer_still_displaces(self, tmp_path):
        cache = PlanCache(tmp_path / "plans.json")
        far = Plan(algorithm="winograd", steps=2)
        near = Plan(algorithm="strassen", steps=1)
        cache.put(500, 600, 600, "float64", 1, far)
        cache.put(620, 600, 600, "float64", 1, near)
        assert cache.nearest(600, 600, 600, "float64", 1) == near


class TestThreadsValidation:
    """Regression: ``threads=0`` silently meant "all cores" through
    ``threads or available_cores()`` expressions at every entry point,
    masking caller bugs; only ``None`` carries that meaning now."""

    def test_get_plan_rejects_zero(self, cache):
        with pytest.raises(ValueError, match="threads"):
            tuner.get_plan(256, 256, 256, threads=0, cache=cache)

    def test_matmul_rejects_zero(self, cache):
        A = random_matrix(64, 64, 0)
        with pytest.raises(ValueError, match="threads"):
            tuner.matmul(A, A, threads=0, cache=cache)

    def test_tune_shape_rejects_zero(self, cache):
        with pytest.raises(ValueError, match="threads"):
            tuner.tune_shape(128, 128, 128, threads=0, cache=cache)

    def test_tune_rejects_zero(self, cache):
        from repro.tuner import measure

        with pytest.raises(ValueError, match="threads"):
            measure.tune([(128, 128, 128)], threads=0, cache=cache)

    def test_none_still_means_all_cores(self, cache):
        from repro.parallel.pool import available_cores

        plan, _ = tuner.get_plan(64, 64, 64, threads=None, cache=cache)
        assert plan.threads == available_cores()


class TestSharedPoolConstruction:
    """Regression: ``_shared_pool`` used to spawn the pool's OS threads
    *inside* ``_dispatch_lock``, stalling every concurrent dispatcher for
    the duration of pool startup."""

    def test_pool_constructed_outside_dispatch_lock(self, monkeypatch):
        from repro.parallel import pool as pool_mod
        from repro.tuner import dispatch

        dispatch.shutdown_shared_pools()
        observed = []
        real_init = pool_mod.WorkerPool.__init__

        def probing_init(self, workers=None):
            # if construction ran under the lock, this acquire would fail
            free = dispatch._dispatch_lock.acquire(blocking=False)
            if free:
                dispatch._dispatch_lock.release()
            observed.append(free)
            real_init(self, workers)

        monkeypatch.setattr(pool_mod.WorkerPool, "__init__", probing_init)
        monkeypatch.setattr(dispatch, "WorkerPool", pool_mod.WorkerPool)
        try:
            got = dispatch._shared_pool(2)
            assert got is dispatch._shared_pool(2)  # cached on re-entry
            assert observed == [True]
        finally:
            dispatch.shutdown_shared_pools()

    def test_construction_race_loser_is_shut_down(self, monkeypatch):
        from repro.parallel import pool as pool_mod
        from repro.tuner import dispatch

        dispatch.shutdown_shared_pools()
        rival = {}
        losers = []

        class RacingPool(pool_mod.WorkerPool):
            def __init__(self, workers=None):
                super().__init__(workers)
                losers.append(self)
                # the construction plants a rival in the registry,
                # simulating a dispatcher that won the race meanwhile
                if "pool" not in rival:
                    rival["pool"] = pool_mod.WorkerPool(workers)
                    with dispatch._dispatch_lock:
                        dispatch._pools[self.workers] = rival["pool"]

        monkeypatch.setattr(dispatch, "WorkerPool", RacingPool)
        try:
            got = dispatch._shared_pool(2)
            assert got is rival["pool"]  # the loser was discarded...
            # ...and shut down: its executor must reject new work
            assert len(losers) == 1
            with pytest.raises(RuntimeError):
                losers[0].submit(lambda: None)
        finally:
            dispatch.shutdown_shared_pools()


class TestWorkspaceDeadThreadSweep:
    """Regression: arenas are keyed by thread ident, and a short-lived
    dispatcher thread's arenas used to stay pinned until LRU pressure --
    dead-thread entries are now swept on insert."""

    def test_dead_thread_arenas_swept_on_insert(self, cache):
        import threading

        from repro.tuner import dispatch, reset_workspaces
        from repro.tuner.space import Plan as TPlan

        reset_workspaces()
        plan = TPlan(algorithm="strassen", steps=1, scheme="sequential",
                     threads=1)
        worker_ident = []

        def dispatcher():
            worker_ident.append(threading.get_ident())
            dispatch.workspace_for(plan, 160, 160, 160, "float64", "float64")

        t = threading.Thread(target=dispatcher)
        t.start()
        t.join()
        assert any(k[-1] == worker_ident[0] for k in dispatch._workspaces)
        # the next insert from a live thread sweeps the dead ident's arena
        dispatch.workspace_for(plan, 192, 192, 192, "float64", "float64")
        assert not any(k[-1] == worker_ident[0]
                       for k in dispatch._workspaces)
        assert any(k[-1] == threading.get_ident()
                   for k in dispatch._workspaces)
        reset_workspaces()
