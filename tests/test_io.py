"""Tests for the fast-matmul text-format interop (repro.algorithms.io)."""

import numpy as np
import pytest

from repro.algorithms import get_algorithm, strassen
from repro.algorithms.io import (
    _parse_entry,
    read_fast_matmul,
    roundtrip_equal,
    write_fast_matmul,
)


class TestEntryGrammar:
    def test_integers_and_rationals(self):
        assert _parse_entry("1", 0.1) == 1.0
        assert _parse_entry("-1", 0.1) == -1.0
        assert _parse_entry("1/2", 0.1) == 0.5
        assert _parse_entry("-3/4", 0.1) == -0.75
        assert _parse_entry("0", 0.1) == 0.0

    def test_apa_placeholder(self):
        lam = 1e-3
        assert _parse_entry("x", lam) == pytest.approx(lam)
        assert _parse_entry("-x", lam) == pytest.approx(-lam)
        assert _parse_entry("1/x", lam) == pytest.approx(1 / lam)
        assert _parse_entry("-1/x", lam) == pytest.approx(-1 / lam)
        assert _parse_entry("2x", lam) == pytest.approx(2 * lam)

    def test_bad_tokens(self):
        with pytest.raises(ValueError):
            _parse_entry("", 0.1)
        with pytest.raises(ValueError):
            _parse_entry("xx/", 0.1)


class TestRoundtrip:
    @pytest.mark.parametrize("name", ["strassen", "winograd", "hk223", "s333"])
    def test_write_read_exact(self, tmp_path, name):
        alg = get_algorithm(name)
        p = tmp_path / f"{name}.txt"
        write_fast_matmul(alg, p)
        back = read_fast_matmul(p)
        assert roundtrip_equal(alg, back)
        assert not back.apa
        back.validate()

    def test_float_entries_roundtrip(self, tmp_path):
        alg = get_algorithm("s244")  # dense float factors
        p = tmp_path / "s244.txt"
        write_fast_matmul(alg, p)
        back = read_fast_matmul(p)
        assert back.base_case == (2, 4, 4)
        assert back.rank == 26
        # float factors survive within print precision
        assert np.allclose(back.U, alg.U, atol=1e-9)

    def test_read_marks_apa_when_inexact(self, tmp_path):
        s = strassen()
        U = np.array(s.U)
        U[0, 0] = 0.9  # break exactness
        broken = type(s)(2, 2, 2, U, s.V, s.W, name="broken", apa=True)
        p = tmp_path / "broken.txt"
        write_fast_matmul(broken, p)
        back = read_fast_matmul(p)
        assert back.apa


class TestFileFormat:
    def test_header_and_blocks(self, tmp_path):
        p = tmp_path / "s.txt"
        write_fast_matmul(strassen(), p)
        text = p.read_text()
        assert text.splitlines()[0] == "2,2,2,7"
        # 3 blank-separated factor blocks
        assert text.count("\n\n") >= 2

    def test_comments_ignored(self, tmp_path):
        p = tmp_path / "c.txt"
        write_fast_matmul(strassen(), p)
        p.write_text("# a comment\n" + p.read_text())
        back = read_fast_matmul(p)
        assert back.rank == 7

    def test_apa_file_instantiates_at_lambda(self, tmp_path):
        """Hand-written Bini-style file with x placeholders."""
        content = """1,1,1,1

x

1/x

1
"""
        p = tmp_path / "apa.txt"
        p.write_text(content)
        alg = read_fast_matmul(p, lam=1e-2)
        # U*V*W = x * (1/x) * 1 = 1: exact for <1,1,1>
        assert alg.check_exact()

    def test_bad_header(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("2,2,2\n\n1 1\n")
        with pytest.raises(ValueError, match="header"):
            read_fast_matmul(p)

    def test_wrong_block_count(self, tmp_path):
        p = tmp_path / "bad2.txt"
        p.write_text("1,1,1,1\n\n1\n\n1\n")
        with pytest.raises(ValueError, match="3 factor blocks"):
            read_fast_matmul(p)

    def test_wrong_shape(self, tmp_path):
        p = tmp_path / "bad3.txt"
        p.write_text("2,2,2,7\n\n1 1\n\n1 1\n\n1 1\n")
        with pytest.raises(ValueError, match="shape"):
            read_fast_matmul(p)

    def test_empty_file(self, tmp_path):
        p = tmp_path / "empty.txt"
        p.write_text("\n\n")
        with pytest.raises(ValueError, match="empty"):
            read_fast_matmul(p)
