"""Tests for the benchmark harness (repro.bench)."""

import numpy as np
import pytest

from repro.algorithms import get_algorithm, strassen
from repro.bench import machine, metrics, workloads
from repro.bench.runner import (
    check_accuracy,
    print_table,
    run_parallel,
    run_sequential,
    speedup_over,
    winners_by_workload,
)


class TestMetrics:
    def test_effective_flops_equation3(self):
        # 2PQR - PR
        assert metrics.effective_flops(10, 20, 30) == 2 * 10 * 20 * 30 - 10 * 30

    def test_effective_gflops(self):
        gf = metrics.effective_gflops(1000, 1000, 1000, 1.0)
        assert gf == pytest.approx((2e9 - 1e6) * 1e-9)

    def test_median_time_positive(self):
        t = metrics.median_time(lambda: sum(range(1000)), trials=3, warmup=1)
        assert t > 0

    def test_time_multiply(self):
        A = np.random.rand(64, 64)
        sec, gf = metrics.time_multiply(lambda a, b: a @ b, A, A, trials=2)
        assert sec > 0 and gf > 0


class TestWorkloads:
    def test_square(self):
        wl = workloads.square(32)
        assert (wl.p, wl.q, wl.r) == (32, 32, 32)

    def test_outer(self):
        wl = workloads.outer(100, 16)
        assert (wl.p, wl.q, wl.r) == (100, 16, 100)

    def test_ts_square(self):
        wl = workloads.ts_square(100, 24)
        assert (wl.p, wl.q, wl.r) == (100, 24, 24)

    def test_matrices_deterministic(self):
        wl = workloads.square(16, seed=5)
        A1, B1 = wl.matrices()
        A2, B2 = wl.matrices()
        np.testing.assert_array_equal(A1, A2)
        np.testing.assert_array_equal(B1, B2)

    def test_label(self):
        assert workloads.outer(64, 16).label == "64x16x64"

    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert workloads.scaled(100) == 50
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.001")
        assert workloads.scaled(100) == 8  # floor

    def test_sweeps_nonempty(self):
        assert workloads.fig5_square_sweep()
        assert workloads.fig5_outer_sweep()
        assert workloads.fig5_ts_sweep()
        assert workloads.fig7_outer_sweep()
        assert workloads.fig7_ts_sweep()


class TestMachineModel:
    def _curve(self):
        # synthetic ramp-up: 50% at 64, 90% at 256, flat beyond
        return machine.GemmCurve(
            sizes=[32, 64, 128, 256, 512, 1024],
            gflops=[5.0, 10.0, 16.0, 18.0, 19.5, 20.0],
        )

    def test_interpolation(self):
        c = self._curve()
        assert c.at(32) == 5.0
        assert c.at(48) == pytest.approx(7.5)
        assert c.at(4096) == 20.0  # clamped

    def test_peak_and_flat(self):
        c = self._curve()
        assert c.peak == 20.0
        assert c.flat_size(0.9) == 256

    def test_should_recurse_on_flat_part(self):
        c = self._curve()
        # 1024 -> 512: drop 20/19.5 - 1 ~= 2.6% < Strassen's 14%: recurse
        assert machine.should_recurse(c, 1024, 2, 1 / 7)

    def test_should_not_recurse_on_ramp(self):
        c = self._curve()
        # 128 -> 64: drop 16/10 - 1 = 60% > 14%: do not recurse
        assert not machine.should_recurse(c, 128, 2, 1 / 7)

    def test_recommended_steps(self):
        c = self._curve()
        s = machine.recommended_steps(c, 2048, 2, 1 / 7, max_steps=3)
        assert 1 <= s <= 3
        assert machine.recommended_steps(c, 64, 2, 1 / 7) == 0

    def test_measure_gemm_curve_real(self):
        c = machine.measure_gemm_curve([32, 64], threads=1, trials=1)
        assert len(c.gflops) == 2 and all(g > 0 for g in c.gflops)

    def test_measure_shapes(self):
        c = machine.measure_gemm_curve([48], threads=1, shape="outer",
                                       fixed=16, trials=1)
        assert c.shape == "outer"
        c = machine.measure_gemm_curve([48], threads=1, shape="ts",
                                       fixed=16, trials=1)
        assert len(c.gflops) == 1

    def test_measure_bad_shape(self):
        with pytest.raises(ValueError):
            machine.measure_gemm_curve([32], shape="diag", trials=1)


class TestRunner:
    def _algs(self):
        return {"dgemm": None, "strassen": strassen()}

    def test_run_sequential_rows(self):
        rows = run_sequential(
            self._algs(), [workloads.square(96)], step_options=(1,),
            trials=1, quiet=True,
        )
        assert len(rows) == 2
        assert {r.algorithm for r in rows} == {"dgemm", "strassen"}
        assert all(r.gflops > 0 for r in rows)

    def test_run_parallel_rows(self):
        rows = run_parallel(
            self._algs(), [workloads.square(96)], cores=2,
            schemes=("hybrid",), step_options=(1,), trials=1, quiet=True,
        )
        assert len(rows) == 2
        assert all(r.gflops > 0 for r in rows)

    def test_winners(self):
        rows = run_sequential(
            self._algs(), [workloads.square(64)], step_options=(1,),
            trials=1, quiet=True,
        )
        w = winners_by_workload(rows)
        assert set(w) == {"64x64x64"}
        assert w["64x64x64"] in ("dgemm", "strassen")

    def test_speedup_over(self):
        rows = run_sequential(
            self._algs(), [workloads.square(64)], step_options=(1,),
            trials=1, quiet=True,
        )
        sp = speedup_over(rows, "dgemm")
        assert ("strassen", "64x64x64") in sp
        assert sp[("strassen", "64x64x64")] > 0

    def test_check_accuracy_flags_apa(self):
        errs = check_accuracy(
            {"strassen": strassen(), "bini": get_algorithm("bini322")},
            workloads.square(36),
        )
        assert errs["strassen"] < 1e-10
        assert errs["bini"] > 1e-10

    def test_print_table_output(self, capsys):
        rows = run_sequential(
            self._algs(), [workloads.square(48)], step_options=(1,),
            trials=1, quiet=True,
        )
        print_table(rows, title="unit test")
        out = capsys.readouterr().out
        assert "unit test" in out and "strassen" in out
