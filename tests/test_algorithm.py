"""Unit tests for repro.core.algorithm.FastAlgorithm."""

import json
import math

import numpy as np
import pytest

from repro.algorithms import classical, strassen, winograd
from repro.core.algorithm import EXACT_TOL, FastAlgorithm


class TestConstruction:
    def test_shapes_enforced(self):
        ok = strassen()
        with pytest.raises(ValueError, match="U has"):
            FastAlgorithm(3, 2, 2, ok.U, ok.V, ok.W)
        with pytest.raises(ValueError, match="V has"):
            FastAlgorithm(2, 2, 2, ok.U, ok.V[:3], ok.W)
        with pytest.raises(ValueError, match="W has"):
            FastAlgorithm(2, 2, 2, ok.U, ok.V, ok.W[:3])

    def test_rank_mismatch(self):
        ok = strassen()
        with pytest.raises(ValueError, match="rank mismatch"):
            FastAlgorithm(2, 2, 2, ok.U[:, :6], ok.V, ok.W)

    def test_factors_immutable(self):
        alg = strassen()
        with pytest.raises(ValueError):
            alg.U[0, 0] = 5.0

    def test_dtype_coerced(self):
        alg = FastAlgorithm(1, 1, 1, [[1]], [[1]], [[1]])
        assert alg.U.dtype == np.float64


class TestProperties:
    def test_strassen_rank_and_exponent(self):
        s = strassen()
        assert s.rank == 7
        assert s.classical_rank == 8
        assert s.exponent == pytest.approx(math.log2(7), rel=1e-12)

    def test_speedup_per_step_strassen(self):
        # Table 2: <2,2,2> speedup 14%
        assert strassen().multiplication_speedup_per_step == pytest.approx(1 / 7)

    def test_speedup_per_step_classical_is_zero(self):
        assert classical(2, 3, 4).multiplication_speedup_per_step == 0.0

    def test_nnz_strassen(self):
        # 12 + 12 + 12 nonzeros in the canonical Strassen factors
        assert strassen().nnz() == (12, 12, 12)

    def test_base_case(self):
        assert classical(2, 3, 4).base_case == (2, 3, 4)

    def test_repr_mentions_rank(self):
        assert "rank=7" in repr(strassen())


class TestValidation:
    def test_strassen_exact(self):
        assert strassen().residual() == pytest.approx(0.0, abs=1e-13)
        assert strassen().check_exact()

    def test_winograd_exact(self):
        assert winograd().check_exact()

    def test_validate_raises_on_broken(self):
        s = strassen()
        U = np.array(s.U)
        U[0, 0] = 2.0
        broken = FastAlgorithm(2, 2, 2, U, s.V, s.W, name="broken")
        assert not broken.check_exact()
        with pytest.raises(ValueError, match="residual"):
            broken.validate()

    def test_apa_validate_is_lenient(self):
        s = strassen()
        U = np.array(s.U)
        U[0, 0] = 1.0 + 1e-5
        apa = FastAlgorithm(2, 2, 2, U, s.V, s.W, name="apa-ish", apa=True)
        apa.validate()  # must not raise

    def test_exact_tol_sane(self):
        assert 0 < EXACT_TOL < 1e-6


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        s = strassen()
        path = tmp_path / "s.json"
        s.save(path)
        s2 = FastAlgorithm.load(path)
        assert s2.base_case == s.base_case
        assert s2.rank == s.rank
        np.testing.assert_array_equal(s2.U, s.U)
        np.testing.assert_array_equal(s2.V, s.V)
        np.testing.assert_array_equal(s2.W, s.W)
        assert not s2.apa

    def test_dict_contents(self):
        d = winograd().to_dict()
        assert d["base_case"] == [2, 2, 2]
        assert d["rank"] == 7
        assert d["residual"] <= EXACT_TOL
        json.dumps(d)  # serializable

    def test_from_dict_defaults(self):
        d = strassen().to_dict()
        del d["name"]
        alg = FastAlgorithm.from_dict(d)
        assert alg.name == "unnamed"

    def test_permutation_family_from_method(self):
        fam = strassen().transposed_family()
        assert set(fam) == {(2, 2, 2)}
