"""Multi-core acceptance tests for parallel-plan tuning (ISSUE 5).

Two acceptance criteria live here, both requiring a real >= 4-thread
budget (the ``multicore`` CI tier):

1. ``repro tune --policy ucb`` on a 4-thread problem produces a cached
   hybrid plan with an *explicit* P' field -- asserted end-to-end through
   the actual CLI with a scripted timing oracle (the fake clock makes a
   hybrid-subgroup candidate the true winner, so the assertion is exact,
   not a bet on runner hardware), plus an unscripted CLI smoke run;
2. a cold cache primed at ``threads=2`` serves a penalized-but-valid
   transfer plan at ``threads=4`` -- ``nearest()`` crosses thread counts,
   retargets the plan, and dispatch executes it correctly.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import FakeClock, run_cli

from repro import tuner
from repro.tuner import dispatch
from repro.tuner.cache import PlanCache
from repro.tuner.space import Plan

pytestmark = pytest.mark.multicore

THREADS = 4


class TestTuneUcbProducesSubgroupPlan:
    """Acceptance criterion 1: the CLI's UCB path caches a hybrid plan
    whose P' is an explicit field, at threads=4."""

    def _script_subgroup_winner(self, monkeypatch, p, q, r, candidates):
        """Fake the execution clock so the best-ranked hybrid-subgroup
        candidate of the shortlist is the measured winner."""
        shortlist = tuner.enumerate_plans(p, q, r, threads=THREADS,
                                          max_candidates=candidates)
        winners = [pl for pl in shortlist
                   if pl.scheme == "hybrid-subgroup"
                   and pl.subgroup is not None]
        # the P' sub-space must reach the shortlist at all (the SCHEMES[:3]
        # bug silently kept it out of *every* parallel shortlist)
        assert winners, [pl.describe() for pl in shortlist]
        target = winners[0]
        costs = {pl.describe(): 2.0 + i for i, pl in enumerate(shortlist)}
        costs[target.describe()] = 0.5
        clock = FakeClock()

        def fake_execute(plan, A, B, pool=None, out=None, workspace=None):
            clock.advance(costs.get(plan.describe(), 5.0))
            return A @ B

        monkeypatch.setattr(dispatch, "execute_plan", fake_execute)

        class ScriptedUCB(tuner.UCBTunePolicy):
            def __init__(self, **kw):
                kw["clock"] = clock.now
                super().__init__(**kw)

        monkeypatch.setattr(tuner, "UCBTunePolicy", ScriptedUCB)
        return target

    def test_cli_ucb_caches_hybrid_plan_with_explicit_pprime(
            self, monkeypatch, tmp_path):
        p = q = r = 768
        candidates = 8
        target = self._script_subgroup_winner(monkeypatch, p, q, r,
                                              candidates)
        path = tmp_path / "plans.json"
        rc, text = run_cli(
            "tune", "--policy", "ucb", "--shapes", f"{p}x{q}x{r}",
            "--threads", str(THREADS), "--candidates", str(candidates),
            "--dispatches", "32", "--cache", str(path),
        )
        assert rc == 0
        assert "converged" in text
        cache = PlanCache(path)
        plan = cache.get(p, q, r, "float64", THREADS)
        assert plan == target
        assert plan.scheme == "hybrid-subgroup"
        assert isinstance(plan.subgroup, int)          # explicit P', not None
        assert THREADS % plan.subgroup == 0
        # the entry's parallel configuration is first-class, not buried in
        # the plan dict
        ent = cache.entry(p, q, r, "float64", THREADS)
        assert ent["scheme"] == "hybrid-subgroup"
        assert ent["subgroup"] == plan.subgroup
        # ... and cache show renders it
        rc, text = run_cli("cache", "show", "--cache", str(path))
        assert rc == 0
        assert "hybrid-subgroup" in text
        assert f"P'={plan.subgroup}" in text

    def test_cli_ucb_real_timings_smoke(self, tmp_path):
        """Unscripted: the full CLI path converges on real 4-thread
        timings and every cached entry carries the explicit P' field
        (whatever plan actually won on this machine)."""
        path = tmp_path / "plans.json"
        rc, text = run_cli(
            "tune", "--policy", "ucb", "--shapes", "256", "--threads",
            str(THREADS), "--candidates", "3", "--dispatches", "12",
            "--cache", str(path),
        )
        assert rc == 0
        cache = PlanCache(path)
        ent = cache.entry(256, 256, 256, "float64", THREADS)
        if ent is not None:  # still exploring after the budget is legal
            assert "subgroup" in ent
            assert "subgroup" in ent["plan"]


class TestCrossThreadTransfer:
    """Acceptance criterion 2: thread-count transfer in the plan cache."""

    def test_cache_primed_at_2_serves_4(self, tmp_path):
        n = 192
        cache = PlanCache(tmp_path / "plans.json")
        tuned = Plan(algorithm="strassen", steps=1, scheme="hybrid-subgroup",
                     threads=2, subgroup=1, min_leaf=32)
        cache.put(n, n, n, "float64", 2, tuned)

        # cold at threads=4: no exact hit, the cross-thread fallback kicks in
        assert cache.get(n, n, n, "float64", 4) is None
        plan, source = tuner.get_plan(n, n, n, dtype="float64", threads=4,
                                      cache=cache)
        assert source == "transfer"
        assert plan.threads == 4                       # retargeted
        assert plan.algorithm == tuned.algorithm       # knowledge transferred
        assert plan.steps == tuned.steps
        assert plan.scheme == tuned.scheme
        assert plan.subgroup is not None
        assert 4 % plan.subgroup == 0                  # valid at 4 threads

        # ... and the transfer plan actually executes at 4 threads
        rng = np.random.default_rng(5)
        A = rng.random((n, n))
        B = rng.random((n, n))
        tuner.reset_workspaces()
        C = tuner.matmul(A, B, threads=4, cache=cache)
        np.testing.assert_allclose(C, A @ B, atol=1e-9)
        tuner.reset_workspaces()

    def test_exact_hit_beats_transfer_at_dispatch(self, tmp_path):
        """Once the shape *is* tuned at 4 threads, the cross-thread
        transfer stops being consulted."""
        n = 192
        cache = PlanCache(tmp_path / "plans.json")
        cache.put(n, n, n, "float64", 2,
                  Plan(algorithm="strassen", steps=1, scheme="bfs",
                       threads=2, min_leaf=32))
        exact = Plan(algorithm="winograd", steps=1, scheme="hybrid",
                     threads=4, min_leaf=32)
        cache.put(n, n, n, "float64", 4, exact)
        plan, source = tuner.get_plan(n, n, n, dtype="float64", threads=4,
                                      cache=cache)
        assert (plan, source) == (exact, "cache")
